// Command icgbench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrates. Each experiment prints rows
// mirroring the corresponding figure; latencies are always reported in
// model time (the paper's axes).
//
// By default experiments run on the virtual clock: a deterministic
// discrete-event scheduler that never sleeps, so whole-figure sweeps
// finish at CPU speed and the same seed reproduces byte-identical output.
// -clock=wall selects the scaled real-time mode instead (useful for
// watching an experiment unfold); -scale then sets the model-to-wall
// speedup.
//
// Usage:
//
//	icgbench -list                           # every experiment, scenario, profile
//	icgbench -exp fig5                       # one experiment, virtual time
//	icgbench -exp all -quick                 # smoke-run the paper figures
//	icgbench -exp fig6 -clock=wall -scale .5 # real-time-ish demo run
//
// Beyond the paper's figures: ablations; faultstudy — YCSB under a
// deterministic fault schedule (-faults selects the scenario, -fault-log
// prints the transition log); failover — leader partition and recovery;
// overload — metastable retry storm vs admission control; sweep — quorum x
// geography; capacity — the sharded-plane capacity study (open-loop session
// storms vs shard count, a million sessions on one virtual clock at full
// size); and hunt — the nemesis hunt: a sweep of seeds x composed
// fault-track profiles, every recorded history run through every checker,
// each violating world shrunk by delta debugging into a replayable repro:
//
//	icgbench -exp hunt -hunt-seeds 1000            # the nightly budget
//	icgbench -exp hunt -hunt-plant                 # self-test: find the planted bug
//	icgbench -exp hunt -repro hunt-repros/x.json   # replay an archived repro
//
// Checked experiments (faultstudy, failover, overload, hunt) exit 3 when a
// consistency violation is found; the seed replays it byte-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"correctables/internal/bench"
	"correctables/internal/faults"
	"correctables/internal/trace"
)

// experiment is one icgbench entry: the single registry below generates
// the -exp help text, the -list output, and the "all" dispatch, so they
// cannot drift apart.
type experiment struct {
	name string
	desc string
	// paper experiments run under -exp all (the figures, in order); the
	// extras are opt-in by name.
	paper bool
	run   func(bench.Config) string
}

var experiments = []experiment{
	{"fig5", "single-request latency per level (Cassandra binding)", true, func(c bench.Config) string { return bench.FormatFig5(bench.Fig5(c)) }},
	{"fig6", "YCSB latency vs throughput", true, func(c bench.Config) string { return bench.FormatFig6(bench.Fig6(c)) }},
	{"fig7", "preliminary-vs-final divergence", true, func(c bench.Config) string { return bench.FormatFig7(bench.Fig7(c)) }},
	{"fig8", "bandwidth overhead of incremental views", true, func(c bench.Config) string { return bench.FormatFig8(bench.Fig8(c)) }},
	{"fig9", "ZooKeeper latency gaps per level", true, func(c bench.Config) string { return bench.FormatFig9(bench.Fig9(c)) }},
	{"fig10", "dequeue bandwidth (Correctable ZK queue)", true, func(c bench.Config) string { return bench.FormatFig10(bench.Fig10(c)) }},
	{"fig11", "speculation case studies", true, func(c bench.Config) string { return bench.FormatFig11(bench.Fig11(c)) }},
	{"fig12", "ticket selling end-to-end", true, func(c bench.Config) string { return bench.FormatFig12(bench.Fig12(c)) }},
	{"ablations", "replication-lag and flush-cost ablations", false, func(c bench.Config) string {
		return bench.FormatAblationLag(bench.AblationReplicationLag(c)) +
			bench.FormatAblationFlush(bench.AblationFlushCost(c))
	}},
	{"faultstudy", "YCSB under a deterministic fault schedule (-faults, -check)", false, runFaultStudy},
	{"failover", "leader partition mid-run: recovery time and availability window", false, runFailover},
	{"overload", "open-loop burst: metastable retry storm vs admission control", false, runOverload},
	{"sweep", "read latency vs quorum size and RTT geography", false, runSweep},
	{"capacity", "sharded-plane capacity study: 10^6 open-loop sessions vs shard count", false, runCapacity},
	{"hunt", "nemesis hunt: seeds x composed fault tracks, all checkers, shrinking repros", false, runHunt},
}

func expNames(paperOnly bool) []string {
	var out []string
	for _, e := range experiments {
		if !paperOnly || e.paper {
			out = append(out, e.name)
		}
	}
	return out
}

func expByName(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// Flags consulted by individual experiment entries.
var (
	faultJSON    string
	traceOut     string
	huntSeeds    int
	huntStart    int64
	huntProfiles string
	huntWorkers  int
	huntPlant    bool
	reproDir     string
)

// writeArtifact exits on a failed artifact write (JSON report or trace).
func writeArtifact(path string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
}

// writeTrace writes the -trace Chrome trace-event artifact for a traced
// experiment (Perfetto-loadable; byte-identical across same-seed runs).
func writeTrace(trc *trace.Tracer, reg *trace.Registry) {
	if traceOut == "" {
		return
	}
	writeArtifact(traceOut, bench.WriteTrace(traceOut, trc, reg))
}

// failCheck prints the experiment output, reports the violation count on
// stderr, and exits with the consistency-gate status.
func failCheck(out string, violations int, seed int64) {
	fmt.Print(out)
	fmt.Fprintf(os.Stderr, "icgbench: consistency check FAILED with %d violations (seed %d replays them byte-identically)\n",
		violations, seed)
	os.Exit(3)
}

func runFaultStudy(c bench.Config) string {
	res, err := bench.FaultStudy(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	writeTrace(res.Trace, res.TraceReg)
	out := bench.FormatFaultStudy(res, c.FaultLog)
	if res.Check != nil && res.Check.Violations() > 0 {
		failCheck(out, res.Check.Violations(), c.Seed)
	}
	return out
}

func runFailover(c bench.Config) string {
	c.Check = true
	res, err := bench.Failover(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	writeTrace(res.Trace, res.TraceReg)
	out := bench.FormatFailover(res, c.FaultLog)
	if res.Check != nil && res.Check.Violations() > 0 {
		failCheck(out, res.Check.Violations(), c.Seed)
	}
	return out
}

func runOverload(c bench.Config) string {
	res, err := bench.Overload(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	writeTrace(res.Trace, res.TraceReg)
	out := bench.FormatOverload(res)
	var violations int
	for _, m := range res.Modes {
		if m.Check != nil {
			violations += m.Check.Violations()
		}
	}
	if violations > 0 {
		failCheck(out, violations, c.Seed)
	}
	return out
}

func runSweep(c bench.Config) string {
	res := bench.Sweep(c)
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	return bench.FormatSweep(res)
}

func runCapacity(c bench.Config) string {
	res := bench.Capacity(c)
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	out := bench.FormatCapacity(res)
	var violations int
	for _, r := range res.Rows {
		if r.Check != nil {
			violations += r.Check.Violations()
		}
	}
	if violations > 0 {
		failCheck(out, violations, c.Seed)
	}
	return out
}

func runHunt(c bench.Config) string {
	opts := bench.HuntOptions{
		Seeds:     huntSeeds,
		StartSeed: huntStart,
		Workers:   huntWorkers,
		Plant:     huntPlant,
	}
	if huntProfiles != "" {
		for _, p := range strings.Split(huntProfiles, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.Profiles = append(opts.Profiles, p)
			}
		}
	}
	res, err := bench.Hunt(c, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	if faultJSON != "" {
		writeArtifact(faultJSON, bench.WriteReport(faultJSON, res))
	}
	out := bench.FormatHunt(res)
	if len(res.Findings) > 0 {
		// Archive every shrunk repro, then fail the consistency gate.
		if err := os.MkdirAll(reproDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
			os.Exit(1)
		}
		for _, f := range res.Findings {
			path := filepath.Join(reproDir, fmt.Sprintf("hunt-%s-%d.json", f.Profile, f.Seed))
			writeArtifact(path, bench.WriteReport(path, f.Repro))
			fmt.Fprintf(os.Stderr, "icgbench: repro archived: %s\n", path)
		}
		failCheck(out, len(res.Findings), c.Seed)
	}
	return out
}

// runRepro replays an archived hunt repro and reports whether the outcome
// is byte-identical to the archived violation.
func runRepro(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	r, err := bench.ParseHuntRepro(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	res, err := bench.HuntReplay(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("replay %s: profile %s seed %d (planted=%v)\n", path, r.Profile, r.Seed, r.Planted)
	fmt.Printf("  archived: %s\n", r.Violation)
	fmt.Printf("  replayed: %s\n", res.Violation)
	if res.Identical {
		fmt.Println("  IDENTICAL: violation and history digest reproduce byte-for-byte")
		return
	}
	fmt.Printf("  archived digest: %s\n  replayed digest: %s\n", r.HistoryDigest, res.HistoryDigest)
	fmt.Fprintln(os.Stderr, "icgbench: replay DIVERGED from the archived repro")
	os.Exit(3)
}

// list prints the experiment registry, the fault-scenario catalog, and the
// random-profile names.
func list() {
	fmt.Println("experiments (-exp):")
	for _, e := range experiments {
		tag := "      "
		if e.paper {
			tag = "paper "
		}
		fmt.Printf("  %-10s %s%s\n", e.name, tag, e.desc)
	}
	fmt.Println("\nfault scenarios (-faults, faultstudy):")
	for _, name := range faults.ScenarioNames() {
		s, err := faults.ScenarioByName(name, time.Second)
		if err != nil {
			continue
		}
		fmt.Printf("  %-20s %s\n", name, s.Description)
	}
	fmt.Println("\nrandom fault profiles (-faults <seed>:<profile>, -hunt-profiles):")
	for _, name := range faults.ProfileNames() {
		fmt.Printf("  %s\n", name)
	}
}

func main() {
	var (
		exp = flag.String("exp", "all",
			"experiment to run: 'all' (the paper figures), or a comma list of "+strings.Join(expNames(false), ", "))
		clockMode = flag.String("clock", "virtual", "clock mode: 'virtual' (deterministic, CPU speed) or 'wall' (scaled real time)")
		scale     = flag.Float64("scale", 0.25, "model-to-wall time scale in -clock=wall mode (1.0 = real time)")
		seed      = flag.Int64("seed", 42, "random seed")
		quick     = flag.Bool("quick", false, "reduced samples/durations (smoke run)")
		faultSpec = flag.String("faults", "",
			"fault scenario for -exp faultstudy: one of "+strings.Join(faults.ScenarioNames(), ", ")+
				", or '<seed>:<profile>' (profiles: "+strings.Join(faults.ProfileNames(), ", ")+
				") for a replayable random schedule; default minority-partition")
		faultLog = flag.Bool("fault-log", false, "print the applied fault-transition log with the fault study")
		sweep    = flag.Bool("sweep", false,
			"also run the quorum x geography parameter sweep (shorthand for adding 'sweep' to -exp)")
		check = flag.Bool("check", false,
			"faultstudy: run a consistency-checked session population alongside the measured one and verify its "+
				"recorded history (session guarantees + per-key linearizability); exit nonzero on any violation")
		showList = flag.Bool("list", false, "list experiments, fault scenarios and profiles, then exit")
		repro    = flag.String("repro", "", "replay an archived hunt repro JSON and verify byte-identical reproduction")
	)
	flag.StringVar(&faultJSON, "fault-json", "", "write the experiment result as JSON to this path (faultstudy, failover, overload, sweep, capacity, hunt)")
	flag.StringVar(&traceOut, "trace", "", "record model-time spans and sampled gauges, and write them as Chrome trace-event JSON (Perfetto-loadable) to this path (faultstudy, failover, overload)")
	flag.IntVar(&huntSeeds, "hunt-seeds", 0, "hunt: seeds swept per profile (default 1000, or 16 with -quick)")
	flag.Int64Var(&huntStart, "hunt-start", 0, "hunt: first seed (default -seed)")
	flag.StringVar(&huntProfiles, "hunt-profiles", "", "hunt: comma list of fault profiles (default tracks-mild,tracks-harsh)")
	flag.IntVar(&huntWorkers, "hunt-workers", 0, "hunt: parallel worlds (default GOMAXPROCS)")
	flag.BoolVar(&huntPlant, "hunt-plant", false, "hunt: enable the planted version-corruption bug (self-test; the hunt must find it)")
	flag.StringVar(&reproDir, "repro-dir", "hunt-repros", "hunt: directory to archive shrunk repro JSONs in on findings")
	flag.Parse()

	if *showList {
		list()
		return
	}
	if *repro != "" {
		runRepro(*repro)
		return
	}

	var wall bool
	switch *clockMode {
	case "virtual":
	case "wall":
		wall = true
	default:
		fmt.Fprintf(os.Stderr, "icgbench: unknown -clock mode %q (have virtual, wall)\n", *clockMode)
		os.Exit(2)
	}
	cfg := bench.Config{Wall: wall, Scale: *scale, Seed: *seed, Quick: *quick,
		Faults: *faultSpec, FaultLog: *faultLog, Check: *check, Trace: traceOut != ""}

	var names []string
	if *exp == "all" {
		names = expNames(true)
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := expByName(name); !ok {
				fmt.Fprintf(os.Stderr, "icgbench: unknown experiment %q (have %s)\n",
					name, strings.Join(expNames(false), ", "))
				os.Exit(2)
			}
			names = append(names, name)
		}
	}
	if *sweep && !contains(names, "sweep") {
		names = append(names, "sweep")
	}

	for _, name := range names {
		e, _ := expByName(name)
		start := time.Now()
		out := e.run(cfg)
		fmt.Print(out)
		fmt.Printf("-- %s completed in %v (wall)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
