// Command icgbench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrates. Each experiment prints rows
// mirroring the corresponding figure; latencies are always reported in
// model time (the paper's axes).
//
// By default experiments run on the virtual clock: a deterministic
// discrete-event scheduler that never sleeps, so whole-figure sweeps
// finish at CPU speed and the same seed reproduces byte-identical output.
// -clock=wall selects the scaled real-time mode instead (useful for
// watching an experiment unfold); -scale then sets the model-to-wall
// speedup.
//
// Usage:
//
//	icgbench -exp fig5                       # one experiment, virtual time
//	icgbench -exp all -quick                 # smoke-run everything
//	icgbench -exp fig6 -clock=wall -scale .5 # real-time-ish demo run
//
// Experiments: fig5 (single-request latency), fig6 (YCSB latency vs
// throughput), fig7 (divergence), fig8 (bandwidth), fig9 (ZK latency gaps),
// fig10 (dequeue bandwidth), fig11 (speculation case studies), fig12
// (ticket selling). Beyond the paper: ablations, and faultstudy — YCSB
// under a deterministic fault schedule (-faults selects the scenario,
// -fault-log prints the transition log, -fault-json writes the result):
//
//	icgbench -exp faultstudy -faults=minority-partition -fault-log
//	icgbench -exp faultstudy -faults=1234:harsh          # replay seed 1234
//
// failover partitions the Correctable ZooKeeper leader mid-run and measures
// recovery: time-to-recovery (leader election), the preliminary-only
// availability window, and weak-vs-strong latency per phase for the
// majority and severed-minority client populations. Its history check
// always runs, and any violation exits nonzero:
//
//	icgbench -exp failover -fault-log
//	icgbench -exp failover -fault-json BENCH_failover.json
//
// overload drives an open-loop burst into a single coordinator twice — once
// with admission control off (a metastable retry storm the system never
// escapes) and once with it on (token buckets, AIMD backpressure,
// degrade-to-preliminary shedding). Its history check always runs. sweep
// produces the fig6/fig7 trend as one table: read latency vs quorum size
// and RTT geography. Both write JSON via -fault-json:
//
//	icgbench -exp overload -fault-json BENCH_overload.json
//	icgbench -exp sweep -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"correctables/internal/bench"
	"correctables/internal/faults"
)

var experiments = map[string]func(bench.Config) string{
	"fig5":  func(c bench.Config) string { return bench.FormatFig5(bench.Fig5(c)) },
	"fig6":  func(c bench.Config) string { return bench.FormatFig6(bench.Fig6(c)) },
	"fig7":  func(c bench.Config) string { return bench.FormatFig7(bench.Fig7(c)) },
	"fig8":  func(c bench.Config) string { return bench.FormatFig8(bench.Fig8(c)) },
	"fig9":  func(c bench.Config) string { return bench.FormatFig9(bench.Fig9(c)) },
	"fig10": func(c bench.Config) string { return bench.FormatFig10(bench.Fig10(c)) },
	"fig11": func(c bench.Config) string { return bench.FormatFig11(bench.Fig11(c)) },
	"fig12": func(c bench.Config) string { return bench.FormatFig12(bench.Fig12(c)) },
	// Ablations beyond the paper's figures (run via -exp ablations).
	"ablations": func(c bench.Config) string {
		return bench.FormatAblationLag(bench.AblationReplicationLag(c)) +
			bench.FormatAblationFlush(bench.AblationFlushCost(c))
	},
	// Fault study (run via -exp faultstudy; -faults picks the scenario,
	// -check verifies the run's recorded history).
	"faultstudy": func(c bench.Config) string {
		res, err := bench.FaultStudy(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
			os.Exit(2)
		}
		if faultJSON != "" {
			data, err := bench.FaultStudyJSON(res)
			if err == nil {
				err = os.WriteFile(faultJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "icgbench: writing %s: %v\n", faultJSON, err)
				os.Exit(1)
			}
		}
		out := bench.FormatFaultStudy(res, c.FaultLog)
		if res.Check != nil && res.Check.Violations() > 0 {
			// The consistency check gate: print everything, then fail.
			fmt.Print(out)
			fmt.Fprintf(os.Stderr, "icgbench: consistency check FAILED with %d violations (seed %d replays them byte-identically)\n",
				res.Check.Violations(), c.Seed)
			os.Exit(3)
		}
		return out
	},
	// Overload experiment (run via -exp overload): an open-loop burst tips
	// the coordinator into a metastable retry storm, once with admission
	// control off and once with it on. The history check always runs.
	"overload": func(c bench.Config) string {
		res, err := bench.Overload(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
			os.Exit(2)
		}
		if faultJSON != "" {
			data, err := bench.OverloadJSON(res)
			if err == nil {
				err = os.WriteFile(faultJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "icgbench: writing %s: %v\n", faultJSON, err)
				os.Exit(1)
			}
		}
		out := bench.FormatOverload(res)
		var violations int
		for _, m := range res.Modes {
			if m.Check != nil {
				violations += m.Check.Violations()
			}
		}
		if violations > 0 {
			fmt.Print(out)
			fmt.Fprintf(os.Stderr, "icgbench: consistency check FAILED with %d violations (seed %d replays them byte-identically)\n",
				violations, c.Seed)
			os.Exit(3)
		}
		return out
	},
	// Quorum x geography sweep (run via -exp sweep): the fig6/fig7 trend in
	// one cheap table — preliminary-view latency pinned to the closest
	// replica, final-view latency paying for quorum size and distance.
	"sweep": func(c bench.Config) string {
		res := bench.Sweep(c)
		if faultJSON != "" {
			data, err := bench.SweepJSON(res)
			if err == nil {
				err = os.WriteFile(faultJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "icgbench: writing %s: %v\n", faultJSON, err)
				os.Exit(1)
			}
		}
		return bench.FormatSweep(res)
	},
	// Failover experiment (run via -exp failover): a partition severs the
	// zk leader mid-run; measures time-to-recovery and the prelim-only
	// availability window. The history check always runs.
	"failover": func(c bench.Config) string {
		c.Check = true
		res, err := bench.Failover(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icgbench: %v\n", err)
			os.Exit(2)
		}
		if faultJSON != "" {
			data, err := bench.FailoverJSON(res)
			if err == nil {
				err = os.WriteFile(faultJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "icgbench: writing %s: %v\n", faultJSON, err)
				os.Exit(1)
			}
		}
		out := bench.FormatFailover(res, c.FaultLog)
		if res.Check != nil && res.Check.Violations() > 0 {
			fmt.Print(out)
			fmt.Fprintf(os.Stderr, "icgbench: consistency check FAILED with %d violations (seed %d replays them byte-identically)\n",
				res.Check.Violations(), c.Seed)
			os.Exit(3)
		}
		return out
	},
}

// faultJSON is the -fault-json flag (consulted by the faultstudy entry).
var faultJSON string

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (fig5..fig12, 'all', 'ablations', 'faultstudy', 'failover', 'overload', 'sweep')")
		clockMode = flag.String("clock", "virtual", "clock mode: 'virtual' (deterministic, CPU speed) or 'wall' (scaled real time)")
		scale     = flag.Float64("scale", 0.25, "model-to-wall time scale in -clock=wall mode (1.0 = real time)")
		seed      = flag.Int64("seed", 42, "random seed")
		quick     = flag.Bool("quick", false, "reduced samples/durations (smoke run)")
		faultSpec = flag.String("faults", "",
			"fault scenario for -exp faultstudy: one of "+strings.Join(faults.ScenarioNames(), ", ")+
				", or '<seed>:<profile>' (profiles: mild, harsh) for a replayable random schedule; default minority-partition")
		faultLog = flag.Bool("fault-log", false, "print the applied fault-transition log with the fault study")
		sweep    = flag.Bool("sweep", false,
			"also run the quorum x geography parameter sweep (shorthand for adding 'sweep' to -exp)")
		check = flag.Bool("check", false,
			"faultstudy: run a consistency-checked session population alongside the measured one and verify its "+
				"recorded history (session guarantees + per-key linearizability); exit nonzero on any violation")
	)
	flag.StringVar(&faultJSON, "fault-json", "", "write the experiment result as JSON to this path (faultstudy, failover, overload, sweep)")
	flag.Parse()

	var wall bool
	switch *clockMode {
	case "virtual":
	case "wall":
		wall = true
	default:
		fmt.Fprintf(os.Stderr, "icgbench: unknown -clock mode %q (have virtual, wall)\n", *clockMode)
		os.Exit(2)
	}
	cfg := bench.Config{Wall: wall, Scale: *scale, Seed: *seed, Quick: *quick,
		Faults: *faultSpec, FaultLog: *faultLog, Check: *check}

	var names []string
	if *exp == "all" {
		// The paper's figures in order; ablations and the fault study are
		// opt-in (-exp ablations, -exp faultstudy).
		for name := range experiments {
			switch name {
			case "ablations", "faultstudy", "failover", "overload", "sweep":
			default:
				names = append(names, name)
			}
		}
		sort.Slice(names, func(i, j int) bool {
			// fig5 < fig6 < ... < fig10 < fig11 < fig12 (numeric order).
			return figNum(names[i]) < figNum(names[j])
		})
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "icgbench: unknown experiment %q (have fig5..fig12)\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
	}
	if *sweep && !contains(names, "sweep") {
		names = append(names, "sweep")
	}

	for _, name := range names {
		start := time.Now()
		out := experiments[name](cfg)
		fmt.Print(out)
		fmt.Printf("-- %s completed in %v (wall)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func figNum(name string) int {
	var n int
	fmt.Sscanf(name, "fig%d", &n)
	return n
}
