package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramRecordAfterSort(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	_ = h.Percentile(50) // forces sort
	h.Record(1 * time.Millisecond)
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("Min after late record = %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

// Property: percentiles are monotone in p, bounded by [Min, Max], and the
// mean lies within [Min, Max].
func TestPropertyHistogramInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Record(time.Duration(r) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		min, max, mean := h.Min(), h.Max(), h.Mean()
		return min <= mean && mean <= max &&
			h.Percentile(1) >= min && h.Percentile(100) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	s := h.Summarize()
	if s.Count != 2 || s.Mean != 15*time.Millisecond || s.Min != 10*time.Millisecond || s.Max != 20*time.Millisecond {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestRatioAndThroughput(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero total should be 0")
	}
	if got := Ratio(25, 100); got != 0.25 {
		t.Errorf("Ratio = %v", got)
	}
	if Throughput(100, 0) != 0 {
		t.Error("Throughput with zero elapsed should be 0")
	}
	if got := Throughput(100, 2*time.Second); got != 50 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Ms(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("Ms = %v", got)
	}
}

// TestHistogramPercentileEdgeCases pins the nearest-rank boundaries: an
// empty histogram reports zero for any p, a single sample answers every
// percentile, and tiny/huge p clamp to the first and last rank.
func TestHistogramPercentileEdgeCases(t *testing.T) {
	h := NewHistogram()
	for _, p := range []float64{0.001, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty P%v = %v, want 0", p, got)
		}
	}
	h.Record(7 * time.Millisecond)
	for _, p := range []float64{0.001, 1, 50, 99, 100} {
		if got := h.Percentile(p); got != 7*time.Millisecond {
			t.Errorf("single-sample P%v = %v, want 7ms", p, got)
		}
	}
	if h.Min() != 7*time.Millisecond || h.Max() != 7*time.Millisecond {
		t.Errorf("single-sample Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramMergeResorts: Merge must clear the destination's sort cache
// so percentiles after a merge reflect the combined sample set, and must
// leave the source untouched.
func TestHistogramMergeResorts(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []int{30, 40, 50} {
		h.Record(time.Duration(ms) * time.Millisecond)
	}
	if got := h.Min(); got != 30*time.Millisecond { // forces sort, caches it
		t.Fatalf("pre-merge Min = %v", got)
	}

	src := NewHistogram()
	for _, ms := range []int{10, 20} {
		src.Record(time.Duration(ms) * time.Millisecond)
	}
	h.Merge(src)
	if got := h.Count(); got != 5 {
		t.Fatalf("merged Count = %d, want 5", got)
	}
	if got := h.Min(); got != 10*time.Millisecond {
		t.Errorf("post-merge Min = %v, want 10ms (sort cache must clear)", got)
	}
	if got := h.Percentile(50); got != 30*time.Millisecond {
		t.Errorf("post-merge P50 = %v, want 30ms", got)
	}
	if got := src.Count(); got != 2 {
		t.Errorf("source Count = %d after merge, want 2 (unchanged)", got)
	}
	if got := src.Min(); got != 10*time.Millisecond {
		t.Errorf("source Min = %v after merge, want 10ms (unchanged)", got)
	}
}

// TestHistogramMergeNoOps: merging nil, merging an empty histogram, and
// merging a histogram into itself all leave the receiver unchanged.
func TestHistogramMergeNoOps(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	_ = h.Min() // cache the sort

	h.Merge(nil)
	h.Merge(NewHistogram())
	h.Merge(h)
	if got := h.Count(); got != 1 {
		t.Errorf("Count after no-op merges = %d, want 1", got)
	}
	if got := h.Percentile(99); got != 5*time.Millisecond {
		t.Errorf("P99 after no-op merges = %v, want 5ms", got)
	}
}
