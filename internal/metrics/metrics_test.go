package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("P50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramRecordAfterSort(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	_ = h.Percentile(50) // forces sort
	h.Record(1 * time.Millisecond)
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("Min after late record = %v", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

// Property: percentiles are monotone in p, bounded by [Min, Max], and the
// mean lies within [Min, Max].
func TestPropertyHistogramInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Record(time.Duration(r) * time.Microsecond)
		}
		prev := time.Duration(0)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		min, max, mean := h.Min(), h.Max(), h.Mean()
		return min <= mean && mean <= max &&
			h.Percentile(1) >= min && h.Percentile(100) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * time.Millisecond)
	h.Record(20 * time.Millisecond)
	s := h.Summarize()
	if s.Count != 2 || s.Mean != 15*time.Millisecond || s.Min != 10*time.Millisecond || s.Max != 20*time.Millisecond {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestRatioAndThroughput(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero total should be 0")
	}
	if got := Ratio(25, 100); got != 0.25 {
		t.Errorf("Ratio = %v", got)
	}
	if Throughput(100, 0) != 0 {
		t.Error("Throughput with zero elapsed should be 0")
	}
	if got := Throughput(100, 2*time.Second); got != 50 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Ms(1500 * time.Microsecond); got != 1.5 {
		t.Errorf("Ms = %v", got)
	}
}
