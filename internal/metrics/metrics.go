// Package metrics provides the measurement primitives the benchmark harness
// uses: latency histograms (average and percentiles, as reported in the
// paper's figures), counters, and throughput accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram collects duration samples and reports summary statistics. It is
// safe for concurrent use. Samples are retained exactly (the experiments in
// this repository record at most a few hundred thousand points), so
// percentiles are exact rather than approximated.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Reserve grows the sample buffer so the histogram can hold at least n
// total samples without reallocating. A size hint for long runs: the YCSB
// runner reserves the merged sample count before folding in per-thread
// shards, so wide-client runs do one allocation per histogram instead of
// O(log n) doubling copies.
func (h *Histogram) Reserve(n int) {
	h.mu.Lock()
	if cap(h.samples) < n {
		s := make([]time.Duration, len(h.samples), n)
		copy(s, h.samples)
		h.samples = s
	}
	h.mu.Unlock()
}

// RecordBatch adds a batch of samples under one lock acquisition.
func (h *Histogram) RecordBatch(ds []time.Duration) {
	if len(ds) == 0 {
		return
	}
	h.mu.Lock()
	h.samples = append(h.samples, ds...)
	h.sorted = false
	h.mu.Unlock()
}

// Merge folds every sample of other into h (other is left unchanged).
// Merging clears the sort cache, so a percentile read after a Merge
// re-sorts over the combined sample set. Merging a histogram into itself
// or merging nil is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	other.mu.Lock()
	samples := append([]time.Duration(nil), other.samples...)
	other.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	h.mu.Lock()
	h.samples = append(h.samples, samples...)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range h.samples {
		total += float64(s)
	}
	return time.Duration(total / float64(len(h.samples)))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// sortLocked sorts samples in place; callers hold h.mu.
func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Summary is a value snapshot of a histogram.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summarize computes a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

// String renders a Summary compactly in milliseconds.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fms p50=%.1fms p99=%.1fms",
		s.Count, Ms(s.Mean), Ms(s.P50), Ms(s.P99))
}

// Ms converts a duration to float milliseconds (figure axes).
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Ratio returns c/total as a fraction, or 0 when total is zero.
func Ratio(c, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Throughput returns operations per second of model time.
func Throughput(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
