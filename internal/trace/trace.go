// Package trace is the repo's deterministic, model-time observability
// plane: a span tracer plus a sampled time-series registry, both stamped
// exclusively with virtual-clock instants so that same-seed runs produce
// byte-identical artifacts.
//
// The tracer is nil-safe throughout — every method on a nil *Tracer is a
// no-op returning zero values — so instrumented hot paths pay a single
// pointer comparison when tracing is off. When tracing is on, spans are
// stored by value in an appending slice (amortized-zero allocation, the
// same freelist-flavored idiom the PR 3 scheduler uses for timers); the
// enabled path is alloc-gated in CI next to the disabled one.
//
// The package imports only the standard library: netsim, binding, the
// store bindings, load, and bench all sit above it in the import graph.
package trace

import (
	"sync"
	"time"
)

// Category classifies a span for latency decomposition. Categories are a
// closed set so that CategoryTotals is a flat array sum, and so report
// columns are stable across experiments.
type Category uint8

const (
	// CatOp is a root client-operation span (invoke to final view/error).
	CatOp Category = iota
	// CatAdmission covers admission-gate activity: token waits, rejects,
	// degrades, and retry backoff windows.
	CatAdmission
	// CatNetClient is time on the wire on client<->coordinator links.
	CatNetClient
	// CatNetReplica is time on the wire on replica<->replica links.
	CatNetReplica
	// CatQueue is server worker-slot queueing (arrival to service start).
	CatQueue
	// CatServer is server service time (slot occupied doing work).
	CatServer
	// CatFlush is the preliminary-response flush: local result serialized
	// and shipped to the client ahead of the quorum.
	CatFlush
	// CatQuorum is coordinator wait for remote acknowledgements (read
	// quorum gathering, write sync legs, zk proposal acks).
	CatQuorum
	// CatRepair is read-repair work (blocking or async).
	CatRepair
	// CatHint is hinted-handoff activity: buffering and replay.
	CatHint
	// CatElection covers leader-election windows and resync transfers.
	CatElection
	// CatRoute is shard routing: a contact node forwarding a request whose
	// key lives on another shard's coordinator (token-ring lookup plus the
	// intra-region hop).
	CatRoute
	// CatBatch is a coalesced dispatch: one coordinator round serving every
	// same-shard operation collected in a batch window.
	CatBatch

	numCategories
)

var catNames = [numCategories]string{
	"op", "admission", "net.client", "net.replica", "queue",
	"server", "flush", "quorum", "repair", "hint", "election",
	"route", "batch",
}

// String returns the category's stable report/export name.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// Categories lists every category in declaration order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Track identifies a named timeline (a Perfetto "process"): one per
// client, per server, per link pair. Zero is the nil track.
type Track int32

// SpanID refers to an open span. Zero is the nil span.
type SpanID uint32

// span is one recorded interval. end < 0 marks a still-open span.
type span struct {
	track  Track
	cat    Category
	name   string
	detail string
	start  time.Duration
	end    time.Duration
}

// instant is a point event on a track.
type instant struct {
	track  Track
	name   string
	detail string
	at     time.Duration
}

// Tracer records spans and instants in model time. All methods are safe
// for concurrent use and safe on a nil receiver.
type Tracer struct {
	mu       sync.Mutex
	tracks   []string
	spans    []span
	instants []instant
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Track interns a timeline name and returns its handle. Callers resolve
// tracks once at wiring time so per-event paths touch no maps or string
// building. Repeated names return the same handle.
func (t *Tracer) Track(name string) Track {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.tracks {
		if n == name {
			return Track(i + 1)
		}
	}
	t.tracks = append(t.tracks, name)
	return Track(len(t.tracks))
}

// Begin opens a span at the given model instant and returns its ID.
func (t *Tracer) Begin(tr Track, cat Category, name, detail string, at time.Duration) SpanID {
	if t == nil || tr == 0 {
		return 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, span{track: tr, cat: cat, name: name, detail: detail, start: at, end: -1})
	id := SpanID(len(t.spans))
	t.mu.Unlock()
	return id
}

// End closes an open span at the given model instant.
func (t *Tracer) End(id SpanID, at time.Duration) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	sp := &t.spans[id-1]
	if sp.end < 0 {
		sp.end = at
	}
	t.mu.Unlock()
}

// Annotate attaches a detail string to an open or closed span, replacing
// any previous detail (last annotation wins: "drop" then "stall" records
// the final verdict the message saw).
func (t *Tracer) Annotate(id SpanID, detail string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	t.spans[id-1].detail = detail
	t.mu.Unlock()
}

// Span records a complete interval in one call. Both instants may lie in
// the model future (the exact-reservation server emits queue/service
// spans from deadlines it already knows).
func (t *Tracer) Span(tr Track, cat Category, name, detail string, start, end time.Duration) {
	if t == nil || tr == 0 {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, span{track: tr, cat: cat, name: name, detail: detail, start: start, end: end})
	t.mu.Unlock()
}

// Instant records a point event.
func (t *Tracer) Instant(tr Track, name, detail string, at time.Duration) {
	if t == nil || tr == 0 {
		return
	}
	t.mu.Lock()
	t.instants = append(t.instants, instant{track: tr, name: name, detail: detail, at: at})
	t.mu.Unlock()
}

// Counts returns the number of recorded spans and instants.
func (t *Tracer) Counts() (spans, instants int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans), len(t.instants)
}

// Totals is model time accumulated per category. Categories overlap by
// construction — a quorum-wait span covers its peers' net and server
// spans — so totals decompose activity, not wall latency: each value is
// the integral of "some span of this category was live" ... actually the
// plain sum of span durations (two concurrent ops both waiting on a
// server count twice, which is the queueing signal we want).
type Totals [numCategories]time.Duration

// Get returns the accumulated duration for a category.
func (tt Totals) Get(c Category) time.Duration {
	if int(c) < len(tt) {
		return tt[c]
	}
	return 0
}

// Ms returns the accumulated duration in milliseconds.
func (tt Totals) Ms(c Category) float64 {
	return float64(tt.Get(c)) / float64(time.Millisecond)
}

// CategoryTotals sums span durations per category, clipped to the model
// window [start, end). Open spans are clipped at the window end. Use one
// call per experiment phase to build latency-decomposition rows.
func (t *Tracer) CategoryTotals(start, end time.Duration) Totals {
	var tt Totals
	if t == nil {
		return tt
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		sp := &t.spans[i]
		s, e := sp.start, sp.end
		if e < 0 {
			e = end
		}
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		if e > s {
			tt[sp.cat] += e - s
		}
	}
	return tt
}
