package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteChrome emits the trace in Chrome trace-event JSON (the legacy
// array-of-events form), which Perfetto (https://ui.perfetto.dev) and
// chrome://tracing both load. reg may be nil; when present its sampled
// series are appended as counter tracks.
//
// Layout: each Track becomes a process (pid = track handle, named by a
// process_name metadata event, ordered by creation). Overlapping spans on
// one track — server slots, concurrent messages on a link — are laid out
// on greedily assigned lanes (tids), so nothing is hidden by nesting
// rules. Timestamps are model time in microseconds with nanosecond
// precision. The emission order and number formatting are fully
// deterministic: same recorded events, same bytes.
func (t *Tracer) WriteChrome(w io.Writer, reg *Registry) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	var tracks []string
	var spans []span
	var instants []instant
	if t != nil {
		t.mu.Lock()
		tracks = append(tracks, t.tracks...)
		spans = append(spans, t.spans...)
		instants = append(instants, t.instants...)
		t.mu.Unlock()
	}

	for i, name := range tracks {
		emit(`{"name":"process_name","ph":"M","pid":` + strconv.Itoa(i+1) +
			`,"args":{"name":` + jstr(name) + `}}`)
		emit(`{"name":"process_sort_index","ph":"M","pid":` + strconv.Itoa(i+1) +
			`,"args":{"sort_index":` + strconv.Itoa(i+1) + `}}`)
	}

	// Group spans per track, keeping recording order as the tiebreak so
	// the layout is stable, then lay overlapping spans out on lanes.
	byTrack := make([][]int, len(tracks)+1)
	for i := range spans {
		tr := spans[i].track
		byTrack[tr] = append(byTrack[tr], i)
	}
	for tr := 1; tr <= len(tracks); tr++ {
		idxs := byTrack[tr]
		sort.SliceStable(idxs, func(a, b int) bool {
			return spans[idxs[a]].start < spans[idxs[b]].start
		})
		var lanes []time.Duration // per-lane last end
		for _, i := range idxs {
			sp := spans[i]
			end := sp.end
			if end < 0 {
				// Open span: export as zero-length at its start.
				end = sp.start
			}
			lane := -1
			for l, busyUntil := range lanes {
				if busyUntil <= sp.start {
					lane = l
					break
				}
			}
			if lane < 0 {
				lanes = append(lanes, 0)
				lane = len(lanes) - 1
			}
			lanes[lane] = end
			line := `{"name":` + jstr(sp.name) + `,"cat":` + jstr(sp.cat.String()) +
				`,"ph":"X","ts":` + usec(sp.start) + `,"dur":` + usec(end-sp.start) +
				`,"pid":` + strconv.Itoa(tr) + `,"tid":` + strconv.Itoa(lane+1)
			if sp.detail != "" {
				line += `,"args":{"detail":` + jstr(sp.detail) + `}`
			}
			emit(line + "}")
		}
	}

	sort.SliceStable(instants, func(a, b int) bool {
		if instants[a].track != instants[b].track {
			return instants[a].track < instants[b].track
		}
		return instants[a].at < instants[b].at
	})
	for _, in := range instants {
		line := `{"name":` + jstr(in.name) + `,"ph":"i","s":"p","ts":` + usec(in.at) +
			`,"pid":` + strconv.Itoa(int(in.track)) + `,"tid":1`
		if in.detail != "" {
			line += `,"args":{"detail":` + jstr(in.detail) + `}`
		}
		emit(line + "}")
	}

	if reg != nil {
		pid := len(tracks) + 1
		emit(`{"name":"process_name","ph":"M","pid":` + strconv.Itoa(pid) +
			`,"args":{"name":"metrics"}}`)
		for _, s := range reg.Series() {
			for _, p := range s.Points {
				emit(`{"name":` + jstr(s.Name) + `,"ph":"C","ts":` +
					strconv.FormatFloat(p.TMs*1000, 'f', 3, 64) +
					`,"pid":` + strconv.Itoa(pid) + `,"args":{"v":` +
					strconv.FormatFloat(p.V, 'f', -1, 64) + `}}`)
			}
		}
	}

	bw.WriteString("\n]\n")
	return bw.Flush()
}

// usec renders a model duration as microseconds with fixed nanosecond
// precision — fixed width keeps the output byte-stable.
func usec(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 3, 64)
}

// jstr JSON-quotes a string.
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
