package trace

import (
	"sync"
	"time"
)

// Clock is the minimal scheduling surface the registry needs; it is
// structurally satisfied by netsim.Clock (both VirtualClock and
// WallClock) without this package importing netsim.
type Clock interface {
	Now() time.Duration
	RunAfter(d time.Duration, fn func())
}

// Point is one sample of one series, in model time.
type Point struct {
	// TMs is the sample instant in model milliseconds.
	TMs float64 `json:"t_ms"`
	// V is the gauge value at that instant.
	V float64 `json:"v"`
}

// TimeSeries is a named sampled series, JSON-ready for experiment
// reports.
type TimeSeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Registry holds named gauges and the samples taken from them. Gauge
// functions are read in registration order at every sample tick, inline
// in clock-callback context — they must not block (reading an atomic, a
// queue depth, a cumulative meter counter).
type Registry struct {
	mu     sync.Mutex
	names  []string
	fns    []func() float64
	points [][]Point
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Gauge registers a named gauge. Safe on a nil receiver (no-op).
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.names = append(r.names, name)
	r.fns = append(r.fns, fn)
	r.points = append(r.points, nil)
	r.mu.Unlock()
}

// Sample reads every gauge once, stamping the samples with the given
// model instant.
func (r *Registry) Sample(now time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fns := r.fns
	r.mu.Unlock()
	// Gauge functions run outside the lock (they may consult structures
	// that themselves trace). Registration is wiring-time-only, so the
	// snapshot above is stable.
	tms := float64(now) / float64(time.Millisecond)
	for i, fn := range fns {
		v := fn()
		r.mu.Lock()
		r.points[i] = append(r.points[i], Point{TMs: tms, V: v})
		r.mu.Unlock()
	}
}

// Start arms a self-rescheduling probe: every `every` of model time it
// samples all gauges, until the next tick would land past `until`. The
// horizon is mandatory — an unbounded RunAfter chain would keep
// VirtualClock.Drain from ever terminating.
func (r *Registry) Start(clock Clock, every, until time.Duration) {
	if r == nil || clock == nil || every <= 0 {
		return
	}
	var tick func()
	tick = func() {
		now := clock.Now()
		if now > until {
			return
		}
		r.Sample(now)
		if now+every <= until {
			clock.RunAfter(every, tick)
		}
	}
	clock.RunAfter(every, tick)
}

// Series snapshots every series in registration order.
func (r *Registry) Series() []TimeSeries {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TimeSeries, len(r.names))
	for i, name := range r.names {
		out[i] = TimeSeries{Name: name, Points: append([]Point(nil), r.points[i]...)}
	}
	return out
}
