package trace_test

import (
	"fmt"
	"io"
	"time"

	"correctables/internal/trace"
)

// Example_trace records a tiny two-op timeline by hand — a client op span,
// the server's queue/service spans, a preliminary-view instant — samples
// one gauge, and prints the latency decomposition plus the event counts of
// the Chrome export. In the real stack the same calls are made by netsim,
// the store bindings and the binding client when an experiment runs with
// tracing on (icgbench -trace out.json); everything is stamped with model
// time, so the same seed always reproduces this output byte for byte.
func Example_trace() {
	trc := trace.New()
	client := trc.Track("client/s-00")
	server := trc.Track("server/eu-frankfurt")

	op := trc.Begin(client, trace.CatOp, "get", "k1", 0)
	trc.Span(server, trace.CatQueue, "wait", "", 1*time.Millisecond, 3*time.Millisecond)
	trc.Span(server, trace.CatServer, "serve", "", 3*time.Millisecond, 5*time.Millisecond)
	trc.Instant(client, "prelim", "k1", 6*time.Millisecond)
	trc.End(op, 9*time.Millisecond)

	reg := trace.NewRegistry()
	depth := 4.0
	reg.Gauge("queue_depth", func() float64 { return depth })
	reg.Sample(2 * time.Millisecond)

	tt := trc.CategoryTotals(0, 10*time.Millisecond)
	for _, cat := range []trace.Category{trace.CatOp, trace.CatQueue, trace.CatServer} {
		fmt.Printf("%s: %.0fms\n", cat, tt.Ms(cat))
	}
	spans, instants := trc.Counts()
	fmt.Printf("spans=%d instants=%d gauges=%d\n", spans, instants, len(reg.Series()))

	// The Chrome export (elided here) loads directly in Perfetto.
	if err := trc.WriteChrome(io.Discard, reg); err != nil {
		fmt.Println("export failed:", err)
	}

	// Output:
	// op: 9ms
	// queue: 2ms
	// server: 2ms
	// spans=3 instants=1 gauges=1
}
