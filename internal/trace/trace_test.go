package trace

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"
)

// fakeClock is a minimal deterministic scheduler for registry tests.
type fakeClock struct {
	now time.Duration
	q   []fakeTimer
}

type fakeTimer struct {
	at time.Duration
	fn func()
}

func (c *fakeClock) Now() time.Duration { return c.now }

func (c *fakeClock) RunAfter(d time.Duration, fn func()) {
	c.q = append(c.q, fakeTimer{at: c.now + d, fn: fn})
}

func (c *fakeClock) drain() {
	for len(c.q) > 0 {
		sort.SliceStable(c.q, func(i, j int) bool { return c.q[i].at < c.q[j].at })
		t := c.q[0]
		c.q = c.q[1:]
		c.now = t.at
		t.fn()
	}
}

func record(t *Tracer) {
	cl := t.Track("client/s-00")
	srv := t.Track("server/par")
	id := t.Begin(cl, CatOp, "get", "", 0)
	t.Span(srv, CatQueue, "wait", "", 1*time.Millisecond, 2*time.Millisecond)
	t.Span(srv, CatServer, "serve", "", 2*time.Millisecond, 4*time.Millisecond)
	// Overlapping span on the same track exercises lane layout.
	t.Span(srv, CatServer, "serve", "", 3*time.Millisecond, 5*time.Millisecond)
	t.Instant(cl, "prelim", "", 3*time.Millisecond)
	t.Annotate(id, "k9")
	t.End(id, 6*time.Millisecond)
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	ta, tb := New(), New()
	record(ta)
	record(tb)
	if err := ta.WriteChrome(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same events produced different bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		`"process_name"`, `"client/s-00"`, `"server/par"`,
		`"ph":"X"`, `"ph":"i"`, `"cat":"queue"`, `"cat":"server"`,
		`"detail":"k9"`, `"tid":2`, // the overlapping span landed on lane 2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s:\n%s", want, out)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tk := tr.Track("x")
	if tk != 0 {
		t.Fatalf("nil tracer track = %d, want 0", tk)
	}
	id := tr.Begin(tk, CatOp, "get", "", 0)
	tr.Annotate(id, "d")
	tr.End(id, time.Second)
	tr.Span(tk, CatServer, "s", "", 0, time.Second)
	tr.Instant(tk, "i", "", 0)
	if got := tr.CategoryTotals(0, time.Second); got != (Totals{}) {
		t.Fatalf("nil tracer totals = %v", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var reg *Registry
	reg.Gauge("g", func() float64 { return 1 })
	reg.Sample(0)
	reg.Start(&fakeClock{}, time.Second, time.Minute)
	if reg.Series() != nil {
		t.Fatal("nil registry has series")
	}
}

func TestCategoryTotalsClipsToWindow(t *testing.T) {
	tr := New()
	tk := tr.Track("t")
	tr.Span(tk, CatServer, "s", "", 0, 10*time.Millisecond)
	tr.Span(tk, CatQueue, "q", "", 8*time.Millisecond, 12*time.Millisecond)
	open := tr.Begin(tk, CatQuorum, "qu", "", 9*time.Millisecond)
	_ = open // left open: clipped at window end

	tt := tr.CategoryTotals(5*time.Millisecond, 10*time.Millisecond)
	if got := tt.Get(CatServer); got != 5*time.Millisecond {
		t.Errorf("server total = %v, want 5ms", got)
	}
	if got := tt.Get(CatQueue); got != 2*time.Millisecond {
		t.Errorf("queue total = %v, want 2ms", got)
	}
	if got := tt.Get(CatQuorum); got != 1*time.Millisecond {
		t.Errorf("open quorum total = %v, want 1ms", got)
	}
	if got := tt.Get(CatOp); got != 0 {
		t.Errorf("op total = %v, want 0", got)
	}
}

func TestRegistrySamplingBoundedByHorizon(t *testing.T) {
	clock := &fakeClock{}
	reg := NewRegistry()
	n := 0.0
	reg.Gauge("ticks", func() float64 { n++; return n })
	reg.Start(clock, 10*time.Millisecond, 100*time.Millisecond)
	clock.drain() // must terminate: the probe stops at the horizon

	series := reg.Series()
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	pts := series[0].Points
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10 (10ms..100ms)", len(pts))
	}
	if pts[0].TMs != 10 || pts[9].TMs != 100 {
		t.Errorf("sample instants = %v..%v, want 10..100", pts[0].TMs, pts[9].TMs)
	}
	if pts[9].V != 10 {
		t.Errorf("last gauge value = %v, want 10", pts[9].V)
	}
}

func TestCountersInChromeOutput(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("depth", func() float64 { return 3.5 })
	reg.Sample(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := New().WriteChrome(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, `"depth"`, `"v":3.5`, `"metrics"`} {
		if !strings.Contains(out, want) {
			t.Errorf("counter output missing %s:\n%s", want, out)
		}
	}
}

func TestTrackInterning(t *testing.T) {
	tr := New()
	a := tr.Track("x")
	b := tr.Track("y")
	if a2 := tr.Track("x"); a2 != a {
		t.Errorf("re-interned track = %d, want %d", a2, a)
	}
	if a == b {
		t.Error("distinct names share a track")
	}
}
