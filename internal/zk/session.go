package zk

import (
	"fmt"
	"sync/atomic"

	"correctables/internal/netsim"
)

// sessionCounter issues ensemble-unique session IDs.
var sessionCounter atomic.Uint64

// Session is a client session with ephemeral-znode ownership, pinned to a
// contact server. Ephemeral znodes created through it are removed — on
// every replica, through the ordered protocol — when the session closes.
type Session struct {
	ID       string
	ensemble *Ensemble
	Region   netsim.Region
	Contact  netsim.Region
	closed   atomic.Bool
}

// NewSession opens a session from clientRegion via the contact server.
func (e *Ensemble) NewSession(clientRegion, contactRegion netsim.Region) *Session {
	e.Server(contactRegion) // validate eagerly
	return &Session{
		ID:       fmt.Sprintf("sess-%06d", sessionCounter.Add(1)),
		ensemble: e,
		Region:   clientRegion,
		Contact:  contactRegion,
	}
}

// commit runs a transaction through the ordered protocol on behalf of the
// session, charging the client and forwarding hops.
func (s *Session) commit(txn Txn) (TxnResult, error) {
	if s.closed.Load() {
		return TxnResult{}, fmt.Errorf("zk: session %s is closed", s.ID)
	}
	tr := s.ensemble.tr
	contact := s.ensemble.Server(s.Contact)
	tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(txn.PayloadSize()))
	contact.process()
	_, res := s.ensemble.ForwardAndCommit(contact, txn)
	tr.Travel(s.Contact, s.Region, netsim.LinkClient, responseSize(len(res.CreatedPath)+8))
	return res, nil
}

// Create makes a persistent znode.
func (s *Session) Create(path string, data []byte, sequential bool) (string, error) {
	res, err := s.commit(CreateTxn{Path: path, Data: data, Sequential: sequential})
	if err != nil {
		return "", err
	}
	return res.CreatedPath, res.Err
}

// CreateEphemeral makes a znode owned by this session.
func (s *Session) CreateEphemeral(path string, data []byte, sequential bool) (string, error) {
	res, err := s.commit(CreateTxn{Path: path, Data: data, Sequential: sequential, Owner: s.ID})
	if err != nil {
		return "", err
	}
	return res.CreatedPath, res.Err
}

// SetData replaces a znode's data (version -1 skips the check).
func (s *Session) SetData(path string, data []byte, version int32) error {
	res, err := s.commit(SetDataTxn{Path: path, Data: data, Version: version})
	if err != nil {
		return err
	}
	return res.Err
}

// Delete removes a znode (version -1 skips the check).
func (s *Session) Delete(path string, version int32) error {
	res, err := s.commit(DeleteTxn{Path: path, Version: version})
	if err != nil {
		return err
	}
	return res.Err
}

// Get reads from the contact server's local (committed) state, charging the
// client link, like a ZooKeeper read.
func (s *Session) Get(path string) ([]byte, int32, error) {
	tr := s.ensemble.tr
	contact := s.ensemble.Server(s.Contact)
	tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(len(path)))
	contact.process()
	data, ver, err := contact.tree.Get(path)
	tr.Travel(s.Contact, s.Region, netsim.LinkClient, responseSize(len(data)))
	return data, ver, err
}

// ChildrenW lists children on the contact server and leaves a one-shot
// watch that fires when the child set changes on that server.
func (s *Session) ChildrenW(path string) ([]string, <-chan Event, error) {
	tr := s.ensemble.tr
	contact := s.ensemble.Server(s.Contact)
	tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(len(path)))
	contact.process()
	kids, watch, err := contact.tree.ChildrenW(path)
	tr.Travel(s.Contact, s.Region, netsim.LinkClient, childrenResponseSize(kids))
	return kids, watch, err
}

// ExistsW reports existence on the contact server with a one-shot watch.
func (s *Session) ExistsW(path string) (bool, <-chan Event) {
	tr := s.ensemble.tr
	contact := s.ensemble.Server(s.Contact)
	tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(len(path)))
	contact.process()
	ok, watch := contact.tree.ExistsW(path)
	tr.Travel(s.Contact, s.Region, netsim.LinkClient, responseSize(1))
	return ok, watch
}

// Close ends the session, removing its ephemeral znodes on every replica.
// Further operations fail. Close is idempotent.
func (s *Session) Close() ([]string, error) {
	if s.closed.Swap(true) {
		return nil, nil
	}
	tr := s.ensemble.tr
	contact := s.ensemble.Server(s.Contact)
	tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(len(s.ID)))
	contact.process()
	_, res := s.ensemble.ForwardAndCommit(contact, CloseSessionTxn{SessionID: s.ID})
	tr.Travel(s.Contact, s.Region, netsim.LinkClient, responseSize(4))
	return res.RemovedPaths, res.Err
}
