package zk

import (
	"fmt"
	"sync/atomic"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// sessionCounter issues ensemble-unique session IDs.
var sessionCounter atomic.Uint64

// Session is a client session with ephemeral-znode ownership, pinned to a
// contact server. Ephemeral znodes created through it are removed — on
// every replica, through the ordered protocol — when the session closes.
type Session struct {
	ID       string
	ensemble *Ensemble
	Region   netsim.Region
	Contact  netsim.Region
	closed   atomic.Bool
}

// NewSession opens a session from clientRegion via the contact server.
func (e *Ensemble) NewSession(clientRegion, contactRegion netsim.Region) *Session {
	e.Server(contactRegion) // validate eagerly
	return &Session{
		ID:       fmt.Sprintf("sess-%06d", sessionCounter.Add(1)),
		ensemble: e,
		Region:   clientRegion,
		Contact:  contactRegion,
	}
}

// guarded bounds a session operation to the ensemble's OpTimeout of model
// time when a fault interceptor is attached (see cassandra.Client.Read for
// the semantics): a partitioned contact or a leader cut off from its
// quorum fails the call with faults.ErrUnreachable instead of hanging the
// caller until the heal. Results must be published through the live()
// predicate the closure receives, so a call that already timed out never
// writes caller state. Without an interceptor op runs inline and
// unguarded — the fault-free path is unchanged.
func (s *Session) guarded(op func(live func() bool) error) error {
	tr := s.ensemble.tr
	if tr.Interceptor() == nil {
		return op(func() bool { return true })
	}
	return faults.Deadline(tr.Clock(), s.ensemble.cfg.OpTimeout, op)
}

// roundTrip is the shared scaffold of every session operation: charge the
// request on the client link, process at the contact, run op there, charge
// its response, and publish results only while the guard considers the
// call live. op returns the response wire size, a publish closure that
// writes the caller's results (nil for none), and the operation error.
func (s *Session) roundTrip(reqBytes int, op func(contact *Server) (respBytes int, publish func(), err error)) error {
	return s.guarded(func(live func() bool) error {
		tr := s.ensemble.tr
		contact := s.ensemble.Server(s.Contact)
		tr.Travel(s.Region, s.Contact, netsim.LinkClient, requestSize(reqBytes))
		contact.process()
		respBytes, publish, err := op(contact)
		tr.Travel(s.Contact, s.Region, netsim.LinkClient, respBytes)
		if publish != nil && live() {
			publish()
		}
		return err
	})
}

// commit runs a transaction through the ordered protocol on behalf of the
// session, charging the client and forwarding hops. It is bounded by the
// ensemble's OpTimeout under fault injection.
func (s *Session) commit(txn Txn) (TxnResult, error) {
	if s.closed.Load() {
		return TxnResult{}, fmt.Errorf("zk: session %s is closed", s.ID)
	}
	var out TxnResult
	err := s.roundTrip(txn.PayloadSize(), func(contact *Server) (int, func(), error) {
		_, res := s.ensemble.ForwardAndCommit(contact, txn)
		return responseSize(len(res.CreatedPath) + 8), func() { out = res }, nil
	})
	return out, err
}

// Create makes a persistent znode.
func (s *Session) Create(path string, data []byte, sequential bool) (string, error) {
	res, err := s.commit(CreateTxn{Path: path, Data: data, Sequential: sequential})
	if err != nil {
		return "", err
	}
	return res.CreatedPath, res.Err
}

// CreateEphemeral makes a znode owned by this session.
func (s *Session) CreateEphemeral(path string, data []byte, sequential bool) (string, error) {
	res, err := s.commit(CreateTxn{Path: path, Data: data, Sequential: sequential, Owner: s.ID})
	if err != nil {
		return "", err
	}
	return res.CreatedPath, res.Err
}

// SetData replaces a znode's data (version -1 skips the check).
func (s *Session) SetData(path string, data []byte, version int32) error {
	res, err := s.commit(SetDataTxn{Path: path, Data: data, Version: version})
	if err != nil {
		return err
	}
	return res.Err
}

// Delete removes a znode (version -1 skips the check).
func (s *Session) Delete(path string, version int32) error {
	res, err := s.commit(DeleteTxn{Path: path, Version: version})
	if err != nil {
		return err
	}
	return res.Err
}

// Get reads from the contact server's local (committed) state, charging the
// client link, like a ZooKeeper read. It is bounded by the ensemble's
// OpTimeout under fault injection (a partitioned contact fails with
// faults.ErrUnreachable instead of hanging).
func (s *Session) Get(path string) ([]byte, int32, error) {
	var data []byte
	var ver int32
	err := s.roundTrip(len(path), func(contact *Server) (int, func(), error) {
		d, v, err := contact.tree.Get(path)
		return responseSize(len(d)), func() { data, ver = d, v }, err
	})
	return data, ver, err
}

// ChildrenW lists children on the contact server and leaves a one-shot
// watch that fires when the child set changes on that server. Bounded like
// Get under fault injection.
func (s *Session) ChildrenW(path string) ([]string, <-chan Event, error) {
	var kids []string
	var watch <-chan Event
	err := s.roundTrip(len(path), func(contact *Server) (int, func(), error) {
		k, w, err := contact.tree.ChildrenW(path)
		return childrenResponseSize(k), func() { kids, watch = k, w }, err
	})
	return kids, watch, err
}

// ExistsW reports existence on the contact server with a one-shot watch.
// Bounded like Get under fault injection: a timed-out call returns
// faults.ErrUnreachable — never a nil watch a caller could park on
// forever, nor a false "does not exist" for a node it simply could not
// reach.
func (s *Session) ExistsW(path string) (bool, <-chan Event, error) {
	var exists bool
	var watch <-chan Event
	err := s.roundTrip(len(path), func(contact *Server) (int, func(), error) {
		ok, w := contact.tree.ExistsW(path)
		return responseSize(1), func() { exists, watch = ok, w }, nil
	})
	return exists, watch, err
}

// Close ends the session, removing its ephemeral znodes on every replica.
// Further operations fail. Close is idempotent. Under fault injection a
// Close the faults make impossible fails with faults.ErrUnreachable (the
// replicated teardown still completes in the background once the fault
// heals).
func (s *Session) Close() ([]string, error) {
	if s.closed.Swap(true) {
		return nil, nil
	}
	var removed []string
	err := s.roundTrip(len(s.ID), func(contact *Server) (int, func(), error) {
		_, res := s.ensemble.ForwardAndCommit(contact, CloseSessionTxn{SessionID: s.ID})
		return responseSize(4), func() { removed = res.RemovedPaths }, res.Err
	})
	return removed, err
}
