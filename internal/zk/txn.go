package zk

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// TxnResult is the deterministic outcome of applying a transaction to a
// tree. Every replica applying the same committed sequence computes the
// same results; the client receives the leader's copy.
type TxnResult struct {
	// CreatedPath is the actual path of a created znode (sequential names
	// resolved).
	CreatedPath string
	// Element is the dequeued element for DequeueMinTxn (nil if the queue
	// was empty).
	Element *QueueElement
	// Remaining is the number of elements left in the queue after a
	// DequeueMinTxn.
	Remaining int
	// RemovedPaths lists the znodes a CloseSessionTxn removed.
	RemovedPaths []string
	// Err is the operation error (ErrNoNode, ErrBadVersion, ...); a failed
	// transaction is still a deterministic no-op everywhere.
	Err error
}

// QueueElement is one element of a replicated queue.
type QueueElement struct {
	// Name is the znode name ("q-0000000042").
	Name string
	// Seq is the sequence number parsed from the name: the paper's "ticket
	// number", the element's position in enqueue order.
	Seq uint64
	// Data is the element payload.
	Data []byte
}

// EqualValue lets QueueElement participate in Correctable divergence checks
// by identity (name), ignoring payload copies.
func (e *QueueElement) EqualValue(other interface{}) bool {
	o, ok := other.(*QueueElement)
	if !ok {
		return false
	}
	if e == nil || o == nil {
		return e == o
	}
	return e.Name == o.Name
}

// seqOf parses the trailing sequence number of a sequential znode name.
func seqOf(name string) uint64 {
	if len(name) < 10 {
		return 0
	}
	n, err := strconv.ParseUint(name[len(name)-10:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Txn is a deterministic state transition on the znode tree.
type Txn interface {
	// Apply mutates the tree and returns the outcome.
	Apply(t *Tree) TxnResult
	// PayloadSize is the wire footprint of the transaction body.
	PayloadSize() int
	// TxnName names the transaction type for diagnostics.
	TxnName() string
}

// CreateTxn creates a znode (optionally sequential; a non-empty Owner makes
// it ephemeral, removed when that session closes).
type CreateTxn struct {
	Path       string
	Data       []byte
	Sequential bool
	Owner      string
}

// Apply implements Txn.
func (x CreateTxn) Apply(t *Tree) TxnResult {
	created, err := t.CreateOwned(x.Path, x.Data, x.Sequential, x.Owner)
	return TxnResult{CreatedPath: created, Err: err}
}

// PayloadSize implements Txn.
func (x CreateTxn) PayloadSize() int { return len(x.Path) + len(x.Data) }

// TxnName implements Txn.
func (x CreateTxn) TxnName() string { return "create" }

// DeleteTxn removes a znode, optionally guarded by a version.
type DeleteTxn struct {
	Path    string
	Version int32
}

// Apply implements Txn.
func (x DeleteTxn) Apply(t *Tree) TxnResult {
	return TxnResult{Err: t.Delete(x.Path, x.Version)}
}

// PayloadSize implements Txn.
func (x DeleteTxn) PayloadSize() int { return len(x.Path) + 4 }

// TxnName implements Txn.
func (x DeleteTxn) TxnName() string { return "delete" }

// SetDataTxn replaces a znode's data.
type SetDataTxn struct {
	Path    string
	Data    []byte
	Version int32
}

// Apply implements Txn.
func (x SetDataTxn) Apply(t *Tree) TxnResult {
	return TxnResult{Err: t.SetData(x.Path, x.Data, x.Version)}
}

// PayloadSize implements Txn.
func (x SetDataTxn) PayloadSize() int { return len(x.Path) + len(x.Data) + 4 }

// TxnName implements Txn.
func (x SetDataTxn) TxnName() string { return "setData" }

// DequeueMinTxn atomically removes the head (smallest sequential child) of
// a queue directory and returns it. This is the CZK server-side dequeue:
// because the pick happens inside the totally ordered transaction, clients
// never race each other and never retry (§6.2.2).
type DequeueMinTxn struct {
	Dir string
}

// Apply implements Txn.
func (x DequeueMinTxn) Apply(t *Tree) TxnResult {
	name, data, count, err := t.FirstChild(x.Dir)
	if err != nil {
		return TxnResult{Err: err}
	}
	if name == "" {
		return TxnResult{Element: nil, Remaining: 0}
	}
	if err := t.Delete(x.Dir+"/"+name, -1); err != nil {
		return TxnResult{Err: err}
	}
	return TxnResult{
		Element:   &QueueElement{Name: name, Seq: seqOf(name), Data: data},
		Remaining: count - 1,
	}
}

// PayloadSize implements Txn.
func (x DequeueMinTxn) PayloadSize() int { return len(x.Dir) }

// TxnName implements Txn.
func (x DequeueMinTxn) TxnName() string { return "dequeueMin" }

// CloseSessionTxn removes every ephemeral znode owned by a session — the
// replicated half of session teardown/expiry.
type CloseSessionTxn struct {
	SessionID string
}

// Apply implements Txn.
func (x CloseSessionTxn) Apply(t *Tree) TxnResult {
	removed := t.DeleteOwned(x.SessionID)
	return TxnResult{RemovedPaths: removed}
}

// PayloadSize implements Txn.
func (x CloseSessionTxn) PayloadSize() int { return len(x.SessionID) }

// TxnName implements Txn.
func (x CloseSessionTxn) TxnName() string { return "closeSession" }

// failsFast reports whether a failed prep-time validation should abort the
// transaction without committing (ZooKeeper returns BadVersion/NoNode
// errors from the leader's prep processor without broadcasting).
func failsFast(res TxnResult) bool {
	return res.Err != nil && (errors.Is(res.Err, ErrNoNode) ||
		errors.Is(res.Err, ErrBadVersion) ||
		errors.Is(res.Err, ErrNodeExists) ||
		errors.Is(res.Err, ErrNotEmpty))
}

// queueDir returns the canonical directory for a named queue.
func queueDir(queue string) string {
	return "/queues/" + strings.Trim(queue, "/")
}

// queueItemPrefix returns the sequential-create path prefix for a queue.
func queueItemPrefix(queue string) string {
	return queueDir(queue) + "/q-"
}

// elementPath returns the full path of a queue element znode.
func elementPath(queue, name string) string {
	return fmt.Sprintf("%s/%s", queueDir(queue), name)
}
