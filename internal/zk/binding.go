package zk

import (
	"context"
	"fmt"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// itemOf converts a protocol-level QueueView into the store-agnostic typed
// queue result. Divergence (for speculation and confirmation) is judged on
// the element identity only — see binding.Item.EqualValue.
func itemOf(v QueueView) binding.Item {
	it := binding.Item{Remaining: v.Remaining}
	if v.Element != nil {
		it.ID = v.Element.Name
		it.Data = v.Element.Data
		it.Exists = true
	}
	return it
}

// Binding adapts a QueueClient to the Correctables binding API. It offers
// weak (local simulation on the contact server) and strong (committed
// through the ordered protocol) levels for enqueue and dequeue; view values
// are binding.Item.
type Binding struct {
	qc *QueueClient
}

var _ binding.Binding = (*Binding)(nil)

// NewBinding wraps a queue client.
func NewBinding(qc *QueueClient) *Binding { return &Binding{qc: qc} }

// QueueClient returns the underlying queue client.
func (b *Binding) QueueClient() *QueueClient { return b.qc }

// ConsistencyLevels implements binding.Binding. Vanilla ZooKeeper offers a
// single, strong level (§5.2); the weak level (local simulation) exists
// only with the CZK server-side support.
func (b *Binding) ConsistencyLevels() core.Levels {
	if b.qc.Ensemble().Config().Correctable {
		return core.Levels{core.LevelWeak, core.LevelStrong}
	}
	return core.Levels{core.LevelStrong}
}

// Close implements binding.Binding.
func (b *Binding) Close() error { return nil }

// SubmitOperation implements binding.Binding. The client library bounds
// each invocation with the binding's DefaultOpTimeout (model time), so the
// protocol paths below run unguarded: a late completion's views are
// refused by the closed Correctable.
func (b *Binding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	clock := b.qc.Ensemble().Transport().Clock()
	wantWeak := levels.Contains(core.LevelWeak)
	wantStrong := levels.Contains(core.LevelStrong)
	if !wantWeak && !wantStrong {
		// Asynchronous error delivery needs no actor: run the callback at
		// the current instant on the dispatcher.
		clock.RunAfter(0, func() { cb(binding.Result{Err: fmt.Errorf("%w: %v", binding.ErrUnsupportedLevel, levels)}) })
		return
	}
	clock.Go(func() {
		var run func(wantPrelim bool, onView func(QueueView)) error
		switch o := op.(type) {
		case binding.Enqueue:
			run = func(wantPrelim bool, onView func(QueueView)) error {
				return b.qc.enqueue(o.Queue, o.Item, wantPrelim, onView)
			}
		case binding.Dequeue:
			run = func(wantPrelim bool, onView func(QueueView)) error {
				return b.qc.dequeue(o.Queue, wantPrelim, onView)
			}
		default:
			cb(binding.Result{Err: fmt.Errorf("%w: zk queues have no %q", binding.ErrUnsupportedOperation, op.OpName())})
			return
		}

		forward := func(v QueueView) {
			cb(binding.Result{Value: itemOf(v), Level: v.Level, Version: v.Zxid})
		}

		switch {
		case wantWeak && wantStrong:
			if err := run(true, forward); err != nil {
				cb(binding.Result{Err: err})
			}
		case wantStrong:
			if err := run(false, func(v QueueView) {
				forward(QueueView{Element: v.Element, Remaining: v.Remaining, Level: core.LevelStrong, Zxid: v.Zxid})
			}); err != nil {
				cb(binding.Result{Err: err})
			}
		case wantWeak:
			// InvokeWeak semantics (§4.3): answer from the local simulation
			// immediately; the operation itself completes in the background.
			delivered := make(chan struct{})
			var once bool
			err := run(true, func(v QueueView) {
				if !once {
					once = true
					forward(QueueView{Element: v.Element, Remaining: v.Remaining, Level: core.LevelWeak, Zxid: v.Zxid})
					close(delivered)
				}
				// The final (committed) view is dropped: the caller asked
				// for weak only.
			})
			if err != nil {
				select {
				case <-delivered:
				default:
					cb(binding.Result{Err: err})
				}
			}
		}
	})
}

// Scheduler implements binding.SchedulerProvider: Correctables over this
// binding block through the ensemble's simulation clock.
func (b *Binding) Scheduler() core.Scheduler {
	return binding.SchedulerFor(b.qc.Ensemble().Transport().Clock())
}

// Versions implements binding.Versioner: views carry zxid version tokens.
func (b *Binding) Versions() bool { return true }

// DefaultOpTimeout implements binding.TimeoutProvider: under fault
// injection each invocation is bounded by the ensemble's OpTimeout of
// model time.
func (b *Binding) DefaultOpTimeout() time.Duration {
	e := b.qc.Ensemble()
	if e.Transport().Interceptor() == nil {
		return 0
	}
	return e.Config().OpTimeout
}

// Queue is the typed application-facing facade over a zk queue binding:
// Correctable queue operations without a single interface{} in sight.
type Queue struct {
	client *binding.Client
}

// NewQueue builds the typed facade (wrapping the binding in a Client
// configured with opts — observers, operation timeout, label).
func NewQueue(b *Binding, opts ...binding.Option) *Queue {
	return &Queue{client: binding.NewClient(b, opts...)}
}

// Client returns the underlying Correctables client (for level inspection
// and session creation).
func (q *Queue) Client() *binding.Client { return q.client }

// Session opens a session over the facade's client (monotonic queue views
// per queue; see binding.Session).
func (q *Queue) Session(opts ...binding.SessionOption) *binding.Session {
	return binding.NewSession(q.client, opts...)
}

// Enqueue appends item to the named queue with incremental consistency
// guarantees (one view per level the ensemble offers).
func (q *Queue) Enqueue(ctx context.Context, queue string, item []byte, levels ...core.Level) *core.Correctable[binding.Item] {
	return binding.Invoke[binding.Item](ctx, q.client, binding.Enqueue{Queue: queue, Item: item}, levels...)
}

// Dequeue removes the queue head with incremental consistency guarantees.
func (q *Queue) Dequeue(ctx context.Context, queue string, levels ...core.Level) *core.Correctable[binding.Item] {
	return binding.Invoke[binding.Item](ctx, q.client, binding.Dequeue{Queue: queue}, levels...)
}

// DequeueStrong waits for the committed (atomic) dequeue only.
func (q *Queue) DequeueStrong(ctx context.Context, queue string) *core.Correctable[binding.Item] {
	return binding.InvokeStrong[binding.Item](ctx, q.client, binding.Dequeue{Queue: queue})
}
