package zk

import "sort"

// EventType classifies znode watch events, mirroring ZooKeeper's.
type EventType int

const (
	// EventCreated fires when a watched path comes into existence.
	EventCreated EventType = iota + 1
	// EventDeleted fires when a watched znode is removed.
	EventDeleted
	// EventDataChanged fires when a watched znode's data is replaced.
	EventDataChanged
	// EventChildrenChanged fires when a child is added to or removed from
	// a watched znode.
	EventChildrenChanged
)

// String returns the event name.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "dataChanged"
	case EventChildrenChanged:
		return "childrenChanged"
	default:
		return "unknown"
	}
}

// Event is one watch notification.
type Event struct {
	Type EventType
	Path string
}

// Watches are one-shot, as in ZooKeeper: a channel receives at most one
// event (buffered, never blocking the mutation path) and is then forgotten.

// GetW is Get plus a one-shot watch on the znode (data change or deletion).
func (t *Tree) GetW(path string) ([]byte, int32, <-chan Event, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[path]
	if !ok {
		return nil, 0, nil, errNoNode(path)
	}
	ch := make(chan Event, 1)
	t.dataWatches[path] = append(t.dataWatches[path], ch)
	return append([]byte(nil), n.data...), n.version, ch, nil
}

// ExistsW reports existence plus a one-shot watch that fires on the next
// creation, deletion or data change of the path.
func (t *Tree) ExistsW(path string) (bool, <-chan Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Event, 1)
	t.dataWatches[path] = append(t.dataWatches[path], ch)
	_, ok := t.nodes[path]
	return ok, ch
}

// ChildrenW is Children plus a one-shot watch on the child set.
func (t *Tree) ChildrenW(path string) ([]string, <-chan Event, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[path]
	if !ok {
		return nil, nil, errNoNode(path)
	}
	ch := make(chan Event, 1)
	t.childWatches[path] = append(t.childWatches[path], ch)
	out := make([]string, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, ch, nil
}

// fireData delivers a data event to the path's one-shot watches. Caller
// holds t.mu.
func (t *Tree) fireData(path string, typ EventType) {
	if ws := t.dataWatches[path]; len(ws) > 0 {
		delete(t.dataWatches, path)
		for _, ch := range ws {
			ch <- Event{Type: typ, Path: path} // buffered, never blocks
		}
	}
}

// fireChildren delivers a children event to the parent's one-shot watches.
// Caller holds t.mu.
func (t *Tree) fireChildren(parent string) {
	if ws := t.childWatches[parent]; len(ws) > 0 {
		delete(t.childWatches, parent)
		for _, ch := range ws {
			ch <- Event{Type: EventChildrenChanged, Path: parent}
		}
	}
}
