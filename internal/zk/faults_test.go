package zk

import (
	"errors"
	"testing"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// newFaultedEnsemble builds a correctable ensemble on a virtual-clock
// transport with a schedule-less injector attached (tests drive faults
// with Apply).
func newFaultedEnsemble(t *testing.T) (*Ensemble, *faults.Injector, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	e, err := NewEnsemble(Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.FRK,
		Transport:    tr,
		Correctable:  true,
		ServiceTime:  100 * time.Microsecond,
		OpTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, inj, clock
}

// TestCrashedFollowerResyncsOnRestart is the zk crash/recovery semantic: a
// crashed follower misses the commit stream (dropped in flight), lags the
// leader while down, and is resynced by leader state transfer after its
// restart — the ensemble converges without wedging on the zxid gap.
func TestCrashedFollowerResyncsOnRestart(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.IRL, netsim.IRL)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Crash{Region: netsim.VRG})
	for i := 0; i < 5; i++ {
		// Quorum is leader + one follower (IRL): commits keep succeeding
		// with VRG down.
		if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
			t.Fatalf("enqueue %d with one follower down: %v", i, err)
		}
	}
	leaderZxid := e.Leader().LastApplied()
	if got := e.Server(netsim.VRG).LastApplied(); got >= leaderZxid {
		t.Fatalf("crashed follower at zxid %d, leader %d; expected a lag", got, leaderZxid)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second) // state transfer travels leader->VRG
	if got := e.Server(netsim.VRG).LastApplied(); got < leaderZxid {
		t.Fatalf("restarted follower at zxid %d, want >= %d after resync", got, leaderZxid)
	}
	if got, want := e.Server(netsim.VRG).Tree().NodeCount(), e.Leader().Tree().NodeCount(); got != want {
		t.Errorf("restarted follower has %d znodes, leader %d", got, want)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestQuorumLossFailsUnreachable: with both followers down the leader
// cannot commit; a queue operation fails with faults.ErrUnreachable via
// the model-time timeout instead of hanging, and succeeds again after
// recovery.
func TestQuorumLossFailsUnreachable(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Crash{Region: netsim.IRL})
	inj.Apply(faults.Crash{Region: netsim.VRG})
	views := 0
	err := qc.Enqueue("q", []byte("x"), true, func(QueueView) { views++ })
	if !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("enqueue under quorum loss: %v, want ErrUnreachable", err)
	}

	inj.Apply(faults.Restart{Region: netsim.IRL})
	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second)
	if err := qc.Enqueue("q", []byte("y"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue after recovery: %v", err)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestSessionHangFreeUnderPermanentPartition: raw zk.Session operations —
// the tickets-style app-level path that used to rely on caller patience —
// are bounded by the ensemble's OpTimeout of model time: under a permanent
// partition every session call (ordered commits and local reads alike)
// fails with faults.ErrUnreachable instead of hanging, and the same
// session works again after the heal.
func TestSessionHangFreeUnderPermanentPartition(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	// The client lives in VRG and contacts the FRK server — once VRG is
	// severed, every session call crosses the dead link.
	sess := e.NewSession(netsim.VRG, netsim.FRK)
	if _, err := sess.Create("/app", []byte("cfg"), false); err != nil {
		t.Fatal(err)
	}

	// Sever the session's region from the rest of the world — permanently.
	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.VRG}, {netsim.FRK, netsim.IRL},
	}})

	sw := clock.StartStopwatch()
	if _, err := sess.Create("/app/x", nil, false); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("Create under partition: %v, want ErrUnreachable", err)
	}
	if _, _, err := sess.Get("/app"); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("Get under partition: %v, want ErrUnreachable", err)
	}
	if _, _, err := sess.ChildrenW("/app"); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("ChildrenW under partition: %v, want ErrUnreachable", err)
	}
	if err := sess.SetData("/app", []byte("new"), -1); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("SetData under partition: %v, want ErrUnreachable", err)
	}
	if _, _, err := sess.ExistsW("/app"); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("ExistsW under partition: %v, want ErrUnreachable (not a nil watch)", err)
	}
	// Five calls, each bounded by the 500ms OpTimeout: the whole probe is
	// over in ~2.5s of model time — no hang until the (never-coming) heal.
	if got := sw.ElapsedModel(); got > 4*time.Second {
		t.Errorf("five session ops took %v of model time under a permanent partition", got)
	}

	inj.Apply(faults.Heal{})
	clock.Sleep(time.Second)
	if _, err := sess.Create("/app/y", nil, false); err != nil {
		t.Fatalf("Create after heal: %v", err)
	}
	inj.Quiesce()
	clock.Drain()
}
