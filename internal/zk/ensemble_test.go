package zk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

func newTestEnsemble(t *testing.T, correctable bool, leader netsim.Region) (*Ensemble, *netsim.Meter, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	meter := netsim.NewMeter()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), meter, 1)
	e, err := NewEnsemble(Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: leader,
		Transport:    tr,
		Correctable:  correctable,
		ServiceTime:  50 * time.Microsecond,
		Workers:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, meter, clock
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(Config{}); err == nil {
		t.Error("missing transport accepted")
	}
	tr := netsim.NewTransport(netsim.NewClock(1), netsim.DefaultLatencies(), nil, 1)
	if _, err := NewEnsemble(Config{Transport: tr}); err == nil {
		t.Error("empty regions accepted")
	}
	if _, err := NewEnsemble(Config{Transport: tr, Regions: []netsim.Region{netsim.FRK}, LeaderRegion: netsim.IRL}); err == nil {
		t.Error("foreign leader accepted")
	}
	if _, err := NewEnsemble(Config{Transport: tr, Regions: []netsim.Region{netsim.FRK, netsim.FRK}, LeaderRegion: netsim.FRK}); err == nil {
		t.Error("duplicate regions accepted")
	}
}

func TestProposeReplicatesInOrder(t *testing.T) {
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/q"})
	contact := e.Server(netsim.FRK)
	const n = 10
	for i := 0; i < n; i++ {
		qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
		zxid, res := qc.forwardAndCommit(contact, CreateTxn{Path: "/q/item-", Data: []byte{byte(i)}, Sequential: true})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if zxid == 0 {
			t.Fatal("zxid 0 for successful txn")
		}
	}
	// All servers converge to the same sorted child list once the async
	// commit broadcasts have been drained.
	clock.Drain()
	if kids, err := e.Server(netsim.VRG).Tree().Children("/q"); err != nil || len(kids) != n {
		t.Fatalf("VRG never converged: %v, %v", kids, err)
	}
	want, _ := e.Leader().Tree().Children("/q")
	for _, region := range e.Regions() {
		got, err := e.Server(region).Tree().Children("/q")
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s children = %v, leader has %v", region, got, want)
		}
	}
}

func TestProposeFailFastNoCommit(t *testing.T) {
	e, _, _ := newTestEnsemble(t, false, netsim.IRL)
	contact := e.Server(netsim.FRK)
	qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
	zxid, res := qc.forwardAndCommit(contact, DeleteTxn{Path: "/missing", Version: -1})
	if !errors.Is(res.Err, ErrNoNode) {
		t.Errorf("err = %v", res.Err)
	}
	if zxid != 0 {
		t.Error("failed validation must not consume a zxid broadcast")
	}
}

func TestDeliverCommitBuffersGaps(t *testing.T) {
	e, _, _ := newTestEnsemble(t, false, netsim.IRL)
	s := e.Server(netsim.FRK)
	// Deliver 2 before 1: nothing applies until 1 arrives.
	s.DeliverCommit(2, CreateTxn{Path: "/b"})
	if s.Tree().Exists("/b") {
		t.Fatal("gap commit applied out of order")
	}
	s.DeliverCommit(1, CreateTxn{Path: "/a"})
	if !s.Tree().Exists("/a") || !s.Tree().Exists("/b") {
		t.Fatal("commits not applied after gap filled")
	}
	if s.LastApplied() != 2 {
		t.Errorf("lastApplied = %d", s.LastApplied())
	}
}

func TestWaitApplied(t *testing.T) {
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	s := e.Server(netsim.FRK)
	woken := false
	done := clock.NewEvent()
	clock.Go(func() {
		s.WaitApplied(1)
		woken = true
		done.Fire()
	})
	clock.Sleep(10 * time.Millisecond) // lets the waiter park
	if woken {
		t.Fatal("WaitApplied returned before apply")
	}
	s.DeliverCommit(1, CreateTxn{Path: "/a"})
	done.Wait()
	if !woken {
		t.Fatal("WaitApplied never woke")
	}
	// Already-applied zxid returns immediately.
	s.WaitApplied(1)
}

// Property: any interleaving of commit deliveries applies in zxid order
// (the tree ends identical to sequential application).
func TestPropertyCommitOrderIndependence(t *testing.T) {
	f := func(perm []uint8) bool {
		n := len(perm)
		if n == 0 || n > 20 {
			return true
		}
		e, _, _ := newTestEnsemble(t, false, netsim.IRL)
		s := e.Server(netsim.FRK)
		// Build a permutation of 1..n from perm.
		order := make([]int, n)
		for i := range order {
			order[i] = i + 1
		}
		for i := range order {
			j := int(perm[i]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		_ = s.Tree().EnsurePath("/q")
		s.DeliverCommit(0, CreateTxn{Path: "/unused"}) // no-op guard: zxid 0 ignored by lastApplied
		for _, z := range order {
			s.DeliverCommit(uint64(z), CreateTxn{Path: "/q/q-", Data: []byte{byte(z)}, Sequential: true})
		}
		// After all deliveries the items must be in zxid order: item i has
		// sequence number i-1 and data byte i.
		for i := 1; i <= n; i++ {
			path := fmt.Sprintf("/q/q-%010d", i-1)
			data, _, err := s.Tree().Get(path)
			if err != nil || len(data) != 1 || data[0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnqueueVanillaLatency(t *testing.T) {
	// Client IRL, contact follower FRK, leader IRL (paper Fig 9 group 1):
	// ~10+10 (client RTT) + 10+10 (forward+commit) + quorum RTT(IRL-FRK=20)
	// => around 60ms.
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	qc := NewQueueClient(e, netsim.IRL, netsim.FRK)
	sw := clock.StartStopwatch()
	var views []QueueView
	if err := qc.Enqueue("t", []byte("ticket-001"), false, func(v QueueView) { views = append(views, v) }); err != nil {
		t.Fatal(err)
	}
	lat := sw.ElapsedModel()
	if lat < 45*time.Millisecond || lat > 110*time.Millisecond {
		t.Errorf("vanilla enqueue latency = %v, want ~60ms", lat)
	}
	if len(views) != 1 || !views[0].Final || views[0].Element.Seq != 0 {
		t.Errorf("views = %+v", views)
	}
}

func TestEnqueueCZKPrelimGap(t *testing.T) {
	// CZK: preliminary latency = client<->contact RTT (20ms); final as
	// vanilla (~60ms). Gap ~40ms (paper Fig 9).
	e, _, clock := newTestEnsemble(t, true, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	qc := NewQueueClient(e, netsim.IRL, netsim.FRK)
	sw := clock.StartStopwatch()
	type timed struct {
		v  QueueView
		at time.Duration
	}
	var views []timed
	if err := qc.Enqueue("t", []byte("ticket-001"), true, func(v QueueView) {
		views = append(views, timed{v, sw.ElapsedModel()})
	}); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("views = %+v", views)
	}
	prelim, final := views[0], views[1]
	if prelim.v.Final || prelim.v.Level != core.LevelWeak {
		t.Errorf("prelim = %+v", prelim.v)
	}
	if prelim.at < 12*time.Millisecond || prelim.at > 45*time.Millisecond {
		t.Errorf("prelim latency = %v, want ~20ms", prelim.at)
	}
	if !final.v.Confirmed {
		t.Error("uncontended enqueue prediction should be confirmed")
	}
	if gap := final.at - prelim.at; gap < 25*time.Millisecond {
		t.Errorf("prelim/final gap = %v, want ~40ms", gap)
	}
	if prelim.v.Element.Name != final.v.Element.Name {
		t.Errorf("prediction %q != actual %q", prelim.v.Element.Name, final.v.Element.Name)
	}
}

func TestEnqueueLeaderContactSmallGap(t *testing.T) {
	// Client IRL connected to the leader in IRL: preliminary ~2ms, final
	// ~2+20 (quorum to FRK) ~22ms (paper Fig 9 group 2). The virtual clock
	// resolves millisecond-level assertions exactly.
	e, _, clock := newTestEnsemble(t, true, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	qc := NewQueueClient(e, netsim.IRL, netsim.IRL)
	sw := clock.StartStopwatch()
	var at []time.Duration
	if err := qc.Enqueue("t", []byte("x"), true, func(QueueView) {
		at = append(at, sw.ElapsedModel())
	}); err != nil {
		t.Fatal(err)
	}
	if at[0] > 15*time.Millisecond {
		t.Errorf("prelim latency = %v, want ~2ms", at[0])
	}
	if at[1] < 15*time.Millisecond || at[1] > 60*time.Millisecond {
		t.Errorf("final latency = %v, want ~22ms", at[1])
	}
}

func TestDequeueCZKAtomicNoDuplicates(t *testing.T) {
	e, _, clock := newTestEnsemble(t, true, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	const n = 30
	for i := 0; i < n; i++ {
		e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte{byte(i)}, Sequential: true})
	}
	var mu sync.Mutex
	got := map[string]int{}
	wg := clock.NewGroup()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
			for {
				var final QueueView
				if err := qc.Dequeue("t", true, func(v QueueView) {
					if v.Final {
						final = v
					}
				}); err != nil {
					t.Error(err)
					return
				}
				if final.Element == nil {
					return
				}
				mu.Lock()
				got[final.Element.Name]++
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("dequeued %d distinct elements, want %d", len(got), n)
	}
	for name, count := range got {
		if count != 1 {
			t.Errorf("element %s dequeued %d times", name, count)
		}
	}
}

func TestDequeueRecipeContentionNoDuplicates(t *testing.T) {
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	const n = 20
	for i := 0; i < n; i++ {
		e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte{byte(i)}, Sequential: true})
	}
	var mu sync.Mutex
	got := map[string]int{}
	wg := clock.NewGroup()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
			for {
				var final QueueView
				if err := qc.Dequeue("t", false, func(v QueueView) { final = v }); err != nil {
					t.Error(err)
					return
				}
				if final.Element == nil {
					return
				}
				mu.Lock()
				got[final.Element.Name]++
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("dequeued %d distinct elements, want %d", len(got), n)
	}
	for name, count := range got {
		if count != 1 {
			t.Errorf("element %s dequeued %d times (recipe must not double-dequeue)", name, count)
		}
	}
}

func TestDequeueRecipeBandwidthGrowsWithQueue(t *testing.T) {
	cost := func(size int) int64 {
		e, meter, _ := newTestEnsemble(t, false, netsim.IRL)
		e.Bootstrap(CreateTxn{Path: "/queues"})
		e.Bootstrap(CreateTxn{Path: "/queues/t"})
		for i := 0; i < size; i++ {
			e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte("tkt"), Sequential: true})
		}
		qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
		base := meter.Class(netsim.LinkClient).Bytes
		if err := qc.Dequeue("t", false, func(QueueView) {}); err != nil {
			t.Fatal(err)
		}
		return meter.Class(netsim.LinkClient).Bytes - base
	}
	small, large := cost(50), cost(500)
	// Vanilla getChildren returns the whole listing: 10x queue => much more
	// data (Fig 10's ZK growth).
	if large < small+4000 {
		t.Errorf("dequeue bytes: queue 50 -> %d, queue 500 -> %d; expected strong growth", small, large)
	}
}

func TestDequeueCZKBandwidthConstant(t *testing.T) {
	cost := func(size int) int64 {
		e, meter, _ := newTestEnsemble(t, true, netsim.IRL)
		e.Bootstrap(CreateTxn{Path: "/queues"})
		e.Bootstrap(CreateTxn{Path: "/queues/t"})
		for i := 0; i < size; i++ {
			e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte("tkt"), Sequential: true})
		}
		qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
		base := meter.Class(netsim.LinkClient).Bytes
		if err := qc.Dequeue("t", true, func(QueueView) {}); err != nil {
			t.Fatal(err)
		}
		return meter.Class(netsim.LinkClient).Bytes - base
	}
	small, large := cost(50), cost(500)
	if small != large {
		t.Errorf("CZK dequeue bytes must be independent of queue size: 50 -> %d, 500 -> %d", small, large)
	}
}

func TestEnqueueBandwidthMatchesPaper(t *testing.T) {
	// §6.2.2: vanilla enqueue ~270 B/op; with the preliminary response
	// ~400 B/op (+~50%).
	run := func(correctable bool) int64 {
		e, meter, _ := newTestEnsemble(t, correctable, netsim.IRL)
		e.Bootstrap(CreateTxn{Path: "/queues"})
		e.Bootstrap(CreateTxn{Path: "/queues/t"})
		qc := NewQueueClient(e, netsim.IRL, netsim.FRK)
		base := meter.Class(netsim.LinkClient).Bytes
		if err := qc.Enqueue("t", []byte("ticket-0000000001ab"), correctable, func(QueueView) {}); err != nil {
			t.Fatal(err)
		}
		return meter.Class(netsim.LinkClient).Bytes - base
	}
	vanilla, czk := run(false), run(true)
	if vanilla < 230 || vanilla > 320 {
		t.Errorf("vanilla enqueue = %d B/op, want ~270", vanilla)
	}
	if czk < 350 || czk > 470 {
		t.Errorf("CZK enqueue = %d B/op, want ~400", czk)
	}
	ratio := float64(czk) / float64(vanilla)
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("CZK/vanilla enqueue ratio = %.2f, want ~1.5", ratio)
	}
}

func TestQueueBindingInvoke(t *testing.T) {
	e, _, _ := newTestEnsemble(t, true, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte("first"), Sequential: true})
	b := NewBinding(NewQueueClient(e, netsim.IRL, netsim.FRK))
	q := NewQueue(b)

	cor := q.Dequeue(context.Background(), "t")
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := v.Value
	if !res.Exists || string(res.Data) != "first" {
		t.Errorf("final = %+v", res)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelWeak {
		t.Errorf("views = %+v", views)
	}
	prelim := views[0].Value
	if !prelim.EqualValue(res) {
		t.Errorf("prelim %v != final %v in uncontended dequeue", prelim, res)
	}
}

func TestQueueBindingVanillaSingleLevel(t *testing.T) {
	e, _, _ := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	b := NewBinding(NewQueueClient(e, netsim.IRL, netsim.FRK))
	if got := b.ConsistencyLevels(); len(got) != 1 || got[0] != core.LevelStrong {
		t.Fatalf("vanilla levels = %v", got)
	}
	q := NewQueue(b)
	cor := q.Enqueue(context.Background(), "t", []byte("x"))
	if _, err := cor.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("vanilla invoke views = %+v", cor.Views())
	}
}

func TestQueueBindingInvokeWeakBackground(t *testing.T) {
	e, _, clock := newTestEnsemble(t, true, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/queues"})
	e.Bootstrap(CreateTxn{Path: "/queues/t"})
	for i := 0; i < 5; i++ {
		e.Bootstrap(CreateTxn{Path: "/queues/t/q-", Data: []byte{byte(i)}, Sequential: true})
	}
	b := NewBinding(NewQueueClient(e, netsim.IRL, netsim.FRK))
	client := binding.NewClient(b)
	cor := binding.InvokeWeak[binding.Item](context.Background(), client, binding.Dequeue{Queue: "t"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := v.Value
	if !res.Exists || res.ID != "q-0000000000" {
		t.Errorf("weak dequeue = %+v", res)
	}
	// The dequeue itself completes in the background: after draining, the
	// leader has only 4 elements.
	clock.Drain()
	if kids, _ := e.Leader().Tree().Children("/queues/t"); len(kids) != 4 {
		t.Fatalf("background dequeue never committed; leader has %d elements", len(kids))
	}
}

func TestQueueBindingUnsupportedOp(t *testing.T) {
	e, _, _ := newTestEnsemble(t, true, netsim.IRL)
	b := NewBinding(NewQueueClient(e, netsim.IRL, netsim.FRK))
	client := binding.NewClient(b)
	if _, err := binding.Invoke[[]byte](context.Background(), client, binding.Get{Key: "k"}).Final(context.Background()); err == nil {
		t.Error("Get on a queue binding should fail")
	}
}

func TestDequeueEmptyQueue(t *testing.T) {
	for _, correctable := range []bool{false, true} {
		e, _, _ := newTestEnsemble(t, correctable, netsim.IRL)
		e.Bootstrap(CreateTxn{Path: "/queues"})
		e.Bootstrap(CreateTxn{Path: "/queues/t"})
		qc := NewQueueClient(e, netsim.IRL, netsim.FRK)
		var final QueueView
		if err := qc.Dequeue("t", correctable, func(v QueueView) {
			if v.Final {
				final = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		if final.Element != nil || final.Remaining != 0 {
			t.Errorf("correctable=%v: empty dequeue = %+v", correctable, final)
		}
	}
}
