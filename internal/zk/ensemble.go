package zk

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Config describes a simulated ZooKeeper ensemble.
type Config struct {
	// Regions places one server per region (the paper uses 3).
	Regions []netsim.Region
	// LeaderRegion selects the leader (must appear in Regions).
	LeaderRegion netsim.Region
	// Transport carries all messages (required).
	Transport *netsim.Transport
	// Correctable enables the CZK fast path: local simulation of operations
	// for preliminary responses and the server-side atomic dequeue.
	Correctable bool
	// Workers is the per-server worker-slot count (default 4).
	Workers int
	// ServiceTime is the per-message local processing cost (default 1ms).
	ServiceTime time.Duration
	// OpTimeout bounds each queue-client operation in model time when a
	// fault interceptor is attached to the Transport (default 5s); see
	// cassandra.Config.OpTimeout for the semantics.
	OpTimeout time.Duration
	// HeartbeatInterval is the leader heartbeat period when elections are
	// enabled (default 250ms). Followers treat a heartbeat gap longer than
	// their election timeout as a dead leader.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower patience before starting an
	// election (default 2s). Server i (in Regions order) waits
	// ElectionTimeout + i*ElectionTimeout/4 — a deterministic stagger that
	// replaces Raft's randomized timeouts, keeping elections seed-replayable.
	ElectionTimeout time.Duration
	// DisableElections keeps the static-leader behavior even on a faulted
	// transport: a crashed leader fails ops with ErrUnreachable until its
	// Restart, as before PR 6. Elections also require at least 3 servers.
	DisableElections bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = time.Millisecond
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 250 * time.Millisecond
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 2 * time.Second
	}
	return c
}

// Server is one ensemble member.
type Server struct {
	Region   netsim.Region
	ensemble *Ensemble
	proc     *netsim.Server
	tree     *Tree

	mu          sync.Mutex
	lastApplied uint64
	pending     map[uint64]Txn
	waiters     map[uint64][]netsim.Event

	// dataEpoch is the election epoch the applied state belongs to. Commits
	// and snapshots from older epochs — a deposed leader's stalled broadcast
	// finally arriving after a heal — are discarded.
	dataEpoch uint64
	// accepted is the follower's Zab accept log: every proposal acked since
	// the last epoch change, keyed by zxid. Vote grants piggyback the tail
	// of this log so an election winner can materialize every transaction a
	// majority accepted (and hence every client-acknowledged one). Cleared
	// when an epoch-advancing snapshot or election win supersedes it; nil
	// while elections are disabled.
	accepted    map[uint64]acceptedTxn
	maxAccepted uint64
}

// Tree exposes the server's local (committed) state for local reads and
// CZK simulations.
func (s *Server) Tree() *Tree { return s.tree }

// IsLeader reports whether this server is the ensemble leader.
func (s *Server) IsLeader() bool { return s.ensemble.Leader() == s }

// LastApplied returns the highest zxid applied locally.
func (s *Server) LastApplied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastApplied
}

// Ensemble is the replicated coordination service.
type Ensemble struct {
	cfg     Config
	tr      *netsim.Transport
	servers map[netsim.Region]*Server
	order   []netsim.Region

	// leaderMu guards the leader pointer, which elections move at runtime.
	leaderMu sync.Mutex
	leader   *Server

	// elect is the leader-election machinery; nil when elections are
	// disabled (no fault interceptor, fewer than 3 servers, or
	// Config.DisableElections).
	elect *elector

	// propMu serializes proposal numbering and leader prep-application,
	// establishing the Zab total order. commitEpoch is the epoch new
	// proposals commit under; an election win advances it and rewinds
	// nextZxid to the winner's applied watermark.
	propMu      sync.Mutex
	nextZxid    uint64
	commitEpoch uint64

	// trc, when set, records proposal quorum waits on per-server tracks
	// and the election/resync timeline on "zk/election". Nil = off.
	trc      *trace.Tracer
	phaseTrk map[netsim.Region]trace.Track
	electTrk trace.Track
}

// NewEnsemble builds an ensemble per cfg.
func NewEnsemble(cfg Config) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, fmt.Errorf("zk: Config.Transport is required")
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("zk: at least one server region is required")
	}
	e := &Ensemble{
		cfg:     cfg,
		tr:      cfg.Transport,
		servers: make(map[netsim.Region]*Server, len(cfg.Regions)),
	}
	for _, region := range cfg.Regions {
		if _, dup := e.servers[region]; dup {
			return nil, fmt.Errorf("zk: duplicate server region %s", region)
		}
		e.servers[region] = &Server{
			Region:   region,
			ensemble: e,
			proc:     netsim.NewServer(cfg.Transport.Clock(), cfg.Workers),
			tree:     NewTree(),
			pending:  make(map[uint64]Txn),
			waiters:  make(map[uint64][]netsim.Event),
		}
		e.order = append(e.order, region)
	}
	leader, ok := e.servers[cfg.LeaderRegion]
	if !ok {
		return nil, fmt.Errorf("zk: leader region %s not in ensemble", cfg.LeaderRegion)
	}
	e.leader = leader
	// On a faulted transport, wire Zab-style recovery: after every fault
	// transition (a restart, a heal, an expiring drop rule), followers that
	// missed commits — a crashed server loses its in-flight commit stream,
	// a partitioned one has it severed — resync from the leader by state
	// transfer, like ZooKeeper's SNAP sync. With 3+ servers the ensemble
	// also runs leader elections (see election.go): a crashed or isolated
	// leader is replaced by a majority-elected one instead of wedging
	// finals until restart.
	if inj, ok := cfg.Transport.Interceptor().(*faults.Injector); ok {
		inj.Subscribe(func(faults.Transition) { e.resyncLagging() })
		if len(cfg.Regions) >= 3 && !cfg.DisableElections {
			e.elect = newElector(e, inj)
		}
	}
	return e, nil
}

// resyncLagging ships a leader snapshot to every follower whose applied
// state lags the leader — comparing (epoch, zxid) lexicographically, so a
// deposed leader whose tree diverged on phantom prep-applies is overwritten
// by the new epoch's state even when its zxid watermark ran ahead. It runs
// in clock callback context (fault transitions, election wins) and must not
// block: snapshots travel as asynchronous sends, which the transport drops
// if the follower is still unreachable — the next transition retries.
func (e *Ensemble) resyncLagging() {
	leader := e.Leader()
	leaderEpoch, leaderZxid := leader.epochApplied()
	for _, region := range e.order {
		s := e.servers[region]
		if s == leader {
			continue
		}
		ep, zx := s.epochApplied()
		if ep > leaderEpoch || (ep == leaderEpoch && zx >= leaderZxid) {
			continue
		}
		// One snapshot per follower: Restore installs the node map without
		// copying, so recipients must not share one.
		snap, zxid, epoch, size := e.snapshotLeader(leader)
		if e.trc != nil {
			e.trc.Instant(e.electTrk, "resync", string(region), e.tr.Clock().Now())
		}
		e.tr.Send(leader.Region, region, netsim.LinkReplica, size, func() {
			s.installSnapshot(snap, zxid, epoch)
		})
	}
}

// snapshotLeader captures the leader's tree, zxid and epoch atomically
// (propMu serializes all leader mutations).
func (e *Ensemble) snapshotLeader(leader *Server) (map[string]*node, uint64, uint64, int) {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	snap, size := leader.tree.Snapshot()
	epoch, zxid := leader.epochApplied()
	return snap, zxid, epoch, size
}

// epochApplied returns the (dataEpoch, lastApplied) pair that orders
// replica states across elections.
func (s *Server) epochApplied() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataEpoch, s.lastApplied
}

// installSnapshot replaces the server's state with a leader snapshot taken
// at the given (epoch, zxid), then drains any buffered commits past it and
// releases the waiters the snapshot satisfies. Stale snapshots — at or
// below the server's own (epoch, zxid), compared lexicographically — are
// ignored. An epoch-advancing snapshot clears the buffered-commit and
// accept logs wholesale: their entries belong to a superseded leader's
// numbering and must not merge with the new epoch's commit stream.
func (s *Server) installSnapshot(nodes map[string]*node, zxid, epoch uint64) {
	var fire []netsim.Event
	s.mu.Lock()
	if epoch < s.dataEpoch || (epoch == s.dataEpoch && zxid <= s.lastApplied) {
		s.mu.Unlock()
		return
	}
	s.tree.Restore(nodes)
	if epoch > s.dataEpoch {
		s.dataEpoch = epoch
		s.pending = make(map[uint64]Txn)
		if s.accepted != nil {
			s.accepted = make(map[uint64]acceptedTxn)
			s.maxAccepted = 0
		}
	}
	s.lastApplied = zxid
	for z := range s.pending {
		if z <= zxid {
			delete(s.pending, z)
		}
	}
	fire = s.applyPendingLocked()
	s.mu.Unlock()
	for _, w := range fire {
		w.Fire()
	}
}

// accept records a proposal in the server's accept log (elections enabled
// only); called on the follower leg of Propose before the ack travels back,
// so a counted ack always implies a recorded accept.
func (s *Server) accept(zxid, epoch uint64, txn Txn) {
	s.mu.Lock()
	if s.accepted == nil {
		s.accepted = make(map[uint64]acceptedTxn)
	}
	if cur, ok := s.accepted[zxid]; !ok || epoch >= cur.Epoch {
		s.accepted[zxid] = acceptedTxn{Txn: txn, Epoch: epoch}
	}
	if zxid > s.maxAccepted {
		s.maxAccepted = zxid
	}
	s.mu.Unlock()
}

// electInfo returns the server's vote-comparison key (dataEpoch, lastZxid)
// plus its applied watermark; lastZxid = max(applied, accepted) is Zab's
// "newest state seen" used to decide which candidate may lead.
func (s *Server) electInfo() (epoch, lastApplied, lastZxid uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lastZxid = s.lastApplied
	if s.maxAccepted > lastZxid {
		lastZxid = s.maxAccepted
	}
	return s.dataEpoch, s.lastApplied, lastZxid
}

// acceptedTail returns the accept-log entries above the given zxid, the
// payload a vote grant piggybacks to the candidate.
func (s *Server) acceptedTail(above uint64) map[uint64]acceptedTxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	var tail map[uint64]acceptedTxn
	for z, a := range s.accepted {
		if z > above {
			if tail == nil {
				tail = make(map[uint64]acceptedTxn)
			}
			tail[z] = a
		}
	}
	return tail
}

// applyPendingLocked drains buffered commits in strict zxid order (stopping
// at the first gap) and returns the waiters the new watermark satisfies, in
// zxid order (map iteration order would perturb determinism). Callers hold
// s.mu and fire the returned events after releasing it.
func (s *Server) applyPendingLocked() []netsim.Event {
	for {
		next, ok := s.pending[s.lastApplied+1]
		if !ok {
			break
		}
		delete(s.pending, s.lastApplied+1)
		next.Apply(s.tree)
		s.lastApplied++
	}
	var zs []uint64
	for z := range s.waiters {
		if z <= s.lastApplied {
			zs = append(zs, z)
		}
	}
	sort.Slice(zs, func(i, j int) bool { return zs[i] < zs[j] })
	var fire []netsim.Event
	for _, z := range zs {
		fire = append(fire, s.waiters[z]...)
		delete(s.waiters, z)
	}
	return fire
}

// SetTrace threads a span tracer through the ensemble: each server's
// bounded processor records queue/service spans on "server/<region>",
// proposals record their quorum wait on "zk/<leader region>", and
// elections/resyncs appear on a shared "zk/election" track. Install at
// wiring time.
func (e *Ensemble) SetTrace(t *trace.Tracer) {
	e.trc = t
	e.phaseTrk = make(map[netsim.Region]trace.Track, len(e.order))
	for _, region := range e.order {
		e.servers[region].proc.SetTrace(t, "server/"+string(region))
		e.phaseTrk[region] = t.Track("zk/" + string(region))
	}
	e.electTrk = t.Track("zk/election")
}

// CommitEpoch returns the epoch new proposals currently commit under; it
// advances on every election win (a natural election-state gauge).
func (e *Ensemble) CommitEpoch() uint64 {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	return e.commitEpoch
}

// Config returns the effective configuration.
func (e *Ensemble) Config() Config { return e.cfg }

// Transport returns the ensemble transport.
func (e *Ensemble) Transport() *netsim.Transport { return e.tr }

// Server returns the server in the given region.
func (e *Ensemble) Server(region netsim.Region) *Server {
	s, ok := e.servers[region]
	if !ok {
		panic(fmt.Sprintf("zk: no server in region %s", region))
	}
	return s
}

// Leader returns the current leader server. With elections enabled the
// pointer moves when a majority elects a new leader; callers that need a
// consistent view across several steps should read it once.
func (e *Ensemble) Leader() *Server {
	e.leaderMu.Lock()
	defer e.leaderMu.Unlock()
	return e.leader
}

func (e *Ensemble) setLeader(s *Server) {
	e.leaderMu.Lock()
	e.leader = s
	e.leaderMu.Unlock()
}

// Elections returns the election log: one record per leader change, in
// order. Empty without elections (or before the first leader change).
func (e *Ensemble) Elections() []ElectionRecord {
	if e.elect == nil {
		return nil
	}
	return e.elect.elections()
}

// Regions returns the server regions in declaration order.
func (e *Ensemble) Regions() []netsim.Region {
	return append([]netsim.Region(nil), e.order...)
}

// quorum returns the ack count the leader needs from followers (majority
// minus the leader's own implicit ack).
func (e *Ensemble) quorum() int {
	return (len(e.order)/2 + 1) - 1
}

// Bootstrap applies a transaction directly to every server, bypassing the
// protocol and the meter: experiment setup (creating queue directories,
// preloading elements). It must only be called on a quiescent ensemble — it
// advances every server's applied watermark past the allocated zxid, so any
// commit still in flight below it would be discarded on arrival as a
// duplicate.
func (e *Ensemble) Bootstrap(txn Txn) TxnResult {
	e.propMu.Lock()
	defer e.propMu.Unlock()
	e.nextZxid++
	zxid := e.nextZxid
	var res TxnResult
	for _, region := range e.order {
		s := e.servers[region]
		r := txn.Apply(s.tree)
		s.mu.Lock()
		s.lastApplied = zxid
		s.mu.Unlock()
		res = r
	}
	return res
}

// Propose runs txn through the ordered-commit protocol on behalf of a
// request that has already reached the leader (the caller models the
// contact->leader hop). It returns the transaction's zxid and result after
// a majority has acknowledged. Commits propagate to followers
// asynchronously except the contact server's own commit, which the caller
// delivers synchronously with DeliverCommit (modeling the single
// commit+reply message on that link).
//
// Fail-fast validation errors (bad version, missing node) return with
// zxid 0 and no broadcast, like ZooKeeper's prep processor.
func (e *Ensemble) Propose(txn Txn, contact *Server) (uint64, TxnResult) {
	zxid, _, res := e.propose(txn, contact)
	return zxid, res
}

// propose is Propose plus the commit epoch the transaction was ordered
// under, which epoch-aware delivery paths need.
func (e *Ensemble) propose(txn Txn, contact *Server) (uint64, uint64, TxnResult) {
	leader := e.Leader()
	leader.proc.Process(e.cfg.ServiceTime)

	e.propMu.Lock()
	// Prep-apply on the leader's tree: the leader state is authoritative
	// and strictly ordered.
	res := txn.Apply(leader.tree)
	if failsFast(res) {
		e.propMu.Unlock()
		return 0, 0, res
	}
	e.nextZxid++
	zxid := e.nextZxid
	epoch := e.commitEpoch
	leader.mu.Lock()
	leader.lastApplied = zxid
	leader.mu.Unlock()
	e.propMu.Unlock()

	// Gather follower acks; majority includes the leader itself.
	clock := e.tr.Clock()
	need := e.quorum()
	var quorumSp trace.SpanID
	if e.trc != nil && need > 0 {
		quorumSp = e.trc.Begin(e.phaseTrk[leader.Region], trace.CatQuorum, "propose", "", clock.Now())
	}
	acks := clock.NewQueue()
	for _, region := range e.order {
		if region == leader.Region {
			continue
		}
		region := region
		follower := e.servers[region]
		clock.Go(func() {
			e.tr.Travel(leader.Region, region, netsim.LinkReplica, proposalSize(txn))
			follower.proc.Process(e.cfg.ServiceTime)
			if e.elect != nil {
				follower.accept(zxid, epoch, txn)
			}
			e.tr.Travel(region, leader.Region, netsim.LinkReplica, AckSize)
			acks.Put(struct{}{})
		})
	}
	for i := 0; i < need; i++ {
		acks.Get()
	}
	e.trc.End(quorumSp, clock.Now())

	// Broadcast commits asynchronously to all followers except the contact
	// (whose commit rides on the reply message the caller models).
	for _, region := range e.order {
		if region == leader.Region || (contact != nil && region == contact.Region) {
			continue
		}
		follower := e.servers[region]
		e.tr.Send(leader.Region, region, netsim.LinkReplica, commitSize(txn), func() {
			follower.deliverCommit(zxid, epoch, txn)
		})
	}
	return zxid, epoch, res
}

// ForwardAndCommit models the contact->leader forwarding hop, runs the
// proposal, and delivers the commit+result back to the contact server on a
// single return message (the common client-request path).
func (e *Ensemble) ForwardAndCommit(contact *Server, txn Txn) (uint64, TxnResult) {
	leader := e.Leader()
	if contact != leader {
		e.tr.Travel(contact.Region, leader.Region, netsim.LinkReplica, proposalSize(txn))
	}
	zxid, epoch, res := e.propose(txn, contact)
	if contact != leader {
		// Commit + result ride back to the contact on one message.
		e.tr.Travel(leader.Region, contact.Region, netsim.LinkReplica, commitSize(txn))
		if zxid != 0 {
			contact.deliverCommit(zxid, epoch, txn)
			contact.WaitApplied(zxid)
		}
	}
	return zxid, res
}

// DeliverCommit hands a committed transaction to a server, which applies
// committed transactions strictly in zxid order (buffering gaps). Commits
// at or below the applied watermark are discarded: after a snapshot resync
// the in-flight commit stream may replay transactions the snapshot already
// covers. The commit is taken at the server's own data epoch; protocol
// paths use deliverCommit with the proposal's epoch instead.
func (s *Server) DeliverCommit(zxid uint64, txn Txn) {
	s.mu.Lock()
	fire := s.deliverCommitLocked(zxid, s.dataEpoch, txn)
	s.mu.Unlock()
	for _, w := range fire {
		w.Fire()
	}
}

// deliverCommit is DeliverCommit for epoch-tagged protocol traffic: commits
// from epochs older than the server's applied state — a deposed leader's
// stalled broadcast draining after a heal — are discarded rather than
// merged into the new epoch's commit stream.
func (s *Server) deliverCommit(zxid, epoch uint64, txn Txn) {
	s.mu.Lock()
	fire := s.deliverCommitLocked(zxid, epoch, txn)
	s.mu.Unlock()
	for _, w := range fire {
		w.Fire()
	}
}

func (s *Server) deliverCommitLocked(zxid, epoch uint64, txn Txn) []netsim.Event {
	if epoch < s.dataEpoch || zxid <= s.lastApplied {
		return nil
	}
	s.pending[zxid] = txn
	return s.applyPendingLocked()
}

// WaitApplied blocks until the server has applied the given zxid.
func (s *Server) WaitApplied(zxid uint64) {
	s.mu.Lock()
	if s.lastApplied >= zxid {
		s.mu.Unlock()
		return
	}
	w := s.ensemble.tr.Clock().NewEvent()
	s.waiters[zxid] = append(s.waiters[zxid], w)
	s.mu.Unlock()
	w.Wait()
}

// process charges one message's local work on the server.
func (s *Server) process() { s.proc.Process(s.ensemble.cfg.ServiceTime) }
