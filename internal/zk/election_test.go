package zk

import (
	"testing"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// Default election parameters (ElectionTimeout 2s base + quarter-base
// stagger, HeartbeatInterval 250ms) with the newFaultedEnsemble regions:
// FRK (leader) times out after 2s, IRL after 2.5s, VRG after 3s.

// TestLeaderCrashElectsMajority is the tentpole semantic: a crashed leader
// no longer wedges finals until its restart — the majority side elects a
// new leader within the election timeout and ordered commits resume while
// the old leader is still down; on restart the old leader rejoins as a
// follower and is resynced by state transfer.
func TestLeaderCrashElectsMajority(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.IRL, netsim.IRL)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Crash{Region: netsim.FRK})
	clock.Sleep(3500 * time.Millisecond) // IRL times out at ~2.5s and wins with VRG's vote

	recs := e.Elections()
	if len(recs) != 1 || recs[0].Leader != netsim.IRL || recs[0].Epoch != 1 {
		t.Fatalf("elections = %+v, want one epoch-1 win by %s", recs, netsim.IRL)
	}
	if got := e.Leader().Region; got != netsim.IRL {
		t.Fatalf("leader = %s after election, want %s", got, netsim.IRL)
	}
	// Finals resume with the old leader still down.
	if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue under new leader with old leader down: %v", err)
	}

	inj.Apply(faults.Restart{Region: netsim.FRK})
	clock.Sleep(time.Second) // snapshot resync + a heartbeat to step down
	if got := e.Server(netsim.FRK).Role(); got != "follower" {
		t.Errorf("restarted old leader role = %s, want follower", got)
	}
	if got, want := e.Server(netsim.FRK).Tree().NodeCount(), e.Leader().Tree().NodeCount(); got != want {
		t.Errorf("old leader has %d znodes after resync, leader %d", got, want)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestElectionStalledByCrashedElectorate: a candidacy in flight while the
// rest of the ensemble is crashed cannot reach a majority — the candidate
// retries in the *same* epoch (an isolated candidate must not inflate
// epochs) until a quorum peer restarts, then wins promptly. Terminal state:
// elected leader, working ops, converged trees — never a wedge.
func TestElectionStalledByCrashedElectorate(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.IRL, netsim.IRL)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Crash{Region: netsim.FRK})
	inj.Apply(faults.Crash{Region: netsim.VRG})
	clock.Sleep(9 * time.Second) // several IRL candidacies, all short of quorum
	if recs := e.Elections(); len(recs) != 0 {
		t.Fatalf("election won without a quorum alive: %+v", recs)
	}
	if got := e.Server(netsim.IRL).Role(); got != "candidate" {
		t.Errorf("sole live server role = %s, want candidate", got)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(6 * time.Second) // next retry (plus one step-down round at worst) wins
	recs := e.Elections()
	if len(recs) != 1 || recs[0].Leader != netsim.IRL {
		t.Fatalf("elections = %+v, want one win by %s", recs, netsim.IRL)
	}
	if recs[0].Epoch > 2 {
		t.Errorf("win epoch = %d; isolated retries inflated the epoch", recs[0].Epoch)
	}
	if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue after recovery: %v", err)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestDoubleLeaderCrash: the elected leader crashes too. The remaining
// majority (the restarted original leader plus the untouched follower)
// elects again — epochs strictly increase, the twice-moved leadership
// settles, and the twice-crashed servers rejoin as followers.
func TestDoubleLeaderCrash(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.VRG, netsim.VRG)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Crash{Region: netsim.FRK})
	clock.Sleep(3500 * time.Millisecond) // IRL wins epoch 1
	inj.Apply(faults.Restart{Region: netsim.FRK})
	clock.Sleep(time.Second) // FRK resyncs, steps down

	inj.Apply(faults.Crash{Region: netsim.IRL})
	clock.Sleep(3 * time.Second) // FRK times out first (2s) and wins epoch 2
	recs := e.Elections()
	if len(recs) != 2 {
		t.Fatalf("elections = %+v, want two", recs)
	}
	if recs[1].Leader != netsim.FRK || recs[1].Epoch <= recs[0].Epoch {
		t.Fatalf("second election = %+v, want %s at a higher epoch than %+v", recs[1], netsim.FRK, recs[0])
	}
	if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue under second elected leader: %v", err)
	}

	inj.Apply(faults.Restart{Region: netsim.IRL})
	clock.Sleep(time.Second)
	if got := e.Server(netsim.IRL).Role(); got != "follower" {
		t.Errorf("twice-deposed leader role = %s, want follower", got)
	}
	if got, want := e.Server(netsim.IRL).Tree().NodeCount(), e.Leader().Tree().NodeCount(); got != want {
		t.Errorf("rejoined server has %d znodes, leader %d", got, want)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestHealBeforeElectionTimeout: a partition that isolates the leader but
// heals inside the election timeout must not trigger an election — the
// followers' heartbeat lease resumes before anyone times out.
func TestHealBeforeElectionTimeout(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.IRL, netsim.IRL)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK}, {netsim.IRL, netsim.VRG},
	}})
	clock.Sleep(1500 * time.Millisecond) // under FRK's 2s base timeout
	inj.Apply(faults.Heal{})
	clock.Sleep(3 * time.Second) // past every timeout: leases must have resumed

	if recs := e.Elections(); len(recs) != 0 {
		t.Fatalf("heal inside the timeout still triggered elections: %+v", recs)
	}
	if got := e.Leader().Region; got != netsim.FRK {
		t.Fatalf("leader moved to %s despite the heal", got)
	}
	if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue after heal: %v", err)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestCandidateCrashAfterVoting: an isolated follower becomes a candidate
// (voting for itself), crashes mid-candidacy, and restarts after the heal.
// The healthy majority never lost its leader, so the rejoining candidate is
// lease-denied, stands down, and the ensemble ends with its original
// leader, no elections, and converged state — the restart-bug shape that
// must never wedge.
func TestCandidateCrashAfterVoting(t *testing.T) {
	e, inj, clock := newFaultedEnsemble(t)
	qc := NewQueueClient(e, netsim.FRK, netsim.FRK)
	if err := qc.CreateQueue("q"); err != nil {
		t.Fatal(err)
	}

	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.IRL}, {netsim.FRK, netsim.VRG},
	}})
	clock.Sleep(3500 * time.Millisecond) // IRL times out at ~2.5s, candidacies in isolation
	if got := e.Server(netsim.IRL).Role(); got != "candidate" {
		t.Fatalf("isolated follower role = %s, want candidate", got)
	}
	inj.Apply(faults.Crash{Region: netsim.IRL}) // candidate crashes after self-voting
	inj.Apply(faults.Heal{})
	// Commits keep flowing on the majority side throughout.
	if err := qc.Enqueue("q", []byte("x"), false, func(QueueView) {}); err != nil {
		t.Fatalf("enqueue with candidate crashed: %v", err)
	}

	inj.Apply(faults.Restart{Region: netsim.IRL})
	clock.Sleep(4 * time.Second) // rejoin: solicit, get lease-denied, stand down

	if recs := e.Elections(); len(recs) != 0 {
		t.Fatalf("rejoining candidate deposed a healthy leader: %+v", recs)
	}
	if got := e.Leader().Region; got != netsim.FRK {
		t.Fatalf("leader = %s, want %s untouched", got, netsim.FRK)
	}
	if got := e.Server(netsim.IRL).Role(); got != "follower" {
		t.Errorf("rejoined candidate role = %s, want follower", got)
	}
	if got, want := e.Server(netsim.IRL).Tree().NodeCount(), e.Leader().Tree().NodeCount(); got != want {
		t.Errorf("rejoined candidate has %d znodes, leader %d", got, want)
	}
	inj.Quiesce()
	clock.Drain()
}
