package zk

import (
	"testing"

	"correctables/internal/netsim"
)

func TestWatchFiresOnDataChange(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a", []byte("v0"), false); err != nil {
		t.Fatal(err)
	}
	data, _, watch, err := tr.GetW("/a")
	if err != nil || string(data) != "v0" {
		t.Fatalf("GetW = %q, %v", data, err)
	}
	select {
	case <-watch:
		t.Fatal("watch fired before any change")
	default:
	}
	if err := tr.SetData("/a", []byte("v1"), -1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watch:
		if ev.Type != EventDataChanged || ev.Path != "/a" {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("watch did not fire on SetData")
	}
	// One-shot: a second change produces no further event.
	if err := tr.SetData("/a", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watch:
		t.Fatalf("one-shot watch fired twice: %+v", ev)
	default:
	}
}

func TestWatchFiresOnDelete(t *testing.T) {
	tr := NewTree()
	_, _ = tr.Create("/a", nil, false)
	_, _, watch, err := tr.GetW("/a")
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Delete("/a", -1)
	select {
	case ev := <-watch:
		if ev.Type != EventDeleted {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("watch did not fire on delete")
	}
}

func TestExistsWatchFiresOnCreate(t *testing.T) {
	tr := NewTree()
	ok, watch := tr.ExistsW("/pending")
	if ok {
		t.Fatal("node should not exist yet")
	}
	if _, err := tr.Create("/pending", nil, false); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watch:
		if ev.Type != EventCreated || ev.Path != "/pending" {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("exists watch did not fire on create")
	}
}

func TestChildrenWatch(t *testing.T) {
	tr := NewTree()
	_ = tr.EnsurePath("/q")
	kids, watch, err := tr.ChildrenW("/q")
	if err != nil || len(kids) != 0 {
		t.Fatalf("ChildrenW = %v, %v", kids, err)
	}
	if _, err := tr.Create("/q/a", nil, false); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watch:
		if ev.Type != EventChildrenChanged || ev.Path != "/q" {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("children watch did not fire on child create")
	}
	// Child deletion also fires a (fresh) children watch.
	_, watch2, err := tr.ChildrenW("/q")
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Delete("/q/a", -1)
	select {
	case <-watch2:
	default:
		t.Fatal("children watch did not fire on child delete")
	}
}

func TestWatchEventTypeStrings(t *testing.T) {
	for typ, want := range map[EventType]string{
		EventCreated:         "created",
		EventDeleted:         "deleted",
		EventDataChanged:     "dataChanged",
		EventChildrenChanged: "childrenChanged",
		EventType(99):        "unknown",
	} {
		if got := typ.String(); got != want {
			t.Errorf("EventType(%d) = %q, want %q", typ, got, want)
		}
	}
}

func TestEphemeralLifecycle(t *testing.T) {
	tr := NewTree()
	_ = tr.EnsurePath("/locks")
	if _, err := tr.CreateOwned("/locks/me", nil, false, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CreateOwned("/locks/me2", nil, false, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CreateOwned("/locks/other", nil, false, "sess-2"); err != nil {
		t.Fatal(err)
	}
	if got := tr.Owner("/locks/me"); got != "sess-1" {
		t.Errorf("Owner = %q", got)
	}
	removed := tr.DeleteOwned("sess-1")
	if len(removed) != 2 || removed[0] != "/locks/me" || removed[1] != "/locks/me2" {
		t.Errorf("removed = %v", removed)
	}
	if tr.Exists("/locks/me") || !tr.Exists("/locks/other") {
		t.Error("wrong ephemerals removed")
	}
	if got := tr.DeleteOwned(""); got != nil {
		t.Errorf("DeleteOwned(\"\") = %v", got)
	}
}

func TestSessionEphemeralReplicatedAndCleaned(t *testing.T) {
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/members"})
	sess := e.NewSession(netsim.IRL, netsim.FRK)

	created, err := sess.CreateEphemeral("/members/node-", []byte("me"), true)
	if err != nil {
		t.Fatal(err)
	}
	if created == "" {
		t.Fatal("no created path")
	}
	// The ephemeral reaches every replica once async commits are drained.
	waitForAll := func(want bool) {
		t.Helper()
		clock.Drain()
		for _, region := range e.Regions() {
			if e.Server(region).Tree().Exists(created) != want {
				t.Fatalf("replica %s never converged to exists=%v for %s", region, want, created)
			}
		}
	}
	waitForAll(true)
	if got := e.Leader().Tree().Owner(created); got != sess.ID {
		t.Errorf("owner = %q, want %q", got, sess.ID)
	}

	removed, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != created {
		t.Errorf("removed = %v", removed)
	}
	waitForAll(false)

	// Closed sessions refuse further work; Close is idempotent.
	if _, err := sess.CreateEphemeral("/members/node-", nil, true); err == nil {
		t.Error("create on closed session succeeded")
	}
	if again, err := sess.Close(); err != nil || again != nil {
		t.Errorf("second Close = %v, %v", again, err)
	}
}

func TestSessionCRUDAndWatch(t *testing.T) {
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	sess := e.NewSession(netsim.IRL, netsim.FRK)
	t.Cleanup(func() { _, _ = sess.Close() })

	if _, err := sess.Create("/cfg", []byte("v0"), false); err != nil {
		t.Fatal(err)
	}
	data, ver, err := sess.Get("/cfg")
	if err != nil || string(data) != "v0" || ver != 0 {
		t.Fatalf("Get = %q, %d, %v", data, ver, err)
	}
	if err := sess.SetData("/cfg", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}

	// Watch on the contact server fires when a foreign commit applies there.
	ok, watch, err := sess.ExistsW("/flag")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("flag should not exist")
	}
	other := e.NewSession(netsim.VRG, netsim.IRL)
	t.Cleanup(func() { _, _ = other.Close() })
	if _, err := other.Create("/flag", nil, false); err != nil {
		t.Fatal(err)
	}
	clock.Drain() // let the async commit reach the contact server
	select {
	case ev := <-watch:
		if ev.Type != EventCreated {
			t.Errorf("event = %+v", ev)
		}
	default:
		t.Fatal("watch never fired for replicated create")
	}

	if err := sess.Delete("/cfg", -1); err != nil {
		t.Fatal(err)
	}
}

func TestSessionChildrenWatchCoordination(t *testing.T) {
	// The classic group-membership pattern: watch a directory, react when a
	// member joins.
	e, _, clock := newTestEnsemble(t, false, netsim.IRL)
	e.Bootstrap(CreateTxn{Path: "/group"})
	watcher := e.NewSession(netsim.IRL, netsim.FRK)
	t.Cleanup(func() { _, _ = watcher.Close() })
	kids, watch, err := watcher.ChildrenW("/group")
	if err != nil || len(kids) != 0 {
		t.Fatalf("ChildrenW = %v, %v", kids, err)
	}

	member := e.NewSession(netsim.FRK, netsim.FRK)
	if _, err := member.CreateEphemeral("/group/m-", []byte("w1"), true); err != nil {
		t.Fatal(err)
	}
	clock.Drain()
	select {
	case <-watch:
	default:
		t.Fatal("membership watch never fired")
	}
	kids, _, err = watcher.ChildrenW("/group")
	if err != nil || len(kids) != 1 {
		t.Fatalf("group = %v, %v", kids, err)
	}

	// Member crashes (session closes): the group empties everywhere.
	if _, err := member.Close(); err != nil {
		t.Fatal(err)
	}
	clock.Drain()
	if kids, err := e.Server(netsim.FRK).Tree().Children("/group"); err != nil || len(kids) != 0 {
		t.Fatalf("group never emptied: %v", kids)
	}
}
