package zk

// Wire-size model for the client and replica links. The constants are tuned
// so that a vanilla enqueue of a ~20-byte element costs roughly 270 bytes on
// the client link and the preliminary response adds roughly 130 more —
// matching the paper's §6.2.2 measurement of 270 -> 400 bytes/op (+~50%).
const (
	// RequestOverhead is the client request envelope (TCP/IP + ZK framing +
	// session headers).
	RequestOverhead = 140
	// ResponseOverhead is the client response envelope.
	ResponseOverhead = 90
	// ChildEntryOverhead is the per-child-name overhead in a getChildren
	// response (length prefix etc.).
	ChildEntryOverhead = 4
	// ProposalOverhead / AckSize / CommitOverhead are replica-link Zab
	// messages.
	ProposalOverhead = 96
	AckSize          = 48
	CommitOverhead   = 96
	// HeartbeatSize / VoteRequestSize / VoteReplyOverhead are the
	// election-protocol control messages (replica link); a vote grant adds
	// its piggybacked accept-log tail on top of the reply overhead.
	HeartbeatSize     = 48
	VoteRequestSize   = 64
	VoteReplyOverhead = 64
)

func requestSize(payload int) int  { return RequestOverhead + payload }
func responseSize(payload int) int { return ResponseOverhead + payload }

func childrenResponseSize(names []string) int {
	sz := ResponseOverhead
	for _, n := range names {
		sz += len(n) + ChildEntryOverhead
	}
	return sz
}

func proposalSize(txn Txn) int { return ProposalOverhead + txn.PayloadSize() }
func commitSize(txn Txn) int   { return CommitOverhead + txn.PayloadSize() }

func voteReplySize(tail map[uint64]acceptedTxn) int {
	sz := VoteReplyOverhead
	for _, a := range tail {
		sz += 16 + a.Txn.PayloadSize() // zxid + epoch + payload
	}
	return sz
}

func elementPayload(e *QueueElement) int {
	if e == nil {
		return 4
	}
	return len(e.Name) + len(e.Data) + 8
}
