package zk

import (
	"sort"
	"sync"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Leader election for the simulated ensemble: an explicit follower ->
// candidate -> leader state machine per server, driven entirely by clock
// callbacks (RunAfter timer chains and transport Send deliveries) so
// elections interleave deterministically with traffic and replay byte for
// byte from a seed.
//
// The protocol is Zab-flavored Raft:
//
//   - The leader heartbeats every HeartbeatInterval. A follower that has
//     not heard one for its election timeout — ElectionTimeout plus a
//     deterministic per-server stagger replacing Raft's randomization —
//     becomes a candidate, bumps its epoch, votes for itself, and solicits
//     the other servers.
//   - A voter grants at most one vote per epoch, and only to a candidate
//     whose (dataEpoch, lastZxid) is at least its own — the newest-state
//     rule that keeps client-acknowledged transactions on the winning side.
//     The grant piggybacks the voter's accept-log tail.
//   - A voter that heard its leader within the lease (two heartbeat
//     intervals) denies without adopting the candidate's epoch and flags
//     the live leader; the candidate steps down. This pre-vote stops a
//     healed minority server from deposing a healthy leader.
//   - A candidate with a majority (its own vote included) wins: it merges
//     the piggybacked tails with its own accept log, materializes every
//     transaction above its applied watermark in zxid order, advances the
//     commit epoch, takes over proposal numbering, and resyncs lagging
//     followers by state transfer. A zxid gap in the merged log means no
//     majority accepted the missing proposal, so it was never
//     client-acknowledged and is safe to lose.
//
// Crash integration rides the injector's per-region edge notifications: a
// down server is suspended (no votes, beats, or candidacies); on restart it
// resumes as a follower with a fresh grace period. The final Quiesce stops
// every timer chain so VirtualClock.Drain terminates.
//
// Heartbeats and votes are control-plane traffic: they ride the transport
// (so partitions and crashes apply to them) but charge no server worker
// time, keeping the data-plane service model unchanged.

// role is a server's place in the election state machine.
type role uint8

const (
	roleFollower role = iota
	roleCandidate
	roleLeader
)

func (r role) String() string {
	switch r {
	case roleFollower:
		return "follower"
	case roleCandidate:
		return "candidate"
	case roleLeader:
		return "leader"
	}
	return "unknown"
}

// ElectionRecord is one entry of the ensemble's election log.
type ElectionRecord struct {
	// Epoch the winner leads.
	Epoch uint64
	// Leader is the winning region.
	Leader netsim.Region
	// At is the model instant the win took effect.
	At time.Duration
}

// acceptedTxn is one accept-log entry: the proposal and the epoch it was
// ordered under (higher epochs win on zxid collisions after a rewind).
type acceptedTxn struct {
	Txn   Txn
	Epoch uint64
}

// electState is one server's election-protocol state.
type electState struct {
	role     role
	epoch    uint64 // highest election epoch seen
	votedFor netsim.Region
	votedEp  uint64
	lastBeat time.Duration // last heartbeat heard (or grace reset)
	// suspended mirrors the region's crash state via OnDown/OnUp.
	suspended bool
	// candidate bookkeeping
	votes   int
	sawDeny bool // a live peer denied (not lease-deny): bump epoch on retry
	tally   map[uint64]acceptedTxn
	// sp is the open election-window span (tracing only): candidacy start
	// to win or step-down.
	sp trace.SpanID
}

// elector runs the election protocol for every server of one ensemble.
type elector struct {
	e   *Ensemble
	inj *faults.Injector
	hb  time.Duration

	mu      sync.Mutex
	stopped bool
	st      map[netsim.Region]*electState
	log     []ElectionRecord
}

func newElector(e *Ensemble, inj *faults.Injector) *elector {
	el := &elector{
		e:   e,
		inj: inj,
		hb:  e.cfg.HeartbeatInterval,
		st:  make(map[netsim.Region]*electState, len(e.order)),
	}
	for _, r := range e.order {
		st := &electState{role: roleFollower}
		if r == e.cfg.LeaderRegion {
			st.role = roleLeader
		}
		el.st[r] = st
	}
	for _, r := range e.order {
		r := r
		inj.OnDown(r, func() { el.setSuspended(r, true) })
		inj.OnUp(r, func() { el.setSuspended(r, false) })
		el.armTimer(r, el.timeoutFor(r))
	}
	inj.Subscribe(func(t faults.Transition) {
		if t.Quiesced() {
			el.stop()
		}
	})
	el.runBeats(e.cfg.LeaderRegion, 0)
	return el
}

// timeoutFor is the server's election timeout: the configured base plus a
// deterministic stagger of a quarter-base per position in Regions order, so
// ties break by declaration order instead of randomness.
func (el *elector) timeoutFor(r netsim.Region) time.Duration {
	for i, reg := range el.e.order {
		if reg == r {
			return el.e.cfg.ElectionTimeout + time.Duration(i)*el.e.cfg.ElectionTimeout/4
		}
	}
	return el.e.cfg.ElectionTimeout
}

// lease is how long a follower keeps trusting its leader after a
// heartbeat: two intervals tolerate one lost beat.
func (el *elector) lease() time.Duration { return 2 * el.hb }

// majority is the vote count that wins an election (self included).
func (el *elector) majority() int { return len(el.e.order)/2 + 1 }

// endElectSpanLocked closes the server's open election-window span, if
// any. Callers hold el.mu.
func (el *elector) endElectSpanLocked(st *electState, now time.Duration) {
	if st.sp != 0 {
		el.e.trc.End(st.sp, now)
		st.sp = 0
	}
}

func (el *elector) elections() []ElectionRecord {
	el.mu.Lock()
	defer el.mu.Unlock()
	return append([]ElectionRecord(nil), el.log...)
}

// stop halts the elector: armed timers fire once more, see stopped, and do
// not re-arm, so Drain terminates.
func (el *elector) stop() {
	el.mu.Lock()
	el.stopped = true
	el.mu.Unlock()
}

func (el *elector) setSuspended(r netsim.Region, down bool) {
	el.mu.Lock()
	st := el.st[r]
	st.suspended = down
	if !down {
		// Fresh grace period on restart: hear the current leader (or time
		// out honestly) before judging it dead.
		st.lastBeat = el.e.tr.Clock().Now()
	}
	el.mu.Unlock()
}

// --- timers -------------------------------------------------------------

func (el *elector) armTimer(r netsim.Region, d time.Duration) {
	el.e.tr.Clock().RunAfter(d, func() { el.timerFired(r) })
}

// timerFired is the per-server election timer: it re-arms itself forever
// (until stop) and starts or retries an election when a non-suspended
// follower's heartbeat lease has lapsed.
func (el *elector) timerFired(r netsim.Region) {
	el.mu.Lock()
	if el.stopped {
		el.mu.Unlock()
		return
	}
	st := el.st[r]
	now := el.e.tr.Clock().Now()
	to := el.timeoutFor(r)
	if st.suspended || st.role == roleLeader {
		el.mu.Unlock()
		el.armTimer(r, to)
		return
	}
	if st.role == roleFollower {
		if wait := st.lastBeat + to - now; wait > 0 {
			el.mu.Unlock()
			el.armTimer(r, wait)
			return
		}
		// Timed out: fresh candidacy in a new epoch.
		st.role = roleCandidate
		st.epoch++
	} else if st.sawDeny {
		// Candidate retry after a live denial (e.g. a split vote): a new
		// epoch releases the deniers' votes. Without any reply — an
		// isolated candidate — retry in the same epoch so a minority
		// server cannot inflate epochs unboundedly while partitioned.
		st.epoch++
	}
	st.sawDeny = false
	if trc := el.e.trc; trc != nil && st.sp == 0 {
		st.sp = trc.Begin(el.e.electTrk, trace.CatElection, "election", string(r), now)
	}
	epoch := st.epoch
	st.votedFor, st.votedEp = r, epoch
	st.votes = 1
	s := el.e.servers[r]
	candEpoch, candApplied, candZxid := s.electInfo()
	st.tally = s.acceptedTail(candApplied)
	el.mu.Unlock()

	for _, other := range el.e.order {
		if other == r {
			continue
		}
		other := other
		el.e.tr.Send(r, other, netsim.LinkReplica, VoteRequestSize, func() {
			el.onVoteRequest(other, r, epoch, candEpoch, candApplied, candZxid)
		})
	}
	el.armTimer(r, to)
}

// --- heartbeats ---------------------------------------------------------

func (el *elector) runBeats(r netsim.Region, epoch uint64) {
	el.e.tr.Clock().RunAfter(el.hb, func() { el.beat(r, epoch) })
}

// beat is the leader heartbeat chain: it ends when the server is no longer
// the leader of this epoch (deposed or superseded); a suspended leader
// skips the sends but keeps the chain so beats resume on restart.
func (el *elector) beat(r netsim.Region, epoch uint64) {
	el.mu.Lock()
	st := el.st[r]
	if el.stopped || st.role != roleLeader || st.epoch != epoch {
		el.mu.Unlock()
		return
	}
	suspended := st.suspended
	el.mu.Unlock()

	if !suspended {
		for _, other := range el.e.order {
			if other == r {
				continue
			}
			other := other
			el.e.tr.Send(r, other, netsim.LinkReplica, HeartbeatSize, func() {
				el.onHeartbeat(other, epoch)
			})
		}
	}
	el.runBeats(r, epoch)
}

// onHeartbeat runs at a server hearing a leader heartbeat: adopt the epoch,
// step down from any candidacy (or stale leadership), refresh the lease.
func (el *elector) onHeartbeat(r netsim.Region, epoch uint64) {
	el.mu.Lock()
	st := el.st[r]
	if el.stopped || st.suspended || epoch < st.epoch {
		el.mu.Unlock()
		return
	}
	st.epoch = epoch
	if st.role != roleFollower {
		st.role = roleFollower
		st.sawDeny = false
		st.tally = nil
		el.endElectSpanLocked(st, el.e.tr.Clock().Now())
	}
	st.lastBeat = el.e.tr.Clock().Now()
	el.mu.Unlock()
}

// --- votes --------------------------------------------------------------

// onVoteRequest runs at voter v for a candidacy of cand.
func (el *elector) onVoteRequest(v, cand netsim.Region, epoch, candEpoch, candApplied, candZxid uint64) {
	el.mu.Lock()
	st := el.st[v]
	if el.stopped || st.suspended {
		el.mu.Unlock()
		return
	}
	now := el.e.tr.Clock().Now()
	reply := func(granted, leaderLive bool, tail map[uint64]acceptedTxn) {
		el.mu.Unlock()
		el.e.tr.Send(v, cand, netsim.LinkReplica, voteReplySize(tail), func() {
			el.onVoteReply(cand, epoch, granted, leaderLive, tail)
		})
	}
	if epoch < st.epoch {
		reply(false, false, nil)
		return
	}
	// Leader lease pre-vote: a live leader, or a follower that heard one
	// within the lease, denies without adopting the epoch — a healed
	// minority candidate steps down instead of deposing a healthy leader.
	if st.role == roleLeader || now-st.lastBeat < el.lease() {
		reply(false, true, nil)
		return
	}
	if epoch > st.epoch {
		st.epoch = epoch
		st.role = roleFollower
		st.sawDeny = false
		st.tally = nil
	}
	if st.votedEp == epoch && st.votedFor != cand {
		reply(false, false, nil)
		return
	}
	s := el.e.servers[v]
	vEpoch, _, vZxid := s.electInfo()
	if candEpoch < vEpoch || (candEpoch == vEpoch && candZxid < vZxid) {
		// Newest-state rule: never elect a candidate behind this voter.
		reply(false, false, nil)
		return
	}
	st.votedFor, st.votedEp = cand, epoch
	reply(true, false, s.acceptedTail(candApplied))
}

// onVoteReply runs at the candidate.
func (el *elector) onVoteReply(cand netsim.Region, epoch uint64, granted, leaderLive bool, tail map[uint64]acceptedTxn) {
	el.mu.Lock()
	st := el.st[cand]
	if el.stopped || st.suspended || st.role != roleCandidate || st.epoch != epoch {
		el.mu.Unlock()
		return
	}
	if !granted {
		if leaderLive {
			// The cluster has a live leader: stand down and wait to hear it.
			st.role = roleFollower
			st.sawDeny = false
			st.tally = nil
			st.lastBeat = el.e.tr.Clock().Now()
			el.endElectSpanLocked(st, st.lastBeat)
		} else {
			st.sawDeny = true
		}
		el.mu.Unlock()
		return
	}
	st.votes++
	for z, a := range tail {
		if cur, ok := st.tally[z]; !ok || a.Epoch > cur.Epoch {
			if st.tally == nil {
				st.tally = make(map[uint64]acceptedTxn)
			}
			st.tally[z] = a
		}
	}
	if st.votes < el.majority() {
		el.mu.Unlock()
		return
	}
	st.role = roleLeader
	tally := st.tally
	st.tally = nil
	el.mu.Unlock()
	el.becomeLeader(cand, epoch, tally)
}

// becomeLeader installs an election win: materialize the merged accept log,
// advance the commit epoch, take over proposal numbering, move the leader
// pointer, start heartbeats, and resync lagging followers.
func (el *elector) becomeLeader(r netsim.Region, epoch uint64, tally map[uint64]acceptedTxn) {
	e := el.e
	now := e.tr.Clock().Now()
	e.propMu.Lock()
	if epoch <= e.commitEpoch {
		// A later election already won: this victory is stale.
		e.propMu.Unlock()
		el.mu.Lock()
		if st := el.st[r]; st.role == roleLeader && st.epoch == epoch {
			st.role = roleFollower
			st.lastBeat = now
		}
		el.endElectSpanLocked(el.st[r], now)
		el.mu.Unlock()
		return
	}
	s := e.servers[r]
	s.mu.Lock()
	zxids := make([]uint64, 0, len(tally))
	for z := range tally {
		if z > s.lastApplied {
			zxids = append(zxids, z)
		}
	}
	sort.Slice(zxids, func(i, j int) bool { return zxids[i] < zxids[j] })
	for _, z := range zxids {
		tally[z].Txn.Apply(s.tree)
		s.lastApplied = z
	}
	s.dataEpoch = epoch
	s.pending = make(map[uint64]Txn)
	if s.accepted != nil {
		s.accepted = make(map[uint64]acceptedTxn)
		s.maxAccepted = 0
	}
	fire := s.applyPendingLocked()
	s.mu.Unlock()
	e.nextZxid = s.lastApplied
	e.commitEpoch = epoch
	e.propMu.Unlock()

	e.setLeader(s)
	el.mu.Lock()
	el.log = append(el.log, ElectionRecord{Epoch: epoch, Leader: r, At: now})
	el.endElectSpanLocked(el.st[r], now)
	el.mu.Unlock()
	if e.trc != nil {
		e.trc.Instant(e.electTrk, "elected", string(r), now)
	}
	for _, w := range fire {
		w.Fire()
	}
	el.runBeats(r, epoch)
	e.resyncLagging()
}

// Role returns the server's current election role (always follower for the
// non-leaders of an election-less ensemble).
func (s *Server) Role() string {
	e := s.ensemble
	if e.elect == nil {
		if e.Leader() == s {
			return roleLeader.String()
		}
		return roleFollower.String()
	}
	e.elect.mu.Lock()
	defer e.elect.mu.Unlock()
	return e.elect.st[s.Region].role.String()
}
