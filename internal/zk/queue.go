package zk

import (
	"fmt"

	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// QueueView is one response to a queue operation as observed at the client.
type QueueView struct {
	// Element is the enqueued/dequeued element. For enqueue it carries the
	// assigned (or, for preliminary views, predicted) name and sequence
	// number. For dequeue it is nil when the queue is empty.
	Element *QueueElement
	// Remaining is the number of elements left in the queue (dequeue only;
	// for preliminary views it is the local estimate).
	Remaining int
	// Level is LevelWeak for local simulations, LevelStrong for committed
	// results.
	Level core.Level
	// Final marks the last view of this operation.
	Final bool
	// Confirmed marks a final view that matched the preliminary.
	Confirmed bool
	// Zxid is the version token of the state this view reflects: the
	// committed transaction's zxid for final views, the contact server's
	// last-applied zxid for preliminary (locally simulated) views. It is
	// the binding's per-queue version token.
	Zxid uint64
}

// QueueClient issues queue operations against an ensemble from a client
// region via a fixed contact server, following the standard ZooKeeper queue
// recipe (vanilla) or the CZK fast path (correctable ensembles).
type QueueClient struct {
	ensemble *Ensemble
	Region   netsim.Region
	Contact  netsim.Region
}

// NewQueueClient creates a client in clientRegion connected to the server
// in contactRegion.
func NewQueueClient(e *Ensemble, clientRegion, contactRegion netsim.Region) *QueueClient {
	e.Server(contactRegion) // validate eagerly
	return &QueueClient{ensemble: e, Region: clientRegion, Contact: contactRegion}
}

// Ensemble returns the client's ensemble.
func (c *QueueClient) Ensemble() *Ensemble { return c.ensemble }

// guard bounds op to the ensemble's OpTimeout of model time when a fault
// interceptor is attached to the transport (see cassandra.Client.Read for
// the semantics); without one, op runs inline and unguarded.
func (c *QueueClient) guard(op func(live func() bool) error) error {
	if c.ensemble.tr.Interceptor() == nil {
		return op(func() bool { return true })
	}
	return faults.Deadline(c.ensemble.tr.Clock(), c.ensemble.cfg.OpTimeout, op)
}

// CreateQueue creates the queue directory through the ordered protocol.
func (c *QueueClient) CreateQueue(queue string) error {
	return c.guard(func(func() bool) error { return c.createQueue(queue) })
}

func (c *QueueClient) createQueue(queue string) error {
	dir := queueDir(queue)
	tr := c.ensemble.tr
	contact := c.ensemble.Server(c.Contact)
	tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(dir)))
	contact.process()
	// Ensure the /queues parent through the ordered protocol. When it already
	// exists the create fails fast (no zxid, no broadcast), so this is an
	// idempotent no-op on every call but the first. Bootstrap must NOT be used
	// here: it force-advances every server's applied watermark, and a queue
	// can be created while protocol traffic is in flight — the jump would make
	// followers discard committed transactions still on the wire.
	_, _ = c.forwardAndCommit(contact, CreateTxn{Path: "/queues"})
	zxid, res := c.forwardAndCommit(contact, CreateTxn{Path: dir})
	_ = zxid
	tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(len(dir)))
	return res.Err
}

// Enqueue appends data to the queue. On a correctable ensemble with
// wantPrelim, the contact server first simulates the create on its local
// state and leaks the predicted element name (weak view); the committed
// result follows (strong view). Blocks until the final view is delivered.
//
// Under fault injection the operation is bounded by Config.OpTimeout of
// model time and fails with faults.ErrUnreachable when the contact or the
// leader's quorum is unreachable; late views are suppressed.
func (c *QueueClient) Enqueue(queue string, data []byte, wantPrelim bool, onView func(QueueView)) error {
	return c.guard(func(live func() bool) error {
		return c.enqueue(queue, data, wantPrelim, func(v QueueView) {
			if live() {
				onView(v)
			}
		})
	})
}

func (c *QueueClient) enqueue(queue string, data []byte, wantPrelim bool, onView func(QueueView)) error {
	wantPrelim = wantPrelim && c.ensemble.cfg.Correctable
	tr := c.ensemble.tr
	clock := tr.Clock()
	contact := c.ensemble.Server(c.Contact)
	prefix := queueItemPrefix(queue)

	tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(prefix)+len(data)))
	contact.process()

	prelimDelivered := clock.NewEvent()
	var prelim *QueueElement
	if wantPrelim {
		// Local simulation: predict the sequence number from local state.
		prelimZxid := contact.LastApplied()
		seq, err := contact.tree.NextSeq(queueDir(queue))
		if err == nil {
			name := fmt.Sprintf("q-%010d", seq)
			prelim = &QueueElement{Name: name, Seq: seq, Data: append([]byte(nil), data...)}
			// The leaked preliminary rides back as a callback-timer message:
			// no goroutine per flush.
			tr.Send(c.Contact, c.Region, netsim.LinkClient, responseSize(elementPayload(prelim)), func() {
				onView(QueueView{Element: prelim, Level: core.LevelWeak, Zxid: prelimZxid})
				prelimDelivered.Fire()
			})
		} else {
			prelimDelivered.Fire()
		}
	} else {
		prelimDelivered.Fire()
	}

	zxid, res := c.forwardAndCommit(contact, CreateTxn{Path: prefix, Data: data, Sequential: true})
	if res.Err != nil {
		prelimDelivered.Wait()
		return res.Err
	}
	name := baseOf(res.CreatedPath)
	elem := &QueueElement{Name: name, Seq: seqOf(name), Data: append([]byte(nil), data...)}
	confirmed := prelim != nil && prelim.Name == elem.Name

	tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(elementPayload(elem)))
	prelimDelivered.Wait()
	onView(QueueView{Element: elem, Level: core.LevelStrong, Final: true, Confirmed: confirmed, Zxid: zxid})
	return nil
}

// Dequeue removes the queue head.
//
// On a vanilla ensemble it runs the standard recipe: getChildren (the
// response carries the whole child list, whose size grows with the queue —
// Fig 10), pick the smallest, delete it; on a version race with a
// concurrent consumer, retry. The single final view is the removed element.
//
// On a correctable ensemble it uses the CZK fast path: the contact reads
// only the constant-size queue tail locally and (with wantPrelim) leaks it
// as the preliminary view, then submits an atomic server-side dequeue
// transaction; the committed element is the final view. Blocks until the
// final view is delivered.
func (c *QueueClient) Dequeue(queue string, wantPrelim bool, onView func(QueueView)) error {
	return c.guard(func(live func() bool) error {
		return c.dequeue(queue, wantPrelim, func(v QueueView) {
			if live() {
				onView(v)
			}
		})
	})
}

// dequeue is the unguarded dequeue path (ensemble-flavor dispatch); the
// Correctables binding calls it directly — the client library owns the
// operation deadline there.
func (c *QueueClient) dequeue(queue string, wantPrelim bool, onView func(QueueView)) error {
	if c.ensemble.cfg.Correctable {
		return c.dequeueCZK(queue, wantPrelim, onView)
	}
	return c.dequeueRecipe(queue, onView)
}

func (c *QueueClient) dequeueCZK(queue string, wantPrelim bool, onView func(QueueView)) error {
	tr := c.ensemble.tr
	clock := tr.Clock()
	contact := c.ensemble.Server(c.Contact)
	dir := queueDir(queue)

	tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(dir)))
	contact.process()

	prelimDelivered := clock.NewEvent()
	var prelim *QueueElement
	prelimRemaining := 0
	if wantPrelim {
		// Constant-size tail read on local state, simulating the dequeue.
		prelimZxid := contact.LastApplied()
		name, data, count, err := contact.tree.FirstChild(dir)
		if err == nil {
			if name != "" {
				prelim = &QueueElement{Name: name, Seq: seqOf(name), Data: data}
			}
			prelimRemaining = count - 1
			if prelimRemaining < 0 {
				prelimRemaining = 0
			}
			tr.Send(c.Contact, c.Region, netsim.LinkClient, responseSize(elementPayload(prelim)), func() {
				onView(QueueView{Element: prelim, Remaining: prelimRemaining, Level: core.LevelWeak, Zxid: prelimZxid})
				prelimDelivered.Fire()
			})
		} else {
			prelimDelivered.Fire()
		}
	} else {
		prelimDelivered.Fire()
	}

	zxid, res := c.forwardAndCommit(contact, DequeueMinTxn{Dir: dir})
	if res.Err != nil {
		prelimDelivered.Wait()
		return res.Err
	}
	confirmed := prelim.EqualValue(res.Element)
	tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(elementPayload(res.Element)))
	prelimDelivered.Wait()
	onView(QueueView{
		Element:   res.Element,
		Remaining: res.Remaining,
		Level:     core.LevelStrong,
		Final:     true,
		Confirmed: confirmed,
		Zxid:      zxid,
	})
	return nil
}

func (c *QueueClient) dequeueRecipe(queue string, onView func(QueueView)) error {
	tr := c.ensemble.tr
	contact := c.ensemble.Server(c.Contact)
	dir := queueDir(queue)

	for {
		// getChildren: the whole child list crosses the client link.
		tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(dir)))
		contact.process()
		children, err := contact.tree.Children(dir)
		if err != nil {
			return err
		}
		tr.Travel(c.Contact, c.Region, netsim.LinkClient, childrenResponseSize(children))
		if len(children) == 0 {
			onView(QueueView{Element: nil, Remaining: 0, Level: core.LevelStrong, Final: true,
				Zxid: contact.LastApplied()})
			return nil
		}
		head := children[0]
		path := elementPath(queue, head)

		// getData for the head element.
		tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(path)))
		contact.process()
		data, _, err := contact.tree.Get(path)
		if err != nil {
			// Removed under us between the two reads; retry.
			tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(4))
			continue
		}
		tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(len(data)))

		// delete through the ordered protocol.
		tr.Travel(c.Region, c.Contact, netsim.LinkClient, requestSize(len(path)))
		contact.process()
		zxid, res := c.forwardAndCommit(contact, DeleteTxn{Path: path, Version: -1})
		tr.Travel(c.Contact, c.Region, netsim.LinkClient, responseSize(4))
		if res.Err != nil {
			// Another consumer won the race (NoNode): retry from the top —
			// this is the contention cost of the client-side recipe.
			continue
		}
		count := len(children) - 1
		onView(QueueView{
			Element:   &QueueElement{Name: head, Seq: seqOf(head), Data: data},
			Remaining: count,
			Level:     core.LevelStrong,
			Final:     true,
			Zxid:      zxid,
		})
		return nil
	}
}

// Len returns the queue length as seen by the contact server's local state
// (no protocol traffic; harness helper).
func (c *QueueClient) Len(queue string) int {
	children, err := c.ensemble.Server(c.Contact).tree.Children(queueDir(queue))
	if err != nil {
		return 0
	}
	return len(children)
}

// forwardAndCommit delegates to the ensemble's common client-request path.
func (c *QueueClient) forwardAndCommit(contact *Server, txn Txn) (uint64, TxnResult) {
	return c.ensemble.ForwardAndCommit(contact, txn)
}
