package zk

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"correctables/internal/binding"
)

func TestTreeCreateGetDelete(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a", []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	data, ver, err := tr.Get("/a")
	if err != nil || string(data) != "x" || ver != 0 {
		t.Fatalf("Get = %q, %d, %v", data, ver, err)
	}
	if !tr.Exists("/a") {
		t.Error("Exists(/a) = false")
	}
	if err := tr.Delete("/a", -1); err != nil {
		t.Fatal(err)
	}
	if tr.Exists("/a") {
		t.Error("node survived delete")
	}
	if _, _, err := tr.Get("/a"); !errors.Is(err, ErrNoNode) {
		t.Errorf("Get after delete = %v", err)
	}
}

func TestTreeCreateRequiresParent(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a/b", nil, false); !errors.Is(err, ErrNoNode) {
		t.Errorf("create without parent = %v, want ErrNoNode", err)
	}
	if err := tr.EnsurePath("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create("/a/b", nil, false); err != nil {
		t.Errorf("create with parent = %v", err)
	}
}

func TestTreeCreateDuplicate(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a", nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create("/a", nil, false); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate create = %v", err)
	}
}

func TestTreeSequentialNames(t *testing.T) {
	tr := NewTree()
	if err := tr.EnsurePath("/q"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name, err := tr.Create("/q/item-", nil, true)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("/q/item-%010d", i)
		if name != want {
			t.Errorf("sequential name = %q, want %q", name, want)
		}
	}
	// The counter does not reuse numbers after deletion.
	if err := tr.Delete("/q/item-0000000000", -1); err != nil {
		t.Fatal(err)
	}
	name, err := tr.Create("/q/item-", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if name != "/q/item-0000000003" {
		t.Errorf("counter reused a number: %q", name)
	}
	if seq, _ := tr.NextSeq("/q"); seq != 4 {
		t.Errorf("NextSeq = %d, want 4", seq)
	}
}

func TestTreeVersionChecks(t *testing.T) {
	tr := NewTree()
	if _, err := tr.Create("/a", []byte("v0"), false); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetData("/a", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetData("/a", []byte("v2"), 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("stale version accepted: %v", err)
	}
	if err := tr.Delete("/a", 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("delete with stale version accepted: %v", err)
	}
	if err := tr.Delete("/a", 1); err != nil {
		t.Errorf("delete with current version rejected: %v", err)
	}
}

func TestTreeDeleteNonEmpty(t *testing.T) {
	tr := NewTree()
	_ = tr.EnsurePath("/a/b")
	if err := tr.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("delete of non-empty node = %v", err)
	}
}

func TestTreeChildrenSorted(t *testing.T) {
	tr := NewTree()
	_ = tr.EnsurePath("/q")
	for _, n := range []string{"c", "a", "b"} {
		if _, err := tr.Create("/q/"+n, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	kids, err := tr.Children("/q")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 3 || kids[0] != "a" || kids[1] != "b" || kids[2] != "c" {
		t.Errorf("Children = %v", kids)
	}
}

func TestTreeFirstChild(t *testing.T) {
	tr := NewTree()
	_ = tr.EnsurePath("/q")
	name, data, count, err := tr.FirstChild("/q")
	if err != nil || name != "" || count != 0 {
		t.Errorf("empty FirstChild = %q, %q, %d, %v", name, data, count, err)
	}
	_, _ = tr.Create("/q/b", []byte("bb"), false)
	_, _ = tr.Create("/q/a", []byte("aa"), false)
	name, data, count, err = tr.FirstChild("/q")
	if err != nil || name != "a" || string(data) != "aa" || count != 2 {
		t.Errorf("FirstChild = %q, %q, %d, %v", name, data, count, err)
	}
	if _, _, _, err := tr.FirstChild("/missing"); !errors.Is(err, ErrNoNode) {
		t.Errorf("FirstChild on missing dir = %v", err)
	}
}

func TestTreeInvalidPaths(t *testing.T) {
	tr := NewTree()
	for _, p := range []string{"", "a", "/a/"} {
		if _, err := tr.Create(p, nil, false); err == nil {
			t.Errorf("Create(%q) accepted", p)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	if parentOf("/a/b/c") != "/a/b" || parentOf("/a") != "/" {
		t.Error("parentOf broken")
	}
	if baseOf("/a/b/c") != "c" || baseOf("/a") != "a" {
		t.Error("baseOf broken")
	}
	if seqOf("q-0000000042") != 42 {
		t.Errorf("seqOf = %d", seqOf("q-0000000042"))
	}
	if seqOf("short") != 0 || seqOf("q-notanumber") != 0 {
		t.Error("seqOf should tolerate malformed names")
	}
}

// Property: FirstChild always agrees with Children()[0], and counts match,
// for arbitrary create/delete interleavings.
func TestPropertyFirstChildMatchesChildren(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTree()
		_ = tr.EnsurePath("/q")
		for _, op := range ops {
			if op%3 == 0 {
				kids, _ := tr.Children("/q")
				if len(kids) > 0 {
					_ = tr.Delete("/q/"+kids[int(op)%len(kids)], -1)
				}
			} else {
				_, _ = tr.Create("/q/q-", []byte{op}, true)
			}
			name, _, count, err := tr.FirstChild("/q")
			if err != nil {
				return false
			}
			kids, _ := tr.Children("/q")
			if count != len(kids) {
				return false
			}
			if len(kids) == 0 {
				if name != "" {
					return false
				}
			} else if name != kids[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQueueElementEqualValue(t *testing.T) {
	a := &QueueElement{Name: "q-1", Seq: 1, Data: []byte("x")}
	b := &QueueElement{Name: "q-1", Seq: 1, Data: []byte("different")}
	c := &QueueElement{Name: "q-2", Seq: 2}
	if !a.EqualValue(b) {
		t.Error("same-name elements should be equal")
	}
	if a.EqualValue(c) {
		t.Error("different-name elements should differ")
	}
	var nilElem *QueueElement
	if nilElem.EqualValue(a) || !nilElem.EqualValue(nilElem) {
		t.Error("nil element comparisons broken")
	}
	if a.EqualValue("not an element") {
		t.Error("cross-type comparison should be false")
	}
}

func TestItemEqualValue(t *testing.T) {
	a := binding.Item{ID: "q-1", Exists: true, Remaining: 10}
	b := binding.Item{ID: "q-1", Data: []byte("different"), Exists: true, Remaining: 99}
	if !a.EqualValue(b) {
		t.Error("Item equality must ignore Data and Remaining")
	}
	if a.EqualValue(binding.Item{ID: "q-2", Exists: true}) {
		t.Error("different elements should differ")
	}
	if a.EqualValue(binding.Item{}) {
		t.Error("existing vs absent elements should differ")
	}
	if !(binding.Item{}).EqualValue(binding.Item{Remaining: 3}) {
		t.Error("two absent elements should be equal")
	}
}
