// Package zk implements a ZooKeeper-like replicated coordination service:
// a znode tree replicated over a leader-based atomic broadcast (Zab-style
// propose/ack/commit), the standard distributed-queue recipe on top of
// sequential znodes, and the paper's "Correctable ZooKeeper" (CZK)
// modifications (§5.2): a fast path in which a replica first simulates an
// operation on its local state and returns the preliminary (weak) result,
// then applies the operation after coordination and returns the strong
// response; and a dequeue that reads a constant-sized queue tail instead of
// the whole child list (§6.2.2, Fig 10).
package zk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tree errors, mirroring ZooKeeper's error codes.
var (
	ErrNoNode     = errors.New("zk: node does not exist")
	ErrNodeExists = errors.New("zk: node already exists")
	ErrNotEmpty   = errors.New("zk: node has children")
	ErrBadVersion = errors.New("zk: version conflict")
)

// node is one znode.
type node struct {
	data     []byte
	version  int32
	children map[string]bool
	// nextSeq numbers sequential children created under this node.
	nextSeq uint64
	// owner is the session ID for ephemeral znodes ("" = persistent).
	owner string
}

// Tree is a concurrency-safe znode tree. All mutation goes through
// deterministic transactions so that replicas applying the same committed
// sequence reach identical states. Watches are local observer state (each
// server fires its own as commits apply) and do not participate in
// replication.
type Tree struct {
	mu           sync.RWMutex
	nodes        map[string]*node
	dataWatches  map[string][]chan Event
	childWatches map[string][]chan Event
}

// NewTree returns a tree containing only the root node "/".
func NewTree() *Tree {
	return &Tree{
		nodes:        map[string]*node{"/": {children: map[string]bool{}}},
		dataWatches:  map[string][]chan Event{},
		childWatches: map[string][]chan Event{},
	}
}

func errNoNode(path string) error { return fmt.Errorf("%w: %s", ErrNoNode, path) }

func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

func baseOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	return path[i+1:]
}

func validPath(path string) error {
	if path == "" || path[0] != '/' {
		return fmt.Errorf("zk: invalid path %q", path)
	}
	if path != "/" && strings.HasSuffix(path, "/") {
		return fmt.Errorf("zk: invalid path %q (trailing slash)", path)
	}
	return nil
}

// EnsurePath creates path and any missing ancestors with empty data
// (a helper clients use during setup, like Curator's mkdirs).
func (t *Tree) EnsurePath(path string) error {
	if err := validPath(path); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ensureLocked(path)
}

func (t *Tree) ensureLocked(path string) error {
	if _, ok := t.nodes[path]; ok {
		return nil
	}
	if path != "/" {
		if err := t.ensureLocked(parentOf(path)); err != nil {
			return err
		}
	}
	t.nodes[path] = &node{children: map[string]bool{}}
	if path != "/" {
		t.nodes[parentOf(path)].children[baseOf(path)] = true
	}
	return nil
}

// Create adds a znode. If sequential, the final name is path plus a
// zero-padded 10-digit monotonically increasing counter scoped to the
// parent, and the created path is returned.
func (t *Tree) Create(path string, data []byte, sequential bool) (string, error) {
	return t.CreateOwned(path, data, sequential, "")
}

// CreateOwned is Create with an owning session: a non-empty owner makes the
// znode ephemeral — DeleteOwned removes it when the session closes.
func (t *Tree) CreateOwned(path string, data []byte, sequential bool, owner string) (string, error) {
	if err := validPath(path); err != nil {
		return "", err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, ok := t.nodes[parentOf(path)]
	if !ok {
		return "", fmt.Errorf("%w: parent of %s", ErrNoNode, path)
	}
	actual := path
	if sequential {
		actual = fmt.Sprintf("%s%010d", path, parent.nextSeq)
		parent.nextSeq++
	}
	if _, exists := t.nodes[actual]; exists {
		return "", fmt.Errorf("%w: %s", ErrNodeExists, actual)
	}
	t.nodes[actual] = &node{
		data:     append([]byte(nil), data...),
		children: map[string]bool{},
		owner:    owner,
	}
	parent.children[baseOf(actual)] = true
	t.fireData(actual, EventCreated)
	t.fireChildren(parentOf(actual))
	return actual, nil
}

// Owner returns the owning session of a znode ("" if persistent or absent).
func (t *Tree) Owner(path string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n, ok := t.nodes[path]; ok {
		return n.owner
	}
	return ""
}

// DeleteOwned removes every childless znode owned by the session, in sorted
// path order (deterministic across replicas), and returns the removed
// paths. Owned znodes that still have children are skipped (ZooKeeper
// forbids children under ephemerals; this guards hand-built states).
func (t *Tree) DeleteOwned(owner string) []string {
	if owner == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var victims []string
	for path, n := range t.nodes {
		if n.owner == owner && len(n.children) == 0 {
			victims = append(victims, path)
		}
	}
	sort.Strings(victims)
	for _, path := range victims {
		delete(t.nodes, path)
		delete(t.nodes[parentOf(path)].children, baseOf(path))
		t.fireData(path, EventDeleted)
		t.fireChildren(parentOf(path))
	}
	return victims
}

// NextSeq returns the sequence number the next sequential child of dir
// would receive (used by the CZK local simulation of enqueue).
func (t *Tree) NextSeq(dir string) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[dir]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoNode, dir)
	}
	return n.nextSeq, nil
}

// Get returns the data and version of a znode.
func (t *Tree) Get(path string) ([]byte, int32, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Exists reports whether a znode exists.
func (t *Tree) Exists(path string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.nodes[path]
	return ok
}

// SetData replaces a znode's data; version -1 skips the version check.
func (t *Tree) SetData(path string, data []byte, version int32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if version >= 0 && version != n.version {
		return fmt.Errorf("%w: %s (have %d, want %d)", ErrBadVersion, path, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	t.fireData(path, EventDataChanged)
	return nil
}

// Delete removes a childless znode; version -1 skips the version check.
func (t *Tree) Delete(path string, version int32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	if version >= 0 && version != n.version {
		return fmt.Errorf("%w: %s (have %d, want %d)", ErrBadVersion, path, n.version, version)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	delete(t.nodes, path)
	delete(t.nodes[parentOf(path)].children, baseOf(path))
	t.fireData(path, EventDeleted)
	t.fireChildren(parentOf(path))
	return nil
}

// Children returns the sorted child names of a znode.
func (t *Tree) Children(path string) ([]string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	out := make([]string, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Strings(out)
	return out, nil
}

// FirstChild returns the lexicographically smallest child of path together
// with its data and the child count — the constant-size "queue tail" read
// CZK uses instead of a full Children listing.
func (t *Tree) FirstChild(path string) (name string, data []byte, count int, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[path]
	if !ok {
		return "", nil, 0, fmt.Errorf("%w: %s", ErrNoNode, path)
	}
	for c := range n.children {
		if name == "" || c < name {
			name = c
		}
	}
	if name == "" {
		return "", nil, 0, nil
	}
	child := t.nodes[path+"/"+name]
	return name, append([]byte(nil), child.data...), len(n.children), nil
}

// Snapshot returns a deep copy of the tree's node state (watches excluded)
// plus its approximate encoded size in bytes, for state-transfer
// accounting. Each recipient needs its own snapshot: Restore installs the
// map without copying.
func (t *Tree) Snapshot() (map[string]*node, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	nodes := make(map[string]*node, len(t.nodes))
	size := 0
	for path, n := range t.nodes {
		cp := &node{
			data:     append([]byte(nil), n.data...),
			version:  n.version,
			children: make(map[string]bool, len(n.children)),
			nextSeq:  n.nextSeq,
			owner:    n.owner,
		}
		for c := range n.children {
			cp.children[c] = true
		}
		nodes[path] = cp
		size += len(path) + len(n.data) + len(n.owner) + 16
	}
	return nodes, size
}

// Restore replaces the tree's node state with a snapshot taken from another
// tree. Watch registrations survive but no watch events fire: a recovering
// replica's observers re-read state rather than replaying history.
func (t *Tree) Restore(nodes map[string]*node) {
	t.mu.Lock()
	t.nodes = nodes
	t.mu.Unlock()
}

// NodeCount returns the total number of znodes (including the root).
func (t *Tree) NodeCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}
