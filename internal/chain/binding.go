package chain

import (
	"context"
	"fmt"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// SubmitTx is the binding operation for submitting a transaction and
// tracking it to finality.
type SubmitTx struct {
	ID   string
	Data []byte
}

// OpName implements binding.Operation.
func (SubmitTx) OpName() string { return "submitTx" }

// OpKey implements binding.Keyer: the transaction is the tracked object.
func (t SubmitTx) OpKey() string { return t.ID }

// OpMutates implements binding.Mutator.
func (SubmitTx) OpMutates() bool { return true }

// ResultOf implements binding.OperationFor[TxStatus].
func (SubmitTx) ResultOf(v any) (TxStatus, error) {
	st, ok := v.(TxStatus)
	if !ok {
		return TxStatus{}, fmt.Errorf("chain: submitTx result is %T, want TxStatus", v)
	}
	return st, nil
}

// Submit is the typed facade over a chain binding's client: it submits tx
// and returns a Correctable tracking it through confirmations — one weak
// view per deepening, a strong view at the binding's finality depth.
func Submit(ctx context.Context, c *binding.Client, tx SubmitTx, levels ...core.Level) *core.Correctable[TxStatus] {
	return binding.Invoke[TxStatus](ctx, c, tx, levels...)
}

// Binding adapts a Chain to the Correctables binding API. A SubmitTx
// operation yields one weak view per confirmation — inclusion in a block,
// then each deepening — and closes with a strong view once the transaction
// is Depth blocks deep (irrevocable with high probability). This is the
// "arbitrarily many views" case of §4.5: the interface is unchanged, only
// the number of updates grows.
type Binding struct {
	chain *Chain
	depth int
}

var _ binding.Binding = (*Binding)(nil)

// NewBinding wraps a chain; depth is the confirmation count considered
// final (Bitcoin folklore uses 6).
func NewBinding(chain *Chain, depth int) *Binding {
	if depth < 1 {
		depth = 1
	}
	return &Binding{chain: chain, depth: depth}
}

// Chain returns the underlying chain.
func (b *Binding) Chain() *Chain { return b.chain }

// ConsistencyLevels implements binding.Binding.
func (b *Binding) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelWeak, core.LevelStrong}
}

// Close implements binding.Binding.
func (b *Binding) Close() error { return nil }

// ErrChainStopped fails a tracked transaction when the chain halts before
// the transaction reached the requested depth.
var ErrChainStopped = fmt.Errorf("chain: stopped before the transaction was confirmed")

// cancelSentinel marks a context cancellation in a watcher queue.
var cancelSentinel = Block{Height: -2}

// Scheduler implements binding.SchedulerProvider: Correctables over this
// binding block through the chain's simulation clock.
func (b *Binding) Scheduler() core.Scheduler {
	return binding.SchedulerFor(b.chain.clock)
}

// Versions implements binding.Versioner: views carry the including block's
// height as the per-transaction version token.
//
// The chain binding deliberately implements no DefaultOpTimeout:
// confirmations take arbitrarily long by nature (§4.5), so a stalled final
// view during miner downtime is the honest answer. Clients that must not
// wait out an unbounded outage bound their invocations with
// binding.WithOpTimeout, which fails them with faults.ErrUnreachable
// instead.
func (b *Binding) Versions() bool { return true }

// SubmitOperation implements binding.Binding.
func (b *Binding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	clock := b.chain.clock
	tx, ok := op.(SubmitTx)
	if !ok {
		// Asynchronous error delivery needs no actor: run the callback at
		// the current instant on the dispatcher.
		clock.RunAfter(0, func() {
			cb(binding.Result{Err: fmt.Errorf("%w: chain has no %q", binding.ErrUnsupportedOperation, op.OpName())})
		})
		return
	}
	wantWeak := levels.Contains(core.LevelWeak)
	blocks, cancel := b.chain.Watch()
	b.chain.Submit(Tx{ID: tx.ID, Data: tx.Data})
	// Cancellable contexts are driven by host time, which the simulation
	// clock knows nothing about: bridge them with a sentinel fed from a
	// plain goroutine. Simulation workloads pass context.Background() and
	// never take this path.
	finished := make(chan struct{})
	if ctxDone := ctx.Done(); ctxDone != nil {
		go func() {
			select {
			case <-ctxDone:
				blocks.Put(cancelSentinel)
			case <-finished:
			}
		}()
	}
	clock.Go(func() {
		defer cancel()
		defer close(finished)
		includedAt, maxConf := 0, 0
		for {
			var blk Block
			switch m := blocks.Get().(type) {
			case Reorg:
				// A reorg above the including block orphans the transaction:
				// it is back in the mempool, and the observer sees the one
				// regression the model permits — an unconfirmed weak view at
				// version 0 — before tracking the re-mined inclusion. A
				// reorg below the inclusion leaves it on the canonical
				// chain; the winning branch's replayed blocks then pass
				// through the maxConf guard so confirmations never regress.
				if includedAt > m.ForkHeight {
					includedAt, maxConf = 0, 0
					if wantWeak {
						cb(binding.Result{Value: TxStatus{TxID: tx.ID}, Level: core.LevelWeak, Version: 0})
					}
				}
				continue
			case Block:
				blk = m
			}
			if blk.Height == cancelSentinel.Height {
				cb(binding.Result{Err: ctx.Err()})
				return
			}
			if blk.Height < 0 {
				cb(binding.Result{Err: ErrChainStopped})
				return
			}
			if includedAt == 0 {
				for _, id := range blk.TxIDs {
					if id == tx.ID {
						includedAt = blk.Height
						break
					}
				}
				if includedAt == 0 {
					continue
				}
			}
			conf := blk.Height - includedAt + 1
			if conf <= maxConf {
				continue
			}
			maxConf = conf
			status := TxStatus{TxID: tx.ID, Confirmations: conf, BlockHeight: includedAt}
			if conf >= b.depth {
				cb(binding.Result{Value: status, Level: core.LevelStrong, Version: uint64(includedAt)})
				return
			}
			if wantWeak {
				cb(binding.Result{Value: status, Level: core.LevelWeak, Version: uint64(includedAt)})
			}
		}
	})
}
