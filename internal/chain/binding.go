package chain

import (
	"context"
	"fmt"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// SubmitTx is the binding operation for submitting a transaction and
// tracking it to finality.
type SubmitTx struct {
	ID   string
	Data []byte
}

// OpName implements binding.Operation.
func (SubmitTx) OpName() string { return "submitTx" }

// Binding adapts a Chain to the Correctables binding API. A SubmitTx
// operation yields one weak view per confirmation — inclusion in a block,
// then each deepening — and closes with a strong view once the transaction
// is Depth blocks deep (irrevocable with high probability). This is the
// "arbitrarily many views" case of §4.5: the interface is unchanged, only
// the number of updates grows.
type Binding struct {
	chain *Chain
	depth int
}

var _ binding.Binding = (*Binding)(nil)

// NewBinding wraps a chain; depth is the confirmation count considered
// final (Bitcoin folklore uses 6).
func NewBinding(chain *Chain, depth int) *Binding {
	if depth < 1 {
		depth = 1
	}
	return &Binding{chain: chain, depth: depth}
}

// Chain returns the underlying chain.
func (b *Binding) Chain() *Chain { return b.chain }

// ConsistencyLevels implements binding.Binding.
func (b *Binding) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelWeak, core.LevelStrong}
}

// Close implements binding.Binding.
func (b *Binding) Close() error { return nil }

// SubmitOperation implements binding.Binding.
func (b *Binding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	tx, ok := op.(SubmitTx)
	if !ok {
		go cb(binding.Result{Err: fmt.Errorf("%w: chain has no %q", binding.ErrUnsupportedOperation, op.OpName())})
		return
	}
	wantWeak := levels.Contains(core.LevelWeak)
	blocks, cancel := b.chain.Watch()
	b.chain.Submit(Tx{ID: tx.ID, Data: tx.Data})
	go func() {
		defer cancel()
		includedAt := 0
		for {
			var blk Block
			select {
			case blk = <-blocks:
			case <-ctx.Done():
				cb(binding.Result{Err: ctx.Err()})
				return
			}
			if includedAt == 0 {
				for _, id := range blk.TxIDs {
					if id == tx.ID {
						includedAt = blk.Height
						break
					}
				}
				if includedAt == 0 {
					continue
				}
			}
			conf := blk.Height - includedAt + 1
			status := TxStatus{TxID: tx.ID, Confirmations: conf, BlockHeight: includedAt}
			if conf >= b.depth {
				cb(binding.Result{Value: status, Level: core.LevelStrong})
				return
			}
			if wantWeak {
				cb(binding.Result{Value: status, Level: core.LevelWeak})
			}
		}
	}()
}
