package chain

import (
	"testing"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// TestMiningPausesWhileMinerRegionDown: crashing the miner's region halts
// block production (tracked transactions see a stalled final view); the
// restart resumes it.
func TestMiningPausesWhileMinerRegionDown(t *testing.T) {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	c, err := New(Config{
		Transport:     tr,
		BlockInterval: 100 * time.Millisecond,
		MinerRegion:   netsim.VRG,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Sleep(time.Second)
	if c.Height() == 0 {
		t.Fatal("no blocks mined while healthy")
	}

	inj.Apply(faults.Crash{Region: netsim.VRG})
	h := c.Height()
	clock.Sleep(2 * time.Second)
	if got := c.Height(); got > h {
		t.Errorf("height advanced %d -> %d while the miner region was down", h, got)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second)
	if got := c.Height(); got <= h {
		t.Errorf("height stuck at %d after the miner region restarted", got)
	}
	c.Stop()
	inj.Quiesce()
	clock.Drain()
}
