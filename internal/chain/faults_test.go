package chain

import (
	"context"
	"errors"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// TestMiningPausesWhileMinerRegionDown: crashing the miner's region halts
// block production (tracked transactions see a stalled final view); the
// restart resumes it.
func TestMiningPausesWhileMinerRegionDown(t *testing.T) {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	c, err := New(Config{
		Transport:     tr,
		BlockInterval: 100 * time.Millisecond,
		MinerRegion:   netsim.VRG,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Sleep(time.Second)
	if c.Height() == 0 {
		t.Fatal("no blocks mined while healthy")
	}

	inj.Apply(faults.Crash{Region: netsim.VRG})
	h := c.Height()
	clock.Sleep(2 * time.Second)
	if got := c.Height(); got > h {
		t.Errorf("height advanced %d -> %d while the miner region was down", h, got)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second)
	if got := c.Height(); got <= h {
		t.Errorf("height stuck at %d after the miner region restarted", got)
	}
	c.Stop()
	inj.Quiesce()
	clock.Drain()
}

// TestClientOpTimeoutBoundsStalledConfirmation: the chain binding's final
// view deliberately stalls while the miner region is down (confirmations
// take arbitrarily long by nature); a client constructed with
// binding.WithOpTimeout bounds the wait in model time and fails the
// tracked transaction with faults.ErrUnreachable instead of waiting for
// mining to resume.
func TestClientOpTimeoutBoundsStalledConfirmation(t *testing.T) {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	c, err := New(Config{
		Transport:     tr,
		BlockInterval: 100 * time.Millisecond,
		MinerRegion:   netsim.VRG,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := binding.NewClient(NewBinding(c, 3), binding.WithOpTimeout(2*time.Second))

	inj.Apply(faults.Crash{Region: netsim.VRG})
	sw := clock.StartStopwatch()
	cor := Submit(context.Background(), client, SubmitTx{ID: "tx-1", Data: []byte("x")})
	if _, err := cor.Final(context.Background()); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("stalled confirmation = %v, want ErrUnreachable", err)
	}
	if got := sw.ElapsedModel(); got < 2*time.Second || got > 3*time.Second {
		t.Errorf("timed out after %v of model time, want ~2s", got)
	}

	// Without WithOpTimeout the binding stays deliberately unbounded: a
	// fresh submission still completes once the miner restarts.
	unbounded := binding.NewClient(NewBinding(c, 2))
	done := clock.NewQueue()
	clock.Go(func() {
		v, err := Submit(context.Background(), unbounded, SubmitTx{ID: "tx-2", Data: []byte("y")}).Final(context.Background())
		if err != nil {
			done.Put(err)
			return
		}
		done.Put(v.Value)
	})
	clock.Sleep(time.Second)
	inj.Apply(faults.Restart{Region: netsim.VRG})
	switch v := done.Get().(type) {
	case error:
		t.Fatalf("unbounded submission failed: %v", v)
	case TxStatus:
		if v.Confirmations < 2 {
			t.Errorf("confirmations = %d, want >= depth", v.Confirmations)
		}
	}
	c.Stop()
	inj.Quiesce()
	clock.Drain()
}
