// Package chain implements the blockchain use case of §4.5: a simulated
// proof-of-work ledger in which a Correctable tracks a transaction's
// confirmations as they accumulate. Each new block containing (or burying)
// the transaction yields a preliminary view; once the transaction is K
// blocks deep it is irrevocable with high probability — "strongly
// consistent" — and the Correctable closes.
//
// The paper implemented this binding but omitted it for space; it is the
// canonical demonstration that Correctables support arbitrarily many views
// (more than the two levels of the Cassandra and ZooKeeper bindings)
// without any interface change.
package chain

import (
	"fmt"
	randv2 "math/rand/v2"
	"sync"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// Tx is a submitted transaction.
type Tx struct {
	ID   string
	Data []byte
}

// TxStatus is the view value delivered for a pending transaction.
type TxStatus struct {
	TxID string
	// Confirmations is the transaction's depth: 0 while in the mempool,
	// 1 when first included in a block, and so on.
	Confirmations int
	// BlockHeight is the height of the including block (0 while pending).
	BlockHeight int
}

// EqualValue implements core-style equality: two statuses refer to the same
// outcome if the transaction landed in the same block. Confirmation counts
// are monotone bookkeeping, not divergence.
func (s TxStatus) EqualValue(other interface{}) bool {
	o, ok := other.(TxStatus)
	return ok && s.TxID == o.TxID && s.BlockHeight == o.BlockHeight
}

// Block is one ledger block.
type Block struct {
	Height int
	TxIDs  []string
}

// Config describes a simulated chain.
type Config struct {
	// Transport provides the clock (required).
	Transport *netsim.Transport
	// BlockInterval is the mean time between blocks (default 10s model
	// time; Bitcoin's is 10 minutes — scaled down so experiments are
	// feasible, the shape is identical).
	BlockInterval time.Duration
	// Jitter is the +/- fraction of randomness on block intervals
	// (default 0.5; block arrival is memoryless in reality).
	Jitter float64
	// MinerRegion locates the (single, simulated) miner: when a fault
	// schedule crashes the region, block production pauses until its
	// restart, so tracked transactions see a stalled final view. This is
	// deliberately not bounded by an OpTimeout — confirmations take
	// arbitrarily long by nature (§4.5) — so consumers that must not wait
	// out an unbounded outage should pass a cancellable context to
	// SubmitOperation. Empty leaves mining unaffected by faults.
	MinerRegion netsim.Region
	// Seed fixes the block-timing RNG.
	Seed int64
}

// Chain is the simulated ledger. Blocks are mined by a self-rescheduling
// callback timer (no background goroutine) until Stop is called. Stop the
// chain before draining a VirtualClock, or the armed mining timer keeps
// the simulation alive forever.
type Chain struct {
	cfg   Config
	clock netsim.Clock
	inj   *faults.Injector // nil without fault injection

	mu       sync.Mutex
	rng      *randv2.Rand
	mempool  []Tx
	blocks   []Block
	watchers []netsim.Queue
	stopped  bool
}

// New starts a chain per cfg.
func New(cfg Config) (*Chain, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("chain: Config.Transport is required")
	}
	if cfg.BlockInterval == 0 {
		cfg.BlockInterval = 10 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	c := &Chain{
		cfg:   cfg,
		clock: cfg.Transport.Clock(),
		rng:   randv2.New(randv2.NewPCG(uint64(cfg.Seed+11), 0xc4a1)),
	}
	if cfg.MinerRegion != "" {
		if inj, ok := cfg.Transport.Interceptor().(*faults.Injector); ok {
			c.inj = inj
		}
	}
	c.scheduleNext()
	return c, nil
}

// stopSentinel is delivered to every watcher when the chain stops.
var stopSentinel = Block{Height: -1}

// Stop halts block production (effective at the next mining deadline) and
// delivers a stop sentinel to every watcher.
func (c *Chain) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	for _, w := range c.watchers {
		w.Put(stopSentinel)
	}
}

// Height returns the current chain height.
func (c *Chain) Height() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

// Submit places a transaction in the mempool.
func (c *Chain) Submit(tx Tx) {
	c.mu.Lock()
	c.mempool = append(c.mempool, tx)
	c.mu.Unlock()
}

// Watch returns a queue receiving every newly mined block and a cancel
// function. A Block with Height < 0 signals that the chain stopped. The
// queue is unbounded, so slow consumers never stall mining.
func (c *Chain) Watch() (netsim.Queue, func()) {
	q := c.clock.NewQueue()
	c.mu.Lock()
	if c.stopped {
		q.Put(stopSentinel)
	}
	c.watchers = append(c.watchers, q)
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, w := range c.watchers {
			if w == q {
				c.watchers = append(c.watchers[:i], c.watchers[i+1:]...)
				return
			}
		}
	}
	return q, cancel
}

// ConfirmationsOf returns the depth of the block at the given height.
func (c *Chain) ConfirmationsOf(height int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if height <= 0 || height > len(c.blocks) {
		return 0
	}
	return len(c.blocks) - height + 1
}

// scheduleNext arms the next mining deadline as a callback timer: block
// production costs no goroutine, however long the chain runs.
func (c *Chain) scheduleNext() {
	c.clock.RunAfter(c.nextInterval(), c.mineOnce)
}

// mineOnce produces one block at its deadline, sweeping the mempool into
// it, and re-arms the timer — unless the chain stopped, in which case the
// fired timer simply expires without rescheduling. It runs as a clock
// callback and never blocks (watcher queues are unbounded; Put hands off
// without waiting).
func (c *Chain) mineOnce() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	// A crashed miner region produces no blocks: the tick re-arms without
	// mining until the region restarts (the mempool keeps accumulating,
	// like transactions waiting out an outage).
	if c.inj != nil && c.inj.Down(c.cfg.MinerRegion) {
		c.mu.Unlock()
		c.scheduleNext()
		return
	}
	blk := Block{Height: len(c.blocks) + 1}
	for _, tx := range c.mempool {
		blk.TxIDs = append(blk.TxIDs, tx.ID)
	}
	c.mempool = nil
	c.blocks = append(c.blocks, blk)
	watchers := append([]netsim.Queue(nil), c.watchers...)
	c.mu.Unlock()
	for _, w := range watchers {
		w.Put(blk)
	}
	c.scheduleNext()
}

func (c *Chain) nextInterval() time.Duration {
	c.mu.Lock()
	u := c.rng.Float64()*2 - 1
	c.mu.Unlock()
	return time.Duration(float64(c.cfg.BlockInterval) * (1 + c.cfg.Jitter*u))
}
