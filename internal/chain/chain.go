// Package chain implements the blockchain use case of §4.5: a simulated
// proof-of-work ledger in which a Correctable tracks a transaction's
// confirmations as they accumulate. Each new block containing (or burying)
// the transaction yields a preliminary view; once the transaction is K
// blocks deep it is irrevocable with high probability — "strongly
// consistent" — and the Correctable closes.
//
// The paper implemented this binding but omitted it for space; it is the
// canonical demonstration that Correctables support arbitrarily many views
// (more than the two levels of the Cassandra and ZooKeeper bindings)
// without any interface change.
package chain

import (
	"fmt"
	randv2 "math/rand/v2"
	"strconv"
	"sync"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Tx is a submitted transaction.
type Tx struct {
	ID   string
	Data []byte
}

// TxStatus is the view value delivered for a pending transaction.
type TxStatus struct {
	TxID string
	// Confirmations is the transaction's depth: 0 while in the mempool,
	// 1 when first included in a block, and so on.
	Confirmations int
	// BlockHeight is the height of the including block (0 while pending).
	BlockHeight int
}

// EqualValue implements core-style equality: two statuses refer to the same
// outcome if the transaction landed in the same block. Confirmation counts
// are monotone bookkeeping, not divergence.
func (s TxStatus) EqualValue(other interface{}) bool {
	o, ok := other.(TxStatus)
	return ok && s.TxID == o.TxID && s.BlockHeight == o.BlockHeight
}

// Block is one ledger block.
type Block struct {
	Height int
	TxIDs  []string
	// txs retains the swept transaction bodies so a reorg can return them
	// to the mempool.
	txs []Tx
}

// Config describes a simulated chain.
type Config struct {
	// Transport provides the clock (required).
	Transport *netsim.Transport
	// BlockInterval is the mean time between blocks (default 10s model
	// time; Bitcoin's is 10 minutes — scaled down so experiments are
	// feasible, the shape is identical).
	BlockInterval time.Duration
	// Jitter is the +/- fraction of randomness on block intervals
	// (default 0.5; block arrival is memoryless in reality).
	Jitter float64
	// MinerRegion locates the (single, simulated) miner: when a fault
	// schedule crashes the region, block production pauses until its
	// restart, so tracked transactions see a stalled final view. This is
	// deliberately not bounded by an OpTimeout — confirmations take
	// arbitrarily long by nature (§4.5) — so consumers that must not wait
	// out an unbounded outage should pass a cancellable context to
	// SubmitOperation. Empty leaves mining unaffected by faults.
	MinerRegion netsim.Region
	// MinerRegions locates up to two competing miners; it overrides
	// MinerRegion when set. The first region is the primary miner, which
	// produces the canonical chain exactly as a sole MinerRegion would. A
	// second region is a competing miner: while a partition severs the two
	// (both alive), the secondary extends its own branch from the fork
	// point, and when the partition heals the longest branch wins — a tie
	// keeps the primary's. Transactions gossip on the primary's side (the
	// client-facing partition), so the secondary's branch is empty: a reorg
	// orphans the primary's post-fork blocks, returns their transactions to
	// the mempool, and replays the winning blocks to watchers after a Reorg
	// sentinel.
	MinerRegions []netsim.Region
	// Seed fixes the block-timing RNG.
	Seed int64
}

// Reorg is delivered to watchers (before the winning branch's blocks) when
// a healed fork resolves against the branch the watchers had been shown:
// every block above ForkHeight is orphaned and its transactions re-enter
// the mempool. Consumers tracking a transaction included above ForkHeight
// must treat it as unconfirmed again — the one place the chain model
// permits a confirmation (and version-token) regression.
type Reorg struct {
	// ForkHeight is the height of the last common block: blocks above it
	// were replaced.
	ForkHeight int
	// Orphaned lists the transaction IDs returned to the mempool, in
	// orphaned-block order.
	Orphaned []string
}

// Chain is the simulated ledger. Blocks are mined by a self-rescheduling
// callback timer (no background goroutine) until Stop is called. Stop the
// chain before draining a VirtualClock, or the armed mining timer keeps
// the simulation alive forever.
type Chain struct {
	cfg    Config
	clock  netsim.Clock
	inj    *faults.Injector // nil without fault injection
	miners []netsim.Region  // normalized MinerRegions; miners[0] is primary

	mu       sync.Mutex
	rng      *randv2.Rand
	mempool  []Tx
	blocks   []Block
	watchers []netsim.Queue
	stopped  bool

	// Per-miner crash state, maintained by the injector's OnDown/OnUp
	// notifications (not polled).
	downM map[netsim.Region]bool

	// Fork state: while forked, the secondary miner extends branch from
	// forkHeight on its own timer (branchRNG keeps its intervals off the
	// primary's stream). forkGen invalidates stale branch timers across
	// fork begin/resolve cycles.
	branchRNG  *randv2.Rand
	forked     bool
	forkGen    int
	forkHeight int
	branch     []Block
	reorgs     []Reorg

	// trc, when set, records block production, fork windows, and reorgs
	// as instants on one "chain" track. Nil = tracing off.
	trc *trace.Tracer
	trk trace.Track
}

// New starts a chain per cfg.
func New(cfg Config) (*Chain, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("chain: Config.Transport is required")
	}
	if cfg.BlockInterval == 0 {
		cfg.BlockInterval = 10 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	miners := cfg.MinerRegions
	if len(miners) == 0 && cfg.MinerRegion != "" {
		miners = []netsim.Region{cfg.MinerRegion}
	}
	if len(miners) > 2 {
		return nil, fmt.Errorf("chain: at most two miner regions, got %d", len(miners))
	}
	if len(miners) == 2 && miners[0] == miners[1] {
		return nil, fmt.Errorf("chain: duplicate miner region %s", miners[0])
	}
	c := &Chain{
		cfg:       cfg,
		clock:     cfg.Transport.Clock(),
		miners:    miners,
		rng:       randv2.New(randv2.NewPCG(uint64(cfg.Seed+11), 0xc4a1)),
		branchRNG: randv2.New(randv2.NewPCG(uint64(cfg.Seed+11), 0xc4a2)),
		downM:     make(map[netsim.Region]bool),
	}
	if len(miners) > 0 {
		if inj, ok := cfg.Transport.Interceptor().(*faults.Injector); ok {
			c.inj = inj
			for _, m := range miners {
				m := m
				c.downM[m] = inj.Down(m)
				inj.OnDown(m, func() { c.setMinerDown(m, true) })
				inj.OnUp(m, func() { c.setMinerDown(m, false) })
			}
			if len(miners) == 2 {
				inj.Subscribe(func(faults.Transition) { c.onTransition() })
			}
		}
	}
	c.scheduleNext()
	return c, nil
}

// SetTrace threads a span tracer through the chain: every mined block,
// fork open, and reorg appears as an instant on the "chain" track.
// Install at wiring time.
func (c *Chain) SetTrace(t *trace.Tracer) {
	c.trc = t
	c.trk = t.Track("chain")
}

func (c *Chain) setMinerDown(m netsim.Region, down bool) {
	c.mu.Lock()
	c.downM[m] = down
	c.mu.Unlock()
}

// stopSentinel is delivered to every watcher when the chain stops.
var stopSentinel = Block{Height: -1}

// Stop halts block production (effective at the next mining deadline) and
// delivers a stop sentinel to every watcher.
func (c *Chain) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	for _, w := range c.watchers {
		w.Put(stopSentinel)
	}
}

// Height returns the current chain height.
func (c *Chain) Height() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

// Submit places a transaction in the mempool.
func (c *Chain) Submit(tx Tx) {
	c.mu.Lock()
	c.mempool = append(c.mempool, tx)
	c.mu.Unlock()
}

// Watch returns a queue receiving every newly mined block and a cancel
// function. A Block with Height < 0 signals that the chain stopped. The
// queue is unbounded, so slow consumers never stall mining.
func (c *Chain) Watch() (netsim.Queue, func()) {
	q := c.clock.NewQueue()
	c.mu.Lock()
	if c.stopped {
		q.Put(stopSentinel)
	}
	c.watchers = append(c.watchers, q)
	c.mu.Unlock()
	cancel := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for i, w := range c.watchers {
			if w == q {
				c.watchers = append(c.watchers[:i], c.watchers[i+1:]...)
				return
			}
		}
	}
	return q, cancel
}

// ConfirmationsOf returns the depth of the block at the given height.
func (c *Chain) ConfirmationsOf(height int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if height <= 0 || height > len(c.blocks) {
		return 0
	}
	return len(c.blocks) - height + 1
}

// scheduleNext arms the next mining deadline as a callback timer: block
// production costs no goroutine, however long the chain runs.
func (c *Chain) scheduleNext() {
	c.clock.RunAfter(c.nextInterval(), c.mineOnce)
}

// mineOnce produces one block at its deadline, sweeping the mempool into
// it, and re-arms the timer — unless the chain stopped, in which case the
// fired timer simply expires without rescheduling. It runs as a clock
// callback and never blocks (watcher queues are unbounded; Put hands off
// without waiting).
func (c *Chain) mineOnce() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	// A crashed miner region produces no blocks: the tick re-arms without
	// mining until the region restarts (the mempool keeps accumulating,
	// like transactions waiting out an outage).
	if len(c.miners) > 0 && c.downM[c.miners[0]] {
		c.mu.Unlock()
		c.scheduleNext()
		return
	}
	blk := Block{Height: len(c.blocks) + 1, txs: c.mempool}
	for _, tx := range c.mempool {
		blk.TxIDs = append(blk.TxIDs, tx.ID)
	}
	c.mempool = nil
	c.blocks = append(c.blocks, blk)
	watchers := append([]netsim.Queue(nil), c.watchers...)
	c.mu.Unlock()
	if c.trc != nil {
		c.trc.Instant(c.trk, "block", strconv.Itoa(blk.Height), c.clock.Now())
	}
	for _, w := range watchers {
		w.Put(blk)
	}
	c.scheduleNext()
}

func (c *Chain) nextInterval() time.Duration {
	c.mu.Lock()
	u := c.rng.Float64()*2 - 1
	c.mu.Unlock()
	return time.Duration(float64(c.cfg.BlockInterval) * (1 + c.cfg.Jitter*u))
}

// Reorgs returns every fork resolution that replaced canonical blocks, in
// order.
func (c *Chain) Reorgs() []Reorg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Reorg(nil), c.reorgs...)
}

// Forked reports whether a fork is currently open (the two miners are
// severed and both extending their own branch).
func (c *Chain) Forked() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.forked
}

// onTransition runs on every fault transition (after OnDown/OnUp updated
// the per-miner crash state): a partition that severs two live miners opens
// a fork; a transition that reconnects them resolves it.
func (c *Chain) onTransition() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	m0, m1 := c.miners[0], c.miners[1]
	reach := c.inj.Reachable(m0, m1)
	if !c.forked && !reach && !c.downM[m0] && !c.downM[m1] {
		// Two live miners can no longer hear each other: the secondary
		// starts extending its own branch from the current tip. (A severed
		// but crashed miner mines nothing and opens no fork; the fork opens
		// at the transition that revives it inside the partition.)
		c.forked = true
		c.forkGen++
		gen := c.forkGen
		c.forkHeight = len(c.blocks)
		forkHeight := c.forkHeight
		c.branch = nil
		c.mu.Unlock()
		if c.trc != nil {
			c.trc.Instant(c.trk, "fork", strconv.Itoa(forkHeight), c.clock.Now())
		}
		c.scheduleBranch(gen)
		return
	}
	if c.forked && reach {
		c.resolveForkLocked()
		return // resolveForkLocked unlocks
	}
	c.mu.Unlock()
}

// scheduleBranch arms the secondary miner's next deadline; its interval
// stream is independent of the primary's so fork mining never perturbs the
// canonical block times.
func (c *Chain) scheduleBranch(gen int) {
	c.mu.Lock()
	u := c.branchRNG.Float64()*2 - 1
	c.mu.Unlock()
	d := time.Duration(float64(c.cfg.BlockInterval) * (1 + c.cfg.Jitter*u))
	c.clock.RunAfter(d, func() { c.branchMineOnce(gen) })
}

// branchMineOnce extends the secondary branch (empty blocks: transactions
// gossip on the primary's side) and re-arms while the fork is open. A stale
// generation — the fork resolved, or a newer fork replaced it — expires
// without re-arming.
func (c *Chain) branchMineOnce(gen int) {
	c.mu.Lock()
	if c.stopped || !c.forked || gen != c.forkGen {
		c.mu.Unlock()
		return
	}
	if !c.downM[c.miners[1]] {
		c.branch = append(c.branch, Block{Height: c.forkHeight + len(c.branch) + 1})
	}
	c.mu.Unlock()
	c.scheduleBranch(gen)
}

// resolveForkLocked settles an open fork once the miners reconnect: the
// longer branch wins, ties keep the primary's. When the secondary wins,
// the primary's post-fork blocks are orphaned, their transactions return
// to the mempool (ahead of newer submissions), and watchers receive a
// Reorg sentinel followed by the winning blocks. Called with c.mu held;
// unlocks before delivering to watchers.
func (c *Chain) resolveForkLocked() {
	c.forked = false
	c.forkGen++
	branch := c.branch
	c.branch = nil
	if len(branch) <= len(c.blocks)-c.forkHeight {
		// The canonical chain is at least as long: the secondary's branch
		// is discarded, and nothing was visible to watchers anyway.
		c.mu.Unlock()
		return
	}
	orphaned := c.blocks[c.forkHeight:]
	c.blocks = append(c.blocks[:c.forkHeight:c.forkHeight], branch...)
	if c.trc != nil {
		c.trc.Instant(c.trk, "reorg", strconv.Itoa(c.forkHeight), c.clock.Now())
	}
	re := Reorg{ForkHeight: c.forkHeight}
	var pool []Tx
	for _, blk := range orphaned {
		re.Orphaned = append(re.Orphaned, blk.TxIDs...)
		pool = append(pool, blk.txs...)
	}
	c.mempool = append(pool, c.mempool...)
	c.reorgs = append(c.reorgs, re)
	watchers := append([]netsim.Queue(nil), c.watchers...)
	c.mu.Unlock()
	for _, w := range watchers {
		w.Put(re)
		for _, blk := range branch {
			w.Put(blk)
		}
	}
}
