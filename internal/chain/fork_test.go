package chain

import (
	"context"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// newForkedChain builds a faulted two-miner chain: FRK is the primary
// (canonical) miner, VRG the competing secondary that forks under a
// partition.
func newForkedChain(t *testing.T) (*Chain, *faults.Injector, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	c, err := New(Config{
		Transport:     tr,
		BlockInterval: 100 * time.Millisecond,
		MinerRegions:  []netsim.Region{netsim.FRK, netsim.VRG},
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, inj, clock
}

// TestReorgOrphansAndRemines is the tentpole scenario: a partition severs
// the two miners and the secondary silently extends its own branch; the
// primary miner then crashes, so on heal the secondary's branch is longer
// and wins. The transaction mined on the primary's side is orphaned — its
// observer sees the one permitted height-token regression (an unconfirmed
// weak view at version 0) — re-enters the mempool, and is re-mined into
// the winning chain at a new height, where it confirms to finality.
func TestReorgOrphansAndRemines(t *testing.T) {
	c, inj, clock := newForkedChain(t)
	client := binding.NewClient(NewBinding(c, 10))

	clock.Sleep(300 * time.Millisecond) // a healthy common prefix
	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK, netsim.IRL}, {netsim.VRG},
	}})
	if !c.Forked() {
		t.Fatal("partition between live miners did not open a fork")
	}

	cor := Submit(context.Background(), client, SubmitTx{ID: "tx-1", Data: []byte("x")})
	clock.Sleep(400 * time.Millisecond) // primary mines the tx into its branch
	views := cor.Views()
	if len(views) == 0 {
		t.Fatal("no inclusion view before the primary crash")
	}
	firstHeight := views[0].Value.BlockHeight

	inj.Apply(faults.Crash{Region: netsim.FRK})
	clock.Sleep(2 * time.Second) // the secondary branch outgrows the frozen primary
	inj.Apply(faults.Restart{Region: netsim.FRK})
	inj.Apply(faults.Heal{})

	reorgs := c.Reorgs()
	if len(reorgs) != 1 {
		t.Fatalf("reorgs = %+v, want exactly one", reorgs)
	}
	orphaned := false
	for _, id := range reorgs[0].Orphaned {
		if id == "tx-1" {
			orphaned = true
		}
	}
	if !orphaned {
		t.Fatalf("reorg %+v did not orphan tx-1", reorgs[0])
	}
	if c.Forked() {
		t.Error("fork still open after the heal resolved it")
	}

	// The re-pooled transaction is re-mined and reaches finality on the
	// winning chain.
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatalf("final after reorg: %v", err)
	}
	if v.Level != core.LevelStrong || v.Value.Confirmations < 10 {
		t.Fatalf("final view %+v, want strong at depth", v)
	}
	if v.Value.BlockHeight == firstHeight {
		t.Errorf("re-mined at the orphaned height %d; want a new inclusion", firstHeight)
	}

	// The observer saw the regression exactly once: the height token runs
	// firstHeight..., then 0 (unconfirmed), then the new height.
	views = cor.Views()
	regressions := 0
	for i := 1; i < len(views); i++ {
		if views[i].Value.BlockHeight < views[i-1].Value.BlockHeight {
			regressions++
			if views[i].Value.BlockHeight != 0 || views[i].Value.Confirmations != 0 {
				t.Errorf("regression view %+v, want unconfirmed at height 0", views[i])
			}
		}
	}
	if regressions != 1 {
		t.Errorf("%d height regressions in %+v, want exactly the reorg's", regressions, views)
	}

	c.Stop()
	inj.Quiesce()
	clock.Drain()
}

// TestShortBranchLosesWithoutReorg: the fork where the primary keeps the
// longer chain (the secondary crashes mid-fork) resolves with no reorg —
// watchers never learn the fork existed, and a tracked transaction keeps
// its original inclusion.
func TestShortBranchLosesWithoutReorg(t *testing.T) {
	c, inj, clock := newForkedChain(t)
	client := binding.NewClient(NewBinding(c, 3))

	cor := Submit(context.Background(), client, SubmitTx{ID: "tx-1", Data: []byte("x")})
	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK, netsim.IRL}, {netsim.VRG},
	}})
	inj.Apply(faults.Crash{Region: netsim.VRG}) // branch frozen near zero
	clock.Sleep(2 * time.Second)                // primary extends well past it

	// The secondary is down, so the heal alone cannot reconnect the miners;
	// the fork resolves at the restart transition.
	inj.Apply(faults.Heal{})
	if !c.Forked() {
		t.Fatal("fork resolved while the secondary miner was still down")
	}
	inj.Apply(faults.Restart{Region: netsim.VRG})
	if c.Forked() {
		t.Fatal("fork still open after the miners reconnected")
	}
	if got := c.Reorgs(); len(got) != 0 {
		t.Fatalf("losing short branch caused reorgs: %+v", got)
	}

	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, view := range cor.Views() {
		if view.Value.BlockHeight != v.Value.BlockHeight {
			t.Errorf("inclusion moved (%d vs %d) without a reorg", view.Value.BlockHeight, v.Value.BlockHeight)
		}
	}
	c.Stop()
	inj.Quiesce()
	clock.Drain()
}

// TestCrashedSecondaryOpensNoFork: a partition that severs an already
// crashed miner opens no fork (it mines nothing to fork with); the fork
// opens only at the transition that revives it inside the partition.
func TestCrashedSecondaryOpensNoFork(t *testing.T) {
	c, inj, clock := newForkedChain(t)

	inj.Apply(faults.Crash{Region: netsim.VRG})
	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK, netsim.IRL}, {netsim.VRG},
	}})
	clock.Sleep(time.Second)
	if c.Forked() {
		t.Fatal("fork opened against a crashed miner")
	}

	inj.Apply(faults.Restart{Region: netsim.VRG}) // revived inside the partition
	if !c.Forked() {
		t.Fatal("revived severed miner did not open a fork")
	}
	h := c.Height()
	inj.Apply(faults.Heal{}) // immediately: the branch cannot have won
	if c.Forked() {
		t.Fatal("fork survived the heal")
	}
	if got := c.Reorgs(); len(got) != 0 {
		t.Fatalf("immediate heal caused reorgs: %+v", got)
	}
	clock.Sleep(500 * time.Millisecond)
	if got := c.Height(); got <= h {
		t.Errorf("height stuck at %d after the fork resolved", got)
	}
	c.Stop()
	inj.Quiesce()
	clock.Drain()
}
