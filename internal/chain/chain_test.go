package chain

import (
	"context"
	"fmt"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

func newTestChain(t *testing.T, interval time.Duration) *Chain {
	t.Helper()
	clock := netsim.NewClock(1.0)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), nil, 1)
	c, err := New(Config{Transport: tr, BlockInterval: interval, Jitter: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestChainValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing transport accepted")
	}
}

func TestChainMinesBlocks(t *testing.T) {
	c := newTestChain(t, 10*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Height() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("chain stuck at height %d", c.Height())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestChainStopHaltsMining(t *testing.T) {
	c := newTestChain(t, 5*time.Millisecond)
	for c.Height() < 1 {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	h := c.Height()
	time.Sleep(50 * time.Millisecond)
	if got := c.Height(); got > h+1 {
		t.Errorf("height advanced from %d to %d after Stop", h, got)
	}
	c.Stop() // idempotent
}

func TestConfirmationsOf(t *testing.T) {
	c := newTestChain(t, 5*time.Millisecond)
	for c.Height() < 4 {
		time.Sleep(time.Millisecond)
	}
	h := c.Height()
	if got := c.ConfirmationsOf(1); got < h-1 {
		t.Errorf("ConfirmationsOf(1) = %d at height %d", got, h)
	}
	if c.ConfirmationsOf(0) != 0 || c.ConfirmationsOf(h+100) != 0 {
		t.Error("out-of-range heights should report 0 confirmations")
	}
}

func TestBindingTracksConfirmations(t *testing.T) {
	c := newTestChain(t, 8*time.Millisecond)
	const depth = 4
	client := binding.NewClient(NewBinding(c, depth))
	cor := Submit(context.Background(), client, SubmitTx{ID: "tx-1", Data: []byte("pay")})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := cor.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	status := v.Value
	if status.Confirmations < depth {
		t.Errorf("final confirmations = %d, want >= %d", status.Confirmations, depth)
	}
	if v.Level != core.LevelStrong {
		t.Errorf("final level = %v", v.Level)
	}
	views := cor.Views()
	// depth views total: conf 1..depth-1 weak, then strong.
	if len(views) != depth {
		t.Fatalf("got %d views, want %d: %+v", len(views), depth, views)
	}
	for i, view := range views {
		st := view.Value
		if st.Confirmations != i+1 {
			t.Errorf("view %d confirmations = %d", i, st.Confirmations)
		}
		if st.BlockHeight != status.BlockHeight {
			t.Errorf("view %d block height = %d, want %d (no reorgs in this sim)", i, st.BlockHeight, status.BlockHeight)
		}
	}
}

func TestBindingStrongOnlySingleView(t *testing.T) {
	c := newTestChain(t, 5*time.Millisecond)
	client := binding.NewClient(NewBinding(c, 3))
	cor := binding.InvokeStrong[TxStatus](context.Background(), client, SubmitTx{ID: "tx-2"})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cor.Final(ctx); err != nil {
		t.Fatal(err)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("strong-only views = %d, want 1", len(cor.Views()))
	}
}

func TestBindingContextCancellation(t *testing.T) {
	c := newTestChain(t, time.Hour) // no blocks will be mined
	client := binding.NewClient(NewBinding(c, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cor := Submit(ctx, client, SubmitTx{ID: "tx-3"})
	if _, err := cor.Final(context.Background()); err == nil {
		t.Error("expected cancellation error")
	}
}

func TestBindingUnsupportedOp(t *testing.T) {
	c := newTestChain(t, time.Hour)
	client := binding.NewClient(NewBinding(c, 2))
	if _, err := binding.Invoke[[]byte](context.Background(), client, binding.Get{Key: "x"}).Final(context.Background()); err == nil {
		t.Error("Get on chain should fail")
	}
}

func TestTxStatusEquality(t *testing.T) {
	a := TxStatus{TxID: "t", Confirmations: 1, BlockHeight: 5}
	b := TxStatus{TxID: "t", Confirmations: 3, BlockHeight: 5}
	if !a.EqualValue(b) {
		t.Error("same block, different depth should be equal outcome")
	}
	if a.EqualValue(TxStatus{TxID: "t", BlockHeight: 6}) {
		t.Error("different block should differ")
	}
	if a.EqualValue(42) {
		t.Error("cross-type equality")
	}
}

func TestManyTxsAllConfirm(t *testing.T) {
	c := newTestChain(t, 5*time.Millisecond)
	client := binding.NewClient(NewBinding(c, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var cors []*core.Correctable[TxStatus]
	for i := 0; i < 10; i++ {
		cors = append(cors, Submit(ctx, client, SubmitTx{ID: fmt.Sprintf("tx-%d", i)}))
	}
	for i, cor := range cors {
		if _, err := cor.Final(ctx); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
}
