// Package faults is the deterministic fault-injection subsystem: typed
// fault schedules (partitions, crashes, latency spikes, lossy links)
// layered on the virtual clock, FoundationDB-style. A Schedule is built
// explicitly with the scenario DSL (NewSchedule().At(...)), taken from the
// named catalog (ScenarioByName), or generated from a seed (Random); an
// Injector attached to a netsim.Transport then replays it, firing every
// fault transition as a clock callback (RunAt) so transitions interleave
// deterministically with traffic. Same seed + same schedule ⇒ the same
// event sequence, byte for byte — a bug found under a fault schedule is
// replayed, not chased.
//
// Semantics at the transport (see netsim.Transport):
//
//   - severed links (partition) and down endpoints (crash) stall
//     synchronous Travel until the fault clears, and silently drop
//     fire-and-forget Send/SendAfter traffic — lost in-flight state;
//   - LatencySpike multiplies the one-way delay of matching links;
//   - Drop loses each matching message with probability Prob; synchronous
//     sends retransmit after an RTO, asynchronous sends are lost.
//
// Stores built on a faulted transport (they check Transport.Interceptor at
// construction) wire crash-recovery hooks: a restarted ZooKeeper server or
// causal backup is resynced from the leader/primary by state transfer, a
// restarted Cassandra replica rejoins stale and heals through read repair,
// and chain mining pauses while the miner's region is down. Client
// invocations that a fault makes impossible fail with ErrUnreachable after
// the store's OpTimeout of model time instead of hanging.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"correctables/internal/netsim"
)

// Event is one typed fault transition. Implementations are the exported
// structs of this package (Partition, Heal, Crash, Restart, LatencySpike,
// Drop); the mutate method seals the interface.
type Event interface {
	// String renders the event for fault logs.
	String() string
	// mutate applies the event to injector state; called with i.mu held.
	mutate(i *Injector)
}

// Partition splits the regions into isolated groups: messages between
// regions of different groups are severed (stalled synchronously, dropped
// asynchronously) until a Heal. Regions not named in any group implicitly
// ride with group 0.
//
// Partitions compose: a Partition firing while another is in force does not
// replace it (the old silent-replacement semantics lost the first fault).
// The injector keeps every active partition and enforces their common
// refinement — two regions communicate only if every active partition
// places them in the same group.
//
// ID pairs a Partition with the Heal that ends it. A zero ID keeps the
// legacy single-track convention: an untagged Heal ends the *oldest*
// still-active partition (schedules pair every Partition with its own Heal
// in time order). Composed schedules (Compose) rewrite every pair to unique
// nonzero IDs so concurrent tracks cannot heal each other's partitions and
// overlapping windows keep independent lifetimes.
type Partition struct {
	Groups [][]netsim.Region
	ID     int
}

// String implements Event.
func (p Partition) String() string {
	parts := make([]string, len(p.Groups))
	for i, g := range p.Groups {
		names := make([]string, len(g))
		for j, r := range g {
			names[j] = string(r)
		}
		parts[i] = "{" + strings.Join(names, " ") + "}"
	}
	return "partition " + strings.Join(parts, " | ")
}

func (p Partition) mutate(i *Injector) {
	grouping := make(map[netsim.Region]int, 8)
	for gi, g := range p.Groups {
		for _, r := range g {
			grouping[r] = gi
		}
	}
	i.parts = append(i.parts, activePart{id: p.ID, grouping: grouping})
	i.rebuildGroupsLocked()
}

// Heal ends an active partition: the one carrying the same nonzero ID, or —
// untagged, ID zero — the oldest still active (all its links are whole
// again unless a later, still-active partition severs them; crashed regions
// stay down until their Restart). With a single partition in force this is
// the familiar "heal clears the partition". A Heal whose ID matches no
// active partition is a no-op.
type Heal struct {
	ID int
}

// String implements Event.
func (Heal) String() string { return "heal" }

func (h Heal) mutate(i *Injector) {
	switch {
	case h.ID != 0:
		for j, p := range i.parts {
			if p.id == h.ID {
				i.parts = append(i.parts[:j:j], i.parts[j+1:]...)
				break
			}
		}
	case len(i.parts) > 0:
		i.parts = i.parts[1:]
	}
	i.rebuildGroupsLocked()
}

// Crash takes the region down: every message to or from it is severed, and
// fire-and-forget traffic already addressed to it is lost. Durable state
// survives; in-flight state does not.
type Crash struct {
	Region netsim.Region
}

// String implements Event.
func (c Crash) String() string { return "crash " + string(c.Region) }

func (c Crash) mutate(i *Injector) { i.down[c.Region]++ }

// Restart brings a crashed region back up. Stores subscribed to the
// injector use the transition to resync the rejoining replica.
type Restart struct {
	Region netsim.Region
}

// String implements Event.
func (r Restart) String() string { return "restart " + string(r.Region) }

func (r Restart) mutate(i *Injector) {
	if i.down[r.Region] > 0 {
		i.down[r.Region]--
	}
}

// LatencySpike multiplies the one-way delay of matching links by Factor for
// Duration (0 = until Quiesce). An empty To matches every link touching
// From; both empty matches every link. Overlapping spikes compound.
type LatencySpike struct {
	From, To netsim.Region
	Factor   float64
	Duration time.Duration
}

// String implements Event.
func (s LatencySpike) String() string {
	return fmt.Sprintf("latency-spike %s x%.1f for %v", linkName(s.From, s.To), s.Factor, s.Duration)
}

func (s LatencySpike) mutate(i *Injector) {
	i.addRuleLocked(&i.spikes, linkRule{from: s.From, to: s.To, factor: s.Factor}, s.Duration, s.String())
}

// Drop loses each message on matching links with probability Prob for
// Duration (0 = until Quiesce). Wildcards as in LatencySpike.
type Drop struct {
	From, To netsim.Region
	Prob     float64
	Duration time.Duration
}

// String implements Event.
func (d Drop) String() string {
	return fmt.Sprintf("drop %s p=%.2f for %v", linkName(d.From, d.To), d.Prob, d.Duration)
}

func (d Drop) mutate(i *Injector) {
	i.addRuleLocked(&i.drops, linkRule{from: d.From, to: d.To, prob: d.Prob}, d.Duration, d.String())
}

// quiesce is the internal transition Quiesce logs.
type quiesce struct{}

func (quiesce) String() string { return "quiesce: all faults cleared" }

func (quiesce) mutate(i *Injector) {
	i.parts = nil
	i.group = nil
	i.down = make(map[netsim.Region]int)
	i.spikes = nil
	i.drops = nil
}

// ruleExpiry ends a timed LatencySpike or Drop.
type ruleExpiry struct {
	list *[]linkRule
	id   int
	desc string
}

func (e ruleExpiry) String() string { return "expire: " + e.desc }

func (e ruleExpiry) mutate(i *Injector) {
	rules := *e.list
	for j, r := range rules {
		if r.id == e.id {
			*e.list = append(rules[:j:j], rules[j+1:]...)
			return
		}
	}
}

func linkName(from, to netsim.Region) string {
	switch {
	case from == "" && to == "":
		return "*<->*"
	case to == "":
		return string(from) + "<->*"
	case from == "":
		return string(to) + "<->*"
	default:
		return string(from) + "<->" + string(to)
	}
}

// TimedEvent is one schedule entry: an event at an absolute model instant.
type TimedEvent struct {
	At    time.Duration
	Event Event
}

// Schedule is an ordered list of fault events — the scenario DSL. Build one
// with NewSchedule().At(...).At(...), pick a named one with ScenarioByName,
// or generate one from a seed with Random.
type Schedule struct {
	events []TimedEvent
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// At appends events firing at the absolute model instant at, returning the
// schedule for chaining. Events need not be added in time order.
func (s *Schedule) At(at time.Duration, evs ...Event) *Schedule {
	for _, ev := range evs {
		s.events = append(s.events, TimedEvent{At: at, Event: ev})
	}
	return s
}

// Events returns the schedule sorted by time (stable: events added at the
// same instant fire in insertion order).
func (s *Schedule) Events() []TimedEvent {
	out := append([]TimedEvent(nil), s.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// UnmatchedCrashes returns the regions the schedule leaves crashed after
// its last event: every Crash without a later matching Restart, sorted by
// region name. Random never generates one — each Crash is paired with a
// Restart at or before the profile horizon — so the returned slice is the
// "permanent crashes" tag for hand-built schedules: experiments that
// require eventual recovery assert it is empty.
func (s *Schedule) UnmatchedCrashes() []netsim.Region {
	balance := make(map[netsim.Region]int)
	for _, te := range s.Events() {
		switch ev := te.Event.(type) {
		case Crash:
			balance[ev.Region]++
		case Restart:
			// A Restart with no prior Crash is a no-op at the injector too.
			if balance[ev.Region] > 0 {
				balance[ev.Region]--
			}
		}
	}
	var out []netsim.Region
	for r, n := range balance {
		if n > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Horizon returns the instant of the last scheduled event.
func (s *Schedule) Horizon() time.Duration {
	var h time.Duration
	for _, te := range s.events {
		if te.At > h {
			h = te.At
		}
	}
	return h
}

// String renders the schedule, one event per line.
func (s *Schedule) String() string {
	var b strings.Builder
	for _, te := range s.Events() {
		fmt.Fprintf(&b, "%8v  %s\n", te.At, te.Event)
	}
	return b.String()
}
