package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"correctables/internal/netsim"
)

// ErrUnreachable fails a client invocation that a fault made impossible to
// complete in time: a severed quorum, a crashed coordinator, a leader cut
// off from its majority. It is surfaced through the binding error path, so
// Correctable consumers observe OnError instead of a hang. Check with
// errors.Is.
var ErrUnreachable = errors.New("faults: service unreachable")

// timeoutSentinel marks the deadline firing in the rendezvous queue.
type timeoutSentinel struct{}

// Deadline bounds a blocking storage operation to timeout of model time:
// op runs in its own actor while the caller waits for completion or the
// deadline, whichever is first. On timeout Deadline returns an error
// wrapping ErrUnreachable; op keeps running in the background (it finishes
// once the fault heals, or at Quiesce) and uses the live() predicate it is
// handed to suppress view deliveries the caller no longer wants.
//
// A timeout of 0 or less disables the guard: op runs inline on the caller.
func Deadline(clock netsim.Clock, timeout time.Duration, op func(live func() bool) error) error {
	if timeout <= 0 {
		return op(func() bool { return true })
	}
	var expired atomic.Bool
	live := func() bool { return !expired.Load() }
	done := clock.NewQueue()
	clock.Go(func() { done.Put(op(live)) })
	clock.RunAfter(timeout, func() { done.Put(timeoutSentinel{}) })
	switch v := done.Get().(type) {
	case timeoutSentinel:
		expired.Store(true)
		return fmt.Errorf("%w: no response within %v", ErrUnreachable, timeout)
	case error:
		return v
	default: // nil error
		return nil
	}
}
