package faults

import (
	"testing"
	"time"

	"correctables/internal/netsim"
)

// TestOverlappingPartitionsCompose is the regression test for the silent-
// replacement bug: a Partition firing while another is in force used to
// replace it wholesale, losing the first fault. Overlapping partitions now
// compose by refinement — two regions communicate only if every active
// partition groups them together — and each Heal ends the oldest active
// partition only.
func TestOverlappingPartitionsCompose(t *testing.T) {
	_, _, inj := newFabric(t)

	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}})
	if !inj.Partitioned(netsim.FRK, netsim.VRG) || inj.Partitioned(netsim.FRK, netsim.IRL) {
		t.Fatal("first partition not in force")
	}

	// Overlap: the second partition separates FRK from IRL. The refinement
	// isolates all three regions.
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL, netsim.VRG}}})
	for _, pair := range [][2]netsim.Region{
		{netsim.FRK, netsim.IRL}, {netsim.FRK, netsim.VRG}, {netsim.IRL, netsim.VRG},
	} {
		if !inj.Partitioned(pair[0], pair[1]) {
			t.Errorf("refinement does not separate %s from %s", pair[0], pair[1])
		}
	}

	// First Heal ends the *oldest* partition: the second one stays in force.
	inj.Apply(Heal{})
	if !inj.Partitioned(netsim.FRK, netsim.IRL) {
		t.Error("second partition lost with the first heal (replacement semantics)")
	}
	if inj.Partitioned(netsim.IRL, netsim.VRG) {
		t.Error("first partition still in force after its heal")
	}

	inj.Apply(Heal{})
	if inj.Partitioned(netsim.FRK, netsim.IRL) || inj.Partitioned(netsim.FRK, netsim.VRG) {
		t.Error("partitions survive after both heals")
	}
	// A surplus Heal is a no-op, not a panic.
	inj.Apply(Heal{})
}

// TestPartitionMergeKeepsUnnamedWithGroupZero: regions named in no active
// partition implicitly ride in group 0 of each; the merged map must keep
// them grouped with regions every partition explicitly placed in group 0.
func TestPartitionMergeKeepsUnnamedWithGroupZero(t *testing.T) {
	_, _, inj := newFabric(t)
	// FRK is named in neither partition: it rides with IRL in the first
	// (both group 0) and with VRG in the second — the refinement leaves it
	// alone.
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.IRL}, {netsim.VRG}}})
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.VRG}, {netsim.IRL}}})
	if !inj.Partitioned(netsim.FRK, netsim.IRL) {
		t.Error("unnamed FRK not separated from IRL (group-1 in partition 2)")
	}
	if !inj.Partitioned(netsim.FRK, netsim.VRG) {
		t.Error("unnamed FRK not separated from VRG (group-1 in partition 1)")
	}
	inj.Quiesce()
}

// TestUnmatchedCrashes: the permanent-crash tag on hand-built schedules.
func TestUnmatchedCrashes(t *testing.T) {
	s := NewSchedule().
		At(1*time.Second, Crash{Region: netsim.VRG}).
		At(2*time.Second, Crash{Region: netsim.IRL}).
		At(3*time.Second, Restart{Region: netsim.IRL})
	got := s.UnmatchedCrashes()
	if len(got) != 1 || got[0] != netsim.VRG {
		t.Fatalf("UnmatchedCrashes = %v, want [%s]", got, netsim.VRG)
	}
	s.At(4*time.Second, Restart{Region: netsim.VRG})
	if got := s.UnmatchedCrashes(); len(got) != 0 {
		t.Fatalf("UnmatchedCrashes = %v after pairing, want empty", got)
	}
	// A double crash needs two restarts.
	d := NewSchedule().
		At(1*time.Second, Crash{Region: netsim.FRK}).
		At(2*time.Second, Crash{Region: netsim.FRK}).
		At(3*time.Second, Restart{Region: netsim.FRK})
	if got := d.UnmatchedCrashes(); len(got) != 1 || got[0] != netsim.FRK {
		t.Fatalf("double-crash UnmatchedCrashes = %v, want [%s]", got, netsim.FRK)
	}
}

// TestRandomCrashRestartPairingSeedSweep: across many seeds and both
// profiles, every generated Crash has a matching Restart at or before the
// horizon — the recovery guarantee experiments rely on.
func TestRandomCrashRestartPairingSeedSweep(t *testing.T) {
	profiles := []Profile{ProfileMild(time.Second), ProfileHarsh(time.Second)}
	crashes := 0
	for seed := int64(0); seed < 200; seed++ {
		for _, p := range profiles {
			s := Random(seed, p)
			if un := s.UnmatchedCrashes(); len(un) != 0 {
				t.Fatalf("seed %d profile %s: permanent crashes %v", seed, p.Name, un)
			}
			for _, te := range s.Events() {
				switch te.Event.(type) {
				case Crash:
					crashes++
				case Restart:
					if te.At > p.Horizon {
						t.Fatalf("seed %d profile %s: restart at %v past horizon %v",
							seed, p.Name, te.At, p.Horizon)
					}
				}
			}
		}
	}
	if crashes == 0 {
		t.Fatal("seed sweep generated no crashes at all — the pairing guarantee was never exercised")
	}
}

// TestOnDownOnUpEdges: per-region notifications fire on down/up edges only
// (a second overlapping Crash is not a new edge; the final Quiesce restarts
// everything and fires the up edge).
func TestOnDownOnUpEdges(t *testing.T) {
	_, _, inj := newFabric(t)
	var downs, ups int
	inj.OnDown(netsim.VRG, func() { downs++ })
	inj.OnUp(netsim.VRG, func() { ups++ })

	inj.Apply(Crash{Region: netsim.VRG})
	if downs != 1 || ups != 0 {
		t.Fatalf("after crash: downs=%d ups=%d, want 1/0", downs, ups)
	}
	inj.Apply(Crash{Region: netsim.VRG}) // overlapping crash: no edge
	inj.Apply(Restart{Region: netsim.VRG})
	if downs != 1 || ups != 0 {
		t.Fatalf("after first restart of a double crash: downs=%d ups=%d, want 1/0", downs, ups)
	}
	inj.Apply(Restart{Region: netsim.VRG})
	if downs != 1 || ups != 1 {
		t.Fatalf("after full restart: downs=%d ups=%d, want 1/1", downs, ups)
	}
	// Partitions touch reachability, not region liveness: no edges.
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.VRG}, {netsim.FRK, netsim.IRL}}})
	inj.Apply(Heal{})
	if downs != 1 || ups != 1 {
		t.Fatalf("partition fired region edges: downs=%d ups=%d", downs, ups)
	}
	// Other regions' faults don't fire VRG's edges.
	inj.Apply(Crash{Region: netsim.FRK})
	if downs != 1 {
		t.Fatalf("FRK crash fired VRG's down edge")
	}
	inj.Apply(Crash{Region: netsim.VRG})
	inj.Quiesce() // clears all faults: VRG comes back up
	if downs != 2 || ups != 2 {
		t.Fatalf("after quiesce: downs=%d ups=%d, want 2/2", downs, ups)
	}
}

// TestReachableAndQuiesced: the public reachability predicate composes
// crashes and partitions, and Transition.Quiesced marks the final
// transition for subscribers that must stand down periodic machinery.
func TestReachableAndQuiesced(t *testing.T) {
	_, _, inj := newFabric(t)
	if !inj.Reachable(netsim.FRK, netsim.VRG) {
		t.Fatal("healthy fabric unreachable")
	}
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}})
	if inj.Reachable(netsim.FRK, netsim.VRG) || !inj.Reachable(netsim.FRK, netsim.IRL) {
		t.Fatal("partition not reflected in Reachable")
	}
	inj.Apply(Heal{})
	inj.Apply(Crash{Region: netsim.IRL})
	if inj.Reachable(netsim.FRK, netsim.IRL) {
		t.Fatal("crashed endpoint reachable")
	}

	var quiesced, transitions int
	inj.Subscribe(func(tr Transition) {
		transitions++
		if tr.Quiesced() {
			quiesced++
		}
	})
	inj.Apply(Restart{Region: netsim.IRL})
	inj.Quiesce()
	if transitions != 2 || quiesced != 1 {
		t.Fatalf("transitions=%d quiesced=%d, want 2/1", transitions, quiesced)
	}
}
