package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"correctables/internal/netsim"
)

// Phase is one reporting window of a scenario: experiment drivers bucket
// their per-operation measurements by the phase the operation started in.
type Phase struct {
	Name       string
	Start, End time.Duration
}

// Scenario is a schedule plus its reporting phases. Named scenarios are
// parameterized by a time unit u; their events fire at fixed multiples of
// it, so one scenario serves both full runs (u ~ seconds) and quick smoke
// runs (u ~ hundreds of milliseconds).
type Scenario struct {
	Name        string
	Description string
	Schedule    *Schedule
	Phases      []Phase
	// Horizon is the measured span; drivers stop offering load at it.
	Horizon time.Duration
}

// phasesOf builds equal-width phases of the given names over [0, n*u).
func phasesOf(u time.Duration, width int, names ...string) []Phase {
	out := make([]Phase, len(names))
	for i, n := range names {
		out[i] = Phase{Name: n, Start: time.Duration(i*width) * u, End: time.Duration((i+1)*width) * u}
	}
	return out
}

// ScenarioNames lists the catalog, in presentation order.
func ScenarioNames() []string {
	return []string{"minority-partition", "split-brain", "flaky-wan", "rolling-crash"}
}

// ScenarioByName resolves a named scenario at time unit u. The catalog uses
// the canonical FRK/IRL/VRG deployment:
//
//   - minority-partition: VRG is severed for 4u, heals, then crashes for 4u
//     and restarts — the headline weak-vs-strong asymmetry scenario.
//   - split-brain: every region in its own partition group for 4u.
//   - flaky-wan: every VRG link drops 20% of messages and the IRL<->VRG
//     link runs 8x slow for 8u.
//   - rolling-crash: each region in turn (FRK — the usual leader/primary —
//     first) crashes for 2u with 2u of calm in between.
func ScenarioByName(name string, u time.Duration) (*Scenario, error) {
	if u <= 0 {
		return nil, fmt.Errorf("faults: scenario unit must be positive, got %v", u)
	}
	switch name {
	case "minority-partition":
		return &Scenario{
			Name:        name,
			Description: "VRG severed from {FRK IRL} for 4u, heal, then VRG crashes for 4u and restarts",
			Schedule: NewSchedule().
				At(4*u, Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}}).
				At(8*u, Heal{}).
				At(12*u, Crash{Region: netsim.VRG}).
				At(16*u, Restart{Region: netsim.VRG}),
			Phases:  phasesOf(u, 4, "healthy", "partition", "healed", "crash", "recovered"),
			Horizon: 20 * u,
		}, nil
	case "split-brain":
		return &Scenario{
			Name:        name,
			Description: "three-way partition (every region isolated) for 4u",
			Schedule: NewSchedule().
				At(4*u, Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL}, {netsim.VRG}}}).
				At(8*u, Heal{}),
			Phases:  phasesOf(u, 4, "healthy", "split", "healed"),
			Horizon: 12 * u,
		}, nil
	case "flaky-wan":
		return &Scenario{
			Name:        name,
			Description: "VRG links drop 20% of messages and IRL<->VRG runs 8x slow for 8u",
			Schedule: NewSchedule().
				At(2*u, Drop{From: netsim.VRG, Prob: 0.2, Duration: 8 * u}).
				At(2*u, LatencySpike{From: netsim.IRL, To: netsim.VRG, Factor: 8, Duration: 8 * u}),
			Phases:  phasesOf(u, 2, "healthy", "flaky", "flaky2", "flaky3", "flaky4", "recovered"),
			Horizon: 12 * u,
		}, nil
	case "rolling-crash":
		s := NewSchedule()
		regions := []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG}
		for i, r := range regions {
			at := time.Duration(2+4*i) * u
			s.At(at, Crash{Region: r})
			s.At(at+2*u, Restart{Region: r})
		}
		return &Scenario{
			Name:        name,
			Description: "each region in turn crashes for 2u (FRK first) with 2u of calm between",
			Schedule:    s,
			Phases: []Phase{
				{Name: "healthy", Start: 0, End: 2 * u},
				{Name: "crash-frk", Start: 2 * u, End: 6 * u},
				{Name: "crash-irl", Start: 6 * u, End: 10 * u},
				{Name: "crash-vrg", Start: 10 * u, End: 14 * u},
				{Name: "recovered", Start: 14 * u, End: 16 * u},
			},
			Horizon: 16 * u,
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown scenario %q (have %s)",
			name, strings.Join(ScenarioNames(), ", "))
	}
}

// ParseSpec resolves a -faults command-line spec at time unit u: either a
// scenario name from the catalog ("minority-partition") or "<seed>:<profile>"
// ("1234:mild", "7:tracks-harsh") for a random schedule generated from the
// seed — single-track for the legacy profiles, a composed set of
// independently seeded nemesis tracks for the tracks-* products. Random
// scenarios report over four equal phase windows.
func ParseSpec(spec string, u time.Duration) (*Scenario, error) {
	if seedStr, profStr, ok := strings.Cut(spec, ":"); ok {
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad seed in spec %q: %v", spec, err)
		}
		profs, err := ProfilesByName(profStr, u)
		if err != nil {
			return nil, err
		}
		var sched *Schedule
		var horizon time.Duration
		if len(profs) == 1 {
			// The single-track path stays Random(seed, profile) so historical
			// "<seed>:mild" specs replay the exact schedules they always did.
			sched = Random(seed, profs[0])
			horizon = profs[0].Horizon
		} else {
			sched = Compose(RandomTracks(seed, profs)...)
			for _, p := range profs {
				if p.Horizon > horizon {
					horizon = p.Horizon
				}
			}
		}
		q := horizon / 4
		return &Scenario{
			Name:        spec,
			Description: fmt.Sprintf("random schedule, seed %d, profile %s", seed, profStr),
			Schedule:    sched,
			Phases: []Phase{
				{Name: "q1", Start: 0, End: q},
				{Name: "q2", Start: q, End: 2 * q},
				{Name: "q3", Start: 2 * q, End: 3 * q},
				{Name: "q4", Start: 3 * q, End: horizon},
			},
			Horizon: horizon,
		}, nil
	}
	return ScenarioByName(spec, u)
}
