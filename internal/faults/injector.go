package faults

import (
	"fmt"
	randv2 "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"

	"correctables/internal/netsim"
)

// Transition is one applied fault event, as recorded in the injector's log
// and handed to subscribers.
type Transition struct {
	// At is the model instant the transition fired.
	At time.Duration
	// Event is the applied event (a ruleExpiry or quiesce for internal
	// transitions; subscribers that only care about specific kinds
	// type-switch on the exported event types).
	Event Event
	// Desc is the event's rendered description (fault logs).
	Desc string
}

// Quiesced reports whether this transition is the final one fired by
// Injector.Quiesce (subscribers that run periodic machinery — election
// timers, mining ticks — use it to stand down so the clock can drain).
func (t Transition) Quiesced() bool {
	_, ok := t.Event.(quiesce)
	return ok
}

// Injector replays a fault schedule against a transport. It implements
// netsim.Interceptor: every message is judged against the current fault
// epoch (partition groups, down regions, latency spikes, lossy links), and
// every transition — scheduled via clock callbacks, so it interleaves
// deterministically with traffic — bumps the epoch and wakes stalled
// senders for a recheck.
//
// Stores subscribe to transitions to wire recovery semantics (state
// transfer to rejoining replicas); subscriber callbacks run in clock
// callback context and must not block.
type Injector struct {
	clock netsim.Clock

	mu  sync.Mutex
	rng *randv2.Rand // Drop sampling
	// parts holds every active partition, oldest first; group is their
	// common refinement, rebuilt whenever parts changes.
	parts []activePart
	// group maps regions to partition group ids; nil or all-equal means no
	// partition. Regions absent from the map are in group 0.
	group map[netsim.Region]int
	// down counts active Crash events per region (overlapping random
	// schedules may crash a region twice before the first Restart).
	down   map[netsim.Region]int
	spikes []linkRule
	drops  []linkRule
	nextID int
	// epochEv is fired and replaced on every transition; stalled senders
	// wait on it and recheck passability.
	epochEv netsim.Event
	done    bool
	log     []Transition
	subs    []func(Transition)
	// regionSubs holds the OnDown/OnUp edge subscribers per region
	// (copy-on-write lists, like subs).
	regionSubs map[netsim.Region]*regionSub
}

// regionSub is one region's down/up edge subscriber lists.
type regionSub struct {
	down []func()
	up   []func()
}

// activePart is one active partition: its Heal-pairing id (0 for untagged
// legacy events) and its region grouping.
type activePart struct {
	id       int
	grouping map[netsim.Region]int
}

// rebuildGroupsLocked recomputes the merged partition map as the common
// refinement of every active partition: a region's merged group is the
// tuple of its group ids across parts (absent regions ride in group 0 of
// every partition), with dense ids assigned deterministically over the
// sorted region names. The all-zero tuple is pinned to id 0 so that regions
// named in no partition (absent from the merged map, implicitly group 0)
// stay grouped with regions every partition placed in group 0.
func (i *Injector) rebuildGroupsLocked() {
	switch len(i.parts) {
	case 0:
		i.group = nil
		return
	case 1:
		// The grouping maps are never mutated after construction, so the
		// single-partition fast path can share.
		i.group = i.parts[0].grouping
		return
	}
	named := make(map[netsim.Region]bool)
	for _, p := range i.parts {
		for r := range p.grouping {
			named[r] = true
		}
	}
	regions := make([]netsim.Region, 0, len(named))
	for r := range named {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(a, b int) bool { return regions[a] < regions[b] })

	var zero strings.Builder
	for range i.parts {
		zero.WriteString("0,")
	}
	ids := map[string]int{zero.String(): 0}
	merged := make(map[netsim.Region]int, len(regions))
	for _, r := range regions {
		var key strings.Builder
		for _, p := range i.parts {
			fmt.Fprintf(&key, "%d,", p.grouping[r])
		}
		id, ok := ids[key.String()]
		if !ok {
			id = len(ids)
			ids[key.String()] = id
		}
		merged[r] = id
	}
	i.group = merged
}

// linkRule is one active latency-spike or drop rule. Empty regions are
// wildcards; a set pair matches that link in either direction.
type linkRule struct {
	id       int
	from, to netsim.Region
	factor   float64 // spikes
	prob     float64 // drops
}

func (r linkRule) matches(a, b netsim.Region) bool {
	switch {
	case r.from == "" && r.to == "":
		return true
	case r.to == "":
		return r.from == a || r.from == b
	case r.from == "":
		return r.to == a || r.to == b
	default:
		return (r.from == a && r.to == b) || (r.from == b && r.to == a)
	}
}

// Attach builds an injector over the transport's clock, installs it as the
// transport's interceptor, and arms every event of the schedule as a clock
// callback. seed fixes the drop-sampling RNG. The schedule may be nil
// (drive the injector with Apply instead). Attach before constructing
// stores on the transport: stores inspect Transport.Interceptor at
// construction to wire their crash-recovery hooks.
func Attach(tr *netsim.Transport, sched *Schedule, seed int64) *Injector {
	i := &Injector{
		clock: tr.Clock(),
		rng:   randv2.New(randv2.NewPCG(uint64(seed), 0xfa017)),
		down:  make(map[netsim.Region]int),
	}
	i.epochEv = i.clock.NewEvent()
	tr.SetInterceptor(i)
	if sched != nil {
		for _, te := range sched.Events() {
			ev := te.Event
			i.clock.RunAt(te.At, func() { i.Apply(ev) })
		}
	}
	return i
}

// Apply fires one fault event now (immediately, as if scheduled at the
// current instant). No-op after Quiesce.
func (i *Injector) Apply(ev Event) {
	i.mu.Lock()
	if i.done {
		i.mu.Unlock()
		return
	}
	i.applyLocked(ev)
}

// applyLocked mutates state, logs the transition, rolls the epoch event and
// notifies subscribers — per-region down/up edges first (they flip cheap
// liveness flags), then the generic transition subscribers (they typically
// arm state-transfer sends against the flags the edges just set). Enters
// with i.mu held, returns with it released.
func (i *Injector) applyLocked(ev Event) {
	// Snapshot the down-state of every edge-subscribed region so the event's
	// mutation can be diffed into OnDown/OnUp edges. Regions fire in name
	// order — map order would perturb determinism.
	var watched []netsim.Region
	for r := range i.regionSubs {
		watched = append(watched, r)
	}
	sort.Slice(watched, func(a, b int) bool { return watched[a] < watched[b] })
	before := make(map[netsim.Region]bool, len(watched))
	for _, r := range watched {
		before[r] = i.down[r] > 0
	}

	ev.mutate(i)

	var edges []func()
	for _, r := range watched {
		after := i.down[r] > 0
		if after == before[r] {
			continue
		}
		if after {
			edges = append(edges, i.regionSubs[r].down...)
		} else {
			edges = append(edges, i.regionSubs[r].up...)
		}
	}

	tr := Transition{At: i.clock.Now(), Event: ev, Desc: ev.String()}
	i.log = append(i.log, tr)
	old := i.epochEv
	i.epochEv = i.clock.NewEvent()
	subs := i.subs
	i.mu.Unlock()
	old.Fire() // stalled senders recheck against the new epoch
	for _, fn := range edges {
		fn()
	}
	for _, fn := range subs {
		fn(tr)
	}
}

// addRuleLocked installs a spike/drop rule and, for a bounded Duration,
// arms its expiry as a further transition. Called from mutate (i.mu held).
func (i *Injector) addRuleLocked(list *[]linkRule, r linkRule, dur time.Duration, desc string) {
	i.nextID++
	r.id = i.nextID
	*list = append(*list, r)
	if dur > 0 {
		exp := ruleExpiry{list: list, id: r.id, desc: desc}
		i.clock.RunAfter(dur, func() { i.Apply(exp) })
	}
}

// Quiesce clears every active fault — partition, crashes, spikes, drops —
// and disables all further scheduled events, so stalled traffic drains.
// Call it when the measured run is over, before VirtualClock.Drain;
// subscribers see one final transition to run their last resync.
func (i *Injector) Quiesce() {
	i.mu.Lock()
	if i.done {
		i.mu.Unlock()
		return
	}
	i.done = true
	i.applyLocked(quiesce{})
}

// Subscribe registers fn to run after every transition (including expiries
// and the final Quiesce). Callbacks run in clock callback context: they
// must not block, and typically just compare replica states and arm
// asynchronous state-transfer sends.
func (i *Injector) Subscribe(fn func(Transition)) {
	i.mu.Lock()
	// Copy-on-write: applyLocked snapshots i.subs without copying, so the
	// slice it iterates must never be appended to in place.
	subs := make([]func(Transition), len(i.subs), len(i.subs)+1)
	copy(subs, i.subs)
	i.subs = append(subs, fn)
	i.mu.Unlock()
}

// OnDown registers fn to run whenever the region transitions from up to
// down (its active-crash count crosses zero). Like Subscribe callbacks, fn
// runs in clock callback context and must not block. Bindings use these
// edges to maintain liveness flags instead of polling Down on every tick.
func (i *Injector) OnDown(r netsim.Region, fn func()) {
	i.onEdge(r, fn, true)
}

// OnUp registers fn to run whenever the region transitions from down to up
// (including the final Quiesce, which restarts everything). Same callback
// discipline as OnDown.
func (i *Injector) OnUp(r netsim.Region, fn func()) {
	i.onEdge(r, fn, false)
}

func (i *Injector) onEdge(r netsim.Region, fn func(), down bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.regionSubs == nil {
		i.regionSubs = make(map[netsim.Region]*regionSub)
	}
	rs := i.regionSubs[r]
	if rs == nil {
		rs = &regionSub{}
		i.regionSubs[r] = rs
	}
	// Copy-on-write, like subs: applyLocked snapshots the lists without
	// copying, so they must never be appended to in place.
	if down {
		list := make([]func(), len(rs.down), len(rs.down)+1)
		copy(list, rs.down)
		rs.down = append(list, fn)
	} else {
		list := make([]func(), len(rs.up), len(rs.up)+1)
		copy(list, rs.up)
		rs.up = append(list, fn)
	}
}

// Reachable reports whether a message from a to b would currently make
// progress: both endpoints up and no active partition separating them.
// Probabilistic Drop rules are not consulted — they lose individual
// messages, not the link.
func (i *Injector) Reachable(a, b netsim.Region) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.passableLocked(a, b)
}

// Down reports whether the region is currently crashed.
func (i *Injector) Down(r netsim.Region) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.down[r] > 0
}

// Partitioned reports whether a partition is currently in force between
// the two regions (false if either is merely down).
func (i *Injector) Partitioned(a, b netsim.Region) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.group[a] != i.group[b]
}

// Faulted reports whether any fault is currently in force: an active
// partition, a crashed region, or a latency-spike/drop rule.
func (i *Injector) Faulted() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.parts) > 0 || len(i.spikes) > 0 || len(i.drops) > 0 {
		return true
	}
	for _, n := range i.down {
		if n > 0 {
			return true
		}
	}
	return false
}

// Log returns a copy of every transition applied so far, in order.
func (i *Injector) Log() []Transition {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Transition(nil), i.log...)
}

// passableLocked reports whether a message from->to can currently make
// progress (both endpoints up, same partition side).
func (i *Injector) passableLocked(from, to netsim.Region) bool {
	if i.down[from] > 0 || i.down[to] > 0 {
		return false
	}
	return i.group[from] == i.group[to]
}

// Intercept implements netsim.Interceptor.
func (i *Injector) Intercept(from, to netsim.Region, class string) (netsim.Verdict, float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.passableLocked(from, to) {
		return netsim.VerdictStall, 1
	}
	factor := 1.0
	for _, r := range i.spikes {
		if r.matches(from, to) {
			factor *= r.factor
		}
	}
	for _, r := range i.drops {
		if r.matches(from, to) && i.rng.Float64() < r.prob {
			return netsim.VerdictDrop, factor
		}
	}
	return netsim.VerdictDeliver, factor
}

// AwaitPassable implements netsim.Interceptor: the calling actor parks
// until from<->to is passable, waking at every transition to recheck.
func (i *Injector) AwaitPassable(from, to netsim.Region) {
	for {
		i.mu.Lock()
		if i.passableLocked(from, to) {
			i.mu.Unlock()
			return
		}
		ev := i.epochEv
		i.mu.Unlock()
		ev.Wait()
	}
}
