package faults

import (
	"errors"
	"testing"
	"time"

	"correctables/internal/netsim"
)

// newFabric builds a virtual-clock transport with a schedule-less injector;
// tests drive faults with Apply.
func newFabric(t *testing.T) (*netsim.VirtualClock, *netsim.Transport, *Injector) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	return clock, tr, Attach(tr, nil, 1)
}

func TestScheduleDSLOrdering(t *testing.T) {
	s := NewSchedule().
		At(3*time.Second, Heal{}).
		At(time.Second, Partition{Groups: [][]netsim.Region{{netsim.FRK}}}).
		At(time.Second, Crash{Region: netsim.VRG})
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != time.Second || evs[2].At != 3*time.Second {
		t.Errorf("not sorted: %v", evs)
	}
	// Stable: same-instant events keep insertion order.
	if _, ok := evs[0].Event.(Partition); !ok {
		t.Errorf("same-instant order not stable: %v", evs)
	}
	if s.Horizon() != 3*time.Second {
		t.Errorf("horizon = %v", s.Horizon())
	}
}

func TestRandomScheduleDeterministicAndBounded(t *testing.T) {
	p := ProfileMild(time.Second)
	a, b := Random(7, p), Random(7, p)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events()) == 0 {
		t.Fatal("mild profile generated no events over 20s horizon")
	}
	for _, te := range a.Events() {
		if te.At > p.Horizon {
			t.Errorf("event %v past horizon", te)
		}
	}
	if Random(8, p).String() == a.String() {
		t.Error("different seeds produced identical schedules")
	}
}

func TestParseSpec(t *testing.T) {
	for _, name := range ScenarioNames() {
		sc, err := ParseSpec(name, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Schedule == nil || len(sc.Phases) == 0 || sc.Horizon == 0 {
			t.Errorf("%s: incomplete scenario %+v", name, sc)
		}
	}
	if sc, err := ParseSpec("123:harsh", time.Second); err != nil || sc.Schedule == nil {
		t.Errorf("seed spec: %v, %+v", err, sc)
	}
	if _, err := ParseSpec("nope", time.Second); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ParseSpec("x:mild", time.Second); err == nil {
		t.Error("bad seed accepted")
	}
	if _, err := ParseSpec("1:nope", time.Second); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestPartitionStallsTravelUntilHeal(t *testing.T) {
	clock, tr, inj := newFabric(t)
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}})

	done := clock.NewEvent()
	var finished time.Duration
	clock.Go(func() {
		tr.Travel(netsim.FRK, netsim.VRG, netsim.LinkReplica, 100)
		finished = clock.Now()
		done.Fire()
	})
	// Same-side traffic is unaffected.
	tr.Travel(netsim.FRK, netsim.IRL, netsim.LinkReplica, 100)

	clock.Sleep(5 * time.Second)
	if finished != 0 {
		t.Fatal("severed Travel completed during the partition")
	}
	healAt := clock.Now()
	inj.Apply(Heal{})
	done.Wait()
	if finished < healAt {
		t.Errorf("finished %v before heal %v", finished, healAt)
	}
	if got := finished - healAt; got > 200*time.Millisecond {
		t.Errorf("stalled Travel took %v after heal; want ~one-way delay", got)
	}
	inj.Quiesce()
	clock.Drain()
}

func TestCrashDropsAsyncAndCountsOnMeter(t *testing.T) {
	clock, tr, inj := newFabric(t)
	inj.Apply(Crash{Region: netsim.VRG})

	delivered := 0
	tr.Send(netsim.FRK, netsim.VRG, netsim.LinkReplica, 64, func() { delivered++ })
	tr.Send(netsim.FRK, netsim.IRL, netsim.LinkReplica, 64, func() { delivered++ })
	clock.Drain()
	if delivered != 1 {
		t.Errorf("delivered = %d, want only the FRK->IRL send", delivered)
	}
	if got := tr.Meter().Dropped(netsim.LinkReplica); got.Messages != 1 || got.Bytes != 64 {
		t.Errorf("dropped stats = %+v", got)
	}
	if got := tr.Meter().Class(netsim.LinkReplica); got.Messages != 1 {
		t.Errorf("delivered stats polluted: %+v", got)
	}
	inj.Apply(Restart{Region: netsim.VRG})
	tr.Send(netsim.FRK, netsim.VRG, netsim.LinkReplica, 64, func() { delivered++ })
	clock.Drain()
	if delivered != 2 {
		t.Error("send after restart not delivered")
	}
}

func TestLatencySpikeScalesAndExpires(t *testing.T) {
	clock, tr, inj := newFabric(t)
	base := tr.Model().OneWay(netsim.IRL, netsim.VRG)

	measure := func() time.Duration {
		sw := clock.StartStopwatch()
		tr.Travel(netsim.IRL, netsim.VRG, netsim.LinkClient, 10)
		return sw.ElapsedModel()
	}
	inj.Apply(LatencySpike{From: netsim.IRL, To: netsim.VRG, Factor: 10, Duration: 30 * time.Second})
	if got := measure(); got < 8*base {
		t.Errorf("spiked delay %v, want >= 8x one-way %v", got, base)
	}
	clock.Sleep(31 * time.Second) // spike expired via its own transition
	if got := measure(); got > 2*base {
		t.Errorf("post-expiry delay %v, want ~one-way %v", got, base)
	}
	if len(inj.Log()) != 2 {
		t.Errorf("log = %v, want spike + expiry", inj.Log())
	}
	clock.Drain()
}

func TestDropRuleLosesSyncMessagesButRetransmits(t *testing.T) {
	clock, tr, inj := newFabric(t)
	inj.Apply(Drop{From: netsim.IRL, To: netsim.VRG, Prob: 0.5, Duration: time.Hour})
	for i := 0; i < 20; i++ {
		tr.Travel(netsim.IRL, netsim.VRG, netsim.LinkClient, 10)
	}
	dropped := tr.Meter().Dropped(netsim.LinkClient).Messages
	if dropped == 0 {
		t.Error("p=0.5 drop rule lost no messages in 20 sends")
	}
	if got := tr.Meter().Class(netsim.LinkClient).Messages; got != 20 {
		t.Errorf("delivered %d messages, want all 20 (retransmit)", got)
	}
	inj.Quiesce()
	clock.Drain()
}

func TestDeadline(t *testing.T) {
	clock := netsim.NewVirtualClock()

	// Completes in time: the op's own result comes back.
	err := Deadline(clock, time.Second, func(live func() bool) error {
		clock.Sleep(100 * time.Millisecond)
		if !live() {
			t.Error("live() false before the deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("in-time op: %v", err)
	}

	// Exceeds the deadline: ErrUnreachable, and live() turns false for the
	// background remainder.
	sawDead := clock.NewEvent()
	err = Deadline(clock, time.Second, func(live func() bool) error {
		clock.Sleep(5 * time.Second)
		if live() {
			t.Error("live() still true after the deadline")
		}
		sawDead.Fire()
		return nil
	})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("timed-out op: %v, want ErrUnreachable", err)
	}
	sawDead.Wait()

	// Zero timeout disables the guard (op runs inline).
	ran := false
	if err := Deadline(clock, 0, func(func() bool) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("unguarded op: ran=%v err=%v", ran, err)
	}
	clock.Drain()
}

func TestQuiesceFreesStalledTraffic(t *testing.T) {
	clock, tr, inj := newFabric(t)
	inj.Apply(Crash{Region: netsim.VRG})
	done := clock.NewEvent()
	clock.Go(func() {
		tr.Travel(netsim.IRL, netsim.VRG, netsim.LinkClient, 10)
		done.Fire()
	})
	clock.Sleep(time.Second)
	inj.Quiesce()
	done.Wait() // would deadlock (and the clock would panic) if quiesce left the stall
	// Post-quiesce events are ignored.
	inj.Apply(Crash{Region: netsim.VRG})
	if inj.Down(netsim.VRG) {
		t.Error("event applied after Quiesce")
	}
	clock.Drain()
}
