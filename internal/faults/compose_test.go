package faults

import (
	"testing"
	"time"

	"correctables/internal/netsim"
)

// TestComposedPartitionLifetimesIndependent is the regression test for the
// cross-track heal hazard: with untagged events, a short partition window
// in one track would heal a longer window opened earlier by another track
// (Heal ends the oldest). Compose rewrites every pair to unique IDs, so
// each track's heal ends exactly its own partition.
func TestComposedPartitionLifetimesIndependent(t *testing.T) {
	u := 10 * time.Millisecond
	long := Track{Name: "long", Schedule: NewSchedule().
		At(1*u, Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}}).
		At(10*u, Heal{})}
	short := Track{Name: "short", Schedule: NewSchedule().
		At(2*u, Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL, netsim.VRG}}}).
		At(3*u, Heal{})}

	clock, _, inj := newFabric(t)
	sched := Compose(long, short)
	for _, te := range sched.Events() {
		ev := te.Event
		clock.RunAt(te.At, func() { inj.Apply(ev) })
	}

	// At 4u the short track has healed; the long track's partition must
	// still be in force (the untagged semantics would have healed it at 3u).
	// IRL<->VRG is severed only by the long track, FRK<->IRL only by the
	// short one.
	clock.RunAt(4*u, func() {
		if !inj.Partitioned(netsim.IRL, netsim.VRG) {
			t.Error("long track's partition healed by short track's heal")
		}
		if inj.Partitioned(netsim.FRK, netsim.IRL) {
			t.Error("short track's partition still in force after its heal")
		}
	})
	clock.RunAt(11*u, func() {
		if inj.Partitioned(netsim.IRL, netsim.VRG) {
			t.Error("long track's partition survives its own heal")
		}
	})
	clock.Drain()
}

// TestComposeDeterministicAndFIFOWithinTrack: composing the same tracks
// twice yields identical schedules, untagged heals pair FIFO within their
// own track, and a surplus untagged heal is dropped rather than healing a
// neighbour track.
func TestComposeDeterministicAndFIFOWithinTrack(t *testing.T) {
	mk := func() []Track {
		return []Track{
			{Name: "a", Schedule: NewSchedule().
				At(1*time.Second, Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL, netsim.VRG}}}).
				At(2*time.Second, Partition{Groups: [][]netsim.Region{{netsim.IRL}, {netsim.FRK, netsim.VRG}}}).
				At(3*time.Second, Heal{}).
				At(4*time.Second, Heal{})},
			{Name: "b", Schedule: NewSchedule().
				At(2500*time.Millisecond, Heal{}). // surplus: no open partition in track b
				At(5*time.Second, Crash{Region: netsim.VRG}).
				At(6*time.Second, Restart{Region: netsim.VRG})},
		}
	}
	s1, s2 := Compose(mk()...), Compose(mk()...)
	if s1.String() != s2.String() {
		t.Fatalf("Compose not deterministic:\n%s\nvs\n%s", s1, s2)
	}

	evs := s1.Events()
	var ids []int
	heals := make(map[int]bool)
	for _, te := range evs {
		switch ev := te.Event.(type) {
		case Partition:
			if ev.ID == 0 {
				t.Errorf("composed partition at %v left untagged", te.At)
			}
			ids = append(ids, ev.ID)
		case Heal:
			if heals[ev.ID] {
				t.Errorf("two heals share ID %d", ev.ID)
			}
			heals[ev.ID] = true
		}
	}
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("composed partition IDs = %v, want two distinct", ids)
	}
	// FIFO pairing: the 3s heal carries the 1s partition's ID, the 4s heal
	// the 2s partition's; track b's surplus heal is gone.
	if got := len(heals); got != 2 {
		t.Fatalf("composed schedule has %d heals, want 2 (surplus dropped)", got)
	}
	for i, te := range evs {
		if h, ok := te.Event.(Heal); ok {
			want := ids[0]
			if te.At == 4*time.Second {
				want = ids[1]
			}
			if h.ID != want {
				t.Errorf("event %d: heal at %v has ID %d, want %d (FIFO within track)", i, te.At, h.ID, want)
			}
		}
	}
}

// TestRandomTracksDeterministicAndComposable: RandomTracks is a pure
// function of (seed, profiles), distinct seeds give distinct schedules, and
// the composed product stays within the horizon with crash/restart pairing
// intact.
func TestRandomTracksDeterministicAndComposable(t *testing.T) {
	u := 100 * time.Millisecond
	for _, name := range []string{"tracks-mild", "tracks-harsh"} {
		profs, err := ProfilesByName(name, u)
		if err != nil {
			t.Fatalf("ProfilesByName(%s): %v", name, err)
		}
		if len(profs) < 2 {
			t.Fatalf("%s resolves to %d tracks, want >= 2", name, len(profs))
		}
		a := Compose(RandomTracks(7, profs)...)
		b := Compose(RandomTracks(7, profs)...)
		if a.String() != b.String() {
			t.Fatalf("%s seed 7 not deterministic", name)
		}
		if c := Compose(RandomTracks(8, profs)...); a.String() == c.String() && len(a.Events()) > 0 {
			t.Errorf("%s seeds 7 and 8 compose to identical schedules", name)
		}
		if got := a.UnmatchedCrashes(); len(got) != 0 {
			t.Errorf("%s seed 7 leaves %v crashed", name, got)
		}
		if h := a.Horizon(); h > 20*u {
			t.Errorf("%s seed 7 horizon %v beyond profile horizon %v", name, h, 20*u)
		}
	}
	if _, err := ProfilesByName("no-such", u); err == nil {
		t.Error("ProfilesByName accepts unknown name")
	}
}

// TestAtomsPairingAndFlattening: atoms pair partition/heal (by ID and FIFO)
// and crash/restart, singletons stay alone, and flattening the atoms
// reproduces the schedule's event multiset.
func TestAtomsPairingAndFlattening(t *testing.T) {
	s := NewSchedule().
		At(1*time.Second, Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL}}, ID: 7}).
		At(2*time.Second, Crash{Region: netsim.VRG}).
		At(3*time.Second, Drop{From: netsim.IRL, Prob: 0.2, Duration: time.Second}).
		At(4*time.Second, Heal{ID: 7}).
		At(5*time.Second, Restart{Region: netsim.VRG}).
		At(6*time.Second, LatencySpike{From: netsim.FRK, Factor: 4, Duration: time.Second})
	atoms := s.Atoms()
	if len(atoms) != 4 {
		t.Fatalf("got %d atoms, want 4: %v", len(atoms), atoms)
	}
	for i, want := range []int{2, 2, 1, 1} {
		if len(atoms[i]) != want {
			t.Errorf("atom %d has %d events, want %d", i, len(atoms[i]), want)
		}
	}
	total := 0
	rebuilt := NewSchedule()
	for _, a := range atoms {
		for _, te := range a {
			rebuilt.At(te.At, te.Event)
			total++
		}
	}
	if total != len(s.Events()) {
		t.Fatalf("atoms flatten to %d events, want %d", total, len(s.Events()))
	}
	if rebuilt.String() != s.String() {
		t.Fatalf("flattened atoms differ from schedule:\n%s\nvs\n%s", rebuilt, s)
	}
}

// TestTrackJSONRoundTrip: every event kind survives the wire form.
func TestTrackJSONRoundTrip(t *testing.T) {
	tr := Track{Name: "all-kinds", Schedule: NewSchedule().
		At(1*time.Second, Partition{Groups: [][]netsim.Region{{netsim.FRK, netsim.IRL}, {netsim.VRG}}, ID: 3}).
		At(2*time.Second, Heal{ID: 3}).
		At(3*time.Second, Crash{Region: netsim.VRG}).
		At(4*time.Second, Restart{Region: netsim.VRG}).
		At(5*time.Second, LatencySpike{From: netsim.IRL, To: netsim.VRG, Factor: 8, Duration: 2 * time.Second}).
		At(6*time.Second, Drop{From: netsim.VRG, Prob: 0.25, Duration: time.Second})}
	tj, err := MarshalTrack(tr)
	if err != nil {
		t.Fatalf("MarshalTrack: %v", err)
	}
	back, err := UnmarshalTrack(tj)
	if err != nil {
		t.Fatalf("UnmarshalTrack: %v", err)
	}
	if back.Name != tr.Name || back.Schedule.String() != tr.Schedule.String() {
		t.Fatalf("round trip changed track:\n%s\nvs\n%s", back.Schedule, tr.Schedule)
	}
	// IDs survive too (String does not render them).
	if p, ok := back.Schedule.Events()[0].Event.(Partition); !ok || p.ID != 3 {
		t.Fatalf("partition ID lost in round trip: %+v", back.Schedule.Events()[0].Event)
	}
	if _, err := UnmarshalEvent(EventJSON{Kind: "nope"}); err == nil {
		t.Error("UnmarshalEvent accepts unknown kind")
	}
}

// TestHealByIDAndFaulted: a tagged heal ends exactly its partition, and
// Faulted tracks the union of active fault kinds.
func TestHealByIDAndFaulted(t *testing.T) {
	_, _, inj := newFabric(t)
	if inj.Faulted() {
		t.Fatal("fresh injector reports Faulted")
	}
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.FRK}, {netsim.IRL, netsim.VRG}}, ID: 1})
	inj.Apply(Partition{Groups: [][]netsim.Region{{netsim.VRG}, {netsim.FRK, netsim.IRL}}, ID: 2})
	if !inj.Faulted() {
		t.Error("Faulted false with two partitions active")
	}
	// Heal ID 2 ends the *newer* partition; the older stays.
	inj.Apply(Heal{ID: 2})
	if !inj.Partitioned(netsim.FRK, netsim.IRL) {
		t.Error("heal ID 2 ended partition 1")
	}
	if inj.Partitioned(netsim.IRL, netsim.VRG) {
		t.Error("partition 2 survives its tagged heal")
	}
	inj.Apply(Heal{ID: 99}) // unknown ID: no-op
	if !inj.Partitioned(netsim.FRK, netsim.IRL) {
		t.Error("unknown-ID heal ended partition 1")
	}
	inj.Apply(Heal{ID: 1})
	if inj.Faulted() {
		t.Error("Faulted true after all partitions healed")
	}
	inj.Apply(Crash{Region: netsim.VRG})
	if !inj.Faulted() {
		t.Error("Faulted false with VRG down")
	}
	inj.Apply(Restart{Region: netsim.VRG})
	if inj.Faulted() {
		t.Error("Faulted true after restart")
	}
}
