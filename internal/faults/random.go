package faults

import (
	"fmt"
	randv2 "math/rand/v2"
	"strings"
	"time"

	"correctables/internal/netsim"
)

// Profile parameterizes random schedule generation: which regions can
// fault, how often faults start, how long they last, and the relative
// weights of the four fault kinds.
type Profile struct {
	Name string
	// Regions is the fault domain (default: the canonical FRK/IRL/VRG
	// deployment).
	Regions []netsim.Region
	// Horizon bounds the schedule; no fault starts after it.
	Horizon time.Duration
	// MeanGap is the mean spacing between fault onsets (exponential).
	MeanGap time.Duration
	// MeanDuration is the mean fault length (exponential, clamped so every
	// fault ends by Horizon).
	MeanDuration time.Duration
	// PartitionW, CrashW, SpikeW, DropW weight the fault kinds.
	PartitionW, CrashW, SpikeW, DropW float64
}

// defaultRegions is the paper's canonical deployment.
func defaultRegions() []netsim.Region {
	return []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG}
}

// ProfileMild returns a gentle profile: occasional single-region faults and
// link degradations, scaled to the given time unit (see ScenarioByName for
// the unit convention; Horizon is 20 units).
func ProfileMild(unit time.Duration) Profile {
	return Profile{
		Name:         "mild",
		Regions:      defaultRegions(),
		Horizon:      20 * unit,
		MeanGap:      4 * unit,
		MeanDuration: 2 * unit,
		PartitionW:   1, CrashW: 1, SpikeW: 2, DropW: 2,
	}
}

// ProfileHarsh returns a hostile profile: frequent, long, overlapping
// faults of every kind.
func ProfileHarsh(unit time.Duration) Profile {
	return Profile{
		Name:         "harsh",
		Regions:      defaultRegions(),
		Horizon:      20 * unit,
		MeanGap:      unit,
		MeanDuration: 3 * unit,
		PartitionW:   3, CrashW: 2, SpikeW: 1, DropW: 2,
	}
}

// ProfileByName resolves "mild" or "harsh".
func ProfileByName(name string, unit time.Duration) (Profile, error) {
	switch name {
	case "mild":
		return ProfileMild(unit), nil
	case "harsh":
		return ProfileHarsh(unit), nil
	default:
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have mild, harsh)", name)
	}
}

// ProfileNames lists every name ProfilesByName resolves: the single-track
// profiles and the composed track products.
func ProfileNames() []string {
	return []string{"mild", "harsh", "tracks-mild", "tracks-harsh", "tracks-sharded"}
}

// trackProfile is one per-kind nemesis track: a Profile with a single fault
// kind enabled, named after the track.
func trackProfile(name string, unit time.Duration, gap, dur time.Duration) Profile {
	p := Profile{
		Name:         name,
		Regions:      defaultRegions(),
		Horizon:      20 * unit,
		MeanGap:      gap,
		MeanDuration: dur,
	}
	switch name {
	case "partitions":
		p.PartitionW = 1
	case "crashes":
		p.CrashW = 1
	case "wan":
		p.SpikeW = 1
		p.DropW = 1
	}
	return p
}

// ProfilesByName resolves a profile name into the per-track generation
// profiles it denotes. The legacy single-track profiles ("mild", "harsh")
// come back as one track; the track products compose independently seeded
// per-kind nemeses over the same horizon:
//
//   - tracks-mild: a partitions track plus a lossy/slow-WAN track, each at
//     roughly the mild cadence.
//   - tracks-harsh: partitions + rolling crashes + lossy WAN, each at the
//     harsh cadence, so all three nemeses routinely overlap.
//   - tracks-sharded: the tracks-mild product for sharded worlds. The
//     schedules are the same partition + WAN nemeses; consumers that
//     recognize the name (the bench hunt) run them against a multi-shard
//     cluster, so cross-shard quorum reads and shard-tagged hint replay go
//     under the checkers.
func ProfilesByName(name string, unit time.Duration) ([]Profile, error) {
	switch name {
	case "tracks-mild", "tracks-sharded":
		return []Profile{
			trackProfile("partitions", unit, 6*unit, 2*unit),
			trackProfile("wan", unit, 4*unit, 2*unit),
		}, nil
	case "tracks-harsh":
		return []Profile{
			trackProfile("partitions", unit, 3*unit, 3*unit),
			trackProfile("crashes", unit, 5*unit, 2*unit),
			trackProfile("wan", unit, 2*unit, 3*unit),
		}, nil
	default:
		p, err := ProfileByName(name, unit)
		if err != nil {
			return nil, fmt.Errorf("faults: unknown profile %q (have %s)", name, strings.Join(ProfileNames(), ", "))
		}
		return []Profile{p}, nil
	}
}

// RandomTracks generates one independently seeded schedule per profile,
// naming each track after its profile. Per-track seeds derive
// deterministically from the master seed, so (seed, profiles) is a complete
// reproduction recipe exactly as with Random.
func RandomTracks(seed int64, profiles []Profile) []Track {
	rng := randv2.New(randv2.NewPCG(uint64(seed), 0x7ac45))
	tracks := make([]Track, len(profiles))
	for i, p := range profiles {
		sub := int64(rng.Uint64())
		tracks[i] = Track{Name: p.Name, Schedule: Random(sub, p)}
	}
	return tracks
}

// Random generates a schedule from a seed: fault onsets arrive as a Poisson
// process (MeanGap), each fault's kind is drawn by weight and its length
// from MeanDuration, and every fault is paired with the transition that
// ends it (Heal, Restart, or rule expiry), clamped to the profile Horizon —
// in particular every Crash has a matching Restart at or before the
// horizon, so Schedule.UnmatchedCrashes is always empty for a generated
// schedule and long-running experiments are guaranteed eventual recovery.
// The generation is a pure function of (seed, profile): the same pair
// always yields the same schedule, which is what makes a seed a complete
// reproduction recipe.
func Random(seed int64, p Profile) *Schedule {
	if len(p.Regions) == 0 {
		p.Regions = defaultRegions()
	}
	rng := randv2.New(randv2.NewPCG(uint64(seed), 0x5eed5))
	s := NewSchedule()
	total := p.PartitionW + p.CrashW + p.SpikeW + p.DropW
	if total <= 0 || p.Horizon <= 0 || p.MeanGap <= 0 {
		return s
	}
	exp := func(mean time.Duration) time.Duration {
		return time.Duration(float64(mean) * rng.ExpFloat64())
	}
	pick := func() netsim.Region { return p.Regions[rng.IntN(len(p.Regions))] }
	pickPair := func() (netsim.Region, netsim.Region) {
		a := rng.IntN(len(p.Regions))
		b := rng.IntN(len(p.Regions) - 1)
		if b >= a {
			b++
		}
		return p.Regions[a], p.Regions[b]
	}

	partID := 0
	for t := exp(p.MeanGap); t < p.Horizon; t += exp(p.MeanGap) {
		end := t + exp(p.MeanDuration)
		if end > p.Horizon {
			end = p.Horizon
		}
		dur := end - t
		if dur <= 0 {
			continue
		}
		switch w := rng.Float64() * total; {
		case w < p.PartitionW:
			// Isolate one region from the rest. Overlapping partitions
			// compose by refinement at the injector; the ID pairs each
			// partition with its own Heal, so windows whose ends arrive out
			// of onset order still keep independent lifetimes.
			iso := pick()
			rest := make([]netsim.Region, 0, len(p.Regions)-1)
			for _, r := range p.Regions {
				if r != iso {
					rest = append(rest, r)
				}
			}
			partID++
			s.At(t, Partition{Groups: [][]netsim.Region{rest, {iso}}, ID: partID})
			s.At(end, Heal{ID: partID})
		case w < p.PartitionW+p.CrashW:
			r := pick()
			s.At(t, Crash{Region: r})
			s.At(end, Restart{Region: r})
		case w < p.PartitionW+p.CrashW+p.SpikeW:
			a, b := pickPair()
			s.At(t, LatencySpike{From: a, To: b, Factor: 4 + 16*rng.Float64(), Duration: dur})
		default:
			a, b := pickPair()
			s.At(t, Drop{From: a, To: b, Prob: 0.05 + 0.25*rng.Float64(), Duration: dur})
		}
	}
	return s
}
