package faults

import (
	"fmt"
	"time"

	"correctables/internal/netsim"
)

// Track is one named, independently generated fault schedule — a single
// nemesis (a partition storm, a lossy WAN, a rolling crash). Tracks are the
// unit of composition (Compose) and of shrinking (a minimizer drops whole
// tracks first, then events within a track).
type Track struct {
	Name     string
	Schedule *Schedule
}

// Compose merges concurrent tracks into one schedule. Events keep their
// instants — the merged schedule interleaves the tracks in time — and every
// Partition/Heal pair is rewritten to a fresh ID unique across the
// composition, so a track's heal can only ever end that track's partition:
// overlapping windows from different nemeses keep independent lifetimes
// under the injector's common-refinement merge. Within a track, tagged
// pairs keep their pairing and untagged heals pair FIFO with that track's
// untagged partitions (the legacy oldest-first convention, confined to the
// track). An untagged heal with no open partition in its own track is
// dropped rather than left to heal a neighbour's.
func Compose(tracks ...Track) *Schedule {
	out := NewSchedule()
	nextID := 0
	for _, t := range tracks {
		if t.Schedule == nil {
			continue
		}
		idMap := make(map[int]int) // track-local ID -> composed ID
		var fifo []int             // composed IDs of open untagged partitions
		for _, te := range t.Schedule.Events() {
			switch ev := te.Event.(type) {
			case Partition:
				nextID++
				if ev.ID != 0 {
					idMap[ev.ID] = nextID
				} else {
					fifo = append(fifo, nextID)
				}
				out.At(te.At, Partition{Groups: ev.Groups, ID: nextID})
			case Heal:
				if ev.ID != 0 {
					if id, ok := idMap[ev.ID]; ok {
						out.At(te.At, Heal{ID: id})
					}
					continue
				}
				if len(fifo) > 0 {
					out.At(te.At, Heal{ID: fifo[0]})
					fifo = fifo[1:]
				}
			default:
				out.At(te.At, te.Event)
			}
		}
	}
	return out
}

// Atoms decomposes the schedule into its removable units, in time order of
// each unit's first event: a Partition with its matching Heal (paired by
// ID, or FIFO for untagged events), a Crash with the first later Restart of
// the same region, and each LatencySpike/Drop alone (their expiries are
// internal to the injector). An unmatched Heal or Restart forms an atom of
// its own, so flattening the atoms always reproduces the schedule's exact
// event multiset. Shrinkers remove atoms, never lone events, keeping every
// candidate schedule well-formed.
func (s *Schedule) Atoms() [][]TimedEvent {
	var atoms [][]TimedEvent
	add := func(te TimedEvent) int {
		atoms = append(atoms, []TimedEvent{te})
		return len(atoms) - 1
	}
	join := func(idx int, te TimedEvent) { atoms[idx] = append(atoms[idx], te) }

	partByID := make(map[int]int) // Partition.ID -> atom index
	var partFIFO []int            // atom indices of open untagged partitions
	crashFIFO := make(map[netsim.Region][]int)
	for _, te := range s.Events() {
		switch ev := te.Event.(type) {
		case Partition:
			idx := add(te)
			if ev.ID != 0 {
				partByID[ev.ID] = idx
			} else {
				partFIFO = append(partFIFO, idx)
			}
		case Heal:
			switch {
			case ev.ID != 0:
				if idx, ok := partByID[ev.ID]; ok {
					join(idx, te)
					delete(partByID, ev.ID)
				} else {
					add(te)
				}
			case len(partFIFO) > 0:
				join(partFIFO[0], te)
				partFIFO = partFIFO[1:]
			default:
				add(te)
			}
		case Crash:
			crashFIFO[ev.Region] = append(crashFIFO[ev.Region], add(te))
		case Restart:
			if q := crashFIFO[ev.Region]; len(q) > 0 {
				join(q[0], te)
				crashFIFO[ev.Region] = q[1:]
			} else {
				add(te)
			}
		default:
			add(te)
		}
	}
	return atoms
}

// EventJSON is the wire form of one schedule entry, used by hunt repros.
// Kind selects the event type; the remaining fields are per-kind.
type EventJSON struct {
	AtNs   int64      `json:"at_ns"`
	Kind   string     `json:"kind"` // partition, heal, crash, restart, spike, drop
	ID     int        `json:"id,omitempty"`
	Groups [][]string `json:"groups,omitempty"`
	Region string     `json:"region,omitempty"`
	From   string     `json:"from,omitempty"`
	To     string     `json:"to,omitempty"`
	Factor float64    `json:"factor,omitempty"`
	Prob   float64    `json:"prob,omitempty"`
	DurNs  int64      `json:"dur_ns,omitempty"`
}

// TrackJSON is the wire form of a Track.
type TrackJSON struct {
	Name   string      `json:"name"`
	Events []EventJSON `json:"events"`
}

// MarshalEvent converts a schedule entry to its wire form. Internal
// transitions (expiries, quiesce) never appear in a Schedule and are
// rejected.
func MarshalEvent(te TimedEvent) (EventJSON, error) {
	ej := EventJSON{AtNs: int64(te.At)}
	switch ev := te.Event.(type) {
	case Partition:
		ej.Kind = "partition"
		ej.ID = ev.ID
		for _, g := range ev.Groups {
			names := make([]string, len(g))
			for i, r := range g {
				names[i] = string(r)
			}
			ej.Groups = append(ej.Groups, names)
		}
	case Heal:
		ej.Kind = "heal"
		ej.ID = ev.ID
	case Crash:
		ej.Kind = "crash"
		ej.Region = string(ev.Region)
	case Restart:
		ej.Kind = "restart"
		ej.Region = string(ev.Region)
	case LatencySpike:
		ej.Kind = "spike"
		ej.From, ej.To = string(ev.From), string(ev.To)
		ej.Factor = ev.Factor
		ej.DurNs = int64(ev.Duration)
	case Drop:
		ej.Kind = "drop"
		ej.From, ej.To = string(ev.From), string(ev.To)
		ej.Prob = ev.Prob
		ej.DurNs = int64(ev.Duration)
	default:
		return EventJSON{}, fmt.Errorf("faults: event %T has no wire form", te.Event)
	}
	return ej, nil
}

// UnmarshalEvent is the inverse of MarshalEvent.
func UnmarshalEvent(ej EventJSON) (TimedEvent, error) {
	te := TimedEvent{At: time.Duration(ej.AtNs)}
	switch ej.Kind {
	case "partition":
		p := Partition{ID: ej.ID}
		for _, g := range ej.Groups {
			regions := make([]netsim.Region, len(g))
			for i, n := range g {
				regions[i] = netsim.Region(n)
			}
			p.Groups = append(p.Groups, regions)
		}
		te.Event = p
	case "heal":
		te.Event = Heal{ID: ej.ID}
	case "crash":
		te.Event = Crash{Region: netsim.Region(ej.Region)}
	case "restart":
		te.Event = Restart{Region: netsim.Region(ej.Region)}
	case "spike":
		te.Event = LatencySpike{From: netsim.Region(ej.From), To: netsim.Region(ej.To),
			Factor: ej.Factor, Duration: time.Duration(ej.DurNs)}
	case "drop":
		te.Event = Drop{From: netsim.Region(ej.From), To: netsim.Region(ej.To),
			Prob: ej.Prob, Duration: time.Duration(ej.DurNs)}
	default:
		return TimedEvent{}, fmt.Errorf("faults: unknown event kind %q", ej.Kind)
	}
	return te, nil
}

// MarshalTrack converts a track to its wire form.
func MarshalTrack(t Track) (TrackJSON, error) {
	tj := TrackJSON{Name: t.Name, Events: []EventJSON{}}
	if t.Schedule == nil {
		return tj, nil
	}
	for _, te := range t.Schedule.Events() {
		ej, err := MarshalEvent(te)
		if err != nil {
			return TrackJSON{}, fmt.Errorf("track %s: %w", t.Name, err)
		}
		tj.Events = append(tj.Events, ej)
	}
	return tj, nil
}

// UnmarshalTrack is the inverse of MarshalTrack.
func UnmarshalTrack(tj TrackJSON) (Track, error) {
	s := NewSchedule()
	for _, ej := range tj.Events {
		te, err := UnmarshalEvent(ej)
		if err != nil {
			return Track{}, fmt.Errorf("track %s: %w", tj.Name, err)
		}
		s.At(te.At, te.Event)
	}
	return Track{Name: tj.Name, Schedule: s}, nil
}
