package history

import (
	"fmt"
	"sort"
)

// clientGroup is one client's keyed operations across every object, in
// start order — the scope of the cross-object session checker.
type clientGroup struct {
	client string
	ops    []Op
}

// clientGroups partitions keyed operations by client, each group sorted by
// start time. Unkeyed operations are skipped (queue operations have their
// own checkers).
func clientGroups(ops []Op) []clientGroup {
	idx := map[string]int{}
	var groups []clientGroup
	for _, op := range ops {
		if op.Key == "" {
			continue
		}
		i, ok := idx[op.Client]
		if !ok {
			i = len(groups)
			idx[op.Client] = i
			groups = append(groups, clientGroup{client: op.Client})
		}
		groups[i].ops = append(groups[i].ops, op)
	}
	for i := range groups {
		g := &groups[i]
		sort.SliceStable(g.ops, func(a, b int) bool { return g.ops[a].Start < g.ops[b].Start })
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].client < groups[b].client })
	return groups
}

// CheckCrossObjectWFR checks writes-follow-reads ACROSS objects, per
// client: a completed write on any key must commit at a version token at
// least as new as the newest token the client had observed — on any key —
// before issuing it. The per-key CheckWritesFollowReads cannot see the
// ordering between a read of "a" and a subsequent write of "b"; this
// checker can, because it folds one floor over the client's whole keyed
// history.
//
// Precondition: version tokens must be globally comparable across keys.
// That holds for the stores in this repository (the Cassandra model stamps
// every mutation from one cluster-wide counter), and is exactly what makes
// the cross-object statement meaningful: an older token on a different key
// really is an older state of the store. Do not run this checker against a
// binding with per-key version spaces.
//
// As in floorScan, only operations that terminated before this op started
// constrain it (overlapping ops constrain nothing), and each client yields
// at most one (minimal) witness.
func CheckCrossObjectWFR(ops []Op) []Violation {
	var out []Violation
	for _, g := range clientGroups(ops) {
		events := make([]tokenEvent, 0, len(g.ops))
		for _, op := range g.ops {
			if !op.Done {
				continue
			}
			if v, ok := maxViewVersion(op); ok {
				events = append(events, tokenEvent{end: op.End, version: v, op: op})
			}
		}
		sort.SliceStable(events, func(a, b int) bool { return events[a].end < events[b].end })
		var floor uint64
		var floorOp Op
		next := 0
		for _, op := range g.ops {
			for next < len(events) && events[next].end <= op.Start {
				if events[next].version > floor {
					floor = events[next].version
					floorOp = events[next].op
				}
				next++
			}
			if !op.Mutating || !op.Completed() {
				continue
			}
			fv, ok := op.FinalView()
			if ok && fv.Version > 0 && fv.Version < floor {
				out = append(out, Violation{
					Guarantee: "cross-object-writes-follow-reads",
					Client:    g.client,
					Key:       op.Key,
					Detail: fmt.Sprintf("write on %q committed at version %d although the client had already observed version %d on %q",
						op.Key, fv.Version, floor, floorOp.Key),
					Witness: []Op{floorOp, op},
				})
				break
			}
		}
	}
	return out
}
