package history

import (
	"fmt"

	"correctables/internal/core"
)

// CheckCausalCut checks the incremental ladder itself: the views an
// operation delivers must form a causal cut — each successive view is at
// least as strong and at least as new as every view delivered before it —
// and the strong end of the ladder must never regress across a client's
// operations. Concretely, per operation:
//
//   - levels are non-decreasing in delivery order (cache ≤ causal ≤ strong
//     — a Correctable only ever refines upward);
//   - no view carries a version older than a cache-level view the same
//     operation already delivered. The cache view is the client's own
//     memory — a monotone floor of what this client has established — so
//     regressing below it (a causal view older than the cache it claims to
//     refine, say) is a ladder bug, full stop. Replica-served views are
//     deliberately NOT required to be mutually monotone: under retries and
//     partition-delayed quorums a fresh preliminary can legitimately
//     overtake a stale final (the paper makes the final view
//     authoritative, not version-maximal — preliminaries are speculative),
//     and two preliminaries may be served by divergent replicas. Views
//     with version 0 carry no token (absence, or a binding without
//     versions) and are unconstrained.
//
// And per (client, key), session-style: a strong-level view must carry a
// version at least as new as the newest strong-level view delivered by any
// operation that terminated before this one started. Weaker levels are
// deliberately exempt cross-op — preliminary views may regress when served
// by a different replica (that is the session checkers' department, for
// session clients) — so the check is sound for plain, sessionless ladder
// clients too.
//
// The checker is independent of the session machinery: it validates what
// the binding's fan-out delivered, before any session suppression, which
// is exactly where a lagging backup or a mis-merged cache shows up.
func CheckCausalCut(ops []Op) []Violation {
	var out []Violation

	// Intra-op: one pass per op, in the recorder's deterministic order.
	for _, op := range ops {
		if v, ok := intraOpCut(op); ok {
			out = append(out, v)
		}
	}

	// Cross-op strong floor, per (client, key).
	for _, g := range sessionGroups(ops) {
		floorScan(g,
			func(op Op) (uint64, bool) {
				if !op.Completed() {
					return 0, false
				}
				var top uint64
				for _, v := range op.Views {
					if v.Level == core.LevelStrong && v.Version > top {
						top = v.Version
					}
				}
				return top, top > 0
			},
			func(op Op, floor uint64, floorOp Op) bool {
				for _, v := range op.Views {
					if v.Level == core.LevelStrong && v.Version > 0 && v.Version < floor {
						out = append(out, Violation{
							Guarantee: "causal-cut",
							Client:    g.client,
							Key:       g.key,
							Detail: fmt.Sprintf("strong view regressed to version %d after an earlier op's strong view at version %d",
								v.Version, floor),
							Witness: []Op{floorOp, op},
						})
						return true
					}
				}
				return false
			})
	}
	return out
}

// intraOpCut checks one operation's ladder: level order, and the
// cache-view floor on version tokens, over its delivered views. At most
// one (the first) violation is reported.
func intraOpCut(op Op) (Violation, bool) {
	var (
		topLevel   core.Level
		cacheFloor uint64
	)
	for i, v := range op.Views {
		if i > 0 && v.Level < topLevel {
			return Violation{
				Guarantee: "causal-cut",
				Client:    op.Client,
				Key:       op.Key,
				Detail: fmt.Sprintf("ladder delivered %v after %v — levels must be non-decreasing within an op",
					v.Level, topLevel),
				Witness: []Op{op},
			}, true
		}
		if v.Level > topLevel {
			topLevel = v.Level
		}
		if v.Version > 0 && v.Version < cacheFloor {
			return Violation{
				Guarantee: "causal-cut",
				Client:    op.Client,
				Key:       op.Key,
				Detail: fmt.Sprintf("%v view at version %d is older than the op's own cache view at version %d",
					v.Level, v.Version, cacheFloor),
				Witness: []Op{op},
			}, true
		}
		if v.Level == core.LevelCache && v.Version > cacheFloor {
			cacheFloor = v.Version
		}
	}
	return Violation{}, false
}
