package history

import (
	"testing"

	"correctables/internal/core"
)

// ladderOp builds a completed read whose views climb the causal ladder.
func ladderOp(client, key string, start, end int, versions ...uint64) Op {
	levels := []core.Level{core.LevelCache, core.LevelCausal, core.LevelStrong}
	op := Op{Client: client, Name: "get", Key: key, Start: ms(start), End: ms(end), Done: true}
	for i, v := range versions {
		op.Views = append(op.Views, View{
			Level: levels[len(levels)-len(versions)+i], Version: v, At: ms(start + i + 1),
			Final: i == len(versions)-1,
		})
	}
	return op
}

func TestCausalCutIntraOpVersionRegression(t *testing.T) {
	// A causal view older than the cache view it refines: the lagging-backup
	// bug the causal binding's merge fix closes.
	op := ladderOp("alice", "k", 0, 10, 10, 7, 12)
	vs := CheckCausalCut([]Op{op})
	if len(vs) != 1 || vs[0].Guarantee != "causal-cut" || vs[0].Client != "alice" {
		t.Fatalf("violations = %+v", vs)
	}
	// A clean ladder passes, including equal versions at adjacent levels.
	if vs := CheckCausalCut([]Op{ladderOp("alice", "k", 0, 10, 10, 10, 12)}); len(vs) != 0 {
		t.Fatalf("clean ladder flagged: %+v", vs)
	}
}

func TestCausalCutReplicaViewsNotMutuallyConstrained(t *testing.T) {
	// Replica-served views need not be mutually monotone: under retries a
	// fresh weak preliminary can overtake a stale partition-delayed quorum
	// final, and only the cache view (the client's own memory) is a floor.
	op := Op{Client: "alice", Name: "get", Key: "k", Start: ms(0), End: ms(10), Done: true,
		Views: []View{
			{Level: core.LevelWeak, Version: 12, At: ms(1)},
			{Level: core.LevelWeak, Version: 34, At: ms(2)},
			{Level: core.LevelStrong, Version: 12, At: ms(3), Final: true},
		}}
	if vs := CheckCausalCut([]Op{op}); len(vs) != 0 {
		t.Fatalf("stale final after fresher preliminary flagged: %+v", vs)
	}
}

func TestCausalCutZeroVersionsUnconstrained(t *testing.T) {
	// Version 0 carries no token: absence views and versionless bindings
	// neither establish nor violate the cut.
	op := Op{Client: "alice", Name: "get", Key: "k", Start: ms(0), End: ms(10), Done: true,
		Views: []View{
			{Level: core.LevelCache, Version: 0, At: ms(1)},
			{Level: core.LevelCausal, Version: 5, At: ms(2)},
			{Level: core.LevelStrong, Version: 0, At: ms(3), Final: true},
		}}
	if vs := CheckCausalCut([]Op{op}); len(vs) != 0 {
		t.Fatalf("zero-version views flagged: %+v", vs)
	}
}

func TestCausalCutLevelOrder(t *testing.T) {
	op := Op{Client: "alice", Name: "get", Key: "k", Start: ms(0), End: ms(10), Done: true,
		Views: []View{
			{Level: core.LevelStrong, Version: 5, At: ms(1)},
			{Level: core.LevelCausal, Version: 5, At: ms(2), Final: true},
		}}
	vs := CheckCausalCut([]Op{op})
	if len(vs) != 1 || vs[0].Guarantee != "causal-cut" {
		t.Fatalf("downward ladder not flagged: %+v", vs)
	}
}

func TestCausalCutStrongFloorAcrossOps(t *testing.T) {
	// A strong view older than a strong view delivered by an op that
	// terminated before this one started.
	ops := []Op{
		ladderOp("alice", "k", 0, 10, 10),
		ladderOp("alice", "k", 20, 30, 8),
	}
	vs := CheckCausalCut(ops)
	if len(vs) != 1 || vs[0].Guarantee != "causal-cut" || len(vs[0].Witness) != 2 {
		t.Fatalf("strong regression not flagged: %+v", vs)
	}

	// Weaker levels are exempt cross-op: a later cache/causal view may be
	// served by a lagging replica without breaking the cut.
	ops[1] = ladderOp("alice", "k", 20, 30, 3, 12)
	if vs := CheckCausalCut(ops); len(vs) != 0 {
		t.Fatalf("weak-level cross-op view flagged: %+v", vs)
	}

	// Overlapping ops constrain nothing.
	ops[1] = ladderOp("alice", "k", 5, 30, 8)
	if vs := CheckCausalCut(ops); len(vs) != 0 {
		t.Fatalf("overlapping op flagged: %+v", vs)
	}

	// Another client's regression is not alice's.
	ops[1] = ladderOp("bob", "k", 20, 30, 8)
	if vs := CheckCausalCut(ops); len(vs) != 0 {
		t.Fatalf("cross-client strong view flagged: %+v", vs)
	}
}
