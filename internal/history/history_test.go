package history

import (
	"context"
	"strings"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// mkOp builds a completed op with a single final view.
func mkOp(client, name, key string, mutating bool, start, end time.Duration, version uint64) Op {
	return Op{
		Client: client, Name: name, Key: key, Mutating: mutating,
		Start: start, End: end, Done: true,
		Views: []View{{Level: core.LevelStrong, Final: true, Version: version, At: end}},
	}
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestCheckRYWDetectsStaleRead(t *testing.T) {
	ops := []Op{
		mkOp("alice", "put", "k", true, ms(0), ms(10), 5),
		mkOp("alice", "get", "k", false, ms(20), ms(30), 4), // stale!
	}
	vs := CheckRYW(ops)
	if len(vs) != 1 || vs[0].Guarantee != "read-your-writes" || len(vs[0].Witness) != 2 {
		t.Fatalf("violations = %+v", vs)
	}
	// A concurrent (overlapping) read constrains nothing.
	ops[1].Start = ms(5)
	if vs := CheckRYW(ops); len(vs) != 0 {
		t.Fatalf("overlapping read flagged: %+v", vs)
	}
	// Another client's stale read is not alice's RYW problem.
	ops[1] = mkOp("bob", "get", "k", false, ms(20), ms(30), 4)
	if vs := CheckRYW(ops); len(vs) != 0 {
		t.Fatalf("cross-client read flagged: %+v", vs)
	}
}

func TestCheckRYWChecksPreliminaryViews(t *testing.T) {
	read := Op{
		Client: "alice", Name: "get", Key: "k", Start: ms(20), End: ms(40), Done: true,
		Views: []View{
			{Level: core.LevelWeak, Version: 3, At: ms(25)}, // stale prelim
			{Level: core.LevelStrong, Final: true, Version: 5, At: ms(40)},
		},
	}
	ops := []Op{mkOp("alice", "put", "k", true, ms(0), ms(10), 5), read}
	vs := CheckRYW(ops)
	if len(vs) != 1 {
		t.Fatalf("stale preliminary not flagged: %+v", vs)
	}
}

func TestCheckMonotonicReads(t *testing.T) {
	ops := []Op{
		mkOp("alice", "get", "k", false, ms(0), ms(10), 7),
		mkOp("alice", "get", "k", false, ms(20), ms(30), 6), // regressed
	}
	vs := CheckMonotonicReads(ops)
	if len(vs) != 1 || vs[0].Guarantee != "monotonic-reads" {
		t.Fatalf("violations = %+v", vs)
	}
	ops[1].Views[0].Version = 7
	if vs := CheckMonotonicReads(ops); len(vs) != 0 {
		t.Fatalf("same-version read flagged: %+v", vs)
	}
}

func TestCheckWritesFollowReads(t *testing.T) {
	ops := []Op{
		mkOp("alice", "get", "k", false, ms(0), ms(10), 9),
		mkOp("alice", "put", "k", true, ms(20), ms(30), 4), // ordered before what was read
	}
	vs := CheckWritesFollowReads(ops)
	if len(vs) != 1 || vs[0].Guarantee != "writes-follow-reads" {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestSessionCheckersCleanHistory(t *testing.T) {
	ops := []Op{
		mkOp("alice", "put", "k", true, ms(0), ms(10), 1),
		mkOp("alice", "get", "k", false, ms(20), ms(30), 1),
		mkOp("bob", "put", "k", true, ms(15), ms(25), 2),
		mkOp("alice", "get", "k", false, ms(40), ms(50), 2),
		mkOp("bob", "get", "k", false, ms(40), ms(50), 2),
	}
	if vs := CheckSessionGuarantees(ops); len(vs) != 0 {
		t.Fatalf("clean history flagged: %+v", vs)
	}
}

// --- Linearizability ------------------------------------------------------

func linPut(v uint64, call, ret time.Duration) LinOp {
	return LinOp{Kind: "put", Version: v, Call: call, Return: ret}
}
func linGet(v uint64, call, ret time.Duration) LinOp {
	return LinOp{Kind: "get", Version: v, Call: call, Return: ret}
}

func TestRegisterLinearizable(t *testing.T) {
	// Two concurrent puts, reads that agree on one order.
	ops := []LinOp{
		linPut(1, ms(0), ms(20)),
		linPut(2, ms(10), ms(30)),
		linGet(1, ms(35), ms(40)),
		linPut(3, ms(45), ms(50)),
		linGet(3, ms(55), ms(60)),
	}
	// put2 then put1 (concurrent, either order legal), get 1, put 3, get 3.
	if res := CheckLinearizable(RegisterModel{}, ops, 0); !res.Ok {
		t.Fatalf("linearizable history rejected: %+v", res)
	}
}

func TestRegisterNotLinearizable(t *testing.T) {
	// get(2) strictly after put(3) completed, with no later write of 2.
	ops := []LinOp{
		linPut(2, ms(0), ms(10)),
		linPut(3, ms(20), ms(30)),
		linGet(2, ms(40), ms(50)),
	}
	res := CheckLinearizable(RegisterModel{}, ops, 0)
	if res.Ok || res.Inconclusive {
		t.Fatalf("stale read accepted: %+v", res)
	}
}

func TestRegisterAmbiguousWriteMayApply(t *testing.T) {
	// A timed-out put(2) explains a later read of 2.
	ops := []LinOp{
		linPut(1, ms(0), ms(10)),
		{Kind: "put", Version: 2, Call: ms(20), Return: forever, Optional: true},
		linGet(2, ms(40), ms(50)),
	}
	if res := CheckLinearizable(RegisterModel{}, ops, 0); !res.Ok {
		t.Fatalf("ambiguous write not credited: %+v", res)
	}
	// ...and may equally never apply.
	ops = []LinOp{
		linPut(1, ms(0), ms(10)),
		{Kind: "put", Version: 2, Call: ms(20), Return: forever, Optional: true},
		linGet(1, ms(40), ms(50)),
	}
	if res := CheckLinearizable(RegisterModel{}, ops, 0); !res.Ok {
		t.Fatalf("omittable ambiguous write not omitted: %+v", res)
	}
}

func TestQueueLinearizable(t *testing.T) {
	ops := []LinOp{
		{Kind: "enqueue", Elem: "a", Call: ms(0), Return: ms(10)},
		{Kind: "enqueue", Elem: "b", Call: ms(20), Return: ms(30)},
		{Kind: "dequeue", Elem: "a", Call: ms(40), Return: ms(50)},
		{Kind: "dequeue", Elem: "b", Call: ms(60), Return: ms(70)},
		{Kind: "dequeue", Elem: "", Call: ms(80), Return: ms(90)},
	}
	if res := CheckLinearizable(QueueModel{}, ops, 0); !res.Ok {
		t.Fatalf("FIFO history rejected: %+v", res)
	}
}

func TestQueueNotLinearizable(t *testing.T) {
	// b dequeued before a although a was enqueued strictly first.
	ops := []LinOp{
		{Kind: "enqueue", Elem: "a", Call: ms(0), Return: ms(10)},
		{Kind: "enqueue", Elem: "b", Call: ms(20), Return: ms(30)},
		{Kind: "dequeue", Elem: "b", Call: ms(40), Return: ms(50)},
		{Kind: "dequeue", Elem: "a", Call: ms(60), Return: ms(70)},
	}
	res := CheckLinearizable(QueueModel{}, ops, 0)
	if res.Ok || res.Inconclusive {
		t.Fatalf("reordered dequeues accepted: %+v", res)
	}
}

// --- End to end through the invoke pipeline -------------------------------

// brokenBinding is the mutation-test binding: a versioned register store
// whose final reads are served from a replica frozen at an old version —
// exactly the regression the checkers must catch. mode "stale-final" serves
// stale strong reads; mode "honest" behaves.
type brokenBinding struct {
	mode    string
	version uint64
	frozen  uint64 // the stale replica's version
}

func (b *brokenBinding) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelWeak, core.LevelStrong}
}
func (b *brokenBinding) Close() error   { return nil }
func (b *brokenBinding) Versions() bool { return true }

func (b *brokenBinding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	switch op.(type) {
	case binding.Put:
		b.version++
		if b.frozen == 0 {
			b.frozen = b.version // replica froze after the first write
		}
		cb(binding.Result{Level: levels.Strongest(), Version: b.version})
	case binding.Get:
		v := b.version
		if b.mode == "stale-final" {
			v = b.frozen
		}
		cb(binding.Result{Level: levels.Strongest(), Version: v})
	}
}

// TestMutationBrokenBindingDetected is the acceptance mutation test: a
// seeded, deliberately broken binding must be flagged by the checkers,
// while the honest variant stays clean.
func TestMutationBrokenBindingDetected(t *testing.T) {
	run := func(mode string) []Op {
		rec := NewRecorder()
		c := binding.NewClient(&brokenBinding{mode: mode},
			binding.WithObserver(rec), binding.WithLabel("alice"))
		ctx := context.Background()
		for i := 0; i < 3; i++ {
			if _, err := binding.InvokeStrong[binding.Ack](ctx, c, binding.Put{Key: "k", Value: []byte("v")}).Final(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := binding.InvokeStrong[[]byte](ctx, c, binding.Get{Key: "k"}).Final(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return rec.Ops()
	}

	broken := run("stale-final")
	vs := CheckSessionGuarantees(broken)
	if len(vs) == 0 {
		t.Fatal("broken binding not flagged by session checkers")
	}
	if !strings.Contains(vs[0].String(), "read-your-writes") {
		t.Errorf("first violation = %s", vs[0])
	}
	linVs, inconclusive := CheckRegisters(broken, 0)
	if len(linVs) == 0 || len(inconclusive) != 0 {
		t.Fatalf("broken binding not flagged by linearizability checker: %+v (inconclusive %v)", linVs, inconclusive)
	}

	honest := run("honest")
	if vs := CheckSessionGuarantees(honest); len(vs) != 0 {
		t.Fatalf("honest binding flagged: %+v", vs)
	}
	if linVs, _ := CheckRegisters(honest, 0); len(linVs) != 0 {
		t.Fatalf("honest binding flagged by linearizability: %+v", linVs)
	}
}

func TestRecorderSerializeDeterministic(t *testing.T) {
	build := func() []byte {
		rec := NewRecorder()
		info := binding.OpInfo{ID: 1, Client: "c", Name: "get", Key: "k", Start: ms(1)}
		rec.OpStart(info)
		rec.OpView(info, binding.OpView{Level: core.LevelWeak, Version: 3, At: ms(2), Value: []byte("x")})
		rec.OpView(info, binding.OpView{Level: core.LevelStrong, Final: true, Version: 4, At: ms(3), Value: []byte("y")})
		rec.OpEnd(info, ms(3), nil)
		return rec.Serialize()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatalf("serialization not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), "c#1 get(k)") {
		t.Errorf("serialized form = %s", a)
	}
}

// TestRecorderLabelCollisionFailsLoudly: two clients sharing a label (the
// default empty one) must not silently merge event streams — the evicted
// record is closed with an explicit error and Collisions() reports it.
func TestRecorderLabelCollisionFailsLoudly(t *testing.T) {
	rec := NewRecorder()
	info := binding.OpInfo{ID: 1, Name: "get", Key: "k", Start: ms(1)}
	rec.OpStart(info) // client A, op #1
	rec.OpStart(info) // client B, same default label, same per-client ID
	if got := rec.Collisions(); got != 1 {
		t.Fatalf("Collisions = %d, want 1", got)
	}
	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want both records kept", len(ops))
	}
	if !ops[0].Done || !strings.Contains(ops[0].Err, "label") {
		t.Errorf("evicted record = %+v, want an explicit label-collision error", ops[0])
	}
	// Distinct labels never collide.
	rec2 := NewRecorder()
	rec2.OpStart(binding.OpInfo{ID: 1, Client: "a"})
	rec2.OpStart(binding.OpInfo{ID: 1, Client: "b"})
	if got := rec2.Collisions(); got != 0 {
		t.Errorf("distinct labels reported %d collisions", got)
	}
}

func TestQueueHistoryPhantoms(t *testing.T) {
	enq := mkOp("a", "enqueue", "q", true, ms(0), ms(10), 1)
	enq.Views[0].Note = "q-0000000001"
	deqUnknown := mkOp("b", "dequeue", "q", true, ms(20), ms(30), 2)
	deqUnknown.Views[0].Note = "q-0000000002"
	// Without an ambiguous enqueue to blame: a phantom violation.
	_, vs := QueueHistory([]Op{enq, deqUnknown}, "q")
	if len(vs) != 1 {
		t.Fatalf("phantom dequeue not flagged: %+v", vs)
	}
	// With one: attributed, no violation, and the history linearizes.
	ambiguousEnq := Op{Client: "c", Name: "enqueue", Key: "q", Mutating: true,
		Start: ms(5), Done: true, Err: "unreachable"}
	deqKnown := mkOp("b", "dequeue", "q", true, ms(40), ms(50), 3)
	deqKnown.Views[0].Note = "q-0000000001"
	lin, vs := QueueHistory([]Op{enq, ambiguousEnq, deqUnknown, deqKnown}, "q")
	if len(vs) != 0 {
		t.Fatalf("attributable phantom flagged: %+v", vs)
	}
	if res := CheckLinearizable(QueueModel{}, lin, 0); !res.Ok {
		t.Fatalf("attributed history rejected: %+v", res)
	}
}

// TestQueueAmbiguousDequeueMayApply: a dequeue that timed out may still
// have taken effect server-side (its forward delivered after the heal), so
// the checker must allow it to explain a vanished head element — while a
// history with the same gap and no ambiguous dequeue stays a violation.
func TestQueueAmbiguousDequeueMayApply(t *testing.T) {
	enqA := mkOp("a", "enqueue", "q", true, ms(0), ms(10), 1)
	enqA.Views[0].Note = "q-0000000001"
	enqB := mkOp("a", "enqueue", "q", true, ms(20), ms(30), 2)
	enqB.Views[0].Note = "q-0000000002"
	// The head vanished: only b is ever dequeued.
	deqB := mkOp("b", "dequeue", "q", true, ms(60), ms(70), 3)
	deqB.Views[0].Note = "q-0000000002"

	lin, vs := QueueHistory([]Op{enqA, enqB, deqB}, "q")
	if len(vs) != 0 {
		t.Fatalf("spurious phantoms: %+v", vs)
	}
	if res := CheckLinearizable(QueueModel{}, lin, 0); res.Ok || res.Inconclusive {
		t.Fatalf("vanished head accepted without an ambiguous dequeue: %+v", res)
	}

	// A timed-out dequeue covering the gap makes the history linearizable.
	ambiguousDeq := Op{Client: "c", Name: "dequeue", Key: "q", Mutating: true,
		Start: ms(40), Done: true, Err: "unreachable"}
	lin, vs = QueueHistory([]Op{enqA, enqB, ambiguousDeq, deqB}, "q")
	if len(vs) != 0 {
		t.Fatalf("spurious phantoms: %+v", vs)
	}
	if res := CheckLinearizable(QueueModel{}, lin, 0); !res.Ok {
		t.Fatalf("ambiguous dequeue not applied: %+v", res)
	}
}
