package history

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Violation is one detected consistency violation, carrying the minimal
// witness subsequence of the history that exhibits it. Together with the
// run's seed (deterministic replay) a violation is a complete repro.
type Violation struct {
	// Guarantee names the violated property ("read-your-writes",
	// "monotonic-reads", "writes-follow-reads", "linearizability").
	Guarantee string
	// Client is the session the violation belongs to ("" for whole-object
	// properties like linearizability).
	Client string
	// Key is the replicated object.
	Key string
	// Detail explains the violation in one sentence.
	Detail string
	// Witness is the minimal op subsequence exhibiting the violation.
	Witness []Op
}

// String renders the violation with its witness, one op per line.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation", v.Guarantee)
	if v.Client != "" {
		fmt.Fprintf(&b, " (client %s)", v.Client)
	}
	if v.Key != "" {
		fmt.Fprintf(&b, " on %q", v.Key)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	for i := range v.Witness {
		fmt.Fprintf(&b, "\n    %s", v.Witness[i].String())
	}
	return b.String()
}

// sessionGroup is one client's operations on one object, in start order.
type sessionGroup struct {
	client string
	key    string
	ops    []Op
}

// sessionGroups partitions keyed operations by (client, key), each group
// sorted by start time. Unkeyed operations are skipped.
func sessionGroups(ops []Op) []sessionGroup {
	idx := map[[2]string]int{}
	var groups []sessionGroup
	for _, op := range ops {
		if op.Key == "" {
			continue
		}
		gk := [2]string{op.Client, op.Key}
		i, ok := idx[gk]
		if !ok {
			i = len(groups)
			idx[gk] = i
			groups = append(groups, sessionGroup{client: op.Client, key: op.Key})
		}
		groups[i].ops = append(groups[i].ops, op)
	}
	for i := range groups {
		g := &groups[i]
		sort.SliceStable(g.ops, func(a, b int) bool { return g.ops[a].Start < g.ops[b].Start })
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].client != groups[b].client {
			return groups[a].client < groups[b].client
		}
		return groups[a].key < groups[b].key
	})
	return groups
}

// tokenEvent is a version token established by an op that terminated at
// End; it constrains only operations that start at or after End ("earlier"
// in the session sense — sequential sessions satisfy this for every
// consecutive pair, overlapping ops constrain nothing).
type tokenEvent struct {
	end     time.Duration
	version uint64
	op      Op
}

// floorScan folds completed-before-start token events over a group's ops:
// for each op (in start order) it calls check with the highest constraint
// established by ops that terminated before this one started, then emit to
// (possibly) contribute the op's own event. It stops after check reports a
// violation, so each group yields at most one (minimal) witness.
func floorScan(g sessionGroup,
	emit func(op Op) (uint64, bool),
	check func(op Op, floor uint64, floorOp Op) bool,
) {
	events := make([]tokenEvent, 0, len(g.ops))
	for _, op := range g.ops {
		if !op.Done {
			continue
		}
		if v, ok := emit(op); ok {
			events = append(events, tokenEvent{end: op.End, version: v, op: op})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].end < events[b].end })
	var floor uint64
	var floorOp Op
	next := 0
	for _, op := range g.ops {
		for next < len(events) && events[next].end <= op.Start {
			if events[next].version > floor {
				floor = events[next].version
				floorOp = events[next].op
			}
			next++
		}
		if check(op, floor, floorOp) {
			return
		}
	}
}

// CheckRYW checks read-your-writes per (client, key): every view delivered
// to an operation must carry a version at least as new as the newest write
// this client completed on the key before the operation started. At most
// one violation (the first) is reported per group.
func CheckRYW(ops []Op) []Violation {
	var out []Violation
	for _, g := range sessionGroups(ops) {
		floorScan(g,
			func(op Op) (uint64, bool) {
				if !op.Mutating || !op.Completed() {
					return 0, false
				}
				fv, ok := op.FinalView()
				return fv.Version, ok
			},
			func(op Op, floor uint64, floorOp Op) bool {
				for _, v := range op.Views {
					if v.Version < floor {
						out = append(out, Violation{
							Guarantee: "read-your-writes",
							Client:    g.client,
							Key:       g.key,
							Detail: fmt.Sprintf("%s view at version %d, but this client's write at version %d completed before the op started",
								v.Level, v.Version, floor),
							Witness: []Op{floorOp, op},
						})
						return true
					}
				}
				return false
			})
	}
	return out
}

// maxViewVersion is the shared "what did this op observe" emit rule of the
// monotonic-reads and writes-follow-reads checkers: the newest version
// among the op's delivered views.
func maxViewVersion(op Op) (uint64, bool) {
	var top uint64
	for _, v := range op.Views {
		if v.Version > top {
			top = v.Version
		}
	}
	return top, top > 0
}

// CheckMonotonicReads checks monotonic reads per (client, key): no view may
// carry a version older than the newest version any earlier (terminated
// before this op started) operation of the same client delivered for the
// key.
func CheckMonotonicReads(ops []Op) []Violation {
	var out []Violation
	for _, g := range sessionGroups(ops) {
		floorScan(g,
			maxViewVersion,
			func(op Op, floor uint64, floorOp Op) bool {
				for _, v := range op.Views {
					if v.Version < floor {
						out = append(out, Violation{
							Guarantee: "monotonic-reads",
							Client:    g.client,
							Key:       g.key,
							Detail: fmt.Sprintf("%s view regressed to version %d after an earlier op observed version %d",
								v.Level, v.Version, floor),
							Witness: []Op{floorOp, op},
						})
						return true
					}
				}
				return false
			})
	}
	return out
}

// CheckWritesFollowReads checks writes-follow-reads per (client, key): a
// completed write must be ordered (by version token) after every state the
// client had observed for the key before issuing it.
func CheckWritesFollowReads(ops []Op) []Violation {
	var out []Violation
	for _, g := range sessionGroups(ops) {
		floorScan(g,
			maxViewVersion,
			func(op Op, floor uint64, floorOp Op) bool {
				if !op.Mutating || !op.Completed() {
					return false
				}
				fv, ok := op.FinalView()
				if ok && fv.Version > 0 && fv.Version < floor {
					out = append(out, Violation{
						Guarantee: "writes-follow-reads",
						Client:    g.client,
						Key:       g.key,
						Detail: fmt.Sprintf("write committed at version %d although the client had already observed version %d",
							fv.Version, floor),
						Witness: []Op{floorOp, op},
					})
					return true
				}
				return false
			})
	}
	return out
}

// CheckSessionGuarantees runs all three session checkers.
func CheckSessionGuarantees(ops []Op) []Violation {
	var out []Violation
	out = append(out, CheckRYW(ops)...)
	out = append(out, CheckMonotonicReads(ops)...)
	out = append(out, CheckWritesFollowReads(ops)...)
	return out
}
