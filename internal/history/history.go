// Package history records client-side operation histories through the
// binding.Observer hook and checks them: session guarantees
// (read-your-writes, monotonic reads, writes-follow-reads) by comparing
// the version tokens bindings stamp on every view, and linearizability
// (Wing & Gong) against sequential object models for registers and queues.
//
// The recorder attaches to clients with binding.WithObserver; everything it
// sees — operation identity, per-view consistency levels and version
// tokens, model-time timestamps — is deterministic under a VirtualClock,
// so the same seed produces a byte-identical serialized history, and any
// violation is a complete reproduction recipe: the seed plus the minimal
// witness subsequence the checkers report ("On the Limits of Causal
// Observation": consistency checked purely from recorded client-side
// observations, which a deterministic simulator captures completely).
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// View is one recorded view of an operation.
type View struct {
	// Level is the consistency level the view satisfied.
	Level core.Level
	// Final marks the closing view.
	Final bool
	// Version is the view's per-object version token (binding.Result).
	Version uint64
	// At is the model-time delivery instant.
	At time.Duration
	// Note is a compact rendering of the view value: the element identity
	// of queue items (the queue checkers' input), a short printable prefix
	// of byte values, "" otherwise.
	Note string
}

// noteOf compacts a view value into its recorded note.
func noteOf(v any) string {
	switch val := v.(type) {
	case binding.Item:
		if !val.Exists {
			return ""
		}
		return val.ID
	case []byte:
		const max = 16
		if len(val) > max {
			return fmt.Sprintf("%.16s…(%dB)", val, len(val))
		}
		return string(val)
	default:
		return ""
	}
}

// Op is one recorded operation: identity, interval, outcome, views.
type Op struct {
	// ID is the per-client invocation sequence number.
	ID uint64
	// Client is the issuing client's label (binding.WithLabel).
	Client string
	// Name is the operation name ("get", "put", "enqueue", ...).
	Name string
	// Key is the replicated-object identity ("" for unkeyed operations).
	Key string
	// Mutating classifies the operation as state-changing.
	Mutating bool
	// Start is the model-time invocation instant.
	Start time.Duration
	// End is the model-time terminal instant (0 if the run ended with the
	// operation still in flight — see Done).
	End time.Duration
	// Err is the terminal error text ("" for success). A non-empty Err on
	// a mutating operation means the mutation is ambiguous: it may or may
	// not have taken effect (checkers treat it accordingly).
	Err string
	// Done reports that a terminal transition was observed.
	Done bool
	// Views are the delivered views in delivery order.
	Views []View
}

// Completed reports a successfully finished operation.
func (o *Op) Completed() bool { return o.Done && o.Err == "" }

// FinalView returns the closing view, if any.
func (o *Op) FinalView() (View, bool) {
	for _, v := range o.Views {
		if v.Final {
			return v, true
		}
	}
	return View{}, false
}

// String renders the operation as one line of the serialized history.
func (o *Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d %s(%s) [%v,", o.Client, o.ID, o.Name, o.Key, o.Start)
	if o.Done {
		fmt.Fprintf(&b, "%v]", o.End)
	} else {
		b.WriteString("...]")
	}
	for _, v := range o.Views {
		fmt.Fprintf(&b, " %v:v%d@%v", v.Level, v.Version, v.At)
		if v.Note != "" {
			fmt.Fprintf(&b, "=%s", v.Note)
		}
		if v.Final {
			b.WriteString("!")
		}
	}
	if o.Err != "" {
		fmt.Fprintf(&b, " err=%q", o.Err)
	}
	return b.String()
}

// opRef identifies an in-flight operation within the recorder.
type opRef struct {
	client string
	id     binding.OpID
}

// Recorder is a binding.Observer that records complete per-operation
// histories. One recorder may serve any number of clients — but each MUST
// carry a distinct binding.WithLabel: in-flight operations are routed by
// (label, per-client OpID), so two unlabeled clients would merge each
// other's events. The recorder detects that collision instead of silently
// corrupting the history: the evicted record is closed with a label-
// collision error and Collisions() reports the count (checkers would
// otherwise verify interleaved garbage). Under a VirtualClock all
// callbacks are totally ordered, so the recorded op order (and hence
// Serialize output) is deterministic per seed.
type Recorder struct {
	mu         sync.Mutex
	ops        []*Op
	open       map[opRef]*Op
	collisions int
}

// errLabelCollision marks a record evicted by a same-ref OpStart.
const errLabelCollision = "history: evicted by a second client with the same label (give each client a distinct binding.WithLabel)"

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: map[opRef]*Op{}}
}

var _ binding.Observer = (*Recorder)(nil)

// Collisions reports how many in-flight records were evicted because two
// clients shared a label. Any nonzero count means the history is not
// trustworthy; fix the labels.
func (r *Recorder) Collisions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.collisions
}

// OpStart implements binding.Observer.
func (r *Recorder) OpStart(op binding.OpInfo) {
	rec := &Op{
		ID:       uint64(op.ID),
		Client:   op.Client,
		Name:     op.Name,
		Key:      op.Key,
		Mutating: op.Mutating,
		Start:    op.Start,
	}
	ref := opRef{op.Client, op.ID}
	r.mu.Lock()
	if old := r.open[ref]; old != nil {
		// Two clients share a label: fail loudly instead of merging their
		// event streams into one record.
		old.Done = true
		old.Err = errLabelCollision
		r.collisions++
	}
	r.ops = append(r.ops, rec)
	r.open[ref] = rec
	r.mu.Unlock()
}

// OpView implements binding.Observer.
func (r *Recorder) OpView(op binding.OpInfo, v binding.OpView) {
	r.mu.Lock()
	if rec := r.open[opRef{op.Client, op.ID}]; rec != nil {
		rec.Views = append(rec.Views, View{
			Level: v.Level, Final: v.Final, Version: v.Version, At: v.At, Note: noteOf(v.Value),
		})
	}
	r.mu.Unlock()
}

// OpEnd implements binding.Observer.
func (r *Recorder) OpEnd(op binding.OpInfo, at time.Duration, err error) {
	r.mu.Lock()
	ref := opRef{op.Client, op.ID}
	if rec := r.open[ref]; rec != nil {
		rec.Done = true
		rec.End = at
		if err != nil {
			rec.Err = err.Error()
		}
		delete(r.open, ref)
	}
	r.mu.Unlock()
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Ops returns a deep copy of the recorded operations in a deterministic
// order: by start time, then client, then per-client sequence number.
// (The raw append order is already deterministic under a VirtualClock;
// the explicit sort makes the contract independent of recording order.)
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	out := make([]Op, len(r.ops))
	for i, op := range r.ops {
		out[i] = *op
		out[i].Views = append([]View(nil), op.Views...)
	}
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Serialize renders the full history as deterministic text, one operation
// per line — the byte-identical-replay artifact.
func (r *Recorder) Serialize() []byte {
	return SerializeOps(r.Ops())
}

// SerializeOps renders an already-snapshotted history (as returned by
// Ops); callers holding a snapshot avoid a second copy-and-sort.
func SerializeOps(ops []Op) []byte {
	var b strings.Builder
	for i := range ops {
		b.WriteString(ops[i].String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}
