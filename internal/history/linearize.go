package history

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LinOp is one operation of a linearizability history: an invocation
// interval plus the model-specific input/output.
type LinOp struct {
	// Kind is the operation kind the model interprets ("put", "get",
	// "enqueue", "dequeue").
	Kind string
	// Version is the register token written/read (register model).
	Version uint64
	// Elem is the queue element identity (queue model; "" for an
	// empty-queue dequeue observation).
	Elem string
	// Call and Return bound the operation's real-time interval. Incomplete
	// operations have Return = forever.
	Call   time.Duration
	Return time.Duration
	// Optional marks an ambiguous operation (a mutation that timed out and
	// may or may not have taken effect): the search may apply it anywhere
	// after Call or omit it entirely.
	Optional bool
	// Source is the recorded op behind this entry (witness rendering).
	Source Op
}

// forever is the Return of incomplete operations.
const forever = time.Duration(math.MaxInt64)

// Model is a sequential object specification over canonically encoded
// states. Encodings must be canonical: equal states encode equally (the
// search memoizes on them).
type Model interface {
	// Init returns the initial state encoding.
	Init() string
	// Step applies op to state, reporting the successor state and whether
	// the op is legal there.
	Step(state string, op *LinOp) (string, bool)
}

// LinResult is the outcome of a linearizability check.
type LinResult struct {
	// Ok reports that a linearization exists.
	Ok bool
	// Inconclusive reports that the search exhausted its budget before
	// deciding (callers should report it, but it is not a violation).
	Inconclusive bool
	// Witness is, for violations, a minimal frontier: the operations that
	// could not be linearized past the deepest consistent prefix.
	Witness []Op
}

// defaultBudget bounds the search in visited configurations; histories
// from the fault studies are far below it, pathological ones degrade to
// Inconclusive instead of hanging.
const defaultBudget = 2_000_000

// CheckLinearizable runs the Wing & Gong algorithm (with Lowe's
// memoization of (linearized-set, state) configurations) over one object's
// history. budget <= 0 selects the default.
func CheckLinearizable(m Model, ops []LinOp, budget int) LinResult {
	if budget <= 0 {
		budget = defaultBudget
	}
	n := len(ops)
	if n == 0 {
		return LinResult{Ok: true}
	}
	if n > 512 {
		// Far beyond what the search can decide in any budget; say so
		// instead of burning the budget.
		return LinResult{Inconclusive: true}
	}
	sort.SliceStable(ops, func(a, b int) bool { return ops[a].Call < ops[b].Call })

	linearized := make([]bool, n)
	words := (n + 63) / 64
	bits := make([]uint64, words)
	memo := map[string]bool{}
	visited := 0
	best := -1
	var bestFrontier []int

	memoKey := func(state string) string {
		var b strings.Builder
		b.Grow(words*8 + len(state))
		for _, w := range bits {
			var buf [8]byte
			for i := 0; i < 8; i++ {
				buf[i] = byte(w >> (8 * i))
			}
			b.Write(buf[:])
		}
		b.WriteString(state)
		return b.String()
	}

	var search func(state string, done int) bool
	search = func(state string, done int) bool {
		if done == n {
			return true
		}
		if visited++; visited > budget {
			return false
		}
		key := memoKey(state)
		if memo[key] {
			return false
		}
		memo[key] = true

		// An op may be linearized next iff no other pending op returned
		// before its call (Wing & Gong's minimality rule).
		minReturn := forever
		for i := 0; i < n; i++ {
			if !linearized[i] && ops[i].Return < minReturn {
				minReturn = ops[i].Return
			}
		}
		if done > best {
			best = done
			bestFrontier = bestFrontier[:0]
			for i := 0; i < n; i++ {
				if !linearized[i] && ops[i].Call <= minReturn {
					bestFrontier = append(bestFrontier, i)
				}
			}
		}
		for i := 0; i < n; i++ {
			if linearized[i] || ops[i].Call > minReturn {
				continue
			}
			linearized[i] = true
			bits[i/64] |= 1 << (i % 64)
			if next, ok := m.Step(state, &ops[i]); ok && search(next, done+1) {
				return true
			}
			if ops[i].Optional && search(state, done+1) {
				// Ambiguous op omitted: it never took effect.
				return true
			}
			linearized[i] = false
			bits[i/64] &^= 1 << (i % 64)
		}
		return false
	}

	if search(m.Init(), 0) {
		return LinResult{Ok: true}
	}
	if visited > budget {
		return LinResult{Inconclusive: true}
	}
	res := LinResult{}
	for _, i := range bestFrontier {
		res.Witness = append(res.Witness, ops[i].Source)
	}
	return res
}

// --- Register model -------------------------------------------------------

// RegisterModel is a single-object last-write-wins register over version
// tokens: a put installs its version, a get is legal iff it returns the
// currently installed version (0 = initial absence).
type RegisterModel struct{}

// Init implements Model.
func (RegisterModel) Init() string { return "0" }

// Step implements Model.
func (RegisterModel) Step(state string, op *LinOp) (string, bool) {
	switch op.Kind {
	case "put":
		return strconv.FormatUint(op.Version, 10), true
	case "get":
		return state, state == strconv.FormatUint(op.Version, 10)
	default:
		return state, false
	}
}

// --- Queue model ----------------------------------------------------------

// QueueModel is a FIFO queue over element identities: enqueue appends,
// dequeue removes the head (or observes emptiness).
type QueueModel struct{}

// anyElem marks an ambiguous dequeue whose result nobody observed (the
// client timed out): if linearized, it removes whatever the head is. The
// NUL prefix keeps it disjoint from real element identities.
const anyElem = "\x00any"

// Init implements Model.
func (QueueModel) Init() string { return "" }

// Step implements Model.
func (QueueModel) Step(state string, op *LinOp) (string, bool) {
	switch op.Kind {
	case "enqueue":
		if state == "" {
			return op.Elem, true
		}
		return state + "," + op.Elem, true
	case "dequeue":
		if op.Elem == anyElem {
			// A timed-out dequeue that did take effect removed the head of
			// whatever the queue held (a no-op on an empty queue).
			_, rest, _ := strings.Cut(state, ",")
			return rest, true
		}
		if op.Elem == "" {
			// Observed empty: legal only on the empty queue.
			return state, state == ""
		}
		head, rest, _ := strings.Cut(state, ",")
		return rest, head == op.Elem
	default:
		return state, false
	}
}

// --- History conversion ---------------------------------------------------

// keyedOps selects a key's operations from a history.
func keyedOps(ops []Op, key string) []Op {
	var out []Op
	for _, op := range ops {
		if op.Key == key {
			out = append(out, op)
		}
	}
	return out
}

// Keys lists the distinct object keys in a history, sorted.
func Keys(ops []Op) []string {
	seen := map[string]bool{}
	var keys []string
	for _, op := range ops {
		if op.Key != "" && !seen[op.Key] {
			seen[op.Key] = true
			keys = append(keys, op.Key)
		}
	}
	sort.Strings(keys)
	return keys
}

// phantomViolation reports an output no recorded mutation could explain.
func phantomViolation(key, detail string, witness ...Op) Violation {
	return Violation{Guarantee: "linearizability", Key: key, Detail: detail, Witness: witness}
}

// RegisterHistory converts one key's recorded get/put operations into a
// register linearizability history over final (strong) views. Weaker views
// are deliberately excluded: preliminary staleness is the paper's selling
// point, not a linearizability bug. Reads returning versions no recorded
// write produced are attributed to ambiguous (timed-out) writes when one
// exists — a write that died on the client side may still have taken
// effect — and reported as phantom-write violations otherwise. Ambiguous
// writes whose version nobody read are omitted: since no read depends on
// them, excluding them can only under-approximate, never produce a false
// violation.
func RegisterHistory(ops []Op, key string) ([]LinOp, []Violation) {
	var lin []LinOp
	var violations []Violation
	known := map[uint64]bool{0: true}
	var ambiguous []Op // incomplete puts, in start order
	for _, op := range keyedOps(ops, key) {
		switch op.Name {
		case "put":
			if op.Completed() {
				if fv, ok := op.FinalView(); ok {
					known[fv.Version] = true
					lin = append(lin, LinOp{
						Kind: "put", Version: fv.Version,
						Call: op.Start, Return: op.End, Source: op,
					})
				}
			} else {
				ambiguous = append(ambiguous, op)
			}
		case "get":
			if !op.Completed() {
				continue // delivered no final view; constrains nothing
			}
			if fv, ok := op.FinalView(); ok {
				lin = append(lin, LinOp{
					Kind: "get", Version: fv.Version,
					Call: op.Start, Return: op.End, Source: op,
				})
			}
		}
	}
	// Phantom writes: versions that were read but never acknowledged to a
	// recorded writer. Greedily blame ambiguous puts in start order
	// (version tokens are issued in coordinator-apply order, which tracks
	// submission order).
	var unknown []uint64
	seenUnknown := map[uint64]bool{}
	for _, l := range lin {
		if l.Kind == "get" && !known[l.Version] && !seenUnknown[l.Version] {
			seenUnknown[l.Version] = true
			unknown = append(unknown, l.Version)
		}
	}
	sort.Slice(unknown, func(a, b int) bool { return unknown[a] < unknown[b] })
	sort.SliceStable(ambiguous, func(a, b int) bool { return ambiguous[a].Start < ambiguous[b].Start })
	for i, v := range unknown {
		if i < len(ambiguous) {
			// All phantoms use the earliest ambiguous start as their call
			// point: the version-to-write pairing is a heuristic (tokens
			// are issued at apply time, which can reorder against
			// submission for stalled writes), and an under-constrained
			// call can only admit more linearizations, never fabricate a
			// violation.
			lin = append(lin, LinOp{
				Kind: "put", Version: v,
				Call: ambiguous[0].Start, Return: forever, Optional: true,
				Source: ambiguous[i],
			})
			continue
		}
		violations = append(violations, phantomViolation(key,
			fmt.Sprintf("read returned version %d, which no recorded write (completed or in-flight) produced", v)))
	}
	return lin, violations
}

// QueueHistory converts one queue's recorded enqueue/dequeue operations
// into a FIFO linearizability history over final views. Element identities
// come from the recorded view notes (binding.Item.ID). Dequeued elements
// no completed enqueue produced are attributed to ambiguous enqueues when
// possible, phantom violations otherwise. Timed-out dequeues are ambiguous
// too — one that took effect server-side after the client gave up (a
// forward stalled by a partition and delivered at the heal, say) removed
// an element nobody observed — so they enter the history as optional
// wildcard removals the search may apply anywhere after their call or omit
// entirely.
func QueueHistory(ops []Op, queue string) ([]LinOp, []Violation) {
	var lin []LinOp
	var violations []Violation
	known := map[string]bool{}
	var ambiguous []Op
	for _, op := range keyedOps(ops, queue) {
		fv, hasFinal := op.FinalView()
		switch op.Name {
		case "enqueue":
			if op.Completed() && hasFinal {
				known[fv.Note] = true
				lin = append(lin, LinOp{
					Kind: "enqueue", Elem: fv.Note,
					Call: op.Start, Return: op.End, Source: op,
				})
			} else if !op.Completed() {
				ambiguous = append(ambiguous, op)
			}
		case "dequeue":
			if op.Completed() && hasFinal {
				lin = append(lin, LinOp{
					Kind: "dequeue", Elem: fv.Note,
					Call: op.Start, Return: op.End, Source: op,
				})
			} else if !op.Completed() {
				lin = append(lin, LinOp{
					Kind: "dequeue", Elem: anyElem,
					Call: op.Start, Return: forever, Optional: true, Source: op,
				})
			}
		}
	}
	// Phantom enqueues: dequeued element identities nobody completed an
	// enqueue for. Elements are sequential znode names, so identity order
	// tracks commit order; blame ambiguous enqueues in start order.
	var unknown []string
	seenUnknown := map[string]bool{}
	for _, l := range lin {
		if l.Kind == "dequeue" && l.Elem != "" && l.Elem != anyElem && !known[l.Elem] && !seenUnknown[l.Elem] {
			seenUnknown[l.Elem] = true
			unknown = append(unknown, l.Elem)
		}
	}
	sort.Strings(unknown)
	sort.SliceStable(ambiguous, func(a, b int) bool { return ambiguous[a].Start < ambiguous[b].Start })
	for i, elem := range unknown {
		if i < len(ambiguous) {
			// Earliest ambiguous start as the call point; see
			// RegisterHistory for why this is the sound choice.
			lin = append(lin, LinOp{
				Kind: "enqueue", Elem: elem,
				Call: ambiguous[0].Start, Return: forever, Optional: true,
				Source: ambiguous[i],
			})
			continue
		}
		violations = append(violations, phantomViolation(queue,
			fmt.Sprintf("dequeue returned element %q, which no recorded enqueue (completed or in-flight) produced", elem)))
	}
	return lin, violations
}

// CheckRegisters runs the register linearizability check per key over a
// history of get/put operations, returning all violations (including
// phantom reads) and the keys whose search was inconclusive.
func CheckRegisters(ops []Op, budget int) ([]Violation, []string) {
	var out []Violation
	var inconclusive []string
	for _, key := range Keys(ops) {
		lin, phantoms := RegisterHistory(ops, key)
		out = append(out, phantoms...)
		res := CheckLinearizable(RegisterModel{}, lin, budget)
		if res.Inconclusive {
			inconclusive = append(inconclusive, key)
			continue
		}
		if !res.Ok {
			out = append(out, Violation{
				Guarantee: "linearizability",
				Key:       key,
				Detail:    fmt.Sprintf("no linearization of %d register ops exists; frontier ops follow", len(lin)),
				Witness:   res.Witness,
			})
		}
	}
	return out, inconclusive
}

// CheckQueues runs the FIFO-queue linearizability check per queue over a
// history of enqueue/dequeue operations.
func CheckQueues(ops []Op, budget int) ([]Violation, []string) {
	var out []Violation
	var inconclusive []string
	for _, queue := range Keys(ops) {
		lin, phantoms := QueueHistory(ops, queue)
		out = append(out, phantoms...)
		res := CheckLinearizable(QueueModel{}, lin, budget)
		if res.Inconclusive {
			inconclusive = append(inconclusive, queue)
			continue
		}
		if !res.Ok {
			out = append(out, Violation{
				Guarantee: "linearizability",
				Key:       queue,
				Detail:    fmt.Sprintf("no linearization of %d queue ops exists; frontier ops follow", len(lin)),
				Witness:   res.Witness,
			})
		}
	}
	return out, inconclusive
}
