package history

import (
	"strings"
	"testing"
)

// crossOp builds one completed keyed op for the cross-object checker tests.
func crossOp(client, key string, mutating bool, start, end int, version uint64) Op {
	return Op{
		Client:   client,
		Name:     map[bool]string{true: "put", false: "get"}[mutating],
		Key:      key,
		Mutating: mutating,
		Start:    ms(start),
		End:      ms(end),
		Done:     true,
		Views:    []View{{Final: true, Version: version, At: ms(end)}},
	}
}

func TestCrossObjectWFRDetectsStaleWriteOnOtherKey(t *testing.T) {
	ops := []Op{
		crossOp("c1", "a", false, 0, 10, 40), // read a, observes token 40
		crossOp("c1", "b", true, 20, 30, 7),  // then writes b at token 7
	}
	vs := CheckCrossObjectWFR(ops)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly 1", vs)
	}
	v := vs[0]
	if v.Guarantee != "cross-object-writes-follow-reads" || v.Client != "c1" || v.Key != "b" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, `"a"`) || !strings.Contains(v.Detail, `"b"`) {
		t.Errorf("detail does not name both keys: %s", v.Detail)
	}
	if len(v.Witness) != 2 || v.Witness[0].Key != "a" || v.Witness[1].Key != "b" {
		t.Errorf("witness = %v", v.Witness)
	}
	// The per-key checker is blind to exactly this history: each key has a
	// single op, so no per-key floor ever forms.
	if perKey := CheckWritesFollowReads(ops); len(perKey) != 0 {
		t.Errorf("per-key WFR unexpectedly flagged the cross-key history: %v", perKey)
	}
}

func TestCrossObjectWFRAcceptsOrderedTokens(t *testing.T) {
	ops := []Op{
		crossOp("c1", "a", false, 0, 10, 40),
		crossOp("c1", "b", true, 20, 30, 41), // newer token: fine
		crossOp("c1", "c", false, 40, 50, 41),
		crossOp("c1", "a", true, 60, 70, 55),
	}
	if vs := CheckCrossObjectWFR(ops); len(vs) != 0 {
		t.Errorf("clean history flagged: %v", vs)
	}
}

func TestCrossObjectWFROverlappingOpsConstrainNothing(t *testing.T) {
	// The read of "a" ends after the write of "b" starts: no session order
	// between them, so the old token on the write is fine.
	ops := []Op{
		crossOp("c1", "a", false, 0, 25, 40),
		crossOp("c1", "b", true, 20, 30, 7),
	}
	if vs := CheckCrossObjectWFR(ops); len(vs) != 0 {
		t.Errorf("overlapping ops flagged: %v", vs)
	}
}

func TestCrossObjectWFRScopesPerClient(t *testing.T) {
	// c1 observed token 40; c2's stale write is a different session and
	// carries no WFR obligation toward c1's reads.
	ops := []Op{
		crossOp("c1", "a", false, 0, 10, 40),
		crossOp("c2", "b", true, 20, 30, 7),
	}
	if vs := CheckCrossObjectWFR(ops); len(vs) != 0 {
		t.Errorf("cross-client history flagged: %v", vs)
	}
}

func TestCrossObjectWFRSkipsFailedAndUnkeyed(t *testing.T) {
	failed := crossOp("c1", "b", true, 20, 30, 7)
	failed.Err = "timeout"
	unkeyed := crossOp("c1", "", true, 40, 50, 3)
	inflight := crossOp("c1", "b", true, 60, 0, 0)
	inflight.Done = false
	inflight.Views = nil
	ops := []Op{
		crossOp("c1", "a", false, 0, 10, 40),
		failed, unkeyed, inflight,
	}
	if vs := CheckCrossObjectWFR(ops); len(vs) != 0 {
		t.Errorf("ambiguous/unkeyed ops flagged: %v", vs)
	}
}
