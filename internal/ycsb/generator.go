// Package ycsb reimplements the parts of the Yahoo! Cloud Serving Benchmark
// the paper's evaluation uses (§6): workloads A (50:50 read/update),
// B (95:5) and C (read-only), with the Zipfian and Latest request
// distributions, a closed-loop multi-threaded runner, and the default
// parameters (Zipfian constant 0.99, keys "user<N>").
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync/atomic"
)

// Generator produces key indices in [0, n).
type Generator interface {
	// Next returns the next key index using the provided per-thread RNG.
	Next(rng *rand.Rand) int
}

// UniformGenerator picks keys uniformly at random.
type UniformGenerator struct {
	n int
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(n int) *UniformGenerator { return &UniformGenerator{n: n} }

// Next implements Generator.
func (g *UniformGenerator) Next(rng *rand.Rand) int { return rng.Intn(g.n) }

// ZipfianGenerator implements Gray et al.'s quick Zipfian sampling, as used
// by YCSB (constant 0.99 by default). Popular items are the low indices.
// The generator is stateless after construction and safe for concurrent use.
type ZipfianGenerator struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// YCSB's ScrambledZipfianGenerator samples Zipf over a fixed 10-billion
// item space (with a precomputed zeta value, since summing 10^10 terms is
// infeasible) and hashes the sample down into the keyspace. This flattens
// per-key concentration substantially compared to Zipf directly over N —
// which is why the paper's Latest distribution (Zipf directly over recency
// ranks) produces more divergence than its Zipfian distribution (Fig 7).
const (
	scrambledItemCount = int64(10_000_000_000)
	scrambledZetan     = 26.46902820178302
)

// NewZipfian returns a Zipfian generator over [0, n) with the given
// constant (use ZipfianConstant for YCSB's default).
func NewZipfian(n int, constant float64) *ZipfianGenerator {
	return newZipfianRaw(int64(n), constant, zetaStatic(int64(n), constant))
}

func newZipfianRaw(n int64, constant, zetan float64) *ZipfianGenerator {
	g := &ZipfianGenerator{n: n, theta: constant, zetan: zetan}
	g.zeta2 = zetaStatic(2, constant)
	g.alpha = 1.0 / (1.0 - constant)
	g.eta = (1 - math.Pow(2.0/float64(n), 1-constant)) / (1 - g.zeta2/g.zetan)
	return g
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (g *ZipfianGenerator) Next(rng *rand.Rand) int {
	return int(g.next64(rng))
}

func (g *ZipfianGenerator) next64(rng *rand.Rand) int64 {
	u := rng.Float64()
	uz := u * g.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, g.theta) {
		return 1
	}
	return int64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// ScrambledZipfianGenerator is YCSB's default request distribution: a
// Zipfian sample over the fixed large item space, FNV-hashed into [0, n).
type ScrambledZipfianGenerator struct {
	n    int
	zipf *ZipfianGenerator
}

// NewScrambledZipfian returns a scrambled Zipfian generator over [0, n).
func NewScrambledZipfian(n int) *ScrambledZipfianGenerator {
	return &ScrambledZipfianGenerator{
		n:    n,
		zipf: newZipfianRaw(scrambledItemCount, ZipfianConstant, scrambledZetan),
	}
}

// Next implements Generator.
func (g *ScrambledZipfianGenerator) Next(rng *rand.Rand) int {
	v := g.zipf.next64(rng)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(v) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return int(h.Sum64() % uint64(g.n))
}

// LatestGenerator skews reads towards the most recently updated items
// (YCSB's "latest" distribution): it samples a Zipfian offset back from a
// moving recency anchor that update operations advance. This is the
// distribution under which the paper measures up to 25% divergence (Fig 7).
type LatestGenerator struct {
	n      int
	zipf   *ZipfianGenerator
	anchor atomic.Int64
}

// NewLatest returns a latest-skewed generator over [0, n).
func NewLatest(n int) *LatestGenerator {
	g := &LatestGenerator{n: n, zipf: NewZipfian(n, ZipfianConstant)}
	return g
}

// Advance moves the recency anchor; the runner calls it on every update so
// that reads chase the most recently written keys.
func (g *LatestGenerator) Advance() { g.anchor.Add(1) }

// Next implements Generator.
func (g *LatestGenerator) Next(rng *rand.Rand) int {
	off := g.zipf.Next(rng)
	idx := (int(g.anchor.Load()) - off) % g.n
	if idx < 0 {
		idx += g.n
	}
	return idx
}
