package ycsb

import (
	"fmt"
	"math/rand"
)

// DistKind selects a request distribution.
type DistKind string

// The request distributions the paper's figures use.
const (
	DistZipfian DistKind = "zipfian"
	DistLatest  DistKind = "latest"
	DistUniform DistKind = "uniform"
)

// Workload describes a YCSB core workload.
type Workload struct {
	// Name is the YCSB letter ("A", "B", "C").
	Name string
	// ReadProportion + UpdateProportion = 1.
	ReadProportion   float64
	UpdateProportion float64
	// Distribution selects the key chooser.
	Distribution DistKind
	// RecordCount is the dataset size (the divergence experiments use 1000;
	// YCSB's default is larger).
	RecordCount int
	// ValueSize is the record payload in bytes (YCSB default: 10 fields x
	// 100 B = 1 KB; the paper's microbenchmark uses 100 B objects).
	ValueSize int
}

// The paper's workloads (§6.2.1): A is 50:50 read/update, B is 95:5,
// C is read-only.
func WorkloadA(dist DistKind, records, valueSize int) Workload {
	return Workload{Name: "A", ReadProportion: 0.5, UpdateProportion: 0.5,
		Distribution: dist, RecordCount: records, ValueSize: valueSize}
}

func WorkloadB(dist DistKind, records, valueSize int) Workload {
	return Workload{Name: "B", ReadProportion: 0.95, UpdateProportion: 0.05,
		Distribution: dist, RecordCount: records, ValueSize: valueSize}
}

func WorkloadC(dist DistKind, records, valueSize int) Workload {
	return Workload{Name: "C", ReadProportion: 1.0, UpdateProportion: 0.0,
		Distribution: dist, RecordCount: records, ValueSize: valueSize}
}

// Key renders key index i in YCSB's "user<N>" format.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

// NewGenerator builds the key chooser for the workload.
func (w Workload) NewGenerator() Generator {
	switch w.Distribution {
	case DistZipfian:
		return NewScrambledZipfian(w.RecordCount)
	case DistLatest:
		return NewLatest(w.RecordCount)
	case DistUniform:
		return NewUniform(w.RecordCount)
	default:
		panic(fmt.Sprintf("ycsb: unknown distribution %q", w.Distribution))
	}
}

// Value produces a deterministic pseudo-random payload for an update.
func (w Workload) Value(rng *rand.Rand) []byte {
	buf := make([]byte, w.ValueSize)
	for i := range buf {
		buf[i] = byte('a' + rng.Intn(26))
	}
	return buf
}
