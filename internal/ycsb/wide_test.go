package ycsb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"correctables/internal/metrics"
	"correctables/internal/netsim"
)

// simDB is a synthetic store for runner-scalability tests: latencies are
// drawn from the per-thread RNG and charged on the virtual clock, with the
// fire-and-forget tail of every update delivered as a callback timer —
// the same shape as the real bindings, minus the protocol logic. It keeps
// wide-client runs about the runner, not the store.
type simDB struct {
	clock netsim.Clock
}

func (d simDB) Read(rng *rand.Rand, key string) (ReadOutcome, error) {
	sw := d.clock.StartStopwatch()
	d.clock.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
	prelim := sw.ElapsedModel()
	d.clock.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
	return ReadOutcome{
		HasPrelim:     true,
		PrelimLatency: prelim,
		FinalLatency:  sw.ElapsedModel(),
		Diverged:      rng.Intn(10) == 0,
	}, nil
}

func (d simDB) Update(rng *rand.Rand, key string, value []byte) (time.Duration, error) {
	sw := d.clock.StartStopwatch()
	d.clock.Sleep(time.Duration(2+rng.Intn(3)) * time.Millisecond)
	// Asynchronous replication tail: goroutine-free background work.
	d.clock.RunAfter(10*time.Millisecond, func() {})
	return sw.ElapsedModel(), nil
}

// fingerprintResult serializes everything observable about a Result.
func fingerprintResult(r *Result) string {
	histo := func(h *metrics.Histogram) string {
		return fmt.Sprintf("n=%d mean=%d p50=%d p99=%d min=%d max=%d",
			h.Count(), int64(h.Mean()), int64(h.Percentile(50)),
			int64(h.Percentile(99)), int64(h.Min()), int64(h.Max()))
	}
	return fmt.Sprintf("ops=%d reads=%d updates=%d prelims=%d diverged=%d errs=%d elapsed=%d tput=%v rf[%s] rp[%s] up[%s]",
		r.Ops, r.Reads, r.Updates, r.PrelimReads, r.Diverged, r.Errors,
		int64(r.Elapsed), r.ThroughputOps,
		histo(r.ReadFinal), histo(r.ReadPrelim), histo(r.UpdateLat))
}

func wideRun(threads int, seed int64) string {
	clock := netsim.NewVirtualClock()
	w := Workload{
		Name:           "wide",
		ReadProportion: 0.95, UpdateProportion: 0.05,
		RecordCount:  1000,
		ValueSize:    64,
		Distribution: DistZipfian,
	}
	res := Run(w, simDB{clock: clock}, clock, Options{
		Threads:  threads,
		Duration: 12 * time.Millisecond,
		Warmup:   2 * time.Millisecond,
		Seed:     seed,
	})
	clock.Drain()
	return fingerprintResult(res)
}

// TestYCSBWideClientsDeterministic scales the closed-loop runner to 10^5
// threads — the ROADMAP's million-client rung, sized to stay race-detector
// friendly — and requires byte-identical same-seed results. The sharded
// per-thread stats make the run contention-free; the deterministic merge
// makes the fingerprint a pure function of the seed.
func TestYCSBWideClientsDeterministic(t *testing.T) {
	threads := 100_000
	if testing.Short() {
		threads = 10_000
	}
	first := wideRun(threads, 7)
	if got := wideRun(threads, 7); got != first {
		t.Fatalf("same-seed wide run diverged:\n%s\nvs\n%s", first, got)
	}
	// Seed sensitivity holds at any width; check it at 10^4 so the
	// race-detector run does not pay a third 10^5-actor spawn wave.
	if wideRun(10_000, 7) == wideRun(10_000, 8) {
		t.Fatal("different seed produced identical results; seed unused?")
	}
	t.Logf("threads=%d %s", threads, first)
}

// BenchmarkYCSBWideClients measures a full wide-client closed-loop run:
// 10^5 actors spawned, scheduled, and merged. One iteration is one
// complete run (spawn to merge).
func BenchmarkYCSBWideClients(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = wideRun(100_000, 7)
	}
}
