package ycsb

import (
	"math/rand"
	"time"

	"correctables/internal/metrics"
	"correctables/internal/netsim"
)

// ReadOutcome reports what one read observed: latency of the preliminary
// view (if any), latency of the final view, and whether they diverged. All
// latencies are in model time.
type ReadOutcome struct {
	HasPrelim     bool
	PrelimLatency time.Duration
	FinalLatency  time.Duration
	Diverged      bool
}

// DB is the system under test. Implementations wrap a storage client (or an
// application-level operation, for the case studies of Fig 11) and report
// model-time latencies.
type DB interface {
	Read(rng *rand.Rand, key string) (ReadOutcome, error)
	Update(rng *rand.Rand, key string, value []byte) (time.Duration, error)
}

// Options configures a closed-loop run. All durations are model time, so a
// run covers the same simulated span whatever the clock implementation —
// instantly under a VirtualClock, scaled real time under a WallClock.
type Options struct {
	// Threads is the number of closed-loop client threads.
	Threads int
	// Duration is how long to run, in model time.
	Duration time.Duration
	// Warmup is an initial model-time span whose samples are discarded
	// (the paper elides the first and last 15s of its 60s trials).
	Warmup time.Duration
	// Seed derives the per-thread RNGs.
	Seed int64
	// Generator overrides the workload's key chooser. Pass one shared
	// generator to several concurrent Run calls to model client
	// populations with a *global* notion of popularity/recency (essential
	// for the Latest distribution: "recently updated" must mean recently
	// updated by anyone, not by this client group).
	Generator Generator
}

// Result aggregates a run's measurements (model time throughout).
type Result struct {
	Workload Workload
	Threads  int

	Ops, Reads, Updates int64
	// Elapsed is the measured span in model time.
	Elapsed time.Duration
	// ThroughputOps is operations per model second.
	ThroughputOps float64

	// ReadFinal is the latency of final views; ReadPrelim of preliminary
	// views (empty when the DB yields none).
	ReadFinal  *metrics.Histogram
	ReadPrelim *metrics.Histogram
	UpdateLat  *metrics.Histogram

	// PrelimReads counts reads that had a preliminary view; Diverged counts
	// those whose preliminary differed from the final (Fig 7's numerator).
	PrelimReads int64
	Diverged    int64

	// Errors counts failed operations (excluded from latency stats).
	Errors int64
}

// DivergencePct returns 100 * diverged / reads-with-preliminary.
func (r *Result) DivergencePct() float64 {
	return 100 * metrics.Ratio(r.Diverged, r.PrelimReads)
}

// threadStats is one thread's private measurement shard: plain counters
// and raw latency samples, merged into the shared Result only after every
// thread has finished. With 10^5–10^6 closed-loop threads a global mutex
// per operation serializes the whole run on stats bookkeeping; per-thread
// shards keep the hot loop contention-free and make the merge order (and
// therefore the Result) a deterministic function of the thread index.
type threadStats struct {
	ops, reads, updates int64
	prelims, diverged   int64
	errs                int64
	// first is the loop-start instant of the thread's first recorded
	// operation (-1 if it never recorded); last is the completion instant
	// of its most recent recorded operation.
	first, last time.Duration

	readFinal, readPrelim, updateLat []time.Duration
}

// Run drives the workload against db with closed-loop threads and returns
// aggregated measurements. Threads are clock actors: under a VirtualClock
// the whole run executes at CPU speed and, for a fixed seed, performs the
// exact same operation sequence on every invocation. Stats are sharded per
// thread and merged after the run, so Run scales to 10^5–10^6 threads
// without a global stats lock in the operation loop.
func Run(w Workload, db DB, clock netsim.Clock, opts Options) *Result {
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	res := &Result{
		Workload:   w,
		Threads:    opts.Threads,
		ReadFinal:  metrics.NewHistogram(),
		ReadPrelim: metrics.NewHistogram(),
		UpdateLat:  metrics.NewHistogram(),
	}
	gen := opts.Generator
	if gen == nil {
		gen = w.NewGenerator()
	}
	latest, _ := gen.(*LatestGenerator)

	start := clock.Now()
	recordAfter := start + opts.Warmup
	deadline := start + opts.Duration

	shards := make([]threadStats, opts.Threads)
	g := clock.NewGroup()
	for t := 0; t < opts.Threads; t++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(t)*1_000_003))
		st := &shards[t]
		st.first = -1
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			for {
				now := clock.Now()
				if now >= deadline {
					return
				}
				record := now >= recordAfter
				key := Key(gen.Next(rng))
				isRead := rng.Float64() < w.ReadProportion
				if isRead {
					out, err := db.Read(rng, key)
					if !record {
						continue
					}
					if st.first < 0 {
						st.first = now
					}
					st.last = clock.Now()
					if err != nil {
						st.errs++
					} else {
						st.ops++
						st.reads++
						st.readFinal = append(st.readFinal, out.FinalLatency)
						if out.HasPrelim {
							st.prelims++
							st.readPrelim = append(st.readPrelim, out.PrelimLatency)
							if out.Diverged {
								st.diverged++
							}
						}
					}
				} else {
					lat, err := db.Update(rng, key, w.Value(rng))
					if latest != nil {
						latest.Advance()
					}
					if !record {
						continue
					}
					if st.first < 0 {
						st.first = now
					}
					st.last = clock.Now()
					if err != nil {
						st.errs++
					} else {
						st.ops++
						st.updates++
						st.updateLat = append(st.updateLat, lat)
					}
				}
			}
		})
	}
	g.Wait()

	// Merge the shards in thread order (deterministic). The measured span
	// is the earliest recorded loop-start to the latest recorded
	// completion across all threads.
	var (
		measuredStart            time.Duration = -1
		measuredEnd              time.Duration
		nFinal, nPrelim, nUpdate int
	)
	for i := range shards {
		st := &shards[i]
		res.Ops += st.ops
		res.Reads += st.reads
		res.Updates += st.updates
		res.PrelimReads += st.prelims
		res.Diverged += st.diverged
		res.Errors += st.errs
		if st.first >= 0 {
			if measuredStart < 0 || st.first < measuredStart {
				measuredStart = st.first
			}
			if st.last > measuredEnd {
				measuredEnd = st.last
			}
		}
		nFinal += len(st.readFinal)
		nPrelim += len(st.readPrelim)
		nUpdate += len(st.updateLat)
	}
	res.ReadFinal.Reserve(nFinal)
	res.ReadPrelim.Reserve(nPrelim)
	res.UpdateLat.Reserve(nUpdate)
	for i := range shards {
		st := &shards[i]
		res.ReadFinal.RecordBatch(st.readFinal)
		res.ReadPrelim.RecordBatch(st.readPrelim)
		res.UpdateLat.RecordBatch(st.updateLat)
	}
	if measuredStart >= 0 {
		res.Elapsed = measuredEnd - measuredStart
	}
	res.ThroughputOps = metrics.Throughput(res.Ops, res.Elapsed)
	return res
}
