package ycsb

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"correctables/internal/netsim"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	g := NewZipfian(n, ZipfianConstant)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	const samples = 200000
	for i := 0; i < samples; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular: YCSB zipfian(0.99) gives it
	// several percent of all accesses.
	if counts[0] < samples/50 {
		t.Errorf("item 0 drew %d of %d samples; distribution not skewed", counts[0], samples)
	}
	if counts[0] <= counts[n-1] {
		t.Error("head item not more popular than tail item")
	}
	// Head-heavy: the top 10% of items receive well over half the accesses.
	top := 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
	}
	if float64(top)/samples < 0.55 {
		t.Errorf("top-10%% share = %.2f, want > 0.55", float64(top)/samples)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const n = 1000
	g := NewScrambledZipfian(n)
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest key should NOT be key 0 systematically — scrambling moves
	// the popular ranks around. Just check some key is hot and it is a
	// stable hash (deterministic across generators).
	hot := 0
	for i, c := range counts {
		if c > counts[hot] {
			hot = i
		}
	}
	if counts[hot] < 1000 {
		t.Errorf("no hot key after scrambling (max count %d)", counts[hot])
	}
	g2 := NewScrambledZipfian(n)
	rng2 := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if g.Next(rng2) != g2.Next(rand.New(rand.NewSource(0))) {
			// Different RNG streams will differ; just ensure determinism of
			// the hash for the same zipf value by comparing full pipelines
			// with the same seeds.
			break
		}
	}
}

func TestLatestFollowsAnchor(t *testing.T) {
	const n = 100
	g := NewLatest(n)
	rng := rand.New(rand.NewSource(3))
	// With no updates yet, reads cluster near index 0 (anchor=0).
	lowHits := 0
	for i := 0; i < 1000; i++ {
		v := g.Next(rng)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		if v == 0 || v >= n-5 { // 0 or wrapped just below n
			lowHits++
		}
	}
	if lowHits < 300 {
		t.Errorf("latest distribution not clustered near anchor: %d/1000", lowHits)
	}
	// Advance the anchor to 50: reads now cluster just below 50.
	for i := 0; i < 50; i++ {
		g.Advance()
	}
	nearAnchor := 0
	for i := 0; i < 1000; i++ {
		v := g.Next(rng)
		if v > 30 && v <= 50 {
			nearAnchor++
		}
	}
	if nearAnchor < 500 {
		t.Errorf("reads did not chase the anchor: %d/1000 in (30,50]", nearAnchor)
	}
}

func TestUniformCoverage(t *testing.T) {
	g := NewUniform(10)
	rng := rand.New(rand.NewSource(4))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[g.Next(rng)] = true
	}
	if len(seen) != 10 {
		t.Errorf("uniform generator covered %d/10 values", len(seen))
	}
}

// Property: all generators stay in range for arbitrary n.
func TestPropertyGeneratorsInRange(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%5000 + 2
		rng := rand.New(rand.NewSource(seed))
		gens := []Generator{
			NewUniform(n),
			NewZipfian(n, ZipfianConstant),
			NewScrambledZipfian(n),
			NewLatest(n),
		}
		for _, g := range gens {
			for i := 0; i < 50; i++ {
				v := g.Next(rng)
				if v < 0 || v >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadPresets(t *testing.T) {
	a := WorkloadA(DistLatest, 1000, 100)
	if a.ReadProportion != 0.5 || a.UpdateProportion != 0.5 || a.Name != "A" {
		t.Errorf("A = %+v", a)
	}
	b := WorkloadB(DistZipfian, 1000, 100)
	if b.ReadProportion != 0.95 || b.UpdateProportion != 0.05 {
		t.Errorf("B = %+v", b)
	}
	c := WorkloadC(DistZipfian, 1000, 100)
	if c.ReadProportion != 1.0 || c.UpdateProportion != 0 {
		t.Errorf("C = %+v", c)
	}
	if Key(42) != "user00000042" {
		t.Errorf("Key = %q", Key(42))
	}
	if len(a.Value(rand.New(rand.NewSource(1)))) != 100 {
		t.Error("Value size mismatch")
	}
}

func TestWorkloadGeneratorSelection(t *testing.T) {
	for _, d := range []DistKind{DistZipfian, DistLatest, DistUniform} {
		w := WorkloadA(d, 100, 10)
		if w.NewGenerator() == nil {
			t.Errorf("nil generator for %s", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown distribution should panic")
		}
	}()
	Workload{Distribution: "bogus", RecordCount: 10}.NewGenerator()
}

// fakeDB counts operations, fabricates latencies/divergence, and charges
// each operation 1ms of model time so virtual runs make progress.
type fakeDB struct {
	clock    netsim.Clock
	mu       sync.Mutex
	reads    int
	updates  int
	divEvery int // every k-th read diverges
}

func (f *fakeDB) Read(rng *rand.Rand, key string) (ReadOutcome, error) {
	f.mu.Lock()
	f.reads++
	n := f.reads
	f.mu.Unlock()
	f.clock.Sleep(time.Millisecond)
	return ReadOutcome{
		HasPrelim:     true,
		PrelimLatency: 20 * time.Millisecond,
		FinalLatency:  40 * time.Millisecond,
		Diverged:      f.divEvery > 0 && n%f.divEvery == 0,
	}, nil
}

func (f *fakeDB) Update(rng *rand.Rand, key string, value []byte) (time.Duration, error) {
	f.mu.Lock()
	f.updates++
	f.mu.Unlock()
	f.clock.Sleep(time.Millisecond)
	return 21 * time.Millisecond, nil
}

func TestRunnerMixAndStats(t *testing.T) {
	clock := netsim.NewVirtualClock()
	db := &fakeDB{clock: clock, divEvery: 4}
	res := Run(WorkloadA(DistZipfian, 100, 10), db, clock, Options{
		Threads:  4,
		Duration: 300 * time.Millisecond,
		Seed:     7,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("A should mix reads and updates: %d/%d", res.Reads, res.Updates)
	}
	frac := float64(res.Reads) / float64(res.Ops)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("read fraction = %.2f, want ~0.5", frac)
	}
	if res.ReadFinal.Mean() != 40*time.Millisecond {
		t.Errorf("final mean = %v", res.ReadFinal.Mean())
	}
	if res.ReadPrelim.Mean() != 20*time.Millisecond {
		t.Errorf("prelim mean = %v", res.ReadPrelim.Mean())
	}
	div := res.DivergencePct()
	if div < 15 || div > 35 {
		t.Errorf("divergence = %.1f%%, want ~25%%", div)
	}
	if res.ThroughputOps <= 0 {
		t.Error("throughput not computed")
	}
}

func TestRunnerReadOnly(t *testing.T) {
	clock := netsim.NewVirtualClock()
	db := &fakeDB{clock: clock}
	res := Run(WorkloadC(DistZipfian, 100, 10), db, clock, Options{
		Threads:  2,
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if res.Updates != 0 {
		t.Errorf("C produced %d updates", res.Updates)
	}
	if res.Reads == 0 {
		t.Error("no reads")
	}
}

func TestRunnerWarmupDiscardsSamples(t *testing.T) {
	clock := netsim.NewVirtualClock()
	db := &fakeDB{clock: clock}
	res := Run(WorkloadC(DistZipfian, 100, 10), db, clock, Options{
		Threads:  1,
		Duration: 100 * time.Millisecond,
		Warmup:   90 * time.Millisecond,
		Seed:     1,
	})
	// Exactly the post-warmup 10% of the run is recorded.
	if res.Ops == 0 {
		t.Fatal("no post-warmup ops recorded")
	}
	full := Run(WorkloadC(DistZipfian, 100, 10), db, clock, Options{
		Threads:  1,
		Duration: 100 * time.Millisecond,
		Seed:     1,
	})
	if res.Ops >= full.Ops {
		t.Errorf("warmup run recorded %d ops, full run %d", res.Ops, full.Ops)
	}
}

func TestRunnerDefaultsThreads(t *testing.T) {
	clock := netsim.NewVirtualClock()
	db := &fakeDB{clock: clock}
	res := Run(WorkloadC(DistZipfian, 10, 10), db, clock, Options{
		Duration: 20 * time.Millisecond,
	})
	if res.Threads != 1 {
		t.Errorf("Threads defaulted to %d", res.Threads)
	}
}

// TestRunnerDeterministicReplay: the same seed against the same DB model
// performs the identical operation sequence under a VirtualClock.
func TestRunnerDeterministicReplay(t *testing.T) {
	run := func() *Result {
		clock := netsim.NewVirtualClock()
		db := &fakeDB{clock: clock, divEvery: 3}
		return Run(WorkloadA(DistZipfian, 100, 10), db, clock, Options{
			Threads:  4,
			Duration: 250 * time.Millisecond,
			Seed:     42,
		})
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Reads != b.Reads || a.Updates != b.Updates ||
		a.Diverged != b.Diverged || a.Elapsed != b.Elapsed ||
		a.ThroughputOps != b.ThroughputOps {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}
