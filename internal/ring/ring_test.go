package ring

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%07d", i)
	}
	return keys
}

// TestBalanceWithinTolerance: with 64 vnodes per shard, the per-shard share
// of a large uniform keyspace stays within a modest factor of the mean —
// the property that makes per-shard fairness in the capacity study a
// statement about load, not about hashing accidents.
func TestBalanceWithinTolerance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 42, 1234} {
			r := New(Config{Shards: shards, VNodes: 64, Seed: seed})
			counts := make([]int, shards)
			keys := sampleKeys(100_000)
			for _, k := range keys {
				counts[r.ShardOf(k)]++
			}
			mean := float64(len(keys)) / float64(shards)
			for s, c := range counts {
				ratio := float64(c) / mean
				if ratio < 0.55 || ratio > 1.55 {
					t.Errorf("shards=%d seed=%d: shard %d holds %.2fx the mean share (counts %v)",
						shards, seed, s, ratio, counts)
				}
			}
		}
	}
}

// TestMinimalMovementOnAdd: growing the ring by one shard moves only the
// keys the new shard takes over — every moved key lands on the new shard,
// and the moved fraction is close to the new shard's fair share.
func TestMinimalMovementOnAdd(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		r := New(Config{Shards: shards, VNodes: 64, Seed: 42})
		grown := r.AddShard()
		newID := shards // AddShard assigns max+1
		keys := sampleKeys(50_000)
		moved := 0
		for _, k := range keys {
			before, after := r.ShardOf(k), grown.ShardOf(k)
			if before == after {
				continue
			}
			moved++
			if after != newID {
				t.Fatalf("shards=%d: key %q moved %d -> %d, not to the new shard %d",
					shards, k, before, after, newID)
			}
		}
		share := float64(moved) / float64(len(keys))
		fair := 1 / float64(shards+1)
		if share < fair*0.5 || share > fair*1.7 {
			t.Errorf("shards=%d: %.3f of keys moved, fair share %.3f", shards, share, fair)
		}
	}
}

// TestMinimalMovementOnRemove: removing a shard moves exactly the keys it
// owned; every other key keeps its owner.
func TestMinimalMovementOnRemove(t *testing.T) {
	r := New(Config{Shards: 8, VNodes: 64, Seed: 42})
	const victim = 3
	shrunk, err := r.RemoveShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(50_000) {
		before, after := r.ShardOf(k), shrunk.ShardOf(k)
		if before == victim {
			if after == victim {
				t.Fatalf("key %q still on removed shard %d", k, victim)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %q moved %d -> %d though shard %d was untouched", k, before, after, before)
		}
	}
	if _, err := shrunk.RemoveShard(victim); err == nil {
		t.Fatal("removing an absent shard must fail")
	}
	one := New(Config{Shards: 1})
	if _, err := one.RemoveShard(0); err == nil {
		t.Fatal("removing the last shard must fail")
	}
}

// TestPlacementDeterministicPerSeed: independently constructed rings with
// the same (seed, shards, vnodes) place every key identically (and report
// the same fingerprint); a different seed yields a different placement.
func TestPlacementDeterministicPerSeed(t *testing.T) {
	cfg := Config{Shards: 8, VNodes: 64, Seed: 42}
	a, b := New(cfg), New(cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same-seed fingerprints differ: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	keys := sampleKeys(20_000)
	for _, k := range keys {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("same-seed rings disagree on %q", k)
		}
	}
	other := New(Config{Shards: 8, VNodes: 64, Seed: 43})
	if other.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced the same fingerprint")
	}
	diff := 0
	for _, k := range keys {
		if a.ShardOf(k) != other.ShardOf(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placement")
	}
}

// TestDefaultsAndSingleShard: the zero config is a 1-shard ring that owns
// everything — the configuration every pre-sharding experiment runs on.
func TestDefaultsAndSingleShard(t *testing.T) {
	r := New(Config{})
	if r.NumShards() != 1 || r.VNodes() != 64 {
		t.Fatalf("defaults: shards=%d vnodes=%d", r.NumShards(), r.VNodes())
	}
	for _, k := range sampleKeys(100) {
		if s := r.ShardOf(k); s != 0 {
			t.Fatalf("single-shard ring placed %q on shard %d", k, s)
		}
	}
}

func BenchmarkShardOf(b *testing.B) {
	r := New(Config{Shards: 8, VNodes: 64, Seed: 42})
	keys := sampleKeys(1024)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.ShardOf(keys[i&1023])
	}
	_ = sink
}
