// Package ring implements the consistent-hash token ring that places keys
// on shards. Each shard projects VNodes virtual nodes onto a 64-bit token
// circle; a key belongs to the shard owning the first virtual node at or
// after the key's token (wrapping at the top). Virtual-node tokens are a
// pure function of (seed, shard, vnode), which buys the two properties the
// sharded storage plane is built on:
//
//   - deterministic placement: the same (seed, shard set) always yields the
//     same ring, byte for byte, so same-seed experiment runs replay
//     identically;
//   - minimal movement on reshard: adding or removing a shard only inserts
//     or deletes that shard's own virtual nodes — every key whose successor
//     vnode is untouched keeps its owner, so roughly 1/N of the keyspace
//     moves and nothing else does.
//
// The package imports only the standard library and sits below cassandra in
// the import graph.
package ring

import (
	"fmt"
	"sort"
)

// Config parameterizes ring construction.
type Config struct {
	// Shards is the number of shards; New places shards 0..Shards-1.
	// Default 1.
	Shards int
	// VNodes is the number of virtual nodes per shard (default 64). More
	// vnodes smooth the per-shard keyspace share at the cost of a larger
	// ring; 64 keeps the max/mean load ratio within ~25% at 8 shards.
	VNodes int
	// Seed fixes the token placement.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	return c
}

// vnode is one virtual node: a token plus the shard that owns it.
type vnode struct {
	token uint64
	shard int
}

// Ring is an immutable token ring. All methods are safe for concurrent use;
// resharding operations return a new Ring.
type Ring struct {
	cfg    Config
	shards []int // live shard IDs, ascending
	vnodes []vnode
}

// New builds the ring for shards 0..cfg.Shards-1.
func New(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	ids := make([]int, cfg.Shards)
	for i := range ids {
		ids[i] = i
	}
	return build(cfg, ids)
}

// build constructs the ring for an explicit shard set.
func build(cfg Config, ids []int) *Ring {
	r := &Ring{cfg: cfg, shards: ids, vnodes: make([]vnode, 0, len(ids)*cfg.VNodes)}
	for _, id := range ids {
		for vn := 0; vn < cfg.VNodes; vn++ {
			r.vnodes = append(r.vnodes, vnode{token: vnodeToken(cfg.Seed, id, vn), shard: id})
		}
	}
	// Sort by token; break (astronomically unlikely) token ties by shard
	// then declaration order so placement stays a pure function of inputs.
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.token != b.token {
			return a.token < b.token
		}
		return a.shard < b.shard
	})
	return r
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeToken places one virtual node: chained mixing disperses (seed,
// shard, vnode) triples that differ in a single coordinate.
func vnodeToken(seed int64, shard, vn int) uint64 {
	z := mix64(uint64(seed) + 0x9e3779b97f4a7c15)
	z = mix64(z ^ uint64(shard+1))
	return mix64(z ^ uint64(vn+1)<<1)
}

// KeyToken hashes a key onto the token circle (FNV-64a, inlined so the
// per-operation routing path performs zero allocations). The raw FNV hash
// is run through the splitmix64 finalizer: FNV-1a barely diffuses
// trailing-byte differences into the high bits, so sequential keys like
// YCSB's user00000000..user00000999 would otherwise cluster into a handful
// of token ranges and starve whole shards.
func KeyToken(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return mix64(h)
}

// ShardOf returns the shard owning key.
func (r *Ring) ShardOf(key string) int {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.OwnerOf(KeyToken(key))
}

// OwnerOf returns the shard owning a raw token: the shard of the first
// virtual node at or after the token, wrapping past the top of the circle.
func (r *Ring) OwnerOf(token uint64) int {
	vns := r.vnodes
	lo, hi := 0, len(vns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vns[mid].token < token {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(vns) {
		lo = 0
	}
	return vns[lo].shard
}

// Shards returns the live shard IDs in ascending order (a copy).
func (r *Ring) Shards() []int {
	return append([]int(nil), r.shards...)
}

// NumShards returns the number of live shards.
func (r *Ring) NumShards() int { return len(r.shards) }

// VNodes returns the total virtual-node count on the ring.
func (r *Ring) VNodes() int { return len(r.vnodes) }

// Config returns the construction parameters (Shards reflects the original
// request, not later reshards; use NumShards for the live count).
func (r *Ring) Config() Config { return r.cfg }

// AddShard returns a new ring with one more shard (ID = max live ID + 1).
// Only keys whose successor vnode is one of the new shard's vnodes move;
// everything else keeps its owner.
func (r *Ring) AddShard() *Ring {
	id := 0
	for _, s := range r.shards {
		if s >= id {
			id = s + 1
		}
	}
	ids := append(append([]int(nil), r.shards...), id)
	return build(r.cfg, ids)
}

// RemoveShard returns a new ring without the given shard; its keyspace
// falls to the successor shards and no other key moves. Removing the last
// shard or an unknown ID is an error.
func (r *Ring) RemoveShard(id int) (*Ring, error) {
	if len(r.shards) == 1 {
		return nil, fmt.Errorf("ring: cannot remove the last shard")
	}
	ids := make([]int, 0, len(r.shards)-1)
	found := false
	for _, s := range r.shards {
		if s == id {
			found = true
			continue
		}
		ids = append(ids, s)
	}
	if !found {
		return nil, fmt.Errorf("ring: no shard %d", id)
	}
	return build(r.cfg, ids), nil
}

// Fingerprint digests the full token placement. Two rings with the same
// fingerprint place every possible key identically; the determinism
// property test (and the capacity replay gate) compare fingerprints across
// independently constructed rings.
func (r *Ring) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	for _, vn := range r.vnodes {
		h = mix64(h ^ vn.token)
		h = mix64(h ^ uint64(vn.shard))
	}
	return h
}
