package cassandra

import (
	"sync"
	"sync/atomic"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Hinted handoff: when asynchronous write propagation targets a replica the
// coordinator currently cannot reach (crashed or partitioned away), the
// mutation is buffered as a hint on the coordinator instead of being lost
// in flight. Hints replay on the injector's next fault transition once the
// peer is reachable again — the rejoining replica receives the writes it
// missed directly, shrinking the stale window that read repair previously
// covered alone. Queues are bounded (drop-oldest) and hints carry a TTL,
// exactly like Cassandra's max_hint_window: a replica that stays down
// longer than HintTTL rejoins stale and heals through read repair as
// before.
//
// Only the asynchronous replication leg is hinted. Synchronous quorum legs
// keep their stall-until-heal semantics: a write that needs the down
// replica for its quorum still blocks (and fails via OpTimeout), because a
// hint is not an acknowledgment.

// hint is one buffered mutation, tagged with the owner shard it replays to.
type hint struct {
	shard   int
	key     string
	v       Versioned
	expires time.Duration
}

// HintStats counts hinted-handoff activity since cluster construction.
type HintStats struct {
	// Queued hints buffered in place of doomed async replication sends.
	Queued int
	// Replayed hints delivered to their peer after it became reachable.
	Replayed int
	// Expired hints discarded at replay time because they outlived HintTTL.
	Expired int
	// Dropped hints evicted (oldest first) by the MaxHintsPerPeer cap.
	Dropped int
}

// hintStore is the per-cluster hint state; inert (inj == nil) on fault-free
// transports.
type hintStore struct {
	inj *faults.Injector

	mu    sync.Mutex
	byCo  map[netsim.Region]map[netsim.Region][]hint
	stats HintStats
}

// wireHints subscribes hint replay to fault transitions (replica restarts,
// partition heals, the final quiesce).
func (c *Cluster) wireHints() {
	inj, ok := c.tr.Interceptor().(*faults.Injector)
	if !ok || c.cfg.HintTTL < 0 {
		return
	}
	c.hints.inj = inj
	c.hints.byCo = make(map[netsim.Region]map[netsim.Region][]hint)
	inj.Subscribe(func(faults.Transition) { c.replayHints() })
}

// hintable reports whether a coordinator should buffer (rather than send)
// an async mutation for peer right now.
func (c *Cluster) hintable(coord, peer netsim.Region) bool {
	return c.hints.inj != nil && !c.hints.inj.Reachable(coord, peer)
}

// bufferHint queues a mutation for an unreachable peer, evicting the oldest
// hint past the per-peer cap.
func (c *Cluster) bufferHint(coord, peer netsim.Region, shard int, key string, v Versioned) {
	h := &c.hints
	now := c.tr.Clock().Now()
	h.mu.Lock()
	peers := h.byCo[coord]
	if peers == nil {
		peers = make(map[netsim.Region][]hint)
		h.byCo[coord] = peers
	}
	q := peers[peer]
	if len(q) >= c.cfg.MaxHintsPerPeer {
		q = q[1:]
		h.stats.Dropped++
	}
	peers[peer] = append(q, hint{shard: shard, key: key, v: v, expires: now + c.cfg.HintTTL})
	h.stats.Queued++
	h.mu.Unlock()
	if c.trc != nil {
		c.trc.Instant(c.phaseTrk[coord], "hint-queued", key, now)
	}
}

// replayHints flushes every hint queue whose peer is reachable again,
// expiring hints lazily. Runs in clock-callback context (fault
// transitions): the deliveries are asynchronous sends, and iteration is in
// declaration order for determinism.
func (c *Cluster) replayHints() {
	h := &c.hints
	now := c.tr.Clock().Now()
	type flush struct {
		coord, peer netsim.Region
		hints       []hint
	}
	var flushes []flush
	h.mu.Lock()
	for _, coord := range c.order {
		peers := h.byCo[coord]
		if peers == nil {
			continue
		}
		for _, peer := range c.order {
			q := peers[peer]
			if len(q) == 0 || !h.inj.Reachable(coord, peer) {
				continue
			}
			live := make([]hint, 0, len(q))
			for _, hn := range q {
				if hn.expires < now {
					h.stats.Expired++
					continue
				}
				live = append(live, hn)
			}
			h.stats.Replayed += len(live)
			delete(peers, peer)
			if len(live) > 0 {
				flushes = append(flushes, flush{coord: coord, peer: peer, hints: live})
			}
		}
	}
	h.mu.Unlock()

	for _, f := range flushes {
		reps := c.replicas[f.peer]
		// The replay span covers the flush burst until its last delivery;
		// deliveries are async sends, so the end instant is the latest
		// scheduled arrival rather than a blocking wait.
		var replaySp trace.SpanID
		var remaining atomic.Int64
		if c.trc != nil {
			replaySp = c.trc.Begin(c.phaseTrk[f.coord], trace.CatHint, "hint-replay", string(f.peer), now)
		}
		remaining.Store(int64(len(f.hints)))
		for _, hn := range f.hints {
			hn := hn
			c.tr.Send(f.coord, f.peer, netsim.LinkReplica,
				replicationSize(hn.key, hn.v.Value), func() {
					reps[hn.shard].tab.apply(hn.key, hn.v)
					if remaining.Add(-1) == 0 {
						c.trc.End(replaySp, c.tr.Clock().Now())
					}
				})
		}
	}
}

// HintStats returns a snapshot of hinted-handoff counters.
func (c *Cluster) HintStats() HintStats {
	c.hints.mu.Lock()
	defer c.hints.mu.Unlock()
	return c.hints.stats
}
