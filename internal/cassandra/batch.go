package cassandra

import (
	"fmt"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Coordinator batching (store side): the Binding implements
// binding.BatchBinding, so a binding.Batcher stacked on top coalesces
// same-shard gets from many sessions into one coordinated round. The
// dispatch queue is per shard, which makes the batch path token-aware by
// construction — every dispatch addresses the key range's owner-shard
// coordinator directly, with all keys in one client-link message — and the
// coordinator amortizes its work across the batch: per-operation service
// slots are reserved up front and the round blocks once on the latest
// deadline instead of sleeping per operation.

// BatchShards implements binding.BatchBinding: one dispatch queue per
// cluster shard.
func (b *Binding) BatchShards() int { return b.client.cluster.Shards() }

// BatchKey implements binding.BatchBinding. Only gets batch, and only on a
// fault-free Correctable cluster: the coalesced round is the server-side
// ICG of §5.2 spread over a batch, while under fault injection operations
// take the direct per-op path so each keeps its own deadline machinery.
func (b *Binding) BatchKey(op binding.Operation) (int, bool) {
	g, ok := op.(binding.Get)
	if !ok {
		return 0, false
	}
	cl := b.client.cluster
	if !cl.cfg.Correctable || cl.tr.Interceptor() != nil {
		return 0, false
	}
	return cl.ShardOf(g.Key), true
}

var _ binding.BatchBinding = (*Binding)(nil)

// SubmitBatch implements binding.BatchBinding. It runs in timer-callback
// context, so the protocol round is an actor.
func (b *Binding) SubmitBatch(shard int, entries []binding.BatchEntry, done func([]binding.BatchEntry)) {
	b.clock().Go(func() {
		b.readBatch(shard, entries)
		done(entries)
	})
}

// batchItem is the per-operation state of one coalesced round.
type batchItem struct {
	e          *binding.BatchEntry
	key        string
	wantWeak   bool
	wantStrong bool
	local      Versioned
	reconciled Versioned
}

// readBatch serves one coalesced dispatch: a single client→coordinator
// message carrying every key, one amortized coordinator round (local reads
// plus preliminary flush work), a batched preliminary response, one quorum
// leg per peer covering all strong items, and a batched final response.
// Per-entry views preserve the unbatched semantics — weak views first,
// LWW-reconciled strong views second, confirmation shrinking per item.
func (b *Binding) readBatch(shard int, entries []binding.BatchEntry) {
	c := b.client
	cl := c.cluster
	cfg := cl.cfg
	tr := cl.tr
	clock := tr.Clock()
	coord := cl.replicas[c.Coordinator][shard]

	items := make([]batchItem, 0, len(entries))
	reqSize := 0
	for i := range entries {
		e := &entries[i]
		g := e.Op.(binding.Get)
		wantWeak := e.Levels.Contains(core.LevelWeak)
		wantStrong := e.Levels.Contains(core.LevelStrong)
		if !wantWeak && !wantStrong {
			e.Cb(binding.Result{Err: fmt.Errorf("%w: %v", binding.ErrUnsupportedLevel, e.Levels)})
			continue
		}
		items = append(items, batchItem{e: e, key: g.Key, wantWeak: wantWeak, wantStrong: wantStrong})
		reqSize += readRequestSize(g.Key)
	}
	if len(items) == 0 {
		return
	}

	// One coalesced request to the owner-shard coordinator.
	tr.Travel(c.Region, c.Coordinator, netsim.LinkClient, reqSize)

	var batchSp trace.SpanID
	if trc := cl.trc; trc != nil {
		batchSp = trc.Begin(cl.phaseTrk[c.Coordinator], trace.CatBatch, "batch-read",
			fmt.Sprintf("%d ops", len(items)), clock.Now())
	}

	// Amortized coordinator round: every operation reserves its service
	// slots (local read, plus flush work for items leaking a preliminary),
	// then the batch blocks once on the latest completion.
	var latest time.Duration
	for i := range items {
		cost := cfg.ReadServiceTime
		if items[i].wantWeak && items[i].wantStrong {
			cost += cfg.FlushServiceTime
		}
		if end := coord.server.Reserve(cost); end > latest {
			latest = end
		}
	}
	clock.SleepUntil(latest)
	for i := range items {
		items[i].local = coord.tab.get(items[i].key)
		items[i].reconciled = items[i].local
	}

	// Batched preliminary flush: one client-link message carries every weak
	// view; delivery emits them in entry order.
	prelimDelivered := clock.NewEvent()
	prelimSize := 0
	for i := range items {
		if items[i].wantWeak {
			prelimSize += readResponseSize(items[i].local.Value)
		}
	}
	if prelimSize > 0 {
		tr.Send(c.Coordinator, c.Region, netsim.LinkClient, prelimSize, func() {
			for i := range items {
				it := &items[i]
				if !it.wantWeak {
					continue
				}
				it.e.Cb(binding.Result{
					Value:   append([]byte(nil), it.local.Value...),
					Level:   core.LevelWeak,
					Version: it.local.Token(),
				})
			}
			prelimDelivered.Fire()
		})
	} else {
		prelimDelivered.Fire()
	}

	// Quorum gathering: one leg per peer covers every strong item, with the
	// peer's per-item service slots reserved and slept on once.
	strong := strongItems(items)
	if need := b.cfg.StrongQuorum - 1; len(strong) > 0 && need > 0 {
		var quorumSp trace.SpanID
		if trc := cl.trc; trc != nil {
			quorumSp = trc.Begin(cl.phaseTrk[c.Coordinator], trace.CatQuorum, "batch-quorum",
				fmt.Sprintf("%d ops", len(strong)), clock.Now())
		}
		peers := cl.othersByProximity(c.Coordinator)[:need]
		results := clock.NewQueue()
		for _, peer := range peers {
			peer := peer
			peerReplica := cl.ReplicaAt(shard, peer)
			clock.Go(func() {
				req := 0
				for _, i := range strong {
					req += replicaReadRequestSize(items[i].key)
				}
				tr.Travel(c.Coordinator, peer, netsim.LinkReplica, req)
				var peerLatest time.Duration
				for range strong {
					if end := peerReplica.server.Reserve(cfg.ReadServiceTime); end > peerLatest {
						peerLatest = end
					}
				}
				clock.SleepUntil(peerLatest)
				vs := make([]Versioned, len(strong))
				resp := 0
				for j, i := range strong {
					vs[j] = peerReplica.tab.get(items[i].key)
					resp += replicaReadResponseSize(vs[j].Value)
				}
				tr.Travel(peer, c.Coordinator, netsim.LinkReplica, resp)
				results.Put(vs)
			})
		}
		for k := 0; k < need; k++ {
			vs := results.Get().([]Versioned)
			for j, i := range strong {
				if vs[j].Newer(items[i].reconciled) {
					items[i].reconciled = vs[j]
				}
			}
		}
		cl.trc.End(quorumSp, clock.Now())
		for _, i := range strong {
			it := &items[i]
			// Blocking read repair among participants, then the sampled
			// global repair — both exactly as in the unbatched read.
			if it.reconciled.Newer(it.local) {
				coord.tab.apply(it.key, it.reconciled)
			}
			if cl.rollReadRepair(it.key) {
				if trc := cl.trc; trc != nil {
					trc.Instant(cl.phaseTrk[c.Coordinator], "read-repair", it.key, clock.Now())
				}
				c.repairAsync(shard, it.key, it.reconciled)
			}
		}
	}

	// Batched final response: matching finals shrink to confirmations per
	// item when the optimization is on.
	if len(strong) > 0 {
		respSize := 0
		for _, i := range strong {
			it := &items[i]
			sz := readResponseSize(it.reconciled.Value)
			if it.wantWeak && cfg.ConfirmationOpt && it.reconciled.Same(it.local) {
				sz = ConfirmationSize
			}
			respSize += sz
		}
		tr.Travel(c.Coordinator, c.Region, netsim.LinkClient, respSize)
	}
	cl.trc.End(batchSp, clock.Now())
	prelimDelivered.Wait() // preserve per-entry view order
	for _, i := range strong {
		it := &items[i]
		it.e.Cb(binding.Result{
			Value:   append([]byte(nil), it.reconciled.Value...),
			Level:   core.LevelStrong,
			Version: it.reconciled.Token(),
		})
	}
}

// strongItems lists the item indexes that need a quorum-reconciled view.
func strongItems(items []batchItem) []int {
	idx := make([]int, 0, len(items))
	for i := range items {
		if items[i].wantStrong {
			idx = append(idx, i)
		}
	}
	return idx
}
