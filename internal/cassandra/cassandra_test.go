package cassandra

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// Tests run on the virtual clock: deterministic, instant, and exact — no
// sleep-granularity noise in latency assertions.

func newTestCluster(t *testing.T, correctable, confirmOpt bool) (*Cluster, *netsim.Meter, netsim.Clock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	meter := netsim.NewMeter()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), meter, 1)
	cluster, err := NewCluster(Config{
		Regions:         []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:       tr,
		Correctable:     correctable,
		ConfirmationOpt: confirmOpt,
		// Keep service times tiny so latency assertions are about RTTs.
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		FlushServiceTime: 20 * time.Microsecond,
		Workers:          8,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, meter, clock
}

func TestVersionedNewerAndSame(t *testing.T) {
	a := Versioned{Value: []byte("a"), TS: 1, Exists: true}
	b := Versioned{Value: []byte("b"), TS: 2, Exists: true}
	if !b.Newer(a) || a.Newer(b) {
		t.Error("timestamp ordering broken")
	}
	none := Versioned{}
	if none.Newer(a) || !a.Newer(none) {
		t.Error("absent-version ordering broken")
	}
	tie1 := Versioned{TS: 5, NodeID: 1, Exists: true}
	tie2 := Versioned{TS: 5, NodeID: 2, Exists: true}
	if !tie2.Newer(tie1) || tie1.Newer(tie2) {
		t.Error("node-id tiebreak broken")
	}
	if !a.Same(Versioned{Value: []byte("a"), TS: 1, Exists: true}) {
		t.Error("Same broken for equal versions")
	}
	if a.Same(b) {
		t.Error("Same true for different versions")
	}
}

// Property: LWW tables converge — applying any permutation of the same
// version set to two tables yields identical contents.
func TestPropertyLWWConvergence(t *testing.T) {
	f := func(tsList []uint16, perm []uint8) bool {
		if len(tsList) == 0 {
			return true
		}
		versions := make([]Versioned, len(tsList))
		for i, ts := range tsList {
			versions[i] = Versioned{
				Value:  []byte(fmt.Sprintf("v%d", ts)),
				TS:     uint64(ts),
				NodeID: uint8(i % 3),
				Exists: true,
			}
		}
		t1, t2 := newTable(), newTable()
		for _, v := range versions {
			t1.apply("k", v)
		}
		// Apply in a permuted order derived from perm.
		shuffled := append([]Versioned(nil), versions...)
		for i := range shuffled {
			j := 0
			if len(perm) > 0 {
				j = int(perm[i%len(perm)]) % (i + 1)
			}
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		for _, v := range shuffled {
			t2.apply("k", v)
		}
		return t1.get("k").Same(t2.get("k"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadR1Latency(t *testing.T) {
	cluster, _, clock := newTestCluster(t, false, false)
	cluster.Preload("k", []byte("value"))
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	sw := clock.StartStopwatch()
	var got ReadView
	if err := client.Read("k", 1, false, func(v ReadView) { got = v }); err != nil {
		t.Fatal(err)
	}
	lat := sw.ElapsedModel()
	// C1: one client<->coordinator round trip = 20ms IRL-FRK RTT.
	if lat < 15*time.Millisecond || lat > 45*time.Millisecond {
		t.Errorf("R=1 latency = %v, want ~20ms", lat)
	}
	if string(got.Value) != "value" || !got.Final || got.Level != core.LevelWeak {
		t.Errorf("view = %+v", got)
	}
}

func TestReadR2Latency(t *testing.T) {
	cluster, _, clock := newTestCluster(t, false, false)
	cluster.Preload("k", []byte("value"))
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	sw := clock.StartStopwatch()
	var got ReadView
	if err := client.Read("k", 2, false, func(v ReadView) { got = v }); err != nil {
		t.Fatal(err)
	}
	lat := sw.ElapsedModel()
	// C2: client RTT (20ms) + coordinator's RTT to its nearest peer, which
	// for FRK is IRL (20ms) => ~40ms.
	if lat < 32*time.Millisecond || lat > 70*time.Millisecond {
		t.Errorf("R=2 latency = %v, want ~40ms", lat)
	}
	if got.Level != core.LevelStrong {
		t.Errorf("level = %v", got.Level)
	}
}

func TestCorrectableReadDeliversPrelimThenFinal(t *testing.T) {
	cluster, _, clock := newTestCluster(t, true, false)
	cluster.Preload("k", []byte("value"))
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	type timed struct {
		v  ReadView
		at time.Duration
	}
	var views []timed
	sw := clock.StartStopwatch()
	if err := client.Read("k", 2, true, func(v ReadView) {
		views = append(views, timed{v, sw.ElapsedModel()})
	}); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("got %d views, want 2", len(views))
	}
	prelim, final := views[0], views[1]
	if prelim.v.Final || prelim.v.Level != core.LevelWeak {
		t.Errorf("prelim = %+v", prelim.v)
	}
	if !final.v.Final || final.v.Level != core.LevelStrong {
		t.Errorf("final = %+v", final.v)
	}
	if !final.v.Confirmed {
		t.Error("identical views should be confirmed")
	}
	// Latency gap between preliminary and final is the coordinator's quorum
	// RTT: FRK->IRL = 20ms (paper Fig 5: gap for CC2 is 20ms).
	gap := final.at - prelim.at
	if gap < 12*time.Millisecond || gap > 45*time.Millisecond {
		t.Errorf("prelim/final gap = %v, want ~20ms", gap)
	}
}

func TestCC3GapLargerThanCC2(t *testing.T) {
	cluster, _, clock := newTestCluster(t, true, false)
	cluster.Preload("k", []byte("v"))
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	gap := func(q int) time.Duration {
		sw := clock.StartStopwatch()
		var at []time.Duration
		if err := client.Read("k", q, true, func(ReadView) {
			at = append(at, sw.ElapsedModel())
		}); err != nil {
			t.Fatal(err)
		}
		return at[1] - at[0]
	}
	g2, g3 := gap(2), gap(3)
	// CC3 must wait for VRG (FRK-VRG RTT 89ms) vs CC2's IRL (20ms).
	if g3 < 2*g2 {
		t.Errorf("CC3 gap (%v) should be much larger than CC2 gap (%v)", g3, g2)
	}
}

func TestDivergenceAndConvergence(t *testing.T) {
	cluster, _, clock := newDivergenceCluster(t, false)
	cluster.Preload("k", []byte("old"))
	// Writer colocated with the IRL coordinator: IRL is fresh immediately;
	// FRK/VRG converge only after the (long) replication delay, so a prompt
	// read through FRK sees a stale preliminary but a fresh final (its
	// quorum includes IRL).
	writer := NewClient(cluster, netsim.IRL, netsim.IRL)
	if err := writer.Write("k", []byte("new"), 1); err != nil {
		t.Fatal(err)
	}
	// Reader in IRL contacts FRK; quorum partner for FRK is IRL (fresh).
	reader := NewClient(cluster, netsim.IRL, netsim.FRK)
	var views []ReadView
	if err := reader.Read("k", 2, true, func(v ReadView) { views = append(views, v) }); err != nil {
		t.Fatal(err)
	}
	if string(views[0].Value) != "old" {
		t.Errorf("preliminary = %q, want stale 'old'", views[0].Value)
	}
	if string(views[1].Value) != "new" {
		t.Errorf("final = %q, want fresh 'new'", views[1].Value)
	}
	if views[1].Confirmed {
		t.Error("diverged read must not be confirmed")
	}
	// After the replication delay (model time), the preliminary catches up.
	clock.Sleep(cluster.cfg.ReplicationDelay + 120*time.Millisecond)
	views = views[:0]
	if err := reader.Read("k", 2, true, func(v ReadView) { views = append(views, v) }); err != nil {
		t.Fatal(err)
	}
	if string(views[0].Value) != "new" || !views[1].Confirmed {
		t.Errorf("after convergence: prelim=%q confirmed=%v", views[0].Value, views[1].Confirmed)
	}
}

// newDivergenceCluster builds a correctable cluster with a long replication
// delay so that prompt reads reliably observe staleness.
func newDivergenceCluster(t *testing.T, confirmOpt bool) (*Cluster, *netsim.Meter, netsim.Clock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	meter := netsim.NewMeter()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), meter, 1)
	cluster, err := NewCluster(Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  confirmOpt,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		FlushServiceTime: 20 * time.Microsecond,
		ReplicationDelay: 150 * time.Millisecond,
		Workers:          8,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, meter, clock
}

func TestConfirmationOptimizationShrinksFinal(t *testing.T) {
	run := func(confirmOpt bool) int64 {
		cluster, meter, _ := newTestCluster(t, true, confirmOpt)
		val := make([]byte, 1000)
		cluster.Preload("k", val)
		client := NewClient(cluster, netsim.IRL, netsim.FRK)
		base := meter.Class(netsim.LinkClient).Bytes
		if err := client.Read("k", 2, true, func(ReadView) {}); err != nil {
			t.Fatal(err)
		}
		return meter.Class(netsim.LinkClient).Bytes - base
	}
	plain := run(false)
	optimized := run(true)
	// Optimized: request + full prelim + tiny confirmation.
	// Plain: request + full prelim + full final.
	saved := plain - optimized
	wantSaved := int64(readResponseSize(make([]byte, 1000)) - ConfirmationSize)
	if saved != wantSaved {
		t.Errorf("confirmation optimization saved %d bytes, want %d", saved, wantSaved)
	}
}

func TestDivergedFinalIsFullSizeEvenWithOpt(t *testing.T) {
	cluster, meter, _ := newDivergenceCluster(t, true)
	cluster.Preload("k", make([]byte, 500))
	writer := NewClient(cluster, netsim.IRL, netsim.IRL)
	if err := writer.Write("k", make([]byte, 500), 1); err != nil {
		t.Fatal(err)
	}
	reader := NewClient(cluster, netsim.IRL, netsim.FRK)
	base := meter.Class(netsim.LinkClient).Bytes
	var confirmed bool
	if err := reader.Read("k", 2, true, func(v ReadView) {
		if v.Final {
			confirmed = v.Confirmed
		}
	}); err != nil {
		t.Fatal(err)
	}
	bytes := meter.Class(netsim.LinkClient).Bytes - base
	if confirmed {
		t.Fatal("expected divergence in this scenario")
	}
	want := int64(readRequestSize("k") + 2*readResponseSize(make([]byte, 500)))
	if bytes != want {
		t.Errorf("diverged CC read transferred %d bytes, want %d (two full responses)", bytes, want)
	}
}

func TestWriteQuorumW2Blocks(t *testing.T) {
	cluster, _, clock := newTestCluster(t, false, false)
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	sw := clock.StartStopwatch()
	if err := client.Write("k", []byte("v"), 2); err != nil {
		t.Fatal(err)
	}
	lat := sw.ElapsedModel()
	// W=2 waits for the FRK->IRL replication round trip: >= ~40ms total.
	if lat < 32*time.Millisecond {
		t.Errorf("W=2 write latency = %v, want >= ~40ms", lat)
	}
	// Both FRK and IRL must have the value now.
	if !cluster.Replica(netsim.FRK).Get("k").Exists || !cluster.Replica(netsim.IRL).Get("k").Exists {
		t.Error("synchronous write quorum replicas missing the value")
	}
}

func TestQuorumBoundsValidation(t *testing.T) {
	cluster, _, _ := newTestCluster(t, false, false)
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	if err := client.Read("k", 0, false, nil); err == nil {
		t.Error("R=0 accepted")
	}
	if err := client.Read("k", 4, false, nil); err == nil {
		t.Error("R=4 accepted with RF=3")
	}
	if err := client.Write("k", nil, 0); err == nil {
		t.Error("W=0 accepted")
	}
	if err := client.Write("k", nil, 4); err == nil {
		t.Error("W=4 accepted with RF=3")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Error("missing transport accepted")
	}
	clock := netsim.NewClock(1)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), nil, 1)
	if _, err := NewCluster(Config{Transport: tr}); err == nil {
		t.Error("empty region list accepted")
	}
	if _, err := NewCluster(Config{Transport: tr, Regions: []netsim.Region{netsim.FRK, netsim.FRK}}); err == nil {
		t.Error("duplicate regions accepted")
	}
}

func TestNearestRemote(t *testing.T) {
	cluster, _, _ := newTestCluster(t, false, false)
	if got := cluster.NearestRemote(netsim.IRL); got != netsim.FRK {
		t.Errorf("NearestRemote(IRL) = %s, want FRK", got)
	}
	if got := cluster.NearestRemote(netsim.FRK); got != netsim.IRL {
		t.Errorf("NearestRemote(FRK) = %s, want IRL", got)
	}
}

// Property: a full-quorum (R=RF) read always returns the newest version
// present on any replica, whatever the per-replica states are.
func TestPropertyFullQuorumReadsNewest(t *testing.T) {
	cluster, _, _ := newTestCluster(t, false, false)
	client := NewClient(cluster, netsim.IRL, netsim.FRK)
	regions := cluster.Regions()
	f := func(tss [3]uint16) bool {
		key := fmt.Sprintf("k%d-%d-%d", tss[0], tss[1], tss[2])
		var newest Versioned
		for i, region := range regions {
			v := Versioned{
				Value:  []byte(fmt.Sprintf("val-%d", tss[i])),
				TS:     uint64(tss[i]) + 1,
				NodeID: uint8(i),
				Exists: true,
			}
			cluster.Replica(region).Apply(key, v)
			if v.Newer(newest) {
				newest = v
			}
		}
		var got ReadView
		if err := client.Read(key, 3, false, func(v ReadView) { got = v }); err != nil {
			return false
		}
		return got.Version.Same(newest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBindingInvokeICG(t *testing.T) {
	cluster, _, _ := newTestCluster(t, true, true)
	cluster.Preload("k", []byte("data"))
	b := NewBinding(NewClient(cluster, netsim.IRL, netsim.FRK), BindingConfig{})
	kv := NewKV(b)
	cor := kv.Get(context.Background(), "k")
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "data" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelWeak {
		t.Errorf("views = %+v", views)
	}
}

func TestBindingInvokeWeakAndStrong(t *testing.T) {
	cluster, _, _ := newTestCluster(t, true, true)
	cluster.Preload("k", []byte("data"))
	b := NewBinding(NewClient(cluster, netsim.IRL, netsim.FRK), BindingConfig{})
	kv := NewKV(b)

	cw := kv.GetWeak(context.Background(), "k")
	vw, err := cw.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vw.Level != core.LevelWeak || len(cw.Views()) != 1 {
		t.Errorf("InvokeWeak: %+v (%d views)", vw, len(cw.Views()))
	}

	cs := kv.GetStrong(context.Background(), "k")
	vs, err := cs.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vs.Level != core.LevelStrong || len(cs.Views()) != 1 {
		t.Errorf("InvokeStrong: %+v (%d views)", vs, len(cs.Views()))
	}
}

func TestBindingPut(t *testing.T) {
	cluster, _, _ := newTestCluster(t, true, true)
	b := NewBinding(NewClient(cluster, netsim.IRL, netsim.FRK), BindingConfig{})
	kv := NewKV(b)
	if _, err := kv.Put(context.Background(), "k", []byte("v")).Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := cluster.Replica(netsim.FRK).Get("k"); string(got.Value) != "v" {
		t.Errorf("coordinator state = %+v", got)
	}
}

func TestBindingUnsupportedOp(t *testing.T) {
	cluster, _, _ := newTestCluster(t, true, true)
	b := NewBinding(NewClient(cluster, netsim.IRL, netsim.FRK), BindingConfig{})
	kv := NewKV(b)
	if _, err := binding.Invoke[binding.Item](context.Background(), kv.Client(), binding.Dequeue{Queue: "q"}).Final(context.Background()); err == nil {
		t.Error("dequeue on cassandra should fail")
	}
}

func TestBindingVanillaICGFallback(t *testing.T) {
	// On a vanilla (non-correctable) cluster, Invoke still yields two views
	// via two independent requests.
	cluster, _, _ := newTestCluster(t, false, false)
	cluster.Preload("k", []byte("data"))
	b := NewBinding(NewClient(cluster, netsim.IRL, netsim.FRK), BindingConfig{})
	kv := NewKV(b)
	cor := kv.Get(context.Background(), "k")
	if _, err := cor.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelWeak || views[1].Level != core.LevelStrong {
		t.Errorf("views = %+v", views)
	}
}

func TestConcurrentClientsNoRace(t *testing.T) {
	// Wall clock on purpose:true parallelism exercises the locking that the
	// cooperative virtual scheduler would serialize away.
	clock := netsim.NewClock(0.01)
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := NewCluster(Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		Workers:          8,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		cluster.Preload(fmt.Sprintf("k%d", i), []byte("v"))
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := NewClient(cluster, netsim.IRL, netsim.FRK)
			for j := 0; j < 10; j++ {
				key := fmt.Sprintf("k%d", (i*10+j)%20)
				if j%3 == 0 {
					_ = client.Write(key, []byte(fmt.Sprintf("v%d-%d", i, j)), 1)
				} else {
					_ = client.Read(key, 2, true, func(ReadView) {})
				}
			}
		}()
	}
	wg.Wait()
}

func TestPreloadReachesAllReplicas(t *testing.T) {
	cluster, _, _ := newTestCluster(t, false, false)
	cluster.Preload("k", []byte("v"))
	for _, region := range cluster.Regions() {
		if got := cluster.Replica(region).Get("k"); !got.Exists || string(got.Value) != "v" {
			t.Errorf("replica %s missing preloaded value", region)
		}
	}
	if cluster.Replica(netsim.FRK).Keys() != 1 {
		t.Errorf("Keys = %d", cluster.Replica(netsim.FRK).Keys())
	}
}
