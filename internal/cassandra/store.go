// Package cassandra implements a quorum-replicated key-value store modeled
// on Cassandra, together with the paper's server-side ICG support
// ("Correctable Cassandra", §5.2): preliminary flushing at the coordinator
// and the confirmation optimization that replaces a redundant final response
// with a small confirmation message.
//
// The store reproduces the mechanics the paper's Figures 5-8 depend on:
//
//   - coordinator-based reads with configurable read quorum R (1, 2 or 3),
//   - last-write-wins reconciliation by timestamp,
//   - W=1 writes with asynchronous replication (the source of staleness and
//     hence preliminary/final divergence),
//   - per-replica bounded processing capacity (the source of the
//     latency/throughput saturation curves and of CC's throughput drop),
//   - explicit wire sizes on every message (the source of the bandwidth
//     figures).
package cassandra

import (
	"bytes"
	"sync"
)

// Versioned is a timestamped value; reconciliation is last-write-wins by
// (TS, NodeID).
type Versioned struct {
	Value  []byte
	TS     uint64
	NodeID uint8
	Exists bool
}

// Newer reports whether v is strictly newer than other.
func (v Versioned) Newer(other Versioned) bool {
	if !v.Exists {
		return false
	}
	if !other.Exists {
		return true
	}
	if v.TS != other.TS {
		return v.TS > other.TS
	}
	return v.NodeID > other.NodeID
}

// Same reports whether two versions are identical (same version and bytes).
func (v Versioned) Same(other Versioned) bool {
	return v.Exists == other.Exists && v.TS == other.TS && v.NodeID == other.NodeID &&
		bytes.Equal(v.Value, other.Value)
}

// Token flattens the (TS, NodeID) version into the binding's per-object
// version-token space: tokens compare exactly like Newer, and 0 is
// reserved for absent values. Timestamps come from the cluster's shared
// counter, so the low byte never overflows into a neighboring timestamp.
func (v Versioned) Token() uint64 {
	if !v.Exists {
		return 0
	}
	return v.TS<<8 | uint64(v.NodeID)
}

// table is a concurrency-safe LWW register map: one partition of replica
// state.
type table struct {
	mu   sync.RWMutex
	data map[string]Versioned
}

func newTable() *table {
	return &table{data: make(map[string]Versioned)}
}

// get returns the stored version for key (Exists=false if absent).
func (t *table) get(key string) Versioned {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.data[key]
}

// apply merges v into the table if it is newer than the current version,
// reporting whether it was applied.
func (t *table) apply(key string, v Versioned) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.data[key]
	if v.Newer(cur) {
		t.data[key] = v
		return true
	}
	return false
}

// len returns the number of stored keys.
func (t *table) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.data)
}
