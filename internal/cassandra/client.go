package cassandra

import (
	"fmt"

	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// ReadView is one response to a read, as observed at the client.
type ReadView struct {
	// Value is the (possibly nil) value bytes; a copy, safe to retain.
	Value []byte
	// Version identifies the value for divergence accounting.
	Version Versioned
	// Level is LevelWeak for single-replica views, LevelStrong for
	// quorum-reconciled views.
	Level core.Level
	// Final marks the last view of this read.
	Final bool
	// Confirmed marks a final view that matched the preliminary (whether or
	// not the confirmation optimization shrank it on the wire).
	Confirmed bool
}

// Client issues operations against a cluster from a given client region via
// a fixed coordinator (contact) replica, exactly like a storage driver
// pinned to a contact point. On a sharded cluster the contact is the
// shard-0 replica of the coordinator region: requests for keys owned by
// another shard pay a routing hop (ring lookup plus an intra-region
// forward) unless the client is TokenAware.
type Client struct {
	cluster     *Cluster
	Region      netsim.Region
	Coordinator netsim.Region
	// TokenAware clients maintain their own view of the token ring (like
	// Cassandra's token-aware drivers) and address the key's owner-shard
	// coordinator directly, skipping the contact node's routing hop.
	TokenAware bool
}

// NewClient creates a client in clientRegion contacting the coordinator
// replica in coordRegion.
func NewClient(cluster *Cluster, clientRegion, coordRegion netsim.Region) *Client {
	// Validate eagerly: panics here are configuration bugs.
	cluster.Replica(coordRegion)
	return &Client{cluster: cluster, Region: clientRegion, Coordinator: coordRegion}
}

// Cluster returns the client's cluster.
func (c *Client) Cluster() *Cluster { return c.cluster }

// route carries a request of the given wire size from the client to the
// coordinator replica serving shard, and returns that replica. The client
// always talks to its contact point (the coordinator region's shard-0
// replica); when the key belongs to another shard the contact performs the
// routing hop — ring lookup service time plus an intra-region forward —
// unless the client is token-aware and addressed the owner directly.
func (c *Client) route(shard, reqSize int) *Replica {
	cl := c.cluster
	tr := cl.tr
	tr.Travel(c.Region, c.Coordinator, netsim.LinkClient, reqSize)
	owner := cl.replicas[c.Coordinator][shard]
	if shard == 0 || c.TokenAware {
		return owner
	}
	contact := cl.replicas[c.Coordinator][0]
	var routeSp trace.SpanID
	if trc := cl.trc; trc != nil {
		routeSp = trc.Begin(cl.phaseTrk[c.Coordinator], trace.CatRoute, "route", "", tr.Clock().Now())
	}
	contact.server.Process(cl.cfg.RouteServiceTime)
	tr.Travel(c.Coordinator, c.Coordinator, netsim.LinkReplica, reqSize)
	cl.trc.End(routeSp, tr.Clock().Now())
	return owner
}

// Read performs a read with the given read quorum size. If wantPrelim is
// true (and the cluster is Correctable), the coordinator leaks a
// preliminary view after its local read; onView is then called twice:
// preliminary (weak) first, final (strong) second. Otherwise onView is
// called once with the final view. Read blocks until the final view has
// been delivered.
//
// Under fault injection (an interceptor on the Transport), Read is bounded
// by Config.OpTimeout of model time: a read a fault makes impossible fails
// with faults.ErrUnreachable, views delivered past the deadline are
// suppressed, and the underlying protocol work completes in the background
// once the fault heals.
func (c *Client) Read(key string, quorum int, wantPrelim bool, onView func(ReadView)) error {
	if c.cluster.tr.Interceptor() == nil {
		return c.read(key, quorum, wantPrelim, onView)
	}
	return faults.Deadline(c.cluster.tr.Clock(), c.cluster.cfg.OpTimeout, func(live func() bool) error {
		return c.read(key, quorum, wantPrelim, func(v ReadView) {
			if live() {
				onView(v)
			}
		})
	})
}

func (c *Client) read(key string, quorum int, wantPrelim bool, onView func(ReadView)) error {
	cfg := c.cluster.cfg
	if quorum < 1 || quorum > len(c.cluster.order) {
		return fmt.Errorf("cassandra: read quorum %d out of range [1,%d]", quorum, len(c.cluster.order))
	}
	wantPrelim = wantPrelim && cfg.Correctable && quorum > 1

	tr := c.cluster.tr
	clock := tr.Clock()

	// Client -> coordinator request, routed to the key's owner shard.
	shard := c.cluster.ShardOf(key)
	coord := c.route(shard, readRequestSize(key))

	// Coordinator local read.
	coord.server.Process(cfg.ReadServiceTime)
	local := coord.tab.get(key)

	// Preliminary flushing (§5.2): leak the local value to the client before
	// coordinating. The flush costs extra coordinator service time and one
	// client-link response message, delivered as a callback timer — the
	// off-critical-path flush costs no goroutine.
	prelimDelivered := clock.NewEvent()
	if wantPrelim {
		// The flush span covers the extra coordinator work plus the wire
		// trip: it ends when the preliminary actually reaches the client.
		var flushSp trace.SpanID
		if trc := c.cluster.trc; trc != nil {
			flushSp = trc.Begin(c.cluster.phaseTrk[c.Coordinator], trace.CatFlush, "prelim-flush", key, clock.Now())
		}
		coord.server.Process(cfg.FlushServiceTime)
		prelim := local
		tr.Send(c.Coordinator, c.Region, netsim.LinkClient, readResponseSize(prelim.Value), func() {
			c.cluster.trc.End(flushSp, clock.Now())
			onView(ReadView{
				Value:   append([]byte(nil), prelim.Value...),
				Version: prelim,
				Level:   core.LevelWeak,
				Final:   false,
			})
			prelimDelivered.Fire()
		})
	} else {
		prelimDelivered.Fire()
	}

	// Quorum gathering: the coordinator counts itself and waits for the
	// quorum-1 closest peers.
	reconciled := local
	if quorum > 1 {
		need := quorum - 1
		var quorumSp trace.SpanID
		if trc := c.cluster.trc; trc != nil {
			quorumSp = trc.Begin(c.cluster.phaseTrk[c.Coordinator], trace.CatQuorum, "read-quorum", key, clock.Now())
		}
		peers := c.cluster.othersByProximity(c.Coordinator)[:need]
		results := clock.NewQueue()
		for _, peer := range peers {
			peer := peer
			peerReplica := c.cluster.ReplicaAt(shard, peer)
			clock.Go(func() {
				tr.Travel(c.Coordinator, peer, netsim.LinkReplica, replicaReadRequestSize(key))
				peerReplica.server.Process(cfg.ReadServiceTime)
				v := peerReplica.tab.get(key)
				tr.Travel(peer, c.Coordinator, netsim.LinkReplica, replicaReadResponseSize(v.Value))
				results.Put(v)
			})
		}
		for i := 0; i < need; i++ {
			if v := results.Get().(Versioned); v.Newer(reconciled) {
				reconciled = v
			}
		}
		c.cluster.trc.End(quorumSp, clock.Now())
		// Blocking read repair among the participants (Cassandra always
		// reconciles the replicas involved in the read): the coordinator
		// already holds the winning version, so its local copy is fixed
		// immediately — the first diverged read of a key heals subsequent
		// preliminary views until the next foreign write.
		if reconciled.Newer(local) {
			coord.tab.apply(key, reconciled)
		}
		// Global read repair: asynchronously push the winning version to
		// all replicas (sampled, like Cassandra's read_repair_chance).
		if c.cluster.rollReadRepair(key) {
			if trc := c.cluster.trc; trc != nil {
				trc.Instant(c.cluster.phaseTrk[c.Coordinator], "read-repair", key, clock.Now())
			}
			c.repairAsync(shard, key, reconciled)
		}
	}

	// Final response. With the confirmation optimization, a final view that
	// matches the preliminary shrinks to a confirmation message.
	confirmed := wantPrelim && reconciled.Same(local)
	respSize := readResponseSize(reconciled.Value)
	if confirmed && cfg.ConfirmationOpt {
		respSize = ConfirmationSize
	}
	level := core.LevelStrong
	final := ReadView{
		Value:     append([]byte(nil), reconciled.Value...),
		Version:   reconciled,
		Level:     level,
		Final:     true,
		Confirmed: confirmed,
	}
	if quorum == 1 {
		final.Level = core.LevelWeak
	}
	tr.Travel(c.Coordinator, c.Region, netsim.LinkClient, respSize)
	prelimDelivered.Wait() // preserve view order even under jitter
	onView(final)
	return nil
}

// repairAsync pushes the reconciled version to every replica of the key's
// shard that may be stale (fire and forget, off the critical path).
func (c *Client) repairAsync(shard int, key string, v Versioned) {
	for _, region := range c.cluster.order {
		replica := c.cluster.ReplicaAt(shard, region)
		if region == c.Coordinator {
			replica.tab.apply(key, v)
			continue
		}
		c.cluster.tr.Send(c.Coordinator, region, netsim.LinkReplica,
			replicationSize(key, v.Value), func() {
				replica.tab.apply(key, v)
			})
	}
}

// Write performs a write with write quorum w (the paper's evaluation uses
// W=1 throughout). The coordinator applies the mutation locally,
// acknowledges once w replicas (itself included) have applied it, and
// propagates to the remaining replicas asynchronously with the configured
// replication delay — the staleness window behind Fig 7's divergence.
// Write blocks until the acknowledgment reaches the client.
//
// Like Read, Write is bounded by Config.OpTimeout under fault injection.
func (c *Client) Write(key string, value []byte, w int) error {
	if c.cluster.tr.Interceptor() == nil {
		_, err := c.write(key, value, w)
		return err
	}
	return faults.Deadline(c.cluster.tr.Clock(), c.cluster.cfg.OpTimeout, func(func() bool) error {
		_, err := c.write(key, value, w)
		return err
	})
}

// write performs the write and returns the committed version (the binding
// stamps its token on the acknowledgment view).
func (c *Client) write(key string, value []byte, w int) (Versioned, error) {
	cfg := c.cluster.cfg
	if w < 1 || w > len(c.cluster.order) {
		return Versioned{}, fmt.Errorf("cassandra: write quorum %d out of range [1,%d]", w, len(c.cluster.order))
	}
	tr := c.cluster.tr
	clock := tr.Clock()
	shard := c.cluster.ShardOf(key)
	coord := c.route(shard, writeRequestSize(key, value))
	coord.server.Process(cfg.WriteServiceTime)

	v := Versioned{
		Value:  append([]byte(nil), value...),
		TS:     c.cluster.nextTS(),
		NodeID: coord.ID,
		Exists: true,
	}
	coord.tab.apply(key, v)

	peers := c.cluster.othersByProximity(c.Coordinator)
	needSync := w - 1
	var syncSp trace.SpanID
	if trc := c.cluster.trc; trc != nil && needSync > 0 {
		syncSp = trc.Begin(c.cluster.phaseTrk[c.Coordinator], trace.CatQuorum, "write-sync", key, clock.Now())
	}
	acks := clock.NewGroup()
	for i, peer := range peers {
		peer := peer
		peerReplica := c.cluster.ReplicaAt(shard, peer)
		if i < needSync {
			// Synchronous propagation for the write quorum.
			acks.Add(1)
			clock.Go(func() {
				defer acks.Done()
				tr.Travel(c.Coordinator, peer, netsim.LinkReplica, replicationSize(key, value))
				peerReplica.server.Process(cfg.WriteServiceTime)
				peerReplica.tab.apply(key, v)
				tr.Travel(peer, c.Coordinator, netsim.LinkReplica, WriteAckSize)
			})
		} else if c.cluster.hintable(c.Coordinator, peer) {
			// The peer is down or severed: the async send would be lost in
			// flight. Buffer a hint instead and replay it on rejoin.
			c.cluster.bufferHint(c.Coordinator, peer, shard, key, v)
		} else {
			// Asynchronous replication with batching delay.
			tr.SendAfter(cfg.ReplicationDelay, c.Coordinator, peer, netsim.LinkReplica,
				replicationSize(key, value), func() {
					peerReplica.tab.apply(key, v)
				})
		}
	}
	acks.Wait()
	c.cluster.trc.End(syncSp, clock.Now())
	tr.Travel(c.Coordinator, c.Region, netsim.LinkClient, WriteAckSize)
	return v, nil
}
