package cassandra

// Wire-size model. The paper's bandwidth figures (Fig 8) measure kB
// transferred per operation on the client-replica link; we charge every
// message an explicit size consisting of a fixed header (framing, CQL-like
// envelope, digests) plus the payload. The constants approximate Cassandra's
// native protocol overheads closely enough for the figure shapes (C1 around
// 1.2 kB/op with YCSB's 1 KB records; +90% without the confirmation
// optimization; +27% with it under maximal divergence).
const (
	// ReadRequestOverhead covers the request envelope and key metadata.
	ReadRequestOverhead = 60
	// ReadResponseOverhead covers the response envelope and column metadata.
	ReadResponseOverhead = 96
	// ConfirmationSize is the tiny "final == preliminary" message of the
	// *CC optimization (§5.2): an envelope plus a digest, no payload.
	ConfirmationSize = 24
	// WriteRequestOverhead covers the mutation envelope.
	WriteRequestOverhead = 72
	// WriteAckSize is a write acknowledgment.
	WriteAckSize = 32
	// ReplicaReadRequest / ReplicaReadResponseOverhead are inter-replica
	// quorum messages (not counted in client-link efficiency).
	ReplicaReadRequest          = 48
	ReplicaReadResponseOverhead = 72
	// ReplicationOverhead is the envelope of an async replication push.
	ReplicationOverhead = 64
)

func readRequestSize(key string) int    { return ReadRequestOverhead + len(key) }
func readResponseSize(value []byte) int { return ReadResponseOverhead + len(value) }
func writeRequestSize(key string, value []byte) int {
	return WriteRequestOverhead + len(key) + len(value)
}
func replicaReadRequestSize(key string) int    { return ReplicaReadRequest + len(key) }
func replicaReadResponseSize(value []byte) int { return ReplicaReadResponseOverhead + len(value) }
func replicationSize(key string, value []byte) int {
	return ReplicationOverhead + len(key) + len(value)
}
