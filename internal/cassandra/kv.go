package cassandra

import (
	"context"

	"correctables/internal/binding"
	"correctables/internal/core"
)

// KV is the typed application-facing facade of a cassandra binding: Get and
// Put return typed Correctables (Correctable[[]byte] / Correctable[Ack]),
// so applications never touch interface{} or type assertions.
type KV struct {
	client *binding.Client
}

// NewKV builds the typed facade over a binding (wrapping it in a Client
// configured with opts — observers, operation timeout, label).
func NewKV(b *Binding, opts ...binding.Option) *KV {
	return &KV{client: binding.NewClient(b, opts...)}
}

// Client returns the underlying Correctables client (for level inspection
// and session creation).
func (kv *KV) Client() *binding.Client { return kv.client }

// Session opens a session over the facade's client: reads through it are
// guaranteed read-your-writes and monotonic reads per key (see
// binding.Session).
func (kv *KV) Session(opts ...binding.SessionOption) *binding.Session {
	return binding.NewSession(kv.client, opts...)
}

// Get reads key with incremental consistency guarantees: one view per
// requested level (all offered levels when none are given), weakest first.
func (kv *KV) Get(ctx context.Context, key string, levels ...core.Level) *core.Correctable[[]byte] {
	return binding.Invoke[[]byte](ctx, kv.client, binding.Get{Key: key}, levels...)
}

// GetWeak reads key at the weakest offered level (single view).
func (kv *KV) GetWeak(ctx context.Context, key string) *core.Correctable[[]byte] {
	return binding.InvokeWeak[[]byte](ctx, kv.client, binding.Get{Key: key})
}

// GetStrong reads key at the strongest offered level (single view).
func (kv *KV) GetStrong(ctx context.Context, key string) *core.Correctable[[]byte] {
	return binding.InvokeStrong[[]byte](ctx, kv.client, binding.Get{Key: key})
}

// Put writes key. The returned Correctable closes with an Ack once the
// write quorum acknowledged.
func (kv *KV) Put(ctx context.Context, key string, value []byte) *core.Correctable[binding.Ack] {
	return binding.InvokeStrong[binding.Ack](ctx, kv.client, binding.Put{Key: key, Value: value})
}
