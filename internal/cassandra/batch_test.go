package cassandra

import (
	"context"
	"fmt"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// TestBatchedGetMatchesUnbatchedSemantics: gets issued through a Batcher
// over a sharded correctable cluster coalesce into per-shard dispatches
// (CatBatch work appears on the coordinator tracks) while every session
// still observes the unbatched contract — a weak view first, then the
// LWW-reconciled strong view, both carrying the preloaded value and a
// version token.
func TestBatchedGetMatchesUnbatchedSemantics(t *testing.T) {
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := NewCluster(Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ConfirmationOpt:  true,
		Shards:           4,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		FlushServiceTime: 20 * time.Microsecond,
		Workers:          4,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trc := trace.New()
	cluster.SetTrace(trc)

	const n = 16
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
		cluster.Preload(keys[i], []byte(fmt.Sprintf("val-%02d", i)))
	}

	bind := NewBinding(NewClient(cluster, netsim.FRK, netsim.FRK), BindingConfig{})
	if sh, ok := bind.BatchKey(binding.Get{Key: keys[0]}); !ok || sh != cluster.ShardOf(keys[0]) {
		t.Fatalf("BatchKey(%q) = (%d,%v), want the owner shard", keys[0], sh, ok)
	}
	bt := binding.NewBatcher(bind, clock, 200*time.Microsecond)
	c := binding.NewClient(bt)
	ctx := context.Background()

	type view struct {
		weak, strong string
		err          error
	}
	views := make([]view, n)
	for i := range keys {
		i := i
		clock.Go(func() {
			cor := binding.Invoke[[]byte](ctx, c, binding.Get{Key: keys[i]})
			w, err := cor.WaitLevel(ctx, core.LevelWeak)
			if err != nil {
				views[i].err = err
				return
			}
			views[i].weak = string(w.Value)
			s, err := cor.Final(ctx)
			if err != nil {
				views[i].err = err
				return
			}
			views[i].strong = string(s.Value)
		})
	}
	clock.Drain()

	for i, v := range views {
		if v.err != nil {
			t.Fatalf("get %q: %v", keys[i], v.err)
		}
		want := fmt.Sprintf("val-%02d", i)
		if v.weak != want || v.strong != want {
			t.Errorf("get %q: weak=%q strong=%q, want %q", keys[i], v.weak, v.strong, want)
		}
	}
	totals := trc.CategoryTotals(0, clock.Now())
	if totals.Get(trace.CatBatch) == 0 {
		t.Error("no CatBatch work traced — gets did not ride coalesced dispatches")
	}
	if totals.Get(trace.CatRoute) != 0 {
		t.Error("batched dispatches must not pay the contact-node routing hop")
	}
}

// TestBatchKeyDeclinesVanilla: on a non-Correctable cluster the coalesced
// ICG round is unavailable, so BatchKey sends gets down the direct path.
func TestBatchKeyDeclinesVanilla(t *testing.T) {
	cluster, _, _ := newTestCluster(t, false, false)
	bind := NewBinding(NewClient(cluster, netsim.FRK, netsim.FRK), BindingConfig{})
	if _, ok := bind.BatchKey(binding.Get{Key: "k"}); ok {
		t.Error("vanilla cluster must not batch")
	}
	if _, ok := bind.BatchKey(binding.Put{Key: "k"}); ok {
		t.Error("puts must not batch")
	}
}
