package cassandra

import (
	"fmt"
	"hash/fnv"
	randv2 "math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"correctables/internal/netsim"
	"correctables/internal/ring"
	"correctables/internal/trace"
)

// Config describes a simulated Cassandra cluster.
type Config struct {
	// Regions places one replica per region per shard; len(Regions) is the
	// replication factor (the paper uses 3).
	Regions []netsim.Region
	// Transport carries all messages (required).
	Transport *netsim.Transport

	// Shards partitions the token space over a consistent-hash ring
	// (internal/ring): each shard owns a slice of the keyspace and gets its
	// own replica per region, so the replication factor and quorum geometry
	// are unchanged while aggregate capacity scales with Shards. Default 1
	// — the unsharded cluster the paper's figures run on.
	Shards int
	// VNodes is the number of virtual nodes per shard on the token ring
	// (default 64).
	VNodes int
	// RouteServiceTime is the contact node's work to look up the ring and
	// forward a request whose key belongs to another shard's coordinator
	// (default 250µs). Token-aware clients skip this hop entirely.
	RouteServiceTime time.Duration

	// Correctable enables the CC server-side modification: the coordinator
	// leaks a preliminary response after its local read, before gathering a
	// quorum (§5.2).
	Correctable bool
	// ConfirmationOpt enables the *CC optimization: when the final view
	// coincides with the preliminary, only a small confirmation message is
	// sent (§6.2.1 "Bandwidth Overhead").
	ConfirmationOpt bool

	// Workers is the per-replica worker-slot count (default 4).
	Workers int
	// ReadServiceTime is the coordinator/replica local work per read
	// (default 2ms model time).
	ReadServiceTime time.Duration
	// WriteServiceTime is the local work per write (default 2ms).
	WriteServiceTime time.Duration
	// FlushServiceTime is the extra coordinator work per preliminary flush
	// (default 500µs). This is what costs CC its few percent of throughput
	// (§6.2.1 "Performance Under Load").
	FlushServiceTime time.Duration
	// ReplicationDelay is the extra delay (beyond network latency) before an
	// asynchronous write propagation is applied on a peer replica,
	// modeling mutation batching and queueing. It governs the staleness
	// window and hence divergence (Fig 7). Default 10ms.
	ReplicationDelay time.Duration
	// ReadRepairChance is the probability that a quorum read pushes the
	// reconciled value to stale replicas (Cassandra's default is 0.1).
	ReadRepairChance float64

	// OpTimeout bounds each client operation in model time when a fault
	// interceptor is attached to the Transport (default 5s): an operation a
	// fault makes impossible — severed quorum, crashed coordinator — fails
	// with faults.ErrUnreachable instead of hanging. Without an interceptor
	// operations are never guarded (the fault-free hot path is unchanged).
	OpTimeout time.Duration

	// HintTTL bounds how long a coordinator keeps hints for an unreachable
	// peer (see hints.go; default 30s, negative disables hinted handoff).
	// Hints exist only under fault injection.
	HintTTL time.Duration
	// MaxHintsPerPeer caps each coordinator's per-peer hint queue,
	// drop-oldest (default 128).
	MaxHintsPerPeer int

	// Seed fixes the cluster RNG (read repair sampling).
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.VNodes <= 0 {
		out.VNodes = 64
	}
	if out.RouteServiceTime == 0 {
		out.RouteServiceTime = 250 * time.Microsecond
	}
	if out.Workers == 0 {
		out.Workers = 4
	}
	if out.ReadServiceTime == 0 {
		out.ReadServiceTime = 2 * time.Millisecond
	}
	if out.WriteServiceTime == 0 {
		out.WriteServiceTime = 2 * time.Millisecond
	}
	if out.FlushServiceTime == 0 {
		out.FlushServiceTime = 500 * time.Microsecond
	}
	if out.ReplicationDelay == 0 {
		out.ReplicationDelay = 10 * time.Millisecond
	}
	if out.OpTimeout == 0 {
		out.OpTimeout = 5 * time.Second
	}
	if out.HintTTL == 0 {
		out.HintTTL = 30 * time.Second
	}
	if out.MaxHintsPerPeer == 0 {
		out.MaxHintsPerPeer = 128
	}
	return out
}

// Replica is one storage node: the replica of one shard in one region.
type Replica struct {
	Region netsim.Region
	// Shard is the token-ring shard this replica serves.
	Shard  int
	ID     uint8
	tab    *table
	server *netsim.Server
}

// Get returns the replica's local version for key (for tests/harness).
func (r *Replica) Get(key string) Versioned { return r.tab.get(key) }

// Apply merges a version into the replica's local state.
func (r *Replica) Apply(key string, v Versioned) bool { return r.tab.apply(key, v) }

// Keys returns the number of keys stored locally.
func (r *Replica) Keys() int { return r.tab.len() }

// Server exposes the replica's bounded-capacity server. Admission
// controllers sample its QueueDelay as the coordinator backpressure signal.
func (r *Replica) Server() *netsim.Server { return r.server }

// readRepairShards spreads the read-repair RNG over independently locked
// PCG states (keyed by the read key) so concurrent clients don't serialize
// on one RNG lock.
const readRepairShards = 16

// Cluster is a set of replicas plus the shared transport. With Shards > 1
// the replicas form a grid: one replica per (shard, region), keys placed on
// shards by the consistent-hash token ring.
type Cluster struct {
	cfg Config
	tr  *netsim.Transport
	// replicas maps each region to its per-shard replicas (indexed by
	// shard). Slice layout keeps all iteration deterministic.
	replicas map[netsim.Region][]*Replica
	ring     *ring.Ring
	order    []netsim.Region
	// proximity caches, per coordinator region, every other replica region
	// sorted closest-first. Computed once at construction: the peer order
	// is needed on every read and write, and re-sorting per operation both
	// allocated and burned CPU on the hottest path.
	proximity map[netsim.Region][]netsim.Region
	ts        atomic.Uint64

	// hints is the hinted-handoff state (see hints.go); inert without a
	// fault interceptor.
	hints hintStore

	// trc, when set, records protocol-phase spans (flush, quorum wait,
	// repair, hint replay) on per-coordinator tracks; replica servers get
	// queue/service tracks of their own. Nil = tracing off.
	trc      *trace.Tracer
	phaseTrk map[netsim.Region]trace.Track

	repair [readRepairShards]struct {
		mu  sync.Mutex
		rng *randv2.Rand
	}
}

// NewCluster builds a cluster per cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cassandra: Config.Transport is required")
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("cassandra: at least one replica region is required")
	}
	c := &Cluster{
		cfg:      cfg,
		tr:       cfg.Transport,
		replicas: make(map[netsim.Region][]*Replica, len(cfg.Regions)),
		ring:     ring.New(ring.Config{Shards: cfg.Shards, VNodes: cfg.VNodes, Seed: cfg.Seed}),
	}
	for i := range c.repair {
		c.repair[i].rng = randv2.New(randv2.NewPCG(uint64(cfg.Seed+7), uint64(i)))
	}
	for i, region := range cfg.Regions {
		if _, dup := c.replicas[region]; dup {
			return nil, fmt.Errorf("cassandra: duplicate replica region %s", region)
		}
		reps := make([]*Replica, cfg.Shards)
		for sh := range reps {
			reps[sh] = &Replica{
				Region: region,
				Shard:  sh,
				ID:     uint8(i),
				tab:    newTable(),
				server: netsim.NewServer(cfg.Transport.Clock(), cfg.Workers),
			}
		}
		c.replicas[region] = reps
		c.order = append(c.order, region)
	}
	c.proximity = make(map[netsim.Region][]netsim.Region, len(c.order))
	for _, from := range c.order {
		others := make([]netsim.Region, 0, len(c.order)-1)
		for _, r := range c.order {
			if r != from {
				others = append(others, r)
			}
		}
		c.proximity[from] = c.tr.Model().SortByProximity(from, others)
	}
	c.wireHints()
	return c, nil
}

// SetTrace threads a span tracer through the cluster: each replica's
// bounded server records queue/service spans on "server/<region>" (shard 0)
// or "server/<region>#<shard>", and the client protocol paths record phase
// spans (preliminary flush, quorum wait, read repair, shard routing, batch
// dispatch, hint replay) on "cass/<region>" coordinator tracks. Install at
// wiring time, before traffic starts.
func (c *Cluster) SetTrace(t *trace.Tracer) {
	c.trc = t
	c.phaseTrk = make(map[netsim.Region]trace.Track, len(c.order))
	for _, region := range c.order {
		for sh, rep := range c.replicas[region] {
			name := "server/" + string(region)
			if sh > 0 {
				name = fmt.Sprintf("server/%s#%d", region, sh)
			}
			rep.server.SetTrace(t, name)
		}
		c.phaseTrk[region] = t.Track("cass/" + string(region))
	}
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Transport returns the cluster transport.
func (c *Cluster) Transport() *netsim.Transport { return c.tr }

// Replica returns the shard-0 replica in the given region — the contact
// node default clients connect to (and the whole region on an unsharded
// cluster). Admission controllers sample its queue delay as the
// backpressure signal.
func (c *Cluster) Replica(region netsim.Region) *Replica {
	return c.ReplicaAt(0, region)
}

// ReplicaAt returns the replica of the given shard in the given region.
func (c *Cluster) ReplicaAt(shard int, region netsim.Region) *Replica {
	reps, ok := c.replicas[region]
	if !ok {
		panic(fmt.Sprintf("cassandra: no replica in region %s", region))
	}
	if shard < 0 || shard >= len(reps) {
		panic(fmt.Sprintf("cassandra: no shard %d (have %d)", shard, len(reps)))
	}
	return reps[shard]
}

// Ring returns the cluster's token ring.
func (c *Cluster) Ring() *ring.Ring { return c.ring }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// ShardOf returns the shard owning key per the token ring.
func (c *Cluster) ShardOf(key string) int {
	if c.cfg.Shards == 1 {
		return 0
	}
	return c.ring.ShardOf(key)
}

// Regions returns the replica regions in declaration order.
func (c *Cluster) Regions() []netsim.Region {
	return append([]netsim.Region(nil), c.order...)
}

// ReplicationFactor returns the number of replicas.
func (c *Cluster) ReplicationFactor() int { return len(c.order) }

// nextTS issues a cluster-wide monotonically increasing write timestamp.
// Real Cassandra uses client wall clocks; a logical counter gives the same
// last-write-wins semantics deterministically.
func (c *Cluster) nextTS() uint64 { return c.ts.Add(1) }

// rollReadRepair samples the read-repair decision from the key's RNG shard.
func (c *Cluster) rollReadRepair(key string) bool {
	if c.cfg.ReadRepairChance <= 0 {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	shard := &c.repair[h.Sum32()%readRepairShards]
	shard.mu.Lock()
	defer shard.mu.Unlock()
	return shard.rng.Float64() < c.cfg.ReadRepairChance
}

// othersByProximity returns all replica regions except `from`, closest
// first (quorum gathering order). The returned slice is the cached,
// construction-time copy: callers must treat it as read-only.
func (c *Cluster) othersByProximity(from netsim.Region) []netsim.Region {
	return c.proximity[from]
}

// NearestRemote returns the replica region closest to `from` that is not
// `from` itself; used to emulate the paper's "client connects to a remote
// replica" deployments (e.g. the IRL client contacting FRK).
func (c *Cluster) NearestRemote(from netsim.Region) netsim.Region {
	var best netsim.Region
	var bestRTT time.Duration
	for _, r := range c.order {
		if r == from {
			continue
		}
		rtt := c.tr.Model().RTT(from, r)
		if best == "" || rtt < bestRTT {
			best, bestRTT = r, rtt
		}
	}
	if best == "" {
		return from
	}
	return best
}

// Preload writes initial data directly into the key's owner-shard replicas
// (no traffic, no latency): the dataset-loading phase of an experiment.
func (c *Cluster) Preload(key string, value []byte) {
	v := Versioned{Value: append([]byte(nil), value...), TS: c.nextTS(), Exists: true}
	sh := c.ShardOf(key)
	for _, region := range c.order {
		c.replicas[region][sh].tab.apply(key, v)
	}
}
