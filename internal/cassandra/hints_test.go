package cassandra

import (
	"testing"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// newHintedCluster builds a faulted cluster with read repair disabled, so
// any convergence observed comes from hinted handoff alone.
func newHintedCluster(t *testing.T, hintTTL time.Duration, maxHints int) (*Cluster, *faults.Injector, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	cluster, err := NewCluster(Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		OpTimeout:        500 * time.Millisecond,
		HintTTL:          hintTTL,
		MaxHintsPerPeer:  maxHints,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, inj, clock
}

// TestHintedHandoffReplaysOnRestart: writes issued while a replica is down
// are buffered as hints on the coordinator and delivered on restart — with
// read repair off, the rejoining replica converges through handoff alone,
// where it previously stayed stale until an (unsampled) repair.
func TestHintedHandoffReplaysOnRestart(t *testing.T) {
	cluster, inj, clock := newHintedCluster(t, 0, 0) // defaults: 30s TTL, 128 cap
	client := NewClient(cluster, netsim.FRK, netsim.FRK)

	inj.Apply(faults.Crash{Region: netsim.VRG})
	for i := 0; i < 5; i++ {
		// W=1: the ack never needs VRG; its async replication is hinted.
		if err := client.Write("k", []byte{byte('a' + i)}, 1); err != nil {
			t.Fatalf("write %d with VRG down: %v", i, err)
		}
	}
	if st := cluster.HintStats(); st.Queued != 5 || st.Replayed != 0 {
		t.Fatalf("stats = %+v, want 5 queued, none replayed", st)
	}
	if got := cluster.Replica(netsim.VRG).Get("k"); got.Exists {
		t.Fatalf("crashed replica saw %q while down", got.Value)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second) // replayed hints travel FRK->VRG
	if got := cluster.Replica(netsim.VRG).Get("k"); string(got.Value) != "e" {
		t.Fatalf("rejoined replica has %q, want final write %q via hints", got.Value, "e")
	}
	if st := cluster.HintStats(); st.Replayed != 5 || st.Expired != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want all 5 replayed", st)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestHintTTLExpiry: a replica that stays down longer than HintTTL rejoins
// without the expired hints — the bounded window that keeps hint queues
// from masquerading as a durable log.
func TestHintTTLExpiry(t *testing.T) {
	cluster, inj, clock := newHintedCluster(t, 2*time.Second, 0)
	client := NewClient(cluster, netsim.FRK, netsim.FRK)

	inj.Apply(faults.Crash{Region: netsim.VRG})
	if err := client.Write("k", []byte("v"), 1); err != nil {
		t.Fatal(err)
	}
	clock.Sleep(3 * time.Second) // outlive the TTL
	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second)

	if got := cluster.Replica(netsim.VRG).Get("k"); got.Exists {
		t.Fatalf("expired hint still delivered %q", got.Value)
	}
	if st := cluster.HintStats(); st.Expired != 1 || st.Replayed != 0 {
		t.Fatalf("stats = %+v, want the one hint expired", st)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestHintQueueBounded: the per-peer queue caps at MaxHintsPerPeer with
// drop-oldest eviction — the newest mutations win, and the drop counter
// records the loss.
func TestHintQueueBounded(t *testing.T) {
	cluster, inj, clock := newHintedCluster(t, 0, 3)
	client := NewClient(cluster, netsim.FRK, netsim.FRK)

	inj.Apply(faults.Crash{Region: netsim.VRG})
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if err := client.Write(key, []byte{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := cluster.HintStats(); st.Dropped != 7 {
		t.Fatalf("stats = %+v, want 7 dropped by the cap of 3", st)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second)
	vrg := cluster.Replica(netsim.VRG)
	if got := vrg.Keys(); got != 3 {
		t.Fatalf("rejoined replica has %d keys, want the 3 newest hints", got)
	}
	// Drop-oldest: the surviving hints are the last three writes.
	for _, key := range []string{"h", "i", "j"} {
		if !vrg.Get(key).Exists {
			t.Errorf("newest hint %q missing after replay", key)
		}
	}
	inj.Quiesce()
	clock.Drain()
}

// TestHintsFollowPartitionHeal: hints buffer across a partition (not just a
// crash) and replay on the heal transition.
func TestHintsFollowPartitionHeal(t *testing.T) {
	cluster, inj, clock := newHintedCluster(t, 0, 0)
	client := NewClient(cluster, netsim.FRK, netsim.FRK)

	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.FRK, netsim.IRL}, {netsim.VRG},
	}})
	if err := client.Write("k", []byte("v"), 2); err != nil { // IRL acks the quorum
		t.Fatal(err)
	}
	clock.Sleep(time.Second)
	if cluster.Replica(netsim.VRG).Get("k").Exists {
		t.Fatal("write crossed the partition")
	}

	inj.Apply(faults.Heal{})
	clock.Sleep(time.Second)
	if got := cluster.Replica(netsim.VRG).Get("k"); string(got.Value) != "v" {
		t.Fatalf("severed replica has %q after heal, want %q via hints", got.Value, "v")
	}
	inj.Quiesce()
	clock.Drain()
}
