package cassandra

import (
	"context"
	"fmt"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// BindingConfig tunes the Correctables binding for a cassandra cluster.
type BindingConfig struct {
	// StrongQuorum is the read quorum used for LevelStrong reads (the
	// paper's CC2 uses 2, CC3 uses 3). Default 2.
	StrongQuorum int
	// WriteQuorum is the write quorum (paper: 1). Default 1.
	WriteQuorum int
}

func (b BindingConfig) withDefaults() BindingConfig {
	if b.StrongQuorum == 0 {
		b.StrongQuorum = 2
	}
	if b.WriteQuorum == 0 {
		b.WriteQuorum = 1
	}
	return b
}

// Binding adapts a cassandra Client to the Correctables binding API. It
// offers two consistency levels: weak (R=1, the coordinator's local state)
// and strong (R=StrongQuorum, LWW-reconciled). When both levels are
// requested on a Correctable cluster, a single storage request yields both
// views (server-side ICG, §5.2); on a vanilla cluster the binding falls
// back to two independent requests, the client-side composition the paper
// describes as its conservative baseline.
type Binding struct {
	client *Client
	cfg    BindingConfig
}

var _ binding.Binding = (*Binding)(nil)

// NewBinding wraps client.
func NewBinding(client *Client, cfg BindingConfig) *Binding {
	return &Binding{client: client, cfg: cfg.withDefaults()}
}

// Client returns the underlying storage client.
func (b *Binding) Client() *Client { return b.client }

// ConsistencyLevels implements binding.Binding.
func (b *Binding) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelWeak, core.LevelStrong}
}

// Close implements binding.Binding.
func (b *Binding) Close() error { return nil }

// SubmitOperation implements binding.Binding. The client library bounds
// each invocation with the binding's DefaultOpTimeout (model time), so the
// protocol paths below run unguarded: a late completion's views are
// refused by the closed Correctable.
func (b *Binding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	b.clock().Go(func() {
		switch o := op.(type) {
		case binding.Get:
			b.get(o, levels, cb)
		case binding.Put:
			b.put(o, levels, cb)
		default:
			cb(binding.Result{Err: fmt.Errorf("%w: cassandra has no %q", binding.ErrUnsupportedOperation, op.OpName())})
		}
	})
}

// clock returns the cluster's simulation clock.
func (b *Binding) clock() netsim.Clock { return b.client.cluster.tr.Clock() }

func (b *Binding) get(op binding.Get, levels core.Levels, cb binding.Callback) {
	wantWeak := levels.Contains(core.LevelWeak)
	wantStrong := levels.Contains(core.LevelStrong)
	emit := func(v ReadView, level core.Level) {
		cb(binding.Result{
			Value:   append([]byte(nil), v.Value...),
			Level:   level,
			Version: v.Version.Token(),
		})
	}
	switch {
	case wantWeak && wantStrong:
		if b.client.cluster.cfg.Correctable {
			// One request, two responses (preliminary + final).
			err := b.client.read(op.Key, b.cfg.StrongQuorum, true, func(v ReadView) {
				emit(v, v.Level)
			})
			if err != nil {
				cb(binding.Result{Err: err})
			}
			return
		}
		// Vanilla store: two independent requests (weak first). The strong
		// one determines completion; this is the baseline the paper notes
		// costs extra bandwidth and risks WAN reordering.
		weakDone := b.clock().NewEvent()
		b.clock().Go(func() {
			defer weakDone.Fire()
			_ = b.client.read(op.Key, 1, false, func(v ReadView) {
				emit(v, core.LevelWeak)
			})
		})
		err := b.client.read(op.Key, b.cfg.StrongQuorum, false, func(v ReadView) {
			weakDone.Wait() // keep view order monotone
			emit(v, core.LevelStrong)
		})
		if err != nil {
			cb(binding.Result{Err: err})
		}
	case wantStrong:
		if err := b.client.read(op.Key, b.cfg.StrongQuorum, false, func(v ReadView) {
			emit(v, core.LevelStrong)
		}); err != nil {
			cb(binding.Result{Err: err})
		}
	case wantWeak:
		if err := b.client.read(op.Key, 1, false, func(v ReadView) {
			emit(v, core.LevelWeak)
		}); err != nil {
			cb(binding.Result{Err: err})
		}
	default:
		cb(binding.Result{Err: fmt.Errorf("%w: %v", binding.ErrUnsupportedLevel, levels)})
	}
}

func (b *Binding) put(op binding.Put, levels core.Levels, cb binding.Callback) {
	// Writes use W=WriteQuorum regardless of the requested read levels; the
	// single acknowledgment closes the Correctable at the strongest
	// requested level, carrying the committed version's token.
	v, err := b.client.write(op.Key, op.Value, b.cfg.WriteQuorum)
	if err != nil {
		cb(binding.Result{Err: err})
		return
	}
	cb(binding.Result{Value: nil, Level: levels.Strongest(), Version: v.Token()})
}

// Scheduler implements binding.SchedulerProvider: Correctables over this
// binding block through the cluster's simulation clock.
func (b *Binding) Scheduler() core.Scheduler {
	return binding.SchedulerFor(b.client.cluster.tr.Clock())
}

// Versions implements binding.Versioner: views carry LWW version tokens.
func (b *Binding) Versions() bool { return true }

// DefaultOpTimeout implements binding.TimeoutProvider: under fault
// injection each invocation is bounded by the cluster's OpTimeout of model
// time (the fault-free path stays unbounded and unchanged).
func (b *Binding) DefaultOpTimeout() time.Duration {
	if b.client.cluster.tr.Interceptor() == nil {
		return 0
	}
	return b.client.cluster.cfg.OpTimeout
}
