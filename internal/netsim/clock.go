package netsim

import "time"

// sleepSlack is the measured overhead/granularity of time.Sleep on this
// host (Linux timer slack is commonly around a millisecond). Sleeps are
// compensated by this amount so that scaled model delays stay accurate even
// when they map to wall durations near the granularity floor.
var sleepSlack = measureSleepSlack()

func measureSleepSlack() time.Duration {
	const n = 4
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		time.Sleep(50 * time.Microsecond)
		total += time.Since(start)
	}
	s := total / n
	if s < 100*time.Microsecond {
		s = 100 * time.Microsecond
	}
	if s > 5*time.Millisecond {
		s = 5 * time.Millisecond
	}
	return s
}

// sleepEps is the tolerated undershoot: remainders at or below it return
// immediately instead of rounding up to the sleep floor. A 4x-10x overshoot
// on sub-floor sleeps would distort scaled latencies far more than this
// bounded early return does (capacity accounting is unaffected — it uses
// absolute deadlines, not sleep outcomes).
var sleepEps = minDuration(300*time.Microsecond, sleepSlack/4)

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// sleepUntil blocks until the wall-clock deadline, compensating for the
// sleep granularity floor. Overshoot is bounded by roughly one slack
// quantum, undershoot by sleepEps, and neither accumulates across calls
// that target absolute deadlines (Server capacity accounting relies on
// this).
func sleepUntil(deadline time.Time) {
	for {
		d := time.Until(deadline)
		if d <= sleepEps {
			return
		}
		if d > sleepSlack {
			time.Sleep(d - sleepSlack)
			continue
		}
		time.Sleep(d)
		return
	}
}

// Clock scales simulated ("model") durations to wall-clock durations. A
// scale of 1.0 runs in real time (a 20 ms model RTT takes 20 ms); a scale of
// 0.1 runs 10x faster. Tests and benchmarks use small scales; the icgbench
// CLI defaults to a moderate scale and reports all latencies in model time,
// so output matches the paper's axes regardless of scale.
//
// The zero value is unusable; use NewClock.
type Clock struct {
	scale float64
}

// NewClock returns a Clock with the given model-to-wall scale factor.
// Scale must be > 0.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		panic("netsim: clock scale must be positive")
	}
	return &Clock{scale: scale}
}

// Scale returns the configured scale factor.
func (c *Clock) Scale() float64 { return c.scale }

// Sleep blocks for the wall-clock equivalent of model duration d.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	sleepUntil(time.Now().Add(c.ToWall(d)))
}

// SleepUntilWall blocks until the given wall-clock deadline with slack
// compensation.
func (c *Clock) SleepUntilWall(deadline time.Time) { sleepUntil(deadline) }

// ToWall converts a model duration to a wall-clock duration.
func (c *Clock) ToWall(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.scale)
}

// ToModel converts a measured wall-clock duration back to model time.
func (c *Clock) ToModel(d time.Duration) time.Duration {
	return time.Duration(float64(d) / c.scale)
}

// Stopwatch measures elapsed wall time and reports it in model time.
type Stopwatch struct {
	clock *Clock
	start time.Time
}

// StartStopwatch begins timing.
func (c *Clock) StartStopwatch() Stopwatch {
	return Stopwatch{clock: c, start: time.Now()}
}

// ElapsedModel returns the model-time duration since the stopwatch started.
func (s Stopwatch) ElapsedModel() time.Duration {
	return s.clock.ToModel(time.Since(s.start))
}
