package netsim

import (
	"sync"
	"time"
)

// Clock is the time substrate of the simulation. All deadline math is done
// in model time: a monotonically increasing time.Duration measured from the
// clock's creation. Two implementations exist:
//
//   - VirtualClock: a deterministic discrete-event scheduler. Nothing ever
//     sleeps on the host; whenever every registered actor is blocked, model
//     time jumps straight to the earliest pending deadline. Experiments run
//     at CPU speed and are bit-for-bit reproducible from a seed.
//   - WallClock: scales model durations to wall-clock durations and really
//     sleeps (with granularity compensation). Used for real-time demos.
//
// Code running under a clock is organized into actors and callbacks. The
// goroutine that created the clock is the root actor; further actors must
// be spawned with Go (never the bare go statement) and may only block
// through the clock: Sleep/SleepUntil, or the Event/Queue/Group
// primitives. A goroutine that must block on something foreign (an
// unconverted channel, an external process) has to bracket the wait with
// BlockOn, at the price of determinism for that wait.
//
// The actor-vs-callback rule: work that blocks mid-flight (multi-hop
// protocol logic, server-slot queueing) needs an actor — Go gives it a
// stack to park. Fire-and-forget work that just runs at a deadline
// (asynchronous replication applying a mutation, a commit delivery, a
// block-mining tick) should use RunAt/RunAfter instead: under a
// VirtualClock a callback costs no goroutine spawn and no channel
// rendezvous, which is what makes million-actor runs affordable. Callbacks
// MUST NOT block — under a VirtualClock a blocking call from a callback
// panics (fail fast); a callback that needs to block spawns an actor with
// Go. Under a WallClock callbacks run on their own goroutines
// (time.AfterFunc), so the rule is not enforced there — write callbacks to
// the virtual discipline.
type Clock interface {
	// Now returns the current model time.
	Now() time.Duration
	// Sleep blocks the calling actor for the model duration d.
	Sleep(d time.Duration)
	// SleepUntil blocks the calling actor until the absolute model instant t.
	SleepUntil(t time.Duration)
	// Go spawns fn as a new actor tracked by the clock.
	Go(fn func())
	// RunAt schedules fn to run at the absolute model instant t without
	// spawning an actor. fn must not block; see the type comment.
	RunAt(t time.Duration, fn func())
	// RunAfter schedules fn to run after model duration d without spawning
	// an actor. fn must not block; see the type comment.
	RunAfter(d time.Duration, fn func())
	// BlockOn runs wait (which may block on non-clock primitives) while the
	// rest of the simulation continues. Escape hatch; see the type comment.
	BlockOn(wait func())
	// NewEvent returns a one-shot broadcast usable by actors of this clock.
	NewEvent() Event
	// NewQueue returns an unbounded FIFO usable by actors of this clock.
	NewQueue() Queue
	// NewGroup returns a WaitGroup analogue usable by actors of this clock.
	NewGroup() Group
	// StartStopwatch begins measuring model time.
	StartStopwatch() Stopwatch
}

// Event is a one-shot broadcast: Wait blocks until Fire has been called.
// Fire is idempotent; Wait after Fire returns immediately.
type Event interface {
	Fire()
	Wait()
}

// Queue is an unbounded FIFO. Put never blocks; Get blocks until an item is
// available. Under a VirtualClock, items are handed to waiting actors in
// deterministic FIFO order.
type Queue interface {
	Put(v any)
	Get() any
}

// Group counts outstanding work like sync.WaitGroup: Wait blocks until the
// counter, moved by Add and Done, reaches zero.
type Group interface {
	Add(n int)
	Done()
	Wait()
}

// Stopwatch measures elapsed model time on any Clock.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// ElapsedModel returns the model time elapsed since the stopwatch started.
func (s Stopwatch) ElapsedModel() time.Duration {
	return s.clock.Now() - s.start
}

// sleepSlack is the measured overhead/granularity of time.Sleep on this
// host (Linux timer slack is commonly around a millisecond). WallClock
// sleeps are compensated by this amount so that scaled model delays stay
// accurate even when they map to wall durations near the granularity floor.
var sleepSlack = measureSleepSlack()

func measureSleepSlack() time.Duration {
	const n = 4
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		time.Sleep(50 * time.Microsecond)
		total += time.Since(start)
	}
	s := total / n
	if s < 100*time.Microsecond {
		s = 100 * time.Microsecond
	}
	if s > 5*time.Millisecond {
		s = 5 * time.Millisecond
	}
	return s
}

// sleepEps is the tolerated undershoot: remainders at or below it return
// immediately instead of rounding up to the sleep floor. A 4x-10x overshoot
// on sub-floor sleeps would distort scaled latencies far more than this
// bounded early return does (capacity accounting is unaffected — it uses
// absolute deadlines, not sleep outcomes).
var sleepEps = minDuration(300*time.Microsecond, sleepSlack/4)

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// sleepUntil blocks until the wall-clock deadline, compensating for the
// sleep granularity floor. Overshoot is bounded by roughly one slack
// quantum, undershoot by sleepEps, and neither accumulates across calls
// that target absolute deadlines.
func sleepUntil(deadline time.Time) {
	for {
		d := time.Until(deadline)
		if d <= sleepEps {
			return
		}
		if d > sleepSlack {
			time.Sleep(d - sleepSlack)
			continue
		}
		time.Sleep(d)
		return
	}
}

// WallClock scales simulated ("model") durations to wall-clock durations
// and really sleeps. A scale of 1.0 runs in real time (a 20 ms model RTT
// takes 20 ms); a scale of 0.1 runs 10x faster. Latencies are reported in
// model time, so output matches the paper's axes regardless of scale.
//
// The zero value is unusable; use NewClock.
type WallClock struct {
	scale float64
	epoch time.Time
}

var _ Clock = (*WallClock)(nil)

// NewClock returns a WallClock with the given model-to-wall scale factor.
// Scale must be > 0.
func NewClock(scale float64) *WallClock {
	if scale <= 0 {
		panic("netsim: clock scale must be positive")
	}
	return &WallClock{scale: scale, epoch: time.Now()}
}

// Scale returns the configured scale factor.
func (c *WallClock) Scale() float64 { return c.scale }

// Now implements Clock: the model time elapsed since the clock's creation.
func (c *WallClock) Now() time.Duration { return c.ToModel(time.Since(c.epoch)) }

// Sleep blocks for the wall-clock equivalent of model duration d.
func (c *WallClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	sleepUntil(time.Now().Add(c.ToWall(d)))
}

// SleepUntil blocks until the wall instant corresponding to model time t.
func (c *WallClock) SleepUntil(t time.Duration) {
	sleepUntil(c.epoch.Add(c.ToWall(t)))
}

// Go implements Clock: a plain goroutine (the OS scheduler interleaves
// wall-clock actors).
func (c *WallClock) Go(fn func()) { go fn() }

// RunAt implements Clock: fn runs on its own goroutine at the wall instant
// corresponding to model time t (immediately if t is past).
func (c *WallClock) RunAt(t time.Duration, fn func()) {
	c.RunAfter(t-c.Now(), fn)
}

// RunAfter implements Clock: fn runs on its own goroutine after the
// wall-clock equivalent of model duration d.
func (c *WallClock) RunAfter(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	time.AfterFunc(c.ToWall(d), fn)
}

// BlockOn implements Clock: wall actors may block on anything.
func (c *WallClock) BlockOn(wait func()) { wait() }

// NewEvent implements Clock.
func (c *WallClock) NewEvent() Event { return &wallEvent{ch: make(chan struct{})} }

// NewQueue implements Clock.
func (c *WallClock) NewQueue() Queue {
	q := &wallQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// NewGroup implements Clock.
func (c *WallClock) NewGroup() Group { return &wallGroup{} }

// StartStopwatch begins timing.
func (c *WallClock) StartStopwatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// ToWall converts a model duration to a wall-clock duration.
func (c *WallClock) ToWall(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.scale)
}

// ToModel converts a measured wall-clock duration back to model time.
func (c *WallClock) ToModel(d time.Duration) time.Duration {
	return time.Duration(float64(d) / c.scale)
}

// wallEvent is a chan-backed one-shot broadcast.
type wallEvent struct {
	once sync.Once
	ch   chan struct{}
}

func (e *wallEvent) Fire() { e.once.Do(func() { close(e.ch) }) }
func (e *wallEvent) Wait() { <-e.ch }

// wallQueue is an unbounded cond-backed FIFO.
type wallQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []any
}

func (q *wallQueue) Put(v any) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *wallQueue) Get() any {
	q.mu.Lock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.mu.Unlock()
	return v
}

// wallGroup wraps sync.WaitGroup.
type wallGroup struct{ wg sync.WaitGroup }

func (g *wallGroup) Add(n int) { g.wg.Add(n) }
func (g *wallGroup) Done()     { g.wg.Done() }
func (g *wallGroup) Wait()     { g.wg.Wait() }
