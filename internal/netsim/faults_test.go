package netsim

import (
	"testing"
	"time"
)

// stubInterceptor returns a fixed verdict/factor; AwaitPassable flips the
// verdict to deliver so stalled senders make progress on the recheck.
type stubInterceptor struct {
	verdict Verdict
	factor  float64
	awaited int
}

func (s *stubInterceptor) Intercept(from, to Region, class string) (Verdict, float64) {
	return s.verdict, s.factor
}

func (s *stubInterceptor) AwaitPassable(from, to Region) {
	s.awaited++
	s.verdict = VerdictDeliver
}

func TestTransportInterceptorDeliverFactor(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), NewMeter(), 1)
	base := tr.Model().OneWay(IRL, VRG)

	sw := clock.StartStopwatch()
	tr.Travel(IRL, VRG, LinkClient, 10)
	plain := sw.ElapsedModel()

	tr.SetInterceptor(&stubInterceptor{verdict: VerdictDeliver, factor: 5})
	sw = clock.StartStopwatch()
	tr.Travel(IRL, VRG, LinkClient, 10)
	spiked := sw.ElapsedModel()

	if spiked < 4*base || plain > 2*base {
		t.Errorf("plain %v, x5 %v (one-way %v): factor not applied", plain, spiked, base)
	}
	clock.Drain()
}

func TestTransportInterceptorDropAndStallAsync(t *testing.T) {
	clock := NewVirtualClock()
	meter := NewMeter()
	tr := NewTransport(clock, DefaultLatencies(), meter, 1)

	delivered := 0
	tr.SetInterceptor(&stubInterceptor{verdict: VerdictDrop, factor: 1})
	tr.Send(IRL, VRG, LinkReplica, 64, func() { delivered++ })
	tr.SetInterceptor(&stubInterceptor{verdict: VerdictStall, factor: 1})
	tr.SendAfter(time.Millisecond, IRL, VRG, LinkReplica, 64, func() { delivered++ })
	clock.Drain()

	if delivered != 0 {
		t.Errorf("%d async sends delivered through drop/stall verdicts", delivered)
	}
	if got := meter.Dropped(LinkReplica); got.Messages != 2 || got.Bytes != 128 {
		t.Errorf("dropped stats = %+v, want 2 msgs / 128 bytes", got)
	}
	if got := meter.Class(LinkReplica); got.Messages != 0 {
		t.Errorf("delivered stats = %+v, want untouched", got)
	}
}

func TestTransportInterceptorStallSyncRetries(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), NewMeter(), 1)
	icept := &stubInterceptor{verdict: VerdictStall, factor: 1}
	tr.SetInterceptor(icept)
	tr.Travel(IRL, VRG, LinkClient, 10) // AwaitPassable flips to deliver
	if icept.awaited != 1 {
		t.Errorf("AwaitPassable called %d times, want 1", icept.awaited)
	}
	if got := tr.Meter().Class(LinkClient); got.Messages != 1 {
		t.Errorf("stalled-then-delivered message not accounted: %+v", got)
	}
	clock.Drain()
}

func TestMeterDroppedSeparateAndReset(t *testing.T) {
	m := NewMeter()
	m.Account(LinkClient, 100)
	m.AccountDropped(LinkClient, 40)
	m.AccountDropped("custom", 7)
	if got := m.Snapshot()[LinkClient]; got.Bytes != 100 {
		t.Errorf("delivered snapshot = %+v", got)
	}
	snap := m.SnapshotDropped()
	if snap[LinkClient].Bytes != 40 || snap["custom"].Messages != 1 {
		t.Errorf("dropped snapshot = %+v", snap)
	}
	m.Reset()
	if len(m.SnapshotDropped()) != 0 || len(m.Snapshot()) != 0 {
		t.Error("Reset left counters behind")
	}
}
