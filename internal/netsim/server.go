package netsim

import (
	"sync"
	"time"

	"correctables/internal/trace"
)

// Server models the finite processing capacity of one storage node. Every
// message handled by the node passes through Process, which reserves one of
// the node's worker slots for the service time. Under load, requests queue
// for a slot, which is what bends the latency/throughput curves of Figure 6
// and caps attainable throughput.
//
// Capacity is tracked with per-slot busy-until deadlines in model time: the
// reservation math is exact whatever the clock implementation, so
// saturation throughput is not distorted by the host's sleep resolution
// (and under a VirtualClock there is no sleeping at all).
//
// Preliminary flushing in Correctable Cassandra consumes extra coordinator
// service time per read (§6.2.1 "Performance Under Load"), which is why CC
// saturates slightly earlier than the baseline — call Process once more with
// the flush cost to model it.
type Server struct {
	clock Clock

	// trc, when set, records queue-wait and service spans on trcTrack.
	// Because reservations are exact deadlines, both spans are emitted at
	// reservation time with their true (possibly future) model instants.
	trc      *trace.Tracer
	trcTrack trace.Track

	mu       sync.Mutex
	slotFree []time.Duration // model instant each slot becomes free
	busy     time.Duration   // accumulated model-time service
	handled  int64
}

// NewServer creates a server with the given number of worker slots.
func NewServer(clock Clock, workers int) *Server {
	if workers <= 0 {
		workers = 1
	}
	return &Server{clock: clock, slotFree: make([]time.Duration, workers)}
}

// reserve books the earliest available slot for cost and returns the
// completion deadline (model time).
func (s *Server) reserve(cost time.Duration, now time.Duration) time.Duration {
	s.mu.Lock()
	idx := 0
	for i := 1; i < len(s.slotFree); i++ {
		if s.slotFree[i] < s.slotFree[idx] {
			idx = i
		}
	}
	start := s.slotFree[idx]
	if start < now {
		start = now
	}
	end := start + cost
	s.slotFree[idx] = end
	s.busy += cost
	s.handled++
	s.mu.Unlock()
	return end
}

// SetTrace installs a tracer recording this server's queue/service spans
// on a track with the given name. Install at wiring time.
func (s *Server) SetTrace(trc *trace.Tracer, track string) {
	s.trc = trc
	s.trcTrack = trc.Track(track)
}

// Process occupies a worker slot for the model-time cost, blocking through
// any queueing delay plus the service time itself.
func (s *Server) Process(cost time.Duration) {
	s.clock.SleepUntil(s.Reserve(cost))
}

// Reserve books a worker slot for cost without blocking and returns the
// model instant the reserved work completes; the caller SleepUntils the
// deadline itself. The batched dispatch path reserves one slot per
// coalesced operation — paying the queueing model exactly per op — and
// then blocks once on the latest deadline, so a batch of k operations
// arms one timer instead of k.
func (s *Server) Reserve(cost time.Duration) time.Duration {
	now := s.clock.Now()
	end := s.reserve(cost, now)
	if s.trc != nil {
		if start := end - cost; start > now {
			s.trc.Span(s.trcTrack, trace.CatQueue, "wait", "", now, start)
		}
		s.trc.Span(s.trcTrack, trace.CatServer, "serve", "", end-cost, end)
	}
	return end
}

// TryProcess is Process but gives up immediately if every slot is already
// busy, reporting whether the work was done. Used for strictly optional
// work that an overloaded node would shed.
func (s *Server) TryProcess(cost time.Duration) bool {
	now := s.clock.Now()
	s.mu.Lock()
	idx := -1
	for i := range s.slotFree {
		if s.slotFree[i] <= now {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return false
	}
	end := now + cost
	s.slotFree[idx] = end
	s.busy += cost
	s.handled++
	s.mu.Unlock()
	if s.trc != nil {
		s.trc.Span(s.trcTrack, trace.CatServer, "serve", "", now, end)
	}
	s.clock.SleepUntil(end)
	return true
}

// QueueDelay returns the queueing delay a request arriving now would incur
// before any worker slot frees up (0 when a slot is idle). Because
// reservations are exact per-slot deadlines in model time, this is the
// precise backlog signal — no sampling error — which makes it the natural
// input for queue-delay-threshold admission control (see internal/load).
func (s *Server) QueueDelay() time.Duration {
	now := s.clock.Now()
	s.mu.Lock()
	earliest := s.slotFree[0]
	for _, t := range s.slotFree[1:] {
		if t < earliest {
			earliest = t
		}
	}
	s.mu.Unlock()
	if earliest <= now {
		return 0
	}
	return earliest - now
}

// Handled returns the number of completed Process calls.
func (s *Server) Handled() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handled
}

// BusyModelTime returns the total model time reserved for service.
func (s *Server) BusyModelTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busy
}
