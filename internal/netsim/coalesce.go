package netsim

import (
	"sync"
	"time"
)

// Coalescer batches work per small-integer key (a shard index): Touch marks
// a key dirty, and at most one callback timer per key is armed per dispatch
// window — the first Touch in a window arms it, subsequent Touches ride the
// pending flush for free. When the window elapses, the flush function runs
// in timer-callback context (it must not block; spawn an actor for blocking
// work).
//
// The per-key fire closures are pre-bound at construction, so the steady
// state of touch-dispatch cycles performs zero allocations on top of the
// scheduler's own (already zero-alloc) RunAfter path — this is what the
// batched-dispatch allocation gate measures.
type Coalescer struct {
	clock  Clock
	window time.Duration
	flush  func(key int)

	mu    sync.Mutex
	armed []bool
	fire  []func()
}

// NewCoalescer creates a coalescer over keys 0..keys-1 dispatching flush
// after each key's window. A zero window still coalesces: everything
// touched at one model instant flushes together at that same instant, as
// soon as the scheduler reaches its timer queue.
func NewCoalescer(clock Clock, window time.Duration, keys int, flush func(key int)) *Coalescer {
	c := &Coalescer{
		clock:  clock,
		window: window,
		flush:  flush,
		armed:  make([]bool, keys),
		fire:   make([]func(), keys),
	}
	for k := range c.fire {
		k := k
		c.fire[k] = func() { c.dispatch(k) }
	}
	return c
}

// Touch marks key dirty, arming its dispatch timer if no flush is already
// pending; reports whether this call armed it.
func (c *Coalescer) Touch(key int) bool {
	c.mu.Lock()
	if c.armed[key] {
		c.mu.Unlock()
		return false
	}
	c.armed[key] = true
	c.mu.Unlock()
	c.clock.RunAfter(c.window, c.fire[key])
	return true
}

// dispatch runs in timer-callback context: disarm first, so a Touch from
// inside the flush (or concurrent with it) opens a fresh window.
func (c *Coalescer) dispatch(key int) {
	c.mu.Lock()
	c.armed[key] = false
	c.mu.Unlock()
	c.flush(key)
}

// Keys returns the number of coalescing keys.
func (c *Coalescer) Keys() int { return len(c.armed) }

// Window returns the dispatch window.
func (c *Coalescer) Window() time.Duration { return c.window }
