package netsim

import (
	"testing"
	"time"
)

// BenchmarkSchedulerHandoff measures one full token round trip between two
// actors (Put wakes the peer, Get parks the caller — two handoffs per
// iteration). This is the unit cost every blocking operation in the
// simulation pays.
func BenchmarkSchedulerHandoff(b *testing.B) {
	c := NewVirtualClock()
	ping, pong := c.NewQueue(), c.NewQueue()
	c.Go(func() {
		for {
			if ping.Get() == nil {
				return
			}
			pong.Put(struct{}{})
		}
	})
	tok := struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping.Put(tok)
		pong.Get()
	}
	b.StopTimer()
	ping.Put(nil)
	c.Drain()
}

// BenchmarkAsyncSend compares the two ways to deliver a fire-and-forget
// simulated message: the callback-timer path Transport.Send now uses
// (zero goroutines, zero channel rendezvous) against the goroutine-per-
// message shape it replaced (spawn an actor, sleep the delay, run the
// delivery). Both sub-benchmarks drain in batches so the timer heap stays
// warm and bounded, and both report measured goroutine spawns per message.
func BenchmarkAsyncSend(b *testing.B) {
	const batch = 1024
	run := func(b *testing.B, wantSpawnsPerOp uint64, send func(c *VirtualClock, tr *Transport, fn func())) {
		c := NewVirtualClock()
		tr := NewTransport(c, DefaultLatencies(), NewMeter(), 1)
		delivered := 0
		fn := func() { delivered++ }
		spawnedBefore := c.Spawned()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			send(c, tr, fn)
			if i%batch == batch-1 {
				c.Drain()
			}
		}
		c.Drain()
		b.StopTimer()
		if delivered != b.N {
			b.Fatalf("delivered %d of %d messages", delivered, b.N)
		}
		spawns := c.Spawned() - spawnedBefore
		if spawns != wantSpawnsPerOp*uint64(b.N) {
			b.Fatalf("spawned %d goroutines over %d messages, want %d/op", spawns, b.N, wantSpawnsPerOp)
		}
		b.ReportMetric(float64(spawns)/float64(b.N), "spawns/op")
	}

	b.Run("callback", func(b *testing.B) {
		run(b, 0, func(c *VirtualClock, tr *Transport, fn func()) {
			tr.Send(IRL, FRK, LinkReplica, 64, fn)
		})
	})
	b.Run("goroutine-baseline", func(b *testing.B) {
		// The PR 1 shape of Transport.Send: one actor spawn plus two channel
		// rendezvous per message.
		run(b, 1, func(c *VirtualClock, tr *Transport, fn func()) {
			tr.Meter().Account(LinkReplica, 64)
			d := tr.sample(IRL, FRK)
			c.Go(func() {
				c.Sleep(d)
				fn()
			})
		})
	})
}

// BenchmarkTimerHeap measures raw arm+fire throughput of the callback
// timer queue at a large outstanding-timer count, the regime a
// million-actor run puts the scheduler in.
func BenchmarkTimerHeap(b *testing.B) {
	c := NewVirtualClock()
	fn := func() {}
	// Keep 64k timers outstanding so push/pop work at realistic depth.
	const depth = 1 << 16
	for i := 0; i < depth; i++ {
		c.RunAfter(time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunAfter(time.Duration(depth)*time.Microsecond, fn)
		if i%depth == depth-1 {
			c.Drain()
			for j := 0; j < depth; j++ {
				c.RunAfter(time.Duration(j)*time.Microsecond, fn)
			}
		}
	}
	b.StopTimer()
	c.Drain()
}
