// Package netsim simulates the wide-area network substrate of the paper's
// evaluation (§6.1): Amazon EC2 regions with measured round-trip times,
// per-link bandwidth metering, and bounded-capacity servers.
//
// The paper ran on m4.large instances in Frankfurt (FRK), Ireland (IRL) and
// N. Virginia (VRG) with a replication factor of 3; the Twissandra case study
// used Virginia, N. California and Oregon. We reproduce the RTTs the paper
// reports (IRL-FRK 20 ms, IRL-VRG 83 ms) and fill in the remaining pairs with
// publicly known inter-region latencies of the same era.
//
// All simulated delays go through a Clock, which comes in two modes:
//
//   - VirtualClock (the default for tests, benchmarks and cmd/icgbench): a
//     deterministic discrete-event scheduler. Actors park on virtual
//     deadlines and, whenever every actor is blocked, model time jumps
//     straight to the earliest deadline — experiments run at CPU speed and
//     same-seed runs are bit-for-bit reproducible.
//   - WallClock (cmd/icgbench -clock=wall): scales model durations to real
//     sleeps for real-time demos; a scale of 0.1 runs 10x faster than the
//     modeled WAN.
//
// Either way, latencies are reported in model time, i.e. on the paper's
// (unscaled) axes.
package netsim

import (
	"fmt"
	"time"
)

// Region identifies a datacenter region.
type Region string

// The regions used in the paper's evaluation.
const (
	FRK Region = "eu-frankfurt"  // Frankfurt
	IRL Region = "eu-ireland"    // Ireland
	VRG Region = "us-virginia"   // N. Virginia
	NCA Region = "us-california" // N. California (Twissandra deployment)
	ORE Region = "us-oregon"     // Oregon (Twissandra deployment)
)

// LatencyModel maps region pairs to round-trip times. Same-region RTT is
// LocalRTT.
type LatencyModel struct {
	// RTTs holds full round-trip times keyed by unordered region pair.
	RTTs map[[2]Region]time.Duration
	// LocalRTT is the round-trip time between two nodes in the same region.
	LocalRTT time.Duration
}

func pairKey(a, b Region) [2]Region {
	if a > b {
		a, b = b, a
	}
	return [2]Region{a, b}
}

// DefaultLatencies returns the latency model used throughout the paper's
// evaluation. The IRL-FRK (20 ms) and IRL-VRG (83 ms) values are the ones
// the paper reports explicitly (§6.2.1, §6.2.2); the others are plausible
// same-era inter-region RTTs chosen to preserve the paper's geometry
// (VRG much farther from Europe than FRK/IRL are from each other; the three
// US-west/east regions closer to one another than to Europe).
func DefaultLatencies() *LatencyModel {
	m := &LatencyModel{
		RTTs:     make(map[[2]Region]time.Duration),
		LocalRTT: 2 * time.Millisecond, // paper: client colocated with IRL replica sees 2 ms
	}
	set := func(a, b Region, rtt time.Duration) { m.RTTs[pairKey(a, b)] = rtt }
	set(IRL, FRK, 20*time.Millisecond)
	set(IRL, VRG, 83*time.Millisecond)
	set(FRK, VRG, 89*time.Millisecond)
	set(VRG, NCA, 62*time.Millisecond)
	set(VRG, ORE, 72*time.Millisecond)
	set(NCA, ORE, 21*time.Millisecond)
	set(IRL, NCA, 140*time.Millisecond)
	set(IRL, ORE, 132*time.Millisecond)
	set(FRK, NCA, 148*time.Millisecond)
	set(FRK, ORE, 153*time.Millisecond)
	return m
}

// RTT returns the round-trip time between two regions.
func (m *LatencyModel) RTT(a, b Region) time.Duration {
	if a == b {
		return m.LocalRTT
	}
	if d, ok := m.RTTs[pairKey(a, b)]; ok {
		return d
	}
	panic(fmt.Sprintf("netsim: no latency configured between %s and %s", a, b))
}

// OneWay returns the one-way delay between two regions (RTT/2).
func (m *LatencyModel) OneWay(a, b Region) time.Duration {
	return m.RTT(a, b) / 2
}

// Regions returns every region mentioned in the model, in stable order.
func (m *LatencyModel) Regions() []Region {
	seen := map[Region]bool{}
	var out []Region
	add := func(r Region) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	// Stable order: the canonical evaluation regions first.
	for _, r := range []Region{FRK, IRL, VRG, NCA, ORE} {
		if _, ok := m.RTTs[pairKey(r, r)]; ok {
			add(r)
		}
		for k := range m.RTTs {
			if k[0] == r || k[1] == r {
				add(r)
			}
		}
	}
	return out
}

// SortByProximity orders candidates by RTT from the given origin, closest
// first (origin itself, if present, sorts first with LocalRTT). This is how
// a quorum coordinator picks which replicas to wait for.
func (m *LatencyModel) SortByProximity(origin Region, candidates []Region) []Region {
	out := append([]Region(nil), candidates...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && m.RTT(origin, out[j]) < m.RTT(origin, out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
