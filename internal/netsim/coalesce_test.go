package netsim

import (
	"sync"
	"testing"
	"time"
)

// TestCoalescerSingleFlushPerWindow: every Touch inside one window rides a
// single flush; a Touch after the flush opens a fresh window.
func TestCoalescerSingleFlushPerWindow(t *testing.T) {
	c := NewVirtualClock()
	var mu sync.Mutex
	var flushes []struct {
		key int
		at  time.Duration
	}
	co := NewCoalescer(c, 5*time.Millisecond, 3, func(key int) {
		mu.Lock()
		flushes = append(flushes, struct {
			key int
			at  time.Duration
		}{key, c.Now()})
		mu.Unlock()
	})

	if !co.Touch(1) {
		t.Fatal("first Touch must arm the timer")
	}
	if co.Touch(1) || co.Touch(1) {
		t.Fatal("Touches within the window must not re-arm")
	}
	if !co.Touch(2) {
		t.Fatal("a different key arms independently")
	}
	c.Drain()
	if len(flushes) != 2 {
		t.Fatalf("got %d flushes, want 2: %+v", len(flushes), flushes)
	}
	for _, f := range flushes {
		if f.at != 5*time.Millisecond {
			t.Errorf("key %d flushed at %v, want 5ms", f.key, f.at)
		}
	}

	// Fresh window after dispatch.
	if !co.Touch(1) {
		t.Fatal("post-flush Touch must arm again")
	}
	c.Drain()
	if len(flushes) != 3 {
		t.Fatalf("got %d flushes after re-arm, want 3", len(flushes))
	}
	if last := flushes[2]; last.key != 1 || last.at != 10*time.Millisecond {
		t.Errorf("re-armed flush = %+v, want key 1 at 10ms", last)
	}
}

// TestCoalescerTouchDuringFlush: a Touch issued from inside the flush
// callback opens a new window rather than being swallowed.
func TestCoalescerTouchDuringFlush(t *testing.T) {
	c := NewVirtualClock()
	count := 0
	var co *Coalescer
	co = NewCoalescer(c, time.Millisecond, 1, func(key int) {
		count++
		if count == 1 {
			if !co.Touch(key) {
				t.Error("Touch from inside flush must arm a fresh window")
			}
		}
	})
	co.Touch(0)
	c.Drain()
	if count != 2 {
		t.Fatalf("flush ran %d times, want 2", count)
	}
}

// TestCoalescerZeroWindow: a zero window still coalesces same-instant
// touches into one flush.
func TestCoalescerZeroWindow(t *testing.T) {
	c := NewVirtualClock()
	count := 0
	co := NewCoalescer(c, 0, 1, func(int) { count++ })
	co.Touch(0)
	co.Touch(0)
	co.Touch(0)
	c.Drain()
	if count != 1 {
		t.Fatalf("zero-window flushes = %d, want 1", count)
	}
}

// TestServerReserveMatchesProcess: Reserve books exactly the capacity
// Process would, and a batch that reserves k slots then sleeps once on the
// latest deadline observes the same completion time as k serial Process
// calls spread over the worker slots.
func TestServerReserveMatchesProcess(t *testing.T) {
	c := NewVirtualClock()
	s := NewServer(c, 2)
	const cost = 4 * time.Millisecond

	// 4 reservations on 2 slots: completions at 4, 4, 8, 8 ms.
	var latest time.Duration
	for i := 0; i < 4; i++ {
		if end := s.Reserve(cost); end > latest {
			latest = end
		}
	}
	if latest != 8*time.Millisecond {
		t.Fatalf("latest batch deadline = %v, want 8ms", latest)
	}
	c.SleepUntil(latest)
	if got := s.BusyModelTime(); got != 16*time.Millisecond {
		t.Fatalf("busy model time = %v, want 16ms", got)
	}
	if got := s.Handled(); got != 4 {
		t.Fatalf("handled = %d, want 4", got)
	}
	if d := s.QueueDelay(); d != 0 {
		t.Fatalf("queue delay after drain = %v, want 0", d)
	}
}
