package netsim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// VirtualClock is a deterministic discrete-event scheduler. Actors run one
// at a time under a cooperative token: exactly one actor executes at any
// moment, and every blocking operation (Sleep, Event.Wait, Queue.Get,
// Group.Wait) hands the token to the next runnable actor. When no actor is
// runnable, model time jumps straight to the earliest pending deadline —
// no host sleeping, ever. Because the token handoff order is a pure
// function of the program (spawn order, deadlines, FIFO wakeups), two runs
// of the same seeded workload execute the exact same event sequence and
// produce byte-identical metrics.
//
// Discipline (see the Clock interface comment): spawn actors with Go, block
// only through the clock, and use BlockOn around any foreign blocking. An
// actor that blocks on a bare channel without BlockOn freezes the whole
// simulation, since the token is never handed on.
//
// The goroutine that calls NewVirtualClock is the root actor and initially
// holds the token.
type VirtualClock struct {
	mu       sync.Mutex
	now      time.Duration
	seq      uint64
	timers   timerHeap
	ready    []*vactor // runnable actors, FIFO
	blocked  int       // actors parked on events/queues/groups
	detached int       // actors inside BlockOn
	idler    *vactor   // Drain caller, woken only at quiescence
	// tokenFree marks the token as unheld: set when the running actor had
	// nothing to hand it to but detached actors may still rejoin.
	tokenFree bool
}

var _ Clock = (*VirtualClock)(nil)

// vactor is one parked actor: a rendezvous for the token handoff, plus the
// wake deadline (timers) or the handed-off value (queues).
type vactor struct {
	at  time.Duration
	seq uint64
	ch  chan struct{}
	val any
}

// NewVirtualClock returns a virtual clock at model time zero. The calling
// goroutine becomes the root actor and holds the execution token.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{}
}

func (c *VirtualClock) newActor() *vactor {
	p := &vactor{seq: c.seq, ch: make(chan struct{})}
	c.seq++
	return p
}

// dispatchLocked hands the token to the next runnable actor: ready actors
// first (FIFO), then the earliest timer (advancing model time), then —
// only at full quiescence — the Drain idler. If parked actors remain with
// nothing left that could ever wake them, that is a deadlock and the
// simulation fails fast instead of hanging.
func (c *VirtualClock) dispatchLocked() {
	if len(c.ready) > 0 {
		p := c.ready[0]
		c.ready = c.ready[1:]
		close(p.ch)
		return
	}
	if c.timers.Len() > 0 {
		p := heap.Pop(&c.timers).(*vactor)
		if p.at > c.now {
			c.now = p.at
		}
		close(p.ch)
		return
	}
	if c.detached > 0 {
		// A BlockOn actor may rejoin with work; leave the token floating.
		c.tokenFree = true
		return
	}
	if c.idler != nil {
		p := c.idler
		c.idler = nil
		close(p.ch)
		return
	}
	if c.blocked > 0 {
		// Parked actors can now only be woken by other actors — and none
		// remain, whether the yielder parked itself or exited. Fail fast
		// instead of hanging silently.
		panic(fmt.Sprintf(
			"netsim: virtual clock deadlock: %d actor(s) blocked with no runnable actors and no pending timers",
			c.blocked))
	}
	c.tokenFree = true
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: parks the actor for d of model time.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.sleepUntilLocked(c.now + d)
}

// SleepUntil implements Clock: parks the actor until model instant t.
func (c *VirtualClock) SleepUntil(t time.Duration) {
	c.mu.Lock()
	c.sleepUntilLocked(t)
}

// sleepUntilLocked parks the caller on the timer heap and hands the token
// on. Enters with c.mu held, returns with it released.
func (c *VirtualClock) sleepUntilLocked(t time.Duration) {
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	p := c.newActor()
	p.at = t
	heap.Push(&c.timers, p)
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
}

// Go implements Clock: fn becomes a new actor, enqueued runnable behind the
// current ready set. It starts executing when the token reaches it.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	p := c.newActor()
	c.ready = append(c.ready, p)
	c.mu.Unlock()
	go func() {
		<-p.ch
		fn()
		// The actor exits: hand the token on without re-parking.
		c.mu.Lock()
		c.dispatchLocked()
		c.mu.Unlock()
	}()
}

// BlockOn implements Clock: the actor leaves the scheduler while wait runs
// (so the simulation continues, advancing time if needed) and rejoins
// afterwards. The rejoin order depends on the host scheduler, so a BlockOn
// wait is the one place where determinism is forfeited — keep it out of
// measured paths.
func (c *VirtualClock) BlockOn(wait func()) {
	c.mu.Lock()
	c.detached++
	c.dispatchLocked()
	c.mu.Unlock()

	wait()

	c.mu.Lock()
	c.detached--
	if c.tokenFree {
		c.tokenFree = false
		c.mu.Unlock()
		return
	}
	p := c.newActor()
	c.ready = append(c.ready, p)
	c.mu.Unlock()
	<-p.ch
}

// Drain runs the simulation until quiescence: every remaining actor has
// either exited or parked on an event/queue that can no longer fire, and
// no timers are pending. Model time advances as far as the pending work
// requires. Call it from the root actor at the end of an experiment so
// background traffic (asynchronous replication, commit broadcasts) runs to
// completion instead of leaking parked goroutines.
func (c *VirtualClock) Drain() {
	c.mu.Lock()
	if len(c.ready) == 0 && c.timers.Len() == 0 && c.detached == 0 {
		c.mu.Unlock()
		return
	}
	if c.idler != nil {
		c.mu.Unlock()
		panic("netsim: concurrent Drain on the same VirtualClock")
	}
	p := c.newActor()
	c.idler = p
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
}

// NewEvent implements Clock.
func (c *VirtualClock) NewEvent() Event { return &vEvent{c: c} }

// NewQueue implements Clock.
func (c *VirtualClock) NewQueue() Queue { return &vQueue{c: c} }

// NewGroup implements Clock.
func (c *VirtualClock) NewGroup() Group { return &vGroup{c: c} }

// StartStopwatch begins timing.
func (c *VirtualClock) StartStopwatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// wakeLocked moves parked actors to the ready queue (FIFO order preserved).
func (c *VirtualClock) wakeLocked(ps []*vactor) {
	c.blocked -= len(ps)
	c.ready = append(c.ready, ps...)
}

// parkLocked parks the calling actor outside the timer heap and hands the
// token on. Enters with c.mu held, returns with it released, after the
// token has come back.
func (c *VirtualClock) parkLocked(p *vactor) {
	c.blocked++
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
}

// vEvent is the virtual one-shot broadcast.
type vEvent struct {
	c       *VirtualClock
	fired   bool
	waiters []*vactor
}

func (e *vEvent) Fire() {
	e.c.mu.Lock()
	if !e.fired {
		e.fired = true
		e.c.wakeLocked(e.waiters)
		e.waiters = nil
	}
	e.c.mu.Unlock()
}

func (e *vEvent) Wait() {
	e.c.mu.Lock()
	if e.fired {
		e.c.mu.Unlock()
		return
	}
	p := e.c.newActor()
	e.waiters = append(e.waiters, p)
	e.c.parkLocked(p)
}

// vQueue is the virtual unbounded FIFO. A Put with waiters present hands
// the item directly to the longest-waiting actor.
type vQueue struct {
	c       *VirtualClock
	items   []any
	waiters []*vactor
}

func (q *vQueue) Put(v any) {
	q.c.mu.Lock()
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		p.val = v
		q.c.wakeLocked([]*vactor{p})
	} else {
		q.items = append(q.items, v)
	}
	q.c.mu.Unlock()
}

func (q *vQueue) Get() any {
	q.c.mu.Lock()
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		q.c.mu.Unlock()
		return v
	}
	p := q.c.newActor()
	q.waiters = append(q.waiters, p)
	q.c.parkLocked(p)
	return p.val
}

// vGroup is the virtual WaitGroup analogue.
type vGroup struct {
	c       *VirtualClock
	n       int
	waiters []*vactor
}

func (g *vGroup) Add(n int) {
	g.c.mu.Lock()
	g.n += n
	if g.n < 0 {
		g.c.mu.Unlock()
		panic("netsim: negative Group counter")
	}
	g.c.mu.Unlock()
}

func (g *vGroup) Done() {
	g.c.mu.Lock()
	g.n--
	if g.n < 0 {
		g.c.mu.Unlock()
		panic("netsim: negative Group counter")
	}
	if g.n == 0 {
		g.c.wakeLocked(g.waiters)
		g.waiters = nil
	}
	g.c.mu.Unlock()
}

func (g *vGroup) Wait() {
	g.c.mu.Lock()
	if g.n == 0 {
		g.c.mu.Unlock()
		return
	}
	p := g.c.newActor()
	g.waiters = append(g.waiters, p)
	g.c.parkLocked(p)
}

// timerHeap orders parked sleepers by (deadline, spawn sequence), making
// same-instant wakeups deterministic.
type timerHeap []*vactor

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*vactor)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
