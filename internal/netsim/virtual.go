package netsim

import (
	"fmt"
	"sync"
	"time"
)

// VirtualClock is a deterministic discrete-event scheduler. Actors run one
// at a time under a cooperative token: exactly one actor executes at any
// moment, and every blocking operation (Sleep, Event.Wait, Queue.Get,
// Group.Wait) hands the token to the next runnable actor. When no actor is
// runnable, model time jumps straight to the earliest pending deadline —
// no host sleeping, ever. Because the token handoff order is a pure
// function of the program (spawn order, deadlines, FIFO wakeups), two runs
// of the same seeded workload execute the exact same event sequence and
// produce byte-identical metrics.
//
// Besides actors, the clock schedules callback timers (RunAt/RunAfter):
// a callback is executed inline by whichever goroutine is dispatching when
// its deadline is reached — no goroutine spawn, no channel rendezvous.
// Callbacks interleave with actor wakeups in the same (deadline, spawn
// sequence) order, so converting fire-and-forget actors to callbacks does
// not perturb determinism. The price is a discipline: a callback must not
// block. A call to Sleep, Event.Wait, Queue.Get, Group.Wait, BlockOn, or
// Drain from inside a callback panics if it would actually park (fail
// fast, like the deadlock check); calls that are satisfied immediately —
// a Get on a non-empty queue, a Wait on a fired event, a Sleep to the
// past — return without parking and are not detected, so do not lean on
// the panic to find violations: keep callbacks free of these calls
// entirely. Non-blocking operations — Now, Go, RunAt/RunAfter,
// Event.Fire, Queue.Put, Group.Add/Done — are all fine. Blocking work
// still needs an actor: spawn one with Go from inside the callback if
// necessary.
//
// Discipline (see the Clock interface comment): spawn actors with Go, block
// only through the clock, and use BlockOn around any foreign blocking. An
// actor that blocks on a bare channel without BlockOn freezes the whole
// simulation, since the token is never handed on.
//
// Internally the scheduler is built for million-actor runs: the ready set
// is a head-indexed compacting deque (no reslice churn, memory bounded
// by the live depth), parked actors are recycled
// through a freelist that reuses their rendezvous channels (token handoff
// is a buffered send, not a channel close), and timers live in a concrete
// 4-ary heap of value entries (no container/heap boxing).
//
// The goroutine that calls NewVirtualClock is the root actor and initially
// holds the token.
type VirtualClock struct {
	mu       sync.Mutex
	now      time.Duration
	seq      uint64
	timers   timerHeap
	ready    fifo[*vactor] // runnable actors, FIFO
	blocked  int           // actors parked on events/queues/groups
	detached int           // actors inside BlockOn
	idler    *vactor       // Drain caller, woken only at quiescence
	// tokenFree marks the token as unheld: set when the running actor had
	// nothing to hand it to but detached actors may still rejoin.
	tokenFree bool
	// inCallback is true while the dispatching goroutine runs a callback
	// timer; blocking operations fail fast when they see it (only the
	// callback itself can observe the flag — every other actor is parked
	// while the token holder dispatches).
	inCallback bool
	// freelist recycles vactors (and their token channels) across parks.
	freelist []*vactor
	// spawned counts Go calls, i.e. real goroutine spawns. Benchmarks use
	// it to prove the callback path costs zero goroutines per message.
	spawned uint64
}

var _ Clock = (*VirtualClock)(nil)

// vactor is one parked actor: a rendezvous channel for the token handoff,
// a spawn sequence for deterministic tie-breaks, and the handed-off value
// (queues). The channel is buffered (capacity 1) and reused across parks:
// waking an actor is a single non-blocking send.
type vactor struct {
	seq uint64
	ch  chan struct{}
	val any
}

// NewVirtualClock returns a virtual clock at model time zero. The calling
// goroutine becomes the root actor and holds the execution token.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{}
}

// newActorLocked takes a vactor off the freelist (or allocates one) and
// stamps it with the next spawn sequence. Callers hold c.mu.
func (c *VirtualClock) newActorLocked() *vactor {
	var p *vactor
	if n := len(c.freelist); n > 0 {
		p = c.freelist[n-1]
		c.freelist[n-1] = nil
		c.freelist = c.freelist[:n-1]
	} else {
		p = &vactor{ch: make(chan struct{}, 1)}
	}
	p.seq = c.seq
	c.seq++
	return p
}

// recycle returns a vactor whose wait has completed to the freelist. The
// caller must have received the token through p.ch already (so the channel
// is empty again) and be done with p.val.
func (c *VirtualClock) recycle(p *vactor) {
	p.val = nil
	c.mu.Lock()
	c.freelist = append(c.freelist, p)
	c.mu.Unlock()
}

// wake hands the execution token to a parked actor. The channel holds at
// most the one token in the system, so the buffered send never blocks and
// is safe under c.mu.
func (p *vactor) wake() { p.ch <- struct{}{} }

// checkCanBlockLocked fails fast when a callback timer attempts a blocking
// operation. Callers hold c.mu; on failure the lock is released before
// panicking so the message can be recovered by tests.
func (c *VirtualClock) checkCanBlockLocked(op string) {
	if c.inCallback {
		c.mu.Unlock()
		panic(fmt.Sprintf(
			"netsim: callback timer attempted to block in %s; callbacks must not block — spawn blocking work with Go", op))
	}
}

// dispatchLocked hands the token to the next runnable work item: ready
// actors first (FIFO), then the earliest timer (advancing model time),
// then — only at full quiescence — the Drain idler. Callback timers are
// executed inline on the dispatching goroutine (dropping the lock for the
// duration of the callback) and dispatch continues afterwards. If parked
// actors remain with nothing left that could ever wake them, that is a
// deadlock and the simulation fails fast instead of hanging.
//
// Enters and returns with c.mu held, but may release it transiently while
// running callbacks.
func (c *VirtualClock) dispatchLocked() {
	for {
		if c.ready.len() > 0 {
			c.ready.pop().wake()
			return
		}
		if c.timers.len() > 0 {
			e := c.timers.pop()
			if e.at > c.now {
				c.now = e.at
			}
			if e.fn == nil {
				e.p.wake()
				return
			}
			// Callback timer: run inline, without the lock, on this
			// goroutine — zero spawns, zero rendezvous — then keep
			// dispatching (the callback may have readied actors or armed
			// further timers).
			c.inCallback = true
			c.mu.Unlock()
			e.fn()
			c.mu.Lock()
			c.inCallback = false
			continue
		}
		if c.detached > 0 {
			// A BlockOn actor may rejoin with work; leave the token floating.
			c.tokenFree = true
			return
		}
		if c.idler != nil {
			p := c.idler
			c.idler = nil
			p.wake()
			return
		}
		if c.blocked > 0 {
			// Parked actors can now only be woken by other actors — and none
			// remain, whether the yielder parked itself or exited. Any
			// pending callback timers have already run above without
			// unblocking anyone. Fail fast instead of hanging silently.
			panic(fmt.Sprintf(
				"netsim: virtual clock deadlock: %d actor(s) blocked with no runnable actors and no pending timers",
				c.blocked))
		}
		c.tokenFree = true
		return
	}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: parks the actor for d of model time.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.sleepUntilLocked(c.now + d)
}

// SleepUntil implements Clock: parks the actor until model instant t.
func (c *VirtualClock) SleepUntil(t time.Duration) {
	c.mu.Lock()
	c.sleepUntilLocked(t)
}

// sleepUntilLocked parks the caller on the timer heap and hands the token
// on. Enters with c.mu held, returns with it released.
func (c *VirtualClock) sleepUntilLocked(t time.Duration) {
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	c.checkCanBlockLocked("Sleep")
	p := c.newActorLocked()
	c.timers.push(timerEntry{at: t, seq: p.seq, p: p})
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
	c.recycle(p)
}

// RunAt implements Clock: fn runs as a callback timer at model instant t
// (or the current instant, if t is in the past). The callback executes
// inline on whichever goroutine dispatches that instant — no goroutine is
// spawned — deterministically interleaved with actor wakeups by
// (deadline, arming sequence). fn must not block; see the type comment.
func (c *VirtualClock) RunAt(t time.Duration, fn func()) {
	c.mu.Lock()
	if t < c.now {
		t = c.now
	}
	c.timers.push(timerEntry{at: t, seq: c.seq, fn: fn})
	c.seq++
	c.mu.Unlock()
}

// RunAfter implements Clock: RunAt(Now()+d, fn).
func (c *VirtualClock) RunAfter(d time.Duration, fn func()) {
	c.mu.Lock()
	if d < 0 {
		d = 0
	}
	c.timers.push(timerEntry{at: c.now + d, seq: c.seq, fn: fn})
	c.seq++
	c.mu.Unlock()
}

// Go implements Clock: fn becomes a new actor, enqueued runnable behind the
// current ready set. It starts executing when the token reaches it.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	p := c.newActorLocked()
	c.ready.push(p)
	c.spawned++
	c.mu.Unlock()
	go func() {
		<-p.ch
		c.recycle(p)
		fn()
		// The actor exits: hand the token on without re-parking.
		c.mu.Lock()
		c.dispatchLocked()
		c.mu.Unlock()
	}()
}

// Spawned returns the number of goroutines the clock has started via Go.
// Scheduler benchmarks use the delta across a workload to verify that the
// callback-timer path spawns none.
func (c *VirtualClock) Spawned() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spawned
}

// BlockOn implements Clock: the actor leaves the scheduler while wait runs
// (so the simulation continues, advancing time if needed) and rejoins
// afterwards. The rejoin order depends on the host scheduler, so a BlockOn
// wait is the one place where determinism is forfeited — keep it out of
// measured paths.
func (c *VirtualClock) BlockOn(wait func()) {
	c.mu.Lock()
	c.checkCanBlockLocked("BlockOn")
	c.detached++
	c.dispatchLocked()
	c.mu.Unlock()

	wait()

	c.mu.Lock()
	c.detached--
	if c.tokenFree {
		c.tokenFree = false
		c.mu.Unlock()
		return
	}
	p := c.newActorLocked()
	c.ready.push(p)
	c.mu.Unlock()
	<-p.ch
	c.recycle(p)
}

// Drain runs the simulation until quiescence: every remaining actor has
// either exited or parked on an event/queue that can no longer fire, no
// timers are pending, and every queued callback has run to completion.
// Model time advances as far as the pending work requires. Call it from
// the root actor at the end of an experiment so background traffic
// (asynchronous replication, commit broadcasts, read repair) runs to
// completion instead of leaking parked goroutines.
func (c *VirtualClock) Drain() {
	c.mu.Lock()
	if c.ready.len() == 0 && c.timers.len() == 0 && c.detached == 0 {
		c.mu.Unlock()
		return
	}
	c.checkCanBlockLocked("Drain")
	if c.idler != nil {
		c.mu.Unlock()
		panic("netsim: concurrent Drain on the same VirtualClock")
	}
	p := c.newActorLocked()
	c.idler = p
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
	c.recycle(p)
}

// NewEvent implements Clock.
func (c *VirtualClock) NewEvent() Event { return &vEvent{c: c} }

// NewQueue implements Clock.
func (c *VirtualClock) NewQueue() Queue { return &vQueue{c: c} }

// NewGroup implements Clock.
func (c *VirtualClock) NewGroup() Group { return &vGroup{c: c} }

// StartStopwatch begins timing.
func (c *VirtualClock) StartStopwatch() Stopwatch {
	return Stopwatch{clock: c, start: c.Now()}
}

// wakeOneLocked moves one parked actor to the ready queue.
func (c *VirtualClock) wakeOneLocked(p *vactor) {
	c.blocked--
	c.ready.push(p)
}

// wakeAllLocked moves parked actors to the ready queue (FIFO order
// preserved).
func (c *VirtualClock) wakeAllLocked(ps []*vactor) {
	c.blocked -= len(ps)
	for _, p := range ps {
		c.ready.push(p)
	}
}

// parkLocked parks the calling actor outside the timer heap and hands the
// token on. Enters with c.mu held, returns with it released, after the
// token has come back. The caller recycles p once done with p.val.
func (c *VirtualClock) parkLocked(p *vactor) {
	c.blocked++
	c.dispatchLocked()
	c.mu.Unlock()
	<-p.ch
}

// vEvent is the virtual one-shot broadcast.
type vEvent struct {
	c       *VirtualClock
	fired   bool
	waiters []*vactor
}

func (e *vEvent) Fire() {
	e.c.mu.Lock()
	if !e.fired {
		e.fired = true
		e.c.wakeAllLocked(e.waiters)
		e.waiters = nil
	}
	e.c.mu.Unlock()
}

func (e *vEvent) Wait() {
	e.c.mu.Lock()
	if e.fired {
		e.c.mu.Unlock()
		return
	}
	e.c.checkCanBlockLocked("Event.Wait")
	p := e.c.newActorLocked()
	e.waiters = append(e.waiters, p)
	e.c.parkLocked(p)
	e.c.recycle(p)
}

// fifo is a head-indexed growable FIFO used for the queue item buffer and
// waiter list: push appends, pop advances a head index (no reslice, no
// per-pop copy), and the buffer compacts — copying only the live suffix to
// the front — once the dead prefix passes half the backing array. Push and
// pop stay amortized O(1) and memory stays O(live depth), even for queues
// that never fully drain.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	switch {
	case f.head == len(f.buf):
		f.buf = f.buf[:0]
		f.head = 0
	case f.head > len(f.buf)/2:
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero // drop stale copies so they don't pin objects
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

// vQueue is the virtual unbounded FIFO. A Put with waiters present hands
// the item directly to the longest-waiting actor. Both the item buffer and
// the waiter list reuse their backing arrays across pops, so a warm
// handoff allocates nothing.
type vQueue struct {
	c       *VirtualClock
	items   fifo[any]
	waiters fifo[*vactor]
}

func (q *vQueue) Put(v any) {
	q.c.mu.Lock()
	if q.waiters.len() > 0 {
		p := q.waiters.pop()
		p.val = v
		q.c.wakeOneLocked(p)
	} else {
		q.items.push(v)
	}
	q.c.mu.Unlock()
}

func (q *vQueue) Get() any {
	q.c.mu.Lock()
	if q.items.len() > 0 {
		v := q.items.pop()
		q.c.mu.Unlock()
		return v
	}
	q.c.checkCanBlockLocked("Queue.Get")
	p := q.c.newActorLocked()
	q.waiters.push(p)
	q.c.parkLocked(p)
	v := p.val
	q.c.recycle(p)
	return v
}

// vGroup is the virtual WaitGroup analogue.
type vGroup struct {
	c       *VirtualClock
	n       int
	waiters []*vactor
}

func (g *vGroup) Add(n int) {
	g.c.mu.Lock()
	g.n += n
	if g.n < 0 {
		g.c.mu.Unlock()
		panic("netsim: negative Group counter")
	}
	g.c.mu.Unlock()
}

func (g *vGroup) Done() {
	g.c.mu.Lock()
	g.n--
	if g.n < 0 {
		g.c.mu.Unlock()
		panic("netsim: negative Group counter")
	}
	if g.n == 0 {
		g.c.wakeAllLocked(g.waiters)
		g.waiters = nil
	}
	g.c.mu.Unlock()
}

func (g *vGroup) Wait() {
	g.c.mu.Lock()
	if g.n == 0 {
		g.c.mu.Unlock()
		return
	}
	g.c.checkCanBlockLocked("Group.Wait")
	p := g.c.newActorLocked()
	g.waiters = append(g.waiters, p)
	g.c.parkLocked(p)
	g.c.recycle(p)
}

// timerEntry is one pending deadline: either a parked actor to wake (p set)
// or a callback to run inline (fn set). Ordering is (deadline, arming
// sequence), making same-instant wakeups — and the interleaving of
// callbacks with actor wakeups — deterministic.
type timerEntry struct {
	at  time.Duration
	seq uint64
	p   *vactor
	fn  func()
}

func (e timerEntry) before(o timerEntry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// timerHeap is a 4-ary min-heap of value entries. Compared to
// container/heap over a slice of pointers, it avoids the interface boxing
// on every Push/Pop and halves the tree depth (sift-down dominates pops;
// four comparisons per level beats two levels of two).
type timerHeap struct {
	a []timerEntry
}

func (h *timerHeap) len() int { return len(h.a) }

func (h *timerHeap) push(e timerEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.a[i].before(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *timerHeap) pop() timerEntry {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = timerEntry{} // release the fn/p references
	a = a[:n]
	h.a = a
	i := 0
	for {
		min := i
		first := i*4 + 1
		last := first + 4
		if last > n {
			last = n
		}
		for ci := first; ci < last; ci++ {
			if a[ci].before(a[min]) {
				min = ci
			}
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}
