package netsim

import "sync"

// Link classes used by the stores in this repository. The paper's bandwidth
// figures (Fig 8, Fig 10) measure the client-replica link specifically, so
// the meter aggregates by class rather than by region pair.
const (
	LinkClient  = "client"  // client <-> contact/coordinator replica
	LinkReplica = "replica" // inter-replica traffic
)

// LinkStats is a snapshot of traffic on one link class.
type LinkStats struct {
	Bytes    int64
	Messages int64
}

// Meter accumulates wire traffic by link class. It is safe for concurrent
// use.
type Meter struct {
	mu    sync.Mutex
	stats map[string]LinkStats
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{stats: make(map[string]LinkStats)}
}

// Account records one message of the given size on the given link class.
func (m *Meter) Account(class string, bytes int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	s := m.stats[class]
	s.Bytes += int64(bytes)
	s.Messages++
	m.stats[class] = s
	m.mu.Unlock()
}

// Snapshot returns a copy of the per-class statistics.
func (m *Meter) Snapshot() map[string]LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]LinkStats, len(m.stats))
	for k, v := range m.stats {
		out[k] = v
	}
	return out
}

// Class returns the statistics for one link class.
func (m *Meter) Class(class string) LinkStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats[class]
}

// Reset zeroes all statistics.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.stats = make(map[string]LinkStats)
	m.mu.Unlock()
}

// Diff returns the per-class difference snapshot-now minus base. Classes
// absent from base count from zero.
func (m *Meter) Diff(base map[string]LinkStats) map[string]LinkStats {
	now := m.Snapshot()
	out := make(map[string]LinkStats, len(now))
	for k, v := range now {
		b := base[k]
		out[k] = LinkStats{Bytes: v.Bytes - b.Bytes, Messages: v.Messages - b.Messages}
	}
	return out
}
