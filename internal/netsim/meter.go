package netsim

import (
	"sync"
	"sync/atomic"
)

// Link classes used by the stores in this repository. The paper's bandwidth
// figures (Fig 8, Fig 10) measure the client-replica link specifically, so
// the meter aggregates by class rather than by region pair.
const (
	LinkClient  = "client"  // client <-> contact/coordinator replica
	LinkReplica = "replica" // inter-replica traffic
)

// LinkStats is a snapshot of traffic on one link class.
type LinkStats struct {
	Bytes    int64
	Messages int64
}

// linkCounters accumulates one class's traffic with atomics: Account is on
// the per-message hot path of every simulated send, so the two standard
// classes bypass the mutex+map entirely. The two adds are not atomic
// together; mid-run snapshots may be off by one in-flight message, which
// no consumer observes (experiments snapshot at quiescence).
type linkCounters struct {
	bytes    atomic.Int64
	messages atomic.Int64
}

func (c *linkCounters) add(bytes int) {
	c.bytes.Add(int64(bytes))
	c.messages.Add(1)
}

func (c *linkCounters) stats() LinkStats {
	return LinkStats{Bytes: c.bytes.Load(), Messages: c.messages.Load()}
}

// LoadStats counts admission-control outcomes on one link class: attempts
// an admission gate refused outright (Rejected), attempts it degraded to
// preliminary-only service (Shed), and client-side retry re-submissions
// (Retried). They sit alongside the dropped counters for the same reason
// those exist: overload casualties must not pollute the delivered totals,
// and experiments need the reject/shed/retry rates per phase.
type LoadStats struct {
	Rejected int64
	Shed     int64
	Retried  int64
}

// Meter accumulates wire traffic by link class. Delivered and dropped
// traffic are kept in separate counters: messages a fault schedule drops or
// severs (see Transport and the faults package) never pollute the delivered
// totals, so bandwidth figures stay trustworthy under fault injection.
// It is safe for concurrent use.
type Meter struct {
	client  linkCounters
	replica linkCounters

	droppedClient  linkCounters
	droppedReplica linkCounters

	mu           sync.Mutex
	other        map[string]LinkStats // custom classes, off the hot path
	otherDropped map[string]LinkStats

	// Admission outcomes happen at operation granularity, not per message,
	// so a mutex-protected map (like the custom classes above) is cheap
	// enough even under a storm of rejections.
	loadMu sync.Mutex
	load   map[string]LoadStats
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		other:        make(map[string]LinkStats),
		otherDropped: make(map[string]LinkStats),
		load:         make(map[string]LoadStats),
	}
}

// Account records one message of the given size on the given link class.
func (m *Meter) Account(class string, bytes int) {
	if m == nil {
		return
	}
	switch class {
	case LinkClient:
		m.client.add(bytes)
	case LinkReplica:
		m.replica.add(bytes)
	default:
		m.mu.Lock()
		s := m.other[class]
		s.Bytes += int64(bytes)
		s.Messages++
		m.other[class] = s
		m.mu.Unlock()
	}
}

// AccountDropped records one message lost to fault injection (dropped by a
// lossy link, or severed by a partition/crash) on the given link class. The
// bytes never count toward the delivered statistics.
func (m *Meter) AccountDropped(class string, bytes int) {
	if m == nil {
		return
	}
	switch class {
	case LinkClient:
		m.droppedClient.add(bytes)
	case LinkReplica:
		m.droppedReplica.add(bytes)
	default:
		m.mu.Lock()
		s := m.otherDropped[class]
		s.Bytes += int64(bytes)
		s.Messages++
		m.otherDropped[class] = s
		m.mu.Unlock()
	}
}

// AccountRejected records one operation attempt refused by an admission
// gate on the given link class.
func (m *Meter) AccountRejected(class string) { m.accountLoad(class, 1, 0, 0) }

// AccountShed records one operation attempt an admission gate degraded to
// preliminary-only service on the given link class.
func (m *Meter) AccountShed(class string) { m.accountLoad(class, 0, 1, 0) }

// AccountRetried records one client-side retry re-submission on the given
// link class.
func (m *Meter) AccountRetried(class string) { m.accountLoad(class, 0, 0, 1) }

func (m *Meter) accountLoad(class string, rejected, shed, retried int64) {
	if m == nil {
		return
	}
	m.loadMu.Lock()
	s := m.load[class]
	s.Rejected += rejected
	s.Shed += shed
	s.Retried += retried
	m.load[class] = s
	m.loadMu.Unlock()
}

// Load returns the admission-control outcome counters for one link class.
func (m *Meter) Load(class string) LoadStats {
	if m == nil {
		return LoadStats{}
	}
	m.loadMu.Lock()
	defer m.loadMu.Unlock()
	return m.load[class]
}

// SnapshotLoad returns a copy of the per-class admission-control outcome
// counters. Classes with no outcomes are absent.
func (m *Meter) SnapshotLoad() map[string]LoadStats {
	if m == nil {
		return nil
	}
	m.loadMu.Lock()
	defer m.loadMu.Unlock()
	out := make(map[string]LoadStats, len(m.load))
	for k, v := range m.load {
		out[k] = v
	}
	return out
}

// Snapshot returns a copy of the per-class statistics. Classes with no
// traffic are absent.
func (m *Meter) Snapshot() map[string]LinkStats {
	m.mu.Lock()
	out := make(map[string]LinkStats, len(m.other)+2)
	for k, v := range m.other {
		out[k] = v
	}
	m.mu.Unlock()
	if s := m.client.stats(); s.Messages > 0 {
		out[LinkClient] = s
	}
	if s := m.replica.stats(); s.Messages > 0 {
		out[LinkReplica] = s
	}
	return out
}

// SnapshotDropped returns a copy of the per-class dropped/severed
// statistics. Classes with no dropped traffic are absent.
func (m *Meter) SnapshotDropped() map[string]LinkStats {
	m.mu.Lock()
	out := make(map[string]LinkStats, len(m.otherDropped)+2)
	for k, v := range m.otherDropped {
		out[k] = v
	}
	m.mu.Unlock()
	if s := m.droppedClient.stats(); s.Messages > 0 {
		out[LinkClient] = s
	}
	if s := m.droppedReplica.stats(); s.Messages > 0 {
		out[LinkReplica] = s
	}
	return out
}

// Class returns the statistics for one link class.
func (m *Meter) Class(class string) LinkStats {
	switch class {
	case LinkClient:
		return m.client.stats()
	case LinkReplica:
		return m.replica.stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.other[class]
}

// Dropped returns the dropped/severed statistics for one link class.
func (m *Meter) Dropped(class string) LinkStats {
	switch class {
	case LinkClient:
		return m.droppedClient.stats()
	case LinkReplica:
		return m.droppedReplica.stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.otherDropped[class]
}

// Reset zeroes all statistics.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.other = make(map[string]LinkStats)
	m.otherDropped = make(map[string]LinkStats)
	m.mu.Unlock()
	m.loadMu.Lock()
	m.load = make(map[string]LoadStats)
	m.loadMu.Unlock()
	for _, c := range []*linkCounters{&m.client, &m.replica, &m.droppedClient, &m.droppedReplica} {
		c.bytes.Store(0)
		c.messages.Store(0)
	}
}

// Diff returns the per-class difference snapshot-now minus base. Classes
// absent from base count from zero.
func (m *Meter) Diff(base map[string]LinkStats) map[string]LinkStats {
	now := m.Snapshot()
	out := make(map[string]LinkStats, len(now))
	for k, v := range now {
		b := base[k]
		out[k] = LinkStats{Bytes: v.Bytes - b.Bytes, Messages: v.Messages - b.Messages}
	}
	return out
}
