package netsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultLatenciesPaperValues(t *testing.T) {
	m := DefaultLatencies()
	if got := m.RTT(IRL, FRK); got != 20*time.Millisecond {
		t.Errorf("IRL-FRK RTT = %v, want 20ms (paper §6.2.1)", got)
	}
	if got := m.RTT(IRL, VRG); got != 83*time.Millisecond {
		t.Errorf("IRL-VRG RTT = %v, want 83ms (paper §6.2.2)", got)
	}
	if got := m.RTT(IRL, IRL); got != 2*time.Millisecond {
		t.Errorf("local RTT = %v, want 2ms", got)
	}
}

func TestRTTSymmetry(t *testing.T) {
	m := DefaultLatencies()
	regions := []Region{FRK, IRL, VRG, NCA, ORE}
	for _, a := range regions {
		for _, b := range regions {
			if m.RTT(a, b) != m.RTT(b, a) {
				t.Errorf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
			if m.OneWay(a, b)*2 != m.RTT(a, b) {
				t.Errorf("OneWay(%s,%s)*2 != RTT", a, b)
			}
		}
	}
}

func TestRTTUnknownPairPanics(t *testing.T) {
	m := &LatencyModel{RTTs: map[[2]Region]time.Duration{}, LocalRTT: time.Millisecond}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown region pair")
		}
	}()
	m.RTT(FRK, IRL)
}

func TestSortByProximity(t *testing.T) {
	m := DefaultLatencies()
	got := m.SortByProximity(FRK, []Region{VRG, IRL, FRK})
	want := []Region{FRK, IRL, VRG}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortByProximity = %v, want %v", got, want)
		}
	}
	// Input slice must not be mutated.
	in := []Region{VRG, FRK}
	_ = m.SortByProximity(FRK, in)
	if in[0] != VRG {
		t.Error("SortByProximity mutated its input")
	}
}

func TestWallClockScaling(t *testing.T) {
	c := NewClock(0.5)
	if got := c.ToWall(100 * time.Millisecond); got != 50*time.Millisecond {
		t.Errorf("ToWall = %v", got)
	}
	if got := c.ToModel(50 * time.Millisecond); got != 100*time.Millisecond {
		t.Errorf("ToModel = %v", got)
	}
	start := time.Now()
	c.Sleep(20 * time.Millisecond) // 10ms wall
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond || elapsed > 100*time.Millisecond {
		t.Errorf("scaled sleep took %v, want ~10ms", elapsed)
	}
}

func TestWallClockZeroSleep(t *testing.T) {
	c := NewClock(1.0)
	start := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("non-positive sleep should return immediately")
	}
}

func TestClockInvalidScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive scale")
		}
	}()
	NewClock(0)
}

func TestStopwatchModelTime(t *testing.T) {
	c := NewClock(0.1)
	sw := c.StartStopwatch()
	time.Sleep(5 * time.Millisecond) // = 50ms model
	got := sw.ElapsedModel()
	if got < 30*time.Millisecond || got > 300*time.Millisecond {
		t.Errorf("ElapsedModel = %v, want ~50ms", got)
	}
}

func TestVirtualStopwatchExact(t *testing.T) {
	c := NewVirtualClock()
	sw := c.StartStopwatch()
	c.Sleep(50 * time.Millisecond)
	if got := sw.ElapsedModel(); got != 50*time.Millisecond {
		t.Errorf("ElapsedModel = %v, want exactly 50ms", got)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter()
	m.Account(LinkClient, 100)
	m.Account(LinkClient, 50)
	m.Account(LinkReplica, 10)
	if s := m.Class(LinkClient); s.Bytes != 150 || s.Messages != 2 {
		t.Errorf("client stats = %+v", s)
	}
	if s := m.Class(LinkReplica); s.Bytes != 10 || s.Messages != 1 {
		t.Errorf("replica stats = %+v", s)
	}
	snap := m.Snapshot()
	m.Account(LinkClient, 1)
	d := m.Diff(snap)
	if d[LinkClient].Bytes != 1 || d[LinkClient].Messages != 1 {
		t.Errorf("diff = %+v", d[LinkClient])
	}
	m.Reset()
	if s := m.Class(LinkClient); s.Bytes != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestNilMeterAccountIsNoop(t *testing.T) {
	var m *Meter
	m.Account(LinkClient, 10) // must not panic
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.Account(LinkClient, 1)
			}
		}()
	}
	wg.Wait()
	if s := m.Class(LinkClient); s.Bytes != workers*per || s.Messages != workers*per {
		t.Errorf("concurrent accounting lost updates: %+v", s)
	}
}

func TestTransportTravelLatencyAndAccounting(t *testing.T) {
	clock := NewVirtualClock()
	meter := NewMeter()
	tr := NewTransport(clock, DefaultLatencies(), meter, 1)
	sw := clock.StartStopwatch()
	tr.Travel(IRL, FRK, LinkClient, 100)
	elapsed := sw.ElapsedModel()
	// One-way IRL->FRK is 10ms model, plus bounded jitter/tail.
	if elapsed < 9*time.Millisecond || elapsed > 16*time.Millisecond {
		t.Errorf("one-way model latency = %v, want ~10ms", elapsed)
	}
	if s := meter.Class(LinkClient); s.Bytes != 100 || s.Messages != 1 {
		t.Errorf("meter = %+v", s)
	}
}

func TestTransportSendAsync(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), NewMeter(), 2)
	var deliveredAt time.Duration = -1
	tr.Send(IRL, VRG, LinkReplica, 10, func() { deliveredAt = clock.Now() })
	// Send returns without advancing model time.
	if clock.Now() != 0 {
		t.Error("Send advanced model time for the caller")
	}
	clock.Drain()
	// One-way IRL->VRG is 41.5ms model, plus bounded jitter/tail.
	if deliveredAt < 35*time.Millisecond || deliveredAt > 60*time.Millisecond {
		t.Errorf("async delivery at %v model, want ~41.5ms", deliveredAt)
	}
}

func TestTransportSendAfterExtraDelay(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), NewMeter(), 3)
	var deliveredAt time.Duration = -1
	tr.SendAfter(200*time.Millisecond, IRL, IRL, LinkReplica, 1, func() { deliveredAt = clock.Now() })
	clock.Drain()
	if deliveredAt < 200*time.Millisecond {
		t.Errorf("SendAfter delivered at %v model, want >= ~201ms", deliveredAt)
	}
}

// Property: sampled one-way delays are positive and within the configured
// jitter+tail envelope of the base latency.
func TestPropertyTransportJitterBounds(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), nil, 42)
	f := func(seed int64) bool {
		d := tr.sample(IRL, FRK)
		base := 10 * time.Millisecond
		min := time.Duration(float64(base) * (1 - tr.JitterFrac - 0.001))
		// Exponential tail is unbounded in theory; 12x mean is astronomically
		// unlikely (e^-12) across the samples quick generates.
		max := time.Duration(float64(base) * (1 + tr.JitterFrac + 12*tr.TailMeanFrac))
		return d >= min && d <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestServerCapacityAndQueueing(t *testing.T) {
	clock := NewVirtualClock()
	s := NewServer(clock, 1)
	const cost = 5 * time.Millisecond
	g := clock.NewGroup()
	for i := 0; i < 4; i++ {
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			s.Process(cost)
		})
	}
	g.Wait()
	// 4 jobs x 5ms on 1 worker take exactly 20ms of model time.
	if got := clock.Now(); got != 4*cost {
		t.Errorf("4 serialized jobs finished at %v model, want %v", got, 4*cost)
	}
	if s.Handled() != 4 {
		t.Errorf("Handled = %d", s.Handled())
	}
	if s.BusyModelTime() != 4*cost {
		t.Errorf("BusyModelTime = %v", s.BusyModelTime())
	}
}

func TestServerParallelism(t *testing.T) {
	clock := NewVirtualClock()
	s := NewServer(clock, 4)
	const cost = 10 * time.Millisecond
	g := clock.NewGroup()
	for i := 0; i < 4; i++ {
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			s.Process(cost)
		})
	}
	g.Wait()
	if got := clock.Now(); got != cost {
		t.Errorf("4 parallel jobs on 4 workers finished at %v model, want %v", got, cost)
	}
}

func TestServerTryProcessSheds(t *testing.T) {
	clock := NewVirtualClock()
	s := NewServer(clock, 1)
	done := clock.NewEvent()
	clock.Go(func() {
		s.Process(80 * time.Millisecond) // hold the only slot
		done.Fire()
	})
	clock.Sleep(10 * time.Millisecond)
	if s.TryProcess(time.Millisecond) {
		t.Error("TryProcess should shed when saturated")
	}
	done.Wait()
	if !s.TryProcess(time.Millisecond) {
		t.Error("TryProcess should succeed when idle")
	}
}

func TestServerZeroWorkersClamped(t *testing.T) {
	s := NewServer(NewVirtualClock(), 0)
	s.Process(0) // must not deadlock
}
