//go:build !race

package netsim

import (
	"testing"
	"time"
)

// TestAllocGateRunAfterSteadyState is the scheduler's allocation-regression
// gate (run by CI without -race): once the timer heap and the vactor
// freelist are warm, arming a callback timer allocates nothing, and a full
// arm-dispatch-sleep cycle — callback fires, root actor parks and wakes —
// allocates nothing either. This is what lets million-message runs hold a
// flat heap profile.
func TestAllocGateRunAfterSteadyState(t *testing.T) {
	c := NewVirtualClock()
	fn := func() {}

	// Warm: grow the timer heap past anything AllocsPerRun will push, and
	// seed the vactor freelist.
	for i := 0; i < 4096; i++ {
		c.RunAfter(time.Millisecond, fn)
	}
	c.Drain()
	c.Sleep(time.Millisecond)

	if got := testing.AllocsPerRun(2000, func() {
		c.RunAfter(time.Millisecond, fn)
	}); got != 0 {
		t.Errorf("RunAfter steady-state allocs/op = %v, want 0", got)
	}
	c.Drain()

	if got := testing.AllocsPerRun(2000, func() {
		c.RunAfter(time.Millisecond, fn)
		c.Sleep(2 * time.Millisecond)
	}); got != 0 {
		t.Errorf("RunAfter+Sleep cycle allocs/op = %v, want 0", got)
	}
}

// TestAllocGateQueueHandoff: a warm ready-queue handoff (Put to a waiting
// actor, token round trip) must not allocate on the scheduler's side. The
// single allocation budgeted here is the interface boxing of the queue
// item itself, which belongs to the caller's payload, not the scheduler —
// struct{}{} boxes for free.
func TestAllocGateQueueHandoff(t *testing.T) {
	c := NewVirtualClock()
	ping, pong := c.NewQueue(), c.NewQueue()
	c.Go(func() {
		for {
			if ping.Get() == nil {
				return
			}
			pong.Put(struct{}{})
		}
	})
	tok := struct{}{}
	// Warm both waiter paths and the freelist.
	for i := 0; i < 64; i++ {
		ping.Put(tok)
		pong.Get()
	}
	if got := testing.AllocsPerRun(2000, func() {
		ping.Put(tok)
		pong.Get()
	}); got != 0 {
		t.Errorf("queue handoff allocs/op = %v, want 0", got)
	}
	ping.Put(nil)
	c.Drain()
}
