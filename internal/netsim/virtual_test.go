package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestVirtualTimeJumps: with every actor parked, model time jumps straight
// to the earliest deadline — a long model sleep costs no wall time.
func TestVirtualTimeJumps(t *testing.T) {
	c := NewVirtualClock()
	wall := time.Now()
	c.Sleep(10 * time.Hour)
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("10h model sleep took %v wall, want ~0", elapsed)
	}
	if got := c.Now(); got != 10*time.Hour {
		t.Errorf("Now = %v, want 10h", got)
	}
}

// TestVirtualDeterministicOrder: actors woken from the same and different
// deadlines interleave in a fixed order (deadline, then spawn order).
func TestVirtualDeterministicOrder(t *testing.T) {
	run := func() string {
		c := NewVirtualClock()
		var log []string
		g := c.NewGroup()
		for i, d := range []time.Duration{30, 10, 20, 10, 30} {
			i, d := i, d*time.Millisecond
			g.Add(1)
			c.Go(func() {
				defer g.Done()
				c.Sleep(d)
				log = append(log, fmt.Sprintf("%d@%v", i, c.Now()))
			})
		}
		g.Wait()
		return strings.Join(log, " ")
	}
	first := run()
	want := "1@10ms 3@10ms 2@20ms 0@30ms 4@30ms"
	if first != want {
		t.Errorf("wake order = %q, want %q", first, want)
	}
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged: %q vs %q", i, got, first)
		}
	}
}

// TestVirtualQueueFIFO: queue handoff wakes waiters in arrival order and
// never loses items.
func TestVirtualQueueFIFO(t *testing.T) {
	c := NewVirtualClock()
	q := c.NewQueue()
	var got []int
	g := c.NewGroup()
	for i := 0; i < 3; i++ {
		g.Add(1)
		c.Go(func() {
			defer g.Done()
			got = append(got, q.Get().(int))
		})
	}
	c.Go(func() {
		for i := 1; i <= 3; i++ {
			q.Put(i)
		}
	})
	g.Wait()
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

// TestVirtualEventBroadcast: Fire wakes every waiter; Wait after Fire
// returns immediately; double Fire is harmless.
func TestVirtualEventBroadcast(t *testing.T) {
	c := NewVirtualClock()
	e := c.NewEvent()
	woken := 0
	g := c.NewGroup()
	for i := 0; i < 3; i++ {
		g.Add(1)
		c.Go(func() {
			defer g.Done()
			e.Wait()
			woken++
		})
	}
	c.Go(func() {
		c.Sleep(time.Millisecond)
		e.Fire()
		e.Fire()
	})
	g.Wait()
	e.Wait() // already fired: returns immediately
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

// TestVirtualDrainRunsBackgroundWork: Drain advances time until pending
// timers (async sends) have completed.
func TestVirtualDrainRunsBackgroundWork(t *testing.T) {
	c := NewVirtualClock()
	ran := 0
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 50 * time.Millisecond
		c.Go(func() {
			c.Sleep(d)
			ran++
		})
	}
	c.Drain()
	if ran != 3 {
		t.Errorf("ran = %d background actors, want 3", ran)
	}
	if got := c.Now(); got != 150*time.Millisecond {
		t.Errorf("Now after drain = %v, want 150ms", got)
	}
	c.Drain() // idempotent on a quiescent clock
}

// TestVirtualBlockOn: a foreign wait detaches from the scheduler; the rest
// of the simulation keeps running (and advancing time) meanwhile.
func TestVirtualBlockOn(t *testing.T) {
	c := NewVirtualClock()
	ch := make(chan int, 1)
	c.Go(func() {
		c.Sleep(time.Second)
		ch <- 42
	})
	var got int
	c.BlockOn(func() { got = <-ch })
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if c.Now() < time.Second {
		t.Errorf("Now = %v, want >= 1s (time must advance during BlockOn)", c.Now())
	}
}

// TestVirtualDeadlockPanics: an actor blocking on an event nobody can fire
// is reported as a deadlock instead of hanging the test binary.
func TestVirtualDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := NewVirtualClock()
	c.NewEvent().Wait()
}

// TestVirtualSleepZeroAndPast: non-positive and past deadlines return
// immediately without yielding.
func TestVirtualSleepZeroAndPast(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(0)
	c.Sleep(-time.Second)
	c.Sleep(time.Millisecond)
	c.SleepUntil(0) // in the past now
	if got := c.Now(); got != time.Millisecond {
		t.Errorf("Now = %v, want 1ms", got)
	}
}

// TestVirtualTransportDeterminism: the full substrate (transport jitter,
// server queueing, async sends) replays identically for a fixed seed.
func TestVirtualTransportDeterminism(t *testing.T) {
	run := func() string {
		clock := NewVirtualClock()
		meter := NewMeter()
		tr := NewTransport(clock, DefaultLatencies(), meter, 7)
		srv := NewServer(clock, 2)
		var log []string
		g := clock.NewGroup()
		for i := 0; i < 6; i++ {
			i := i
			g.Add(1)
			clock.Go(func() {
				defer g.Done()
				tr.Travel(IRL, FRK, LinkClient, 100)
				srv.Process(2 * time.Millisecond)
				tr.Travel(FRK, IRL, LinkClient, 200)
				log = append(log, fmt.Sprintf("%d@%v", i, clock.Now()))
			})
		}
		g.Wait()
		clock.Drain()
		return fmt.Sprint(log, meter.Snapshot()[LinkClient], clock.Now())
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestVirtualCallbackTimerOrder: callback timers (RunAt/RunAfter)
// interleave with actor wakeups in (deadline, arming sequence) order, and
// run without spawning goroutines.
func TestVirtualCallbackTimerOrder(t *testing.T) {
	run := func() string {
		c := NewVirtualClock()
		var log []string
		note := func(tag string) { log = append(log, fmt.Sprintf("%s@%v", tag, c.Now())) }
		g := c.NewGroup()
		g.Add(1)
		c.Go(func() { // seq 0: actor sleeping to 20ms
			defer g.Done()
			c.Sleep(20 * time.Millisecond)
			note("actor")
		})
		c.RunAfter(20*time.Millisecond, func() { note("cb-after-actor") }) // seq armed after the spawn
		c.RunAfter(10*time.Millisecond, func() { note("cb-early") })
		c.RunAt(30*time.Millisecond, func() { note("cb-late") })
		spawnedBefore := c.Spawned()
		g.Wait()
		c.Drain()
		if got := c.Spawned(); got != spawnedBefore {
			t.Errorf("callback timers spawned %d goroutines, want 0", got-spawnedBefore)
		}
		return strings.Join(log, " ")
	}
	first := run()
	// Same 20ms deadline: arming sequence breaks the tie. The callback was
	// armed right after the actor was spawned, but the actor's wakeup timer
	// is only armed when it actually calls Sleep — after the root has armed
	// all three callbacks — so the callback fires first.
	want := "cb-early@10ms cb-after-actor@20ms actor@20ms cb-late@30ms"
	if first != want {
		t.Errorf("order = %q, want %q", first, want)
	}
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d diverged: %q vs %q", i, got, first)
		}
	}
}

// TestVirtualCallbackChaining: a callback may arm further callbacks and
// spawn actors; Drain runs the whole cascade to completion.
func TestVirtualCallbackChaining(t *testing.T) {
	c := NewVirtualClock()
	var fired []time.Duration
	var arm func()
	arm = func() {
		fired = append(fired, c.Now())
		if len(fired) < 4 {
			c.RunAfter(50*time.Millisecond, arm)
		}
	}
	c.RunAfter(50*time.Millisecond, arm)
	ran := false
	c.RunAfter(120*time.Millisecond, func() {
		// Blocking work from a callback goes through a spawned actor.
		c.Go(func() {
			c.Sleep(time.Millisecond)
			ran = true
		})
	})
	c.Drain()
	if len(fired) != 4 || fired[3] != 200*time.Millisecond {
		t.Errorf("cascade fired at %v, want 4 firings ending at 200ms", fired)
	}
	if !ran {
		t.Error("actor spawned from callback never ran")
	}
	if got := c.Now(); got != 200*time.Millisecond {
		t.Errorf("Now after drain = %v, want 200ms", got)
	}
}

// TestVirtualCallbackResolvesDeadlock: a pending callback timer that wakes
// a blocked actor is not a deadlock — the dispatcher runs it and the
// simulation proceeds.
func TestVirtualCallbackResolvesDeadlock(t *testing.T) {
	c := NewVirtualClock()
	e := c.NewEvent()
	c.RunAfter(30*time.Millisecond, e.Fire)
	e.Wait() // would deadlock without the callback
	if got := c.Now(); got != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", got)
	}
}

// TestVirtualDeadlockWithPendingCallbacks: callbacks that fire without
// unblocking anyone do not mask a deadlock — the fail-fast panic still
// triggers once the timer queue is exhausted.
func TestVirtualDeadlockWithPendingCallbacks(t *testing.T) {
	cbRan := false
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !cbRan {
			t.Error("pending callback should have run before the deadlock was declared")
		}
	}()
	c := NewVirtualClock()
	c.RunAfter(10*time.Millisecond, func() { cbRan = true }) // unrelated
	c.NewEvent().Wait()
}

// TestVirtualCallbackMustNotBlock: a callback calling a blocking clock
// operation fails fast with a diagnostic panic instead of corrupting the
// token protocol.
func TestVirtualCallbackMustNotBlock(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected fail-fast panic")
		}
		if !strings.Contains(fmt.Sprint(r), "callback timer attempted to block") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := NewVirtualClock()
	c.RunAfter(time.Millisecond, func() { c.Sleep(time.Second) })
	c.Drain()
}

// TestVirtualDrainRunsQueuedCallbacks: Drain advances time through every
// queued callback, including ones armed at distinct deadlines while other
// actors are still running.
func TestVirtualDrainRunsQueuedCallbacks(t *testing.T) {
	c := NewVirtualClock()
	ran := 0
	for i := 1; i <= 5; i++ {
		c.RunAfter(time.Duration(i)*20*time.Millisecond, func() { ran++ })
	}
	c.Drain()
	if ran != 5 {
		t.Errorf("ran = %d callbacks, want 5", ran)
	}
	if got := c.Now(); got != 100*time.Millisecond {
		t.Errorf("Now after drain = %v, want 100ms", got)
	}
	c.Drain() // idempotent on a quiescent clock
}

// TestVirtualRunAtPast: a callback armed in the past runs at the current
// instant (on the next dispatch), not never.
func TestVirtualRunAtPast(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(50 * time.Millisecond)
	var at time.Duration = -1
	c.RunAt(10*time.Millisecond, func() { at = c.Now() })
	c.Drain()
	if at != 50*time.Millisecond {
		t.Errorf("past RunAt fired at %v, want 50ms (current instant)", at)
	}
}

// TestTransportSendSpawnsNoGoroutines: the converted async send path is
// goroutine-free end to end.
func TestTransportSendSpawnsNoGoroutines(t *testing.T) {
	clock := NewVirtualClock()
	tr := NewTransport(clock, DefaultLatencies(), NewMeter(), 3)
	before := clock.Spawned()
	delivered := 0
	for i := 0; i < 100; i++ {
		tr.Send(IRL, FRK, LinkReplica, 64, func() { delivered++ })
		tr.SendAfter(5*time.Millisecond, FRK, VRG, LinkReplica, 64, func() { delivered++ })
	}
	clock.Drain()
	if delivered != 200 {
		t.Errorf("delivered = %d, want 200", delivered)
	}
	if got := clock.Spawned(); got != before {
		t.Errorf("async sends spawned %d goroutines, want 0", got-before)
	}
}

// TestVirtualQueueBacklogMemoryBounded: a queue that never fully drains
// (persistent producer lead) must keep its backing buffer proportional to
// the live depth, not to the total put count — the head-indexed buffer
// compacts its dead prefix.
func TestVirtualQueueBacklogMemoryBounded(t *testing.T) {
	c := NewVirtualClock()
	q := c.NewQueue().(*vQueue)
	const depth = 8
	for i := 0; i < depth; i++ {
		q.Put(i)
	}
	// 100k operations at a constant backlog of `depth`.
	for i := 0; i < 100_000; i++ {
		q.Put(depth + i)
		if got := q.Get().(int); got != i {
			t.Fatalf("Get = %d, want %d (FIFO order broken)", got, i)
		}
	}
	if got := cap(q.items.buf); got > 64*depth {
		t.Errorf("backlogged queue buffer cap = %d, want O(depth=%d): dead prefix not compacted", got, depth)
	}
	for i := 0; i < depth; i++ {
		q.Get()
	}
}
