package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestVirtualTimeJumps: with every actor parked, model time jumps straight
// to the earliest deadline — a long model sleep costs no wall time.
func TestVirtualTimeJumps(t *testing.T) {
	c := NewVirtualClock()
	wall := time.Now()
	c.Sleep(10 * time.Hour)
	if elapsed := time.Since(wall); elapsed > time.Second {
		t.Fatalf("10h model sleep took %v wall, want ~0", elapsed)
	}
	if got := c.Now(); got != 10*time.Hour {
		t.Errorf("Now = %v, want 10h", got)
	}
}

// TestVirtualDeterministicOrder: actors woken from the same and different
// deadlines interleave in a fixed order (deadline, then spawn order).
func TestVirtualDeterministicOrder(t *testing.T) {
	run := func() string {
		c := NewVirtualClock()
		var log []string
		g := c.NewGroup()
		for i, d := range []time.Duration{30, 10, 20, 10, 30} {
			i, d := i, d*time.Millisecond
			g.Add(1)
			c.Go(func() {
				defer g.Done()
				c.Sleep(d)
				log = append(log, fmt.Sprintf("%d@%v", i, c.Now()))
			})
		}
		g.Wait()
		return strings.Join(log, " ")
	}
	first := run()
	want := "1@10ms 3@10ms 2@20ms 0@30ms 4@30ms"
	if first != want {
		t.Errorf("wake order = %q, want %q", first, want)
	}
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged: %q vs %q", i, got, first)
		}
	}
}

// TestVirtualQueueFIFO: queue handoff wakes waiters in arrival order and
// never loses items.
func TestVirtualQueueFIFO(t *testing.T) {
	c := NewVirtualClock()
	q := c.NewQueue()
	var got []int
	g := c.NewGroup()
	for i := 0; i < 3; i++ {
		g.Add(1)
		c.Go(func() {
			defer g.Done()
			got = append(got, q.Get().(int))
		})
	}
	c.Go(func() {
		for i := 1; i <= 3; i++ {
			q.Put(i)
		}
	})
	g.Wait()
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

// TestVirtualEventBroadcast: Fire wakes every waiter; Wait after Fire
// returns immediately; double Fire is harmless.
func TestVirtualEventBroadcast(t *testing.T) {
	c := NewVirtualClock()
	e := c.NewEvent()
	woken := 0
	g := c.NewGroup()
	for i := 0; i < 3; i++ {
		g.Add(1)
		c.Go(func() {
			defer g.Done()
			e.Wait()
			woken++
		})
	}
	c.Go(func() {
		c.Sleep(time.Millisecond)
		e.Fire()
		e.Fire()
	})
	g.Wait()
	e.Wait() // already fired: returns immediately
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

// TestVirtualDrainRunsBackgroundWork: Drain advances time until pending
// timers (async sends) have completed.
func TestVirtualDrainRunsBackgroundWork(t *testing.T) {
	c := NewVirtualClock()
	ran := 0
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 50 * time.Millisecond
		c.Go(func() {
			c.Sleep(d)
			ran++
		})
	}
	c.Drain()
	if ran != 3 {
		t.Errorf("ran = %d background actors, want 3", ran)
	}
	if got := c.Now(); got != 150*time.Millisecond {
		t.Errorf("Now after drain = %v, want 150ms", got)
	}
	c.Drain() // idempotent on a quiescent clock
}

// TestVirtualBlockOn: a foreign wait detaches from the scheduler; the rest
// of the simulation keeps running (and advancing time) meanwhile.
func TestVirtualBlockOn(t *testing.T) {
	c := NewVirtualClock()
	ch := make(chan int, 1)
	c.Go(func() {
		c.Sleep(time.Second)
		ch <- 42
	})
	var got int
	c.BlockOn(func() { got = <-ch })
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if c.Now() < time.Second {
		t.Errorf("Now = %v, want >= 1s (time must advance during BlockOn)", c.Now())
	}
}

// TestVirtualDeadlockPanics: an actor blocking on an event nobody can fire
// is reported as a deadlock instead of hanging the test binary.
func TestVirtualDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c := NewVirtualClock()
	c.NewEvent().Wait()
}

// TestVirtualSleepZeroAndPast: non-positive and past deadlines return
// immediately without yielding.
func TestVirtualSleepZeroAndPast(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(0)
	c.Sleep(-time.Second)
	c.Sleep(time.Millisecond)
	c.SleepUntil(0) // in the past now
	if got := c.Now(); got != time.Millisecond {
		t.Errorf("Now = %v, want 1ms", got)
	}
}

// TestVirtualTransportDeterminism: the full substrate (transport jitter,
// server queueing, async sends) replays identically for a fixed seed.
func TestVirtualTransportDeterminism(t *testing.T) {
	run := func() string {
		clock := NewVirtualClock()
		meter := NewMeter()
		tr := NewTransport(clock, DefaultLatencies(), meter, 7)
		srv := NewServer(clock, 2)
		var log []string
		g := clock.NewGroup()
		for i := 0; i < 6; i++ {
			i := i
			g.Add(1)
			clock.Go(func() {
				defer g.Done()
				tr.Travel(IRL, FRK, LinkClient, 100)
				srv.Process(2 * time.Millisecond)
				tr.Travel(FRK, IRL, LinkClient, 200)
				log = append(log, fmt.Sprintf("%d@%v", i, clock.Now()))
			})
		}
		g.Wait()
		clock.Drain()
		return fmt.Sprint(log, meter.Snapshot()[LinkClient], clock.Now())
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, got, first)
		}
	}
}
