package netsim

import (
	"testing"
	"time"
)

// TestServerQueueDelay: QueueDelay reports the wait a job arriving now
// would incur — 0 when a slot is free, the earliest slot's remaining
// booking otherwise — and reflects reservations immediately, which is what
// makes it a usable backpressure probe.
func TestServerQueueDelay(t *testing.T) {
	clock := NewVirtualClock()
	s := NewServer(clock, 1)
	if d := s.QueueDelay(); d != 0 {
		t.Fatalf("idle QueueDelay = %v, want 0", d)
	}
	g := clock.NewGroup()
	for i := 0; i < 2; i++ {
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			s.Process(100 * time.Millisecond)
		})
	}
	clock.Sleep(10 * time.Millisecond)
	// Two 100ms jobs booked on one worker: the earliest slot frees at
	// 200ms, so a job arriving at 10ms waits 190ms.
	if d := s.QueueDelay(); d != 190*time.Millisecond {
		t.Errorf("saturated QueueDelay = %v, want 190ms", d)
	}
	g.Wait()
	if d := s.QueueDelay(); d != 0 {
		t.Errorf("drained QueueDelay = %v, want 0", d)
	}
}

// TestServerQueueDelayPicksEarliestSlot: with several workers the delay is
// governed by the soonest-free slot, not the most loaded one.
func TestServerQueueDelayPicksEarliestSlot(t *testing.T) {
	clock := NewVirtualClock()
	s := NewServer(clock, 2)
	g := clock.NewGroup()
	costs := []time.Duration{30 * time.Millisecond, 80 * time.Millisecond}
	for _, c := range costs {
		c := c
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			s.Process(c)
		})
	}
	clock.Sleep(10 * time.Millisecond)
	if d := s.QueueDelay(); d != 20*time.Millisecond {
		t.Errorf("QueueDelay = %v, want 20ms (earliest of the two slots)", d)
	}
	g.Wait()
}

// TestMeterLoadStats: the admission-outcome counters are per-class,
// nil-safe, and cleared by Reset.
func TestMeterLoadStats(t *testing.T) {
	var nilMeter *Meter
	nilMeter.AccountRejected(LinkClient) // must not panic
	nilMeter.AccountShed(LinkClient)
	nilMeter.AccountRetried(LinkClient)
	if got := nilMeter.Load(LinkClient); got != (LoadStats{}) {
		t.Errorf("nil meter Load = %+v", got)
	}
	if snap := nilMeter.SnapshotLoad(); len(snap) != 0 {
		t.Errorf("nil meter SnapshotLoad = %v", snap)
	}

	m := NewMeter()
	m.AccountRejected(LinkClient)
	m.AccountRejected(LinkClient)
	m.AccountShed(LinkClient)
	m.AccountRetried(LinkReplica)
	if got := m.Load(LinkClient); got != (LoadStats{Rejected: 2, Shed: 1}) {
		t.Errorf("client class = %+v", got)
	}
	if got := m.Load(LinkReplica); got != (LoadStats{Retried: 1}) {
		t.Errorf("replica class = %+v", got)
	}
	snap := m.SnapshotLoad()
	if len(snap) != 2 || snap[LinkClient].Rejected != 2 || snap[LinkReplica].Retried != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	snap[LinkClient] = LoadStats{Rejected: 99} // snapshot is a copy
	if m.Load(LinkClient).Rejected != 2 {
		t.Error("mutating the snapshot reached the meter")
	}
	m.Reset()
	if got := m.Load(LinkClient); got != (LoadStats{}) {
		t.Errorf("post-Reset = %+v", got)
	}
}
