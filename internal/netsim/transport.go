package netsim

import (
	"hash/fnv"
	"math"
	randv2 "math/rand/v2"
	"sync"
	"time"

	"correctables/internal/trace"
)

// Verdict is an Interceptor's decision for one message.
type Verdict uint8

const (
	// VerdictDeliver lets the message through; its one-way delay is scaled
	// by the factor the interceptor returns alongside (latency spikes).
	VerdictDeliver Verdict = iota
	// VerdictDrop loses the message on an otherwise live link (lossy-link
	// packet loss). Asynchronous sends are silently discarded; synchronous
	// Travel models a retransmit: the sender waits a retransmission timeout
	// and tries again.
	VerdictDrop
	// VerdictStall marks the link impassable (network partition, crashed
	// endpoint). Travel parks the calling actor via AwaitPassable until the
	// link heals; asynchronous sends are discarded — in-flight
	// fire-and-forget traffic is exactly the state a crash loses.
	VerdictStall
)

// Interceptor inspects every message the transport carries, deciding its
// fate per the current fault epoch. The canonical implementation is
// faults.Injector; a nil interceptor (the default) leaves the hot path
// untouched. Interceptor methods are called from actor context for Travel
// and possibly from callback context for Send/SendAfter, so Intercept must
// never block; only AwaitPassable may park the caller.
type Interceptor interface {
	// Intercept returns the fate of one message plus a delay multiplier
	// (meaningful for VerdictDeliver; 1.0 = unperturbed).
	Intercept(from, to Region, class string) (Verdict, float64)
	// AwaitPassable parks the calling actor until from<->to is passable
	// again (partition healed, endpoints up). Called by the synchronous
	// path after a VerdictStall.
	AwaitPassable(from, to Region)
}

// Transport carries messages between regions, charging one-way latency
// (with jitter and an exponential tail) and accounting bytes on the meter.
// It is the only path through which simulated components may exchange data,
// which is what makes the bandwidth figures (Fig 8, Fig 10) trustworthy.
//
// Jitter is drawn from per-region-pair PCG generators rather than one
// global locked source, so concurrent clients (wall mode) don't serialize
// on a single RNG lock, and the draw sequence of each link is independent
// of traffic on other links.
type Transport struct {
	clock Clock
	model *LatencyModel
	meter *Meter
	icept Interceptor

	shards map[[2]Region]*rngShard
	// local is the fallback jitter source for same-region links of regions
	// absent from the model's RTT map (single-region custom models).
	local *rngShard

	// JitterFrac is the +/- uniform jitter fraction applied to every one-way
	// delay (default 0.04).
	JitterFrac float64
	// TailMeanFrac is the mean of the additive exponential tail, as a
	// fraction of the base one-way delay (default 0.03). This produces the
	// heavier 99th-percentile latencies visible in the paper's Figures 5
	// and 9 without changing averages much.
	TailMeanFrac float64

	// trc, when set, records one span per message on a per-link track,
	// annotated with the fault verdicts the message saw. Nil (the default)
	// costs the hot path one pointer comparison.
	trc       *trace.Tracer
	trackMu   sync.Mutex
	netTracks map[[2]Region]trace.Track
}

// rngShard is one link's jitter source.
type rngShard struct {
	mu  sync.Mutex
	rng *randv2.Rand
}

// NewTransport creates a transport over the given clock, latency model and
// meter. The meter may be nil (no accounting). Seed fixes the jitter RNGs
// for reproducible runs.
func NewTransport(clock Clock, model *LatencyModel, meter *Meter, seed int64) *Transport {
	t := &Transport{
		clock:        clock,
		model:        model,
		meter:        meter,
		shards:       make(map[[2]Region]*rngShard),
		JitterFrac:   0.04,
		TailMeanFrac: 0.03,
	}
	// One generator per link (including each region's local link), seeded
	// from the run seed and a stable hash of the pair so the sequence on a
	// given link is the same whatever other links exist. Regions are taken
	// from the RTT map itself, not a canonical list, so custom geographies
	// get jittered local links too.
	addShard := func(key [2]Region) {
		if _, ok := t.shards[key]; ok {
			return
		}
		h := fnv.New64a()
		h.Write([]byte(key[0]))
		h.Write([]byte{0})
		h.Write([]byte(key[1]))
		t.shards[key] = &rngShard{rng: randv2.New(randv2.NewPCG(uint64(seed), h.Sum64()))}
	}
	for key := range model.RTTs {
		addShard(key)
		addShard(pairKey(key[0], key[0]))
		addShard(pairKey(key[1], key[1]))
	}
	t.local = &rngShard{rng: randv2.New(randv2.NewPCG(uint64(seed), 0x10ca1))}
	return t
}

// Clock returns the transport's clock.
func (t *Transport) Clock() Clock { return t.clock }

// Model returns the transport's latency model.
func (t *Transport) Model() *LatencyModel { return t.model }

// Meter returns the transport's meter (may be nil).
func (t *Transport) Meter() *Meter { return t.meter }

// SetInterceptor installs (or, with nil, removes) the fault interceptor.
// Install it before traffic starts — typically right after NewTransport and
// before any store is constructed on the transport, since stores inspect
// Interceptor() at construction time to wire their crash-recovery hooks.
func (t *Transport) SetInterceptor(i Interceptor) { t.icept = i }

// Interceptor returns the installed fault interceptor (nil when none).
func (t *Transport) Interceptor() Interceptor { return t.icept }

// SetTrace installs (or, with nil, removes) a span tracer. Install it at
// wiring time, before traffic starts.
func (t *Transport) SetTrace(trc *trace.Tracer) {
	t.trc = trc
	t.netTracks = make(map[[2]Region]trace.Track)
}

// Trace returns the installed tracer (nil when tracing is off).
func (t *Transport) Trace() *trace.Tracer { return t.trc }

// netTrack returns the (lazily interned) trace track for one directed
// link.
func (t *Transport) netTrack(from, to Region) trace.Track {
	key := [2]Region{from, to}
	t.trackMu.Lock()
	tk, ok := t.netTracks[key]
	if !ok {
		tk = t.trc.Track("net/" + string(from) + "→" + string(to))
		t.netTracks[key] = tk
	}
	t.trackMu.Unlock()
	return tk
}

// netCat maps a link class to its decomposition category.
func netCat(class string) trace.Category {
	if class == LinkClient {
		return trace.CatNetClient
	}
	return trace.CatNetReplica
}

// sample returns a jittered one-way delay between two regions.
func (t *Transport) sample(from, to Region) time.Duration {
	base := float64(t.model.OneWay(from, to))
	s, ok := t.shards[pairKey(from, to)]
	if !ok {
		// Same-region link of a region with no RTT entries (OneWay panics
		// for unmodelled cross-region pairs before reaching here): jitter
		// from the shared local fallback shard.
		s = t.local
	}
	s.mu.Lock()
	u := s.rng.Float64()*2 - 1 // [-1, 1)
	e := s.rng.ExpFloat64()
	s.mu.Unlock()
	d := base * (1 + t.JitterFrac*u)
	d += base * t.TailMeanFrac * e
	return time.Duration(math.Max(d, 0))
}

// scaled multiplies a delay by an interceptor factor.
func scaled(d time.Duration, factor float64) time.Duration {
	if factor == 1 {
		return d
	}
	return time.Duration(float64(d) * factor)
}

// Travel synchronously delivers a message: it accounts size bytes on the
// link class and sleeps the one-way delay in model time. Callers run
// protocol logic as straight-line code in their own actor and call Travel
// at each hop.
//
// Under an interceptor, a dropped message costs the sender a retransmission
// timeout (~one RTT) before retrying, with the lost bytes accounted on the
// meter's dropped counters; a stalled message parks the actor until the
// link is passable again, modeling an idealized retransmit that succeeds
// as soon as the partition heals or the endpoint restarts.
func (t *Transport) Travel(from, to Region, class string, size int) {
	if t.icept == nil && t.trc == nil {
		t.meter.Account(class, size)
		t.clock.Sleep(t.sample(from, to))
		return
	}
	var sp trace.SpanID
	if t.trc != nil {
		sp = t.trc.Begin(t.netTrack(from, to), netCat(class), class, "", t.clock.Now())
	}
	for {
		verdict, factor := VerdictDeliver, 1.0
		if t.icept != nil {
			verdict, factor = t.icept.Intercept(from, to, class)
		}
		switch verdict {
		case VerdictDeliver:
			t.meter.Account(class, size)
			t.clock.Sleep(scaled(t.sample(from, to), factor))
			t.trc.End(sp, t.clock.Now())
			return
		case VerdictDrop:
			t.trc.Annotate(sp, "drop")
			t.meter.AccountDropped(class, size)
			t.clock.Sleep(2 * t.sample(from, to)) // retransmission timeout
		case VerdictStall:
			t.trc.Annotate(sp, "stall")
			t.icept.AwaitPassable(from, to)
		}
	}
}

// Send asynchronously delivers a message: fn runs as a callback timer
// after the one-way delay — no goroutine is spawned per message. Used for
// off-critical-path traffic such as asynchronous replication and commit
// notifications. fn must not block (see the Clock comment); delivery work
// that needs to block (e.g. charging receiver service time through a
// bounded Server) should spawn an actor from within fn with Clock.Go.
//
// Fire-and-forget traffic has no retransmit path: under an interceptor, a
// dropped or severed message is lost outright (accounted on the dropped
// counters) and fn never runs — which is exactly the in-flight state a
// crashed or partitioned replica loses.
func (t *Transport) Send(from, to Region, class string, size int, fn func()) {
	t.send(0, from, to, class, size, fn)
}

// SendAfter is Send with an additional model-time delay before the message
// leaves (e.g. replication batching delay). The interceptor verdict is
// taken at send time, not delivery time.
func (t *Transport) SendAfter(extra time.Duration, from, to Region, class string, size int, fn func()) {
	t.send(extra, from, to, class, size, fn)
}

func (t *Transport) send(extra time.Duration, from, to Region, class string, size int, fn func()) {
	factor := 1.0
	if t.icept != nil {
		verdict, f := t.icept.Intercept(from, to, class)
		if verdict != VerdictDeliver {
			t.meter.AccountDropped(class, size)
			if t.trc != nil {
				now := t.clock.Now()
				t.trc.Span(t.netTrack(from, to), netCat(class), class, "lost", now, now)
			}
			return
		}
		factor = f
	}
	t.meter.Account(class, size)
	delay := scaled(t.sample(from, to), factor) + extra
	if t.trc != nil {
		now := t.clock.Now()
		t.trc.Span(t.netTrack(from, to), netCat(class), class, "", now, now+delay)
	}
	t.clock.RunAfter(delay, fn)
}
