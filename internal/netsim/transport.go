package netsim

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Transport carries messages between regions, charging one-way latency
// (with jitter and an exponential tail) and accounting bytes on the meter.
// It is the only path through which simulated components may exchange data,
// which is what makes the bandwidth figures (Fig 8, Fig 10) trustworthy.
type Transport struct {
	clock *Clock
	model *LatencyModel
	meter *Meter

	mu  sync.Mutex
	rng *rand.Rand

	// JitterFrac is the +/- uniform jitter fraction applied to every one-way
	// delay (default 0.04).
	JitterFrac float64
	// TailMeanFrac is the mean of the additive exponential tail, as a
	// fraction of the base one-way delay (default 0.03). This produces the
	// heavier 99th-percentile latencies visible in the paper's Figures 5
	// and 9 without changing averages much.
	TailMeanFrac float64
}

// NewTransport creates a transport over the given clock, latency model and
// meter. The meter may be nil (no accounting). Seed fixes the jitter RNG for
// reproducible runs.
func NewTransport(clock *Clock, model *LatencyModel, meter *Meter, seed int64) *Transport {
	return &Transport{
		clock:        clock,
		model:        model,
		meter:        meter,
		rng:          rand.New(rand.NewSource(seed)),
		JitterFrac:   0.04,
		TailMeanFrac: 0.03,
	}
}

// Clock returns the transport's clock.
func (t *Transport) Clock() *Clock { return t.clock }

// Model returns the transport's latency model.
func (t *Transport) Model() *LatencyModel { return t.model }

// Meter returns the transport's meter (may be nil).
func (t *Transport) Meter() *Meter { return t.meter }

// sample returns a jittered one-way delay between two regions.
func (t *Transport) sample(from, to Region) time.Duration {
	base := float64(t.model.OneWay(from, to))
	t.mu.Lock()
	u := t.rng.Float64()*2 - 1 // [-1, 1)
	e := t.rng.ExpFloat64()
	t.mu.Unlock()
	d := base * (1 + t.JitterFrac*u)
	d += base * t.TailMeanFrac * e
	return time.Duration(math.Max(d, 0))
}

// Travel synchronously delivers a message: it accounts size bytes on the
// link class and sleeps the (scaled) one-way delay. Callers run protocol
// logic as straight-line code in their own goroutine and call Travel at
// each hop.
func (t *Transport) Travel(from, to Region, class string, size int) {
	t.meter.Account(class, size)
	t.clock.Sleep(t.sample(from, to))
}

// Send asynchronously delivers a message: fn runs on a fresh goroutine
// after the one-way delay. Used for off-critical-path traffic such as
// asynchronous replication and commit notifications.
func (t *Transport) Send(from, to Region, class string, size int, fn func()) {
	t.meter.Account(class, size)
	d := t.sample(from, to)
	go func() {
		t.clock.Sleep(d)
		fn()
	}()
}

// SendAfter is Send with an additional model-time delay before the message
// leaves (e.g. replication batching delay).
func (t *Transport) SendAfter(extra time.Duration, from, to Region, class string, size int, fn func()) {
	t.meter.Account(class, size)
	d := t.sample(from, to) + extra
	go func() {
		t.clock.Sleep(d)
		fn()
	}()
}
