package binding

import (
	"time"

	"correctables/internal/trace"
)

// WithTracer attaches a model-time span tracer to the client: every
// invocation records one root span (category "op", named by the
// operation, keyed by OpInfo identity) on the client's track, with one
// instant per delivered view, and the governed pipeline annotates
// admission verdicts and retry backoff windows. A nil tracer leaves the
// pipeline on its observer-free fast path.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Client) { c.trc = t }
}

// NewTraceObserver returns an Observer that records each operation as one
// complete span on the given track: the span runs OpStart..OpEnd, views
// appear as instants. It keeps no per-operation state — OpEnd already
// carries the start instant — so fan-out with a history recorder attached
// costs no extra allocation per op.
func NewTraceObserver(t *trace.Tracer, track trace.Track) Observer {
	return &traceObserver{t: t, track: track}
}

type traceObserver struct {
	t     *trace.Tracer
	track trace.Track
}

func (o *traceObserver) OpStart(op OpInfo) {}

func (o *traceObserver) OpView(op OpInfo, v OpView) {
	name := "prelim"
	if v.Final {
		name = "final"
	}
	o.t.Instant(o.track, name, op.Key, v.At)
}

func (o *traceObserver) OpEnd(op OpInfo, at time.Duration, err error) {
	detail := op.Key
	if err != nil {
		detail = "error"
	}
	o.t.Span(o.track, trace.CatOp, op.Name, detail, op.Start, at)
}
