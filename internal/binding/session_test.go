package binding

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"correctables/internal/core"
	"correctables/internal/faults"
)

// versionedStore is a deterministic in-memory versioned binding: a map of
// LWW registers whose weak views are served from a configurable "stale
// replica" that lags the committed state by `lag` versions, exactly the
// shape session guarantees exist to paper over. Callbacks run
// synchronously, so tests need no synchronization.
type versionedStore struct {
	mu          sync.Mutex
	version     map[string]uint64
	value       map[string][]byte
	history     map[string][][]byte // value per version (index version-1)
	lag         int                 // weak views trail the newest version by lag
	heal        bool                // when set, reads heal: lag collapses after one retry
	staleFinals int                 // serve this many strong views one version behind
	reads       int
}

func newVersionedStore() *versionedStore {
	return &versionedStore{
		version: map[string]uint64{},
		value:   map[string][]byte{},
		history: map[string][][]byte{},
	}
}

func (s *versionedStore) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelWeak, core.LevelStrong}
}
func (s *versionedStore) Close() error   { return nil }
func (s *versionedStore) Versions() bool { return true }

func (s *versionedStore) staleView(key string) (uint64, []byte) {
	v := s.version[key]
	back := uint64(s.lag)
	if back > v {
		back = v
	}
	sv := v - back
	if sv == 0 {
		return 0, nil
	}
	return sv, s.history[key][sv-1]
}

func (s *versionedStore) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	// Compute results under the lock, deliver after releasing it: a session
	// retry re-enters SubmitOperation from inside the callback.
	var results []Result
	s.mu.Lock()
	switch o := op.(type) {
	case Put:
		s.version[o.Key]++
		s.value[o.Key] = o.Value
		s.history[o.Key] = append(s.history[o.Key], o.Value)
		results = append(results, Result{Level: levels.Strongest(), Version: s.version[o.Key]})
	case Get:
		s.reads++
		if s.heal && s.reads > 1 {
			s.lag = 0
		}
		strong := func(key string) Result {
			v, val := s.version[key], s.value[key]
			if s.staleFinals > 0 && v > 1 {
				s.staleFinals--
				v--
				val = s.history[key][v-1]
			}
			return Result{Value: val, Level: core.LevelStrong, Version: v}
		}
		switch {
		case levels.Contains(core.LevelWeak) && levels.Contains(core.LevelStrong):
			sv, sval := s.staleView(o.Key)
			results = append(results,
				Result{Value: sval, Level: core.LevelWeak, Version: sv},
				strong(o.Key))
		case levels.Strongest() == core.LevelStrong:
			results = append(results, strong(o.Key))
		default:
			sv, sval := s.staleView(o.Key)
			results = append(results, Result{Value: sval, Level: core.LevelWeak, Version: sv})
		}
	default:
		results = append(results, Result{Err: fmt.Errorf("%w: %s", ErrUnsupportedOperation, op.OpName())})
	}
	s.mu.Unlock()
	for _, r := range results {
		cb(r)
	}
}

func TestSessionSuppressesStalePreliminary(t *testing.T) {
	st := newVersionedStore()
	st.lag = 1
	s := NewSession(NewClient(st))
	ctx := context.Background()

	if _, err := s.Put(ctx, "k", []byte("v1")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	// The weak view lags (version 0 < floor 1): the session must suppress
	// it, delivering only the strong view.
	cor := s.Get(ctx, "k")
	v, err := cor.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "v1" || v.Level != core.LevelStrong {
		t.Fatalf("final = %+v", v)
	}
	if views := cor.Views(); len(views) != 1 {
		t.Errorf("views = %+v, want the stale preliminary suppressed", views)
	}
	// A plain (non-session) invoke over the same client still sees the
	// stale preliminary — the guarantee is the session's, not the client's.
	cor = Invoke[[]byte](ctx, s.Client(), Get{Key: "k"})
	if _, err := cor.Final(ctx); err != nil {
		t.Fatal(err)
	}
	if views := cor.Views(); len(views) != 2 {
		t.Errorf("plain invoke views = %+v, want both", views)
	}
}

func TestSessionRetriesStaleWeakFinal(t *testing.T) {
	st := newVersionedStore()
	st.lag = 1
	st.heal = true // second read observes the healed replica
	s := NewSession(NewClient(st))
	ctx := context.Background()

	if _, err := s.Put(ctx, "k", []byte("v1")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	// Weak-only read: the single view is final; staleness forces a retry,
	// which the healed replica satisfies — read-your-writes via retry.
	v, err := s.GetWeak(ctx, "k").Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "v1" {
		t.Fatalf("weak read after write = %q, want v1", v.Value)
	}
	if st.reads != 2 {
		t.Errorf("reads = %d, want 2 (one retry)", st.reads)
	}
}

func TestSessionRetryDoesNotDuplicateWeakerViews(t *testing.T) {
	st := newVersionedStore()
	s := NewSession(NewClient(st))
	ctx := context.Background()

	if _, err := s.Put(ctx, "k", []byte("v1")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ctx, "k", []byte("v2")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	// ICG read: the weak view is fresh (delivered), but the first strong
	// final is served one version behind the floor, forcing a retry. The
	// retry must re-execute at the strongest level only: exactly one weak
	// and one strong view reach the application.
	st.staleFinals = 1
	cor := s.Get(ctx, "k")
	v, err := cor.Final(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "v2" {
		t.Fatalf("final = %+v, want the fresh v2", v)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelWeak || views[1].Level != core.LevelStrong {
		t.Fatalf("views = %+v, want exactly [weak, strong] (no duplicated weak view from the retry)", views)
	}
}

func TestSessionFailsAfterRetriesExhausted(t *testing.T) {
	st := newVersionedStore()
	st.lag = 1 // permanently stale, never heals
	s := NewSession(NewClient(st), WithSessionRetries(2))
	ctx := context.Background()

	if _, err := s.Put(ctx, "k", []byte("v1")).Final(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := s.GetWeak(ctx, "k").Final(ctx)
	if !errors.Is(err, ErrSessionGuarantee) {
		t.Fatalf("err = %v, want ErrSessionGuarantee", err)
	}
	if st.reads != 3 {
		t.Errorf("reads = %d, want 3 (two retries)", st.reads)
	}
}

func TestSessionMonotonicReadsAcrossOperations(t *testing.T) {
	st := newVersionedStore()
	s := NewSession(NewClient(st))
	ctx := context.Background()

	// Another writer (not this session) advances the store; the session
	// reads the new version...
	if _, err := Invoke[Ack](ctx, s.Client(), Put{Key: "k", Value: []byte("v1")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k").Final(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Floor("k"); got != 1 {
		t.Fatalf("floor after read = %d, want 1", got)
	}
	// ...then the replica regresses far enough that its weak view (version
	// 0, before the session's first observation) would violate monotonic
	// reads. A later session read must suppress it: only the strong view
	// is delivered.
	st.lag = 2
	if _, err := Invoke[Ack](ctx, s.Client(), Put{Key: "k", Value: []byte("v2")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	cor := s.Get(ctx, "k")
	if _, err := cor.Final(ctx); err != nil {
		t.Fatal(err)
	}
	views := cor.Views()
	if len(views) != 1 || !views[0].Final || string(views[0].Value) != "v2" {
		t.Fatalf("views = %+v, want only the strong view (regressed preliminary suppressed)", views)
	}
	if got := s.Floor("k"); got != 2 {
		t.Errorf("floor after second read = %d, want 2", got)
	}
}

func TestSessionUnkeyedAndUnversionedPassThrough(t *testing.T) {
	// The plain fake binding does not version results: sessions over it
	// must behave exactly like the bare client.
	c := NewClient(newFake())
	s := NewSession(c)
	ctx := context.Background()
	cor := SessionInvoke[[]byte](ctx, s, Get{Key: "k"})
	if v, err := cor.Final(ctx); err != nil || string(v.Value) != "strong:k" {
		t.Fatalf("pass-through session invoke = %+v, %v", v, err)
	}
	if len(cor.Views()) != 2 {
		t.Errorf("views = %d, want 2", len(cor.Views()))
	}
	if got := s.Floor("k"); got != 0 {
		t.Errorf("floor on unversioned binding = %d, want 0", got)
	}
}

// recordingObserver collects the full event stream.
type recordingObserver struct {
	mu     sync.Mutex
	events []string
}

func (r *recordingObserver) OpStart(op OpInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf("start %s %s/%s #%d", op.Client, op.Name, op.Key, op.ID))
}

func (r *recordingObserver) OpView(op OpInfo, v OpView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, fmt.Sprintf("view %s/%s %v v%d final=%v", op.Name, op.Key, v.Level, v.Version, v.Final))
}

func (r *recordingObserver) OpEnd(op OpInfo, at time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	outcome := "ok"
	if err != nil {
		outcome = "err"
	}
	r.events = append(r.events, fmt.Sprintf("end %s/%s %s", op.Name, op.Key, outcome))
}

func (r *recordingObserver) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func TestObserverSeesFullEventStream(t *testing.T) {
	obs := &recordingObserver{}
	st := newVersionedStore()
	c := NewClient(st, WithObserver(obs), WithLabel("alice"))
	ctx := context.Background()

	if _, err := Invoke[Ack](ctx, c, Put{Key: "k", Value: []byte("v")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Invoke[[]byte](ctx, c, Get{Key: "k"}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"start alice put/k #1",
		"view put/k strong v1 final=true",
		"end put/k ok",
		"start alice get/k #2",
		"view get/k weak v1 final=false",
		"view get/k strong v1 final=true",
		"end get/k ok",
	}
	got := obs.snapshot()
	if len(got) != len(want) {
		t.Fatalf("events = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestObserverSeesErrorEnd(t *testing.T) {
	obs := &recordingObserver{}
	c := NewClient(newFake(), WithObserver(obs))
	ctx := context.Background()
	if _, err := Invoke[Item](ctx, c, Enqueue{Queue: "q", Item: []byte("x")}).Final(ctx); err == nil {
		t.Fatal("want unsupported-operation error")
	}
	got := obs.snapshot()
	if len(got) != 2 || got[1] != "end enqueue/q err" {
		t.Errorf("events = %q, want start + error end", got)
	}
}

// stallBinding never answers: for exercising the client-level op timeout.
type stallBinding struct{}

func (stallBinding) ConsistencyLevels() core.Levels { return core.Levels{core.LevelStrong} }
func (stallBinding) Close() error                   { return nil }
func (stallBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
}

func TestWithOpTimeoutBoundsStalledOperation(t *testing.T) {
	obs := &recordingObserver{}
	c := NewClient(stallBinding{}, WithOpTimeout(20*time.Millisecond), WithObserver(obs))
	start := time.Now()
	_, err := InvokeStrong[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background())
	if !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	got := obs.snapshot()
	if len(got) != 2 || got[1] != "end get/k err" {
		t.Errorf("events = %q, want start + timeout end", got)
	}
}

// timeoutBinding advertises a default operation bound that can change
// after construction (the shipped bindings flip from 0 to the store
// OpTimeout when a fault injector attaches to the transport).
type timeoutBinding struct {
	stallBinding
	d *time.Duration
}

func (b timeoutBinding) DefaultOpTimeout() time.Duration { return *b.d }

func TestBindingDefaultOpTimeoutAndOverride(t *testing.T) {
	d := 15 * time.Millisecond
	c := NewClient(timeoutBinding{d: &d})
	if got := c.OpTimeout(); got != 15*time.Millisecond {
		t.Fatalf("resolved timeout = %v, want the binding default", got)
	}
	if _, err := InvokeStrong[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable from the binding default", err)
	}
	// WithOpTimeout(0) disables the binding default entirely.
	c = NewClient(timeoutBinding{d: &d}, WithOpTimeout(0))
	if got := c.OpTimeout(); got != 0 {
		t.Errorf("override timeout = %v, want 0", got)
	}
}

// TestTimeoutResolvedPerInvocation: a fault injector attached AFTER client
// construction must still bound operations — the binding default is
// consulted per invocation, not frozen at NewClient (the silent-hang
// regression the per-store guards never had).
func TestTimeoutResolvedPerInvocation(t *testing.T) {
	d := time.Duration(0) // construction time: unguarded (no injector yet)
	c := NewClient(timeoutBinding{d: &d})
	if got := c.OpTimeout(); got != 0 {
		t.Fatalf("timeout before attach = %v, want 0", got)
	}
	d = 15 * time.Millisecond // the injector attached; the bound appears
	if got := c.OpTimeout(); got != 15*time.Millisecond {
		t.Fatalf("timeout after attach = %v, want the new binding default", got)
	}
	if _, err := InvokeStrong[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable via the late-attached bound", err)
	}
}

func TestKeyedOperationMetadata(t *testing.T) {
	cases := []struct {
		op       Operation
		key      string
		mutating bool
	}{
		{Get{Key: "k"}, "k", false},
		{Put{Key: "k"}, "k", true},
		{Enqueue{Queue: "q"}, "q", true},
		{Dequeue{Queue: "q"}, "q", true},
	}
	for _, tc := range cases {
		if got := tc.op.(Keyer).OpKey(); got != tc.key {
			t.Errorf("%s OpKey = %q, want %q", tc.op.OpName(), got, tc.key)
		}
		if got := tc.op.(Mutator).OpMutates(); got != tc.mutating {
			t.Errorf("%s OpMutates = %v, want %v", tc.op.OpName(), got, tc.mutating)
		}
	}
}
