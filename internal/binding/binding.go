// Package binding defines the storage-binding API of the paper (§5.1) and
// the client library that turns binding callbacks into Correctables (§3.2).
//
// A binding encapsulates everything that is storage-system specific: the
// concrete storage stack configuration, the consistency levels it offers,
// and the protocols implementing them (quorum selection, cache coherence,
// leader forwarding, ...). The library side is store-agnostic: it translates
// API calls (InvokeWeak / InvokeStrong / Invoke) into SubmitOperation calls
// and orchestrates the responses into Correctable state transitions.
//
// The wire between the client library and a binding is deliberately
// monomorphic (Result carries an `any` value), so a binding implementation
// is one concrete type whatever the operations' value types are. Typing is
// restored one layer up: every concrete operation implements
// OperationFor[T] by declaring how its wire value decodes to T, and the
// generic Invoke/InvokeWeak/InvokeStrong adapters instantiate per T, so
// applications only ever see core.Correctable[T].
package binding

import (
	"context"
	"fmt"
	"time"

	"correctables/internal/core"
)

// Operation is a request against a replicated object. Concrete operation
// types are shared across stores where the data model allows (Get/Put for
// key-value stores, Enqueue/Dequeue for queue objects); a binding rejects
// operations its store does not support.
type Operation interface {
	// OpName returns a short human-readable operation name ("get", ...).
	OpName() string
}

// OperationFor is a typed operation: an Operation that also declares its
// result type T and how a wire-level result value decodes into it. All
// operations in this repository implement it (Get → []byte, Put → Ack,
// Enqueue/Dequeue → Item, chain.SubmitTx → chain.TxStatus); bindings stay
// monomorphic and the generic Invoke adapters instantiate per T.
type OperationFor[T any] interface {
	Operation
	// ResultOf converts a wire-level result value into T. It is called once
	// per delivered view, on the binding's delivery path; implementations
	// must be cheap and must not retain v.
	ResultOf(v any) (T, error)
}

// Keyer is the optional Operation interface reporting the replicated-object
// identity an operation targets (the key of a key-value operation, the
// queue name of a queue operation, the transaction ID of a chain
// submission). Sessions use it to scope per-object guarantees and the
// history recorder uses it to partition histories per object; operations
// that do not implement it are treated as unkeyed and bypass both.
type Keyer interface {
	OpKey() string
}

// Mutator is the optional Operation interface classifying an operation as
// state-changing. Sessions use it to decide which version tokens an
// operation refreshes: mutating operations advance the last-written token,
// observing operations advance the last-read token (a Dequeue is both).
// Operations that do not implement it are treated as read-only.
type Mutator interface {
	OpMutates() bool
}

// Ack is the typed result of write-style operations (Put, Enqueue when the
// element identity is irrelevant): the operation was applied at the view's
// consistency level, and there is no payload.
type Ack struct{}

// Item is the typed result of queue operations (Enqueue, Dequeue): the
// element the operation settled on, plus the remaining queue length. On
// preliminary views both are estimates from the contact server's local
// simulation.
type Item struct {
	// ID identifies the element within its queue (e.g. the ZooKeeper
	// sequential znode name). Empty when Exists is false.
	ID string
	// Data is the element payload (nil when Exists is false).
	Data []byte
	// Exists reports whether the operation found/produced an element; a
	// Dequeue of an empty queue yields Exists == false.
	Exists bool
	// Remaining is the queue length after the operation (an estimate on
	// preliminary views).
	Remaining int
}

// EqualValue implements core.Equaler[Item]: divergence (for speculation and
// confirmation) is judged on the element identity only — Data is determined
// by ID, and Remaining is an estimate on preliminary views.
func (i Item) EqualValue(other Item) bool {
	return i.Exists == other.Exists && i.ID == other.ID
}

// Get reads the value of a key.
type Get struct{ Key string }

// OpName implements Operation.
func (Get) OpName() string { return "get" }

// OpKey implements Keyer.
func (g Get) OpKey() string { return g.Key }

// OpMutates implements Mutator: reads change nothing.
func (Get) OpMutates() bool { return false }

// ResultOf implements OperationFor[[]byte].
func (Get) ResultOf(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("binding: get result is %T, want []byte", v)
	}
	return b, nil
}

// Put writes the value of a key.
type Put struct {
	Key   string
	Value []byte
}

// OpName implements Operation.
func (Put) OpName() string { return "put" }

// OpKey implements Keyer.
func (p Put) OpKey() string { return p.Key }

// OpMutates implements Mutator.
func (Put) OpMutates() bool { return true }

// ResultOf implements OperationFor[Ack].
func (Put) ResultOf(any) (Ack, error) { return Ack{}, nil }

// decodeItem is the shared Enqueue/Dequeue decoder.
func decodeItem(v any) (Item, error) {
	if v == nil {
		return Item{}, nil
	}
	it, ok := v.(Item)
	if !ok {
		return Item{}, fmt.Errorf("binding: queue result is %T, want Item", v)
	}
	return it, nil
}

// Enqueue appends an item to a replicated queue object.
type Enqueue struct {
	Queue string
	Item  []byte
}

// OpName implements Operation.
func (Enqueue) OpName() string { return "enqueue" }

// OpKey implements Keyer.
func (e Enqueue) OpKey() string { return e.Queue }

// OpMutates implements Mutator.
func (Enqueue) OpMutates() bool { return true }

// ResultOf implements OperationFor[Item].
func (Enqueue) ResultOf(v any) (Item, error) { return decodeItem(v) }

// Dequeue removes the head element of a replicated queue object.
type Dequeue struct{ Queue string }

// OpName implements Operation.
func (Dequeue) OpName() string { return "dequeue" }

// OpKey implements Keyer.
func (d Dequeue) OpKey() string { return d.Queue }

// OpMutates implements Mutator: a dequeue both observes and mutates.
func (Dequeue) OpMutates() bool { return true }

// ResultOf implements OperationFor[Item].
func (Dequeue) ResultOf(v any) (Item, error) { return decodeItem(v) }

// Result is one response from the storage, carrying the consistency level
// it satisfies. A binding invokes the callback once per requested level (or
// once with Err set). Value is the monomorphic wire representation; the
// typed adapters decode it with the operation's ResultOf.
type Result struct {
	Value interface{}
	Level core.Level
	Err   error
	// Version is the per-object version token of the state this view
	// reflects, when the binding stamps one (see Versioner): the LWW
	// timestamp of a quorum store, the zxid of a totally ordered log, the
	// block height of a chain. 0 means unversioned — either the binding
	// does not version results or the view observed object absence in a
	// store whose tokens start at 1. Tokens are monotonically increasing
	// per object; sessions compare them to enforce read-your-writes and
	// monotonic reads, and history checkers compare them across clients.
	Version uint64
}

// Callback receives incremental results from a binding.
type Callback func(Result)

// Binding is the interface every storage binding implements (§5.1).
type Binding interface {
	// ConsistencyLevels advertises the supported levels, ordered weakest to
	// strongest.
	ConsistencyLevels() core.Levels
	// SubmitOperation executes op against the underlying storage with the
	// requested consistency levels, invoking cb once for each level as the
	// corresponding view becomes available (weakest first), or once with an
	// error. SubmitOperation must not block the caller; the protocol runs
	// on binding-managed goroutines.
	SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback)
	// Close releases binding resources.
	Close() error
}

// Versioner is the optional Binding interface advertising that the binding
// stamps Result.Version with per-object version tokens. Sessions enforce
// read-your-writes and monotonic reads only over versioning bindings;
// history checkers need the tokens to compare states across clients.
type Versioner interface {
	// Versions reports whether SubmitOperation stamps results with
	// monotonically increasing per-object version tokens.
	Versions() bool
}

// TimeoutProvider is the optional Binding interface supplying the default
// per-operation model-time bound for clients of this binding. The client
// library arms one timer per invocation (see NewClient): an operation with
// no terminal transition within the bound fails with faults.ErrUnreachable
// and late views are refused by the closed Correctable. Bindings over a
// faultable substrate return their store's OpTimeout when a fault
// interceptor is attached and 0 (unbounded) otherwise, so fault-free runs
// pay nothing; WithOpTimeout overrides per client. DefaultOpTimeout is
// consulted on every invocation, so attaching a fault injector after
// client construction still arms the bound (and it must be cheap — a
// field read and a nil check in the shipped bindings).
type TimeoutProvider interface {
	DefaultOpTimeout() time.Duration
}

// ErrUnsupportedOperation is wrapped by bindings rejecting an operation
// their store cannot execute.
var ErrUnsupportedOperation = fmt.Errorf("binding: unsupported operation")

// ErrUnsupportedLevel is wrapped by bindings rejecting a consistency level
// they do not offer.
var ErrUnsupportedLevel = fmt.Errorf("binding: unsupported consistency level")
