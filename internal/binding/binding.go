// Package binding defines the storage-binding API of the paper (§5.1) and
// the client library that turns binding callbacks into Correctables (§3.2).
//
// A binding encapsulates everything that is storage-system specific: the
// concrete storage stack configuration, the consistency levels it offers,
// and the protocols implementing them (quorum selection, cache coherence,
// leader forwarding, ...). The library side is store-agnostic: it translates
// API calls (InvokeWeak / InvokeStrong / Invoke) into SubmitOperation calls
// and orchestrates the responses into Correctable state transitions.
package binding

import (
	"context"
	"fmt"

	"correctables/internal/core"
)

// Operation is a request against a replicated object. Concrete operation
// types are shared across stores where the data model allows (Get/Put for
// key-value stores, Enqueue/Dequeue for queue objects); a binding rejects
// operations its store does not support.
type Operation interface {
	// OpName returns a short human-readable operation name ("get", ...).
	OpName() string
}

// Get reads the value of a key.
type Get struct{ Key string }

// OpName implements Operation.
func (Get) OpName() string { return "get" }

// Put writes the value of a key.
type Put struct {
	Key   string
	Value []byte
}

// OpName implements Operation.
func (Put) OpName() string { return "put" }

// Enqueue appends an item to a replicated queue object.
type Enqueue struct {
	Queue string
	Item  []byte
}

// OpName implements Operation.
func (Enqueue) OpName() string { return "enqueue" }

// Dequeue removes the head element of a replicated queue object.
type Dequeue struct{ Queue string }

// OpName implements Operation.
func (Dequeue) OpName() string { return "dequeue" }

// Result is one response from the storage, carrying the consistency level
// it satisfies. A binding invokes the callback once per requested level (or
// once with Err set).
type Result struct {
	Value interface{}
	Level core.Level
	Err   error
}

// Callback receives incremental results from a binding.
type Callback func(Result)

// Binding is the interface every storage binding implements (§5.1).
type Binding interface {
	// ConsistencyLevels advertises the supported levels, ordered weakest to
	// strongest.
	ConsistencyLevels() core.Levels
	// SubmitOperation executes op against the underlying storage with the
	// requested consistency levels, invoking cb once for each level as the
	// corresponding view becomes available (weakest first), or once with an
	// error. SubmitOperation must not block the caller; the protocol runs
	// on binding-managed goroutines.
	SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback)
	// Close releases binding resources.
	Close() error
}

// ErrUnsupportedOperation is wrapped by bindings rejecting an operation
// their store cannot execute.
var ErrUnsupportedOperation = fmt.Errorf("binding: unsupported operation")

// ErrUnsupportedLevel is wrapped by bindings rejecting a consistency level
// they do not offer.
var ErrUnsupportedLevel = fmt.Errorf("binding: unsupported consistency level")
