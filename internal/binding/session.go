package binding

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"correctables/internal/core"
)

// ErrSessionGuarantee fails a session invocation whose final view could not
// be brought up to the session's floor: the binding kept returning state
// older than what this session has already read or written, even after the
// configured retries. Check with errors.Is.
var ErrSessionGuarantee = errors.New("binding: session guarantee violated")

// defaultSessionRetries is how often a stale final read is re-executed
// before the session gives up (each retry re-runs the full operation, so
// replication normally catches up on the first one).
const defaultSessionRetries = 3

// Session threads cross-operation consistency guarantees — read-your-writes
// and monotonic reads, the classic session guarantees — over a Client whose
// binding versions its results (Versioner). The paper's Client is a
// one-shot invoke surface; real applications issue sequences of operations
// and care about what later operations may observe relative to earlier
// ones. A Session tracks, per replicated object, the highest version token
// this session has written and read (its "floor"), and the invoke pipeline
// enforces:
//
//   - a weaker (non-final) view older than the floor is suppressed — the
//     application simply never sees the stale preliminary;
//   - a final read view older than the floor is retried (the operation is
//     re-executed at the strongest requested level only, so already-
//     delivered weaker views are not duplicated; replication catches up),
//     failing with ErrSessionGuarantee after the configured retries;
//   - every delivered view advances the read floor, and the final view of
//     a mutating operation advances the write floor.
//
// Together these give read-your-writes and monotonic reads per object for
// all operations issued through the session, at every consistency level —
// including preliminary views, which is exactly what a bare Correctable
// cannot promise (§3.2's levels are per-operation, not cross-operation).
//
// Operations whose binding does not version results, or which carry no
// object identity (Keyer), pass through unfiltered. A Session is intended
// for one logical actor issuing operations sequentially; concurrent use is
// safe but the floor then interleaves across the concurrent operations.
type Session struct {
	c       *Client
	retries int

	mu        sync.Mutex
	lastWrite map[string]uint64
	lastRead  map[string]uint64
}

// SessionOption configures a Session at construction.
type SessionOption func(*Session)

// WithSessionRetries sets how often a stale final read is re-executed
// before failing with ErrSessionGuarantee (default 3; 0 disables retries —
// a stale final fails immediately).
func WithSessionRetries(n int) SessionOption {
	return func(s *Session) {
		if n < 0 {
			n = 0
		}
		s.retries = n
	}
}

// NewSession opens a session over c. Sessions are cheap; open one per
// logical actor (user, request chain) whose operations need cross-operation
// guarantees.
func NewSession(c *Client, opts ...SessionOption) *Session {
	s := &Session{
		c:         c,
		retries:   defaultSessionRetries,
		lastWrite: map[string]uint64{},
		lastRead:  map[string]uint64{},
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Client returns the session's underlying client.
func (s *Session) Client() *Client { return s.c }

// Floor returns the minimum version token a view of key may carry without
// violating this session's guarantees: the highest token the session has
// written or read for key.
func (s *Session) Floor(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return max(s.lastWrite[key], s.lastRead[key])
}

// observe advances the session's floors after a delivered view.
func (s *Session) observe(key string, version uint64, wrote bool) {
	s.mu.Lock()
	if version > s.lastRead[key] {
		s.lastRead[key] = version
	}
	if wrote && version > s.lastWrite[key] {
		s.lastWrite[key] = version
	}
	s.mu.Unlock()
}

// sessionVerdict is the pipeline's decision about one incoming view.
type sessionVerdict uint8

const (
	sessionDeliver  sessionVerdict = iota // deliver the view normally
	sessionSuppress                       // drop a stale weaker view silently
	sessionRetry                          // re-execute the operation
	sessionFail                           // fail with ErrSessionGuarantee
)

// sessionCall is the per-invocation session state: the floor frozen at
// submission (guarantees are relative to operations that completed before
// this one began) and the retry budget. Callbacks for one operation are
// delivered sequentially, so retries need no locking.
type sessionCall struct {
	s        *Session
	key      string
	mutating bool
	floor    uint64
	retries  int
}

// newCall prepares the session state for one invocation; nil when the
// session is nil (plain invoke), the binding does not version results, or
// the operation carries no object identity.
func (s *Session) newCall(op Operation) *sessionCall {
	if s == nil || !s.c.versioned {
		return nil
	}
	k, ok := op.(Keyer)
	if !ok {
		return nil
	}
	call := &sessionCall{s: s, key: k.OpKey(), retries: s.retries}
	if m, ok := op.(Mutator); ok {
		call.mutating = m.OpMutates()
	}
	call.floor = s.Floor(call.key)
	return call
}

// check classifies one incoming view against the call's floor. Mutating
// finals always pass: the store ordered them itself, and re-executing a
// mutation to chase a token would duplicate its side effects.
func (call *sessionCall) check(final bool, version uint64) sessionVerdict {
	if version >= call.floor {
		return sessionDeliver
	}
	if !final {
		return sessionSuppress
	}
	if call.mutating {
		return sessionDeliver
	}
	if call.retries > 0 {
		call.retries--
		return sessionRetry
	}
	return sessionFail
}

// floorErr builds the terminal staleness error.
func (call *sessionCall) floorErr(version uint64) error {
	return fmt.Errorf("%w: final view of %q at version %d, session floor %d (retries exhausted)",
		ErrSessionGuarantee, call.key, version, call.floor)
}

// observe forwards a delivered view's token to the session.
func (call *sessionCall) observe(version uint64, final bool) {
	call.s.observe(call.key, version, final && call.mutating)
}

// SessionInvoke executes op through s with incremental consistency
// guarantees (one view per requested level, all offered levels when none
// are given) plus the session's cross-operation guarantees: delivered views
// never regress below versions this session has already read or written.
func SessionInvoke[T any](ctx context.Context, s *Session, op OperationFor[T], levels ...core.Level) *core.Correctable[T] {
	requested, err := s.c.requestedLevels(levels)
	if err != nil {
		return core.Failed[T](err)
	}
	return submit(ctx, s.c, op, requested, s)
}

// SessionInvokeWeak executes op at the weakest offered level (single view)
// with session guarantees: a weak read that would violate read-your-writes
// or monotonic reads is re-executed until replication catches up.
func SessionInvokeWeak[T any](ctx context.Context, s *Session, op OperationFor[T]) *core.Correctable[T] {
	if len(s.c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, s.c, op, s.c.weakSet, s)
}

// SessionInvokeStrong executes op at the strongest offered level (single
// view) with session guarantees.
func SessionInvokeStrong[T any](ctx context.Context, s *Session, op OperationFor[T]) *core.Correctable[T] {
	if len(s.c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, s.c, op, s.c.strongSet, s)
}

// Get reads key through the session with incremental consistency
// guarantees (convenience over SessionInvoke for key-value stores).
func (s *Session) Get(ctx context.Context, key string, levels ...core.Level) *core.Correctable[[]byte] {
	return SessionInvoke[[]byte](ctx, s, Get{Key: key}, levels...)
}

// GetWeak reads key at the weakest offered level with session guarantees.
func (s *Session) GetWeak(ctx context.Context, key string) *core.Correctable[[]byte] {
	return SessionInvokeWeak[[]byte](ctx, s, Get{Key: key})
}

// Put writes key through the session; the acknowledged version raises the
// session's write floor, so later session reads observe it.
func (s *Session) Put(ctx context.Context, key string, value []byte) *core.Correctable[Ack] {
	return SessionInvokeStrong[Ack](ctx, s, Put{Key: key, Value: value})
}

// Enqueue appends to a queue object through the session.
func (s *Session) Enqueue(ctx context.Context, queue string, item []byte, levels ...core.Level) *core.Correctable[Item] {
	return SessionInvoke[Item](ctx, s, Enqueue{Queue: queue, Item: item}, levels...)
}

// Dequeue removes a queue head through the session.
func (s *Session) Dequeue(ctx context.Context, queue string, levels ...core.Level) *core.Correctable[Item] {
	return SessionInvoke[Item](ctx, s, Dequeue{Queue: queue}, levels...)
}
