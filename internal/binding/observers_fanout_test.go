package binding

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"correctables/internal/trace"
)

// taggedObserver appends its tag to a shared log on every callback,
// making the fan-out interleaving observable.
type taggedObserver struct {
	tag string
	mu  *sync.Mutex
	log *[]string
}

func (o *taggedObserver) record(event string) {
	o.mu.Lock()
	*o.log = append(*o.log, o.tag+":"+event)
	o.mu.Unlock()
}

func (o *taggedObserver) OpStart(op OpInfo) { o.record("start") }
func (o *taggedObserver) OpView(op OpInfo, v OpView) {
	o.record(fmt.Sprintf("view-%s", v.Level))
}
func (o *taggedObserver) OpEnd(op OpInfo, at time.Duration, err error) { o.record("end") }

// waitFor polls cond until it holds; Final unblocks before the observer
// fan-out finishes delivering OpEnd, so tests must wait for the pipeline
// to drain before inspecting what observers recorded.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for observer fan-out to drain")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestObserversFanOutOrderAndAtomicity: with several observers attached,
// every pipeline transition notifies all of them, in attachment order,
// before the next transition is delivered to any — the fan-out is atomic
// per transition, not per observer.
func TestObserversFanOutOrderAndAtomicity(t *testing.T) {
	var (
		mu  sync.Mutex
		log []string
	)
	a := &taggedObserver{tag: "A", mu: &mu, log: &log}
	b := &taggedObserver{tag: "B", mu: &mu, log: &log}
	c := NewClient(newFake(), WithObserver(a), WithObserver(b))
	ctx := context.Background()
	if _, err := Invoke[[]byte](ctx, c, Get{Key: "k"}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"A:start", "B:start",
		"A:view-weak", "B:view-weak",
		"A:view-strong", "B:view-strong",
		"A:end", "B:end",
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(log) >= len(want)
	})
	mu.Lock()
	got := strings.Join(log, " ")
	mu.Unlock()
	if got != strings.Join(want, " ") {
		t.Errorf("fan-out sequence = %q, want %q", got, want)
	}
}

// tracerProbe asserts, from inside the observer pipeline, what the tracer
// has recorded so far. WithTracer appends the trace observer after every
// WithObserver, so at each of this probe's callbacks the current
// transition has not yet reached the tracer: views must already be
// instants by OpEnd time is NOT guaranteed — only prior transitions are.
type tracerProbe struct {
	t       *testing.T
	trc     *trace.Tracer
	mu      sync.Mutex
	maxSpan int // largest span count seen during callbacks
}

func (p *tracerProbe) observe() {
	spans, _ := p.trc.Counts()
	p.mu.Lock()
	if spans > p.maxSpan {
		p.maxSpan = spans
	}
	p.mu.Unlock()
}

func (p *tracerProbe) max() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxSpan
}

func (p *tracerProbe) OpStart(op OpInfo)                            {}
func (p *tracerProbe) OpView(op OpInfo, v OpView)                   { p.observe() }
func (p *tracerProbe) OpEnd(op OpInfo, at time.Duration, err error) { p.observe() }

// TestObserverFanOutWithTracerAtomicity: a tracer attached via WithTracer
// rides the same observer fan-out as a user observer. The transition must
// be atomic: during the first operation's own callbacks the root span has
// not been recorded yet (the trace observer runs last), and once the
// invocation completes the tracer holds exactly one op span and one
// instant per delivered view, stamped with the op's model instants.
func TestObserverFanOutWithTracerAtomicity(t *testing.T) {
	trc := trace.New()
	probe := &tracerProbe{t: t, trc: trc}
	c := NewClient(newFake(), WithObserver(probe), WithTracer(trc), WithLabel("atom"))
	ctx := context.Background()
	if _, err := Invoke[[]byte](ctx, c, Get{Key: "k"}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { spans, _ := trc.Counts(); return spans == 1 })
	if got := probe.max(); got != 0 {
		t.Errorf("tracer recorded %d op spans before the op ended (probe runs first, atomically per transition)", got)
	}
	spans, instants := trc.Counts()
	if spans != 1 || instants != 2 {
		t.Errorf("after completion: spans=%d instants=%d, want 1 span (root op) and 2 instants (weak+strong views)", spans, instants)
	}

	// A second invocation fans out through the same path: one more span,
	// two more instants, and the prior op's record is untouched.
	if _, err := Invoke[[]byte](ctx, c, Get{Key: "k2"}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { spans, _ := trc.Counts(); return spans == 2 })
	if got := probe.max(); got != 1 {
		t.Errorf("during op 2 the tracer held %d spans, want exactly op 1's", got)
	}
	spans, instants = trc.Counts()
	if spans != 2 || instants != 4 {
		t.Errorf("after two ops: spans=%d instants=%d, want 2 and 4", spans, instants)
	}
}

// TestTraceObserverRecordsErrorOutcome: a failed invocation still closes
// its root span, annotated as an error.
func TestTraceObserverRecordsErrorOutcome(t *testing.T) {
	trc := trace.New()
	c := NewClient(newFake(), WithTracer(trc))
	ctx := context.Background()
	if _, err := Invoke[Item](ctx, c, Enqueue{Queue: "q", Item: []byte("x")}).Final(ctx); err == nil {
		t.Fatal("want unsupported-operation error")
	}
	waitFor(t, func() bool { spans, _ := trc.Counts(); return spans == 1 })
	spans, instants := trc.Counts()
	if spans != 1 || instants != 0 {
		t.Errorf("error op: spans=%d instants=%d, want 1 span, 0 views", spans, instants)
	}
}
