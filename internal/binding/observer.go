package binding

import (
	"time"

	"correctables/internal/core"
)

// OpID identifies one invocation within a Client (sequential from 1). The
// pair (client label, OpID) is unique across a simulation when labels are.
type OpID uint64

// OpInfo identifies one invocation on the invoke pipeline: the operation's
// identity and shape, fixed at OpStart. All timestamps an observer sees are
// on the client scheduler's time axis — model time under a simulation
// clock, so recorded histories replay byte-identically from a seed.
type OpInfo struct {
	// ID is the per-client invocation sequence number.
	ID OpID
	// Client is the client's label (WithLabel), scoping per-session
	// analysis when several clients share one observer.
	Client string
	// Name is Operation.OpName ("get", "put", "enqueue", ...).
	Name string
	// Key is the replicated-object identity (Keyer), "" for unkeyed ops.
	Key string
	// Mutating reports Mutator.OpMutates (false for non-Mutator ops).
	Mutating bool
	// Levels is the normalized requested level set (shared; do not mutate).
	Levels core.Levels
	// Start is the invocation instant.
	Start time.Duration
}

// OpView is one delivered view as the observer sees it: the consistency
// level it satisfies, its version token, and its delivery instant. Only
// views the application actually observes are reported — a view refused by
// an already-closed Correctable (late after a timeout, duplicate binding
// callback) never reaches observers.
type OpView struct {
	// Level is the consistency level this view satisfies.
	Level core.Level
	// Final reports the closing view.
	Final bool
	// Version is the view's version token (see Result.Version).
	Version uint64
	// At is the delivery instant.
	At time.Duration
	// Value is the decoded view value (the same T the application sees,
	// boxed). Observers must not mutate or retain it beyond the callback;
	// the history recorder keeps only a compact rendering.
	Value any
}

// Observer hooks the client invoke pipeline. The three callbacks frame
// every invocation: OpStart once at submission, OpView once per delivered
// view (weakest first, the last one Final), and OpEnd exactly once with the
// terminal outcome — nil after a final view, the failure otherwise
// (including faults.ErrUnreachable on an operation timeout and context
// cancellation errors).
//
// Callbacks run inline on the delivery path — binding actors and clock
// callback timers — so they must be cheap and must not block through the
// simulation scheduler. Under a VirtualClock they are totally ordered and
// deterministic; an observer that appends to a slice under a mutex records
// the same history for the same seed, byte for byte.
type Observer interface {
	OpStart(op OpInfo)
	OpView(op OpInfo, v OpView)
	OpEnd(op OpInfo, at time.Duration, err error)
}

// Observers fans events out to several observers in order.
type Observers []Observer

// OpStart implements Observer.
func (os Observers) OpStart(op OpInfo) {
	for _, o := range os {
		o.OpStart(op)
	}
}

// OpView implements Observer.
func (os Observers) OpView(op OpInfo, v OpView) {
	for _, o := range os {
		o.OpView(op, v)
	}
}

// OpEnd implements Observer.
func (os Observers) OpEnd(op OpInfo, at time.Duration, err error) {
	for _, o := range os {
		o.OpEnd(op, at, err)
	}
}

// opInfoOf builds the observer identity of one invocation.
func opInfoOf(id OpID, label string, op Operation, levels core.Levels, start time.Duration) OpInfo {
	info := OpInfo{ID: id, Client: label, Name: op.OpName(), Levels: levels, Start: start}
	if k, ok := op.(Keyer); ok {
		info.Key = k.OpKey()
	}
	if m, ok := op.(Mutator); ok {
		info.Mutating = m.OpMutates()
	}
	return info
}
