package binding

import (
	"errors"
	randv2 "math/rand/v2"
	"sync"
	"time"

	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/trace"
)

// AdmissionDecision is an admission gate's verdict on one invocation
// attempt.
type AdmissionDecision uint8

const (
	// AdmissionAdmit lets the attempt through unchanged.
	AdmissionAdmit AdmissionDecision = iota
	// AdmissionDegrade serves a non-mutating attempt at the binding's
	// weakest consistency level only: the Correctable closes with the
	// preliminary view — ICG's cheap degraded mode, cast as load shedding.
	// Mutating operations are never degraded (a write has no weaker
	// half-measure); they are admitted instead.
	AdmissionDegrade
	// AdmissionReject refuses the attempt outright. The gate's error (a
	// typed, usually retryable error such as load.ErrRejected) fails the
	// Correctable — or feeds the client's retry policy, if one is attached.
	AdmissionReject
)

// AdmissionGate decides, per invocation attempt, whether the coordinator
// should do the work at all. The client library consults the gate before
// any protocol work — including before each retry re-submission, so a
// backpressured gate throttles storms at their source. Implementations
// must not block (Admit runs on actor and timer-callback paths) and must
// be safe for concurrent use. See internal/load for the token-bucket +
// AIMD controller shipped with this repository.
type AdmissionGate interface {
	// Admit judges one attempt issued by the labeled client. The error is
	// only consulted for AdmissionReject, where it becomes the attempt's
	// failure.
	Admit(client string, op Operation) (AdmissionDecision, error)
}

// WithAdmission routes every invocation attempt through gate. Several
// clients may share one gate; the client's WithLabel identity is what the
// gate keys per-client state on.
func WithAdmission(gate AdmissionGate) Option {
	return func(c *Client) { c.gate = gate }
}

// errRejectedNoReason covers gates that return AdmissionReject with a nil
// error.
var errRejectedNoReason = errors.New("binding: operation rejected by admission control")

// IsRetryable is the default retry classification: an error is worth
// re-submitting if it wraps faults.ErrUnreachable (timeouts, severed
// links) or anything declaring Retryable() true (admission rejections).
// Cancellation and semantic failures are not retryable.
func IsRetryable(err error) bool {
	if errors.Is(err, faults.ErrUnreachable) {
		return true
	}
	var r interface{ Retryable() bool }
	return errors.As(err, &r) && r.Retryable()
}

// RetryPolicy configures client-side re-submission of failed invocations —
// deliberately including the pathological configurations: an immediate
// policy (Base 0) under timeouts is exactly the retry amplification that
// sustains metastable failures, which the overload experiment reproduces
// before showing the escape.
//
// Each retry re-runs the whole attempt (admission gate included) and
// re-arms the per-attempt operation timeout; the invocation fails with the
// last error once Max retries are spent.
type RetryPolicy struct {
	// Max is the retry budget per invocation (0 disables retries).
	Max int
	// Base is the first backoff delay; retry n waits Base·2^(n-1), capped
	// at Cap. Base 0 retries immediately.
	Base time.Duration
	// Cap bounds the exponential backoff (0 = uncapped).
	Cap time.Duration
	// Jitter in [0,1] subtracts up to that fraction of each delay,
	// de-synchronizing retry waves. Drawn from a PCG seeded with Seed, so
	// virtual-clock runs replay byte-identically.
	Jitter float64
	// Seed fixes the jitter randomness.
	Seed int64
	// Classify overrides IsRetryable. It must return false for context
	// cancellation errors, or a cancelled invocation will retry.
	Classify func(error) bool
	// OnRetry observes each re-submission (attempt is 1-based). It runs on
	// timer-callback paths: it must not block and must be safe for
	// concurrent use. Experiments hook meter accounting here.
	OnRetry func(attempt int, delay time.Duration, err error)
}

// WithRetry attaches a retry policy to every invocation through this
// client.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) {
		if p.Max < 0 {
			p.Max = 0
		}
		if p.Jitter < 0 {
			p.Jitter = 0
		}
		if p.Jitter > 1 {
			p.Jitter = 1
		}
		c.retry = &retryPolicy{
			RetryPolicy: p,
			rng:         randv2.New(randv2.NewPCG(uint64(p.Seed), 0x9e3779b97f4a7c15)),
		}
	}
}

// retryPolicy is the attached policy plus its (locked) jitter source.
type retryPolicy struct {
	RetryPolicy
	mu  sync.Mutex
	rng *randv2.Rand
}

func (p *retryPolicy) retryable(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return IsRetryable(err)
}

// delay computes the backoff before retry n (1-based).
func (p *retryPolicy) delay(n int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if p.Jitter > 0 {
		p.mu.Lock()
		f := p.rng.Float64()
		p.mu.Unlock()
		d -= time.Duration(p.Jitter * f * float64(d))
	}
	return d
}

// governedCall is the shared mutable state of one invocation running under
// an admission gate and/or retry policy — the "governed" pipeline variant.
// Plain invocations never allocate one (the hot path keeps its allocation
// budget). The generation counter serializes attempts: each re-submission
// bumps it, so a pending per-attempt timeout whose attempt was superseded
// fires as a no-op instead of failing the newer attempt.
type governedCall struct {
	mu        sync.Mutex
	gen       int        // bumped on every (re)submission and retry grant
	retries   int        // spent retry budget
	strongest core.Level // strongest level of the current attempt's set
	resubmit  func()     // re-runs the attempt if the Correctable is still open
}

// begin records a new attempt's level set; returns its generation.
func (g *governedCall) begin(strongest core.Level) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gen++
	g.strongest = strongest
	return g.gen
}

// currentStrongest returns the strongest level of the attempt in flight —
// the level that closes the Correctable. Under AdmissionDegrade this is
// the binding's weakest level.
func (g *governedCall) currentStrongest() core.Level {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.strongest
}

// generation returns the current attempt generation.
func (g *governedCall) generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// tryRetry converts a failure into a scheduled re-submission when the
// client's policy allows; reports whether it did. The generation bump
// invalidates the failing attempt's outstanding timeout timer.
func (g *governedCall) tryRetry(c *Client, err error) bool {
	p := c.retry
	if p == nil || !p.retryable(err) {
		return false
	}
	g.mu.Lock()
	if g.retries >= p.Max {
		g.mu.Unlock()
		return false
	}
	g.retries++
	n := g.retries
	g.gen++
	resub := g.resubmit
	g.mu.Unlock()
	d := p.delay(n)
	if p.OnRetry != nil {
		p.OnRetry(n, d, err)
	}
	if c.trc != nil {
		// The backoff window is admission-plane time: the op is alive but
		// deliberately parked.
		now := c.scheduler().Now()
		c.trc.Span(c.trcTrack, trace.CatAdmission, "backoff", "", now, now+d)
	}
	c.scheduler().After(d, resub)
	return true
}
