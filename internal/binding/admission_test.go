package binding

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"correctables/internal/core"
	"correctables/internal/faults"
)

// flakyBinding fails the first failures submissions with a
// faults.ErrUnreachable-wrapped error, then behaves like fakeBinding.
type flakyBinding struct {
	fakeBinding
	failures int32
}

func (f *flakyBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		f.mu.Lock()
		f.calls = append(f.calls, levels)
		f.mu.Unlock()
		go cb(Result{Err: fmt.Errorf("%w: injected", faults.ErrUnreachable)})
		return
	}
	f.fakeBinding.SubmitOperation(ctx, op, levels, cb)
}

// scriptedGate replays a fixed sequence of verdicts, then admits forever.
type scriptedGate struct {
	mu    sync.Mutex
	calls int
	seq   []AdmissionDecision
	errs  []error
}

func (g *scriptedGate) Admit(client string, op Operation) (AdmissionDecision, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := g.calls
	g.calls++
	if i < len(g.seq) {
		var err error
		if i < len(g.errs) {
			err = g.errs[i]
		}
		return g.seq[i], err
	}
	return AdmissionAdmit, nil
}

func TestRetryPolicyResubmitsUntilSuccess(t *testing.T) {
	fb := &flakyBinding{fakeBinding: *newFake(), failures: 2}
	var retries []int
	c := NewClient(fb, WithRetry(RetryPolicy{
		Max: 3,
		OnRetry: func(attempt int, delay time.Duration, err error) {
			if !errors.Is(err, faults.ErrUnreachable) {
				t.Errorf("OnRetry err = %v", err)
			}
			retries = append(retries, attempt)
		},
	}))
	v, err := Invoke[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "strong:k" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	if len(fb.calls) != 3 {
		t.Errorf("binding saw %d submissions, want 3 (1 + 2 retries)", len(fb.calls))
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestRetryBudgetExhaustionFailsWithLastError(t *testing.T) {
	fb := &flakyBinding{fakeBinding: *newFake(), failures: 100}
	c := NewClient(fb, WithRetry(RetryPolicy{Max: 2}))
	_, err := Invoke[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background())
	if !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("err = %v, want the binding's unreachable error", err)
	}
	if len(fb.calls) != 3 {
		t.Errorf("binding saw %d submissions, want 3 (1 + Max 2)", len(fb.calls))
	}
}

func TestNonRetryableErrorFailsImmediately(t *testing.T) {
	fb := newFake()
	c := NewClient(fb, WithRetry(RetryPolicy{Max: 5}))
	// Decode failure is semantic, not transient: must not be retried.
	cor := Invoke[Item](context.Background(), c, Enqueue{Queue: "q", Item: []byte("x")})
	if _, err := cor.Final(context.Background()); !errors.Is(err, ErrUnsupportedOperation) {
		t.Fatalf("err = %v", err)
	}
	if len(fb.calls) != 1 {
		t.Errorf("non-retryable failure was re-submitted: %d calls", len(fb.calls))
	}
}

func TestGateRejectFailsInvocation(t *testing.T) {
	boom := errors.New("gate says no")
	g := &scriptedGate{seq: []AdmissionDecision{AdmissionReject}, errs: []error{boom}}
	fb := newFake()
	c := NewClient(fb, WithAdmission(g))
	if _, err := Invoke[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the gate's error", err)
	}
	if len(fb.calls) != 0 {
		t.Error("rejected attempt still reached the binding")
	}
	// A nil-error reject still fails with a usable error.
	c2 := NewClient(newFake(), WithAdmission(&scriptedGate{seq: []AdmissionDecision{AdmissionReject}}))
	if _, err := Invoke[[]byte](context.Background(), c2, Get{Key: "k"}).Final(context.Background()); err == nil {
		t.Error("nil-error reject produced a nil failure")
	}
}

// TestGateRejectFeedsRetryPolicy: a retryable rejection plus a retry policy
// re-consults the gate, so a transient reject recovers.
type retryableReject struct{}

func (retryableReject) Error() string   { return "transiently rejected" }
func (retryableReject) Retryable() bool { return true }

func TestGateRejectFeedsRetryPolicy(t *testing.T) {
	g := &scriptedGate{
		seq:  []AdmissionDecision{AdmissionReject, AdmissionReject},
		errs: []error{retryableReject{}, retryableReject{}},
	}
	fb := newFake()
	c := NewClient(fb, WithAdmission(g), WithRetry(RetryPolicy{Max: 3}))
	v, err := Invoke[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "strong:k" {
		t.Errorf("final = %+v", v)
	}
	if g.calls != 3 {
		t.Errorf("gate consulted %d times, want 3 (reject, reject, admit)", g.calls)
	}
	if len(fb.calls) != 1 {
		t.Errorf("binding saw %d submissions, want exactly the admitted one", len(fb.calls))
	}
}

func TestGateDegradeClosesAtWeakestLevel(t *testing.T) {
	g := &scriptedGate{seq: []AdmissionDecision{AdmissionDegrade}}
	fb := newFake()
	c := NewClient(fb, WithAdmission(g))
	cor := Invoke[[]byte](context.Background(), c, Get{Key: "k"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "weak:k" || v.Level != core.LevelWeak || !v.Final {
		t.Errorf("degraded final = %+v, want a weak final view", v)
	}
	if n := len(cor.Views()); n != 1 {
		t.Errorf("degraded invocation delivered %d views, want 1", n)
	}
	// The binding is only asked for the weak leg — degraded work is cheap.
	if len(fb.calls) != 1 || len(fb.calls[0]) != 1 || fb.calls[0][0] != core.LevelWeak {
		t.Errorf("binding received levels %v, want [weak]", fb.calls)
	}
}

func TestGateDegradeDoesNotWeakenMutations(t *testing.T) {
	g := &scriptedGate{seq: []AdmissionDecision{AdmissionDegrade}}
	fb := newFake()
	c := NewClient(fb, WithAdmission(g))
	// fakeBinding only answers Get; a Put that reaches it at full levels
	// fails with ErrUnsupportedOperation — which is exactly the evidence we
	// need: the mutation was admitted, not degraded, and went out with the
	// full requested set.
	Invoke[Ack](context.Background(), c, Put{Key: "k", Value: []byte("v")}).Final(context.Background())
	if len(fb.calls) != 1 || len(fb.calls[0]) != 2 {
		t.Errorf("degraded mutation went to the binding with levels %v, want the full set", fb.calls)
	}
}

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrapped: %w", faults.ErrUnreachable), true},
		{retryableReject{}, true},
		{fmt.Errorf("outer: %w", retryableReject{}), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("semantic failure"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryDelayBackoffMath(t *testing.T) {
	p := &retryPolicy{RetryPolicy: RetryPolicy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := p.delay(i + 1); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := (&retryPolicy{}).delay(3); got != 0 {
		t.Errorf("zero-base delay = %v, want immediate", got)
	}
}

func TestRetryJitterIsSeededAndBounded(t *testing.T) {
	seq := func() []time.Duration {
		c := NewClient(newFake(), WithRetry(RetryPolicy{Base: 100 * time.Millisecond, Jitter: 0.5, Seed: 42}))
		var ds []time.Duration
		for i := 1; i <= 8; i++ {
			ds = append(ds, c.retry.delay(1))
		}
		return ds
	}
	a, b := seq(), seq()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 100*time.Millisecond || a[i] < 50*time.Millisecond {
			t.Errorf("jittered delay %v outside [50ms, 100ms]", a[i])
		}
		if a[i] != 100*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never moved the delay")
	}
}
