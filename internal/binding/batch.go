package binding

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"correctables/internal/core"
	"correctables/internal/netsim"
)

// Coordinator batching: many sessions share one binding, and operations
// bound for the same shard within a dispatch window coalesce into a single
// coordinated round. The Batcher is the client-side half — a Binding
// wrapper that queues batchable operations per shard and arms one
// netsim.Coalescer timer per shard per window (amortized timer arming) —
// and BatchBinding is the store-side half: a binding whose coordinator path
// can serve several same-shard operations in one protocol round.

// BatchEntry is one enqueued operation awaiting a coalesced dispatch.
type BatchEntry struct {
	Ctx    context.Context
	Op     Operation
	Levels core.Levels
	Cb     Callback
}

// BatchBinding is the optional interface a Binding implements to accept
// coalesced same-shard dispatches.
type BatchBinding interface {
	Binding
	// BatchShards returns the number of dispatch queues (the shard count).
	BatchShards() int
	// BatchKey maps an operation to its dispatch queue. ok=false marks the
	// operation unbatchable: the Batcher submits it directly instead.
	BatchKey(op Operation) (shard int, ok bool)
	// SubmitBatch serves the entries — all mapped to shard by BatchKey —
	// in one coordinated round, delivering each entry's views through its
	// own callback. It runs in timer-callback context and must not block
	// (spawn an actor). done(entries) must be called once the entries
	// slice may be recycled.
	SubmitBatch(shard int, entries []BatchEntry, done func([]BatchEntry))
}

// Batcher wraps a BatchBinding with per-shard dispatch queues. It is
// itself a Binding: sessions and clients stack on top unchanged, and the
// provider interfaces (scheduler, versions, default timeout) forward to
// the wrapped binding.
//
// The enqueue path is allocation-free at steady state: entries append into
// recycled per-shard slices (a freelist refilled by done), the coalescer's
// per-shard fire closures are pre-bound at construction, and the
// scheduler's RunAfter is itself zero-alloc — see the batched-dispatch
// allocation gate.
type Batcher struct {
	b       BatchBinding
	clock   netsim.Clock
	co      *netsim.Coalescer
	recycle func([]BatchEntry) // pre-bound; handed to SubmitBatch as done

	mu      sync.Mutex
	pending [][]BatchEntry // per shard
	free    [][]BatchEntry // recycled entry slices

	batched    atomic.Int64 // operations that rode a coalesced dispatch
	dispatches atomic.Int64 // flushes handed to the store
}

var _ Binding = (*Batcher)(nil)

// NewBatcher wraps b, coalescing batchable operations per shard over the
// given dispatch window of model time.
func NewBatcher(b BatchBinding, clock netsim.Clock, window time.Duration) *Batcher {
	bt := &Batcher{
		b:       b,
		clock:   clock,
		pending: make([][]BatchEntry, b.BatchShards()),
	}
	bt.recycle = bt.doRecycle
	bt.co = netsim.NewCoalescer(clock, window, len(bt.pending), bt.flush)
	return bt
}

// ConsistencyLevels implements Binding.
func (bt *Batcher) ConsistencyLevels() core.Levels { return bt.b.ConsistencyLevels() }

// Close implements Binding.
func (bt *Batcher) Close() error { return bt.b.Close() }

// SubmitOperation implements Binding: batchable operations queue for the
// shard's next dispatch tick; everything else passes straight through.
func (bt *Batcher) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	shard, ok := bt.b.BatchKey(op)
	if !ok {
		bt.b.SubmitOperation(ctx, op, levels, cb)
		return
	}
	bt.mu.Lock()
	bt.pending[shard] = append(bt.pending[shard], BatchEntry{Ctx: ctx, Op: op, Levels: levels, Cb: cb})
	bt.mu.Unlock()
	bt.co.Touch(shard)
}

// flush hands a shard's queue to the store in one dispatch (timer-callback
// context). The queue slice is swapped against the freelist so the next
// window appends into warm capacity.
func (bt *Batcher) flush(shard int) {
	bt.mu.Lock()
	entries := bt.pending[shard]
	if len(entries) == 0 {
		bt.mu.Unlock()
		return
	}
	if n := len(bt.free); n > 0 {
		bt.pending[shard] = bt.free[n-1]
		bt.free = bt.free[:n-1]
	} else {
		bt.pending[shard] = nil
	}
	bt.mu.Unlock()
	bt.batched.Add(int64(len(entries)))
	bt.dispatches.Add(1)
	bt.b.SubmitBatch(shard, entries, bt.recycle)
}

// Stats reports how many operations rode coalesced dispatches and how many
// dispatches carried them; ops/dispatches is the mean batch size.
func (bt *Batcher) Stats() (ops, dispatches int64) {
	return bt.batched.Load(), bt.dispatches.Load()
}

// doRecycle returns a served entries slice to the freelist, dropping the
// payload references it held.
func (bt *Batcher) doRecycle(entries []BatchEntry) {
	for i := range entries {
		entries[i] = BatchEntry{}
	}
	bt.mu.Lock()
	bt.free = append(bt.free, entries[:0])
	bt.mu.Unlock()
}

// Scheduler implements SchedulerProvider, forwarding to the wrapped
// binding when it provides one and falling back to the dispatch clock.
func (bt *Batcher) Scheduler() core.Scheduler {
	if sp, ok := bt.b.(SchedulerProvider); ok {
		return sp.Scheduler()
	}
	return SchedulerFor(bt.clock)
}

// Versions implements Versioner by forwarding.
func (bt *Batcher) Versions() bool {
	if vb, ok := bt.b.(Versioner); ok {
		return vb.Versions()
	}
	return false
}

// DefaultOpTimeout implements TimeoutProvider by forwarding.
func (bt *Batcher) DefaultOpTimeout() time.Duration {
	if tp, ok := bt.b.(TimeoutProvider); ok {
		return tp.DefaultOpTimeout()
	}
	return 0
}
