package binding

import (
	"context"
	"fmt"

	"correctables/internal/core"
)

// Client is the application-facing side of the Correctables library
// (Figure 2): a thin, consistency-based interface over one binding.
//
// The typed entry points are the package-level generics Invoke, InvokeWeak
// and InvokeStrong (plus the per-store facades built on them); they return
// core.Correctable[T] for the operation's value type T. The methods of the
// same names on Client are the deprecated boxed (interface{}) shims kept
// for transition.
type Client struct {
	b     Binding
	sched core.Scheduler // from SchedulerProvider bindings; nil = default

	// Level sets are normalized once at construction so the invoke hot path
	// never re-sorts or re-allocates them (they are handed to
	// core.NewScheduled, which stores them without copying).
	levels    core.Levels // ConsistencyLevels().Sorted()
	weakSet   core.Levels // one-element set: weakest level
	strongSet core.Levels // one-element set: strongest level
}

// NewClient wraps a binding. If the binding implements SchedulerProvider,
// Correctables created through this client use the binding's scheduler.
// The binding's consistency levels are read and normalized once here;
// bindings whose level set changes over a client's lifetime are not
// supported.
func NewClient(b Binding) *Client {
	c := &Client{b: b, levels: b.ConsistencyLevels().Sorted()}
	if len(c.levels) > 0 {
		c.weakSet = c.levels[:1]
		c.strongSet = c.levels[len(c.levels)-1:]
	}
	if sp, ok := b.(SchedulerProvider); ok {
		c.sched = sp.Scheduler()
	}
	return c
}

// Binding returns the underlying binding.
func (c *Client) Binding() Binding { return c.b }

// Levels returns the consistency levels the underlying binding offers,
// weakest first (a copy; the cached set backs the invoke hot path).
func (c *Client) Levels() core.Levels {
	return append(core.Levels(nil), c.levels...)
}

// Close releases the underlying binding.
func (c *Client) Close() error { return c.b.Close() }

// InvokeWeak executes op with the weakest available consistency level. The
// returned Correctable never transitions updating -> updating; it closes
// directly with the single result (§3.2).
func InvokeWeak[T any](ctx context.Context, c *Client, op OperationFor[T]) *core.Correctable[T] {
	if len(c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, c, op, c.weakSet)
}

// InvokeStrong executes op with the strongest available consistency level.
// The returned Correctable closes directly with the single result.
func InvokeStrong[T any](ctx context.Context, c *Client, op OperationFor[T]) *core.Correctable[T] {
	if len(c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, c, op, c.strongSet)
}

// Invoke executes op with incremental consistency guarantees: the returned
// Correctable delivers one view per requested level, weakest first, and
// closes with the strongest. If levels is empty, all levels offered by the
// binding are used (§3.2). Requesting a level the binding does not offer
// fails the Correctable.
func Invoke[T any](ctx context.Context, c *Client, op OperationFor[T], levels ...core.Level) *core.Correctable[T] {
	requested, err := c.requestedLevels(levels)
	if err != nil {
		return core.Failed[T](err)
	}
	return submit(ctx, c, op, requested)
}

// requestedLevels maps an Invoke level list onto the binding's offer: the
// cached full set when empty, a freshly normalized subset otherwise.
func (c *Client) requestedLevels(levels []core.Level) (core.Levels, error) {
	if len(levels) == 0 {
		if len(c.levels) == 0 {
			return nil, fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel)
		}
		return c.levels, nil
	}
	requested := core.Levels(levels).Sorted()
	for _, l := range requested {
		if !c.levels.Contains(l) {
			return nil, fmt.Errorf("%w: %v (binding offers %v)", ErrUnsupportedLevel, l, c.levels)
		}
	}
	if len(requested) == 0 {
		return nil, fmt.Errorf("%w: empty level set", ErrUnsupportedLevel)
	}
	return requested, nil
}

// submit wires one SubmitOperation call to a fresh typed Correctable. The
// strongest requested level closes the Correctable; weaker levels update
// it. Responses that race past a terminal transition are dropped (the
// Controller refuses them), which also makes duplicate binding callbacks
// harmless. The wire value of each Result is decoded with op.ResultOf; a
// decode failure fails the Correctable.
func submit[T any](ctx context.Context, c *Client, op OperationFor[T], requested core.Levels) *core.Correctable[T] {
	cor, ctrl := core.NewScheduled[T](c.sched, requested)
	strongest := requested.Strongest()
	c.b.SubmitOperation(ctx, unwrapOperation(op), requested, func(r Result) {
		if r.Err != nil {
			_ = ctrl.Fail(r.Err)
			return
		}
		v, err := op.ResultOf(r.Value)
		switch {
		case err != nil:
			_ = ctrl.Fail(err)
		case r.Level == strongest:
			_ = ctrl.Close(v, r.Level)
		default:
			_ = ctrl.Update(v, r.Level)
		}
	})
	watchContext(ctx, cor, ctrl)
	return cor
}

// watchContext fails the Correctable when ctx is cancelled before the
// operation completes. It uses context.AfterFunc instead of a dedicated
// goroutine, so an idle invocation costs no goroutine — the difference
// between 10^6 parked goroutines and none at million-client scale. The
// registration is released as soon as the Correctable closes.
func watchContext[T any](ctx context.Context, cor *core.Correctable[T], ctrl core.Controller[T]) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	stop := context.AfterFunc(ctx, func() {
		_ = ctrl.Fail(ctx.Err())
	})
	cor.Finally(func() { stop() })
}

// operationUnwrapper is implemented by adapter operations (the boxed shims)
// that wrap a real Operation; bindings must see the unwrapped value so
// their type switches keep working.
type operationUnwrapper interface {
	unwrapOperation() Operation
}

// unwrapOperation strips adapter wrappers before an operation reaches a
// binding.
func unwrapOperation(op Operation) Operation {
	if w, ok := op.(operationUnwrapper); ok {
		return w.unwrapOperation()
	}
	return op
}

// boxedOp adapts an untyped Operation to OperationFor[any] for the
// deprecated shims: the wire value passes through unchanged (boxed).
type boxedOp struct{ op Operation }

func (b boxedOp) OpName() string              { return b.op.OpName() }
func (b boxedOp) ResultOf(v any) (any, error) { return v, nil }
func (b boxedOp) unwrapOperation() Operation  { return b.op }

// InvokeWeak executes op with the weakest available consistency level,
// delivering the boxed wire value.
//
// Deprecated: use the typed package-level InvokeWeak (or a per-store
// facade); the boxed path re-boxes every view value.
func (c *Client) InvokeWeak(ctx context.Context, op Operation) *core.Correctable[any] {
	return InvokeWeak[any](ctx, c, boxedOp{op: op})
}

// InvokeStrong executes op with the strongest available consistency level,
// delivering the boxed wire value.
//
// Deprecated: use the typed package-level InvokeStrong (or a per-store
// facade).
func (c *Client) InvokeStrong(ctx context.Context, op Operation) *core.Correctable[any] {
	return InvokeStrong[any](ctx, c, boxedOp{op: op})
}

// Invoke executes op with incremental consistency guarantees, delivering
// the boxed wire values.
//
// Deprecated: use the typed package-level Invoke (or a per-store facade).
func (c *Client) Invoke(ctx context.Context, op Operation, levels ...core.Level) *core.Correctable[any] {
	return Invoke[any](ctx, c, boxedOp{op: op}, levels...)
}
