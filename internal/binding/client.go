package binding

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/trace"
)

// Client is the application-facing side of the Correctables library
// (Figure 2): a consistency-based interface over one binding, configured
// with functional options.
//
// The typed entry points are the package-level generics Invoke, InvokeWeak
// and InvokeStrong (plus the per-store facades built on them); they return
// core.Correctable[T] for the operation's value type T. Every invocation
// runs through one pipeline: observers see OpStart/OpView/OpEnd events with
// model-time timestamps, and a per-client operation timeout bounds the
// whole invocation in model time — the client library, not each storage
// binding, owns the deadline.
type Client struct {
	b     Binding
	sched core.Scheduler // from WithScheduler or SchedulerProvider; nil = default

	// Level sets are normalized once at construction so the invoke hot path
	// never re-sorts or re-allocates them (they are handed to
	// core.NewScheduled, which stores them without copying).
	levels    core.Levels // ConsistencyLevels().Sorted()
	weakSet   core.Levels // one-element set: weakest level
	strongSet core.Levels // one-element set: strongest level

	obs        Observer        // nil when no observer is attached (hot-path fast path)
	obsList    Observers       // backing list for WithObserver accumulation
	label      string          // client identity stamped on observer events
	opTimeout  time.Duration   // WithOpTimeout override (see timeoutSet); 0 = unbounded
	timeoutSet bool            // WithOpTimeout was given (overrides the binding default)
	tp         TimeoutProvider // binding default bound, consulted per invocation
	versioned  bool            // binding implements Versioner and versions results
	gate       AdmissionGate   // WithAdmission; nil = every attempt admitted
	retry      *retryPolicy    // WithRetry; nil = failures are terminal
	trc        *trace.Tracer   // WithTracer; nil = tracing off
	trcTrack   trace.Track     // the client's span track ("client/<label>")
	opSeq      atomic.Uint64   // observer OpID source
}

// Option configures a Client at construction.
type Option func(*Client)

// WithObserver attaches an observer to the client's invoke pipeline; the
// option may be repeated, and observers are notified in attachment order.
// See Observer for the event contract.
func WithObserver(o Observer) Option {
	return func(c *Client) {
		c.obsList = append(c.obsList, o)
	}
}

// WithOpTimeout bounds every invocation through this client to d of model
// time: if no terminal transition happened within d of submission, the
// Correctable fails with an error wrapping faults.ErrUnreachable and late
// views are refused. It overrides the binding's default operation bound
// (TimeoutProvider); d <= 0 disables the bound entirely.
func WithOpTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d < 0 {
			d = 0
		}
		c.opTimeout = d
		c.timeoutSet = true
	}
}

// WithScheduler overrides how Correctables created through this client
// spawn goroutines, block, and read time, taking precedence over the
// binding's SchedulerProvider.
func WithScheduler(s core.Scheduler) Option {
	return func(c *Client) { c.sched = s }
}

// WithLabel names the client on observer events (OpInfo.Client), scoping
// per-session analysis when several clients share one observer.
func WithLabel(label string) Option {
	return func(c *Client) { c.label = label }
}

// NewClient wraps a binding. If the binding implements SchedulerProvider,
// Correctables created through this client use the binding's scheduler
// (WithScheduler overrides). If it implements TimeoutProvider, its default
// operation bound applies (WithOpTimeout overrides). The binding's
// consistency levels are read and normalized once here; bindings whose
// level set changes over a client's lifetime are not supported.
func NewClient(b Binding, opts ...Option) *Client {
	c := &Client{b: b, levels: b.ConsistencyLevels().Sorted()}
	if len(c.levels) > 0 {
		c.weakSet = c.levels[:1]
		c.strongSet = c.levels[len(c.levels)-1:]
	}
	if sp, ok := b.(SchedulerProvider); ok {
		c.sched = sp.Scheduler()
	}
	if vb, ok := b.(Versioner); ok {
		c.versioned = vb.Versions()
	}
	for _, opt := range opts {
		opt(c)
	}
	if !c.timeoutSet {
		if tp, ok := b.(TimeoutProvider); ok {
			c.tp = tp
		}
	}
	if c.trc != nil {
		// The tracer rides the observer pipeline for root op spans; track
		// resolution happens here so WithLabel/WithTracer order is free.
		c.trcTrack = c.trc.Track("client/" + c.label)
		c.obsList = append(c.obsList, NewTraceObserver(c.trc, c.trcTrack))
	}
	switch len(c.obsList) {
	case 0:
	case 1:
		c.obs = c.obsList[0]
	default:
		c.obs = c.obsList
	}
	return c
}

// Binding returns the underlying binding.
func (c *Client) Binding() Binding { return c.b }

// Label returns the client's observer label.
func (c *Client) Label() string { return c.label }

// OpTimeout returns the per-operation model-time bound an invocation
// issued now would run under (0 = unbounded): the WithOpTimeout override
// when given, the binding's current default otherwise. The binding default
// is consulted per invocation, so attaching a fault injector after client
// construction still arms the bound.
func (c *Client) OpTimeout() time.Duration {
	if c.timeoutSet {
		return c.opTimeout
	}
	if c.tp != nil {
		return c.tp.DefaultOpTimeout()
	}
	return 0
}

// Levels returns the consistency levels the underlying binding offers,
// weakest first (a copy; the cached set backs the invoke hot path).
func (c *Client) Levels() core.Levels {
	return append(core.Levels(nil), c.levels...)
}

// Close releases the underlying binding.
func (c *Client) Close() error { return c.b.Close() }

// scheduler returns the client's scheduler, defaulting when unset.
func (c *Client) scheduler() core.Scheduler {
	if c.sched == nil {
		return core.DefaultScheduler
	}
	return c.sched
}

// now returns the current instant on the client's time axis.
func (c *Client) now() time.Duration { return c.scheduler().Now() }

// InvokeWeak executes op with the weakest available consistency level. The
// returned Correctable never transitions updating -> updating; it closes
// directly with the single result (§3.2).
func InvokeWeak[T any](ctx context.Context, c *Client, op OperationFor[T]) *core.Correctable[T] {
	if len(c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, c, op, c.weakSet, nil)
}

// InvokeStrong executes op with the strongest available consistency level.
// The returned Correctable closes directly with the single result.
func InvokeStrong[T any](ctx context.Context, c *Client, op OperationFor[T]) *core.Correctable[T] {
	if len(c.levels) == 0 {
		return core.Failed[T](fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return submit(ctx, c, op, c.strongSet, nil)
}

// Invoke executes op with incremental consistency guarantees: the returned
// Correctable delivers one view per requested level, weakest first, and
// closes with the strongest. If levels is empty, all levels offered by the
// binding are used (§3.2). Requesting a level the binding does not offer
// fails the Correctable.
func Invoke[T any](ctx context.Context, c *Client, op OperationFor[T], levels ...core.Level) *core.Correctable[T] {
	requested, err := c.requestedLevels(levels)
	if err != nil {
		return core.Failed[T](err)
	}
	return submit(ctx, c, op, requested, nil)
}

// requestedLevels maps an Invoke level list onto the binding's offer: the
// cached full set when empty, a freshly normalized subset otherwise.
func (c *Client) requestedLevels(levels []core.Level) (core.Levels, error) {
	if len(levels) == 0 {
		if len(c.levels) == 0 {
			return nil, fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel)
		}
		return c.levels, nil
	}
	requested := core.Levels(levels).Sorted()
	for _, l := range requested {
		if !c.levels.Contains(l) {
			return nil, fmt.Errorf("%w: %v (binding offers %v)", ErrUnsupportedLevel, l, c.levels)
		}
	}
	if len(requested) == 0 {
		return nil, fmt.Errorf("%w: empty level set", ErrUnsupportedLevel)
	}
	return requested, nil
}

// invocation bundles the consumer handle of one in-flight operation with
// its observer identity. It is a small value, captured by value in the
// delivery closures: terminal helpers use the Controller's verdict (only
// the transition that actually happened is observed), so duplicate binding
// callbacks, late post-timeout views and racing cancellations produce
// exactly one OpEnd and no spurious OpViews. When an observer is attached,
// obsMu makes each (transition, emission) pair atomic: without it, a
// wall-clock delivery goroutine could be preempted between a successful
// Update and its OpView, letting a concurrent Close emit the final view
// and OpEnd first — observers would record an accepted view after the
// operation's end, or out of order. (Under a VirtualClock deliveries are
// already totally ordered; the lock is for real clocks.)
type invocation[T any] struct {
	c     *Client
	ctrl  core.Controller[T]
	info  OpInfo
	obsMu *sync.Mutex   // non-nil iff an observer is attached
	gov   *governedCall // non-nil iff an admission gate or retry policy applies
}

// strongestNow returns the level that closes the Correctable: the frozen
// request strongest on the plain path, the current attempt's strongest on
// the governed path (an AdmissionDegrade attempt closes at the weakest
// level).
func (inv invocation[T]) strongestNow(fallback core.Level) core.Level {
	if inv.gov == nil {
		return fallback
	}
	return inv.gov.currentStrongest()
}

// fail closes the operation with err; reports whether this call closed it.
// On the governed path a retryable failure of a still-open invocation is
// converted into a scheduled re-submission instead (the op stays in
// flight; observers see neither an OpEnd nor a new OpStart — retries are
// internal to the one logical operation).
func (inv invocation[T]) fail(err error) bool {
	if inv.gov != nil &&
		inv.ctrl.Correctable().State() == core.StateUpdating &&
		inv.gov.tryRetry(inv.c, err) {
		return false
	}
	if inv.obsMu == nil {
		return inv.ctrl.Fail(err) == nil
	}
	inv.obsMu.Lock()
	defer inv.obsMu.Unlock()
	if inv.ctrl.Fail(err) != nil {
		return false
	}
	inv.c.obs.OpEnd(inv.info, inv.c.now(), err)
	return true
}

// update delivers a non-final view; reports whether it was accepted.
func (inv invocation[T]) update(v T, level core.Level, version uint64) bool {
	if inv.obsMu == nil {
		return inv.ctrl.Update(v, level) == nil
	}
	inv.obsMu.Lock()
	defer inv.obsMu.Unlock()
	if inv.ctrl.Update(v, level) != nil {
		return false
	}
	at := inv.c.now()
	inv.c.obs.OpView(inv.info, OpView{Level: level, Version: version, At: at, Value: v})
	return true
}

// close delivers the final view; reports whether it was accepted.
func (inv invocation[T]) close(v T, level core.Level, version uint64) bool {
	if inv.obsMu == nil {
		return inv.ctrl.Close(v, level) == nil
	}
	inv.obsMu.Lock()
	defer inv.obsMu.Unlock()
	if inv.ctrl.Close(v, level) != nil {
		return false
	}
	at := inv.c.now()
	inv.c.obs.OpView(inv.info, OpView{Level: level, Final: true, Version: version, At: at, Value: v})
	inv.c.obs.OpEnd(inv.info, at, nil)
	return true
}

// submit wires one SubmitOperation call to a fresh typed Correctable — the
// client's single invoke pipeline. The strongest requested level closes the
// Correctable; weaker levels update it. Responses that race past a terminal
// transition are dropped (the Controller refuses them), which also makes
// duplicate binding callbacks harmless. The wire value of each Result is
// decoded with op.ResultOf; a decode failure fails the Correctable. A
// non-nil sess threads session guarantees through the same pipeline:
// stale weaker views are suppressed, a stale final read is retried, and
// delivered version tokens advance the session's floors (see Session).
//
// When the client has an operation timeout, a model-time timer bounds the
// invocation in model time: on expiry the Correctable fails with
// faults.ErrUnreachable and the binding's protocol work completes in the
// background, its late views refused.
//
// An admission gate (WithAdmission) or retry policy (WithRetry) switches
// the invocation onto the governed path: the gate is consulted before any
// protocol work (per attempt, retries included), an AdmissionDegrade
// verdict rewrites the level set to the binding's weakest so the
// Correctable honestly closes with the preliminary view, failures the
// policy classifies as retryable are re-submitted with seeded backoff, and
// the operation timeout bounds each attempt rather than the whole
// invocation. Plain invocations never touch any of it — the hot path keeps
// its allocation budget.
func submit[T any](ctx context.Context, c *Client, op OperationFor[T], requested core.Levels, sess *Session) *core.Correctable[T] {
	cor, ctrl := core.NewScheduled[T](c.sched, requested)
	strongest := requested.Strongest()
	inv := invocation[T]{c: c, ctrl: ctrl}
	if c.obs != nil {
		inv.info = opInfoOf(OpID(c.opSeq.Add(1)), c.label, op, requested, c.now())
		inv.obsMu = &sync.Mutex{}
		c.obs.OpStart(inv.info)
	}
	if c.gate != nil || c.retry != nil {
		inv.gov = &governedCall{strongest: strongest}
	}
	if call := sess.newCall(op); call != nil {
		// Session path: the callback references itself so a stale final
		// can re-submit the operation; the self-capture costs one extra
		// allocation, which only session invocations pay. cb stays scoped
		// to this branch: a shared variable captured by this self-reference
		// would be heap-moved on the plain path too, breaking its budget.
		var cb Callback
		cb = func(r Result) {
			if r.Err != nil {
				inv.fail(r.Err)
				return
			}
			st := inv.strongestNow(strongest)
			switch call.check(r.Level == st, r.Version) {
			case sessionSuppress:
				return
			case sessionRetry:
				// Re-execute at the strongest requested level only: the
				// weaker levels were already delivered (or suppressed) by
				// the first execution, and re-running their protocol legs
				// would deliver duplicate views and duplicate traffic.
				// A closed Correctable (op timeout, cancellation) refuses
				// every result, so don't burn store operations chasing a
				// token no consumer can observe. (Session re-reads bypass
				// the admission gate: they chase a token the session
				// already observed, at the cheapest level that can carry
				// it.)
				if inv.ctrl.Correctable().State() != core.StateUpdating {
					return
				}
				c.b.SubmitOperation(ctx, op, core.Levels{st}, cb)
				return
			case sessionFail:
				inv.fail(call.floorErr(r.Version))
				return
			}
			v, err := op.ResultOf(r.Value)
			switch {
			case err != nil:
				inv.fail(err)
			case r.Level == st:
				if inv.close(v, r.Level, r.Version) {
					call.observe(r.Version, true)
				}
			default:
				if inv.update(v, r.Level, r.Version) {
					call.observe(r.Version, false)
				}
			}
		}
		dispatch(ctx, cor, inv, op, requested, cb)
	} else {
		// Plain path: one flat closure, no self-reference — the invoke hot
		// path stays at its pre-session allocation budget.
		dispatch(ctx, cor, inv, op, requested, func(r Result) {
			if r.Err != nil {
				inv.fail(r.Err)
				return
			}
			v, err := op.ResultOf(r.Value)
			st := inv.strongestNow(strongest)
			switch {
			case err != nil:
				inv.fail(err)
			case r.Level == st:
				inv.close(v, r.Level, r.Version)
			default:
				inv.update(v, r.Level, r.Version)
			}
		})
	}
	watchContext(ctx, cor, inv)
	return cor
}

// dispatch hands a wired callback to the binding: directly on the plain
// path (arming the whole-invocation timeout), through the governed attempt
// loop otherwise.
func dispatch[T any](ctx context.Context, cor *core.Correctable[T], inv invocation[T], op Operation, requested core.Levels, cb Callback) {
	if inv.gov == nil {
		inv.c.b.SubmitOperation(ctx, op, requested, cb)
		if d := inv.c.OpTimeout(); d > 0 {
			armTimeout(cor, inv, d, 0)
		}
		return
	}
	submitGoverned(ctx, cor, inv, op, requested, cb)
}

// submitGoverned runs the governed attempt loop. Each attempt consults the
// admission gate, picks its level set (requested, or the binding's weakest
// under AdmissionDegrade), arms a fresh per-attempt timeout stamped with
// the attempt generation, and submits. Re-submissions arrive through
// governedCall.resubmit, scheduled by invocation.fail when the retry
// policy grants a retry; a closed Correctable (context cancellation,
// consumer gone) stops the loop.
func submitGoverned[T any](ctx context.Context, cor *core.Correctable[T], inv invocation[T], op Operation, requested core.Levels, cb Callback) {
	c := inv.c
	gov := inv.gov
	var attempt func()
	attempt = func() {
		lv := requested
		if c.gate != nil {
			dec, err := c.gate.Admit(c.label, op)
			switch dec {
			case AdmissionReject:
				if err == nil {
					err = errRejectedNoReason
				}
				if c.trc != nil {
					c.trc.Instant(c.trcTrack, "admission.reject", "", c.now())
				}
				inv.fail(err)
				return
			case AdmissionDegrade:
				if !opMutates(op) && len(c.weakSet) > 0 {
					lv = c.weakSet
					if c.trc != nil {
						c.trc.Instant(c.trcTrack, "admission.degrade", "", c.now())
					}
				}
			}
		}
		gen := gov.begin(lv.Strongest())
		if d := c.OpTimeout(); d > 0 {
			armTimeout(cor, inv, d, gen)
		}
		c.b.SubmitOperation(ctx, op, lv, cb)
	}
	gov.resubmit = func() {
		if cor.State() == core.StateUpdating {
			attempt()
		}
	}
	attempt()
}

// opMutates reports whether op declares itself state-changing. Operations
// without a Mutator are treated as read-only, consistent with how sessions
// classify them.
func opMutates(op Operation) bool {
	m, ok := op.(Mutator)
	return ok && m.OpMutates()
}

// armTimeout bounds one attempt to d of model time. Scheduler.After has
// no cancellation, so the timer callback reaches the invocation through an
// atomic pointer that is cleared as soon as the Correctable closes: a
// completed operation's views are not kept alive for the rest of the
// timeout window, and the eventually-firing timer is a reference-free
// no-op. On the governed path gen stamps the attempt: a timer whose
// attempt a retry has already superseded is a no-op too (the retry armed
// its own), so a slow timer never fails a newer attempt.
func armTimeout[T any](cor *core.Correctable[T], inv invocation[T], d time.Duration, gen int) {
	holder := &atomic.Pointer[invocation[T]]{}
	holder.Store(&inv)
	cor.Finally(func() { holder.Store(nil) })
	inv.c.scheduler().After(d, func() {
		iv := holder.Load()
		if iv == nil {
			return
		}
		if iv.gov != nil && iv.gov.generation() != gen {
			return
		}
		iv.fail(fmt.Errorf("%w: no terminal view within %v (client op timeout)", faults.ErrUnreachable, d))
	})
}

// watchContext fails the Correctable when ctx is cancelled before the
// operation completes. It uses context.AfterFunc instead of a dedicated
// goroutine, so an idle invocation costs no goroutine — the difference
// between 10^6 parked goroutines and none at million-client scale. The
// registration is released as soon as the Correctable closes.
func watchContext[T any](ctx context.Context, cor *core.Correctable[T], inv invocation[T]) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	stop := context.AfterFunc(ctx, func() {
		inv.fail(ctx.Err())
	})
	cor.Finally(func() { stop() })
}
