package binding

import (
	"context"
	"fmt"

	"correctables/internal/core"
)

// Client is the application-facing side of the Correctables library
// (Figure 2): a thin, consistency-based interface over one binding.
type Client struct {
	b     Binding
	sched core.Scheduler // from SchedulerProvider bindings; nil = default
}

// NewClient wraps a binding. If the binding implements SchedulerProvider,
// Correctables created through this client use the binding's scheduler.
func NewClient(b Binding) *Client {
	c := &Client{b: b}
	if sp, ok := b.(SchedulerProvider); ok {
		c.sched = sp.Scheduler()
	}
	return c
}

// Binding returns the underlying binding.
func (c *Client) Binding() Binding { return c.b }

// Levels returns the consistency levels the underlying binding offers,
// weakest first.
func (c *Client) Levels() core.Levels { return c.b.ConsistencyLevels() }

// Close releases the underlying binding.
func (c *Client) Close() error { return c.b.Close() }

// InvokeWeak executes op with the weakest available consistency level. The
// returned Correctable never transitions updating -> updating; it closes
// directly with the single result (§3.2).
func (c *Client) InvokeWeak(ctx context.Context, op Operation) *core.Correctable {
	levels := c.b.ConsistencyLevels()
	if len(levels) == 0 {
		return core.Failed(fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return c.invoke(ctx, op, core.Levels{levels.Weakest()})
}

// InvokeStrong executes op with the strongest available consistency level.
// The returned Correctable closes directly with the single result.
func (c *Client) InvokeStrong(ctx context.Context, op Operation) *core.Correctable {
	levels := c.b.ConsistencyLevels()
	if len(levels) == 0 {
		return core.Failed(fmt.Errorf("%w: binding advertises no levels", ErrUnsupportedLevel))
	}
	return c.invoke(ctx, op, core.Levels{levels.Strongest()})
}

// Invoke executes op with incremental consistency guarantees: the returned
// Correctable delivers one view per requested level, weakest first, and
// closes with the strongest. If levels is empty, all levels offered by the
// binding are used (§3.2). Requesting a level the binding does not offer
// fails the Correctable.
func (c *Client) Invoke(ctx context.Context, op Operation, levels ...core.Level) *core.Correctable {
	available := c.b.ConsistencyLevels()
	var requested core.Levels
	if len(levels) == 0 {
		requested = available.Sorted()
	} else {
		requested = core.Levels(levels).Sorted()
		for _, l := range requested {
			if !available.Contains(l) {
				return core.Failed(fmt.Errorf("%w: %v (binding offers %v)", ErrUnsupportedLevel, l, available))
			}
		}
	}
	if len(requested) == 0 {
		return core.Failed(fmt.Errorf("%w: empty level set", ErrUnsupportedLevel))
	}
	return c.invoke(ctx, op, requested)
}

// invoke wires one SubmitOperation call to a fresh Correctable. The
// strongest requested level closes the Correctable; weaker levels update
// it. Responses that race past a terminal transition are dropped (the
// Controller refuses them), which also makes duplicate binding callbacks
// harmless.
func (c *Client) invoke(ctx context.Context, op Operation, requested core.Levels) *core.Correctable {
	cor, ctrl := core.NewScheduled(c.sched, requested)
	strongest := requested.Strongest()
	c.b.SubmitOperation(ctx, op, requested, func(r Result) {
		switch {
		case r.Err != nil:
			_ = ctrl.Fail(r.Err)
		case r.Level == strongest:
			_ = ctrl.Close(r.Value, r.Level)
		default:
			_ = ctrl.Update(r.Value, r.Level)
		}
	})
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-cor.Done():
			case <-ctx.Done():
				_ = ctrl.Fail(ctx.Err())
			}
		}()
	}
	return cor
}
