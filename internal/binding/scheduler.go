package binding

import (
	"time"

	"correctables/internal/core"
	"correctables/internal/netsim"
)

// SchedulerProvider is the optional interface a Binding implements to tell
// the client library how its Correctables should spawn goroutines and
// block. Bindings over a simulated substrate return the substrate clock's
// scheduler, so that waiting on a Correctable parks a simulation actor —
// under netsim's VirtualClock this is what keeps the discrete-event
// scheduler live (and deterministic) while application code blocks in
// Final or WaitLevel.
type SchedulerProvider interface {
	Scheduler() core.Scheduler
}

// SchedulerFor adapts a netsim clock to the core Scheduler interface.
// Bindings use it to implement SchedulerProvider in one line.
func SchedulerFor(c netsim.Clock) core.Scheduler { return clockScheduler{c} }

type clockScheduler struct{ c netsim.Clock }

func (s clockScheduler) Go(fn func())         { s.c.Go(fn) }
func (s clockScheduler) NewEvent() core.Event { return s.c.NewEvent() }
func (s clockScheduler) Now() time.Duration   { return s.c.Now() }

// After rides the clock's callback-timer heap: no actor spawn, no
// channel rendezvous, deterministic interleave with traffic. fn must not
// block (Controller methods never do).
func (s clockScheduler) After(d time.Duration, fn func()) { s.c.RunAfter(d, fn) }
