package binding

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"correctables/internal/core"
)

// fakeBinding is a deterministic in-memory binding for exercising the
// client wiring: it answers Get with "<level>:<key>" bytes at each
// requested level, in order, optionally with a delay between levels.
type fakeBinding struct {
	levels core.Levels
	delay  time.Duration
	mu     sync.Mutex
	calls  []core.Levels
	closed bool
}

func (f *fakeBinding) ConsistencyLevels() core.Levels { return f.levels }

func (f *fakeBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	f.mu.Lock()
	f.calls = append(f.calls, levels)
	f.mu.Unlock()
	go func() {
		get, ok := op.(Get)
		if !ok {
			cb(Result{Err: fmt.Errorf("%w: %s", ErrUnsupportedOperation, op.OpName())})
			return
		}
		for _, l := range levels {
			time.Sleep(f.delay)
			cb(Result{Value: []byte(fmt.Sprintf("%s:%s", l, get.Key)), Level: l})
		}
	}()
}

func (f *fakeBinding) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func newFake() *fakeBinding {
	return &fakeBinding{levels: core.Levels{core.LevelWeak, core.LevelStrong}}
}

func TestInvokeDeliversAllLevelsInOrder(t *testing.T) {
	c := NewClient(newFake())
	cor := Invoke[[]byte](context.Background(), c, Get{Key: "k"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "strong:k" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	views := cor.Views()
	if len(views) != 2 {
		t.Fatalf("views = %v", views)
	}
	if string(views[0].Value) != "weak:k" || views[0].Level != core.LevelWeak || views[0].Final {
		t.Errorf("view[0] = %+v", views[0])
	}
}

func TestInvokeWeakSingleView(t *testing.T) {
	fb := newFake()
	c := NewClient(fb)
	cor := InvokeWeak[[]byte](context.Background(), c, Get{Key: "k"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "weak:k" || v.Level != core.LevelWeak || !v.Final {
		t.Errorf("final = %+v", v)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("InvokeWeak delivered %d views, want 1", len(cor.Views()))
	}
	// The binding was asked for only the weak level, so it can avoid the
	// extraneous work (§3.2).
	if len(fb.calls) != 1 || len(fb.calls[0]) != 1 || fb.calls[0][0] != core.LevelWeak {
		t.Errorf("binding received levels %v, want [weak]", fb.calls)
	}
}

func TestInvokeStrongSingleView(t *testing.T) {
	c := NewClient(newFake())
	cor := InvokeStrong[[]byte](context.Background(), c, Get{Key: "x"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "strong:x" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("InvokeStrong delivered %d views, want 1", len(cor.Views()))
	}
}

func TestInvokeLevelSubset(t *testing.T) {
	fb := &fakeBinding{levels: core.Levels{core.LevelCache, core.LevelWeak, core.LevelStrong}}
	c := NewClient(fb)
	cor := Invoke[[]byte](context.Background(), c, Get{Key: "k"}, core.LevelCache, core.LevelStrong)
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != core.LevelStrong {
		t.Errorf("final level = %v", v.Level)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelCache {
		t.Errorf("views = %+v", views)
	}
}

func TestInvokeUnsupportedLevelFails(t *testing.T) {
	c := NewClient(newFake())
	cor := Invoke[[]byte](context.Background(), c, Get{Key: "k"}, core.LevelCausal)
	if _, err := cor.Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("err = %v, want ErrUnsupportedLevel", err)
	}
}

func TestInvokeUnsupportedOperationFails(t *testing.T) {
	c := NewClient(newFake())
	cor := Invoke[Item](context.Background(), c, Enqueue{Queue: "q", Item: []byte("x")})
	if _, err := cor.Final(context.Background()); !errors.Is(err, ErrUnsupportedOperation) {
		t.Errorf("err = %v, want ErrUnsupportedOperation", err)
	}
}

func TestInvokeContextCancellation(t *testing.T) {
	fb := newFake()
	fb.delay = time.Second
	c := NewClient(fb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cor := Invoke[[]byte](ctx, c, Get{Key: "k"})
	if _, err := cor.Final(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestEmptyLevelsBinding(t *testing.T) {
	c := NewClient(&fakeBinding{})
	if _, err := InvokeWeak[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("InvokeWeak on empty binding: %v", err)
	}
	if _, err := InvokeStrong[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("InvokeStrong on empty binding: %v", err)
	}
	if _, err := Invoke[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("Invoke on empty binding: %v", err)
	}
}

func TestClientClose(t *testing.T) {
	fb := newFake()
	c := NewClient(fb)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !fb.closed {
		t.Error("Close did not reach the binding")
	}
}

func TestOperationNames(t *testing.T) {
	cases := map[string]Operation{
		"get":     Get{},
		"put":     Put{},
		"enqueue": Enqueue{},
		"dequeue": Dequeue{},
	}
	for want, op := range cases {
		if got := op.OpName(); got != want {
			t.Errorf("OpName = %q, want %q", got, want)
		}
	}
}

func TestLevelsAccessor(t *testing.T) {
	c := NewClient(newFake())
	ls := c.Levels()
	if len(ls) != 2 || ls.Weakest() != core.LevelWeak || ls.Strongest() != core.LevelStrong {
		t.Errorf("Levels = %v", ls)
	}
}

// TestTypedResultDecodeMismatch: a binding delivering an unexpected wire
// type fails the typed Correctable instead of panicking.
type wrongTypeBinding struct{ fakeBinding }

func (w *wrongTypeBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	go cb(Result{Value: 42, Level: levels.Strongest()})
}

func TestTypedResultDecodeMismatch(t *testing.T) {
	c := NewClient(&wrongTypeBinding{fakeBinding{levels: core.Levels{core.LevelStrong}}})
	if _, err := InvokeStrong[[]byte](context.Background(), c, Get{Key: "k"}).Final(context.Background()); err == nil {
		t.Error("decode mismatch did not fail the correctable")
	}
}

// TestNoGoroutinePerInvoke: the cancellation watcher must not burn a
// goroutine per in-flight operation (context.AfterFunc-based).
func TestNoGoroutinePerInvoke(t *testing.T) {
	fb := newFake()
	fb.delay = 50 * time.Millisecond
	c := NewClient(fb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	before := runtimeNumGoroutine()
	var cors []*core.Correctable[[]byte]
	const n = 64
	for i := 0; i < n; i++ {
		cors = append(cors, Invoke[[]byte](ctx, c, Get{Key: "k"}))
	}
	// The fake binding spawns one goroutine per submission; anything well
	// below 2n means no extra per-invoke watcher goroutine exists.
	during := runtimeNumGoroutine()
	if during-before > n+8 {
		t.Errorf("goroutines grew by %d for %d invokes; per-invoke watcher goroutine suspected", during-before, n)
	}
	for _, cor := range cors {
		if _, err := cor.Final(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func runtimeNumGoroutine() int { return runtime.NumGoroutine() }
