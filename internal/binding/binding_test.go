package binding

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"correctables/internal/core"
)

// fakeBinding is a deterministic in-memory binding for exercising the
// client wiring: it answers Get with "<level>:<key>" at each requested
// level, in order, optionally with a delay between levels.
type fakeBinding struct {
	levels core.Levels
	delay  time.Duration
	mu     sync.Mutex
	calls  []core.Levels
	closed bool
}

func (f *fakeBinding) ConsistencyLevels() core.Levels { return f.levels }

func (f *fakeBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	f.mu.Lock()
	f.calls = append(f.calls, levels)
	f.mu.Unlock()
	go func() {
		get, ok := op.(Get)
		if !ok {
			cb(Result{Err: fmt.Errorf("%w: %s", ErrUnsupportedOperation, op.OpName())})
			return
		}
		for _, l := range levels {
			time.Sleep(f.delay)
			cb(Result{Value: fmt.Sprintf("%s:%s", l, get.Key), Level: l})
		}
	}()
}

func (f *fakeBinding) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func newFake() *fakeBinding {
	return &fakeBinding{levels: core.Levels{core.LevelWeak, core.LevelStrong}}
}

func TestInvokeDeliversAllLevelsInOrder(t *testing.T) {
	c := NewClient(newFake())
	cor := c.Invoke(context.Background(), Get{Key: "k"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "strong:k" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	views := cor.Views()
	if len(views) != 2 {
		t.Fatalf("views = %v", views)
	}
	if views[0].Value != "weak:k" || views[0].Level != core.LevelWeak || views[0].Final {
		t.Errorf("view[0] = %+v", views[0])
	}
}

func TestInvokeWeakSingleView(t *testing.T) {
	fb := newFake()
	c := NewClient(fb)
	cor := c.InvokeWeak(context.Background(), Get{Key: "k"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "weak:k" || v.Level != core.LevelWeak || !v.Final {
		t.Errorf("final = %+v", v)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("InvokeWeak delivered %d views, want 1", len(cor.Views()))
	}
	// The binding was asked for only the weak level, so it can avoid the
	// extraneous work (§3.2).
	if len(fb.calls) != 1 || len(fb.calls[0]) != 1 || fb.calls[0][0] != core.LevelWeak {
		t.Errorf("binding received levels %v, want [weak]", fb.calls)
	}
}

func TestInvokeStrongSingleView(t *testing.T) {
	c := NewClient(newFake())
	cor := c.InvokeStrong(context.Background(), Get{Key: "x"})
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Value != "strong:x" || v.Level != core.LevelStrong {
		t.Errorf("final = %+v", v)
	}
	if len(cor.Views()) != 1 {
		t.Errorf("InvokeStrong delivered %d views, want 1", len(cor.Views()))
	}
}

func TestInvokeLevelSubset(t *testing.T) {
	fb := &fakeBinding{levels: core.Levels{core.LevelCache, core.LevelWeak, core.LevelStrong}}
	c := NewClient(fb)
	cor := c.Invoke(context.Background(), Get{Key: "k"}, core.LevelCache, core.LevelStrong)
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != core.LevelStrong {
		t.Errorf("final level = %v", v.Level)
	}
	views := cor.Views()
	if len(views) != 2 || views[0].Level != core.LevelCache {
		t.Errorf("views = %+v", views)
	}
}

func TestInvokeUnsupportedLevelFails(t *testing.T) {
	c := NewClient(newFake())
	cor := c.Invoke(context.Background(), Get{Key: "k"}, core.LevelCausal)
	if _, err := cor.Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("err = %v, want ErrUnsupportedLevel", err)
	}
}

func TestInvokeUnsupportedOperationFails(t *testing.T) {
	c := NewClient(newFake())
	cor := c.Invoke(context.Background(), Enqueue{Queue: "q", Item: []byte("x")})
	if _, err := cor.Final(context.Background()); !errors.Is(err, ErrUnsupportedOperation) {
		t.Errorf("err = %v, want ErrUnsupportedOperation", err)
	}
}

func TestInvokeContextCancellation(t *testing.T) {
	fb := newFake()
	fb.delay = time.Second
	c := NewClient(fb)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cor := c.Invoke(ctx, Get{Key: "k"})
	if _, err := cor.Final(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestEmptyLevelsBinding(t *testing.T) {
	c := NewClient(&fakeBinding{})
	if _, err := c.InvokeWeak(context.Background(), Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("InvokeWeak on empty binding: %v", err)
	}
	if _, err := c.InvokeStrong(context.Background(), Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("InvokeStrong on empty binding: %v", err)
	}
	if _, err := c.Invoke(context.Background(), Get{Key: "k"}).Final(context.Background()); !errors.Is(err, ErrUnsupportedLevel) {
		t.Errorf("Invoke on empty binding: %v", err)
	}
}

func TestClientClose(t *testing.T) {
	fb := newFake()
	c := NewClient(fb)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !fb.closed {
		t.Error("Close did not reach the binding")
	}
}

func TestOperationNames(t *testing.T) {
	cases := map[string]Operation{
		"get":     Get{},
		"put":     Put{},
		"enqueue": Enqueue{},
		"dequeue": Dequeue{},
	}
	for want, op := range cases {
		if got := op.OpName(); got != want {
			t.Errorf("OpName = %q, want %q", got, want)
		}
	}
}

func TestLevelsAccessor(t *testing.T) {
	c := NewClient(newFake())
	ls := c.Levels()
	if len(ls) != 2 || ls.Weakest() != core.LevelWeak || ls.Strongest() != core.LevelStrong {
		t.Errorf("Levels = %v", ls)
	}
}
