package binding

import (
	"context"

	"correctables/internal/core"
)

// syncBinding answers synchronously from a pre-boxed value, isolating the
// client library's own allocations: everything the allocation gates observe
// is invoke-path overhead, not storage work. It is also the base storage
// stub for the batching tests (untagged file: the race suite needs it too).
type syncBinding struct {
	levels core.Levels
	value  any // pre-boxed []byte, so wire boxing is not attributed to either path
}

func (s *syncBinding) ConsistencyLevels() core.Levels { return s.levels }

func (s *syncBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	for _, l := range levels {
		cb(Result{Value: s.value, Level: l})
	}
}

func (s *syncBinding) Close() error { return nil }

func newSyncBinding() *syncBinding {
	return &syncBinding{
		levels: core.Levels{core.LevelWeak, core.LevelStrong},
		value:  []byte("payload"),
	}
}

// batchStub is a BatchBinding that serves every coalesced entry
// synchronously from the pre-boxed value, so the allocations the
// batched-dispatch gate observes belong to the Batcher's
// enqueue/flush/recycle machinery alone.
type batchStub struct {
	*syncBinding
}

func (b *batchStub) BatchShards() int { return 1 }

func (b *batchStub) BatchKey(op Operation) (int, bool) {
	_, ok := op.(Get)
	return 0, ok
}

func (b *batchStub) SubmitBatch(shard int, entries []BatchEntry, done func([]BatchEntry)) {
	for i := range entries {
		e := &entries[i]
		for _, l := range e.Levels {
			e.Cb(Result{Value: b.value, Level: l})
		}
	}
	done(entries)
}
