//go:build !race

package binding

import (
	"context"
	"testing"
	"time"

	"correctables/internal/core"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// TestAllocGateTypedWeakRead is the allocation-regression gate for the
// typed invoke path (run by CI without -race): the weak read must stay
// within a small absolute budget. (The boxed-shim baseline it used to be
// compared against was removed with the shims themselves; the absolute
// budget below is the gate.)
func TestAllocGateTypedWeakRead(t *testing.T) {
	c := NewClient(newSyncBinding())
	ctx := context.Background()

	typed := testing.AllocsPerRun(200, func() {
		cor := InvokeWeak[[]byte](ctx, c, Get{Key: "k"})
		if _, err := cor.Final(ctx); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/invoke: typed=%.1f", typed)
	// Exact budget: correctable + callback closure + op interface box.
	// (The views themselves live in the correctable's inline buffer.) The
	// boxed-shim comparison this gate used to make enforced <= 3 too; keep
	// that bar now that the shims are gone.
	const budget = 3
	if typed > budget {
		t.Errorf("typed weak read allocates %.1f/op, budget %d", typed, budget)
	}
}

// TestAllocGateObserverlessPipeline: the redesigned invoke pipeline
// (observers, sessions, timeouts) must cost nothing when none of those
// features is in use — the plain path stays within the same budget as
// before the redesign.
func TestAllocGateObserverlessPipeline(t *testing.T) {
	c := NewClient(newSyncBinding(), WithLabel("gate"))
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		cor := Invoke[[]byte](ctx, c, Get{Key: "k"})
		if _, err := cor.Final(ctx); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/observerless invoke: %.1f", allocs)
	const budget = 3
	if allocs > budget {
		t.Errorf("observerless invoke allocates %.1f/op, budget %d", allocs, budget)
	}
}

// TestAllocGateFullInvoke gates the two-view ICG read as well: the typed
// path must not exceed the weak-read budget by more than the extra view
// delivery.
func TestAllocGateFullInvoke(t *testing.T) {
	c := NewClient(newSyncBinding())
	ctx := context.Background()
	typed := testing.AllocsPerRun(200, func() {
		cor := Invoke[[]byte](ctx, c, Get{Key: "k"})
		if _, err := cor.Final(ctx); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/ICG invoke: typed=%.1f", typed)
	const budget = 3
	if typed > budget {
		t.Errorf("typed ICG invoke allocates %.1f/op, budget %d", typed, budget)
	}
}

// TestAllocGateWaitLevel: waiting for a level that has already been
// delivered must not allocate at all.
func TestAllocGateWaitLevel(t *testing.T) {
	c := NewClient(newSyncBinding())
	ctx := context.Background()
	cor := Invoke[[]byte](ctx, c, Get{Key: "k"})
	if _, err := cor.Final(ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := cor.WaitLevel(ctx, core.LevelWeak); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("satisfied WaitLevel allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocGateBatchedDispatch is the coordinator-batching allocation gate:
// once the per-shard entry slices, the freelist and the coalescer's timer
// are warm, a full cycle — several same-shard enqueues, the window timer
// firing, the flush handing the batch to the store and the slice being
// recycled — allocates nothing. This is what keeps the 10^6-session
// capacity runs at a flat heap profile on the dispatch plane.
func TestAllocGateBatchedDispatch(t *testing.T) {
	clock := netsim.NewVirtualClock()
	bt := NewBatcher(&batchStub{newSyncBinding()}, clock, time.Millisecond)
	ctx := context.Background()
	var op Operation = Get{Key: "k"}
	levels := core.Levels{core.LevelWeak, core.LevelStrong}
	served := 0
	cb := func(Result) { served++ }

	const perWindow = 8
	cycle := func() {
		for i := 0; i < perWindow; i++ {
			bt.SubmitOperation(ctx, op, levels, cb)
		}
		clock.Sleep(2 * time.Millisecond)
	}
	// Warm: entry-slice capacities, the recycle rotation, the timer heap.
	for i := 0; i < 8; i++ {
		cycle()
	}
	warm := served

	allocs := testing.AllocsPerRun(200, cycle)
	t.Logf("allocs/batched dispatch cycle (%d ops): %.1f", perWindow, allocs)
	if allocs != 0 {
		t.Errorf("batched dispatch cycle allocates %.1f, want 0", allocs)
	}
	if served <= warm || (served-warm)%(perWindow*len(levels)) != 0 {
		t.Fatalf("served %d views after warm %d — flushes lost entries", served, warm)
	}
}

// TestAllocGateTracedInvoke bounds the tracing-ENABLED invoke path: the
// root op span, per-view instants and track-handle reuse must cost at most
// three allocations over the plain pipeline (the observer-path frames).
// The disabled path is gated at 3 by the tests above — tracing off costs
// the pipeline nothing.
func TestAllocGateTracedInvoke(t *testing.T) {
	trc := trace.New()
	c := NewClient(newSyncBinding(), WithTracer(trc), WithLabel("gate"))
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		cor := Invoke[[]byte](ctx, c, Get{Key: "k"})
		if _, err := cor.Final(ctx); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/traced invoke: %.1f", allocs)
	const budget = 6
	if allocs > budget {
		t.Errorf("traced invoke allocates %.1f/op, budget %d", allocs, budget)
	}
	if spans, instants := trc.Counts(); spans == 0 || instants == 0 {
		t.Fatalf("tracer recorded spans=%d instants=%d — the gate must measure the enabled path", spans, instants)
	}
}
