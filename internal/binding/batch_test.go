package binding

import (
	"context"
	"testing"
	"time"

	"correctables/internal/core"
	"correctables/internal/netsim"
)

// recordingBatchBinding records every dispatch it receives so tests can
// assert on grouping, ordering and the direct-submit fallback.
type recordingBatchBinding struct {
	*syncBinding
	shards  int
	batches []struct {
		shard int
		keys  []string
	}
	direct []string
}

func newRecordingBatchBinding(shards int) *recordingBatchBinding {
	return &recordingBatchBinding{syncBinding: newSyncBinding(), shards: shards}
}

func (b *recordingBatchBinding) SubmitOperation(ctx context.Context, op Operation, levels core.Levels, cb Callback) {
	b.direct = append(b.direct, op.OpName())
	b.syncBinding.SubmitOperation(ctx, op, levels, cb)
}

func (b *recordingBatchBinding) BatchShards() int { return b.shards }

// BatchKey batches gets only, sharded by the last key byte.
func (b *recordingBatchBinding) BatchKey(op Operation) (int, bool) {
	g, ok := op.(Get)
	if !ok || g.Key == "" {
		return 0, false
	}
	return int(g.Key[len(g.Key)-1]) % b.shards, true
}

func (b *recordingBatchBinding) SubmitBatch(shard int, entries []BatchEntry, done func([]BatchEntry)) {
	rec := struct {
		shard int
		keys  []string
	}{shard: shard}
	for i := range entries {
		e := &entries[i]
		rec.keys = append(rec.keys, e.Op.(Get).Key)
		for _, l := range e.Levels {
			e.Cb(Result{Value: b.value, Level: l})
		}
	}
	b.batches = append(b.batches, rec)
	done(entries)
}

// TestBatcherGroupsByShard: same-window operations coalesce into one
// dispatch per shard, FIFO within the shard, and a later window dispatches
// separately.
func TestBatcherGroupsByShard(t *testing.T) {
	clock := netsim.NewVirtualClock()
	bb := newRecordingBatchBinding(2)
	bt := NewBatcher(bb, clock, time.Millisecond)
	ctx := context.Background()
	cb := func(Result) {}
	levels := core.Levels{core.LevelWeak}

	// Key's last byte selects the shard: "0"→even, "1"→odd.
	for _, k := range []string{"a0", "b1", "c0", "d1", "e0"} {
		bt.SubmitOperation(ctx, Get{Key: k}, levels, cb)
	}
	clock.Drain()
	if len(bb.batches) != 2 {
		t.Fatalf("got %d dispatches, want 2 (one per shard): %+v", len(bb.batches), bb.batches)
	}
	want := map[int][]string{0: {"a0", "c0", "e0"}, 1: {"b1", "d1"}}
	for _, rec := range bb.batches {
		w := want[rec.shard]
		if len(rec.keys) != len(w) {
			t.Fatalf("shard %d got %v, want %v", rec.shard, rec.keys, w)
		}
		for i := range w {
			if rec.keys[i] != w[i] {
				t.Errorf("shard %d keys = %v, want %v (FIFO)", rec.shard, rec.keys, w)
				break
			}
		}
	}

	// A fresh window dispatches on its own.
	bt.SubmitOperation(ctx, Get{Key: "f0"}, levels, cb)
	clock.Drain()
	if len(bb.batches) != 3 || bb.batches[2].keys[0] != "f0" {
		t.Fatalf("post-window dispatch missing: %+v", bb.batches)
	}
}

// TestBatcherDirectFallback: operations BatchKey declines (puts, empty
// keys) bypass the queues entirely and reach the store synchronously.
func TestBatcherDirectFallback(t *testing.T) {
	clock := netsim.NewVirtualClock()
	bb := newRecordingBatchBinding(2)
	bt := NewBatcher(bb, clock, time.Millisecond)
	served := 0
	bt.SubmitOperation(context.Background(), Put{Key: "k", Value: []byte("v")},
		core.Levels{core.LevelStrong}, func(Result) { served++ })
	if len(bb.direct) != 1 || bb.direct[0] != "put" || served != 1 {
		t.Fatalf("direct = %v served = %d, want one synchronous put", bb.direct, served)
	}
	if len(bb.batches) != 0 {
		t.Fatalf("put must not be batched: %+v", bb.batches)
	}
}

// TestBatcherClientStack: a full typed client stacked on a Batcher
// delivers views exactly as over the raw binding — callers cannot tell
// batching is underneath — and the provider fallbacks hold for a wrapped
// binding that offers none.
func TestBatcherClientStack(t *testing.T) {
	clock := netsim.NewVirtualClock()
	bb := newRecordingBatchBinding(2)
	bt := NewBatcher(bb, clock, time.Millisecond)
	c := NewClient(bt)
	ctx := context.Background()

	done := make(chan error, 1)
	clock.Go(func() {
		cor := Invoke[[]byte](ctx, c, Get{Key: "k0"})
		_, err := cor.Final(ctx)
		done <- err
	})
	clock.Drain()
	if err := <-done; err != nil {
		t.Fatalf("batched invoke: %v", err)
	}
	if len(bb.batches) != 1 {
		t.Fatalf("client invoke did not route through a dispatch: %+v", bb.batches)
	}

	if bt.Versions() {
		t.Error("Versions fallback must be false for a version-less binding")
	}
	if d := bt.DefaultOpTimeout(); d != 0 {
		t.Errorf("DefaultOpTimeout fallback = %v, want 0", d)
	}
	if bt.Scheduler() == nil {
		t.Error("Scheduler fallback must wrap the dispatch clock")
	}
}
