package adserver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"correctables/internal/cassandra"
	"correctables/internal/netsim"
)

func newService(t *testing.T, correctable bool) (*Service, *cassandra.Cluster) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      correctable,
		ConfirmationOpt:  true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		FlushServiceTime: 20 * time.Microsecond,
		Workers:          16,
	})
	if err != nil {
		t.Fatal(err)
	}
	Load(cluster, LoadOptions{Profiles: 50, Ads: 200, MaxRefs: 5, AdBodySize: 100, Seed: 1})
	b := cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{})
	return NewService(b), cluster
}

func TestFetchAdsBaseline(t *testing.T) {
	s, _ := newService(t, false)
	out, err := s.FetchAdsByUserID(context.Background(), 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ads) == 0 {
		t.Fatal("no ads served")
	}
	for _, ad := range out.Ads {
		if len(ad.Body) != 100 {
			t.Errorf("ad %s body = %d bytes", ad.Ref, len(ad.Body))
		}
	}
	if out.Latency <= 0 || out.Speculative {
		t.Errorf("outcome = %+v", out)
	}
}

func TestFetchAdsSpeculativeFasterThanBaseline(t *testing.T) {
	// The headline result of Fig 11: speculation hides the strong read's
	// latency behind the ad prefetch.
	specSvc, _ := newService(t, true)
	baseSvc, _ := newService(t, false)
	var specTotal, baseTotal time.Duration
	const n = 8
	for i := 0; i < n; i++ {
		so, err := specSvc.FetchAdsByUserID(context.Background(), i, true)
		if err != nil {
			t.Fatal(err)
		}
		bo, err := baseSvc.FetchAdsByUserID(context.Background(), i, false)
		if err != nil {
			t.Fatal(err)
		}
		specTotal += so.Latency
		baseTotal += bo.Latency
		if so.Misspeculated {
			t.Errorf("unexpected misspeculation on a quiescent dataset (uid %d)", i)
		}
		if so.PrelimAt <= 0 {
			t.Errorf("speculative fetch has no preliminary timing (uid %d)", i)
		}
	}
	spec, base := specTotal/n, baseTotal/n
	// Baseline: 40ms (strong refs) + 40ms (strong ad fetch) = ~80ms.
	// Speculative: max(40ms strong refs, 20ms prelim + 40ms fetch) = ~60ms.
	if spec >= base {
		t.Errorf("speculation did not reduce latency: spec=%v base=%v", spec, base)
	}
	improvement := 1 - float64(spec)/float64(base)
	if improvement < 0.10 {
		t.Errorf("improvement = %.0f%%, want >= 10%% (paper: up to 40%%)", improvement*100)
	}
}

func TestFetchAdsSameContentBothModes(t *testing.T) {
	specSvc, _ := newService(t, true)
	baseSvc, _ := newService(t, false)
	so, err := specSvc.FetchAdsByUserID(context.Background(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := baseSvc.FetchAdsByUserID(context.Background(), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(so.Ads) != len(bo.Ads) {
		t.Fatalf("ad counts differ: %d vs %d", len(so.Ads), len(bo.Ads))
	}
	for i := range so.Ads {
		if so.Ads[i].Ref != bo.Ads[i].Ref {
			t.Errorf("ad %d ref differs: %s vs %s", i, so.Ads[i].Ref, bo.Ads[i].Ref)
		}
	}
}

func TestUpdateProfileAndRefetch(t *testing.T) {
	s, _ := newService(t, true)
	rng := rand.New(rand.NewSource(9))
	refs := RandomRefs(rng, LoadOptions{Ads: 200, MaxRefs: 5})
	lat, err := s.UpdateProfile(context.Background(), 11, refs)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("update latency not measured")
	}
	out, err := s.FetchAdsByUserID(context.Background(), 11, false)
	if err != nil {
		t.Fatal(err)
	}
	want := len(refs)
	if want > s.MaxAdsPerRequest {
		want = s.MaxAdsPerRequest
	}
	if len(out.Ads) != want {
		t.Errorf("served %d ads after update, want %d", len(out.Ads), want)
	}
	if out.Ads[0].Ref != refs[0] {
		t.Errorf("first ad = %s, want %s", out.Ads[0].Ref, refs[0])
	}
}

func TestMisspeculationDetectedAndCorrected(t *testing.T) {
	// Force divergence: write through a colocated IRL coordinator with a
	// long replication delay, then immediately fetch through FRK.
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		Transport:        tr,
		Correctable:      true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		ReplicationDelay: 300 * time.Millisecond,
		Workers:          16,
	})
	if err != nil {
		t.Fatal(err)
	}
	Load(cluster, LoadOptions{Profiles: 5, Ads: 50, MaxRefs: 3, AdBodySize: 50, Seed: 2})
	writer := NewService(cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.IRL), cassandra.BindingConfig{}))
	reader := NewService(cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{}))

	rng := rand.New(rand.NewSource(3))
	newRefs := RandomRefs(rng, LoadOptions{Ads: 50, MaxRefs: 3})
	if _, err := writer.UpdateProfile(context.Background(), 1, newRefs); err != nil {
		t.Fatal(err)
	}
	out, err := reader.FetchAdsByUserID(context.Background(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Misspeculated {
		t.Fatal("expected misspeculation: FRK preliminary is stale, quorum partner IRL is fresh")
	}
	// Despite misspeculating, the served ads reflect the final (fresh) refs.
	if out.Ads[0].Ref != newRefs[0] {
		t.Errorf("served %s after misspeculation, want fresh %s", out.Ads[0].Ref, newRefs[0])
	}
}
