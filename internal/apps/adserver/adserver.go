// Package adserver implements the paper's advertising case study (§4.2,
// Listing 4; evaluated in §6.3.1 / Fig 11): serving personalized ads
// requires first reading a per-user list of ad references, then fetching
// the referenced ads. Freshness matters (ads follow fluctuating user
// interests) but so does latency (ads are revenue), putting the system in
// the paper's "gray zone".
//
// With ICG, FetchAdsByUserID reads the reference list with invoke() and
// speculatively prefetches ad content on the preliminary view; if the final
// view confirms it (the common case), the strong-consistency latency is
// hidden behind the prefetch.
package adserver

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// Dataset shape from the paper: 100k user profiles, 230k ads, each profile
// referencing 1..40 ads.
const (
	DefaultProfiles   = 100_000
	DefaultAds        = 230_000
	DefaultMaxRefs    = 40
	DefaultAdBodySize = 600
)

// ProfileKey / AdKey are the storage schema.
func ProfileKey(uid int) string { return fmt.Sprintf("profile:%07d", uid) }
func AdKey(ref string) string   { return "ad:" + ref }
func adRefName(i int) string    { return fmt.Sprintf("a%06d", i) }
func encodeRefs(rs []string) []byte {
	return []byte(strings.Join(rs, ","))
}
func decodeRefs(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	return strings.Split(string(b), ",")
}

// LoadOptions sizes the synthetic dataset.
type LoadOptions struct {
	Profiles, Ads, MaxRefs, AdBodySize int
	Seed                               int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Profiles == 0 {
		o.Profiles = DefaultProfiles
	}
	if o.Ads == 0 {
		o.Ads = DefaultAds
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = DefaultMaxRefs
	}
	if o.AdBodySize == 0 {
		o.AdBodySize = DefaultAdBodySize
	}
	return o
}

// Load preloads a synthetic ad dataset into the cluster (no protocol
// traffic): ads with deterministic bodies, profiles referencing 1..MaxRefs
// random ads, matching the paper's dataset shape.
func Load(cluster *cassandra.Cluster, opts LoadOptions) LoadOptions {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 3))
	body := make([]byte, opts.AdBodySize)
	for i := range body {
		body[i] = byte('A' + i%26)
	}
	for i := 0; i < opts.Ads; i++ {
		cluster.Preload(AdKey(adRefName(i)), body)
	}
	for u := 0; u < opts.Profiles; u++ {
		n := 1 + rng.Intn(opts.MaxRefs)
		refs := make([]string, n)
		for j := range refs {
			refs[j] = adRefName(rng.Intn(opts.Ads))
		}
		cluster.Preload(ProfileKey(u), encodeRefs(refs))
	}
	return opts
}

// Ad is one served advertisement.
type Ad struct {
	Ref  string
	Body []byte
}

// FetchOutcome reports the timing of one FetchAdsByUserID call.
type FetchOutcome struct {
	// Ads is the served content.
	Ads []Ad
	// PrelimAt is the model-time latency of the preliminary reference list
	// (zero without ICG).
	PrelimAt time.Duration
	// Latency is the total model-time latency until the final ads were
	// delivered.
	Latency time.Duration
	// Speculative reports whether ICG speculation was used.
	Speculative bool
	// Misspeculated reports that the preliminary reference list diverged
	// from the final one, forcing a re-fetch.
	Misspeculated bool
}

// Service serves ads from a cassandra-backed store.
type Service struct {
	kv    *cassandra.KV
	clock netsim.Clock
	// MaxAdsPerRequest caps how many referenced ads are actually fetched
	// per request (a realistic page size; keeps load experiments bounded).
	MaxAdsPerRequest int
}

// NewService builds a service over a cassandra binding.
func NewService(b *cassandra.Binding) *Service {
	return &Service{
		kv:               cassandra.NewKV(b),
		clock:            b.Client().Cluster().Transport().Clock(),
		MaxAdsPerRequest: 5,
	}
}

// Client exposes the underlying Correctables client.
func (s *Service) Client() *binding.Client { return s.kv.Client() }

// getAds fetches and post-processes the ads named by an encoded reference
// list (the speculation function of Listing 4). Each ad is fetched with a
// strong read (R=2), like the paper's implementation: only the first,
// reference-list access uses ICG.
func (s *Service) getAds(refsEncoded []byte) ([]Ad, error) {
	refs := decodeRefs(refsEncoded)
	if len(refs) > s.MaxAdsPerRequest {
		refs = refs[:s.MaxAdsPerRequest]
	}
	if len(refs) == 0 {
		return nil, nil
	}
	type fetched struct {
		i   int
		ad  Ad
		err error
	}
	q := s.clock.NewQueue()
	for i, ref := range refs {
		i, ref := i, ref
		s.clock.Go(func() {
			v, err := s.kv.GetStrong(context.Background(), AdKey(ref)).Final(context.Background())
			if err != nil {
				q.Put(fetched{i: i, err: err})
				return
			}
			q.Put(fetched{i: i, ad: Ad{Ref: ref, Body: v.Value}})
		})
	}
	ads := make([]Ad, len(refs))
	var firstErr error
	for range refs {
		f := q.Get().(fetched)
		if f.err != nil && firstErr == nil {
			firstErr = f.err
			continue
		}
		ads[f.i] = f.ad
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return ads, nil
}

// FetchAdsByUserID implements Listing 4: read the personalized ad reference
// list with invoke, speculatively prefetch the ads on the preliminary view,
// and deliver once the final view confirms (or after re-fetching on
// misspeculation). With speculative=false it is the paper's baseline: a
// strong read of the references followed by the fetch.
func (s *Service) FetchAdsByUserID(ctx context.Context, uid int, speculative bool) (FetchOutcome, error) {
	sw := s.clock.StartStopwatch()
	var out FetchOutcome
	out.Speculative = speculative
	key := ProfileKey(uid)

	if !speculative {
		v, err := s.kv.GetStrong(ctx, key).Final(ctx)
		if err != nil {
			return out, err
		}
		ads, err := s.getAds(v.Value)
		if err != nil {
			return out, err
		}
		out.Ads = ads
		out.Latency = sw.ElapsedModel()
		return out, nil
	}

	refsCor := s.kv.Get(ctx, key)
	var prelimSeen core.View[[]byte]
	var sawPrelim bool
	refsCor.OnUpdate(func(v core.View[[]byte]) {
		if !v.Final && !sawPrelim {
			out.PrelimAt = sw.ElapsedModel()
			prelimSeen = v
			sawPrelim = true
		}
	})
	adsCor := core.Speculate(refsCor, func(v core.View[[]byte]) ([]Ad, error) {
		return s.getAds(v.Value)
	}, nil)
	v, err := adsCor.Final(ctx)
	if err != nil {
		return out, err
	}
	out.Ads = v.Value
	out.Latency = sw.ElapsedModel()
	if fv, ok := refsCor.Latest(); ok && sawPrelim {
		out.Misspeculated = !core.ValuesEqual(prelimSeen.Value, fv.Value)
	}
	return out, nil
}

// UpdateProfile overwrites a user's ad references (the write half of the
// YCSB workloads in Fig 11). Returns the model-time latency.
func (s *Service) UpdateProfile(ctx context.Context, uid int, refs []string) (time.Duration, error) {
	sw := s.clock.StartStopwatch()
	_, err := s.kv.Put(ctx, ProfileKey(uid), encodeRefs(refs)).Final(ctx)
	return sw.ElapsedModel(), err
}

// RandomRefs draws a fresh reference list for an update.
func RandomRefs(rng *rand.Rand, opts LoadOptions) []string {
	opts = opts.withDefaults()
	n := 1 + rng.Intn(opts.MaxRefs)
	refs := make([]string, n)
	for i := range refs {
		refs[i] = adRefName(rng.Intn(opts.Ads))
	}
	return refs
}
