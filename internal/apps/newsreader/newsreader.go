// Package newsreader implements the paper's smartphone news reader (§4.4,
// Listing 6): a news service replicated with a primary-backup scheme plus a
// local phone cache. One logical invoke fetches the latest news and the
// display refreshes with every incremental view — cache almost immediately,
// the closest backup a bit later, the distant primary last.
package newsreader

import (
	"context"
	"strings"
	"time"

	"correctables/internal/binding"
	"correctables/internal/causal"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// FeedKey is the single replicated object holding the headline list.
const FeedKey = "news:latest"

func encodeItems(items []string) []byte { return []byte(strings.Join(items, "\n")) }

func decodeItems(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	return strings.Split(string(b), "\n")
}

// Update is one display refresh: the headlines visible at some consistency
// level, with its model-time latency.
type Update struct {
	Items []string
	Level core.Level
	At    time.Duration
	Final bool
}

// Reader is the news reader app over a cache+causal binding.
type Reader struct {
	kv    *causal.KV
	clock netsim.Clock
}

// NewReader builds a reader over a causal-store binding.
func NewReader(b *causal.Binding) *Reader {
	return &Reader{
		kv:    causal.NewKV(b),
		clock: b.Client().Store().Config().Transport.Clock(),
	}
}

// Client exposes the underlying Correctables client.
func (r *Reader) Client() *binding.Client { return r.kv.Client() }

// GetLatestNews is Listing 6: one logical access, refreshDisplay on every
// update. It returns after the final view has been displayed, reporting all
// refreshes in order.
func (r *Reader) GetLatestNews(ctx context.Context, refreshDisplay func(Update)) ([]Update, error) {
	sw := r.clock.StartStopwatch()
	var updates []Update
	cor := r.kv.Get(ctx, FeedKey)
	cor.OnUpdate(func(v core.View[[]byte]) {
		u := Update{
			Items: decodeItems(v.Value),
			Level: v.Level,
			At:    sw.ElapsedModel(),
			Final: v.Final,
		}
		updates = append(updates, u)
		if refreshDisplay != nil {
			refreshDisplay(u)
		}
	})
	if _, err := cor.Final(ctx); err != nil {
		return nil, err
	}
	return updates, nil
}

// Publish prepends a headline to the feed (newsroom side; goes through the
// primary with write-through coherence).
func (r *Reader) Publish(ctx context.Context, headline string, keep int) error {
	v, err := r.kv.GetStrong(ctx, FeedKey).Final(ctx)
	if err != nil {
		return err
	}
	items := append([]string{headline}, decodeItems(v.Value)...)
	if keep > 0 && len(items) > keep {
		items = items[:keep]
	}
	_, err = r.kv.Put(ctx, FeedKey, encodeItems(items)).Final(ctx)
	return err
}
