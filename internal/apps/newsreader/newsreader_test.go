package newsreader

import (
	"context"
	"testing"
	"time"

	"correctables/internal/causal"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

func newReader(t *testing.T) (*Reader, *causal.Store) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	store, err := causal.NewStore(causal.Config{
		Primary:     netsim.VRG,
		Backups:     []netsim.Region{netsim.FRK, netsim.IRL},
		Transport:   tr,
		ServiceTime: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := causal.NewClient(store, netsim.IRL)
	return NewReader(causal.NewBinding(client)), store
}

func TestColdCacheTwoRefreshes(t *testing.T) {
	r, store := newReader(t)
	store.Preload(FeedKey, []byte("headline-1\nheadline-2"))
	var refreshes []Update
	updates, err := r.GetLatestNews(context.Background(), func(u Update) {
		refreshes = append(refreshes, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cold cache: causal + strong only.
	if len(updates) != 2 {
		t.Fatalf("updates = %+v", updates)
	}
	if len(refreshes) != len(updates) {
		t.Errorf("refreshDisplay called %d times, %d updates", len(refreshes), len(updates))
	}
	if updates[0].Level != core.LevelCausal || updates[1].Level != core.LevelStrong {
		t.Errorf("levels = %v, %v", updates[0].Level, updates[1].Level)
	}
	if len(updates[1].Items) != 2 || updates[1].Items[0] != "headline-1" {
		t.Errorf("items = %v", updates[1].Items)
	}
	if !updates[1].Final || updates[0].Final {
		t.Error("finality flags wrong")
	}
}

func TestWarmCacheThreeRefreshesOrderedLatency(t *testing.T) {
	r, store := newReader(t)
	store.Preload(FeedKey, []byte("old"))
	if _, err := r.GetLatestNews(context.Background(), nil); err != nil {
		t.Fatal(err) // warms cache
	}
	updates, err := r.GetLatestNews(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 3 {
		t.Fatalf("warm-cache updates = %d, want 3 (cache, causal, strong)", len(updates))
	}
	// The three views arrive in increasing latency: cache near-zero, then
	// the IRL backup (local), then the VRG primary (~83ms RTT).
	if updates[0].Level != core.LevelCache {
		t.Errorf("first level = %v", updates[0].Level)
	}
	if !(updates[0].At <= updates[1].At && updates[1].At <= updates[2].At) {
		t.Errorf("latencies not monotone: %v %v %v", updates[0].At, updates[1].At, updates[2].At)
	}
	if updates[2].At < 60*time.Millisecond {
		t.Errorf("strong view at %v, want ~83ms (IRL->VRG RTT)", updates[2].At)
	}
}

func TestPublishThenRead(t *testing.T) {
	r, store := newReader(t)
	store.Preload(FeedKey, []byte("old-1\nold-2"))
	if err := r.Publish(context.Background(), "breaking!", 3); err != nil {
		t.Fatal(err)
	}
	updates, err := r.GetLatestNews(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	final := updates[len(updates)-1]
	if len(final.Items) != 3 || final.Items[0] != "breaking!" {
		t.Errorf("final items = %v", final.Items)
	}
}

func TestStaleCacheFreshFinal(t *testing.T) {
	r, store := newReader(t)
	store.Preload(FeedKey, []byte("stale-headline"))
	if _, err := r.GetLatestNews(context.Background(), nil); err != nil {
		t.Fatal(err) // warm cache with the stale value
	}
	// The newsroom (another client) publishes via the primary.
	writer := NewReader(causal.NewBinding(causal.NewClient(store, netsim.NCA)))
	if err := writer.Publish(context.Background(), "fresh-headline", 0); err != nil {
		t.Fatal(err)
	}
	updates, err := r.GetLatestNews(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last := updates[0], updates[len(updates)-1]
	if first.Level != core.LevelCache || first.Items[0] != "stale-headline" {
		t.Errorf("cache view = %+v", first)
	}
	if last.Items[0] != "fresh-headline" {
		t.Errorf("final view = %+v", last)
	}
}
