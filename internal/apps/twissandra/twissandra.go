// Package twissandra implements the paper's microblogging case study
// (§6.3.1, Fig 11): a Twissandra-like service whose central operation,
// get_timeline, proceeds in two steps — (1) fetch the timeline (tweet IDs),
// (2) fetch each tweet by ID. With ICG, step (1) uses invoke and step (2)
// runs speculatively on the preliminary timeline view, prefetching tweets
// while the strongly consistent timeline is still in flight.
//
// The paper used a 65k-tweet corpus spread over 22k user timelines; Load
// generates a deterministic synthetic corpus with the same shape.
package twissandra

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// Corpus shape from the paper.
const (
	DefaultTweets    = 65_000
	DefaultTimelines = 22_000
	// TimelinePage is how many recent tweets a timeline holds/serves.
	TimelinePage = 10
)

// TimelineKey / TweetKey are the storage schema.
func TimelineKey(user int) string { return fmt.Sprintf("timeline:%06d", user) }
func TweetKey(id int) string      { return fmt.Sprintf("tweet:%08d", id) }

func encodeIDs(ids []int) []byte {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return []byte(strings.Join(parts, ","))
}

func decodeIDs(b []byte) []int {
	if len(b) == 0 {
		return nil
	}
	parts := strings.Split(string(b), ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		var id int
		if _, err := fmt.Sscanf(p, "%d", &id); err == nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// LoadOptions sizes the synthetic corpus.
type LoadOptions struct {
	Tweets, Timelines int
	Seed              int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Tweets == 0 {
		o.Tweets = DefaultTweets
	}
	if o.Timelines == 0 {
		o.Timelines = DefaultTimelines
	}
	return o
}

// Load preloads the corpus: every tweet body, and per-user timelines
// referencing up to TimelinePage random tweets.
func Load(cluster *cassandra.Cluster, opts LoadOptions) LoadOptions {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 5))
	for i := 0; i < opts.Tweets; i++ {
		body := fmt.Sprintf("tweet %08d: the quick brown fox jumps over the lazy dog #%d", i, i%97)
		cluster.Preload(TweetKey(i), []byte(body))
	}
	for u := 0; u < opts.Timelines; u++ {
		n := 1 + rng.Intn(TimelinePage)
		ids := make([]int, n)
		for j := range ids {
			ids[j] = rng.Intn(opts.Tweets)
		}
		cluster.Preload(TimelineKey(u), encodeIDs(ids))
	}
	return opts
}

// Tweet is one rendered tweet.
type Tweet struct {
	ID   int
	Body string
}

// TimelineOutcome reports the timing of one GetTimeline call.
type TimelineOutcome struct {
	Tweets        []Tweet
	PrelimAt      time.Duration
	Latency       time.Duration
	Speculative   bool
	Misspeculated bool
}

// Service is the microblogging service over a cassandra binding. Each user
// acts through a session (UserSession): their operations are
// read-your-writes and monotonic-reads consistent per key, so a user who
// just posted always sees the post in their own timeline read — at any
// consistency level — while other users keep the cheap eventually
// consistent views.
type Service struct {
	kv    *cassandra.KV
	clock netsim.Clock

	mu       sync.Mutex
	sessions map[int]*binding.Session
}

// NewService builds a service over a cassandra binding; opts configure the
// underlying client (observers, op timeout, label).
func NewService(b *cassandra.Binding, opts ...binding.Option) *Service {
	return &Service{
		kv:       cassandra.NewKV(b, opts...),
		clock:    b.Client().Cluster().Transport().Clock(),
		sessions: map[int]*binding.Session{},
	}
}

// Client exposes the underlying Correctables client.
func (s *Service) Client() *binding.Client { return s.kv.Client() }

// UserSession returns the per-user session, opening it on first use.
func (s *Service) UserSession(user int) *binding.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[user]
	if !ok {
		sess = s.kv.Session()
		s.sessions[user] = sess
	}
	return sess
}

// fetchTweets loads tweet bodies by ID in parallel with strong reads
// (step (2); the speculation function).
func (s *Service) fetchTweets(encoded []byte) ([]Tweet, error) {
	ids := decodeIDs(encoded)
	if len(ids) == 0 {
		return nil, nil
	}
	type fetched struct {
		i     int
		tweet Tweet
		err   error
	}
	q := s.clock.NewQueue()
	for i, id := range ids {
		i, id := i, id
		s.clock.Go(func() {
			v, err := s.kv.GetStrong(context.Background(), TweetKey(id)).Final(context.Background())
			if err != nil {
				q.Put(fetched{i: i, err: err})
				return
			}
			q.Put(fetched{i: i, tweet: Tweet{ID: id, Body: string(v.Value)}})
		})
	}
	tweets := make([]Tweet, len(ids))
	var firstErr error
	for range ids {
		f := q.Get().(fetched)
		if f.err != nil && firstErr == nil {
			firstErr = f.err
			continue
		}
		tweets[f.i] = f.tweet
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return tweets, nil
}

// GetTimeline renders a user's timeline. With speculative=true it uses
// invoke on the timeline key and prefetches tweets on the preliminary view;
// otherwise it is the strong-read baseline.
func (s *Service) GetTimeline(ctx context.Context, user int, speculative bool) (TimelineOutcome, error) {
	sw := s.clock.StartStopwatch()
	var out TimelineOutcome
	out.Speculative = speculative
	key := TimelineKey(user)

	sess := s.UserSession(user)
	if !speculative {
		v, err := binding.SessionInvokeStrong[[]byte](ctx, sess, binding.Get{Key: key}).Final(ctx)
		if err != nil {
			return out, err
		}
		tweets, err := s.fetchTweets(v.Value)
		if err != nil {
			return out, err
		}
		out.Tweets = tweets
		out.Latency = sw.ElapsedModel()
		return out, nil
	}

	// The timeline read goes through the user's session: a preliminary
	// view older than anything this user already saw (or posted) is
	// suppressed rather than speculated on.
	tlCor := sess.Get(ctx, key)
	var prelimSeen core.View[[]byte]
	var sawPrelim bool
	tlCor.OnUpdate(func(v core.View[[]byte]) {
		if !v.Final && !sawPrelim {
			out.PrelimAt = sw.ElapsedModel()
			prelimSeen = v
			sawPrelim = true
		}
	})
	tweetsCor := core.Speculate(tlCor, func(v core.View[[]byte]) ([]Tweet, error) {
		return s.fetchTweets(v.Value)
	}, nil)
	v, err := tweetsCor.Final(ctx)
	if err != nil {
		return out, err
	}
	out.Tweets = v.Value
	out.Latency = sw.ElapsedModel()
	if fv, ok := tlCor.Latest(); ok && sawPrelim {
		out.Misspeculated = !core.ValuesEqual(prelimSeen.Value, fv.Value)
	}
	return out, nil
}

// PostTweet writes a tweet body and prepends its ID to the author's
// timeline (read-modify-write), trimming to TimelinePage. Returns the
// model-time latency.
//
// The read-modify-write runs through the author's session: the cheap weak
// read of the timeline is still a single-replica read, but read-your-writes
// makes it safe — without it, a stale replica could serve a timeline
// missing the author's previous post, and the rewrite would silently drop
// it.
func (s *Service) PostTweet(ctx context.Context, user int, body string, rng *rand.Rand) (time.Duration, error) {
	sw := s.clock.StartStopwatch()
	sess := s.UserSession(user)
	id := int(rng.Int31())
	if _, err := binding.SessionInvokeStrong[binding.Ack](ctx, sess, binding.Put{Key: TweetKey(id), Value: []byte(body)}).Final(ctx); err != nil {
		return 0, err
	}
	key := TimelineKey(user)
	v, err := sess.GetWeak(ctx, key).Final(ctx)
	if err != nil {
		return 0, err
	}
	ids := append([]int{id}, decodeIDs(v.Value)...)
	if len(ids) > TimelinePage {
		ids = ids[:TimelinePage]
	}
	if _, err := sess.Put(ctx, key, encodeIDs(ids)).Final(ctx); err != nil {
		return 0, err
	}
	return sw.ElapsedModel(), nil
}
