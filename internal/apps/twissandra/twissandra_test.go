package twissandra

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"correctables/internal/cassandra"
	"correctables/internal/netsim"
)

func newService(t *testing.T, correctable bool) *Service {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	// Twissandra's deployment in the paper: Virginia, N. California,
	// Oregon; client in Ireland contacting Virginia.
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          []netsim.Region{netsim.VRG, netsim.NCA, netsim.ORE},
		Transport:        tr,
		Correctable:      correctable,
		ConfirmationOpt:  true,
		ReadServiceTime:  50 * time.Microsecond,
		WriteServiceTime: 50 * time.Microsecond,
		FlushServiceTime: 20 * time.Microsecond,
		Workers:          16,
	})
	if err != nil {
		t.Fatal(err)
	}
	Load(cluster, LoadOptions{Tweets: 300, Timelines: 40, Seed: 1})
	b := cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.VRG), cassandra.BindingConfig{})
	return NewService(b)
}

func TestGetTimelineBaseline(t *testing.T) {
	s := newService(t, false)
	out, err := s.GetTimeline(context.Background(), 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tweets) == 0 {
		t.Fatal("empty timeline")
	}
	for _, tw := range out.Tweets {
		if tw.Body == "" {
			t.Errorf("tweet %d has empty body", tw.ID)
		}
	}
}

func TestGetTimelineSpeculativeFaster(t *testing.T) {
	spec := newService(t, true)
	base := newService(t, false)
	var specTotal, baseTotal time.Duration
	const n = 6
	for u := 0; u < n; u++ {
		so, err := spec.GetTimeline(context.Background(), u, true)
		if err != nil {
			t.Fatal(err)
		}
		bo, err := base.GetTimeline(context.Background(), u, false)
		if err != nil {
			t.Fatal(err)
		}
		if so.Misspeculated {
			t.Errorf("misspeculation on quiescent corpus (user %d)", u)
		}
		if len(so.Tweets) != len(bo.Tweets) {
			t.Errorf("user %d: %d vs %d tweets", u, len(so.Tweets), len(bo.Tweets))
		}
		specTotal += so.Latency
		baseTotal += bo.Latency
	}
	if specTotal >= baseTotal {
		t.Errorf("speculation slower: %v vs %v", specTotal/n, baseTotal/n)
	}
}

func TestPostTweetAppearsInTimeline(t *testing.T) {
	s := newService(t, true)
	rng := rand.New(rand.NewSource(2))
	lat, err := s.PostTweet(context.Background(), 3, "hello incremental world", rng)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("post latency not measured")
	}
	out, err := s.GetTimeline(context.Background(), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tweets) == 0 || out.Tweets[0].Body != "hello incremental world" {
		t.Errorf("timeline head = %+v", out.Tweets)
	}
}

func TestTimelineTrimsToPage(t *testing.T) {
	s := newService(t, false)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < TimelinePage+5; i++ {
		if _, err := s.PostTweet(context.Background(), 9, "spam", rng); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.GetTimeline(context.Background(), 9, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tweets) != TimelinePage {
		t.Errorf("timeline length = %d, want %d", len(out.Tweets), TimelinePage)
	}
}

func TestEncodeDecodeIDs(t *testing.T) {
	ids := []int{1, 42, 99999}
	got := decodeIDs(encodeIDs(ids))
	if len(got) != len(ids) {
		t.Fatalf("roundtrip = %v", got)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("roundtrip = %v", got)
		}
	}
	if decodeIDs(nil) != nil {
		t.Error("decode(nil) should be nil")
	}
	if got := decodeIDs([]byte("7,bogus,9")); len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("malformed decode = %v", got)
	}
}
