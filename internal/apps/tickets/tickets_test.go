package tickets

import (
	"context"
	"sync"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

func newRetailer(t *testing.T, correctable bool, stock int) (*Retailer, *zk.Ensemble) {
	r, e, _ := newRetailerClock(t, correctable, stock)
	return r, e
}

func newRetailerClock(t *testing.T, correctable bool, stock int) (*Retailer, *zk.Ensemble, netsim.Clock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	// Fig 12 deployment: retailers colocated with the FRK follower, leader
	// in IRL.
	e, err := zk.NewEnsemble(zk.Config{
		Regions:      []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion: netsim.IRL,
		Transport:    tr,
		Correctable:  correctable,
		ServiceTime:  50 * time.Microsecond,
		Workers:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	Stock(e, "concert", stock)
	b := zk.NewBinding(zk.NewQueueClient(e, netsim.FRK, netsim.FRK))
	return NewRetailer(b), e, clock
}

// assignedTicket reads the committed dequeue outcome of one purchase.
func assignedTicket(res PurchaseResult) binding.Item {
	it, _ := res.Assigned.Get().(binding.Item)
	return it
}

func TestPurchaseAboveThresholdUsesPreliminary(t *testing.T) {
	r, _ := newRetailer(t, true, 100)
	res, err := r.PurchaseTicket(context.Background(), "concert")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed || res.SoldOut {
		t.Fatalf("res = %+v", res)
	}
	if !res.UsedPreliminary {
		t.Error("large stock should confirm on the preliminary view")
	}
	// Preliminary confirmation latency = client<->contact RTT (~2ms local,
	// retailer colocated with the FRK follower); far below the
	// coordination latency (~60ms).
	if res.Latency > 40*time.Millisecond {
		t.Errorf("preliminary purchase latency = %v, want well under coordination latency", res.Latency)
	}
	// The background dequeue assigns a concrete ticket.
	if !assignedTicket(res).Exists {
		t.Error("no ticket assigned despite large stock")
	}
	if r.Revoked() != 0 {
		t.Errorf("revoked = %d", r.Revoked())
	}
}

func TestPurchaseBelowThresholdWaitsForFinal(t *testing.T) {
	r, _ := newRetailer(t, true, DefaultThreshold) // at/below threshold from the start
	res, err := r.PurchaseTicket(context.Background(), "concert")
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedPreliminary {
		t.Error("low stock must wait for the final view")
	}
	if !res.Confirmed {
		t.Fatal("ticket expected while stock remains")
	}
	if res.Latency < 40*time.Millisecond {
		t.Errorf("final-view purchase latency = %v, want coordination-scale (~60ms)", res.Latency)
	}
	if !assignedTicket(res).Exists {
		t.Error("no assigned ticket")
	}
}

func TestSellOutExactlyOnce(t *testing.T) {
	const stock = 40
	r, _, clock := newRetailerClock(t, true, stock)
	var mu sync.Mutex
	sold := map[string]int{}
	soldOut, confirmed := 0, 0
	wg := clock.NewGroup()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			for {
				res, err := r.PurchaseTicket(context.Background(), "concert")
				if err != nil {
					t.Error(err)
					return
				}
				if res.SoldOut {
					mu.Lock()
					soldOut++
					mu.Unlock()
					return
				}
				ticket := assignedTicket(res)
				mu.Lock()
				confirmed++
				if ticket.Exists {
					sold[ticket.ID]++
				}
				mu.Unlock()
			}
		})
	}
	wg.Wait()
	if len(sold) != stock {
		t.Errorf("sold %d distinct tickets, want %d", len(sold), stock)
	}
	for name, n := range sold {
		if n != 1 {
			t.Errorf("ticket %s assigned %d times (oversold!)", name, n)
		}
	}
	if soldOut != 4 {
		t.Errorf("%d retailers saw sold-out, want 4", soldOut)
	}
	// With the conservative threshold (20 >> 4 concurrent retailers), no
	// preliminary confirmation is revoked.
	if r.Revoked() != 0 {
		t.Errorf("revoked = %d, want 0", r.Revoked())
	}
}

func TestThresholdSwitchesLatencyRegime(t *testing.T) {
	// The shape of Fig 12: purchases far from the end are fast
	// (preliminary), the last <=Threshold are slow (final).
	const stock = 60
	r, _ := newRetailer(t, true, stock)
	var fast, slow []time.Duration
	for {
		res, err := r.PurchaseTicket(context.Background(), "concert")
		if err != nil {
			t.Fatal(err)
		}
		if res.SoldOut {
			break
		}
		if res.UsedPreliminary {
			fast = append(fast, res.Latency)
		} else {
			slow = append(slow, res.Latency)
		}
		assignedTicket(res) // serialize purchases so the regime boundary is crisp
	}
	if len(fast) == 0 || len(slow) == 0 {
		t.Fatalf("fast=%d slow=%d; both regimes expected", len(fast), len(slow))
	}
	// Roughly the last Threshold purchases are in the slow regime.
	if len(slow) < DefaultThreshold-5 || len(slow) > DefaultThreshold+10 {
		t.Errorf("slow purchases = %d, want ~%d", len(slow), DefaultThreshold)
	}
	avg := func(ds []time.Duration) time.Duration {
		var tot time.Duration
		for _, d := range ds {
			tot += d
		}
		return tot / time.Duration(len(ds))
	}
	if avg(fast)*2 > avg(slow) {
		t.Errorf("fast avg %v not clearly below slow avg %v", avg(fast), avg(slow))
	}
}

func TestVanillaBaselineAlwaysSlow(t *testing.T) {
	r, _ := newRetailer(t, false, 30)
	res, err := r.PurchaseTicketStrong(context.Background(), "concert")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confirmed {
		t.Fatal("no ticket")
	}
	if res.Latency < 40*time.Millisecond {
		t.Errorf("vanilla purchase latency = %v, want coordination-scale", res.Latency)
	}
	if !assignedTicket(res).Exists {
		t.Error("no assigned ticket")
	}
}

func TestSoldOutStrong(t *testing.T) {
	r, _ := newRetailer(t, false, 0)
	res, err := r.PurchaseTicketStrong(context.Background(), "concert")
	if err != nil {
		t.Fatal(err)
	}
	if !res.SoldOut || res.Confirmed {
		t.Errorf("res = %+v, want sold out", res)
	}
}

func TestNoOversellAcrossRegimes(t *testing.T) {
	// Assigned tickets never exceed the stock even when retailers confirm
	// on preliminary views near the threshold boundary.
	const stock = 35
	r, e := newRetailer(t, true, stock)
	assignedTotal := 0
	for {
		res, err := r.PurchaseTicket(context.Background(), "concert")
		if err != nil {
			t.Fatal(err)
		}
		if res.SoldOut {
			break
		}
		if assignedTicket(res).Exists {
			assignedTotal++
		}
		if assignedTotal > stock {
			t.Fatal("oversold")
		}
	}
	if assignedTotal != stock {
		t.Errorf("assigned %d, want %d", assignedTotal, stock)
	}
	// Queue is empty on the leader.
	kids, err := e.Leader().Tree().Children("/queues/concert")
	if err != nil || len(kids) != 0 {
		t.Errorf("leader queue after sellout: %v, %v", kids, err)
	}
}
