// Package tickets implements the paper's ticket-selling case study (§4.3,
// Listing 5; evaluated in §6.3.2 / Fig 12): selling tickets from a fixed
// stock modeled as a replicated queue. While the stock is large, a weakly
// consistent (preliminary) dequeue result is safe — tickets bear no
// specific ordering, so it is irrelevant which exact element is dequeued —
// and the purchase confirms immediately, with the actual dequeue completing
// in the background. Once the stock drops below a threshold, the retailer
// waits for the final (atomic) result to avoid overselling.
package tickets

import (
	"context"
	"fmt"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// DefaultThreshold is the stock size below which retailers wait for strong
// consistency (the paper uses the last 20 tickets).
const DefaultThreshold = 20

// PurchaseResult is the outcome of one PurchaseTicket call. The purchase
// *decision* (Confirmed/SoldOut and its Latency) may be taken on the
// preliminary view; the concrete ticket is whatever the background atomic
// dequeue assigns, delivered through Assigned.
type PurchaseResult struct {
	// Confirmed reports a successful purchase decision.
	Confirmed bool
	// SoldOut reports an empty stock.
	SoldOut bool
	// UsedPreliminary reports that the decision was taken on the weak view
	// (stock above threshold) without waiting for coordination.
	UsedPreliminary bool
	// Latency is the model-time latency until the purchase decision.
	Latency time.Duration
	// Remaining is the stock estimate at decision time.
	Remaining int
	// Assigned resolves (exactly one Put) with the ticket the committed
	// dequeue assigned — a binding.Item with Exists == false if the final
	// view found the queue empty (a revoked preliminary confirmation, or a
	// sold-out decision). Read it with Assigned.Get().(binding.Item).
	Assigned netsim.Queue
}

// Retailer sells tickets from a queue-backed stock.
type Retailer struct {
	queue     *zk.Queue
	clock     netsim.Clock
	Threshold int

	mu      sync.Mutex
	revoked int
}

// NewRetailer builds a retailer over a zk queue binding.
func NewRetailer(b *zk.Binding) *Retailer {
	return &Retailer{
		queue:     zk.NewQueue(b),
		clock:     b.QueueClient().Ensemble().Transport().Clock(),
		Threshold: DefaultThreshold,
	}
}

// Client exposes the underlying Correctables client.
func (r *Retailer) Client() *binding.Client { return r.queue.Client() }

// Revoked returns how many preliminary-confirmed purchases were later
// contradicted by an empty final view. (The paper reports on average the
// last ~2 tickets revoked with their conservative threshold of 20.)
func (r *Retailer) Revoked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.revoked
}

// PurchaseTicket implements Listing 5 with ICG: invoke(dequeue) yields a
// preliminary view (local simulation) and a final view (atomic dequeue).
// If the preliminary shows plenty of stock, the purchase decision confirms
// immediately and the dequeue completes in the background; otherwise the
// retailer waits for the final view.
func (r *Retailer) PurchaseTicket(ctx context.Context, event string) (PurchaseResult, error) {
	sw := r.clock.StartStopwatch()
	cor := r.queue.Dequeue(ctx, event)

	assigned := r.clock.NewQueue()
	type decision struct {
		res PurchaseResult
		err error
	}
	decided := r.clock.NewQueue()
	var once sync.Once
	decidedEarly := false

	cor.SetCallbacks(core.Callbacks[binding.Item]{
		OnUpdate: func(v core.View[binding.Item]) {
			q := v.Value
			if !v.Final {
				// Listing 5's onUpdate: many tickets left => confirm on the
				// weak result; the dequeue completes in the background.
				if q.Exists && q.Remaining > r.Threshold {
					decidedEarly = true
					once.Do(func() {
						decided.Put(decision{res: PurchaseResult{
							Confirmed:       true,
							UsedPreliminary: true,
							Latency:         sw.ElapsedModel(),
							Remaining:       q.Remaining,
							Assigned:        assigned,
						}})
					})
				}
				return
			}
			// Listing 5's onFinal: the committed outcome.
			assigned.Put(q)
			if decidedEarly {
				if !q.Exists {
					r.mu.Lock()
					r.revoked++
					r.mu.Unlock()
				}
				return
			}
			once.Do(func() {
				decided.Put(decision{res: PurchaseResult{
					Confirmed: q.Exists,
					SoldOut:   !q.Exists,
					Latency:   sw.ElapsedModel(),
					Remaining: q.Remaining,
					Assigned:  assigned,
				}})
			})
		},
		OnError: func(err error) {
			once.Do(func() { decided.Put(decision{err: err}) })
		},
	})

	d := decided.Get().(decision)
	return d.res, d.err
}

// PurchaseTicketStrong is the vanilla-ZooKeeper baseline: always wait for
// the atomic dequeue.
func (r *Retailer) PurchaseTicketStrong(ctx context.Context, event string) (PurchaseResult, error) {
	sw := r.clock.StartStopwatch()
	v, err := r.queue.DequeueStrong(ctx, event).Final(ctx)
	if err != nil {
		return PurchaseResult{}, err
	}
	q := v.Value
	assigned := r.clock.NewQueue()
	assigned.Put(q)
	return PurchaseResult{
		Confirmed: q.Exists,
		SoldOut:   !q.Exists,
		Latency:   sw.ElapsedModel(),
		Remaining: q.Remaining,
		Assigned:  assigned,
	}, nil
}

// Stock sets up an event's ticket stock: it creates the queue directory and
// enqueues n tickets directly (no protocol traffic, like an organizer's
// offline load).
func Stock(e *zk.Ensemble, event string, n int) {
	e.Bootstrap(zk.CreateTxn{Path: "/queues"})
	e.Bootstrap(zk.CreateTxn{Path: "/queues/" + event})
	for i := 0; i < n; i++ {
		e.Bootstrap(zk.CreateTxn{
			Path:       fmt.Sprintf("/queues/%s/q-", event),
			Data:       []byte(fmt.Sprintf("ticket-%04d", i)),
			Sequential: true,
		})
	}
}
