package causal

import (
	"context"
	"fmt"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

// Client is a cache-equipped client of a causal store, pinned to a region.
type Client struct {
	store  *Store
	Region netsim.Region

	mu    sync.Mutex
	cache map[string]Entry
}

// NewClient creates a client in the given region with an empty cache.
func NewClient(store *Store, region netsim.Region) *Client {
	return &Client{store: store, Region: region, cache: map[string]Entry{}}
}

// Store returns the client's store.
func (c *Client) Store() *Store { return c.store }

// CacheGet returns the cached entry for key.
func (c *Client) CacheGet(key string) Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache[key]
}

// cacheMerge installs e if newer than the cached entry (coherence on reads
// and write-through on writes — the manual juggling Listing 1 does, hidden
// behind the binding as Listing 2 advocates).
func (c *Client) cacheMerge(key string, e Entry) {
	c.mu.Lock()
	if e.newer(c.cache[key]) {
		c.cache[key] = e
	}
	c.mu.Unlock()
}

// Binding adapts a Client to the Correctables binding API with three
// levels: cache, causal (nearest backup), strong (primary).
type Binding struct {
	client *Client
}

var _ binding.Binding = (*Binding)(nil)

// NewBinding wraps a client.
func NewBinding(client *Client) *Binding { return &Binding{client: client} }

// Client returns the underlying client.
func (b *Binding) Client() *Client { return b.client }

// ConsistencyLevels implements binding.Binding.
func (b *Binding) ConsistencyLevels() core.Levels {
	return core.Levels{core.LevelCache, core.LevelCausal, core.LevelStrong}
}

// Close implements binding.Binding.
func (b *Binding) Close() error { return nil }

// SubmitOperation implements binding.Binding. The client library bounds
// each invocation with the binding's DefaultOpTimeout (model time): an
// unreachable replica fails the Correctable with faults.ErrUnreachable
// (OnError) while already-delivered weaker views stand, and late views are
// refused by the closed Correctable — the per-store deadline plumbing that
// used to live here moved into the invoke pipeline.
func (b *Binding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	b.client.store.tr.Clock().Go(func() {
		switch o := op.(type) {
		case binding.Get:
			b.get(o, levels, cb)
		case binding.Put:
			b.put(o, levels, cb)
		default:
			cb(binding.Result{Err: fmt.Errorf("%w: causal store has no %q", binding.ErrUnsupportedOperation, op.OpName())})
		}
	})
}

// Scheduler implements binding.SchedulerProvider: Correctables over this
// binding block through the store's simulation clock.
func (b *Binding) Scheduler() core.Scheduler {
	return binding.SchedulerFor(b.client.store.tr.Clock())
}

// Versions implements binding.Versioner: views carry the store's
// primary-issued entry versions as tokens.
func (b *Binding) Versions() bool { return true }

// DefaultOpTimeout implements binding.TimeoutProvider: under fault
// injection each invocation is bounded by the store's OpTimeout of model
// time.
func (b *Binding) DefaultOpTimeout() time.Duration {
	st := b.client.store
	if st.tr.Interceptor() == nil {
		return 0
	}
	return st.cfg.OpTimeout
}

// get fans one logical access out to up to three actual requests (§4.4) and
// delivers their responses in level order. A cache miss simply skips the
// cache-level view.
func (b *Binding) get(op binding.Get, levels core.Levels, cb binding.Callback) {
	c := b.client
	strongest := levels.Strongest()
	emit := func(e Entry, level core.Level) {
		var val []byte
		if e.Exists {
			val = append([]byte(nil), e.Value...)
		}
		cb(binding.Result{Value: val, Level: level, Version: e.Ver})
	}

	// Launch the remote reads in parallel.
	clock := c.store.tr.Clock()
	var causalQ, strongQ netsim.Queue
	if levels.Contains(core.LevelCausal) {
		causalQ = clock.NewQueue()
		clock.Go(func() {
			e := c.store.read(c.Region, c.store.nearestBackup(c.Region), op.Key)
			causalQ.Put(e)
		})
	}
	if levels.Contains(core.LevelStrong) {
		strongQ = clock.NewQueue()
		clock.Go(func() {
			e := c.store.read(c.Region, c.store.cfg.Primary, op.Key)
			c.cacheMerge(op.Key, e)
			strongQ.Put(e)
		})
	}

	// Deliver in level order: cache (immediately, if hit), causal, strong.
	if levels.Contains(core.LevelCache) {
		if e := c.CacheGet(op.Key); e.Exists {
			emit(e, core.LevelCache)
		} else if strongest == core.LevelCache {
			// Cache-only request with a miss: report absence.
			emit(Entry{}, core.LevelCache)
		}
	}
	if causalQ != nil {
		// The backup lags the primary by the propagation delay, so its raw
		// entry can be *older* than what this client has already observed —
		// through its cache (populated by earlier writes and strong reads)
		// or through the cache view delivered a moment ago. Serving that
		// stale entry would break the ladder's causal cut: each view must
		// refine, never regress, the ones before it. The causal view is
		// therefore the max of the backup's entry and the client's causal
		// past; the merged entry also refreshes the cache. The primary's
		// per-key version is always ≥ every backup's, so the strong view
		// still dominates.
		e := causalQ.Get().(Entry)
		c.cacheMerge(op.Key, e)
		if cached := c.CacheGet(op.Key); cached.newer(e) {
			e = cached
		}
		emit(e, core.LevelCausal)
	}
	if strongQ != nil {
		e := strongQ.Get().(Entry)
		c.cacheMerge(op.Key, e)
		emit(e, core.LevelStrong)
	}
}

// put writes through the primary and the local cache.
func (b *Binding) put(op binding.Put, levels core.Levels, cb binding.Callback) {
	c := b.client
	e := c.store.write(c.Region, op.Key, op.Value)
	c.cacheMerge(op.Key, e)
	cb(binding.Result{Value: nil, Level: levels.Strongest(), Version: e.Ver})
}
