package causal

import (
	"context"
	"errors"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// newFaultedStore builds a primary/backup store on a virtual-clock
// transport with a schedule-less injector attached.
func newFaultedStore(t *testing.T) (*Store, *faults.Injector, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	inj := faults.Attach(tr, nil, 1)
	s, err := NewStore(Config{
		Primary:          netsim.FRK,
		Backups:          []netsim.Region{netsim.IRL, netsim.VRG},
		Transport:        tr,
		ServiceTime:      100 * time.Microsecond,
		PropagationDelay: 5 * time.Millisecond,
		OpTimeout:        400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, inj, clock
}

// TestCrashedBackupResyncsOnRestart: propagations to a crashed backup are
// dropped in flight, leaving a version gap the in-order delivery buffer
// alone could never fill; the restart transition resyncs the backup from
// the primary by state transfer.
func TestCrashedBackupResyncsOnRestart(t *testing.T) {
	s, inj, clock := newFaultedStore(t)
	client := NewClient(s, netsim.IRL)
	bc := binding.NewClient(NewBinding(client))
	ctx := context.Background()

	put := func(key, val string) {
		t.Helper()
		if _, err := binding.InvokeStrong[binding.Ack](ctx, bc, binding.Put{Key: key, Value: []byte(val)}).Final(ctx); err != nil {
			t.Fatal(err)
		}
	}
	put("k", "v1")
	clock.Sleep(time.Second) // propagation reaches both backups

	inj.Apply(faults.Crash{Region: netsim.VRG})
	put("k", "v2")
	put("k", "v3")
	clock.Sleep(time.Second)
	if e := s.ReplicaEntry(netsim.VRG, "k"); string(e.Value) != "v1" {
		t.Fatalf("crashed backup advanced to %q", e.Value)
	}

	inj.Apply(faults.Restart{Region: netsim.VRG})
	clock.Sleep(time.Second) // state transfer travels primary->VRG
	if e := s.ReplicaEntry(netsim.VRG, "k"); string(e.Value) != "v3" {
		t.Fatalf("restarted backup at %q, want v3 after resync", e.Value)
	}
	// And the version gap is really gone: a further write applies normally
	// through the regular propagation path.
	put("k", "v4")
	clock.Sleep(time.Second)
	if e := s.ReplicaEntry(netsim.VRG, "k"); string(e.Value) != "v4" {
		t.Fatalf("post-recovery propagation stuck at %q", e.Value)
	}
	inj.Quiesce()
	clock.Drain()
}

// TestUnreachablePrimarySurfacesOnError: with the primary down, a
// cache+causal+strong invoke still delivers its weaker views but fails
// with faults.ErrUnreachable instead of hanging on the strong read.
func TestUnreachablePrimarySurfacesOnError(t *testing.T) {
	s, inj, clock := newFaultedStore(t)
	client := NewClient(s, netsim.IRL)
	bc := binding.NewClient(NewBinding(client))
	ctx := context.Background()

	if _, err := binding.InvokeStrong[binding.Ack](ctx, bc, binding.Put{Key: "k", Value: []byte("v")}).Final(ctx); err != nil {
		t.Fatal(err)
	}
	clock.Sleep(time.Second)

	inj.Apply(faults.Crash{Region: netsim.FRK})
	cor := binding.Invoke[[]byte](ctx, bc, binding.Get{Key: "k"})
	_, err := cor.Final(ctx)
	if !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("strong read with primary down: %v, want ErrUnreachable", err)
	}
	views := cor.Views()
	if len(views) < 2 {
		t.Fatalf("views = %+v, want cache and causal despite the failure", views)
	}
	for _, v := range views {
		if v.Level == core.LevelStrong {
			t.Errorf("strong view delivered with primary down: %+v", v)
		}
	}
	inj.Quiesce()
	clock.Drain()
}
