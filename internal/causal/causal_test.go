package causal

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"correctables/internal/binding"
	"correctables/internal/core"
	"correctables/internal/netsim"
)

func newTestStore(t *testing.T) (*Store, *netsim.VirtualClock) {
	t.Helper()
	clock := netsim.NewVirtualClock()
	tr := netsim.NewTransport(clock, netsim.DefaultLatencies(), netsim.NewMeter(), 1)
	s, err := NewStore(Config{
		Primary:          netsim.VRG,
		Backups:          []netsim.Region{netsim.FRK, netsim.IRL},
		Transport:        tr,
		ServiceTime:      50 * time.Microsecond,
		PropagationDelay: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Error("missing transport accepted")
	}
	tr := netsim.NewTransport(netsim.NewClock(1), netsim.DefaultLatencies(), nil, 1)
	if _, err := NewStore(Config{Transport: tr}); err == nil {
		t.Error("missing primary accepted")
	}
	if _, err := NewStore(Config{Transport: tr, Primary: netsim.FRK, Backups: []netsim.Region{netsim.FRK}}); err == nil {
		t.Error("duplicate regions accepted")
	}
}

func TestWritePropagatesInOrder(t *testing.T) {
	s, clock := newTestStore(t)
	for i, v := range []string{"v1", "v2", "v3"} {
		_ = i
		s.write(netsim.IRL, "k", []byte(v))
	}
	// Primary has v3 immediately.
	if got := s.ReplicaEntry(netsim.VRG, "k"); string(got.Value) != "v3" {
		t.Errorf("primary = %q", got.Value)
	}
	// Backups converge to v3 (never regress) once propagation drains.
	clock.Drain()
	if e := s.ReplicaEntry(netsim.FRK, "k"); string(e.Value) != "v3" {
		t.Fatalf("backup never converged: %q", e.Value)
	}
}

// Property: delivering propagations in any order applies them in version
// order (replica state equals the max version).
func TestPropertyDeliveryOrderIndependence(t *testing.T) {
	f := func(perm []uint8) bool {
		n := len(perm)
		if n == 0 || n > 15 {
			return true
		}
		r := &replica{data: map[string]Entry{}, pending: map[uint64]propagation{}}
		order := make([]int, n)
		for i := range order {
			order[i] = i + 1
		}
		for i := range order {
			j := int(perm[i]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, v := range order {
			r.deliver(uint64(v), "k", Entry{Value: []byte{byte(v)}, Ver: uint64(v), Exists: true})
		}
		got := r.data["k"]
		return got.Exists && got.Ver == uint64(n) && r.applied == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBindingThreeLevels(t *testing.T) {
	s, _ := newTestStore(t)
	s.Preload("news", []byte("old-headline"))
	c := NewClient(s, netsim.IRL)
	b := NewBinding(c)
	kv := NewKV(b)

	// First access: cache is cold, so only causal + strong views arrive.
	cor := kv.Get(context.Background(), "news")
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Level != core.LevelStrong || string(v.Value) != "old-headline" {
		t.Errorf("final = %+v", v)
	}
	if n := len(cor.Views()); n != 2 {
		t.Errorf("cold-cache views = %d, want 2 (causal+strong)", n)
	}

	// Second access: the cache is warm; three views.
	cor2 := kv.Get(context.Background(), "news")
	if _, err := cor2.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	views := cor2.Views()
	if len(views) != 3 {
		t.Fatalf("warm-cache views = %d, want 3", len(views))
	}
	if views[0].Level != core.LevelCache || views[1].Level != core.LevelCausal || views[2].Level != core.LevelStrong {
		t.Errorf("view levels = %v %v %v", views[0].Level, views[1].Level, views[2].Level)
	}
}

func TestBindingCacheLatencyNearZero(t *testing.T) {
	s, clock := newTestStore(t)
	s.Preload("k", []byte("v"))
	c := NewClient(s, netsim.IRL)
	b := NewBinding(c)
	kv := NewKV(b)
	// Warm the cache.
	if _, err := kv.GetStrong(context.Background(), "k").Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	sw := clock.StartStopwatch()
	cor := kv.Get(context.Background(), "k", core.LevelCache)
	if _, err := cor.Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lat := sw.ElapsedModel(); lat > 15*time.Millisecond {
		t.Errorf("cache-only read took %v model, want ~0", lat)
	}
}

func TestBindingWriteThroughCoherence(t *testing.T) {
	s, _ := newTestStore(t)
	c := NewClient(s, netsim.IRL)
	b := NewBinding(c)
	kv := NewKV(b)
	if _, err := kv.Put(context.Background(), "k", []byte("mine")).Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The writer's own cache reflects the write immediately.
	if e := c.CacheGet("k"); !e.Exists || string(e.Value) != "mine" {
		t.Errorf("cache after write-through = %+v", e)
	}
	// Cache-level read returns it with no network.
	cor := kv.Get(context.Background(), "k", core.LevelCache)
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Value) != "mine" {
		t.Errorf("cache read = %q", v.Value)
	}
}

func TestBindingStaleCacheFreshFinal(t *testing.T) {
	s, _ := newTestStore(t)
	s.Preload("k", []byte("v0"))
	reader := NewClient(s, netsim.IRL)
	b := NewBinding(reader)
	rkv := NewKV(b)
	// Warm reader's cache with v0.
	if _, err := rkv.GetStrong(context.Background(), "k").Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Another client writes v1.
	writer := NewClient(s, netsim.FRK)
	wkv := NewKV(NewBinding(writer))
	if _, err := wkv.Put(context.Background(), "k", []byte("v1")).Final(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Reader's ICG access: cache view is stale v0, strong view is fresh v1.
	cor := rkv.Get(context.Background(), "k")
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	views := cor.Views()
	if string(views[0].Value) != "v0" {
		t.Errorf("cache view = %q, want stale v0", views[0].Value)
	}
	if string(v.Value) != "v1" {
		t.Errorf("final = %q, want v1", v.Value)
	}
	// And coherence: the reader's cache has been refreshed.
	if e := reader.CacheGet("k"); string(e.Value) != "v1" {
		t.Errorf("cache after read = %q", e.Value)
	}
}

func TestBindingUnsupportedOp(t *testing.T) {
	s, _ := newTestStore(t)
	client := binding.NewClient(NewBinding(NewClient(s, netsim.IRL)))
	if _, err := binding.Invoke[binding.Item](context.Background(), client, binding.Dequeue{Queue: "q"}).Final(context.Background()); err == nil {
		t.Error("dequeue on causal store should fail")
	}
}

func TestCacheMissOnCacheOnlyRequest(t *testing.T) {
	s, _ := newTestStore(t)
	kv := NewKV(NewBinding(NewClient(s, netsim.IRL)))
	cor := kv.Get(context.Background(), "absent", core.LevelCache)
	v, err := cor.Final(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Value) != 0 {
		t.Errorf("cache miss value = %v, want empty", v.Value)
	}
}

// TestBindingCausalViewNeverRegressesBehindCache is the ladder-regression
// fix's test: the nearest backup lags the primary by the propagation delay,
// so right after a write its raw entry is older than the client's cache.
// The causal view must be the max of the two — an incremental ladder
// refines, it never regresses — while the raw backup is verifiably stale.
func TestBindingCausalViewNeverRegressesBehindCache(t *testing.T) {
	s, _ := newTestStore(t)
	c := NewClient(s, netsim.IRL)
	kv := NewKV(NewBinding(c))
	ctx := context.Background()

	// Write through the primary: the cache holds the newest value while the
	// backups have not yet seen any propagation.
	for _, v := range []string{"v1", "v2", "v3"} {
		if _, err := kv.Put(ctx, "k", []byte(v)).Final(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if e := s.ReplicaEntry(s.nearestBackup(netsim.IRL), "k"); e.Exists && string(e.Value) == "v3" {
		t.Skip("backup caught up before the read; propagation delay too short for this test")
	}

	cor := kv.Get(ctx, "k")
	if _, err := cor.Final(ctx); err != nil {
		t.Fatal(err)
	}
	views := cor.Views()
	if len(views) != 3 {
		t.Fatalf("views = %d, want 3 (cache, causal, strong)", len(views))
	}
	for i, v := range views {
		if string(v.Value) != "v3" {
			t.Errorf("view %d (%v) = %q, want v3 (ladder regressed)", i, v.Level, v.Value)
		}
	}
}
