// Package causal implements the paper's third binding substrate (§5.2
// "Causal Consistency and Caching"): a primary/backup replicated store with
// causally ordered propagation, complemented by a client-side write-through
// cache. The binding exposes three incremental levels:
//
//	cache  — client-local cache hit (near-zero latency, possibly stale)
//	causal — the closest backup replica's causally consistent state
//	strong — the primary replica (most up-to-date)
//
// This is the substrate behind the smartphone news reader of §4.4
// (Listing 6): one logical invoke translates to three actual requests whose
// responses refresh the display incrementally.
package causal

import (
	"fmt"
	"sync"
	"time"

	"correctables/internal/faults"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// Entry is a versioned value.
type Entry struct {
	Value  []byte
	Ver    uint64
	Exists bool
}

// newer reports whether e supersedes other.
func (e Entry) newer(other Entry) bool {
	if !e.Exists {
		return false
	}
	return !other.Exists || e.Ver > other.Ver
}

// Config describes a primary/backup store.
type Config struct {
	// Primary hosts the authoritative replica.
	Primary netsim.Region
	// Backups host causally consistent replicas, updated asynchronously in
	// version order.
	Backups []netsim.Region
	// Transport carries all messages (required).
	Transport *netsim.Transport
	// ServiceTime is the per-request processing cost (default 500µs).
	ServiceTime time.Duration
	// PropagationDelay is the extra delay before a write reaches backups
	// (default 15ms) — the causal staleness window.
	PropagationDelay time.Duration
	// OpTimeout bounds each binding operation in model time when a fault
	// interceptor is attached to the Transport (default 5s); see
	// cassandra.Config.OpTimeout for the semantics.
	OpTimeout time.Duration
}

// Store is the replicated store.
type Store struct {
	cfg      Config
	tr       *netsim.Transport
	mu       sync.Mutex
	nextVer  uint64
	replicas map[netsim.Region]*replica

	// trc, when set, records replica queue/service spans and resync
	// instants. Nil = tracing off.
	trc *trace.Tracer
	trk trace.Track
}

type replica struct {
	region netsim.Region
	proc   *netsim.Server
	mu     sync.Mutex
	data   map[string]Entry
	// pending buffers out-of-order propagations so backups apply writes in
	// version order (causal ordering under a single primary).
	pending map[uint64]propagation
	applied uint64
}

type propagation struct {
	key   string
	entry Entry
}

// NewStore builds a store per cfg.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("causal: Config.Transport is required")
	}
	if cfg.Primary == "" {
		return nil, fmt.Errorf("causal: Config.Primary is required")
	}
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 500 * time.Microsecond
	}
	if cfg.PropagationDelay == 0 {
		cfg.PropagationDelay = 15 * time.Millisecond
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	s := &Store{cfg: cfg, tr: cfg.Transport, replicas: map[netsim.Region]*replica{}}
	for _, region := range append([]netsim.Region{cfg.Primary}, cfg.Backups...) {
		if _, dup := s.replicas[region]; dup {
			return nil, fmt.Errorf("causal: duplicate region %s", region)
		}
		s.replicas[region] = &replica{
			region:  region,
			proc:    netsim.NewServer(cfg.Transport.Clock(), 4),
			data:    map[string]Entry{},
			pending: map[uint64]propagation{},
		}
	}
	// On a faulted transport, wire recovery: after every fault transition,
	// backups whose applied version lags the primary — propagations to a
	// crashed or partitioned backup are dropped in flight, leaving a
	// version gap the in-order delivery buffer can never fill — resync from
	// the primary by state transfer.
	if inj, ok := cfg.Transport.Interceptor().(*faults.Injector); ok {
		inj.Subscribe(func(faults.Transition) { s.resyncLagging() })
	}
	return s, nil
}

// SetTrace threads a span tracer through the store: each replica's
// bounded server records queue/service spans on "server/<region>", and
// recovery resyncs appear as instants on "causal/recovery". Install at
// wiring time.
func (s *Store) SetTrace(t *trace.Tracer) {
	s.trc = t
	for _, region := range append([]netsim.Region{s.cfg.Primary}, s.cfg.Backups...) {
		s.replicas[region].proc.SetTrace(t, "server/"+string(region))
	}
	s.trk = t.Track("causal/recovery")
}

// resyncLagging ships a primary snapshot to every lagging backup. It runs
// in clock callback context and must not block; snapshots travel as
// asynchronous sends, dropped (and retried at the next transition) while
// the backup is still unreachable.
func (s *Store) resyncLagging() {
	primary := s.replicas[s.cfg.Primary]
	snapData, snapVer, size := primary.snapshot()
	for _, region := range s.cfg.Backups {
		r := s.replicas[region]
		r.mu.Lock()
		lagging := r.applied < snapVer
		r.mu.Unlock()
		if !lagging {
			continue
		}
		// Each backup gets its own copy of the snapshot map; the Entry
		// values inside are immutable once stored, so a shallow per-key
		// copy is safe to share.
		data := make(map[string]Entry, len(snapData))
		for k, v := range snapData {
			data[k] = v
		}
		if s.trc != nil {
			s.trc.Instant(s.trk, "resync", string(region), s.tr.Clock().Now())
		}
		s.tr.Send(s.cfg.Primary, region, netsim.LinkReplica, size, func() {
			r.install(data, snapVer)
		})
	}
}

// snapshot captures the replica's state: data map (entries are immutable),
// applied version, and approximate encoded size.
func (r *replica) snapshot() (map[string]Entry, uint64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data := make(map[string]Entry, len(r.data))
	size := 0
	for k, v := range r.data {
		data[k] = v
		size += len(k) + len(v.Value) + 16
	}
	return data, r.applied, size
}

// install replaces the replica's state with a snapshot taken at version
// ver, discards pending propagations the snapshot covers, and drains the
// rest in order. Stale snapshots are ignored.
func (r *replica) install(data map[string]Entry, ver uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ver <= r.applied {
		return
	}
	r.data = data
	r.applied = ver
	for v := range r.pending {
		if v <= ver {
			delete(r.pending, v)
		}
	}
	r.drainPendingLocked()
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Replica state accessors (tests/harness).
func (s *Store) ReplicaEntry(region netsim.Region, key string) Entry {
	r := s.replicas[region]
	if r == nil {
		return Entry{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data[key]
}

// Preload installs a value on every replica without traffic.
func (s *Store) Preload(key string, value []byte) {
	s.mu.Lock()
	s.nextVer++
	e := Entry{Value: append([]byte(nil), value...), Ver: s.nextVer, Exists: true}
	s.mu.Unlock()
	for _, r := range s.replicas {
		r.mu.Lock()
		r.data[key] = e
		if e.Ver > r.applied {
			r.applied = e.Ver
		}
		r.mu.Unlock()
	}
}

// nearestBackup returns the backup region closest to from (or the primary
// if there are no backups).
func (s *Store) nearestBackup(from netsim.Region) netsim.Region {
	if len(s.cfg.Backups) == 0 {
		return s.cfg.Primary
	}
	sorted := s.tr.Model().SortByProximity(from, s.cfg.Backups)
	return sorted[0]
}

// read serves a key from one replica, charging network and service time.
func (s *Store) read(clientRegion, replicaRegion netsim.Region, key string) Entry {
	r := s.replicas[replicaRegion]
	s.tr.Travel(clientRegion, replicaRegion, netsim.LinkClient, 64+len(key))
	r.proc.Process(s.cfg.ServiceTime)
	r.mu.Lock()
	e := r.data[key]
	r.mu.Unlock()
	s.tr.Travel(replicaRegion, clientRegion, netsim.LinkClient, 96+len(e.Value))
	return e
}

// write applies a value at the primary and propagates to backups in version
// order, returning the committed entry.
func (s *Store) write(clientRegion netsim.Region, key string, value []byte) Entry {
	primary := s.replicas[s.cfg.Primary]
	s.tr.Travel(clientRegion, s.cfg.Primary, netsim.LinkClient, 96+len(key)+len(value))
	primary.proc.Process(s.cfg.ServiceTime)

	s.mu.Lock()
	s.nextVer++
	e := Entry{Value: append([]byte(nil), value...), Ver: s.nextVer, Exists: true}
	s.mu.Unlock()

	primary.mu.Lock()
	primary.data[key] = e
	primary.applied = e.Ver
	primary.mu.Unlock()

	for _, region := range s.cfg.Backups {
		backup := s.replicas[region]
		s.tr.SendAfter(s.cfg.PropagationDelay, s.cfg.Primary, region, netsim.LinkReplica,
			96+len(key)+len(value), func() {
				backup.deliver(e.Ver, key, e)
			})
	}
	s.tr.Travel(s.cfg.Primary, clientRegion, netsim.LinkClient, 32)
	return e
}

// deliver applies propagations in version order, buffering gaps. Versions
// at or below the applied watermark are discarded: after a snapshot resync
// the in-flight propagation stream may replay writes the snapshot covers.
func (r *replica) deliver(ver uint64, key string, e Entry) {
	r.mu.Lock()
	if ver <= r.applied {
		r.mu.Unlock()
		return
	}
	r.pending[ver] = propagation{key: key, entry: e}
	r.drainPendingLocked()
	r.mu.Unlock()
}

// drainPendingLocked applies buffered propagations in version order until
// the next gap. Callers hold r.mu.
func (r *replica) drainPendingLocked() {
	for {
		p, ok := r.pending[r.applied+1]
		if !ok {
			return
		}
		delete(r.pending, r.applied+1)
		if p.entry.newer(r.data[p.key]) {
			r.data[p.key] = p.entry
		}
		r.applied++
	}
}
