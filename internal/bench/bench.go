// Package bench contains one driver per table/figure of the paper's
// evaluation (§6). Each driver sets up the simulated deployment the paper
// used, runs the experiment, and returns typed rows whose shape mirrors the
// corresponding figure; cmd/icgbench prints them and EXPERIMENTS.md records
// paper-vs-measured values.
//
// All drivers take a Config controlling the time scale (latencies are
// always reported in model time, i.e. on the paper's axes) and a Quick flag
// that shrinks sample counts and durations for use in tests and smoke runs.
package bench

import (
	"time"

	"correctables/internal/cassandra"
	"correctables/internal/netsim"
	"correctables/internal/trace"
	"correctables/internal/zk"
)

// Config controls an experiment run.
type Config struct {
	// Wall selects the wall-clock simulation mode: model durations are
	// scaled to real sleeps. The default (false) is the virtual clock — a
	// deterministic discrete-event scheduler that runs every experiment at
	// CPU speed, with same-seed runs producing byte-identical results.
	Wall bool
	// Scale is the model-to-wall time scale in wall mode (default 0.25;
	// 1.0 = real time). Smaller is faster but, below ~0.1, sleep
	// granularity starts to blur sub-10ms effects. Ignored in virtual mode.
	Scale float64
	// Seed fixes all randomness.
	Seed int64
	// Quick shrinks sample counts and durations (tests, smoke runs).
	Quick bool
	// Faults selects the fault-study scenario: a catalog name
	// (faults.ScenarioNames) or "<seed>:<profile>" for a random schedule.
	// Empty means minority-partition. Only the faultstudy experiment reads
	// it; the paper's figures always run fault-free.
	Faults string
	// FaultLog prints the applied fault transitions alongside the
	// fault-study table.
	FaultLog bool
	// Check adds a consistency-checked session population to the fault
	// study: its clients run through the session API with a history
	// recorder attached, and the recorded history is verified after the
	// run (session guarantees plus per-key register linearizability). Only
	// the faultstudy experiment reads it.
	Check bool
	// Trace attaches the model-time span tracer and time-series registry
	// to the experiment fabric (faultstudy, failover, overload). The
	// result then carries a latency decomposition per phase, sampled
	// gauges, and a tracer exportable as Chrome trace-event JSON
	// (icgbench -trace). Tracing never perturbs model time — spans are
	// stamped from the same virtual instants the experiment already
	// observes — so traced and untraced runs report identical rows.
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	return c
}

// pick returns full or quick depending on cfg.Quick.
func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

func (c Config) pickDur(full, quick time.Duration) time.Duration {
	if c.Quick {
		return quick
	}
	return full
}

// harness bundles the per-experiment simulation fabric.
type harness struct {
	clock netsim.Clock
	meter *netsim.Meter
	tr    *netsim.Transport
	// trc/reg are the observability plane (nil unless cfg.Trace): the
	// span tracer is installed on the transport here and threaded into
	// stores and clients by the individual drivers; gauges register on
	// reg and sample on a model-time cadence via startSampling.
	trc *trace.Tracer
	reg *trace.Registry
}

func newHarness(cfg Config) *harness {
	return newHarnessWith(cfg, netsim.DefaultLatencies())
}

// newHarnessWith builds the fabric on an explicit latency model — the sweep
// experiment scales the paper's geography up and down; everything else runs
// on the default model.
func newHarnessWith(cfg Config, lat *netsim.LatencyModel) *harness {
	var clock netsim.Clock
	if cfg.Wall {
		clock = netsim.NewClock(cfg.Scale)
	} else {
		clock = netsim.NewVirtualClock()
	}
	meter := netsim.NewMeter()
	h := &harness{
		clock: clock,
		meter: meter,
		tr:    netsim.NewTransport(clock, lat, meter, cfg.Seed+1),
	}
	if cfg.Trace {
		h.trc = trace.New()
		h.reg = trace.NewRegistry()
		h.tr.SetTrace(h.trc)
	}
	return h
}

// startSampling arms the registry's self-rescheduling probe over the
// experiment window at a horizon-relative cadence (64 samples per run,
// floored at 1ms so quick runs don't sample sub-millisecond). No-op when
// tracing is off.
func (h *harness) startSampling(horizon time.Duration) {
	if h.reg == nil {
		return
	}
	every := horizon / 64
	if every < time.Millisecond {
		every = time.Millisecond
	}
	h.reg.Start(h.clock, every, horizon)
}

// drain runs the harness's background traffic (async replication, commit
// broadcasts) to completion after an experiment. Wall-clock harnesses just
// let it finish in real time.
func (h *harness) drain() {
	if vc, ok := h.clock.(*netsim.VirtualClock); ok {
		vc.Drain()
	}
}

// cassandraOpts selects the store variant under test.
type cassandraOpts struct {
	regions     []netsim.Region
	correctable bool
	confirmOpt  bool
	// replicationDelay overrides the default staleness window (0 = default).
	replicationDelay time.Duration
	// flushCost overrides the preliminary-flushing service time
	// (0 = default).
	flushCost time.Duration
	// opTimeout overrides the fault-injection operation timeout
	// (0 = default; only consulted when an interceptor is attached).
	opTimeout time.Duration
	// shards selects the cluster's token-ring shard count (0 = 1 shard,
	// the unsharded plane every pre-sharding experiment runs on).
	shards int
}

// newCassandra builds a cluster on the harness fabric with the service-time
// model used across the Cassandra experiments.
func (h *harness) newCassandra(cfg Config, opts cassandraOpts) *cassandra.Cluster {
	regions := opts.regions
	if regions == nil {
		regions = []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG}
	}
	flush := opts.flushCost
	if flush == 0 {
		flush = 500 * time.Microsecond
	}
	cluster, err := cassandra.NewCluster(cassandra.Config{
		Regions:          regions,
		Transport:        h.tr,
		Correctable:      opts.correctable,
		ConfirmationOpt:  opts.confirmOpt,
		Shards:           opts.shards,
		Workers:          4,
		ReadServiceTime:  2 * time.Millisecond,
		WriteServiceTime: 2 * time.Millisecond,
		FlushServiceTime: flush,
		ReplicationDelay: opts.replicationDelay,
		ReadRepairChance: 0.1,
		OpTimeout:        opts.opTimeout,
		Seed:             cfg.Seed,
	})
	if err != nil {
		panic("bench: " + err.Error()) // static configuration; cannot fail
	}
	return cluster
}

// zkOpts selects the ensemble variant under test.
type zkOpts struct {
	correctable bool
	leader      netsim.Region
	// opTimeout bounds client operations under fault injection (0 = default).
	opTimeout time.Duration
	// heartbeat/electionTimeout tune the recovery machinery (0 = defaults).
	// The paper's figures run fault-free, so only the failover experiment
	// sets them.
	heartbeat       time.Duration
	electionTimeout time.Duration
}

// newZK builds an ensemble on the harness fabric.
func (h *harness) newZK(cfg Config, opts zkOpts) *zk.Ensemble {
	e, err := zk.NewEnsemble(zk.Config{
		Regions:           []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
		LeaderRegion:      opts.leader,
		Transport:         h.tr,
		Correctable:       opts.correctable,
		Workers:           4,
		ServiceTime:       time.Millisecond,
		OpTimeout:         opts.opTimeout,
		HeartbeatInterval: opts.heartbeat,
		ElectionTimeout:   opts.electionTimeout,
	})
	if err != nil {
		panic("bench: " + err.Error())
	}
	return e
}
