package bench

import (
	"bytes"
	"testing"
)

// TestSweepQuorumGeography checks the fig6/fig7 trend the sweep exists to
// show: preliminary-view latency stays pinned near the closest replica
// regardless of quorum size or geography, while final-view latency pays for
// both — and the whole table replays byte-identically per seed.
func TestSweepQuorumGeography(t *testing.T) {
	run := func() (*SweepResult, []byte) {
		res := Sweep(Config{Quick: true, Seed: 5})
		js, err := SweepJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, js
	}
	res, js := run()
	t.Logf("\n%s", FormatSweep(res))
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 3 geographies x 3 quorums + 3 shard counts", len(res.Rows))
	}
	cell := func(geo string, quorum int) SweepRow {
		for _, r := range res.Rows {
			if r.Geography == geo && r.Quorum == quorum && r.Shards == 1 {
				return r
			}
		}
		t.Fatalf("missing cell %s/R=%d", geo, quorum)
		return SweepRow{}
	}
	shardCell := func(shards int) SweepRow {
		for _, r := range res.Rows {
			if r.Shards == shards {
				return r
			}
		}
		t.Fatalf("missing shard cell %d", shards)
		return SweepRow{}
	}
	for _, r := range res.Rows {
		if r.ThroughputOps <= 0 {
			t.Errorf("%s/R=%d: no throughput", r.Geography, r.Quorum)
		}
		if r.FinalMeanMs <= 0 {
			t.Errorf("%s/R=%d: empty final-latency histogram", r.Geography, r.Quorum)
		}
		// At R=1 the first response already closes the view: there is no
		// separate preliminary stage, so its histogram stays empty.
		if r.Quorum >= 2 && r.PrelimMeanMs <= 0 {
			t.Errorf("%s/R=%d: empty preliminary-latency histogram", r.Geography, r.Quorum)
		}
		if r.FinalMeanMs < r.PrelimMeanMs {
			t.Errorf("%s/R=%d: final view (%.1f ms) faster than preliminary (%.1f ms)",
				r.Geography, r.Quorum, r.FinalMeanMs, r.PrelimMeanMs)
		}
	}

	// Quorum axis (paper geography): R=3 must wait for the farthest replica,
	// R=1 only for the closest; preliminary views always answer from the
	// closest and should not care.
	if r1, r3 := cell("paper", 1), cell("paper", 3); r3.FinalMeanMs < 1.5*r1.FinalMeanMs {
		t.Errorf("final latency barely grows with quorum: R=1 %.1f ms vs R=3 %.1f ms",
			r1.FinalMeanMs, r3.FinalMeanMs)
	}
	if r2, r3 := cell("paper", 2), cell("paper", 3); r3.PrelimMeanMs > 1.5*r2.PrelimMeanMs {
		t.Errorf("preliminary latency should be quorum-insensitive: R=2 %.1f ms vs R=3 %.1f ms",
			r2.PrelimMeanMs, r3.PrelimMeanMs)
	}

	// Geography axis (R=2): stretching every RTT by 8x (metro -> worldwide)
	// must show up in the final view.
	if m, i := cell("metro", 2), cell("intercontinental", 2); i.FinalMeanMs < 2*m.FinalMeanMs {
		t.Errorf("final latency barely grows with distance: metro %.1f ms vs intercontinental %.1f ms",
			m.FinalMeanMs, i.FinalMeanMs)
	}

	// Shard axis (paper geography, R=2): the clients are not token-aware,
	// so keys owned by a non-zero shard pay the contact node's routing hop
	// — widening the ring must never make the preliminary view faster than
	// the unsharded cell, and every shard row still serves traffic.
	base := cell("paper", 2)
	for _, n := range []int{2, 4, 8} {
		r := shardCell(n)
		if r.Geography != "paper" || r.Quorum != 2 {
			t.Errorf("shard cell %d ran at %s/R=%d, want paper/R=2", n, r.Geography, r.Quorum)
		}
		if r.ThroughputOps <= 0 {
			t.Errorf("shards=%d: no throughput", n)
		}
		if r.PrelimMeanMs < base.PrelimMeanMs {
			t.Errorf("shards=%d preliminary (%.2f ms) beat the unsharded cell (%.2f ms) despite routing hops",
				n, r.PrelimMeanMs, base.PrelimMeanMs)
		}
	}

	_, js2 := run()
	if !bytes.Equal(js, js2) {
		t.Error("same-seed replay produced different sweep JSON bytes")
	}
}
