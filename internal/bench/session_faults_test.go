package bench

import (
	"fmt"
	"testing"
)

// TestSessionGuaranteesAcrossFaultCatalog is the satellite acceptance test
// for sessions + checking: across every named fault scenario, the checked
// session population's recorded history must verify clean — read-your-
// writes, monotonic reads, writes-follow-reads, and per-key register
// linearizability all hold (the session layer suppresses/retries what
// would violate them; timed-out ops are correctly treated as ambiguous) —
// and the same seed must reproduce the history byte for byte, so any
// future violation is a complete repro recipe.
func TestSessionGuaranteesAcrossFaultCatalog(t *testing.T) {
	scenarios := []string{"minority-partition", "split-brain", "flaky-wan", "rolling-crash"}
	for _, scen := range scenarios {
		scen := scen
		t.Run(scen, func(t *testing.T) {
			t.Parallel()
			run := func() *CheckReport {
				res, err := FaultStudy(Config{Seed: 42, Quick: true, Faults: scen, Check: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Check == nil {
					t.Fatal("Check requested but no report produced")
				}
				return res.Check
			}
			rep := run()
			if rep.Ops == 0 {
				t.Fatal("checked population recorded no operations")
			}
			if n := rep.Violations(); n != 0 {
				t.Errorf("%d violations under %s:", n, scen)
				for _, v := range append(rep.SessionViolations, rep.LinViolations...) {
					t.Errorf("  %s", v)
				}
			}
			if len(rep.Inconclusive) != 0 {
				t.Errorf("inconclusive linearizability keys: %v", rep.Inconclusive)
			}
			// Seed-replayable: the digest is over the full serialized
			// history (every op, view, token, timestamp).
			if rep2 := run(); rep2.HistoryDigest != rep.HistoryDigest {
				t.Errorf("history replay diverged: %s vs %s", rep.HistoryDigest, rep2.HistoryDigest)
			}
		})
	}
}

// TestCheckReportDistinguishesSeeds guards the digest against being too
// weak to notice a different run.
func TestCheckReportDistinguishesSeeds(t *testing.T) {
	a, err := FaultStudy(Config{Seed: 7, Quick: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultStudy(Config{Seed: 8, Quick: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Check.HistoryDigest == b.Check.HistoryDigest {
		t.Fatal("different seeds produced identical history digests")
	}
}

// TestFailoverAcrossSeedSweep folds the failover scenario into the fault
// catalog's regime: the same leader-kill drill, swept across seeds. Every
// seed must elect a replacement leader, keep serving preliminary views
// through the outage, verify a clean session history, and replay to the
// identical digest — so any seed that ever fails here is a self-contained
// repro recipe.
func TestFailoverAcrossSeedSweep(t *testing.T) {
	seeds := []int64{1, 7, 13, 42, 99, 2026, 31337, 424242}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			run := func() *FailoverResult {
				res, err := Failover(Config{Seed: seed, Quick: true, Check: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Check == nil {
					t.Fatal("Check requested but no report produced")
				}
				return res
			}
			res := run()
			if res.NewLeader == "" || res.TimeToRecoveryMs <= 0 {
				t.Errorf("no recovery: leader %q, time-to-recovery %.1f ms",
					res.NewLeader, res.TimeToRecoveryMs)
			}
			if res.OutagePrelims == 0 {
				t.Error("no preliminary views served during the outage window")
			}
			rep := res.Check
			if rep.Ops == 0 {
				t.Fatal("checked population recorded no operations")
			}
			if n := rep.Violations(); n != 0 {
				t.Errorf("%d violations at seed %d:", n, seed)
				for _, v := range append(rep.SessionViolations, rep.LinViolations...) {
					t.Errorf("  %s", v)
				}
			}
			if len(rep.Inconclusive) != 0 {
				t.Errorf("inconclusive queue keys: %v", rep.Inconclusive)
			}
			if rep2 := run().Check; rep2.HistoryDigest != rep.HistoryDigest {
				t.Errorf("history replay diverged: %s vs %s", rep.HistoryDigest, rep2.HistoryDigest)
			}
		})
	}
}
