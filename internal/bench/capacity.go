package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/core"
	"correctables/internal/history"
	"correctables/internal/load"
	"correctables/internal/metrics"
)

// The capacity study: the sharded storage plane's headline experiment.
// One cell per shard count runs an open-loop session storm on a fresh
// VirtualClock — three Poisson arrival generators (one per region) drive
// closed-loop sessions through the admission gate into per-region
// coordinator Batchers — and the row records attained throughput,
// coordinator saturation, per-shard fairness and sampled view latencies.
// Offered load deliberately exceeds a cell's estimated capacity by the
// same factor at every shard count, so the throughput column measures what
// the plane can actually serve and the scaling factor T(8)/T(1) is a
// capacity ratio, not an offered-load echo. The full-size run pushes one
// million sessions through the widest cell on a single VirtualClock
// (ROADMAP item 1's 10^6-session scale).
const (
	// capSessionsPerShardRegion is the full-size per-region offered rate in
	// sessions/s per shard: 3 regions x 8 shards x 600 = 14,400 sessions/s
	// offered in the widest cell, ~1.65x its estimated capacity.
	capSessionsPerShardRegion = 600
	// capOpsPerSession: put own key, strong-read it back, ICG-read a
	// shared key (the measured op).
	capOpsPerSession = 3
	// capOwnKeys bounds the own-key space so replica tables stay flat
	// across a million sessions.
	capOwnKeys = 1 << 16
	// capSharedKeys is the preloaded uniform read pool.
	capSharedKeys = 4096
	// capLatencySample: one session in 8 records its measured-read
	// latencies (exact-sample histograms; sampling bounds their memory).
	capLatencySample = 8
	// capCheckedSessions/capCheckedKeys size the checked sub-population:
	// recorded sessions running through the same batched dispatch path on
	// an exclusive, non-preloaded keyspace, verified per cell with the
	// session checkers plus register linearizability.
	capCheckedSessions = 6
	capCheckedKeys     = 12
	// capBatchWindow is the coordinator dispatch tick. Sized at half the
	// replica service time: wide enough that concurrent sessions' reads
	// coalesce under load, narrow enough to be invisible in the final-view
	// latency (which is dominated by the cross-region quorum leg).
	capBatchWindow = time.Millisecond
)

// CapacityRow is one shard-count cell of the study.
type CapacityRow struct {
	Shards int `json:"shards"`
	// OfferedSessionsPerSec is the aggregate Poisson arrival rate.
	OfferedSessionsPerSec float64 `json:"offered_sessions_per_sec"`
	// SessionsStarted counts arrivals; Completed finished all ops,
	// Aborted hit an admission rejection (the gate shedding overload).
	SessionsStarted   int64 `json:"sessions_started"`
	SessionsCompleted int64 `json:"sessions_completed"`
	SessionsAborted   int64 `json:"sessions_aborted"`
	// Ops counts completed storage operations (bulk population only).
	Ops int64 `json:"ops"`
	// ElapsedMs is the model time from first arrival to last completion.
	ElapsedMs float64 `json:"elapsed_ms"`
	// ThroughputOps / ThroughputSessions are attained rates over Elapsed.
	ThroughputOps      float64 `json:"throughput_ops"`
	ThroughputSessions float64 `json:"throughput_sessions"`
	// Sampled measured-read latencies: the weak (preliminary) and strong
	// (final) views of the shared-pool ICG read.
	WeakMeanMs  float64 `json:"weak_mean_ms"`
	WeakP99Ms   float64 `json:"weak_p99_ms"`
	FinalMeanMs float64 `json:"final_mean_ms"`
	FinalP99Ms  float64 `json:"final_p99_ms"`
	// BatchMeanOps is the mean coalesced-dispatch size across the
	// per-region Batchers (total batched ops / total dispatches).
	BatchMeanOps float64 `json:"batch_mean_ops"`
	// UtilizationPct is aggregate coordinator saturation: total reserved
	// service time across every replica server over total slot capacity
	// (regions x shards x workers x elapsed).
	UtilizationPct float64 `json:"utilization_pct"`
	// FairnessJain is Jain's index over per-shard handled-request counts
	// (1.0 = perfectly even keyspace spread).
	FairnessJain    float64 `json:"fairness_jain"`
	PerShardHandled []int64 `json:"per_shard_handled"`
	// Check verifies the cell's recorded sub-population.
	Check *CheckReport `json:"check"`
}

// CapacityResult is the full study.
type CapacityResult struct {
	Description string        `json:"description"`
	Seed        int64         `json:"seed"`
	HorizonMs   float64       `json:"horizon_ms"`
	Rows        []CapacityRow `json:"rows"`
	// ScalingX is attained ops throughput at the widest cell over the
	// 1-shard cell — the capacity-scaling headline.
	ScalingX float64 `json:"scaling_x"`
}

func capOwnKey(i int) string    { return fmt.Sprintf("cap-own-%05d", i&(capOwnKeys-1)) }
func capSharedKey(i int) string { return fmt.Sprintf("cap-pool-%04d", i) }
func capCheckedKey(i int) string {
	return fmt.Sprintf("cap-chk-%02d", i)
}

// jainIndex computes Jain's fairness index over xs (1 = perfectly fair,
// 1/n = maximally skewed). Empty or all-zero input reports 0.
func jainIndex(xs []int64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// capacityCell runs one shard-count cell on a fresh fabric.
func capacityCell(cfg Config, shards int, horizon time.Duration, perRegionRate float64) CapacityRow {
	h := newHarness(cfg)
	clock := h.clock
	cluster := h.newCassandra(cfg, cassandraOpts{
		correctable: true,
		confirmOpt:  true,
		shards:      shards,
	})
	regions := cluster.Regions()
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < capSharedKeys; i++ {
		cluster.Preload(capSharedKey(i), val)
	}

	// One coordinator Batcher per region: sessions are colocated with
	// their coordinator (capacity, not geography, is the axis here) and
	// the clients are token-aware — the dispatch queues are per shard, so
	// the contact-node routing hop would only re-serialize what sharding
	// just spread out.
	batchers := make([]*binding.Batcher, len(regions))
	bulk := make([]*binding.Client, len(regions))
	// The gate's static buckets are sized with 2x headroom over the offered
	// rate — they exist to bound abusive clients, not to shed. Shedding is
	// the AIMD bucket's job, driven by coordinator queue delay, so aborted
	// sessions measure genuine overload rather than bucket mis-sizing. The
	// global bucket sees all regions: rates are aggregate ops rates.
	perRegionOps := capOpsPerSession * perRegionRate
	aggregateOps := perRegionOps * float64(len(regions))
	gate := load.NewController(load.Config{
		Clock:          clock,
		PerClientRate:  2 * perRegionOps,
		PerClientBurst: perRegionOps / 2,
		Sample: func() time.Duration {
			// Backpressure on the most loaded replica anywhere in the fleet.
			// Watching one region is not enough: quorum and write-ack legs
			// go to each coordinator's closest peer, so the geographically
			// central region (IRL here — both FRK and VRG pick it) carries
			// double leg load and is where the queue actually builds.
			var max time.Duration
			for s := 0; s < shards; s++ {
				for _, region := range regions {
					if d := cluster.ReplicaAt(s, region).Server().QueueDelay(); d > max {
						max = d
					}
				}
			}
			return max
		},
		SampleEvery: 20 * time.Millisecond,
		Threshold:   25 * time.Millisecond,
		MinRate:     aggregateOps / 10,
		MaxRate:     2 * aggregateOps,
		Meter:       h.meter,
	})
	gate.Start()
	for i, region := range regions {
		cc := cassandra.NewClient(cluster, region, region)
		cc.TokenAware = true
		// R=2/W=2 over three replicas: the quorums intersect, so the
		// register-linearizability check on the recorded sub-population is
		// sound (the paper's W=1 default would make strong reads able to
		// miss a completed write outright).
		batchers[i] = binding.NewBatcher(
			cassandra.NewBinding(cc, cassandra.BindingConfig{StrongQuorum: 2, WriteQuorum: 2}),
			clock, capBatchWindow)
		bulk[i] = binding.NewClient(batchers[i],
			binding.WithLabel(fmt.Sprintf("cap-%s", region)),
			binding.WithAdmission(gate))
	}

	var started, completed, aborted, opsDone atomic.Int64
	weakHist, finalHist := metrics.NewHistogram(), metrics.NewHistogram()
	weakHist.Reserve(int(horizon.Seconds()*perRegionRate) * 3 / capLatencySample)
	finalHist.Reserve(int(horizon.Seconds()*perRegionRate) * 3 / capLatencySample)
	g := clock.NewGroup()
	ctx := context.Background()

	// One Poisson generator per region. Keys and the sampling decision are
	// drawn inside fire (arrival order is deterministic); the session body
	// runs as an actor.
	for ri := range regions {
		ri := ri
		bc := bulk[ri]
		rng := rand.New(rand.NewSource(cfg.Seed + 1_000_003*int64(ri) + 17))
		fire := func(i int) {
			own := capOwnKey(rng.Intn(capOwnKeys))
			shared := capSharedKey(rng.Intn(capSharedKeys))
			sample := i%capLatencySample == 0
			g.Add(1)
			clock.Go(func() {
				defer g.Done()
				started.Add(1)
				if _, err := binding.InvokeStrong[binding.Ack](ctx, bc, binding.Put{Key: own, Value: val}).Final(ctx); err != nil {
					aborted.Add(1)
					return
				}
				opsDone.Add(1)
				if _, err := binding.InvokeStrong[[]byte](ctx, bc, binding.Get{Key: own}).Final(ctx); err != nil {
					aborted.Add(1)
					return
				}
				opsDone.Add(1)
				// The measured op: an ICG read of the shared pool.
				t0 := clock.Now()
				cor := binding.Invoke[[]byte](ctx, bc, binding.Get{Key: shared})
				if _, err := cor.WaitLevel(ctx, core.LevelWeak); err != nil {
					aborted.Add(1)
					return
				}
				weakAt := clock.Now() - t0
				if _, err := cor.Final(ctx); err != nil {
					aborted.Add(1)
					return
				}
				opsDone.Add(1)
				if sample {
					weakHist.Record(weakAt)
					finalHist.Record(clock.Now() - t0)
				}
				completed.Add(1)
			})
		}
		load.Start(clock, load.NewPoisson(perRegionRate, cfg.Seed+41+int64(ri)), horizon, fire)
	}

	// Checked sub-population: recorded sessions through the same Batchers
	// on an exclusive, non-preloaded keyspace (preloads would be phantom
	// writes to the register checker), no admission and no retries (a
	// retried write could land twice server-side and break attribution).
	rec := history.NewRecorder()
	for i := 0; i < capCheckedSessions; i++ {
		sess := binding.NewSession(binding.NewClient(batchers[i%len(batchers)],
			binding.WithObserver(rec),
			binding.WithLabel(fmt.Sprintf("chk-%02d", i))))
		rng := rand.New(rand.NewSource(cfg.Seed + 500_009*int64(i) + 29))
		g.Add(1)
		clock.Go(func() {
			defer g.Done()
			for clock.Now() < horizon {
				key := capCheckedKey(rng.Intn(capCheckedKeys))
				if rng.Float64() < 0.6 {
					_, _ = sess.Get(ctx, key).Final(ctx)
				} else {
					_, _ = sess.Put(ctx, key, val).Final(ctx)
				}
				clock.Sleep(10 * time.Millisecond)
			}
		})
	}

	g.Wait()
	gate.Stop()
	elapsed := clock.Now()
	h.drain()

	var batchedOps, dispatches int64
	for _, bt := range batchers {
		o, d := bt.Stats()
		batchedOps += o
		dispatches += d
	}
	perShard := make([]int64, shards)
	var busy time.Duration
	for s := 0; s < shards; s++ {
		for _, region := range regions {
			srv := cluster.ReplicaAt(s, region).Server()
			perShard[s] += srv.Handled()
			busy += srv.BusyModelTime()
		}
	}
	capacity := float64(len(regions)*shards*4) * elapsed.Seconds() // 4 workers per replica
	row := CapacityRow{
		Shards:                shards,
		OfferedSessionsPerSec: perRegionRate * float64(len(regions)),
		SessionsStarted:       started.Load(),
		SessionsCompleted:     completed.Load(),
		SessionsAborted:       aborted.Load(),
		Ops:                   opsDone.Load(),
		ElapsedMs:             metrics.Ms(elapsed),
		ThroughputOps:         metrics.Throughput(opsDone.Load(), elapsed),
		ThroughputSessions:    metrics.Throughput(completed.Load(), elapsed),
		WeakMeanMs:            metrics.Ms(weakHist.Mean()),
		WeakP99Ms:             metrics.Ms(weakHist.Percentile(99)),
		FinalMeanMs:           metrics.Ms(finalHist.Mean()),
		FinalP99Ms:            metrics.Ms(finalHist.Percentile(99)),
		UtilizationPct:        100 * busy.Seconds() / capacity,
		FairnessJain:          jainIndex(perShard),
		PerShardHandled:       perShard,
		Check:                 buildCheckReport(rec, capCheckedSessions, "registers"),
	}
	if dispatches > 0 {
		row.BatchMeanOps = float64(batchedOps) / float64(dispatches)
	}
	return row
}

// Capacity runs the shard-count capacity study. Quick mode shrinks the
// horizon and offered rates for tests and the CI smoke gate; the full run
// is the 10^6-session study behind BENCH_capacity.json.
func Capacity(cfg Config) *CapacityResult {
	cfg = cfg.withDefaults()
	horizon := cfg.pickDur(70*time.Second, 1500*time.Millisecond)
	ratePerShardRegion := float64(cfg.pick(capSessionsPerShardRegion, 120))
	res := &CapacityResult{
		Description: "attained throughput, saturation and fairness vs shard count (open-loop sessions through admission gate, coordinator batching)",
		Seed:        cfg.Seed,
		HorizonMs:   metrics.Ms(horizon),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		res.Rows = append(res.Rows, capacityCell(cfg, shards, horizon, ratePerShardRegion*float64(shards)))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.ThroughputOps > 0 {
		res.ScalingX = last.ThroughputOps / first.ThroughputOps
	}
	return res
}

// CapacityJSON renders the study as indented JSON (the BENCH_capacity.json
// artifact; byte-identical across same-seed runs).
func CapacityJSON(res *CapacityResult) ([]byte, error) {
	return marshalReport(res)
}
