package bench

import (
	"bytes"
	"testing"
)

// TestOverloadMetastableEscape is the overload gate: the same burst that
// leaves goodput collapsed for the whole post-burst window without
// shedding (the metastable state) must drain and recover with the
// admission controller on — while the measured sessions' history stays
// clean through the degraded phase, and the whole experiment replays
// byte-identically per seed.
func TestOverloadMetastableEscape(t *testing.T) {
	run := func() (*OverloadResult, []byte) {
		res, err := Overload(Config{Quick: true, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		js, err := OverloadJSON(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, js
	}
	res, js := run()
	t.Logf("\n%s", FormatOverload(res))
	if len(res.Modes) != 2 {
		t.Fatalf("modes = %d, want shedding-off and shedding-on", len(res.Modes))
	}
	off, on := res.Modes[0], res.Modes[1]
	if off.Shedding || !on.Shedding {
		t.Fatalf("mode order wrong: %q then %q", off.Mode, on.Mode)
	}

	// The metastable state: the storm sustains itself after the burst ends.
	if off.BaselineGoodput <= 0 {
		t.Fatal("shedding-off baseline produced no goodput")
	}
	if off.PostBurstGoodputPct >= 50 {
		t.Errorf("shedding-off post-burst goodput = %.0f%% of baseline, want < 50%% (no metastable collapse?)",
			off.PostBurstGoodputPct)
	}
	// The escape: admission control + degrade-to-preliminary breaks the
	// feedback loop and the recovered phase returns to baseline.
	if on.RecoveredGoodputPct < 90 {
		t.Errorf("shedding-on recovered goodput = %.0f%% of baseline, want >= 90%%",
			on.RecoveredGoodputPct)
	}
	var rejected, shed int64
	for _, r := range on.Rows {
		rejected += r.Rejected
		shed += r.Shed
	}
	if rejected == 0 {
		t.Error("shedding-on run rejected nothing: the admission controller never engaged")
	}
	if shed == 0 {
		t.Error("shedding-on run shed nothing to the preliminary level: degrade mode never engaged")
	}
	degraded := int64(0)
	for _, r := range on.Rows {
		degraded += r.Degraded
	}
	if degraded == 0 {
		t.Error("no completion was served degraded: weak views never reached clients")
	}

	// Session guarantees (incl. cross-object WFR) hold in both modes, storm
	// and degraded phases included.
	for _, m := range res.Modes {
		if m.Check == nil {
			t.Fatalf("%s: missing history check", m.Mode)
		}
		if n := m.Check.Violations(); n != 0 {
			t.Errorf("%s: %d history violations:\n%v", m.Mode, n, m.Check.SessionViolations)
		}
		if m.Check.Ops == 0 {
			t.Errorf("%s: recorded history is empty", m.Mode)
		}
	}

	// Same seed, byte-identical output — the replay witness.
	_, js2 := run()
	if !bytes.Equal(js, js2) {
		t.Error("same-seed replay produced different BENCH_overload.json bytes")
	}
}
