package bench

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"correctables/internal/apps/adserver"
	"correctables/internal/apps/twissandra"
	"correctables/internal/cassandra"
	"correctables/internal/netsim"
	"correctables/internal/ycsb"
)

// Fig11Row is one datapoint of Figure 11: application-level latency vs
// throughput for the ad serving system and Twissandra, baseline (C2, no
// speculation) vs ICG (CC2 with speculation), under YCSB-shaped workloads.
type Fig11Row struct {
	App      string // "ads" or "twissandra"
	Workload string // "A", "B", "C"
	System   string // "C2" or "CC2"
	Threads  int
	// Throughput is application operations per model second.
	Throughput float64
	// Latency is the average end-to-end latency of the read operation
	// (fetchAdsByUserId / get_timeline), including the speculative or
	// sequential second-stage fetch.
	Latency time.Duration
	// MisspeculationPct is the fraction of speculative reads whose
	// preliminary diverged (the paper observes < 1%).
	MisspeculationPct float64
}

// fig11ThreadSweep returns per-app client thread counts.
func fig11ThreadSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{2, 6}
	}
	return []int{2, 4, 8, 16, 32}
}

// adsDB adapts the ad service to the YCSB runner: a "read" is
// FetchAdsByUserID, an "update" rewrites a profile's references.
type adsDB struct {
	svc         *adserver.Service
	speculative bool
	opts        adserver.LoadOptions
	profiles    int
}

func (db *adsDB) Read(rng *rand.Rand, key string) (ycsb.ReadOutcome, error) {
	uid := keyIndex(key) % db.profiles
	out, err := db.svc.FetchAdsByUserID(context.Background(), uid, db.speculative)
	if err != nil {
		return ycsb.ReadOutcome{}, err
	}
	return ycsb.ReadOutcome{
		HasPrelim:     db.speculative,
		PrelimLatency: out.PrelimAt,
		FinalLatency:  out.Latency,
		Diverged:      out.Misspeculated,
	}, nil
}

func (db *adsDB) Update(rng *rand.Rand, key string, value []byte) (time.Duration, error) {
	uid := keyIndex(key) % db.profiles
	return db.svc.UpdateProfile(context.Background(), uid, adserver.RandomRefs(rng, db.opts))
}

// twissDB adapts the microblogging service likewise.
type twissDB struct {
	svc         *twissandra.Service
	speculative bool
	timelines   int
}

func (db *twissDB) Read(rng *rand.Rand, key string) (ycsb.ReadOutcome, error) {
	user := keyIndex(key) % db.timelines
	out, err := db.svc.GetTimeline(context.Background(), user, db.speculative)
	if err != nil {
		return ycsb.ReadOutcome{}, err
	}
	return ycsb.ReadOutcome{
		HasPrelim:     db.speculative,
		PrelimLatency: out.PrelimAt,
		FinalLatency:  out.Latency,
		Diverged:      out.Misspeculated,
	}, nil
}

func (db *twissDB) Update(rng *rand.Rand, key string, value []byte) (time.Duration, error) {
	user := keyIndex(key) % db.timelines
	return db.svc.PostTweet(context.Background(), user, "bench tweet "+key, rng)
}

// keyIndex extracts the numeric suffix of a YCSB key.
func keyIndex(key string) int {
	n := 0
	for _, c := range key {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Fig11 reproduces Figure 11: speculation via ICG in the advertising system
// (replicas FRK/IRL/VRG) and Twissandra (replicas VRG/NCA/ORE), client in
// IRL. The CC2 variant hides the strong read's latency behind the
// speculative second-stage fetch; the paper reports up to 40% latency
// reduction (100ms -> 60ms for the ad system) at a ~6% throughput cost,
// with divergence consistently under 1%.
func Fig11(cfg Config) []Fig11Row {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(12*time.Second, 2*time.Second) // model time
	warmup := cfg.pickDur(1600*time.Millisecond, 200*time.Millisecond)

	adsLoad := adserver.LoadOptions{Profiles: 400, Ads: 2000, MaxRefs: 8, AdBodySize: 600, Seed: cfg.Seed}
	twLoad := twissandra.LoadOptions{Tweets: 2000, Timelines: 400, Seed: cfg.Seed}
	if cfg.Quick {
		adsLoad = adserver.LoadOptions{Profiles: 60, Ads: 300, MaxRefs: 4, AdBodySize: 200, Seed: cfg.Seed}
		twLoad = twissandra.LoadOptions{Tweets: 200, Timelines: 60, Seed: cfg.Seed}
	}

	type appCase struct {
		app     string
		regions []netsim.Region
		coord   netsim.Region
		makeDB  func(cluster *cassandra.Cluster, speculative bool) ycsb.DB
		records int
	}
	cases := []appCase{
		{
			app:     "ads",
			regions: []netsim.Region{netsim.FRK, netsim.IRL, netsim.VRG},
			coord:   netsim.FRK,
			makeDB: func(cluster *cassandra.Cluster, speculative bool) ycsb.DB {
				b := cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.FRK), cassandra.BindingConfig{})
				svc := adserver.NewService(b)
				return &adsDB{svc: svc, speculative: speculative, opts: adsLoad, profiles: adsLoad.Profiles}
			},
			records: adsLoad.Profiles,
		},
		{
			app:     "twissandra",
			regions: []netsim.Region{netsim.VRG, netsim.NCA, netsim.ORE},
			coord:   netsim.VRG,
			makeDB: func(cluster *cassandra.Cluster, speculative bool) ycsb.DB {
				b := cassandra.NewBinding(cassandra.NewClient(cluster, netsim.IRL, netsim.VRG), cassandra.BindingConfig{})
				svc := twissandra.NewService(b)
				return &twissDB{svc: svc, speculative: speculative, timelines: twLoad.Timelines}
			},
			records: twLoad.Timelines,
		},
	}

	var rows []Fig11Row
	var mu sync.Mutex
	for _, ac := range cases {
		for _, wname := range []string{"A", "B", "C"} {
			for _, threads := range fig11ThreadSweep(cfg) {
				for _, sys := range []struct {
					name        string
					correctable bool
					speculative bool
				}{{"C2", false, false}, {"CC2", true, true}} {
					h := newHarness(cfg)
					cluster := h.newCassandra(cfg, cassandraOpts{
						regions:     ac.regions,
						correctable: sys.correctable,
						confirmOpt:  true,
					})
					if ac.app == "ads" {
						adserver.Load(cluster, adsLoad)
					} else {
						twissandra.Load(cluster, twLoad)
					}
					w := workloadByName(wname, ycsb.DistZipfian, ac.records, 128)
					db := ac.makeDB(cluster, sys.speculative)
					res := ycsb.Run(w, db, h.clock, ycsb.Options{
						Threads:  threads,
						Duration: dur,
						Warmup:   warmup,
						Seed:     cfg.Seed,
					})
					h.drain()
					missPct := 0.0
					if res.PrelimReads > 0 {
						missPct = 100 * float64(res.Diverged) / float64(res.PrelimReads)
					}
					mu.Lock()
					rows = append(rows, Fig11Row{
						App:               ac.app,
						Workload:          wname,
						System:            sys.name,
						Threads:           threads,
						Throughput:        res.ThroughputOps,
						Latency:           res.ReadFinal.Mean(),
						MisspeculationPct: missPct,
					})
					mu.Unlock()
				}
			}
		}
	}
	return rows
}
