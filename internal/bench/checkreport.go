package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"correctables/internal/history"
)

// buildCheckReport verifies a recorded history with the default checker
// set and returns the report every checked experiment shares. The default
// set is: client-label collisions (an untrustworthy history), the session
// guarantees (read-your-writes, monotonic reads, writes-follow-reads),
// cross-object writes-follow-reads (sound for the checked stores — their
// version tokens come from one store-wide counter, zxid or version, so
// cross-key comparison is meaningful), and the causal-cut checker over the
// incremental ladder. linModel additionally runs the Wing & Gong search
// against a sequential model: "registers", "queues", or "" for none.
func buildCheckReport(recorder *history.Recorder, clients int, linModel string) *CheckReport {
	ops := recorder.Ops()
	report := &CheckReport{Clients: clients, Ops: len(ops)}
	if n := recorder.Collisions(); n > 0 {
		report.SessionViolations = append(report.SessionViolations,
			fmt.Sprintf("history: %d client-label collisions — the recorded history is untrustworthy", n))
	}
	for _, v := range history.CheckSessionGuarantees(ops) {
		report.SessionViolations = append(report.SessionViolations, v.String())
	}
	for _, v := range history.CheckCrossObjectWFR(ops) {
		report.SessionViolations = append(report.SessionViolations, v.String())
	}
	for _, v := range history.CheckCausalCut(ops) {
		report.SessionViolations = append(report.SessionViolations, v.String())
	}
	switch linModel {
	case "registers":
		linVs, inconclusive := history.CheckRegisters(ops, 0)
		for _, v := range linVs {
			report.LinViolations = append(report.LinViolations, v.String())
		}
		report.Inconclusive = inconclusive
	case "queues":
		linVs, inconclusive := history.CheckQueues(ops, 0)
		for _, v := range linVs {
			report.LinViolations = append(report.LinViolations, v.String())
		}
		report.Inconclusive = inconclusive
	}
	sum := sha256.Sum256(history.SerializeOps(ops))
	report.HistoryDigest = hex.EncodeToString(sum[:])
	return report
}
