package bench

import (
	"time"

	"correctables/internal/ycsb"
)

// Fig6Row is one datapoint of Figure 6: average latency as a function of
// attained throughput for one system under one YCSB workload, at one
// offered-load level (thread count).
type Fig6Row struct {
	Workload string // "A", "B", "C"
	System   string // "C1", "C2", "CC2 preliminary", "CC2 final"
	// Threads is the total client threads across the three regions.
	Threads int
	// Throughput is attained ops/s (model time) summed over all clients.
	Throughput float64
	// Latency is the average read-view latency for the IRL client (the one
	// the paper reports).
	Latency time.Duration
	// P99 is the 99th-percentile latency for the IRL client.
	P99 time.Duration
}

// fig6ThreadSweep returns the offered-load levels.
func fig6ThreadSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{3, 12}
	}
	return []int{3, 6, 12, 24, 48, 96}
}

// Fig6 reproduces Figure 6: performance of Correctable Cassandra under
// load, YCSB workloads A, B and C; three clients (one per region), each
// connected to a remote replica; replication factor 3, W=1. CC2's
// preliminary and final series share throughput but differ in latency, and
// CC trades a few percent of throughput for the preliminary flushing work.
func Fig6(cfg Config) []Fig6Row {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(12*time.Second, 1600*time.Millisecond) // model time
	warmup := cfg.pickDur(2*time.Second, 200*time.Millisecond)
	records := 1000
	valueSize := 1024 // YCSB default record size

	type system struct {
		name        string
		correctable bool
		quorum      int
		prelim      bool
	}
	systems := []system{
		{"C1", false, 1, false},
		{"C2", false, 2, false},
		{"CC2", true, 2, true},
	}

	var rows []Fig6Row
	for _, wname := range []string{"A", "B", "C"} {
		for _, threadsTotal := range fig6ThreadSweep(cfg) {
			for _, sys := range systems {
				w := workloadByName(wname, ycsb.DistZipfian, records, valueSize)
				h := newHarness(cfg)
				cluster := h.newCassandra(cfg, cassandraOpts{correctable: sys.correctable})
				preloadDataset(cluster, w)
				results := runGroups(cluster, w, sys.quorum, sys.prelim, threadsTotal/3, ycsb.Options{
					Duration: dur,
					Warmup:   warmup,
					Seed:     cfg.Seed,
				})
				h.drain()
				var totalThroughput float64
				for _, r := range results {
					totalThroughput += r.ThroughputOps
				}
				// The paper reports latency for the IRL client (group order
				// follows cluster.Regions(): FRK, IRL, VRG -> index 1).
				irl := results[1]
				if sys.prelim {
					rows = append(rows,
						Fig6Row{wname, "CC2 preliminary", threadsTotal, totalThroughput,
							irl.ReadPrelim.Mean(), irl.ReadPrelim.Percentile(99)},
						Fig6Row{wname, "CC2 final", threadsTotal, totalThroughput,
							irl.ReadFinal.Mean(), irl.ReadFinal.Percentile(99)},
					)
				} else {
					rows = append(rows, Fig6Row{wname, sys.name, threadsTotal, totalThroughput,
						irl.ReadFinal.Mean(), irl.ReadFinal.Percentile(99)})
				}
			}
		}
	}
	return rows
}

// workloadByName builds one of the paper's workloads.
func workloadByName(name string, dist ycsb.DistKind, records, valueSize int) ycsb.Workload {
	switch name {
	case "A":
		return ycsb.WorkloadA(dist, records, valueSize)
	case "B":
		return ycsb.WorkloadB(dist, records, valueSize)
	case "C":
		return ycsb.WorkloadC(dist, records, valueSize)
	default:
		panic("bench: unknown workload " + name)
	}
}

// throughputDropPct is a helper for EXPERIMENTS.md: the relative throughput
// cost of CC2 vs C2 at the same offered load (the paper reports ~6%).
func throughputDropPct(rows []Fig6Row, workload string, threads int) float64 {
	var c2, cc2 float64
	for _, r := range rows {
		if r.Workload != workload || r.Threads != threads {
			continue
		}
		switch r.System {
		case "C2":
			c2 = r.Throughput
		case "CC2 final":
			cc2 = r.Throughput
		}
	}
	if c2 == 0 {
		return 0
	}
	return 100 * (c2 - cc2) / c2
}
