package bench

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"correctables/internal/metrics"
	"correctables/internal/ycsb"
)

// metricFingerprint serializes every observable metric of a run — op
// counts, throughput, exact histogram statistics, and per-class meter
// bytes — so two runs can be compared byte for byte.
func metricFingerprint(h *harness, results []*ycsb.Result) string {
	var b strings.Builder
	histo := func(name string, hg *metrics.Histogram) {
		fmt.Fprintf(&b, "  %s: n=%d mean=%d p50=%d p99=%d min=%d max=%d\n",
			name, hg.Count(), int64(hg.Mean()), int64(hg.Percentile(50)),
			int64(hg.Percentile(99)), int64(hg.Min()), int64(hg.Max()))
	}
	for i, r := range results {
		fmt.Fprintf(&b, "group %d: ops=%d reads=%d updates=%d prelims=%d diverged=%d errors=%d elapsed=%d throughput=%v\n",
			i, r.Ops, r.Reads, r.Updates, r.PrelimReads, r.Diverged, r.Errors, int64(r.Elapsed), r.ThroughputOps)
		histo("readFinal", r.ReadFinal)
		histo("readPrelim", r.ReadPrelim)
		histo("update", r.UpdateLat)
	}
	snap := h.meter.Snapshot()
	classes := make([]string, 0, len(snap))
	for c := range snap {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "meter %s: bytes=%d msgs=%d\n", c, snap[c].Bytes, snap[c].Messages)
	}
	return b.String()
}

// fig6StyleRun executes one Fig 6 saturation cell (YCSB workload A, CC2,
// three regional client groups) on a fresh harness and returns the full
// metric fingerprint. Callback-timer probes armed across the run record
// their firing instants into the fingerprint, so the replay gate also
// covers the RunAt/RunAfter dispatch path (which now carries all
// fire-and-forget traffic: async replication, read repair, prelim
// flushes).
func fig6StyleRun(cfg Config) string {
	w := workloadByName("A", ycsb.DistZipfian, 1000, 1024)
	h := newHarness(cfg)
	cluster := h.newCassandra(cfg, cassandraOpts{correctable: true})
	preloadDataset(cluster, w)
	var cbLog []string
	for i, d := range []time.Duration{
		50 * time.Millisecond, 700 * time.Millisecond, 1900 * time.Millisecond,
	} {
		i := i
		h.clock.RunAfter(d, func() {
			cbLog = append(cbLog, fmt.Sprintf("cb%d@%d", i, h.clock.Now()))
		})
	}
	results := runGroups(cluster, w, 2, true, 8, ycsb.Options{
		Duration: 2 * time.Second,
		Warmup:   200 * time.Millisecond,
		Seed:     cfg.Seed,
	})
	h.drain()
	return metricFingerprint(h, results) + "callbacks: " + strings.Join(cbLog, " ") + "\n"
}

// TestVirtualClockDeterministicReplay is the reproducibility guarantee the
// virtual clock exists for: two same-seed runs of a fig6-style workload
// produce byte-identical metrics — every histogram percentile, every meter
// byte. (Under the wall clock this cannot hold: OS scheduling varies the
// interleaving.)
func TestVirtualClockDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	first := fig6StyleRun(cfg)
	if len(first) == 0 || !strings.Contains(first, "ops=") {
		t.Fatalf("empty fingerprint:\n%s", first)
	}
	for i := 0; i < 2; i++ {
		if got := fig6StyleRun(cfg); got != first {
			t.Fatalf("replay %d diverged:\n--- first ---\n%s\n--- replay ---\n%s", i+1, first, got)
		}
	}
	// A different seed must actually change the run (guards against the
	// fingerprint accidentally ignoring the interesting state).
	if got := fig6StyleRun(Config{Seed: 43, Quick: true}); got == first {
		t.Fatal("different seed produced identical metrics; fingerprint too weak or seed unused")
	}
}
