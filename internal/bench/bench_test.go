package bench

import (
	"strings"
	"testing"
	"time"

	"correctables/internal/ycsb"
)

// quickCfg runs every driver in its reduced mode at a fast scale. The
// assertions below check the *shapes* the paper reports, not absolute
// numbers.
func quickCfg() Config { return Config{Scale: 0.1, Seed: 42, Quick: true} }

func fig5Row(t *testing.T, rows []Fig5Row, system string) Fig5Row {
	t.Helper()
	for _, r := range rows {
		if r.System == system {
			return r
		}
	}
	t.Fatalf("system %q missing from fig5 rows", system)
	return Fig5Row{}
}

func TestFig5Shapes(t *testing.T) {
	rows := Fig5(quickCfg())
	if len(rows) != 7 {
		t.Fatalf("fig5 rows = %d, want 7", len(rows))
	}
	c1 := fig5Row(t, rows, "C1")
	c2 := fig5Row(t, rows, "C2")
	c3 := fig5Row(t, rows, "C3")
	cc2p := fig5Row(t, rows, "CC2 preliminary")
	cc2f := fig5Row(t, rows, "CC2 final")
	cc3p := fig5Row(t, rows, "CC3 preliminary")
	cc3f := fig5Row(t, rows, "CC3 final")

	// Preliminary views follow C1; final views follow C2/C3 (paper §6.2.1).
	within := func(a, b time.Duration, tol float64) bool {
		d := float64(a - b)
		if d < 0 {
			d = -d
		}
		return d <= tol*float64(b)
	}
	if !within(cc2p.Avg, c1.Avg, 0.5) || !within(cc3p.Avg, c1.Avg, 0.5) {
		t.Errorf("preliminary avgs (%v, %v) should track C1 (%v)", cc2p.Avg, cc3p.Avg, c1.Avg)
	}
	if !within(cc2f.Avg, c2.Avg, 0.5) {
		t.Errorf("CC2 final (%v) should track C2 (%v)", cc2f.Avg, c2.Avg)
	}
	if !within(cc3f.Avg, c3.Avg, 0.5) {
		t.Errorf("CC3 final (%v) should track C3 (%v)", cc3f.Avg, c3.Avg)
	}
	// Gap ordering: CC3's speculation window far exceeds CC2's.
	if cc3f.Avg-cc3p.Avg < 2*(cc2f.Avg-cc2p.Avg) {
		t.Errorf("CC3 gap (%v) should dwarf CC2 gap (%v)", cc3f.Avg-cc3p.Avg, cc2f.Avg-cc2p.Avg)
	}
	if s := FormatFig5(rows); !strings.Contains(s, "Figure 5") {
		t.Error("FormatFig5 missing title")
	}
}

func TestFig9Shapes(t *testing.T) {
	rows := Fig9(quickCfg())
	if len(rows) != 12 { // 4 placements x 3 series
		t.Fatalf("fig9 rows = %d, want 12", len(rows))
	}
	byKey := map[string]Fig9Row{}
	for _, r := range rows {
		byKey[r.Placement+"|"+r.Series] = r
	}
	for _, pc := range fig9Configs() {
		prelim := byKey[pc.name+"|CZK preliminary"]
		final := byKey[pc.name+"|CZK final"]
		zkRow := byKey[pc.name+"|ZK"]
		if prelim.Avg >= final.Avg {
			t.Errorf("%s: preliminary (%v) not faster than final (%v)", pc.name, prelim.Avg, final.Avg)
		}
		// The final view costs about what vanilla ZK costs (within 50%).
		ratio := float64(final.Avg) / float64(zkRow.Avg)
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("%s: CZK final/ZK ratio = %.2f", pc.name, ratio)
		}
	}
	// The third placement (follower IRL, leader VRG) has the biggest gap.
	gap := func(name string) time.Duration {
		return byKey[name+"|CZK final"].Avg - byKey[name+"|CZK preliminary"].Avg
	}
	if gap("Follower (IRL), leader VRG") <= gap("Leader (IRL)") {
		t.Errorf("distant-leader gap (%v) should exceed local-leader gap (%v)",
			gap("Follower (IRL), leader VRG"), gap("Leader (IRL)"))
	}
	if s := FormatFig9(rows); !strings.Contains(s, "Figure 9") {
		t.Error("FormatFig9 missing title")
	}
}

func TestFig12Shapes(t *testing.T) {
	points, summaries := Fig12(quickCfg())
	if len(summaries) != 2 {
		t.Fatalf("fig12 summaries = %d", len(summaries))
	}
	var czk, zkSum Fig12Summary
	for _, s := range summaries {
		if s.System == "CZK" {
			czk = s
		} else {
			zkSum = s
		}
	}
	if czk.FastCount == 0 || czk.SlowCount == 0 {
		t.Fatalf("CZK regimes: fast=%d slow=%d", czk.FastCount, czk.SlowCount)
	}
	if czk.FastAvg >= czk.SlowAvg {
		t.Errorf("CZK fast avg (%v) not below slow avg (%v)", czk.FastAvg, czk.SlowAvg)
	}
	if zkSum.FastCount != 0 {
		t.Errorf("ZK should have no preliminary-confirmed purchases, got %d", zkSum.FastCount)
	}
	// ZK sells every ticket at coordination latency; CZK's fast regime is
	// far below it.
	if czk.FastAvg*2 >= zkSum.SlowAvg {
		t.Errorf("CZK fast (%v) should be well below ZK (%v)", czk.FastAvg, zkSum.SlowAvg)
	}
	if s := FormatFig12(points, summaries); !strings.Contains(s, "Figure 12") {
		t.Error("FormatFig12 missing title")
	}
}

func TestFig10Shapes(t *testing.T) {
	rows := Fig10(quickCfg())
	get := func(system string, size, clients int) Fig10Row {
		for _, r := range rows {
			if r.System == system && r.QueueSize == size && r.Clients == clients {
				return r
			}
		}
		t.Fatalf("row %s/%d/%d missing", system, size, clients)
		return Fig10Row{}
	}
	// ZK cost grows with queue size; CZK is independent of it.
	zkSmall, zkLarge := get("ZK", 500, 1), get("ZK", 1000, 1)
	if zkLarge.KBPerOp <= zkSmall.KBPerOp*1.3 {
		t.Errorf("ZK kB/op should grow with queue size: %0.2f -> %0.2f", zkSmall.KBPerOp, zkLarge.KBPerOp)
	}
	czkSmall, czkLarge := get("CZK", 500, 1), get("CZK", 1000, 1)
	if diff := czkLarge.KBPerOp - czkSmall.KBPerOp; diff > 0.1 || diff < -0.1 {
		t.Errorf("CZK kB/op should be size-independent: %0.2f vs %0.2f", czkSmall.KBPerOp, czkLarge.KBPerOp)
	}
	// ZK costs much more than CZK at the same point (paper: -71%..-81%).
	if czkSmall.KBPerOp >= zkSmall.KBPerOp*0.6 {
		t.Errorf("CZK (%0.2f) should cost well under ZK (%0.2f)", czkSmall.KBPerOp, zkSmall.KBPerOp)
	}
	if s := FormatFig10(rows); !strings.Contains(s, "Figure 10") {
		t.Error("FormatFig10 missing title")
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment; skipped in -short")
	}
	rows := Fig7(quickCfg())
	if len(rows) == 0 {
		t.Fatal("no fig7 rows")
	}
	// Pick the highest-contention point of each config.
	best := map[string]Fig7Row{}
	for _, r := range rows {
		k := r.Workload + string(r.Distribution)
		if cur, ok := best[k]; !ok || r.Threads > cur.Threads {
			best[k] = r
		}
	}
	aLatest := best["A"+string(ycsb.DistLatest)]
	bZipf := best["B"+string(ycsb.DistZipfian)]
	if aLatest.Reads == 0 {
		t.Fatal("A-Latest measured no reads")
	}
	// A-Latest diverges substantially; B-Zipfian barely (paper Fig 7).
	if aLatest.DivergencePct < 1 {
		t.Errorf("A-Latest divergence = %.2f%%, want clearly nonzero", aLatest.DivergencePct)
	}
	if bZipf.DivergencePct >= aLatest.DivergencePct {
		t.Errorf("B-Zipfian (%.2f%%) should diverge less than A-Latest (%.2f%%)",
			bZipf.DivergencePct, aLatest.DivergencePct)
	}
	if s := FormatFig7(rows); !strings.Contains(s, "Figure 7") {
		t.Error("FormatFig7 missing title")
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment; skipped in -short")
	}
	rows := Fig8(quickCfg())
	byKey := map[string]Fig8Row{}
	for _, r := range rows {
		byKey[r.Workload+string(r.Distribution)+r.System] = r
	}
	aC1 := byKey["A"+string(ycsb.DistLatest)+"C1"]
	aCC2 := byKey["A"+string(ycsb.DistLatest)+"CC2"]
	aOpt := byKey["A"+string(ycsb.DistLatest)+"*CC2"]
	if aCC2.KBPerOp <= aC1.KBPerOp {
		t.Errorf("unoptimized CC2 (%0.2f) must cost more than C1 (%0.2f)", aCC2.KBPerOp, aC1.KBPerOp)
	}
	if aOpt.KBPerOp >= aCC2.KBPerOp {
		t.Errorf("confirmation opt (%0.2f) must cut CC2's cost (%0.2f)", aOpt.KBPerOp, aCC2.KBPerOp)
	}
	if aOpt.KBPerOp <= aC1.KBPerOp {
		t.Errorf("*CC2 (%0.2f) still costs more than C1 (%0.2f)", aOpt.KBPerOp, aC1.KBPerOp)
	}
	if s := FormatFig8(rows); !strings.Contains(s, "Figure 8") {
		t.Error("FormatFig8 missing title")
	}
}

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment; skipped in -short")
	}
	rows := Fig6(quickCfg())
	byKey := map[string]Fig6Row{}
	for _, r := range rows {
		if r.Workload == "B" && r.Threads == 3 {
			byKey[r.System] = r
		}
	}
	c1, c2 := byKey["C1"], byKey["C2"]
	prelim, final := byKey["CC2 preliminary"], byKey["CC2 final"]
	if c1.Latency >= c2.Latency {
		t.Errorf("C1 latency (%v) should be below C2 (%v)", c1.Latency, c2.Latency)
	}
	if prelim.Latency >= final.Latency {
		t.Errorf("preliminary (%v) should beat final (%v)", prelim.Latency, final.Latency)
	}
	if prelim.Throughput != final.Throughput {
		t.Error("CC2 preliminary and final share the same run; throughput must match")
	}
	if s := FormatFig6(rows); !strings.Contains(s, "Figure 6") {
		t.Error("FormatFig6 missing title")
	}
	_ = throughputDropPct(rows, "B", 3)
}

func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment; skipped in -short")
	}
	rows := Fig11(quickCfg())
	var adsBase, adsSpec Fig11Row
	for _, r := range rows {
		if r.App == "ads" && r.Workload == "B" && r.Threads == 2 {
			if r.System == "C2" {
				adsBase = r
			} else {
				adsSpec = r
			}
		}
	}
	if adsBase.Latency == 0 || adsSpec.Latency == 0 {
		t.Fatal("missing ads rows")
	}
	if adsSpec.Latency >= adsBase.Latency {
		t.Errorf("speculation (%v) should beat baseline (%v)", adsSpec.Latency, adsBase.Latency)
	}
	if adsSpec.MisspeculationPct > 10 {
		t.Errorf("misspeculation = %.1f%%, want low", adsSpec.MisspeculationPct)
	}
	if s := FormatFig11(rows); !strings.Contains(s, "Figure 11") {
		t.Error("FormatFig11 missing title")
	}
}
