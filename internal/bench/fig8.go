package bench

import (
	"time"

	"correctables/internal/netsim"
	"correctables/internal/ycsb"
)

// Fig8Row is one datapoint of Figure 8: client-link efficiency (kB
// transferred per operation) for one system under one workload/
// distribution at one contention level.
type Fig8Row struct {
	Workload     string
	Distribution ycsb.DistKind
	Threads      int
	// System is "C1" (baseline weak reads), "CC2" (ICG, no confirmation
	// optimization) or "*CC2" (ICG with the confirmation optimization).
	System string
	// KBPerOp is client-link kilobytes per completed operation.
	KBPerOp float64
	// OverheadPct is the relative overhead vs the C1 baseline at the same
	// point (0 for C1 itself).
	OverheadPct float64
}

// Fig8 reproduces Figure 8: bandwidth overhead of the ICG implementation in
// Correctable Cassandra under the divergence-experiment conditions (the
// worst case for the confirmation optimization, since diverged finals
// cannot be replaced by confirmations). The paper measures, for workload
// A-Latest, +77% for unoptimized CC2 cut to +27% by confirmations; for
// workload B, +90% down to +15%.
func Fig8(cfg Config) []Fig8Row {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(12*time.Second, 2*time.Second) // model time
	const records = 1000
	const valueSize = 1024

	type system struct {
		name        string
		correctable bool
		confirmOpt  bool
		quorum      int
		prelim      bool
	}
	systems := []system{
		{"C1", false, false, 1, false},
		{"CC2", true, false, 2, true},
		{"*CC2", true, true, 2, true},
	}

	sweep := fig7ThreadSweep(cfg)
	if cfg.Quick {
		sweep = sweep[:1]
	}

	var rows []Fig8Row
	for _, wname := range []string{"A", "B"} {
		for _, dist := range []ycsb.DistKind{ycsb.DistLatest, ycsb.DistZipfian} {
			for _, threadsTotal := range sweep {
				var baseline float64
				for _, sys := range systems {
					w := workloadByName(wname, dist, records, valueSize)
					h := newHarness(cfg)
					cluster := h.newCassandra(cfg, cassandraOpts{
						correctable: sys.correctable,
						confirmOpt:  sys.confirmOpt,
					})
					preloadDataset(cluster, w)
					base := h.meter.Class(netsim.LinkClient).Bytes
					// No warmup: the meter integrates the whole run, so ops
					// and bytes must cover the same span.
					results := runGroups(cluster, w, sys.quorum, sys.prelim, threadsTotal/3, ycsb.Options{
						Duration: dur,
						Seed:     cfg.Seed,
					})
					h.drain()
					var ops int64
					for _, r := range results {
						ops += r.Ops
					}
					if ops == 0 {
						ops = 1
					}
					bytes := h.meter.Class(netsim.LinkClient).Bytes - base
					kb := float64(bytes) / 1024 / float64(ops)
					row := Fig8Row{
						Workload:     wname,
						Distribution: dist,
						Threads:      threadsTotal,
						System:       sys.name,
						KBPerOp:      kb,
					}
					if sys.name == "C1" {
						baseline = kb
					} else if baseline > 0 {
						row.OverheadPct = 100 * (kb - baseline) / baseline
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows
}
