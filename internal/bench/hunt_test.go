package bench

import (
	"bytes"
	"testing"
)

// huntTestOpts is a bounded seed budget the planted bug must fall within:
// faults are in force for most of the tracks-harsh horizon, so the very
// first seeds should already trip the corrupted-version checkers.
func huntTestOpts(plant bool) HuntOptions {
	return HuntOptions{
		Seeds:     4,
		StartSeed: 42,
		Profiles:  []string{"tracks-harsh"},
		Workers:   4,
		Plant:     plant,
	}
}

// TestHuntFindsPlantedViolation is the hunt's end-to-end self-test: with
// the planted version-corruption bug enabled, a bounded seed budget must
// surface at least one checker violation, and replaying the archived
// shrunk repro must reproduce the identical violation byte for byte.
func TestHuntFindsPlantedViolation(t *testing.T) {
	res, err := Hunt(Config{Seed: 42, Quick: true}, huntTestOpts(true))
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("planted bug not found within %d seeds x %v", res.Seeds, res.Profiles)
	}
	f := res.Findings[0]
	if f.Repro == nil {
		t.Fatalf("finding has no repro")
	}
	if f.Violation == "" || f.Guarantee == "" {
		t.Fatalf("finding lacks violation detail: %+v", f)
	}
	rep, err := HuntReplay(f.Repro)
	if err != nil {
		t.Fatalf("HuntReplay: %v", err)
	}
	if !rep.Identical {
		t.Fatalf("replay did not reproduce byte-for-byte:\narchived:  %s\n  digest %s\nreplayed:  %s\n  digest %s",
			f.Repro.Violation, f.Repro.HistoryDigest, rep.Violation, rep.HistoryDigest)
	}
}

// TestHuntShrinkDeterministic: the same violation must shrink to a
// byte-identical repro every time — the minimizer is pure greedy over a
// deterministic world, so two independent hunts of the same seed window
// must archive identical JSON.
func TestHuntShrinkDeterministic(t *testing.T) {
	first, err := Hunt(Config{Seed: 42, Quick: true}, huntTestOpts(true))
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	second, err := Hunt(Config{Seed: 42, Quick: true}, huntTestOpts(true))
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(first.Findings) == 0 || len(second.Findings) != len(first.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(first.Findings), len(second.Findings))
	}
	a, err := HuntReproJSON(first.Findings[0].Repro)
	if err != nil {
		t.Fatalf("HuntReproJSON: %v", err)
	}
	b, err := HuntReproJSON(second.Findings[0].Repro)
	if err != nil {
		t.Fatalf("HuntReproJSON: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("shrunk repros differ across identical hunts:\n%s\n---\n%s", a, b)
	}
}

// TestHuntShrinkPreservesViolation: the shrunk world must still exhibit
// the target violation, and must be no larger than the original world on
// every shrink axis.
func TestHuntShrinkPreservesViolation(t *testing.T) {
	res, err := Hunt(Config{Seed: 42, Quick: true}, huntTestOpts(true))
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("planted bug not found")
	}
	f := res.Findings[0]
	if f.TracksAfter > f.TracksBefore || f.EventsAfter > f.EventsBefore || f.ClientsAfter > f.ClientsBefore {
		t.Fatalf("shrunk world grew: %+v", f)
	}
	w, err := worldOf(f.Repro)
	if err != nil {
		t.Fatalf("worldOf: %v", err)
	}
	out := runHuntWorld(w)
	v, ok := out.match(huntTarget{Guarantee: f.Guarantee, Client: f.Client, Key: f.Key})
	if !ok {
		t.Fatalf("shrunk world no longer exhibits %s on %s/%s; violations: %v",
			f.Guarantee, f.Client, f.Key, out.violations)
	}
	if v.String() != f.Violation {
		t.Fatalf("shrunk world violation drifted:\nwant %s\ngot  %s", f.Violation, v.String())
	}
}

// TestHuntCleanSweepSmoke: without the planted bug, a small sweep across
// both composed-track profiles must complete with zero violations. The
// full-scale (1000+ seed) clean sweep runs in the nightly hunt.
func TestHuntCleanSweepSmoke(t *testing.T) {
	res, err := Hunt(Config{Seed: 42, Quick: true}, HuntOptions{
		Seeds:     4,
		StartSeed: 42,
		Profiles:  []string{"tracks-mild", "tracks-harsh"},
		Workers:   4,
	})
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("clean sweep found %d violations; first: %s",
			len(res.Findings), res.Findings[0].Violation)
	}
	if res.Runs != 8 || res.Ops == 0 {
		t.Fatalf("sweep did not run: %+v", res)
	}
}

// TestHuntShardedProfileClean: the sharded nemesis product runs the same
// partition + WAN schedules against a 4-shard ring — cross-shard quorum
// reads, non-token-aware routing hops and shard-tagged hint replay all sit
// under the session and register checkers, and the histories must stay as
// clean as the unsharded world's.
func TestHuntShardedProfileClean(t *testing.T) {
	res, err := Hunt(Config{Seed: 42, Quick: true}, HuntOptions{
		Seeds:     4,
		StartSeed: 42,
		Profiles:  []string{"tracks-sharded"},
		Workers:   4,
	})
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("sharded sweep found %d violations; first: %s",
			len(res.Findings), res.Findings[0].Violation)
	}
	if res.Runs != 4 || res.Ops == 0 {
		t.Fatalf("sweep did not run: %+v", res)
	}
}

// TestHuntShardedPlantedViolationShardTagged: the planted-bug self-test on
// the sharded profile — the checkers must still catch the corruption when
// operations cross shard boundaries, proving the sharded plane does not
// mask real violations.
func TestHuntShardedPlantedViolationShardTagged(t *testing.T) {
	res, err := Hunt(Config{Seed: 42, Quick: true}, HuntOptions{
		Seeds:     6,
		StartSeed: 42,
		Profiles:  []string{"tracks-sharded"},
		Workers:   4,
		Plant:     true,
	})
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("planted bug not detected on the sharded profile")
	}
}
