package bench

import (
	"encoding/json"
	"os"
	"time"

	"correctables/internal/trace"
)

// marshalReport is the one JSON encoding every experiment artifact goes
// through (BENCH_*.json, hunt repros, trace sidecars): two-space indent,
// stable field order from the result structs. The per-experiment *JSON
// functions are thin wrappers kept for API stability.
func marshalReport(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// WriteReport marshals an experiment result and writes it to path with a
// trailing newline — the shared writer behind every -fault-json artifact.
func WriteReport(path string, v any) error {
	data, err := marshalReport(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteTrace writes a recorded tracer (plus the registry's sampled gauges
// as counter tracks, when non-nil) as Chrome trace-event JSON to path —
// loadable in Perfetto / chrome://tracing. Same-seed virtual-clock runs
// produce byte-identical files.
func WriteTrace(path string, trc *trace.Tracer, reg *trace.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trc.WriteChrome(f, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// PhaseDecomp is one phase's latency decomposition: model time accumulated
// per span category inside the phase window. Categories overlap by
// construction (a quorum wait covers its peers' net and server spans), so
// the columns decompose activity, not wall latency: each is the plain sum
// of span durations in the window — the queueing signal, doubled when two
// ops wait on the same server, which is exactly what a decomposition
// should show.
type PhaseDecomp struct {
	Phase string `json:"phase"`

	OpMs         float64 `json:"op_ms"`
	AdmissionMs  float64 `json:"admission_ms"`
	NetClientMs  float64 `json:"net_client_ms"`
	NetReplicaMs float64 `json:"net_replica_ms"`
	QueueMs      float64 `json:"queue_ms"`
	ServerMs     float64 `json:"server_ms"`
	FlushMs      float64 `json:"flush_ms"`
	QuorumMs     float64 `json:"quorum_ms"`
	HintMs       float64 `json:"hint_ms"`
	ElectionMs   float64 `json:"election_ms"`
}

// decompRow clips the tracer's spans to [start, end) and folds the
// category totals into one report row. Returns a zero row on a nil tracer.
func decompRow(trc *trace.Tracer, phase string, start, end time.Duration) PhaseDecomp {
	tt := trc.CategoryTotals(start, end)
	return PhaseDecomp{
		Phase:        phase,
		OpMs:         tt.Ms(trace.CatOp),
		AdmissionMs:  tt.Ms(trace.CatAdmission),
		NetClientMs:  tt.Ms(trace.CatNetClient),
		NetReplicaMs: tt.Ms(trace.CatNetReplica),
		QueueMs:      tt.Ms(trace.CatQueue),
		ServerMs:     tt.Ms(trace.CatServer),
		FlushMs:      tt.Ms(trace.CatFlush),
		QuorumMs:     tt.Ms(trace.CatQuorum),
		HintMs:       tt.Ms(trace.CatHint),
		ElectionMs:   tt.Ms(trace.CatElection),
	}
}
