package bench

import (
	"bytes"
	"testing"
	"time"

	"correctables/internal/metrics"
	"correctables/internal/netsim"
)

// TestFailoverRecoveryBounded is the recovery acceptance gate: the failover
// experiment must elect a replacement leader within the election-timeout
// bound, keep preliminary views flowing (at flat latency) right through the
// outage, confine final unavailability to the fault window, pass the
// history checkers, and replay byte-identically from the seed.
func TestFailoverRecoveryBounded(t *testing.T) {
	cfg := Config{Quick: true, Seed: 42, Check: true}
	res, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unit := cfg.pickDur(2*time.Second, 300*time.Millisecond)

	// Recovery happened, exactly where the election machinery promises:
	// after the fault, within ~2x the election timeout (base timeout u/2
	// plus the follower stagger and a vote round).
	if res.TimeToRecoveryMs <= 0 {
		t.Fatalf("no election after the fault: %+v", res)
	}
	if bound := metrics.Ms(unit); res.TimeToRecoveryMs > bound {
		t.Errorf("time-to-recovery %.1fms exceeds the election bound %.1fms", res.TimeToRecoveryMs, bound)
	}
	if res.NewLeader == string(netsim.FRK) || res.NewLeader == "" {
		t.Errorf("new leader %q, want a majority-side region", res.NewLeader)
	}
	if res.Epoch == 0 {
		t.Error("election record carries no epoch")
	}

	// The paper's availability claim under failover: the service was
	// preliminary-only for a bounded window, not silent.
	if res.PrelimOnlyWindowMs <= 0 {
		t.Errorf("prelim-only window %.1fms, want positive", res.PrelimOnlyWindowMs)
	}
	if res.OutagePrelims == 0 {
		t.Error("no preliminary views delivered during the outage window")
	}

	rows := make(map[string]map[string]FailoverRow)
	for _, r := range res.Rows {
		if rows[r.Population] == nil {
			rows[r.Population] = make(map[string]FailoverRow)
		}
		rows[r.Population][r.Phase] = r
	}
	for _, pop := range []string{"majority", "minority"} {
		if len(rows[pop]) != 4 {
			t.Fatalf("%s has %d phase rows, want 4", pop, len(rows[pop]))
		}
		// Finals are fully available outside the fault: the healthy phase is
		// untouched, and failed ops are charged to the phase their timeout
		// fired in, so a clean phase asserts clean conditions.
		if pct := rows[pop]["healthy"].FinalAvailabilityPct; pct != 100 {
			t.Errorf("%s healthy availability %.1f%%, want 100%%", pop, pct)
		}
		// Preliminary latency stays flat across the failover: prelims ride
		// the local client<->contact link, which no phase perturbs.
		base := rows[pop]["healthy"].PrelimMeanMs
		if base <= 0 {
			t.Fatalf("%s healthy phase recorded no prelims", pop)
		}
		for phase, r := range rows[pop] {
			if r.Prelims == 0 {
				continue
			}
			if ratio := r.PrelimMeanMs / base; ratio < 0.75 || ratio > 1.25 {
				t.Errorf("%s %s prelim mean %.2fms vs healthy %.2fms: not flat", pop, phase, r.PrelimMeanMs, base)
			}
		}
	}
	// Majority finals recover with the election: only ops overlapping the
	// outage fail (their timeouts fire in the outage/elected windows), and
	// the rejoin phase is clean again.
	if e := rows["majority"]["healthy"].Errors + rows["majority"]["rejoin"].Errors; e != 0 {
		t.Errorf("majority lost %d finals outside the fault window", e)
	}
	if e := rows["majority"]["outage"].Errors + rows["majority"]["elected"].Errors; e == 0 {
		t.Error("majority lost no finals to the leader outage; the fault did not bite")
	}
	// The severed minority loses finals for the whole partition but keeps
	// its prelims; its healthy phase is clean.
	var minorityErrs int64
	for _, r := range rows["minority"] {
		minorityErrs += r.Errors
	}
	if minorityErrs == 0 {
		t.Error("minority lost no finals during the partition")
	}
	if rows["minority"]["outage"].Prelims+rows["minority"]["elected"].Prelims == 0 {
		t.Error("severed minority served no prelims during the partition")
	}

	// The checked session population verified clean across the failover.
	if res.Check == nil {
		t.Fatal("no check report despite cfg.Check")
	}
	if res.Check.Ops == 0 {
		t.Error("checked population recorded no operations")
	}
	for _, v := range append(res.Check.SessionViolations, res.Check.LinViolations...) {
		t.Errorf("violation: %s", v)
	}

	// Same seed, byte-identical replay — including the history digest.
	res2, err := Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err1 := FailoverJSON(res)
	j2, err2 := FailoverJSON(res2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("same-seed failover runs are not byte-identical")
	}
}
