package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// tracedFaultStudy runs the quick fault study with the observability plane
// attached and returns its Chrome trace export.
func tracedFaultStudy(t *testing.T, seed int64) (*FaultStudyResult, []byte) {
	t.Helper()
	res, err := FaultStudy(Config{Quick: true, Seed: seed, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Config.Trace run returned no tracer")
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf, res.TraceReg); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestTraceExportDeterministic: same-seed traced runs must export
// byte-identical Chrome trace JSON — the trace is part of the replay
// witness, so lane assignment, track interning order and counter
// sampling must all be deterministic.
func TestTraceExportDeterministic(t *testing.T) {
	_, a := tracedFaultStudy(t, 42)
	_, b := tracedFaultStudy(t, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed trace exports differ")
	}
	var events []map[string]any
	if err := json.Unmarshal(a, &events); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace export is empty")
	}
}

// TestTraceDoesNotPerturbResults: a traced run must report exactly the
// rows an untraced same-seed run reports — observation cannot move model
// time.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	traced, _ := tracedFaultStudy(t, 7)
	plain, err := FaultStudy(Config{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(traced.Rows)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(plain.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("traced rows differ from untraced rows:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceDecompositionAndTimeseries: the traced fault study must emit a
// decomposition row per phase with real signal in it (server and quorum
// activity are always present) and non-empty sampled gauges.
func TestTraceDecompositionAndTimeseries(t *testing.T) {
	res, _ := tracedFaultStudy(t, 42)
	if len(res.Decomp) != len(res.Rows) {
		t.Fatalf("decomposition rows = %d, want one per phase (%d)", len(res.Decomp), len(res.Rows))
	}
	var server, quorum float64
	for _, d := range res.Decomp {
		server += d.ServerMs
		quorum += d.QuorumMs
	}
	if server == 0 || quorum == 0 {
		t.Errorf("decomposition has no server (%v) or quorum (%v) time", server, quorum)
	}
	if len(res.Timeseries) == 0 {
		t.Fatal("no sampled time-series")
	}
	for _, ts := range res.Timeseries {
		if len(ts.Points) == 0 {
			t.Errorf("gauge %q sampled no points", ts.Name)
		}
	}
}
