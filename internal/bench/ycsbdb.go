package bench

import (
	"math/rand"
	"time"

	"correctables/internal/cassandra"
	"correctables/internal/netsim"
	"correctables/internal/ycsb"
)

// cassandraDB adapts a cassandra client to the YCSB runner: reads use the
// configured quorum (with or without the ICG preliminary), writes use W=1
// as in the paper.
type cassandraDB struct {
	client *cassandra.Client
	clock  netsim.Clock
	quorum int
	prelim bool
}

var _ ycsb.DB = (*cassandraDB)(nil)

func newCassandraDB(cluster *cassandra.Cluster, clientRegion, coord netsim.Region, quorum int, prelim bool) *cassandraDB {
	return &cassandraDB{
		client: cassandra.NewClient(cluster, clientRegion, coord),
		clock:  cluster.Transport().Clock(),
		quorum: quorum,
		prelim: prelim,
	}
}

// Read implements ycsb.DB.
func (db *cassandraDB) Read(rng *rand.Rand, key string) (ycsb.ReadOutcome, error) {
	sw := db.clock.StartStopwatch()
	var out ycsb.ReadOutcome
	err := db.client.Read(key, db.quorum, db.prelim, func(v cassandra.ReadView) {
		if v.Final {
			out.FinalLatency = sw.ElapsedModel()
			if out.HasPrelim {
				out.Diverged = !v.Confirmed
			}
		} else {
			out.HasPrelim = true
			out.PrelimLatency = sw.ElapsedModel()
		}
	})
	return out, err
}

// Update implements ycsb.DB.
func (db *cassandraDB) Update(rng *rand.Rand, key string, value []byte) (time.Duration, error) {
	sw := db.clock.StartStopwatch()
	err := db.client.Write(key, value, 1)
	return sw.ElapsedModel(), err
}

// preloadDataset installs the workload's records on every replica.
func preloadDataset(cluster *cassandra.Cluster, w ycsb.Workload) {
	val := make([]byte, w.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < w.RecordCount; i++ {
		cluster.Preload(ycsb.Key(i), val)
	}
}

// clientGroup is one regional client population of the paper's YCSB
// deployment ("we deploy 3 clients, one per region, with each client
// connecting to a remote replica").
type clientGroup struct {
	clientRegion netsim.Region
	coordRegion  netsim.Region
}

func defaultGroups(cluster *cassandra.Cluster) []clientGroup {
	var groups []clientGroup
	for _, r := range cluster.Regions() {
		groups = append(groups, clientGroup{clientRegion: r, coordRegion: cluster.NearestRemote(r)})
	}
	return groups
}

// runGroups drives the workload from all client groups concurrently and
// returns the per-group results in group order.
func runGroups(cluster *cassandra.Cluster, w ycsb.Workload, quorum int, prelim bool,
	threadsPerGroup int, opts ycsb.Options) []*ycsb.Result {
	groups := defaultGroups(cluster)
	results := make([]*ycsb.Result, len(groups))
	// One shared key chooser: popularity and recency are global properties
	// of the workload, not per-region ones. (With per-group Latest anchors,
	// every group would chase its own writes — which its own coordinator
	// serves fresh — and divergence would vanish.)
	shared := w.NewGenerator()
	clock := cluster.Transport().Clock()
	wg := clock.NewGroup()
	for i, g := range groups {
		i, g := i, g
		db := newCassandraDB(cluster, g.clientRegion, g.coordRegion, quorum, prelim)
		groupOpts := opts
		groupOpts.Threads = threadsPerGroup
		groupOpts.Seed = opts.Seed + int64(i)*77
		groupOpts.Generator = shared
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			results[i] = ycsb.Run(w, db, clock, groupOpts)
		})
	}
	wg.Wait()
	return results
}
