package bench

import (
	"fmt"
	"time"

	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// Fig9Row is one bar of Figure 9: enqueue latency in Correctable ZooKeeper
// (preliminary/final) vs vanilla ZooKeeper, for one placement of the client
// connection and the leader.
type Fig9Row struct {
	// Placement names the configuration, e.g. "Follower (FRK), leader IRL".
	Placement string
	// Series is "CZK preliminary", "CZK final" or "ZK".
	Series string
	// Avg and P99 are model-time latencies.
	Avg, P99 time.Duration
}

// fig9Config is one of the paper's four placements; the client is in IRL.
type fig9Config struct {
	name    string
	contact netsim.Region
	leader  netsim.Region
}

func fig9Configs() []fig9Config {
	return []fig9Config{
		{"Follower (FRK), leader IRL", netsim.FRK, netsim.IRL},
		{"Leader (IRL)", netsim.IRL, netsim.IRL},
		{"Follower (IRL), leader VRG", netsim.IRL, netsim.VRG},
		{"Leader (VRG)", netsim.VRG, netsim.VRG},
	}
}

// Fig9 reproduces Figure 9: latency gaps between preliminary and final
// views of enqueue operations in CZK vs ZK, for four placements of leader
// and contact server; the client is in IRL, elements carry a ~20B
// identifier.
func Fig9(cfg Config) []Fig9Row {
	cfg = cfg.withDefaults()
	samples := cfg.pick(50, 6)

	var rows []Fig9Row
	for _, pc := range fig9Configs() {
		// CZK: one run collecting both views.
		h := newHarness(cfg)
		e := h.newZK(cfg, zkOpts{correctable: true, leader: pc.leader})
		e.Bootstrap(zk.CreateTxn{Path: "/queues"})
		e.Bootstrap(zk.CreateTxn{Path: "/queues/ev"})
		qc := zk.NewQueueClient(e, netsim.IRL, pc.contact)
		prelim, final := metrics.NewHistogram(), metrics.NewHistogram()
		for i := 0; i < samples; i++ {
			sw := h.clock.StartStopwatch()
			_ = qc.Enqueue("ev", []byte(fmt.Sprintf("ticket-%013d", i)), true, func(v zk.QueueView) {
				if v.Final {
					final.Record(sw.ElapsedModel())
				} else {
					prelim.Record(sw.ElapsedModel())
				}
			})
		}
		h.drain()
		rows = append(rows,
			Fig9Row{pc.name, "CZK preliminary", prelim.Mean(), prelim.Percentile(99)},
			Fig9Row{pc.name, "CZK final", final.Mean(), final.Percentile(99)},
		)

		// Vanilla ZK baseline.
		h2 := newHarness(cfg)
		e2 := h2.newZK(cfg, zkOpts{leader: pc.leader})
		e2.Bootstrap(zk.CreateTxn{Path: "/queues"})
		e2.Bootstrap(zk.CreateTxn{Path: "/queues/ev"})
		qc2 := zk.NewQueueClient(e2, netsim.IRL, pc.contact)
		base := metrics.NewHistogram()
		for i := 0; i < samples; i++ {
			sw := h2.clock.StartStopwatch()
			_ = qc2.Enqueue("ev", []byte(fmt.Sprintf("ticket-%013d", i)), false, func(v zk.QueueView) {
				if v.Final {
					base.Record(sw.ElapsedModel())
				}
			})
		}
		h2.drain()
		rows = append(rows, Fig9Row{pc.name, "ZK", base.Mean(), base.Percentile(99)})
	}
	return rows
}
