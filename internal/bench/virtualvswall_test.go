package bench

import (
	"testing"
	"time"

	"correctables/internal/ycsb"
)

// saturationSweep runs one fig6-style load cell (YCSB workload A, CC2,
// 12 closed-loop threads across the three regions — a mid-sweep offered
// load of Fig 6 — for 2s of model time) and returns total attained
// throughput in ops per model second.
func saturationSweep(cfg Config) float64 {
	w := workloadByName("A", ycsb.DistZipfian, 1000, 1024)
	h := newHarness(cfg)
	cluster := h.newCassandra(cfg, cassandraOpts{correctable: true})
	preloadDataset(cluster, w)
	results := runGroups(cluster, w, 2, true, 4, ycsb.Options{
		Duration: 2 * time.Second,
		Seed:     cfg.Seed,
	})
	h.drain()
	var tp float64
	for _, r := range results {
		tp += r.ThroughputOps
	}
	return tp
}

// BenchmarkVirtualVsWall demonstrates the acceptance criterion of the
// virtual-time engine: the same fig6-style saturation sweep, same model
// duration, under the VirtualClock vs the WallClock at scale 0.1. The wall
// run needs model/scale = 12s of real sleeping; the virtual run needs only
// the CPU time of its events. The measured speedup (reported as the
// speedup-x metric, wall seconds divided by virtual seconds) is two to
// three orders of magnitude — see BENCH_virtual_vs_wall.json for the
// recorded baseline.
func BenchmarkVirtualVsWall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		start := time.Now()
		vtp := saturationSweep(Config{Seed: 42})
		virtualWall := time.Since(start)

		start = time.Now()
		wtp := saturationSweep(Config{Wall: true, Scale: 0.1, Seed: 42})
		wallWall := time.Since(start)

		speedup := float64(wallWall) / float64(virtualWall)
		b.ReportMetric(speedup, "speedup-x")
		b.ReportMetric(virtualWall.Seconds()*1000, "virtual-ms")
		b.ReportMetric(wallWall.Seconds()*1000, "wall-ms")
		b.ReportMetric(vtp, "virtual-ops/s")
		b.ReportMetric(wtp, "wall-ops/s")
		if speedup < 10 {
			b.Fatalf("virtual clock speedup = %.1fx, want >= 10x (virtual %v vs wall %v)",
				speedup, virtualWall, wallWall)
		}
		// Identical-shape check: both modes must drive the cluster into the
		// same saturation regime (throughputs within 2x of each other — the
		// wall run carries sleep-granularity noise, the virtual run none).
		if vtp < wtp/2 || vtp > wtp*2 {
			b.Fatalf("throughput shapes diverged: virtual %.0f ops/s vs wall %.0f ops/s", vtp, wtp)
		}
	}
}
