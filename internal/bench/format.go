package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"correctables/internal/metrics"
)

// table renders rows with aligned columns.
func table(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
	return b.String()
}

// FormatFig5 renders Figure 5's rows.
func FormatFig5(rows []Fig5Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Group, r.System,
			fmt.Sprintf("%.1f", metrics.Ms(r.Avg)), fmt.Sprintf("%.1f", metrics.Ms(r.P99))}
	}
	return table("Figure 5: single-request read latency in Cassandra (ms)",
		[]string{"group", "system", "avg", "p99"}, out)
}

// FormatFig6 renders Figure 6's rows.
func FormatFig6(rows []Fig6Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, r.System, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.1f", metrics.Ms(r.Latency)), fmt.Sprintf("%.1f", metrics.Ms(r.P99))}
	}
	return table("Figure 6: YCSB latency vs throughput, Correctable Cassandra",
		[]string{"workload", "system", "threads", "ops/s", "avg ms", "p99 ms"}, out)
}

// FormatFig7 renders Figure 7's rows.
func FormatFig7(rows []Fig7Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, string(r.Distribution), fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.1f", r.DivergencePct), fmt.Sprintf("%d", r.Reads)}
	}
	return table("Figure 7: divergence of preliminary from final views (%)",
		[]string{"workload", "distribution", "threads", "divergence %", "reads"}, out)
}

// FormatFig8 renders Figure 8's rows.
func FormatFig8(rows []Fig8Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, string(r.Distribution), fmt.Sprintf("%d", r.Threads), r.System,
			fmt.Sprintf("%.2f", r.KBPerOp), fmt.Sprintf("%+.0f%%", r.OverheadPct)}
	}
	return table("Figure 8: client-link efficiency (kB/op)",
		[]string{"workload", "distribution", "threads", "system", "kB/op", "vs C1"}, out)
}

// FormatFig9 renders Figure 9's rows.
func FormatFig9(rows []Fig9Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Placement, r.Series,
			fmt.Sprintf("%.1f", metrics.Ms(r.Avg)), fmt.Sprintf("%.1f", metrics.Ms(r.P99))}
	}
	return table("Figure 9: enqueue latency, Correctable ZooKeeper vs ZooKeeper (ms)",
		[]string{"placement", "series", "avg", "p99"}, out)
}

// FormatFig10 renders Figure 10's rows.
func FormatFig10(rows []Fig10Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.System, fmt.Sprintf("%d", r.QueueSize), fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%.2f", r.KBPerOp)}
	}
	return table("Figure 10: dequeue efficiency (kB/op)",
		[]string{"system", "queue size", "clients", "kB/op"}, out)
}

// FormatFig11 renders Figure 11's rows.
func FormatFig11(rows []Fig11Row) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.App, r.Workload, r.System, fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.0f", r.Throughput), fmt.Sprintf("%.1f", metrics.Ms(r.Latency)),
			fmt.Sprintf("%.1f", r.MisspeculationPct)}
	}
	return table("Figure 11: speculation case studies (ads, Twissandra)",
		[]string{"app", "workload", "system", "threads", "ops/s", "avg ms", "misspec %"}, out)
}

// formatDecomp renders a latency-decomposition table (model-ms of span
// time per category, clipped to each phase window). Empty when the run
// was untraced.
func formatDecomp(rows []PhaseDecomp) string {
	if len(rows) == 0 {
		return ""
	}
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Phase,
			fmt.Sprintf("%.0f", r.OpMs), fmt.Sprintf("%.0f", r.AdmissionMs),
			fmt.Sprintf("%.0f", r.NetClientMs), fmt.Sprintf("%.0f", r.NetReplicaMs),
			fmt.Sprintf("%.0f", r.QueueMs), fmt.Sprintf("%.0f", r.ServerMs),
			fmt.Sprintf("%.0f", r.FlushMs), fmt.Sprintf("%.0f", r.QuorumMs),
			fmt.Sprintf("%.0f", r.HintMs), fmt.Sprintf("%.0f", r.ElectionMs)}
	}
	return table("latency decomposition (span-ms per category, per phase)",
		[]string{"phase", "op", "admit", "net cli", "net rep", "queue", "server",
			"flush", "quorum", "hint", "elect"},
		out)
}

// FormatFaultStudy renders the fault study's per-phase rows; withLog
// appends the applied fault-transition log (the replay record).
func FormatFaultStudy(res *FaultStudyResult, withLog bool) string {
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{r.Phase,
			fmt.Sprintf("%d", r.Reads), fmt.Sprintf("%d", r.ReadErrors),
			fmt.Sprintf("%.1f", r.PrelimMeanMs), fmt.Sprintf("%.1f", r.FinalMeanMs),
			fmt.Sprintf("%.1f", r.FinalP99Ms),
			fmt.Sprintf("%.0f", r.ReadAvailabilityPct),
			fmt.Sprintf("%.1f", r.DivergencePct),
			fmt.Sprintf("%d", r.DroppedMsgs), fmt.Sprintf("%d", r.HintedMsgs),
			fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.Shed), fmt.Sprintf("%d", r.Retried)}
	}
	s := table(
		fmt.Sprintf("Fault study: weak vs strong views under %q (CC3, YCSB B)", res.Scenario),
		[]string{"phase", "reads", "errs", "prelim ms", "final ms", "final p99", "avail %", "div %", "dropped", "hinted", "rej", "shed", "retry"},
		out)
	s += formatDecomp(res.Decomp)
	if withLog {
		var b strings.Builder
		b.WriteString(s)
		b.WriteString("fault transitions:\n")
		for _, tr := range res.Transitions {
			fmt.Fprintf(&b, "  %s\n", tr)
		}
		s = b.String()
	}
	if res.Check != nil {
		var b strings.Builder
		b.WriteString(s)
		fmt.Fprintf(&b, "consistency check: %d session clients, %d ops, history sha256 %.12s…\n",
			res.Check.Clients, res.Check.Ops, res.Check.HistoryDigest)
		if n := res.Check.Violations(); n == 0 {
			b.WriteString("  session guarantees (RYW, monotonic reads, WFR): OK\n")
			b.WriteString("  per-key register linearizability: OK\n")
		} else {
			fmt.Fprintf(&b, "  %d VIOLATIONS (replay with -seed %d):\n", n, res.Seed)
			for _, v := range res.Check.SessionViolations {
				fmt.Fprintf(&b, "  %s\n", v)
			}
			for _, v := range res.Check.LinViolations {
				fmt.Fprintf(&b, "  %s\n", v)
			}
		}
		for _, k := range res.Check.Inconclusive {
			fmt.Fprintf(&b, "  inconclusive (budget exhausted): %s\n", k)
		}
		s = b.String()
	}
	return s
}

// FormatFailover renders the failover experiment: the recovery summary,
// then the per-population phase table; withLog appends the fault-transition
// log (the replay record).
func FormatFailover(res *FailoverResult, withLog bool) string {
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{r.Population, r.Phase,
			fmt.Sprintf("%d", r.Ops), fmt.Sprintf("%d", r.Errors), fmt.Sprintf("%d", r.Prelims),
			fmt.Sprintf("%.1f", r.PrelimMeanMs), fmt.Sprintf("%.1f", r.FinalMeanMs),
			fmt.Sprintf("%.1f", r.FinalP99Ms),
			fmt.Sprintf("%.0f", r.FinalAvailabilityPct)}
	}
	var b strings.Builder
	b.WriteString(table("Failover: CZK leader partitioned mid-run (enqueue, prelim+final)",
		[]string{"population", "phase", "ops", "errs", "prelims", "prelim ms", "final ms", "final p99", "avail %"},
		out))
	b.WriteString(formatDecomp(res.Decomp))
	fmt.Fprintf(&b, "recovery: new leader %s (epoch %d) elected %.0fms after the fault (election timeout %.0fms)\n",
		res.NewLeader, res.Epoch, res.TimeToRecoveryMs, res.ElectionTimeoutMs)
	fmt.Fprintf(&b, "  prelim-only window: %.0fms (first post-fault commit at %.0fms); %d preliminary views served inside it\n",
		res.PrelimOnlyWindowMs, res.FirstFinalAfterFaultMs, res.OutagePrelims)
	if withLog {
		b.WriteString("fault transitions:\n")
		for _, tr := range res.Transitions {
			fmt.Fprintf(&b, "  %s\n", tr)
		}
	}
	if res.Check != nil {
		fmt.Fprintf(&b, "consistency check: %d session clients, %d ops, history sha256 %.12s…\n",
			res.Check.Clients, res.Check.Ops, res.Check.HistoryDigest)
		if n := res.Check.Violations(); n == 0 {
			b.WriteString("  session guarantees (RYW, monotonic reads, WFR): OK\n")
			b.WriteString("  per-queue linearizability: OK\n")
		} else {
			fmt.Fprintf(&b, "  %d VIOLATIONS (replay with -seed %d):\n", n, res.Seed)
			for _, v := range res.Check.SessionViolations {
				fmt.Fprintf(&b, "  %s\n", v)
			}
			for _, v := range res.Check.LinViolations {
				fmt.Fprintf(&b, "  %s\n", v)
			}
		}
		for _, k := range res.Check.Inconclusive {
			fmt.Fprintf(&b, "  inconclusive (budget exhausted): %s\n", k)
		}
	}
	return b.String()
}

// FormatAblationLag renders the replication-lag ablation.
func FormatAblationLag(rows []AblationLagRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fmt.Sprintf("%v", r.ReplicationDelay),
			fmt.Sprintf("%.1f", r.DivergencePct), fmt.Sprintf("%d", r.Reads)}
	}
	return table("Ablation: divergence vs replication lag (workload A-Latest)",
		[]string{"replication delay", "divergence %", "reads"}, out)
}

// FormatAblationFlush renders the preliminary-flushing cost ablation.
func FormatAblationFlush(rows []AblationFlushRow) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{fmt.Sprintf("%v", r.FlushCost),
			fmt.Sprintf("%.0f", r.Throughput), fmt.Sprintf("%.1f%%", r.DropPct)}
	}
	return table("Ablation: CC throughput vs preliminary-flushing cost",
		[]string{"flush cost", "ops/s", "drop vs zero"}, out)
}

// FormatFig12 renders Figure 12's summaries plus a bucketed series.
func FormatFig12(points []Fig12Point, summaries []Fig12Summary) string {
	var out [][]string
	for _, s := range summaries {
		out = append(out, []string{s.System, "fast (preliminary)",
			fmt.Sprintf("%d", s.FastCount), fmt.Sprintf("%.1f", metrics.Ms(s.FastAvg))})
		out = append(out, []string{s.System, "slow (final)",
			fmt.Sprintf("%d", s.SlowCount), fmt.Sprintf("%.1f", metrics.Ms(s.SlowAvg))})
		out = append(out, []string{s.System, "revoked",
			fmt.Sprintf("%d", s.Revoked), ""})
	}
	summary := table("Figure 12: ticket purchase latency regimes (ms)",
		[]string{"system", "regime", "count", "avg ms"}, out)

	// Bucketed series: average latency per 10% of the selling order.
	buckets := map[string][]float64{}
	counts := map[string][]int{}
	const nb = 10
	total := map[string]int{}
	for _, p := range points {
		total[p.System]++
	}
	for _, p := range points {
		n := total[p.System]
		if n == 0 {
			continue
		}
		b := (p.TicketNumber - 1) * nb / n
		if b >= nb {
			b = nb - 1
		}
		if buckets[p.System] == nil {
			buckets[p.System] = make([]float64, nb)
			counts[p.System] = make([]int, nb)
		}
		buckets[p.System][b] += metrics.Ms(p.Latency)
		counts[p.System][b]++
	}
	var series [][]string
	for _, sys := range []string{"CZK", "ZK"} {
		if buckets[sys] == nil {
			continue
		}
		row := []string{sys}
		for b := 0; b < nb; b++ {
			if counts[sys][b] > 0 {
				row = append(row, fmt.Sprintf("%.0f", buckets[sys][b]/float64(counts[sys][b])))
			} else {
				row = append(row, "-")
			}
		}
		series = append(series, row)
	}
	header := []string{"system"}
	for b := 0; b < nb; b++ {
		header = append(header, fmt.Sprintf("%d%%", (b+1)*10))
	}
	return summary + table("Figure 12 series: avg latency (ms) by decile of selling order", header, series)
}

// FormatOverload renders the overload experiment: one per-phase table per
// mode, the metastability verdict, and each mode's history-check summary.
func FormatOverload(res *OverloadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Overload: metastable retry storm vs admission-controlled escape ==\n")
	fmt.Fprintf(&b, "offered %.0f ops/s baseline + %.0f ops/s burst, capacity ~%.0f ops/s, op timeout %.0f ms, %d sessions\n",
		res.BaselineRate, res.BurstRate, res.CapacityOps, res.OpTimeoutMs, res.Sessions)
	for _, m := range res.Modes {
		out := make([][]string, len(m.Rows))
		for i, r := range m.Rows {
			out[i] = []string{r.Phase,
				fmt.Sprintf("%d", r.Offered), fmt.Sprintf("%d", r.Completed),
				fmt.Sprintf("%d", r.Degraded),
				fmt.Sprintf("%d", r.TimedOut), fmt.Sprintf("%d", r.RejectedOps),
				fmt.Sprintf("%d", r.SessionErrs),
				fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.Shed), fmt.Sprintf("%d", r.Retried),
				fmt.Sprintf("%.0f", r.GoodputOps), fmt.Sprintf("%.0f", r.GoodputPct),
				fmt.Sprintf("%.1f", r.FinalMeanMs), fmt.Sprintf("%.1f", r.FinalP99Ms)}
		}
		b.WriteString(table(m.Mode,
			[]string{"phase", "offered", "done", "degraded", "timeout", "rejected", "sess err",
				"rej att", "shed att", "retry att", "goodput/s", "% base", "final ms", "p99 ms"},
			out))
		b.WriteString(formatDecomp(m.Decomp))
		fmt.Fprintf(&b, "post-burst goodput: %.0f%% of baseline; recovered phase: %.0f%%\n",
			m.PostBurstGoodputPct, m.RecoveredGoodputPct)
		if c := m.Check; c != nil {
			fmt.Fprintf(&b, "history check: %d sessions, %d ops, sha256 %.12s…",
				c.Clients, c.Ops, c.HistoryDigest)
			if n := c.Violations(); n == 0 {
				b.WriteString(" — session guarantees + cross-object WFR: OK\n")
			} else {
				fmt.Fprintf(&b, " — %d VIOLATIONS (replay with -seed %d):\n", n, res.Seed)
				for _, v := range c.SessionViolations {
					fmt.Fprintf(&b, "  %s\n", v)
				}
			}
		}
	}
	off, on := res.Modes[0], res.Modes[1]
	fmt.Fprintf(&b, "metastable asymmetry: without shedding %.0f%%, with shedding %.0f%% post-burst goodput\n",
		off.PostBurstGoodputPct, on.PostBurstGoodputPct)
	return b.String()
}

// FormatCapacity renders the shard-count capacity study: the per-cell
// table, the scaling headline, and each cell's history-check summary.
func FormatCapacity(res *CapacityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon %.0f ms per cell, seed %d\n", res.HorizonMs, res.Seed)
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%.0f", r.OfferedSessionsPerSec),
			fmt.Sprintf("%d", r.SessionsStarted), fmt.Sprintf("%d", r.SessionsCompleted),
			fmt.Sprintf("%d", r.SessionsAborted),
			fmt.Sprintf("%.0f", r.ThroughputOps), fmt.Sprintf("%.0f", r.ThroughputSessions),
			fmt.Sprintf("%.1f", r.WeakMeanMs), fmt.Sprintf("%.1f", r.FinalMeanMs),
			fmt.Sprintf("%.1f", r.FinalP99Ms),
			fmt.Sprintf("%.1f", r.BatchMeanOps),
			fmt.Sprintf("%.0f", r.UtilizationPct), fmt.Sprintf("%.3f", r.FairnessJain)}
	}
	b.WriteString(table("Capacity: session throughput and saturation vs shard count",
		[]string{"shards", "offered/s", "started", "done", "aborted", "ops/s", "sess/s",
			"weak ms", "final ms", "p99 ms", "batch", "util %", "jain"}, out))
	fmt.Fprintf(&b, "scaling: %.2fx ops throughput from %d to %d shards\n",
		res.ScalingX, res.Rows[0].Shards, res.Rows[len(res.Rows)-1].Shards)
	for _, r := range res.Rows {
		if c := r.Check; c != nil {
			fmt.Fprintf(&b, "check shards=%d: %d sessions, %d ops, sha256 %.12s…", r.Shards, c.Clients, c.Ops, c.HistoryDigest)
			if n := c.Violations(); n == 0 {
				b.WriteString(" — session guarantees + register linearizability: OK\n")
			} else {
				fmt.Fprintf(&b, " — %d VIOLATIONS (replay with -seed %d):\n", n, res.Seed)
				for _, v := range c.SessionViolations {
					fmt.Fprintf(&b, "  %s\n", v)
				}
				for _, v := range c.LinViolations {
					fmt.Fprintf(&b, "  %s\n", v)
				}
			}
		}
	}
	return b.String()
}

// FormatSweep renders the quorum x geography sweep table.
func FormatSweep(res *SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s, %d threads, %.0f ms per cell, seed %d\n",
		res.Workload, res.Threads, res.DurationMs, res.Seed)
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = []string{r.Geography, fmt.Sprintf("x%.2g", r.RTTScale), fmt.Sprintf("%d", r.Quorum),
			fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%.0f", r.ThroughputOps),
			fmt.Sprintf("%.1f", r.PrelimMeanMs), fmt.Sprintf("%.1f", r.FinalMeanMs),
			fmt.Sprintf("%.1f", r.PrelimP99Ms), fmt.Sprintf("%.1f", r.FinalP99Ms)}
	}
	b.WriteString(table("Sweep: CC read latency vs quorum, geography and shards",
		[]string{"geography", "rtt", "quorum", "shards", "ops/s", "prelim ms", "final ms", "prelim p99", "final p99"}, out))
	return b.String()
}
