package bench

import (
	"fmt"

	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// Fig10Row is one datapoint of Figure 10: client-link bandwidth per dequeue
// operation, as contention (number of clients) grows, for one queue size.
type Fig10Row struct {
	System string // "ZK" or "CZK"
	// QueueSize is the standing queue length (500 or 1000 tickets).
	QueueSize int
	// Clients is the number of concurrently dequeuing clients.
	Clients int
	// KBPerOp is client-link kilobytes per successful dequeue.
	KBPerOp float64
}

// fig10ClientSweep mirrors the paper's x-axis.
func fig10ClientSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 6, 8, 12}
}

// Fig10 reproduces Figure 10: efficiency of dequeue operations in CZK vs
// ZK. The vanilla recipe's getChildren response carries the whole child
// list, so its cost grows with the queue size and with contention (version
// races force retries, each re-reading the listing); CZK reads a
// constant-size tail and dequeues atomically server-side, so its cost is
// independent of queue size.
func Fig10(cfg Config) []Fig10Row {
	cfg = cfg.withDefaults()
	opsTotal := cfg.pick(48, 8)

	var rows []Fig10Row
	for _, queueSize := range []int{500, 1000} {
		for _, clients := range fig10ClientSweep(cfg) {
			for _, sys := range []struct {
				name        string
				correctable bool
			}{{"ZK", false}, {"CZK", true}} {
				h := newHarness(cfg)
				e := h.newZK(cfg, zkOpts{correctable: sys.correctable, leader: netsim.IRL})
				e.Bootstrap(zk.CreateTxn{Path: "/queues"})
				e.Bootstrap(zk.CreateTxn{Path: "/queues/ev"})
				size := queueSize
				if cfg.Quick {
					size = queueSize / 10
				}
				for i := 0; i < size; i++ {
					e.Bootstrap(zk.CreateTxn{
						Path:       "/queues/ev/q-",
						Data:       []byte(fmt.Sprintf("tkt-%07d", i)),
						Sequential: true,
					})
				}
				base := h.meter.Class(netsim.LinkClient).Bytes

				perClient := opsTotal / clients
				if perClient == 0 {
					perClient = 1
				}
				wg := h.clock.NewGroup()
				for c := 0; c < clients; c++ {
					wg.Add(1)
					h.clock.Go(func() {
						defer wg.Done()
						qc := zk.NewQueueClient(e, netsim.FRK, netsim.FRK)
						for i := 0; i < perClient; i++ {
							_ = qc.Dequeue("ev", sys.correctable, func(zk.QueueView) {})
						}
					})
				}
				wg.Wait()
				h.drain()
				ops := perClient * clients
				bytes := h.meter.Class(netsim.LinkClient).Bytes - base
				rows = append(rows, Fig10Row{
					System:    sys.name,
					QueueSize: queueSize,
					Clients:   clients,
					KBPerOp:   float64(bytes) / 1024 / float64(ops),
				})
			}
		}
	}
	return rows
}
