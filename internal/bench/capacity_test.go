package bench

import (
	"bytes"
	"testing"
)

// TestCapacityQuick runs the scaled-down capacity study and checks the
// shape every cell must have: sessions flow, batching engages, the shard
// keyspace spreads, and the checked sub-population stays clean.
func TestCapacityQuick(t *testing.T) {
	res := Capacity(Config{Quick: true, Seed: 11})
	t.Logf("\n%s", FormatCapacity(res))
	if got, want := len(res.Rows), 4; got != want {
		t.Fatalf("rows = %d, want %d shard cells", got, want)
	}
	for _, r := range res.Rows {
		if r.SessionsStarted == 0 || r.SessionsCompleted == 0 {
			t.Errorf("shards=%d: started=%d completed=%d, want sessions to flow",
				r.Shards, r.SessionsStarted, r.SessionsCompleted)
		}
		if r.ThroughputOps <= 0 {
			t.Errorf("shards=%d: no ops throughput", r.Shards)
		}
		if r.BatchMeanOps < 1 {
			t.Errorf("shards=%d: batch mean %.2f, want coalesced dispatches", r.Shards, r.BatchMeanOps)
		}
		if r.FinalMeanMs < r.WeakMeanMs {
			t.Errorf("shards=%d: final view (%.2f ms) faster than weak (%.2f ms)",
				r.Shards, r.FinalMeanMs, r.WeakMeanMs)
		}
		if len(r.PerShardHandled) != r.Shards {
			t.Errorf("shards=%d: per-shard vector has %d entries", r.Shards, len(r.PerShardHandled))
		}
		for s, n := range r.PerShardHandled {
			if n == 0 {
				t.Errorf("shards=%d: shard %d handled nothing (keyspace starvation)", r.Shards, s)
			}
		}
		if r.Shards > 1 && r.FairnessJain < 0.5 {
			t.Errorf("shards=%d: Jain fairness %.3f, want a reasonably even spread", r.Shards, r.FairnessJain)
		}
		if r.Check == nil {
			t.Fatalf("shards=%d: missing check report", r.Shards)
		}
		if v := r.Check.Violations(); v > 0 {
			t.Errorf("shards=%d: %d consistency violations in checked population", r.Shards, v)
		}
		if r.Check.Ops == 0 {
			t.Errorf("shards=%d: checked population recorded no ops", r.Shards)
		}
	}
}

// TestCapacityReplayByteIdentical re-runs the quick study on the same seed
// and demands byte-identical JSON: the whole 10^6-session machine —
// Poisson arrivals, admission gate, batched dispatch, cross-shard quorums
// — must be a pure function of the seed.
func TestCapacityReplayByteIdentical(t *testing.T) {
	run := func() []byte {
		js, err := CapacityJSON(Capacity(Config{Quick: true, Seed: 23}))
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("same-seed replay produced different capacity JSON bytes")
	}
}
