package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/causal"
	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/history"
	"correctables/internal/load"
	"correctables/internal/netsim"
)

// The hunt world's fixed shape. Every knob that varies lives in huntWorld
// (and is therefore shrinkable and serialized into repros); these are the
// invariants that make a (seed, profile) pair a complete world description.
const (
	huntUnit        = 50 * time.Millisecond
	huntSessionKeys = 12
	huntCausalKeys  = 6
	huntSessions    = 4
	huntCausal      = 2
	huntArrivalRate = 80 // open-loop arrivals/second across the arrival clients
)

// HuntOptions parameterizes the seed-space violation hunt.
type HuntOptions struct {
	// Seeds is the number of consecutive seeds swept per profile (default:
	// 1000, or 16 under Config.Quick).
	Seeds int
	// StartSeed is the first seed (default Config.Seed).
	StartSeed int64
	// Profiles are the faults profile names to sweep (ProfilesByName;
	// default tracks-mild and tracks-harsh — the composed nemesis products).
	Profiles []string
	// Workers bounds the parallel worlds (default GOMAXPROCS). Each world
	// runs on its own VirtualClock, so parallelism does not perturb replay.
	Workers int
	// Plant enables the planted bug: under any active fault, completed
	// writes ack with a corrupted (stale) version token. The hunt must find
	// it — the end-to-end self-test of checkers, minimizer and repros.
	Plant bool
}

// HuntFinding is one violating (seed, profile) world, minimized.
type HuntFinding struct {
	Profile   string `json:"profile"`
	Seed      int64  `json:"seed"`
	Guarantee string `json:"guarantee"`
	Client    string `json:"client"`
	Key       string `json:"key"`
	// Violation is the shrunk world's rendered violation — replaying the
	// repro must reproduce it byte for byte.
	Violation string `json:"violation"`
	// Shrink statistics: the minimizer's before/after and how many world
	// re-runs it spent.
	TracksBefore  int `json:"tracks_before"`
	TracksAfter   int `json:"tracks_after"`
	EventsBefore  int `json:"events_before"`
	EventsAfter   int `json:"events_after"`
	ClientsBefore int `json:"clients_before"`
	ClientsAfter  int `json:"clients_after"`
	ShrinkRuns    int `json:"shrink_runs"`
	// Repro is the archived reproduction recipe (icgbench -exp hunt -repro).
	Repro *HuntRepro `json:"repro"`
}

// HuntResult is the hunt's full output; it marshals to JSON via HuntJSON.
type HuntResult struct {
	Profiles     []string      `json:"profiles"`
	Seeds        int           `json:"seeds"`
	StartSeed    int64         `json:"start_seed"`
	Workers      int           `json:"workers"`
	Planted      bool          `json:"planted"`
	Runs         int           `json:"runs"`
	Ops          int64         `json:"ops"`
	Inconclusive int           `json:"inconclusive_runs"`
	Findings     []HuntFinding `json:"findings"`
}

// huntWorld is one self-contained simulated world: a pure function of its
// fields. The sweep generates worlds from (profile, seed); the minimizer
// mutates copies; repros serialize them.
type huntWorld struct {
	Profile     string
	Seed        int64
	Unit        time.Duration
	Horizon     time.Duration
	Tracks      []faults.Track
	Sessions    int
	Causal      int
	ArrivalRate float64
	Plant       bool
}

// newHuntWorld builds the full-size world for a (profile, seed) pair.
func newHuntWorld(profile string, seed int64, plant bool) (huntWorld, error) {
	profs, err := faults.ProfilesByName(profile, huntUnit)
	if err != nil {
		return huntWorld{}, err
	}
	var horizon time.Duration
	for _, p := range profs {
		if p.Horizon > horizon {
			horizon = p.Horizon
		}
	}
	return huntWorld{
		Profile:     profile,
		Seed:        seed,
		Unit:        huntUnit,
		Horizon:     horizon,
		Tracks:      faults.RandomTracks(seed, profs),
		Sessions:    huntSessions,
		Causal:      huntCausal,
		ArrivalRate: huntArrivalRate,
		Plant:       plant,
	}, nil
}

// huntOutcome is one world's verdict.
type huntOutcome struct {
	violations   []history.Violation
	inconclusive []string
	ops          int
	digest       string
}

// huntTarget identifies a violation across re-runs of shrinking worlds:
// the guarantee plus the (client, key) it fired on. Version numbers and
// timestamps may drift as the world shrinks; the triple does not.
type huntTarget struct {
	Guarantee, Client, Key string
}

func targetOf(v history.Violation) huntTarget {
	return huntTarget{Guarantee: v.Guarantee, Client: v.Client, Key: v.Key}
}

// match returns the first violation matching the target.
func (o *huntOutcome) match(tgt huntTarget) (history.Violation, bool) {
	for _, v := range o.violations {
		if targetOf(v) == tgt {
			return v, true
		}
	}
	return history.Violation{}, false
}

// plantedBinding wraps the cassandra binding with the hunt's seeded bug:
// while any fault is in force, a completed write acks with version token 1
// — a stale token the write's session has long since surpassed. Sessions
// deliver mutating finals unconditionally, so the corruption lands in the
// recorded history, where the session, cross-object and causal-cut
// checkers all see a write ordered before state its client had already
// observed. Embedding forwards the provider interfaces (scheduler,
// versions, default timeout), so wrapped clients run the normal pipeline.
type plantedBinding struct {
	*cassandra.Binding
	inj *faults.Injector
}

func (p *plantedBinding) SubmitOperation(ctx context.Context, op binding.Operation, levels core.Levels, cb binding.Callback) {
	if m, ok := op.(binding.Mutator); ok && m.OpMutates() {
		inner := cb
		cb = func(r binding.Result) {
			if r.Err == nil && r.Version > 1 && p.inj.Faulted() {
				r.Version = 1
			}
			inner(r)
		}
	}
	p.Binding.SubmitOperation(ctx, op, levels, cb)
}

func huntKey(i int) string       { return fmt.Sprintf("k-%02d", i) }
func huntCausalKey(i int) string { return fmt.Sprintf("c-%02d", i) }

// huntShards maps a profile to the world's cluster shard count: the
// sharded nemesis product runs its schedules against a 4-shard ring, so
// cross-shard quorum reads, routing hops and shard-tagged hint replay all
// execute under the checkers. The shard count rides the profile name, so
// repros (which archive the profile) rebuild the same world.
func huntShards(profile string) int {
	if profile == "tracks-sharded" {
		return 4
	}
	return 1
}

// runHuntWorld builds and runs one world on a fresh VirtualClock and
// checks every recorded history. Three populations share the composed
// fault schedule:
//
//   - paced session clients on Correctable Cassandra (strong quorum 3,
//     half contacting FRK, half IRL) — the closed-world keyspace the
//     session, cross-object-WFR, causal-cut and register-linearizability
//     checkers verify completely;
//   - open-loop arrival clients (internal/load Poisson) through an
//     admission controller backpressured by the FRK coordinator's queue
//     delay, with capped-exponential retries — the overload × fault
//     product, on the same recorded keyspace;
//   - plain (sessionless) ladder clients on the causal store, on their own
//     recorder, checked with causal-cut only: the three-level ladder must
//     hold without any session machinery in front of it.
func runHuntWorld(w huntWorld) *huntOutcome {
	cfg := Config{Seed: w.Seed}
	h := newHarness(cfg)
	inj := faults.Attach(h.tr, faults.Compose(w.Tracks...), w.Seed+3)
	cluster := h.newCassandra(cfg, cassandraOpts{
		correctable: true,
		opTimeout:   3 * w.Unit,
		shards:      huntShards(w.Profile),
	})
	// The checked keyspace is deliberately NOT preloaded: preloads consume
	// store-wide version timestamps outside the recorded history, which the
	// register checker would (correctly) flag as phantom writes. The causal
	// keyspace below is only causal-cut-checked, so preloads are fine there.
	val := []byte("hunt-payload-0123456789abcdef")

	var st *causal.Store
	if w.Causal > 0 {
		var err error
		st, err = causal.NewStore(causal.Config{
			Primary:          netsim.FRK,
			Backups:          []netsim.Region{netsim.IRL, netsim.VRG},
			Transport:        h.tr,
			ServiceTime:      200 * time.Microsecond,
			PropagationDelay: w.Unit / 2,
			OpTimeout:        3 * w.Unit,
		})
		if err != nil {
			panic("bench: " + err.Error())
		}
		for i := 0; i < huntCausalKeys; i++ {
			st.Preload(huntCausalKey(i), val)
		}
	}

	recA := history.NewRecorder() // cassandra sessions + arrivals
	recB := history.NewRecorder() // plain causal ladder clients
	g := h.clock.NewGroup()
	ctx := context.Background()

	newSessionBinding := func(cc *cassandra.Client) binding.Binding {
		b := cassandra.NewBinding(cc, cassandra.BindingConfig{StrongQuorum: 3})
		if w.Plant {
			return &plantedBinding{Binding: b, inj: inj}
		}
		return b
	}

	// Paced session clients.
	for i := 0; i < w.Sessions; i++ {
		coord := netsim.FRK
		if i%2 == 1 {
			coord = netsim.IRL
		}
		cc := cassandra.NewClient(cluster, netsim.IRL, coord)
		bc := binding.NewClient(newSessionBinding(cc),
			binding.WithObserver(recA),
			binding.WithLabel(fmt.Sprintf("sess-%02d", i)))
		sess := binding.NewSession(bc)
		rng := rand.New(rand.NewSource(w.Seed + 100_003*int64(i) + 7))
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			for h.clock.Now() < w.Horizon {
				key := huntKey(rng.Intn(huntSessionKeys))
				if rng.Float64() < 0.6 {
					_, _ = sess.Get(ctx, key).Final(ctx)
				} else {
					_, _ = sess.Put(ctx, key, val).Final(ctx)
				}
				h.clock.Sleep(w.Unit / 12)
			}
		})
	}

	// Open-loop arrival clients through admission control.
	var gate *load.Controller
	if w.ArrivalRate > 0 {
		gate = load.NewController(load.Config{
			Clock:          h.clock,
			PerClientRate:  w.ArrivalRate,
			PerClientBurst: w.ArrivalRate / 4,
			Sample:         cluster.Replica(netsim.FRK).Server().QueueDelay,
			SampleEvery:    w.Unit / 2,
			Threshold:      w.Unit,
			MinRate:        20,
			MaxRate:        2000,
			Meter:          h.meter,
		})
		gate.Start()
		open := make([]*binding.Session, 2)
		for i := range open {
			cc := cassandra.NewClient(cluster, netsim.VRG, netsim.FRK)
			// No client-side retries here, deliberately: a retried write can
			// land twice server-side while recording one completed op, which
			// makes the second version token unattributable and the register
			// checker unsound. Timed-out ops stay incomplete and enter the
			// linearizability history as ambiguous writes instead.
			bc := binding.NewClient(newSessionBinding(cc),
				binding.WithObserver(recA),
				binding.WithLabel(fmt.Sprintf("open-%02d", i)),
				binding.WithAdmission(gate))
			open[i] = binding.NewSession(bc)
		}
		rng := rand.New(rand.NewSource(w.Seed + 31))
		fire := func(n int) {
			sess := open[n%len(open)]
			key := huntKey(rng.Intn(huntSessionKeys))
			isRead := rng.Float64() < 0.7
			g.Add(1)
			h.clock.Go(func() {
				defer g.Done()
				if isRead {
					_, _ = sess.Get(ctx, key).Final(ctx)
				} else {
					_, _ = sess.Put(ctx, key, val).Final(ctx)
				}
			})
		}
		load.Start(h.clock, load.NewPoisson(w.ArrivalRate, w.Seed+41), w.Horizon, fire)
	}

	// Plain causal ladder clients.
	for i := 0; i < w.Causal; i++ {
		region := netsim.IRL
		if i%2 == 1 {
			region = netsim.VRG
		}
		kv := causal.NewKV(causal.NewBinding(causal.NewClient(st, region)),
			binding.WithObserver(recB),
			binding.WithLabel(fmt.Sprintf("cau-%02d", i)))
		rng := rand.New(rand.NewSource(w.Seed + 500_009*int64(i) + 13))
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			for h.clock.Now() < w.Horizon {
				key := huntCausalKey(rng.Intn(huntCausalKeys))
				if rng.Float64() < 0.7 {
					_, _ = kv.Get(ctx, key).Final(ctx)
				} else {
					_, _ = kv.Put(ctx, key, val).Final(ctx)
				}
				h.clock.Sleep(w.Unit / 10)
			}
		})
	}

	g.Wait()
	if gate != nil {
		gate.Stop()
	}
	inj.Quiesce()
	h.drain()

	opsA, opsB := recA.Ops(), recB.Ops()
	out := &huntOutcome{ops: len(opsA) + len(opsB)}
	if n := recA.Collisions() + recB.Collisions(); n > 0 {
		out.violations = append(out.violations, history.Violation{
			Guarantee: "history-integrity",
			Detail:    fmt.Sprintf("%d client-label collisions — the recorded history is untrustworthy", n),
		})
	}
	out.violations = append(out.violations, history.CheckSessionGuarantees(opsA)...)
	out.violations = append(out.violations, history.CheckCrossObjectWFR(opsA)...)
	out.violations = append(out.violations, history.CheckCausalCut(opsA)...)
	linVs, inconclusive := history.CheckRegisters(opsA, 0)
	out.violations = append(out.violations, linVs...)
	out.inconclusive = inconclusive
	out.violations = append(out.violations, history.CheckCausalCut(opsB)...)

	sum := sha256.New()
	sum.Write(history.SerializeOps(opsA))
	sum.Write(history.SerializeOps(opsB))
	out.digest = hex.EncodeToString(sum.Sum(nil))
	return out
}

// cloneTracks deep-copies the track list (schedules rebuilt, so candidate
// mutations never alias the original).
func cloneTracks(ts []faults.Track) []faults.Track {
	out := make([]faults.Track, len(ts))
	for i, t := range ts {
		s := faults.NewSchedule()
		for _, te := range t.Schedule.Events() {
			s.At(te.At, te.Event)
		}
		out[i] = faults.Track{Name: t.Name, Schedule: s}
	}
	return out
}

// clientCount is the world's total client population: paced sessions,
// plain ladder clients, and the two arrival-driven clients when the
// generator is on.
func clientCount(w huntWorld) int {
	n := w.Sessions + w.Causal
	if w.ArrivalRate > 0 {
		n += 2
	}
	return n
}

func countEvents(ts []faults.Track) int {
	n := 0
	for _, t := range ts {
		n += len(t.Schedule.Events())
	}
	return n
}

// minimizeWorld is the deterministic delta-debugging minimizer: greedily
// drop whole fault tracks, then whole atoms (a partition with its heal, a
// crash with its restart, a spike or drop alone) within the remaining
// tracks, then shrink the client populations and switch off the arrival
// generator — accepting each candidate iff re-running the candidate world
// still reproduces the target violation (same guarantee, client, key).
// Passes repeat until a fixpoint. Everything is sequential and ordered, so
// the same (world, target) always shrinks to the same repro, byte for
// byte. Returns the shrunk world and the number of candidate runs spent.
func minimizeWorld(w huntWorld, tgt huntTarget) (huntWorld, int) {
	runs := 0
	reproduces := func(cand huntWorld) bool {
		runs++
		_, ok := runHuntWorld(cand).match(tgt)
		return ok
	}
	for {
		changed := false

		// Whole tracks.
		for i := 0; i < len(w.Tracks); {
			cand := w
			cand.Tracks = append(cloneTracks(w.Tracks[:i]), cloneTracks(w.Tracks[i+1:])...)
			if reproduces(cand) {
				w = cand
				changed = true
			} else {
				i++
			}
		}

		// Atoms within each remaining track.
		for ti := range w.Tracks {
			atoms := w.Tracks[ti].Schedule.Atoms()
			for ai := 0; ai < len(atoms); {
				rest := append(append([][]faults.TimedEvent{}, atoms[:ai]...), atoms[ai+1:]...)
				s := faults.NewSchedule()
				for _, atom := range rest {
					for _, te := range atom {
						s.At(te.At, te.Event)
					}
				}
				cand := w
				cand.Tracks = cloneTracks(w.Tracks)
				cand.Tracks[ti] = faults.Track{Name: w.Tracks[ti].Name, Schedule: s}
				if reproduces(cand) {
					w = cand
					atoms = rest
					changed = true
				} else {
					ai++
				}
			}
		}

		// Populations: fewer session clients, no arrivals, fewer ladder
		// clients.
		for w.Sessions > 1 {
			cand := w
			cand.Sessions--
			if !reproduces(cand) {
				break
			}
			w = cand
			changed = true
		}
		if w.ArrivalRate > 0 {
			cand := w
			cand.ArrivalRate = 0
			if reproduces(cand) {
				w = cand
				changed = true
			}
		}
		for w.Causal > 0 {
			cand := w
			cand.Causal--
			if !reproduces(cand) {
				break
			}
			w = cand
			changed = true
		}

		if !changed {
			return w, runs
		}
	}
}

// HuntRepro is the archived reproduction recipe for one finding: the
// shrunk world spelled out in full (explicit fault tracks, population
// sizes) plus the expected violation and history digest. Replaying it
// (HuntReplay, or icgbench -exp hunt -repro file.json) rebuilds the world
// from this description alone and must reproduce the violation byte for
// byte.
type HuntRepro struct {
	Version       int                `json:"version"`
	Profile       string             `json:"profile"`
	Seed          int64              `json:"seed"`
	UnitNs        int64              `json:"unit_ns"`
	HorizonNs     int64              `json:"horizon_ns"`
	Sessions      int                `json:"sessions"`
	Causal        int                `json:"causal_clients"`
	ArrivalRate   float64            `json:"arrival_rate"`
	Planted       bool               `json:"planted"`
	Tracks        []faults.TrackJSON `json:"tracks"`
	Guarantee     string             `json:"guarantee"`
	Client        string             `json:"client"`
	Key           string             `json:"key"`
	Violation     string             `json:"violation"`
	HistoryDigest string             `json:"history_digest"`
}

// reproOf serializes a shrunk world and its violation.
func reproOf(w huntWorld, v history.Violation, digest string) (*HuntRepro, error) {
	r := &HuntRepro{
		Version: 1, Profile: w.Profile, Seed: w.Seed,
		UnitNs: int64(w.Unit), HorizonNs: int64(w.Horizon),
		Sessions: w.Sessions, Causal: w.Causal, ArrivalRate: w.ArrivalRate,
		Planted:   w.Plant,
		Guarantee: v.Guarantee, Client: v.Client, Key: v.Key,
		Violation: v.String(), HistoryDigest: digest,
	}
	for _, t := range w.Tracks {
		tj, err := faults.MarshalTrack(t)
		if err != nil {
			return nil, err
		}
		r.Tracks = append(r.Tracks, tj)
	}
	return r, nil
}

// worldOf rebuilds the world a repro describes.
func worldOf(r *HuntRepro) (huntWorld, error) {
	w := huntWorld{
		Profile: r.Profile, Seed: r.Seed,
		Unit: time.Duration(r.UnitNs), Horizon: time.Duration(r.HorizonNs),
		Sessions: r.Sessions, Causal: r.Causal, ArrivalRate: r.ArrivalRate,
		Plant: r.Planted,
	}
	if w.Unit <= 0 || w.Horizon <= 0 {
		return huntWorld{}, fmt.Errorf("bench: repro has no unit/horizon")
	}
	for _, tj := range r.Tracks {
		t, err := faults.UnmarshalTrack(tj)
		if err != nil {
			return huntWorld{}, err
		}
		w.Tracks = append(w.Tracks, t)
	}
	return w, nil
}

// HuntReproJSON marshals a repro for archiving.
func HuntReproJSON(r *HuntRepro) ([]byte, error) {
	return marshalReport(r)
}

// ParseHuntRepro parses an archived repro.
func ParseHuntRepro(data []byte) (*HuntRepro, error) {
	r := &HuntRepro{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("bench: bad hunt repro: %w", err)
	}
	return r, nil
}

// HuntReplayResult is the outcome of replaying a repro.
type HuntReplayResult struct {
	// Identical reports byte-for-byte reproduction: the replayed world hit
	// the same violation with the same rendering and history digest.
	Identical bool `json:"identical"`
	// Violation and HistoryDigest are the replayed world's actual outcome,
	// for diffing against the repro when not identical.
	Violation     string `json:"violation"`
	HistoryDigest string `json:"history_digest"`
}

// HuntReplay re-runs a repro's world and compares the outcome against the
// archived violation.
func HuntReplay(r *HuntRepro) (*HuntReplayResult, error) {
	w, err := worldOf(r)
	if err != nil {
		return nil, err
	}
	out := runHuntWorld(w)
	res := &HuntReplayResult{HistoryDigest: out.digest}
	if v, ok := out.match(huntTarget{Guarantee: r.Guarantee, Client: r.Client, Key: r.Key}); ok {
		res.Violation = v.String()
	} else if len(out.violations) > 0 {
		res.Violation = out.violations[0].String()
	}
	res.Identical = res.Violation == r.Violation && res.HistoryDigest == r.HistoryDigest
	return res, nil
}

// Hunt sweeps Seeds consecutive seeds per profile, each a self-contained
// world on its own VirtualClock (worker-pool parallel — results are
// position-indexed, so parallelism cannot perturb the outcome), checks
// every recorded history, and minimizes each violating world into an
// archived repro. Always virtual-time: a hunt is thousands of runs, and
// replay identity is the point.
func Hunt(cfg Config, opts HuntOptions) (*HuntResult, error) {
	cfg = cfg.withDefaults()
	if opts.Seeds <= 0 {
		opts.Seeds = cfg.pick(1000, 16)
	}
	if opts.StartSeed == 0 {
		opts.StartSeed = cfg.Seed
	}
	if len(opts.Profiles) == 0 {
		opts.Profiles = []string{"tracks-mild", "tracks-harsh"}
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	for _, p := range opts.Profiles {
		if _, err := faults.ProfilesByName(p, huntUnit); err != nil {
			return nil, err
		}
	}

	type runSpec struct {
		profile string
		seed    int64
	}
	specs := make([]runSpec, 0, len(opts.Profiles)*opts.Seeds)
	for _, p := range opts.Profiles {
		for s := 0; s < opts.Seeds; s++ {
			specs = append(specs, runSpec{profile: p, seed: opts.StartSeed + int64(s)})
		}
	}

	worlds := make([]huntWorld, len(specs))
	outcomes := make([]*huntOutcome, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < opts.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				w, err := newHuntWorld(specs[i].profile, specs[i].seed, opts.Plant)
				if err != nil {
					panic("bench: " + err.Error()) // profiles validated above
				}
				worlds[i] = w
				outcomes[i] = runHuntWorld(w)
			}
		}()
	}
	wg.Wait()

	res := &HuntResult{
		Profiles: opts.Profiles, Seeds: opts.Seeds, StartSeed: opts.StartSeed,
		Workers: opts.Workers, Planted: opts.Plant, Runs: len(specs),
	}
	for i, o := range outcomes {
		res.Ops += int64(o.ops)
		if len(o.inconclusive) > 0 {
			res.Inconclusive++
		}
		if len(o.violations) == 0 {
			continue
		}
		tgt := targetOf(o.violations[0])
		f := HuntFinding{
			Profile: specs[i].profile, Seed: specs[i].seed,
			Guarantee: tgt.Guarantee, Client: tgt.Client, Key: tgt.Key,
			TracksBefore:  len(worlds[i].Tracks),
			EventsBefore:  countEvents(worlds[i].Tracks),
			ClientsBefore: clientCount(worlds[i]),
		}
		shrunk, shrinkRuns := minimizeWorld(worlds[i], tgt)
		out := runHuntWorld(shrunk)
		v, ok := out.match(tgt)
		if !ok {
			// Defensive: the minimizer only accepts reproducing candidates,
			// so the shrunk world must reproduce; fall back to the original
			// if an invariant ever breaks rather than archiving a dud.
			shrunk, out = worlds[i], o
			v, _ = o.match(tgt)
		}
		f.TracksAfter = len(shrunk.Tracks)
		f.EventsAfter = countEvents(shrunk.Tracks)
		f.ClientsAfter = clientCount(shrunk)
		f.ShrinkRuns = shrinkRuns
		f.Violation = v.String()
		repro, err := reproOf(shrunk, v, out.digest)
		if err != nil {
			return nil, err
		}
		f.Repro = repro
		res.Findings = append(res.Findings, f)
	}
	return res, nil
}

// FormatHunt renders a hunt result as the icgbench table.
func FormatHunt(res *HuntResult) string {
	var b strings.Builder
	planted := ""
	if res.Planted {
		planted = ", planted bug ON"
	}
	fmt.Fprintf(&b, "nemesis hunt: %d profiles x %d seeds = %d runs (seeds %d..%d), %d checked ops, %d workers%s\n",
		len(res.Profiles), res.Seeds, res.Runs, res.StartSeed, res.StartSeed+int64(res.Seeds)-1,
		res.Ops, res.Workers, planted)
	fmt.Fprintf(&b, "  profiles: %s\n", strings.Join(res.Profiles, ", "))
	if res.Inconclusive > 0 {
		fmt.Fprintf(&b, "  %d runs had an inconclusive linearizability search (bounded; not a violation)\n", res.Inconclusive)
	}
	if len(res.Findings) == 0 {
		fmt.Fprintf(&b, "  no violations: every history passed every checker\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %d VIOLATIONS\n", len(res.Findings))
	for i, f := range res.Findings {
		fmt.Fprintf(&b, "  [%d] profile %s seed %d: %s (client %s, key %q)\n",
			i+1, f.Profile, f.Seed, f.Guarantee, f.Client, f.Key)
		fmt.Fprintf(&b, "      shrunk: tracks %d -> %d, fault events %d -> %d, clients %d -> %d (%d shrink runs)\n",
			f.TracksBefore, f.TracksAfter, f.EventsBefore, f.EventsAfter,
			f.ClientsBefore, f.ClientsAfter, f.ShrinkRuns)
		for _, line := range strings.Split(strings.TrimRight(f.Violation, "\n"), "\n") {
			fmt.Fprintf(&b, "      %s\n", line)
		}
	}
	return b.String()
}

// HuntJSON marshals a hunt result for -fault-json.
func HuntJSON(res *HuntResult) ([]byte, error) {
	return marshalReport(res)
}
