package bench

import (
	"time"

	"correctables/internal/ycsb"
)

// Fig7Row is one datapoint of Figure 7: the fraction of ICG reads whose
// preliminary view diverged from the final view, for one workload/
// distribution at one contention level.
type Fig7Row struct {
	Workload     string // "A" or "B"
	Distribution ycsb.DistKind
	// Threads is the total client threads across the three regions.
	Threads int
	// DivergencePct is 100 * diverged / reads-with-preliminary, aggregated
	// over all clients.
	DivergencePct float64
	// Reads is the denominator (sample size).
	Reads int64
}

// fig7ThreadSweep mirrors the paper's x-axis (30..300 total threads).
func fig7ThreadSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{12, 30}
	}
	return []int{30, 60, 120, 180, 240, 300}
}

// Fig7 reproduces Figure 7: divergence of preliminary from final views in
// Correctable Cassandra, on a small (1K objects) dataset so that clients
// contend on a popular subset; workloads A and B under the Latest and
// Zipfian distributions. Divergence is highest for A-Latest (the paper
// measures up to 25%): half the operations are writes and reads chase
// recently updated keys, whose propagation to the preliminary replica is
// still in flight.
func Fig7(cfg Config) []Fig7Row {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(12*time.Second, 2*time.Second) // model time
	warmup := cfg.pickDur(2*time.Second, 200*time.Millisecond)
	const records = 1000 // "a small 1K objects dataset"
	const valueSize = 1024

	var rows []Fig7Row
	for _, wname := range []string{"A", "B"} {
		for _, dist := range []ycsb.DistKind{ycsb.DistLatest, ycsb.DistZipfian} {
			for _, threadsTotal := range fig7ThreadSweep(cfg) {
				w := workloadByName(wname, dist, records, valueSize)
				h := newHarness(cfg)
				cluster := h.newCassandra(cfg, cassandraOpts{correctable: true})
				preloadDataset(cluster, w)
				results := runGroups(cluster, w, 2, true, threadsTotal/3, ycsb.Options{
					Duration: dur,
					Warmup:   warmup,
					Seed:     cfg.Seed,
				})
				h.drain()
				var diverged, prelims int64
				for _, r := range results {
					diverged += r.Diverged
					prelims += r.PrelimReads
				}
				pct := 0.0
				if prelims > 0 {
					pct = 100 * float64(diverged) / float64(prelims)
				}
				rows = append(rows, Fig7Row{
					Workload:      wname,
					Distribution:  dist,
					Threads:       threadsTotal,
					DivergencePct: pct,
					Reads:         prelims,
				})
			}
		}
	}
	return rows
}
