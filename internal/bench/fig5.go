package bench

import (
	"fmt"
	"time"

	"correctables/internal/cassandra"
	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/ycsb"
)

// Fig5Row is one bar of Figure 5: single-request read latency in Cassandra
// for one system/view, grouped by read quorum size.
type Fig5Row struct {
	// Group is the quorum group ("R=1", "R=2", "R=3").
	Group string
	// System is the bar label (C1, C2, C3, CC2 preliminary, CC2 final,
	// CC3 preliminary, CC3 final).
	System string
	// Avg and P99 are model-time latencies.
	Avg, P99 time.Duration
}

// Fig5 reproduces Figure 5: single-request latencies for different quorum
// configurations, client in IRL contacting the FRK coordinator, 100-byte
// objects. The latency gap between CC preliminary and final views is the
// speculation window.
func Fig5(cfg Config) []Fig5Row {
	cfg = cfg.withDefaults()
	samples := cfg.pick(60, 8)
	const keys = 100

	measure := func(correctable bool, quorum int, wantPrelim bool) (prelim, final *metrics.Histogram) {
		h := newHarness(cfg)
		cluster := h.newCassandra(cfg, cassandraOpts{correctable: correctable})
		val := make([]byte, 100)
		for i := 0; i < keys; i++ {
			cluster.Preload(ycsb.Key(i), val)
		}
		client := cassandra.NewClient(cluster, netsim.IRL, netsim.FRK)
		defer h.drain()
		prelim, final = metrics.NewHistogram(), metrics.NewHistogram()
		for i := 0; i < samples; i++ {
			sw := h.clock.StartStopwatch()
			_ = client.Read(ycsb.Key(i%keys), quorum, wantPrelim, func(v cassandra.ReadView) {
				if v.Final {
					final.Record(sw.ElapsedModel())
				} else {
					prelim.Record(sw.ElapsedModel())
				}
			})
		}
		return prelim, final
	}

	var rows []Fig5Row
	add := func(group, system string, h *metrics.Histogram) {
		rows = append(rows, Fig5Row{Group: group, System: system, Avg: h.Mean(), P99: h.Percentile(99)})
	}

	// Baselines C1, C2, C3.
	for _, q := range []int{1, 2, 3} {
		_, final := measure(false, q, false)
		add(fmt.Sprintf("R=%d", q), fmt.Sprintf("C%d", q), final)
	}
	// CC2 and CC3: preliminary + final from a single ICG read.
	for _, q := range []int{2, 3} {
		prelim, final := measure(true, q, true)
		add(fmt.Sprintf("R=%d", q), fmt.Sprintf("CC%d preliminary", q), prelim)
		add(fmt.Sprintf("R=%d", q), fmt.Sprintf("CC%d final", q), final)
	}
	return rows
}
