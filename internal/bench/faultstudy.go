package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/faults"
	"correctables/internal/history"
	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/trace"
	"correctables/internal/ycsb"
)

// FaultStudyRow is one phase of the fault study: weak-vs-strong latency,
// availability and divergence. Completed operations are bucketed by the
// phase they started in; failed ones by the phase their timeout fired in,
// so a fault's casualties are charged to the fault's own row rather than
// to the baseline an op happened to start under. Latencies are model-time
// milliseconds (the paper's axes).
type FaultStudyRow struct {
	Phase   string  `json:"phase"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`

	Reads      int64 `json:"reads"`
	ReadErrors int64 `json:"read_errors"`
	Writes     int64 `json:"writes"`
	WriteErr   int64 `json:"write_errors"`
	Prelims    int64 `json:"prelim_views"`

	PrelimMeanMs float64 `json:"prelim_mean_ms"`
	PrelimP99Ms  float64 `json:"prelim_p99_ms"`
	FinalMeanMs  float64 `json:"final_mean_ms"`
	FinalP99Ms   float64 `json:"final_p99_ms"`
	UpdateMeanMs float64 `json:"update_mean_ms"`

	// ReadAvailabilityPct is the percentage of attempted reads whose final
	// view arrived within the operation timeout. Preliminary views keep
	// flowing even for reads whose final times out — the paper's asymmetry.
	ReadAvailabilityPct float64 `json:"read_availability_pct"`
	DivergencePct       float64 `json:"divergence_pct"`
	// DroppedMsgs counts messages lost to the fault schedule (severed or
	// dropped) during the phase, from the meter's dropped counters.
	DroppedMsgs int64 `json:"dropped_msgs"`
	// HintedMsgs counts async replication sends the coordinator buffered as
	// hints during the phase instead of losing them to the fault — hinted
	// handoff's share of the would-be drops.
	HintedMsgs int64 `json:"hinted_msgs"`
	// Rejected/Shed/Retried are the meter's admission-outcome counters
	// diffed at phase boundaries (attempts, not operations) — zero unless
	// an admission gate or retry policy fronts a population, but always
	// reported so fault rows and overload rows read the same way.
	Rejected int64 `json:"rejected_attempts"`
	Shed     int64 `json:"shed_attempts"`
	Retried  int64 `json:"retried_attempts"`
}

// FaultStudyResult is the fault study's full output; it marshals directly
// to BENCH_faultstudy.json.
type FaultStudyResult struct {
	Scenario    string          `json:"scenario"`
	Description string          `json:"description"`
	UnitMs      float64         `json:"unit_ms"`
	OpTimeoutMs float64         `json:"op_timeout_ms"`
	Threads     int             `json:"threads"`
	Seed        int64           `json:"seed"`
	Rows        []FaultStudyRow `json:"rows"`
	// Transitions is the injector's applied-transition log ("4s: partition
	// {eu-frankfurt eu-ireland} | {us-virginia}"), the replay record.
	Transitions []string `json:"transitions"`
	// Check is the consistency-check report (Config.Check runs only).
	Check *CheckReport `json:"check,omitempty"`
	// Decomp and Timeseries are the observability plane's output
	// (Config.Trace runs only): per-phase latency decomposition from the
	// span tracer, and the registry's sampled gauges.
	Decomp     []PhaseDecomp      `json:"latency_decomposition,omitempty"`
	Timeseries []trace.TimeSeries `json:"timeseries,omitempty"`
	// Trace and TraceReg carry the raw tracer and registry for Chrome
	// trace export (icgbench -trace); they do not marshal.
	Trace    *trace.Tracer   `json:"-"`
	TraceReg *trace.Registry `json:"-"`
}

// CheckReport is the outcome of verifying the checked session population's
// recorded history.
type CheckReport struct {
	// Clients and Ops size the checked population and its history.
	Clients int `json:"clients"`
	Ops     int `json:"ops"`
	// SessionViolations and LinViolations render each detected violation
	// with its witness subsequence (empty = verified clean). Reproduce any
	// of them with the run's Seed: replay is byte-identical.
	SessionViolations []string `json:"session_violations"`
	LinViolations     []string `json:"linearizability_violations"`
	// Inconclusive lists keys whose linearizability search exhausted its
	// budget (not violations).
	Inconclusive []string `json:"inconclusive_keys,omitempty"`
	// HistoryDigest is the SHA-256 of the serialized history: same seed,
	// same digest — the byte-identical-replay witness.
	HistoryDigest string `json:"history_digest"`
}

// Violations reports the total number of detected violations.
func (r *CheckReport) Violations() int {
	return len(r.SessionViolations) + len(r.LinViolations)
}

// faultOp is one operation's record in the study.
type faultOp struct {
	start     time.Duration
	end       time.Duration
	isRead    bool
	err       bool
	hasPrelim bool
	prelim    time.Duration
	final     time.Duration
	diverged  bool
}

// phaseOf buckets one operation: completed operations belong to the phase
// they started in (their latency reflects the conditions they ran under),
// failed ones to the phase their timeout fired in (a read that starts just
// before a fault window and times out inside it is that fault's casualty,
// not the healthy baseline's). Instants past the last phase clamp into it.
func phaseOf(phases []faults.Phase, op faultOp) int {
	at := op.start
	if op.err {
		at = op.end
	}
	for i, ph := range phases {
		if at < ph.End {
			return i
		}
	}
	return len(phases) - 1
}

// FaultStudy runs YCSB workload B against Correctable Cassandra (CC3:
// quorum 3, so the strong view needs every region) under a fault schedule,
// and reports per-phase weak-vs-strong latency, availability and
// divergence. The scenario comes from cfg.Faults — a catalog name or
// "<seed>:<profile>" for a random schedule — defaulting to
// minority-partition, whose partition and crash phases demonstrate the
// paper's headline asymmetry: preliminary (weak) views ride the live
// client<->coordinator link unperturbed while final (strong) views stall
// on the severed region and degrade or time out with faults.ErrUnreachable.
func FaultStudy(cfg Config) (*FaultStudyResult, error) {
	cfg = cfg.withDefaults()
	unit := cfg.pickDur(2*time.Second, 300*time.Millisecond)
	spec := cfg.Faults
	if spec == "" {
		spec = "minority-partition"
	}
	scen, err := faults.ParseSpec(spec, unit)
	if err != nil {
		return nil, err
	}
	// One unit shorter than the catalog's 4u partition/crash windows: reads
	// that start early in a fault window exhaust the timeout and fail with
	// faults.ErrUnreachable (the availability dip), while later ones stall
	// until the heal and complete with degraded final latency (the latency
	// story) — the study shows both failure modes.
	opTimeout := 3 * unit
	threads := cfg.pick(12, 6)

	h := newHarness(cfg)
	inj := faults.Attach(h.tr, scen.Schedule, cfg.Seed+3)
	cluster := h.newCassandra(cfg, cassandraOpts{correctable: true, opTimeout: opTimeout})
	cluster.SetTrace(h.trc)
	w := workloadByName("B", ycsb.DistZipfian, 1000, 1024)
	preloadDataset(cluster, w)

	// The sampled time-series (Config.Trace): coordinator backpressure,
	// fault-schedule message loss, and the hinted-handoff backlog, probed
	// on a horizon-relative cadence by the registry's model-time ticker.
	if h.reg != nil {
		coord := cluster.Replica(netsim.FRK).Server()
		h.reg.Gauge("coord_queue_delay_ms", func() float64 {
			return metrics.Ms(coord.QueueDelay())
		})
		h.reg.Gauge("dropped_msgs", func() float64 {
			d := h.meter.SnapshotDropped()
			return float64(d[netsim.LinkClient].Messages + d[netsim.LinkReplica].Messages)
		})
		h.reg.Gauge("hint_backlog", func() float64 {
			st := cluster.HintStats()
			return float64(st.Queued - st.Replayed)
		})
		h.reg.Gauge("client_msgs", func() float64 {
			return float64(h.meter.Class(netsim.LinkClient).Messages)
		})
		h.startSampling(scen.Horizon)
	}

	// Cumulative dropped-message, queued-hint and admission-outcome probes
	// at phase boundaries, armed before traffic so boundary callbacks
	// interleave deterministically.
	droppedAt := make([]int64, len(scen.Phases))
	hintedAt := make([]int64, len(scen.Phases))
	loadAt := make([]netsim.LoadStats, len(scen.Phases))
	for i, ph := range scen.Phases {
		i := i
		h.clock.RunAt(ph.End, func() {
			dropped := h.meter.SnapshotDropped()
			droppedAt[i] = dropped[netsim.LinkClient].Messages + dropped[netsim.LinkReplica].Messages
			hintedAt[i] = int64(cluster.HintStats().Queued)
			loadAt[i] = h.meter.Load(netsim.LinkClient)
		})
	}

	// The measured population: IRL clients on the FRK coordinator (the
	// paper's remote-contact deployment), closed loop until the scenario
	// horizon. Per-thread record shards keep the loop contention-free and
	// the merge order deterministic.
	client := cassandra.NewClient(cluster, netsim.IRL, netsim.FRK)
	gen := w.NewGenerator()
	shards := make([][]faultOp, threads)
	g := h.clock.NewGroup()

	// A background writer population on the IRL coordinator keeps foreign
	// writes flowing: the measured coordinator (FRK) learns of them only
	// through asynchronous replication, which is what gives preliminary
	// views something to diverge from — one population writing through its
	// own coordinator would never observe staleness (cf. runGroups).
	bgWriter := cassandra.NewClient(cluster, netsim.IRL, netsim.IRL)
	for t := 0; t < threads/3+1; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 7_777_777 + int64(t)*1_000_003))
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			for h.clock.Now() < scen.Horizon {
				_ = bgWriter.Write(ycsb.Key(gen.Next(rng)), w.Value(rng), 1)
			}
		})
	}
	// The checked population (Config.Check): session clients running the
	// same YCSB mix through the full invoke pipeline — sessions enforcing
	// read-your-writes/monotonic reads, a history recorder observing every
	// op — on their own keyspace, so the recorded histories are closed
	// worlds the checkers can verify completely. Half contact the FRK
	// coordinator, half IRL, which makes cross-coordinator staleness (and
	// hence the session machinery) actually exercise under faults.
	var recorder *history.Recorder
	checkClients := 0
	if cfg.Check {
		recorder = history.NewRecorder()
		checkClients = cfg.pick(6, 4)
		checkKeys := 24
		for t := 0; t < checkClients; t++ {
			t := t
			coord := netsim.FRK
			if t%2 == 1 {
				coord = netsim.IRL
			}
			cc := cassandra.NewClient(cluster, netsim.IRL, coord)
			bc := binding.NewClient(cassandra.NewBinding(cc, cassandra.BindingConfig{StrongQuorum: 3}),
				binding.WithObserver(recorder),
				binding.WithTracer(h.trc),
				binding.WithLabel(fmt.Sprintf("sess-%02d", t)))
			sess := binding.NewSession(bc)
			rng := rand.New(rand.NewSource(cfg.Seed + 5_555_557 + int64(t)*1_000_003))
			g.Add(1)
			h.clock.Go(func() {
				defer g.Done()
				ctx := context.Background()
				for h.clock.Now() < scen.Horizon {
					key := fmt.Sprintf("chk-%03d", rng.Intn(checkKeys))
					if rng.Float64() < 0.65 {
						_, _ = sess.Get(ctx, key).Final(ctx)
					} else {
						_, _ = sess.Put(ctx, key, w.Value(rng)).Final(ctx)
					}
				}
			})
		}
	}
	for t := 0; t < threads; t++ {
		t := t
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*1_000_003))
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			for {
				now := h.clock.Now()
				if now >= scen.Horizon {
					return
				}
				key := ycsb.Key(gen.Next(rng))
				op := faultOp{start: now}
				if rng.Float64() < w.ReadProportion {
					op.isRead = true
					var confirmed bool
					err := client.Read(key, 3, true, func(v cassandra.ReadView) {
						if v.Final {
							op.final = h.clock.Now() - now
							confirmed = v.Confirmed
						} else {
							op.hasPrelim = true
							op.prelim = h.clock.Now() - now
						}
					})
					op.err = err != nil
					op.diverged = op.hasPrelim && !op.err && !confirmed
				} else {
					err := client.Write(key, w.Value(rng), 1)
					op.err = err != nil
					op.final = h.clock.Now() - now
				}
				op.end = h.clock.Now()
				shards[t] = append(shards[t], op)
			}
		})
	}
	g.Wait()
	inj.Quiesce()
	h.drain()

	// Bucket the merged records by the phase each operation started in.
	res := &FaultStudyResult{
		Scenario:    scen.Name,
		Description: scen.Description,
		UnitMs:      metrics.Ms(unit),
		OpTimeoutMs: metrics.Ms(opTimeout),
		Threads:     threads,
		Seed:        cfg.Seed,
	}
	for _, tr := range inj.Log() {
		res.Transitions = append(res.Transitions, tr.At.String()+": "+tr.Desc)
	}
	if recorder != nil {
		res.Check = buildCheckReport(recorder, checkClients, "registers")
	}
	for i, ph := range scen.Phases {
		row := FaultStudyRow{Phase: ph.Name, StartMs: metrics.Ms(ph.Start), EndMs: metrics.Ms(ph.End)}
		prelim, final, update := metrics.NewHistogram(), metrics.NewHistogram(), metrics.NewHistogram()
		var completed, diverged, divergeBase int64
		for _, shard := range shards {
			for _, op := range shard {
				if phaseOf(scen.Phases, op) != i {
					continue
				}
				if op.isRead {
					row.Reads++
					if op.hasPrelim {
						row.Prelims++
						prelim.Record(op.prelim)
					}
					if op.err {
						row.ReadErrors++
					} else {
						completed++
						final.Record(op.final)
						if op.hasPrelim {
							divergeBase++
							if op.diverged {
								diverged++
							}
						}
					}
				} else {
					row.Writes++
					if op.err {
						row.WriteErr++
					} else {
						update.Record(op.final)
					}
				}
			}
		}
		row.PrelimMeanMs = metrics.Ms(prelim.Mean())
		row.PrelimP99Ms = metrics.Ms(prelim.Percentile(99))
		row.FinalMeanMs = metrics.Ms(final.Mean())
		row.FinalP99Ms = metrics.Ms(final.Percentile(99))
		row.UpdateMeanMs = metrics.Ms(update.Mean())
		row.ReadAvailabilityPct = 100 * metrics.Ratio(completed, row.Reads)
		row.DivergencePct = 100 * metrics.Ratio(diverged, divergeBase)
		var prevDropped, prevHinted int64
		var prevLoad netsim.LoadStats
		if i > 0 {
			prevDropped, prevHinted = droppedAt[i-1], hintedAt[i-1]
			prevLoad = loadAt[i-1]
		}
		row.DroppedMsgs = droppedAt[i] - prevDropped
		row.HintedMsgs = hintedAt[i] - prevHinted
		row.Rejected = loadAt[i].Rejected - prevLoad.Rejected
		row.Shed = loadAt[i].Shed - prevLoad.Shed
		row.Retried = loadAt[i].Retried - prevLoad.Retried
		res.Rows = append(res.Rows, row)
	}
	if h.trc != nil {
		for _, ph := range scen.Phases {
			res.Decomp = append(res.Decomp, decompRow(h.trc, ph.Name, ph.Start, ph.End))
		}
		res.Timeseries = h.reg.Series()
		res.Trace = h.trc
		res.TraceReg = h.reg
	}
	return res, nil
}

// FaultStudyJSON marshals a result for BENCH_faultstudy.json.
func FaultStudyJSON(res *FaultStudyResult) ([]byte, error) {
	return marshalReport(res)
}
