package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/netsim"
)

// faultStudyFingerprint runs the fault study and serializes every
// observable metric (rows, transitions) byte for byte.
func faultStudyFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := FaultStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := FaultStudyJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestFaultReplayDeterministic is the subsystem's replay guarantee: same
// seed + same fault schedule ⇒ byte-identical metrics — every phase row,
// every latency digit, every transition timestamp.
func TestFaultReplayDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	first := faultStudyFingerprint(t, cfg)
	if len(first) == 0 {
		t.Fatal("empty fingerprint")
	}
	if got := faultStudyFingerprint(t, cfg); got != first {
		t.Fatalf("replay diverged:\n--- first ---\n%s\n--- replay ---\n%s", first, got)
	}
	if got := faultStudyFingerprint(t, Config{Seed: 43, Quick: true}); got == first {
		t.Fatal("different seed produced identical metrics; fingerprint too weak or seed unused")
	}
}

// TestFaultSeedSweepDeterminism replays one random-schedule fault scenario
// across 32 seeds in parallel — one VirtualClock per goroutine — asserting
// per-seed byte-identical replay. This is the seed-sweep workflow the
// subsystem exists for: a failing seed found in a sweep is a complete
// reproduction recipe.
func TestFaultSeedSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("32 fault studies")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for seed := int64(0); seed < 32; seed++ {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := Config{Seed: seed, Quick: true, Faults: fmt.Sprintf("%d:mild", seed)}
			run := func() (string, error) {
				res, err := FaultStudy(cfg)
				if err != nil {
					return "", err
				}
				data, err := FaultStudyJSON(res)
				return string(data), err
			}
			a, err := run()
			if err != nil {
				errs <- fmt.Errorf("seed %d: %v", seed, err)
				return
			}
			b, err := run()
			if err != nil {
				errs <- fmt.Errorf("seed %d replay: %v", seed, err)
				return
			}
			if a != b {
				errs <- fmt.Errorf("seed %d: replay diverged", seed)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFaultStudyAsymmetry asserts the paper's headline claim under faults
// (the acceptance criterion): during the minority partition, preliminary
// (weak) view latency is unaffected (±10% of the healthy phase) because it
// rides the live client<->coordinator link, while final (strong) view
// latency degrades — the quorum stalls on the severed region — and read
// availability dips as early reads exhaust the operation timeout.
func TestFaultStudyAsymmetry(t *testing.T) {
	res, err := FaultStudy(Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]FaultStudyRow{}
	for _, r := range res.Rows {
		rows[r.Phase] = r
	}
	healthy, ok := rows["healthy"]
	if !ok {
		t.Fatalf("no healthy phase in %+v", res.Rows)
	}
	partition, ok := rows["partition"]
	if !ok {
		t.Fatalf("no partition phase in %+v", res.Rows)
	}
	if healthy.Reads == 0 || partition.Reads == 0 || healthy.Prelims == 0 || partition.Prelims == 0 {
		t.Fatalf("phases undersampled: healthy %+v partition %+v", healthy, partition)
	}

	// Preliminary views: unaffected within ±10%.
	if d := partition.PrelimMeanMs - healthy.PrelimMeanMs; d > 0.1*healthy.PrelimMeanMs || d < -0.1*healthy.PrelimMeanMs {
		t.Errorf("prelim mean moved %.1fms -> %.1fms under partition; want within 10%%",
			healthy.PrelimMeanMs, partition.PrelimMeanMs)
	}
	// Final views: degraded at least 2x (measured: >3x quick, >15x full).
	if partition.FinalMeanMs < 2*healthy.FinalMeanMs {
		t.Errorf("final mean %.1fms under partition vs %.1fms healthy; want >= 2x degradation",
			partition.FinalMeanMs, healthy.FinalMeanMs)
	}
	// Availability dips: some reads exhaust the timeout with ErrUnreachable.
	if partition.ReadAvailabilityPct >= healthy.ReadAvailabilityPct {
		t.Errorf("availability %.0f%% under partition vs %.0f%% healthy; want a dip",
			partition.ReadAvailabilityPct, healthy.ReadAvailabilityPct)
	}
	// The fault's casualties are accounted: severed traffic either drops at
	// the meter or is buffered as a hint by the coordinator (hinted handoff
	// intercepts the doomed async replication legs before they hit the wire).
	if partition.DroppedMsgs+partition.HintedMsgs == 0 {
		t.Error("no dropped or hinted messages accounted during the partition")
	}
	if healthy.DroppedMsgs != 0 || healthy.HintedMsgs != 0 {
		t.Errorf("%d dropped / %d hinted messages in the healthy phase",
			healthy.DroppedMsgs, healthy.HintedMsgs)
	}
}

// TestWeakReadsSurviveMajorityPartition is the regression test for the
// paper's claim, now checkable: with the client's region severed from the
// other two (a majority partition from the client's point of view), weak
// reads still complete at local latency while strong reads stall and fail
// with faults.ErrUnreachable through the binding error path — consumers
// observe OnError, never a hang.
func TestWeakReadsSurviveMajorityPartition(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	h := newHarness(cfg)
	inj := faults.Attach(h.tr, nil, 1)
	cluster := h.newCassandra(cfg, cassandraOpts{correctable: true, opTimeout: 400 * time.Millisecond})
	cluster.Preload("k", []byte("v"))

	client := cassandra.NewClient(cluster, netsim.IRL, netsim.IRL)
	bc := binding.NewClient(cassandra.NewBinding(client, cassandra.BindingConfig{StrongQuorum: 2}))
	ctx := context.Background()

	inj.Apply(faults.Partition{Groups: [][]netsim.Region{
		{netsim.IRL}, {netsim.FRK, netsim.VRG},
	}})

	// Weak read: coordinator-local, completes fast.
	sw := h.clock.StartStopwatch()
	v, err := binding.InvokeWeak[[]byte](ctx, bc, binding.Get{Key: "k"}).Final(ctx)
	if err != nil || string(v.Value) != "v" {
		t.Fatalf("weak read under partition: %v %q", err, v.Value)
	}
	if got := sw.ElapsedModel(); got > 50*time.Millisecond {
		t.Errorf("weak read took %v under partition; want local latency", got)
	}

	// Strong read: the quorum needs the far side; fails distinctly.
	if _, err := binding.InvokeStrong[[]byte](ctx, bc, binding.Get{Key: "k"}).Final(ctx); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("strong read under partition: %v, want ErrUnreachable", err)
	}

	// Combined invoke: the weak view is delivered, then OnError closes it.
	cor := binding.Invoke[[]byte](ctx, bc, binding.Get{Key: "k"})
	if _, err := cor.Final(ctx); !errors.Is(err, faults.ErrUnreachable) {
		t.Fatalf("combined invoke under partition: %v, want ErrUnreachable", err)
	}
	views := cor.Views()
	if len(views) != 1 || views[0].Level != core.LevelWeak || string(views[0].Value) != "v" {
		t.Fatalf("combined invoke views = %+v, want exactly the weak view", views)
	}

	// After the heal, strong reads work again.
	inj.Apply(faults.Heal{})
	if _, err := binding.InvokeStrong[[]byte](ctx, bc, binding.Get{Key: "k"}).Final(ctx); err != nil {
		t.Fatalf("strong read after heal: %v", err)
	}
	inj.Quiesce()
	h.drain()
}
