package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"correctables/internal/binding"
	"correctables/internal/faults"
	"correctables/internal/history"
	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/trace"
	"correctables/internal/zk"
)

// FailoverRow is one (population, phase) cell of the failover experiment:
// enqueue counts, weak-vs-strong latency and final availability for one
// client population during one phase of the leader outage.
type FailoverRow struct {
	// Population is "majority" (clients on the surviving side, contacting
	// IRL) or "minority" (clients contacting the severed old leader, FRK).
	Population string  `json:"population"`
	Phase      string  `json:"phase"`
	StartMs    float64 `json:"start_ms"`
	EndMs      float64 `json:"end_ms"`

	Ops     int64 `json:"ops"`
	Errors  int64 `json:"errors"`
	Prelims int64 `json:"prelim_views"`

	PrelimMeanMs float64 `json:"prelim_mean_ms"`
	PrelimP99Ms  float64 `json:"prelim_p99_ms"`
	FinalMeanMs  float64 `json:"final_mean_ms"`
	FinalP99Ms   float64 `json:"final_p99_ms"`

	// FinalAvailabilityPct is the percentage of attempted enqueues whose
	// committed (strong) acknowledgment arrived within the operation
	// timeout. Preliminary views keep flowing even while finals fail — the
	// paper's asymmetry, now measured through a leader failover.
	FinalAvailabilityPct float64 `json:"final_availability_pct"`
}

// FailoverResult is the failover experiment's full output; it marshals
// directly to BENCH_failover.json.
type FailoverResult struct {
	Description string  `json:"description"`
	UnitMs      float64 `json:"unit_ms"`
	OpTimeoutMs float64 `json:"op_timeout_ms"`
	// HeartbeatMs and ElectionTimeoutMs are the recovery machinery's tuning
	// (the election bound every recovery metric is judged against).
	HeartbeatMs       float64 `json:"heartbeat_ms"`
	ElectionTimeoutMs float64 `json:"election_timeout_ms"`
	FaultAtMs         float64 `json:"fault_at_ms"`
	HealAtMs          float64 `json:"heal_at_ms"`
	HorizonMs         float64 `json:"horizon_ms"`
	Threads           int     `json:"threads"`
	Seed              int64   `json:"seed"`

	// ElectedAtMs is the model instant the majority elected a new leader;
	// TimeToRecoveryMs is that instant relative to the fault — the window
	// during which no ordered commits were possible anywhere.
	ElectedAtMs      float64 `json:"elected_at_ms"`
	TimeToRecoveryMs float64 `json:"time_to_recovery_ms"`
	NewLeader        string  `json:"new_leader"`
	Epoch            uint64  `json:"epoch"`
	// FirstFinalAfterFaultMs is when the first post-fault enqueue committed
	// (majority side), and PrelimOnlyWindowMs its distance from the fault:
	// the measured window during which the service was preliminary-only.
	// OutagePrelims counts the weak views delivered inside that window —
	// nonzero is the paper's availability claim under failover.
	FirstFinalAfterFaultMs float64 `json:"first_final_after_fault_ms"`
	PrelimOnlyWindowMs     float64 `json:"prelim_only_window_ms"`
	OutagePrelims          int64   `json:"outage_prelims"`

	Rows        []FailoverRow `json:"rows"`
	Transitions []string      `json:"transitions"`
	Check       *CheckReport  `json:"check,omitempty"`
	// Decomp and Timeseries are the observability plane's output
	// (Config.Trace runs only); the decomposition's election column is
	// this experiment's signature — it lights up exactly in the outage
	// phase. Trace/TraceReg carry the exportable tracer (icgbench -trace).
	Decomp     []PhaseDecomp      `json:"latency_decomposition,omitempty"`
	Timeseries []trace.TimeSeries `json:"timeseries,omitempty"`
	Trace      *trace.Tracer      `json:"-"`
	TraceReg   *trace.Registry    `json:"-"`
}

// Failover runs a closed-loop enqueue workload against Correctable
// ZooKeeper while a partition severs the leader's region mid-run: the
// majority side elects a new leader (heartbeat loss, staggered election
// timeouts, state transfer) and its finals resume; the severed minority
// keeps serving preliminary views the whole time; the heal deposes and
// resyncs the old leader. The experiment measures time-to-recovery, the
// preliminary-only availability window, and weak-vs-strong latency per
// phase — recovery as a first-class, measured scenario rather than a
// pass/fail test.
//
// With cfg.Check, a consistency-checked session population runs alongside
// the measured one and its recorded history is verified (session
// guarantees plus per-queue linearizability) across the failover.
func Failover(cfg Config) (*FailoverResult, error) {
	cfg = cfg.withDefaults()
	unit := cfg.pickDur(2*time.Second, 300*time.Millisecond)
	hb := unit / 8
	et := unit / 2
	opTimeout := unit
	faultAt := 4 * unit
	healAt := 12 * unit
	horizon := 16 * unit
	threads := cfg.pick(12, 6)

	h := newHarness(cfg)
	sched := faults.NewSchedule().
		At(faultAt, faults.Partition{Groups: [][]netsim.Region{
			{netsim.FRK}, {netsim.IRL, netsim.VRG},
		}}).
		At(healAt, faults.Heal{})
	inj := faults.Attach(h.tr, sched, cfg.Seed+3)
	e := h.newZK(cfg, zkOpts{
		correctable:     true,
		leader:          netsim.FRK,
		opTimeout:       opTimeout,
		heartbeat:       hb,
		electionTimeout: et,
	})
	e.SetTrace(h.trc)

	// The sampled time-series (Config.Trace): the commit epoch steps at
	// the election, the election counter marks attempts, and client-link
	// traffic shows the enqueue flow surviving the outage as prelims.
	if h.reg != nil {
		h.reg.Gauge("commit_epoch", func() float64 {
			return float64(e.CommitEpoch())
		})
		h.reg.Gauge("elections", func() float64 {
			return float64(len(e.Elections()))
		})
		h.reg.Gauge("client_msgs", func() float64 {
			return float64(h.meter.Class(netsim.LinkClient).Messages)
		})
		h.reg.Gauge("dropped_msgs", func() float64 {
			d := h.meter.SnapshotDropped()
			return float64(d[netsim.LinkClient].Messages + d[netsim.LinkReplica].Messages)
		})
		h.startSampling(horizon)
	}

	// Queues are created up front (healthy cluster) so the workload phase
	// measures enqueues only.
	setup := zk.NewQueueClient(e, netsim.IRL, netsim.IRL)
	pops := []struct {
		name    string
		threads int
		client  func(t int) *zk.QueueClient
		queue   func(t int) string
	}{
		// Majority: remote clients contacting a surviving follower — they
		// lose finals only until the election, prelims throughout.
		{"majority", threads, func(int) *zk.QueueClient {
			return zk.NewQueueClient(e, netsim.IRL, netsim.IRL)
		}, func(t int) string { return fmt.Sprintf("maj-%02d", t) }},
		// Minority: clients pinned to the severed old leader — finals fail
		// for the whole partition, prelims keep coming from local state.
		{"minority", threads / 2, func(int) *zk.QueueClient {
			return zk.NewQueueClient(e, netsim.FRK, netsim.FRK)
		}, func(t int) string { return fmt.Sprintf("min-%02d", t) }},
	}
	for _, pop := range pops {
		for t := 0; t < pop.threads; t++ {
			if err := setup.CreateQueue(pop.queue(t)); err != nil {
				return nil, fmt.Errorf("bench: creating %s: %w", pop.queue(t), err)
			}
		}
	}

	payload := make([]byte, 64)
	shards := make([][][]faultOp, len(pops))
	g := h.clock.NewGroup()
	for pi, pop := range pops {
		pi, pop := pi, pop
		shards[pi] = make([][]faultOp, pop.threads)
		for t := 0; t < pop.threads; t++ {
			t := t
			qc := pop.client(t)
			queue := pop.queue(t)
			g.Add(1)
			h.clock.Go(func() {
				defer g.Done()
				for {
					now := h.clock.Now()
					if now >= horizon {
						return
					}
					op := faultOp{start: now}
					err := qc.Enqueue(queue, payload, true, func(v zk.QueueView) {
						if v.Final {
							op.final = h.clock.Now() - now
						} else {
							op.hasPrelim = true
							op.prelim = h.clock.Now() - now
						}
					})
					op.err = err != nil
					op.end = h.clock.Now()
					shards[pi][t] = append(shards[pi][t], op)
				}
			})
		}
	}

	// The checked population (cfg.Check): sessions through the full invoke
	// pipeline on their own queues, half contacting the old leader, half
	// the survivor, with a history recorder observing every op.
	var recorder *history.Recorder
	checkClients := 0
	if cfg.Check {
		recorder = history.NewRecorder()
		checkClients = cfg.pick(6, 4)
		for t := 0; t < checkClients; t++ {
			t := t
			contact := netsim.IRL
			if t%2 == 1 {
				contact = netsim.FRK
			}
			queue := fmt.Sprintf("chk-%02d", t)
			if err := setup.CreateQueue(queue); err != nil {
				return nil, fmt.Errorf("bench: creating %s: %w", queue, err)
			}
			qc := zk.NewQueueClient(e, netsim.IRL, contact)
			sess := binding.NewSession(binding.NewClient(zk.NewBinding(qc),
				binding.WithObserver(recorder),
				binding.WithTracer(h.trc),
				binding.WithLabel(fmt.Sprintf("sess-%02d", t))))
			rng := rand.New(rand.NewSource(cfg.Seed + 5_555_557 + int64(t)*1_000_003))
			g.Add(1)
			h.clock.Go(func() {
				defer g.Done()
				ctx := context.Background()
				for h.clock.Now() < horizon {
					if rng.Float64() < 0.7 {
						_, _ = sess.Enqueue(ctx, queue, payload).Final(ctx)
					} else {
						_, _ = sess.Dequeue(ctx, queue).Final(ctx)
					}
					// Paced, not closed-loop: each timed-out op enters the
					// linearizability history as an ambiguous wildcard the
					// search must branch on, so per-queue op counts are kept
					// where the check stays conclusive.
					h.clock.Sleep(unit / 8)
				}
			})
		}
	}
	g.Wait()
	inj.Quiesce()
	h.drain()

	res := &FailoverResult{
		Description: "partition severs the zk leader mid-run; the majority elects, the minority serves prelims, the heal resyncs",
		UnitMs:      metrics.Ms(unit),
		OpTimeoutMs: metrics.Ms(opTimeout),
		HeartbeatMs: metrics.Ms(hb), ElectionTimeoutMs: metrics.Ms(et),
		FaultAtMs: metrics.Ms(faultAt), HealAtMs: metrics.Ms(healAt), HorizonMs: metrics.Ms(horizon),
		Threads: threads,
		Seed:    cfg.Seed,
	}
	for _, tr := range inj.Log() {
		res.Transitions = append(res.Transitions, tr.At.String()+": "+tr.Desc)
	}

	// Recovery metrics from the election log: the fault's election is the
	// first won at or after the fault instant.
	electedAt := healAt
	for _, rec := range e.Elections() {
		if rec.At >= faultAt {
			electedAt = rec.At
			res.ElectedAtMs = metrics.Ms(rec.At)
			res.TimeToRecoveryMs = metrics.Ms(rec.At - faultAt)
			res.NewLeader = string(rec.Leader)
			res.Epoch = rec.Epoch
			break
		}
	}

	// First post-fault committed enqueue (majority side) and the prelim-only
	// window it closes.
	firstFinal := time.Duration(-1)
	for _, shard := range shards[0] {
		for _, op := range shard {
			if op.start >= faultAt && !op.err && (firstFinal < 0 || op.end < firstFinal) {
				firstFinal = op.end
			}
		}
	}
	if firstFinal >= 0 {
		res.FirstFinalAfterFaultMs = metrics.Ms(firstFinal)
		res.PrelimOnlyWindowMs = metrics.Ms(firstFinal - faultAt)
		for _, popShards := range shards {
			for _, shard := range popShards {
				for _, op := range shard {
					if at := op.start + op.prelim; op.hasPrelim && at >= faultAt && at < firstFinal {
						res.OutagePrelims++
					}
				}
			}
		}
	}

	phases := []faults.Phase{
		{Name: "healthy", Start: 0, End: faultAt},
		{Name: "outage", Start: faultAt, End: electedAt},
		{Name: "elected", Start: electedAt, End: healAt},
		{Name: "rejoin", Start: healAt, End: horizon},
	}
	for pi, pop := range pops {
		for i, ph := range phases {
			row := FailoverRow{Population: pop.name, Phase: ph.Name,
				StartMs: metrics.Ms(ph.Start), EndMs: metrics.Ms(ph.End)}
			prelim, final := metrics.NewHistogram(), metrics.NewHistogram()
			var completed int64
			for _, shard := range shards[pi] {
				for _, op := range shard {
					if phaseOf(phases, op) != i {
						continue
					}
					row.Ops++
					if op.hasPrelim {
						row.Prelims++
						prelim.Record(op.prelim)
					}
					if op.err {
						row.Errors++
					} else {
						completed++
						final.Record(op.final)
					}
				}
			}
			row.PrelimMeanMs = metrics.Ms(prelim.Mean())
			row.PrelimP99Ms = metrics.Ms(prelim.Percentile(99))
			row.FinalMeanMs = metrics.Ms(final.Mean())
			row.FinalP99Ms = metrics.Ms(final.Percentile(99))
			row.FinalAvailabilityPct = 100 * metrics.Ratio(completed, row.Ops)
			res.Rows = append(res.Rows, row)
		}
	}

	if h.trc != nil {
		// The decomposition rows reuse the recovery phases computed above:
		// the election column is nonzero only where an election window
		// overlaps the phase — the outage row, by construction.
		for _, ph := range phases {
			res.Decomp = append(res.Decomp, decompRow(h.trc, ph.Name, ph.Start, ph.End))
		}
		res.Timeseries = h.reg.Series()
		res.Trace = h.trc
		res.TraceReg = h.reg
	}

	if recorder != nil {
		res.Check = buildCheckReport(recorder, checkClients, "queues")
	}
	return res, nil
}

// FailoverJSON marshals a result for BENCH_failover.json.
func FailoverJSON(res *FailoverResult) ([]byte, error) {
	return marshalReport(res)
}
