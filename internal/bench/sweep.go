package bench

import (
	"time"

	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/ycsb"
)

// SweepRow is one cell of the quorum x geography parameter sweep: Correctable
// Cassandra (CC, preliminary+final reads) under one YCSB-B load, with the
// read quorum and the deployment's RTT geometry varied independently. The
// figure-6/7 claim the sweep probes: preliminary-view latency tracks the
// closest replica and stays flat across both axes, while final-view latency
// pays for every extra quorum member and every extra kilometer.
type SweepRow struct {
	// Geography names the RTT geometry: the paper's EC2 deployment scaled
	// down to a metro area or up to an intercontinental spread.
	Geography string `json:"geography"`
	// RTTScale is the factor applied to every RTT of the paper's model.
	RTTScale float64 `json:"rtt_scale"`
	// Quorum is the read quorum size (R out of 3 replicas).
	Quorum int `json:"quorum"`
	// Shards is the cluster's token-ring shard count. The geography/quorum
	// cells run unsharded (1); the shard axis holds geography and quorum at
	// the paper's deployment and varies the ring alone, so the extra rows
	// isolate the routing-hop cost non-token-aware clients pay once keys
	// spread over many shards.
	Shards int `json:"shards"`
	// ThroughputOps is attained ops/s summed over the three regional clients.
	ThroughputOps float64 `json:"throughput_ops"`
	// PrelimMeanMs / FinalMeanMs are the IRL client's mean read-view
	// latencies (the client the paper reports).
	PrelimMeanMs float64 `json:"prelim_mean_ms"`
	FinalMeanMs  float64 `json:"final_mean_ms"`
	PrelimP99Ms  float64 `json:"prelim_p99_ms"`
	FinalP99Ms   float64 `json:"final_p99_ms"`
}

// SweepResult is the whole table plus the knobs that produced it.
type SweepResult struct {
	Description string     `json:"description"`
	Workload    string     `json:"workload"`
	Threads     int        `json:"threads"`
	DurationMs  float64    `json:"duration_ms"`
	Seed        int64      `json:"seed"`
	Rows        []SweepRow `json:"rows"`
}

// sweepGeographies returns the RTT geometries, scaling the paper's measured
// EC2 model: x0.25 compresses FRK/IRL/VRG to metro-area distances, x1 is the
// deployment the paper ran, x2 stretches it to an intercontinental worst
// case. Service times and bandwidth stay fixed so the sweep isolates the
// propagation axis.
func sweepGeographies() []struct {
	name  string
	scale float64
} {
	return []struct {
		name  string
		scale float64
	}{
		{"metro", 0.25},
		{"paper", 1},
		{"intercontinental", 2},
	}
}

// scaledLatencies multiplies every RTT of the paper's model (including the
// local one) by scale.
func scaledLatencies(scale float64) *netsim.LatencyModel {
	base := netsim.DefaultLatencies()
	m := &netsim.LatencyModel{
		RTTs:     make(map[[2]netsim.Region]time.Duration, len(base.RTTs)),
		LocalRTT: time.Duration(float64(base.LocalRTT) * scale),
	}
	for k, v := range base.RTTs {
		m.RTTs[k] = time.Duration(float64(v) * scale)
	}
	return m
}

// Sweep runs the cheap fig6/fig7 parameter sweep: 3 quorum sizes x 3 RTT
// geometries, one YCSB-B run each on Correctable Cassandra with preliminary
// views enabled. Every cell gets a fresh fabric seeded from cfg.Seed, so the
// whole table replays byte-identically per seed.
func Sweep(cfg Config) *SweepResult {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(6*time.Second, 800*time.Millisecond) // model time
	warmup := cfg.pickDur(1*time.Second, 100*time.Millisecond)
	threads := cfg.pick(12, 6)
	w := workloadByName("B", ycsb.DistZipfian, 1000, 1024)

	res := &SweepResult{
		Description: "CC read latency vs quorum size and RTT geography (YCSB-B, 3 regions, RF=3)",
		Workload:    "B",
		Threads:     threads,
		DurationMs:  metrics.Ms(dur),
		Seed:        cfg.Seed,
	}
	cell := func(geoName string, scale float64, quorum, shards int) {
		h := newHarnessWith(cfg, scaledLatencies(scale))
		cluster := h.newCassandra(cfg, cassandraOpts{correctable: true, shards: shards})
		preloadDataset(cluster, w)
		results := runGroups(cluster, w, quorum, true, threads/3, ycsb.Options{
			Duration: dur,
			Warmup:   warmup,
			Seed:     cfg.Seed,
		})
		h.drain()
		var total float64
		for _, r := range results {
			total += r.ThroughputOps
		}
		irl := results[1] // group order follows cluster.Regions(): FRK, IRL, VRG
		res.Rows = append(res.Rows, SweepRow{
			Geography:     geoName,
			RTTScale:      scale,
			Quorum:        quorum,
			Shards:        shards,
			ThroughputOps: total,
			PrelimMeanMs:  metrics.Ms(irl.ReadPrelim.Mean()),
			FinalMeanMs:   metrics.Ms(irl.ReadFinal.Mean()),
			PrelimP99Ms:   metrics.Ms(irl.ReadPrelim.Percentile(99)),
			FinalP99Ms:    metrics.Ms(irl.ReadFinal.Percentile(99)),
		})
	}
	for _, geo := range sweepGeographies() {
		for quorum := 1; quorum <= 3; quorum++ {
			cell(geo.name, geo.scale, quorum, 1)
		}
	}
	// Shard-count axis: the paper deployment's geography and quorum, ring
	// width varied alone.
	for _, shards := range []int{2, 4, 8} {
		cell("paper", 1, 2, shards)
	}
	return res
}

// SweepJSON renders the sweep table as indented JSON.
func SweepJSON(res *SweepResult) ([]byte, error) {
	return marshalReport(res)
}
