package bench

import (
	"time"

	"correctables/internal/ycsb"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they isolate the mechanism behind a result by
// sweeping the single parameter that produces it.

// AblationLagRow is one datapoint of the replication-lag ablation: how the
// staleness window (asynchronous replication delay) drives preliminary/
// final divergence. Fig 7's divergence is entirely produced by this lag;
// at zero lag the preliminary view is almost always correct and ICG costs
// almost nothing.
type AblationLagRow struct {
	// ReplicationDelay is the swept staleness window.
	ReplicationDelay time.Duration
	// DivergencePct is measured under workload A-Latest, the paper's
	// worst case.
	DivergencePct float64
	Reads         int64
}

// AblationReplicationLag sweeps the asynchronous-replication delay and
// measures divergence under the Fig 7 worst-case conditions (workload A,
// Latest distribution, 1K objects).
func AblationReplicationLag(cfg Config) []AblationLagRow {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(10*time.Second, 2*time.Second) // model time
	threadsTotal := cfg.pick(120, 24)
	delays := []time.Duration{0, 5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if cfg.Quick {
		delays = []time.Duration{0, 40 * time.Millisecond}
	}

	var rows []AblationLagRow
	for _, delay := range delays {
		w := ycsb.WorkloadA(ycsb.DistLatest, 1000, 1024)
		h := newHarness(cfg)
		d := delay
		if d == 0 {
			d = time.Nanosecond // Config treats 0 as "use default"
		}
		cluster := h.newCassandra(cfg, cassandraOpts{correctable: true, replicationDelay: d})
		preloadDataset(cluster, w)
		results := runGroups(cluster, w, 2, true, threadsTotal/3, ycsb.Options{
			Duration: dur,
			Seed:     cfg.Seed,
		})
		h.drain()
		var diverged, prelims int64
		for _, r := range results {
			diverged += r.Diverged
			prelims += r.PrelimReads
		}
		pct := 0.0
		if prelims > 0 {
			pct = 100 * float64(diverged) / float64(prelims)
		}
		rows = append(rows, AblationLagRow{ReplicationDelay: delay, DivergencePct: pct, Reads: prelims})
	}
	return rows
}

// AblationFlushRow is one datapoint of the preliminary-flushing ablation:
// the extra coordinator service time per ICG read is what costs CC its few
// percent of throughput in Fig 6.
type AblationFlushRow struct {
	// FlushCost is the swept per-read coordinator overhead.
	FlushCost time.Duration
	// Throughput is total attained ops/s under saturation-level load.
	Throughput float64
	// DropPct is the throughput cost relative to the zero-flush-cost run.
	DropPct float64
}

// AblationFlushCost sweeps the preliminary-flushing service time and
// measures attained throughput under saturating load (workload C so that
// every operation exercises the flush path).
func AblationFlushCost(cfg Config) []AblationFlushRow {
	cfg = cfg.withDefaults()
	dur := cfg.pickDur(10*time.Second, 2*time.Second) // model time
	threadsTotal := cfg.pick(96, 24)
	costs := []time.Duration{time.Nanosecond, 250 * time.Microsecond,
		500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
	if cfg.Quick {
		costs = []time.Duration{time.Nanosecond, 2 * time.Millisecond}
	}

	var rows []AblationFlushRow
	var baseline float64
	for _, cost := range costs {
		w := ycsb.WorkloadC(ycsb.DistZipfian, 1000, 1024)
		h := newHarness(cfg)
		cluster := h.newCassandra(cfg, cassandraOpts{correctable: true, flushCost: cost})
		preloadDataset(cluster, w)
		results := runGroups(cluster, w, 2, true, threadsTotal/3, ycsb.Options{
			Duration: dur,
			Seed:     cfg.Seed,
		})
		h.drain()
		var tp float64
		for _, r := range results {
			tp += r.ThroughputOps
		}
		row := AblationFlushRow{FlushCost: cost, Throughput: tp}
		if baseline == 0 {
			baseline = tp
		} else {
			row.DropPct = 100 * (baseline - tp) / baseline
		}
		rows = append(rows, row)
	}
	return rows
}
