package bench

import (
	"context"
	"sync"
	"time"

	"correctables/internal/apps/tickets"
	"correctables/internal/binding"
	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/zk"
)

// Fig12Point is one purchase of Figure 12: the latency to buy the ticket at
// a given position in the selling order.
type Fig12Point struct {
	// System is "CZK" (ICG with threshold) or "ZK" (always strong).
	System string
	// TicketNumber is the position in the selling order (1-based).
	TicketNumber int
	// Latency is the model-time purchase-decision latency.
	Latency time.Duration
	// UsedPreliminary reports a weak-view confirmation (CZK only).
	UsedPreliminary bool
}

// Fig12Summary condenses the series the way the paper discusses it.
type Fig12Summary struct {
	System string
	// FastAvg is the average latency of preliminary-confirmed purchases;
	// SlowAvg of final-view purchases (for ZK, everything is slow).
	FastAvg, SlowAvg     time.Duration
	FastCount, SlowCount int
	// Revoked counts preliminary confirmations contradicted by the final
	// view (the paper saw on average 2, max 6).
	Revoked int
}

// Fig12 reproduces Figure 12: four retailers colocated with the FRK
// follower (leader in IRL) concurrently sell a fixed stock of tickets.
// With CZK + ICG, purchases confirm on the preliminary view while more than
// Threshold (20) tickets remain, then switch to waiting for the final
// (atomic) view. Vanilla ZK pays coordination latency for every ticket.
func Fig12(cfg Config) ([]Fig12Point, []Fig12Summary) {
	cfg = cfg.withDefaults()
	stock := cfg.pick(500, 60)
	const retailers = 4

	var points []Fig12Point
	var summaries []Fig12Summary

	run := func(system string, correctable bool) {
		h := newHarness(cfg)
		e := h.newZK(cfg, zkOpts{correctable: correctable, leader: netsim.IRL})
		tickets.Stock(e, "event", stock)

		var mu sync.Mutex
		var results []Fig12Point
		revokedTotal := 0
		wg := h.clock.NewGroup()
		for w := 0; w < retailers; w++ {
			wg.Add(1)
			h.clock.Go(func() {
				defer wg.Done()
				r := tickets.NewRetailer(zk.NewBinding(zk.NewQueueClient(e, netsim.FRK, netsim.FRK)))
				for {
					var (
						res tickets.PurchaseResult
						err error
					)
					if correctable {
						res, err = r.PurchaseTicket(context.Background(), "event")
					} else {
						res, err = r.PurchaseTicketStrong(context.Background(), "event")
					}
					if err != nil {
						return
					}
					if res.SoldOut {
						mu.Lock()
						revokedTotal += r.Revoked()
						mu.Unlock()
						return
					}
					// Closed loop, as in the paper: the decision latency is
					// what Fig 12 plots, but the retailer serves the next
					// customer only once this dequeue has committed.
					ticket, _ := res.Assigned.Get().(binding.Item)
					if !ticket.Exists {
						continue // revoked preliminary confirmation; not a sale
					}
					mu.Lock()
					results = append(results, Fig12Point{
						System:          system,
						TicketNumber:    len(results) + 1,
						Latency:         res.Latency,
						UsedPreliminary: res.UsedPreliminary,
					})
					mu.Unlock()
				}
			})
		}
		wg.Wait()
		h.drain()

		fast, slow := metrics.NewHistogram(), metrics.NewHistogram()
		for _, p := range results {
			if p.UsedPreliminary {
				fast.Record(p.Latency)
			} else {
				slow.Record(p.Latency)
			}
		}
		points = append(points, results...)
		summaries = append(summaries, Fig12Summary{
			System:    system,
			FastAvg:   fast.Mean(),
			SlowAvg:   slow.Mean(),
			FastCount: fast.Count(),
			SlowCount: slow.Count(),
			Revoked:   revokedTotal,
		})
	}

	run("CZK", true)
	run("ZK", false)
	return points, summaries
}
