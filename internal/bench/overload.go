package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"correctables/internal/binding"
	"correctables/internal/cassandra"
	"correctables/internal/core"
	"correctables/internal/faults"
	"correctables/internal/history"
	"correctables/internal/load"
	"correctables/internal/metrics"
	"correctables/internal/netsim"
	"correctables/internal/trace"
)

// OverloadRow is one phase of one overload mode. Completed operations are
// bucketed by the phase they started in (their latency reflects the
// conditions they arrived under); failed ones by the phase they died in —
// the same casualty-attribution rule as the fault study. Attempt counters
// (rejected/shed/retried) are meter diffs at phase boundaries: they count
// attempts, not operations, so one storm-trapped op can contribute several.
type OverloadRow struct {
	Phase   string  `json:"phase"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`

	// Offered counts open-loop arrivals in the phase; the generators do not
	// slow down when the store does — that is the point.
	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	// Degraded counts completions served at a preliminary (weak) level
	// because the admission controller shed the strong leg.
	Degraded int64 `json:"degraded_completions"`
	// TimedOut / RejectedOps / SessionErrs split the failed operations by
	// cause: per-attempt timeout budgets exhausted, admission rejections
	// that outlived the retry budget, and session-guarantee failures.
	TimedOut    int64 `json:"timed_out"`
	RejectedOps int64 `json:"rejected_ops"`
	SessionErrs int64 `json:"session_errors"`

	Rejected int64 `json:"rejected_attempts"`
	Shed     int64 `json:"shed_attempts"`
	Retried  int64 `json:"retried_attempts"`

	// GoodputOps is completions per second of model time; GoodputPct is the
	// same relative to this mode's baseline phase.
	GoodputOps float64 `json:"goodput_ops_per_s"`
	GoodputPct float64 `json:"goodput_pct_of_baseline"`

	FinalMeanMs float64 `json:"final_mean_ms"`
	FinalP99Ms  float64 `json:"final_p99_ms"`
}

// OverloadMode is one full run of the overload scenario: shedding off (the
// metastable collapse) or shedding on (the escape).
type OverloadMode struct {
	Mode     string `json:"mode"`
	Shedding bool   `json:"shedding"`
	// BaselineGoodput anchors the percentages (ops/second in the baseline
	// phase).
	BaselineGoodput float64 `json:"baseline_goodput_ops_per_s"`
	// PostBurstGoodputPct is the WORST post-burst phase (storm, recovered)
	// relative to baseline: the metastability witness. Without shedding it
	// stays collapsed although the burst is long gone; with shedding the
	// recovered phase returns to baseline.
	PostBurstGoodputPct float64 `json:"post_burst_goodput_pct"`
	// RecoveredGoodputPct is the recovered phase alone — the escape witness.
	RecoveredGoodputPct float64       `json:"recovered_goodput_pct"`
	Rows                []OverloadRow `json:"rows"`
	// Check verifies the measured sessions' recorded history: session
	// guarantees per key plus the cross-object writes-follow-reads checker —
	// RYW must hold through the degraded phase. Register linearizability is
	// deliberately not checked here: the measured keyspace is shared with
	// unrecorded background writers, so it is not a closed world.
	Check *CheckReport `json:"check"`
	// Decomp and Timeseries are the observability plane's output
	// (Config.Trace runs only). The decomposition makes the storm legible:
	// the queue column explodes in the storm phase with shedding off and
	// the admission column replaces it with shedding on.
	Decomp     []PhaseDecomp      `json:"latency_decomposition,omitempty"`
	Timeseries []trace.TimeSeries `json:"timeseries,omitempty"`

	trc *trace.Tracer
	reg *trace.Registry
}

// OverloadResult is the overload experiment's full output; it marshals
// directly to BENCH_overload.json.
type OverloadResult struct {
	Description string  `json:"description"`
	UnitMs      float64 `json:"unit_ms"`
	OpTimeoutMs float64 `json:"op_timeout_ms"`
	// BaselineRate/BurstRate are the open-loop arrival rates (ops/s); the
	// burst rides on top of the baseline during the burst phase.
	BaselineRate float64 `json:"baseline_rate_ops_per_s"`
	BurstRate    float64 `json:"burst_rate_ops_per_s"`
	// CapacityOps is the coordinator's nominal service capacity (workers /
	// service time), for reading the rates against.
	CapacityOps float64        `json:"capacity_ops_per_s"`
	Sessions    int            `json:"sessions"`
	Seed        int64          `json:"seed"`
	Modes       []OverloadMode `json:"modes"`
	// Trace and TraceReg carry the shedding-on mode's tracer for Chrome
	// export (icgbench -trace): the mode whose spans include the full
	// admission story (rejects, degrades, backoff windows).
	Trace    *trace.Tracer   `json:"-"`
	TraceReg *trace.Registry `json:"-"`
}

// overloadPhase is one window of the scenario timeline.
type overloadPhase struct {
	name       string
	start, end time.Duration
}

// overloadOp is one measured operation's record.
type overloadOp struct {
	start, end time.Duration
	err        error
	degraded   bool
}

// overloadParams fixes the scenario's knobs in one place so both modes run
// the identical workload.
type overloadParams struct {
	unit      time.Duration
	phases    []overloadPhase
	horizon   time.Duration
	opTimeout time.Duration

	baselineRate float64
	burstRate    float64
	sessions     int
	keys         int

	retryMax  int
	retryBase time.Duration
	retryCap  time.Duration
}

func overloadParamsFor(cfg Config) overloadParams {
	u := cfg.pickDur(time.Second, 300*time.Millisecond)
	return overloadParams{
		unit: u,
		phases: []overloadPhase{
			{"baseline", 0, 3 * u},
			{"burst", 3 * u, 5 * u},
			{"storm", 5 * u, 9 * u},
			{"recovered", 9 * u, 12 * u},
		},
		horizon: 12 * u,
		// The per-attempt timeout is the storm's trigger: once the
		// coordinator's queueing delay exceeds it, every attempt times out
		// and respawns as retries.
		opTimeout:    250 * time.Millisecond,
		baselineRate: 1200, // vs ~2000 ops/s coordinator capacity: healthy
		burstRate:    4000, // baseline+burst ≈ 2.6x capacity: decisive overload
		sessions:     cfg.pick(32, 12),
		keys:         64,
		retryMax:     3,
		retryBase:    50 * time.Millisecond,
		retryCap:     400 * time.Millisecond,
	}
}

// Overload reproduces a metastable retry storm and its escape (§ overload;
// the paper's degraded mode cast as admission control). An open-loop
// Poisson population of session clients issues strong reads (85%) and
// writes (15%) against a remote coordinator near capacity; an on/off burst
// then pushes demand past capacity for two units. Per-attempt timeouts plus
// capped-exponential retries amplify the queue into a self-sustaining storm:
// with shedding off, goodput stays collapsed long after the burst ends —
// the metastable state. With shedding on, the internal/load controller
// (per-client token buckets, AIMD backpressure on the coordinator's queue
// delay, degrade-to-preliminary under sustained overload) rejects the
// excess cheaply and serves admitted reads at the weak level, the backlog
// drains, and the recovered phase returns to baseline goodput.
//
// Both modes run the same seed on fresh fabrics, so the comparison is
// arrival-for-arrival. The measured sessions run with a history recorder,
// and the run always verifies session guarantees plus cross-object
// writes-follow-reads over the recorded history — read-your-writes must
// survive the degraded phase.
func Overload(cfg Config) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	p := overloadParamsFor(cfg)
	res := &OverloadResult{
		Description:  "metastable retry storm (shedding off) vs admission-controlled escape (shedding on)",
		UnitMs:       metrics.Ms(p.unit),
		OpTimeoutMs:  metrics.Ms(p.opTimeout),
		BaselineRate: p.baselineRate,
		BurstRate:    p.burstRate,
		CapacityOps:  2000, // 4 workers / 2ms service time (newCassandra)
		Sessions:     p.sessions,
		Seed:         cfg.Seed,
	}
	for _, shedding := range []bool{false, true} {
		mode, err := runOverloadMode(cfg, p, shedding)
		if err != nil {
			return nil, err
		}
		res.Modes = append(res.Modes, *mode)
		if mode.trc != nil {
			res.Trace, res.TraceReg = mode.trc, mode.reg
		}
	}
	return res, nil
}

// runOverloadMode runs the scenario once on a fresh fabric.
func runOverloadMode(cfg Config, p overloadParams, shedding bool) (*OverloadMode, error) {
	h := newHarness(cfg)
	cluster := h.newCassandra(cfg, cassandraOpts{correctable: true})
	cluster.SetTrace(h.trc)
	val := make([]byte, 128)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < p.keys; i++ {
		cluster.Preload(overloadKey(i), val)
	}

	// The admission controller (shedding mode only) fronts the measured
	// coordinator: its backpressure signal is the FRK server's queueing
	// delay, sampled in model time.
	var gate *load.Controller
	if shedding {
		coord := cluster.Replica(netsim.FRK).Server()
		gate = load.NewController(load.Config{
			Clock:             h.clock,
			PerClientRate:     150,
			PerClientBurst:    30,
			Sample:            coord.QueueDelay,
			SampleEvery:       50 * time.Millisecond,
			Threshold:         60 * time.Millisecond,
			MinRate:           100,
			MaxRate:           4000,
			IncreasePerSample: 250,
			DecreaseFactor:    0.5,
			DegradeToWeak:     true,
			EnterAfter:        2,
			ExitAfter:         4,
			Meter:             h.meter,
		})
		gate.Start()
	}

	// The measured population: IRL session clients on the FRK coordinator
	// (remote contact), each with the per-attempt timeout and the retry
	// policy that makes storms possible. Sessions + recorder give the
	// history the checkers verify.
	recorder := history.NewRecorder()
	sessions := make([]*binding.Session, p.sessions)
	for i := 0; i < p.sessions; i++ {
		cc := cassandra.NewClient(cluster, netsim.IRL, netsim.FRK)
		opts := []binding.Option{
			binding.WithObserver(recorder),
			binding.WithTracer(h.trc),
			binding.WithLabel(fmt.Sprintf("ovl-%02d", i)),
			binding.WithOpTimeout(p.opTimeout),
			binding.WithRetry(binding.RetryPolicy{
				Max:    p.retryMax,
				Base:   p.retryBase,
				Cap:    p.retryCap,
				Jitter: 0.5,
				Seed:   cfg.Seed + 1000 + int64(i),
				OnRetry: func(int, time.Duration, error) {
					h.meter.AccountRetried(netsim.LinkClient)
				},
			}),
		}
		if gate != nil {
			opts = append(opts, binding.WithAdmission(gate))
		}
		bc := binding.NewClient(
			cassandra.NewBinding(cc, cassandra.BindingConfig{StrongQuorum: 2}), opts...)
		sessions[i] = binding.NewSession(bc)
	}

	// Cumulative admission-outcome probes at phase boundaries (same
	// cumulative-then-diff pattern as the fault study's dropped counters).
	type loadProbe struct{ rejected, shed, retried int64 }
	probes := make([]loadProbe, len(p.phases))
	snapLoad := func() loadProbe {
		s := h.meter.SnapshotLoad()[netsim.LinkClient]
		return loadProbe{rejected: s.Rejected, shed: s.Shed, retried: s.Retried}
	}
	for i, ph := range p.phases {
		i := i
		h.clock.RunAt(ph.end, func() { probes[i] = snapLoad() })
	}

	g := h.clock.NewGroup()

	// Background writers on the IRL coordinator create cross-coordinator
	// staleness on the measured keyspace: without them a degraded weak read
	// at FRK could never be stale, and the session machinery (and the
	// history check) would have nothing to defend against. Paced, so they
	// load FRK's replication path lightly rather than competing for its
	// capacity.
	for t := 0; t < 2; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 7_777_777 + int64(t)*1_000_003))
		bg := cassandra.NewClient(cluster, netsim.IRL, netsim.IRL)
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			for h.clock.Now() < p.horizon {
				_ = bg.Write(overloadKey(rng.Intn(p.keys)), val, 1)
				h.clock.Sleep(10 * time.Millisecond)
			}
		})
	}

	// Open-loop arrivals: a Poisson baseline for the whole run plus an
	// on/off burst riding on top during the burst phase. Arrival callbacks
	// must not block: each spawns the operation as an actor. The shared rng
	// and record slice are mutex-guarded for wall-clock runs; under the
	// virtual clock callbacks are already serialized.
	var (
		mu       sync.Mutex
		arrivals int
		records  []overloadOp
		rng      = rand.New(rand.NewSource(cfg.Seed + 17))
	)

	// The sampled time-series (Config.Trace): the coordinator's queueing
	// delay is the storm itself; in-flight ops show the retry amplification;
	// the admission gauges (shedding mode) show the AIMD controller reacting.
	if h.reg != nil {
		coord := cluster.Replica(netsim.FRK).Server()
		h.reg.Gauge("coord_queue_delay_ms", func() float64 {
			return metrics.Ms(coord.QueueDelay())
		})
		h.reg.Gauge("inflight_ops", func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return float64(arrivals - len(records))
		})
		h.reg.Gauge("retried_attempts", func() float64 {
			return float64(h.meter.Load(netsim.LinkClient).Retried)
		})
		if gate != nil {
			h.reg.Gauge("admit_rate", gate.AdmitRate)
			h.reg.Gauge("degraded", func() float64 {
				if gate.Degraded() {
					return 1
				}
				return 0
			})
		}
		h.startSampling(p.horizon)
	}

	ctx := context.Background()
	fire := func(int) {
		mu.Lock()
		sess := sessions[arrivals%len(sessions)]
		arrivals++
		key := overloadKey(rng.Intn(p.keys))
		isRead := rng.Float64() < 0.85
		mu.Unlock()
		g.Add(1)
		h.clock.Go(func() {
			defer g.Done()
			rec := overloadOp{start: h.clock.Now()}
			if isRead {
				v, err := sess.Get(ctx, key, core.LevelStrong).Final(ctx)
				rec.err = err
				rec.degraded = err == nil && v.Level != core.LevelStrong
			} else {
				_, err := sess.Put(ctx, key, val).Final(ctx)
				rec.err = err
			}
			rec.end = h.clock.Now()
			mu.Lock()
			records = append(records, rec)
			mu.Unlock()
		})
	}
	load.Start(h.clock, load.NewPoisson(p.baselineRate, cfg.Seed+11), p.horizon, fire)
	burstStart := p.phases[1].start
	burstLen := p.phases[1].end - p.phases[1].start
	h.clock.RunAt(burstStart, func() {
		// OnOff with one on-window inside the horizon: the burst, then
		// silence — the recovery question is what happens after its edge.
		load.Start(h.clock, load.NewOnOff(p.burstRate, burstLen, p.horizon, cfg.Seed+13),
			p.phases[1].end, fire)
	})

	g.Wait()
	if gate != nil {
		gate.Stop()
	}
	h.drain()
	// Late retries and drains may run past the horizon; fold the final
	// totals into the last phase's probe.
	probes[len(probes)-1] = snapLoad()

	modeName := "shedding-off"
	if shedding {
		modeName = "shedding-on"
	}
	mode := &OverloadMode{Mode: modeName, Shedding: shedding}

	// Bucket records into phases: completions by start, failures by end.
	for i, ph := range p.phases {
		row := OverloadRow{Phase: ph.name, StartMs: metrics.Ms(ph.start), EndMs: metrics.Ms(ph.end)}
		final := metrics.NewHistogram()
		for _, rec := range records {
			if rec.err == nil {
				if overloadPhaseOf(p.phases, rec.start) != i {
					continue
				}
				row.Completed++
				final.Record(rec.end - rec.start)
				if rec.degraded {
					row.Degraded++
				}
			} else if overloadPhaseOf(p.phases, rec.end) == i {
				switch {
				case errors.Is(rec.err, load.ErrRejected):
					row.RejectedOps++
				case errors.Is(rec.err, faults.ErrUnreachable):
					row.TimedOut++
				default:
					row.SessionErrs++
				}
			}
		}
		for _, rec := range records {
			if overloadPhaseOf(p.phases, rec.start) == i {
				row.Offered++
			}
		}
		var prev loadProbe
		if i > 0 {
			prev = probes[i-1]
		}
		row.Rejected = probes[i].rejected - prev.rejected
		row.Shed = probes[i].shed - prev.shed
		row.Retried = probes[i].retried - prev.retried
		row.GoodputOps = float64(row.Completed) / (ph.end - ph.start).Seconds()
		row.FinalMeanMs = metrics.Ms(final.Mean())
		row.FinalP99Ms = metrics.Ms(final.Percentile(99))
		mode.Rows = append(mode.Rows, row)
	}
	mode.BaselineGoodput = mode.Rows[0].GoodputOps
	for i := range mode.Rows {
		if mode.BaselineGoodput > 0 {
			mode.Rows[i].GoodputPct = 100 * mode.Rows[i].GoodputOps / mode.BaselineGoodput
		}
	}
	mode.PostBurstGoodputPct = mode.Rows[2].GoodputPct
	if mode.Rows[3].GoodputPct > mode.PostBurstGoodputPct {
		mode.PostBurstGoodputPct = mode.Rows[3].GoodputPct
	}
	mode.RecoveredGoodputPct = mode.Rows[3].GoodputPct

	if h.trc != nil {
		for _, ph := range p.phases {
			mode.Decomp = append(mode.Decomp, decompRow(h.trc, ph.name, ph.start, ph.end))
		}
		mode.Timeseries = h.reg.Series()
		mode.trc, mode.reg = h.trc, h.reg
	}

	// The always-on history check, with the default checker set (session
	// guarantees, cross-object WFR, causal-cut).
	mode.Check = buildCheckReport(recorder, p.sessions, "")
	return mode, nil
}

func overloadKey(i int) string { return fmt.Sprintf("ovl-%03d", i) }

// overloadPhaseOf maps a model instant into its phase (clamping past the
// horizon into the last phase, for ops that die during the drain).
func overloadPhaseOf(phases []overloadPhase, at time.Duration) int {
	for i, ph := range phases {
		if at < ph.end {
			return i
		}
	}
	return len(phases) - 1
}

// OverloadJSON marshals a result for BENCH_overload.json.
func OverloadJSON(res *OverloadResult) ([]byte, error) {
	return marshalReport(res)
}
