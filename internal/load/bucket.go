package load

import "time"

// TokenBucket is a classic token bucket over model time: capacity Burst
// tokens, refilled continuously at Rate tokens per second, one token per
// admitted operation. Refill is computed lazily from elapsed model time on
// each Take, which makes it exact across the arbitrary time jumps of a
// VirtualClock — an idle bucket observed after a 10-minute jump holds
// exactly its burst capacity, not a float artifact of tick accumulation.
//
// TokenBucket is not internally locked; the Controller serializes access
// under its own mutex, and tests drive it directly.
type TokenBucket struct {
	rate   float64 // tokens per second of model time
	burst  float64 // capacity
	tokens float64
	last   time.Duration // model instant of the last refill
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take refills for the model time elapsed since the last call and then
// takes one token if available, reporting success.
func (b *TokenBucket) Take(now time.Duration) bool {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

func (b *TokenBucket) refill(now time.Duration) {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Rate returns the current refill rate (tokens/second).
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the refill rate, settling the refill at now first so the
// old rate applies exactly up to the change instant (AIMD adjusts rates
// mid-run).
func (b *TokenBucket) SetRate(rate float64, now time.Duration) {
	b.refill(now)
	b.rate = rate
}

// Tokens returns the balance after refilling at now (tests, introspection).
func (b *TokenBucket) Tokens(now time.Duration) float64 {
	b.refill(now)
	return b.tokens
}
