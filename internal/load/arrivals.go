package load

import (
	randv2 "math/rand/v2"
	"time"

	"correctables/internal/netsim"
)

// ArrivalProcess generates the interarrival sequence of an open-loop
// workload in model time. Implementations are deterministic per seed and
// are consumed from clock callbacks, so they must not block.
type ArrivalProcess interface {
	// Next returns the delay until the following arrival.
	Next() time.Duration
}

// Poisson is an open-loop Poisson process: independent exponential
// interarrivals at Rate arrivals per second of model time — the classic
// memoryless offered load.
type Poisson struct {
	rate float64
	rng  *randv2.Rand
}

// NewPoisson returns a Poisson process at rate arrivals/second, seeded
// deterministically.
func NewPoisson(rate float64, seed int64) *Poisson {
	if rate <= 0 {
		panic("load: Poisson rate must be positive")
	}
	return &Poisson{rate: rate, rng: randv2.New(randv2.NewPCG(uint64(seed), 0xda3e39cb94b95bdb))}
}

// Next implements ArrivalProcess.
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// OnOff is a bursty open-loop process: Poisson arrivals at Rate during On
// windows, silence during Off windows, repeating. The first On window
// starts at the process origin. It models the flash crowd / upstream-batch
// traffic that triggers metastable failures: the interesting question is
// not the burst itself but whether the system recovers after the Off edge.
type OnOff struct {
	inner  *Poisson
	on     time.Duration
	period time.Duration
	active time.Duration // cumulative active (On-domain) time consumed
	last   time.Duration // previous arrival's wall offset from the origin
}

// NewOnOff returns an on/off burst process: rate arrivals/second during
// each on window, separated by off windows of silence.
func NewOnOff(rate float64, on, off time.Duration, seed int64) *OnOff {
	if on <= 0 {
		panic("load: OnOff on-window must be positive")
	}
	if off < 0 {
		off = 0
	}
	return &OnOff{inner: NewPoisson(rate, seed), on: on, period: on + off}
}

// Next implements ArrivalProcess. Arrival instants are drawn in the
// "active time" domain (where the process is always on) and mapped onto
// the wall by inserting the off windows — exact, with no edge drift.
func (p *OnOff) Next() time.Duration {
	p.active += p.inner.Next()
	cycles := p.active / p.on
	wall := cycles*p.period + (p.active - cycles*p.on)
	d := wall - p.last
	p.last = wall
	return d
}

// Start schedules arrivals from proc on the clock until the model instant
// horizon, invoking fire(i) for the i-th arrival. fire runs in callback
// context and must not block; blocking work belongs in an actor it spawns
// (clock.Go). Arrivals strictly at or past horizon are not fired, and the
// chain of callbacks ends with them — a drained VirtualClock holds no
// generator residue. Returns the number of arrivals scheduled so far is
// not knowable up front (open loop); the caller counts in fire.
func Start(clock netsim.Clock, proc ArrivalProcess, horizon time.Duration, fire func(i int)) {
	var schedule func(at time.Duration, i int)
	schedule = func(at time.Duration, i int) {
		if at >= horizon {
			return
		}
		clock.RunAt(at, func() {
			fire(i)
			schedule(at+proc.Next(), i+1)
		})
	}
	schedule(clock.Now()+proc.Next(), 0)
}
